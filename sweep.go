package harvsim

// This file is the batch sub-surface of the facade: concurrent sweeps,
// ensemble statistics and the content-addressed result cache. See
// harvsim.go for the core model and serve.go for the service layer.

import (
	"context"

	"harvsim/internal/batch"
)

// BatchJob is one scenario execution request for the concurrent runner.
type BatchJob = batch.Job

// BatchResult is a job's captured outcome (metrics, stats, error).
type BatchResult = batch.Result

// BatchOptions configures the worker pool; the zero value uses
// GOMAXPROCS workers.
type BatchOptions = batch.Options

// BatchSummary aggregates a result set (extrema, argmax, error tally).
type BatchSummary = batch.Summary

// SweepSpec declares a cartesian parameter sweep over a base job.
type SweepSpec = batch.SweepSpec

// SweepAxis is one named dimension of a sweep.
type SweepAxis = batch.Axis

// FloatAxis builds a sweep dimension over a float knob.
func FloatAxis(name string, values []float64, set func(j *BatchJob, v float64)) SweepAxis {
	return batch.FloatAxis(name, values, set)
}

// IntAxis builds a sweep dimension over an integer knob.
func IntAxis(name string, values []int, set func(j *BatchJob, v int)) SweepAxis {
	return batch.IntAxis(name, values, set)
}

// EngineAxis builds a sweep dimension over the solver kind.
func EngineAxis(kinds ...EngineKind) SweepAxis { return batch.EngineAxis(kinds...) }

// RunBatch executes the jobs across a worker pool; results come back in
// job order and are bit-identical to a serial run. Seed-grouped jobs
// (same non-empty Group, differing Seed, proposed engine) are stepped
// as one lockstep ensemble through shared factorisations unless
// BatchOptions.NoLockstep disables it — a scheduling choice only, never
// visible in the results.
func RunBatch(ctx context.Context, jobs []BatchJob, opt BatchOptions) []BatchResult {
	return batch.Run(ctx, jobs, opt)
}

// RunBatchSerial executes the jobs one after another on the calling
// goroutine — the reference execution pooled runs match bit for bit.
func RunBatchSerial(jobs []BatchJob, opt BatchOptions) []BatchResult {
	return batch.RunSerial(jobs, opt)
}

// Sweep expands the cartesian spec and runs it across the pool.
func Sweep(ctx context.Context, spec SweepSpec, opt BatchOptions) ([]BatchResult, error) {
	return batch.Sweep(ctx, spec, opt)
}

// SummarizeBatch reduces a result slice to its aggregate summary
// (extrema, argmax, error tally, cache-hit count).
func SummarizeBatch(results []BatchResult) BatchSummary { return batch.Summarize(results) }

// Cache is the content-addressed result store the batch layer consults
// when BatchOptions.Cache is set: an in-memory LRU over collision-safe
// job-identity hashes, optionally backed by an on-disk directory, with
// hit/miss/stale counters (Cache.Stats). Because every run is a pure
// function of its job identity, a cache hit is bit-identical to the
// simulation it elides; entries are stamped with a schema version so
// engine changes can never serve stale physics.
type Cache = batch.Cache

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats = batch.CacheStats

// CacheKey is the content-addressed identity of a batch job.
type CacheKey = batch.CacheKey

// NewCache returns an in-memory result cache holding up to capacity
// entries (<= 0 selects the default capacity).
func NewCache(capacity int) *Cache { return batch.NewCache(capacity) }

// NewDiskCache returns a result cache backed by dir, so warm starts
// survive across processes.
func NewDiskCache(capacity int, dir string) (*Cache, error) {
	return batch.NewDiskCache(capacity, dir)
}

// CacheKeyOf computes a job's cache key under the given options — the
// serialisable job identity a sweep server or shard coordinator can use
// to route and deduplicate work.
func CacheKeyOf(job BatchJob, opt BatchOptions) CacheKey { return batch.KeyOf(job, opt) }

// Cacheable reports whether a job's result may be cached (no retained
// engines, no Probe side effects, any custom Metric declared pure via
// MetricKey).
func Cacheable(job BatchJob, opt BatchOptions) bool { return batch.Cacheable(job, opt) }

// CacheKeys returns each job's stable key string under opt — lowercase
// hex for cacheable jobs, "" otherwise. This is the identity the shard
// coordinator hashes to place jobs on workers.
func CacheKeys(jobs []BatchJob, opt BatchOptions) []string { return batch.Keys(jobs, opt) }

// Seeds derives n realisation seeds from a base seed via the repo's
// splitmix64 seed-derivation rule (see DESIGN.md), for use with
// SeedAxis.
func Seeds(base uint64, n int) []uint64 { return batch.Seeds(base, n) }

// SeedAxis builds an ensemble sweep dimension over noise-realisation
// seeds: jobs expanded from it share a Group per design point, which the
// ensemble reductions aggregate over.
func SeedAxis(name string, seeds []uint64, set func(j *BatchJob, seed uint64)) SweepAxis {
	return batch.SeedAxis(name, seeds, set)
}

// EnsemblePoint is one design point's reduction over its seed
// realisations: mean, unbiased variance and 95% confidence half-width
// of the metric.
type EnsemblePoint = batch.EnsemblePoint

// BasinStat is the per-final-basin Metric statistics of one ensemble
// point (bistable workloads; see EnsemblePoint.Basins).
type BasinStat = batch.BasinStat

// Ensembles groups results by design point and reduces each group's
// realisations to ensemble statistics, deterministically across serial
// and pooled execution.
func Ensembles(results []BatchResult) []EnsemblePoint { return batch.Ensembles(results) }

// EnsembleTop ranks ensemble points by their mean metric, descending.
func EnsembleTop(points []EnsemblePoint, k int) []EnsemblePoint {
	return batch.EnsembleTop(points, k)
}

// EnsembleTable renders ensemble points as a fixed-width table.
func EnsembleTable(points []EnsemblePoint) string { return batch.EnsembleTable(points) }

// PoolCache recycles per-worker workspace pools across batch runs — the
// hand-off point a long-lived front-end shares via BatchOptions.Pools so
// later requests inherit earlier requests' warmed workspaces.
type PoolCache = batch.PoolCache

// NewPoolCache returns an empty cross-run workspace pool cache.
func NewPoolCache() *PoolCache { return batch.NewPoolCache() }

// EngineStats is the engine-kind-independent per-run counter set: steps,
// rejected attempts, Jacobian refactorisations, elimination/Newton
// solves, stability recomputes and (when measured) heap allocations.
type EngineStats = batch.EngineStats

// StatsOf extracts the unified counters from any engine built by a
// Harvester, so front-ends report the same numbers for the proposed and
// implicit solvers.
func StatsOf(eng Engine) EngineStats { return batch.StatsOf(eng) }
