package harvsim

// Determinism suite for the stochastic workload: the whole value of a
// seeded noise realisation is that it is NOT random at execution time —
// the same Scenario must produce bit-identical results no matter how it
// is executed (serially, across the worker pool with per-worker
// workspace recycling, or on a Reset/Released harvester), because the
// batch layer's result ordering, the conformance suite and any future
// result cache all assume a run is a pure function of its job.

import (
	"context"
	"testing"
)

// nonlinearStochasticScenario is the shared workload: Duffing spring
// under seeded band-limited noise, every new code path active.
func nonlinearStochasticScenario() Scenario {
	sc := NoiseScenario(1.0, 55, 85, 42)
	sc.Cfg.Microgen.K3 = 1e9
	return sc
}

func sameResult(t *testing.T, label string, a, b BatchResult) {
	t.Helper()
	if a.Err != nil || b.Err != nil {
		t.Fatalf("%s: run failed: %v / %v", label, a.Err, b.Err)
	}
	if a.FinalVc != b.FinalVc {
		t.Errorf("%s: FinalVc %v vs %v", label, a.FinalVc, b.FinalVc)
	}
	if a.RMSPower != b.RMSPower {
		t.Errorf("%s: RMSPower %v vs %v", label, a.RMSPower, b.RMSPower)
	}
	if a.Energy != b.Energy {
		t.Errorf("%s: Energy %+v vs %+v", label, a.Energy, b.Energy)
	}
	if len(a.FinalState) != len(b.FinalState) {
		t.Fatalf("%s: state length %d vs %d", label, len(a.FinalState), len(b.FinalState))
	}
	for i := range a.FinalState {
		if a.FinalState[i] != b.FinalState[i] {
			t.Errorf("%s: state[%d] %v vs %v", label, i, a.FinalState[i], b.FinalState[i])
		}
	}
}

// TestNoiseDeterminismAcrossExecutionModes runs the same seeded
// nonlinear/stochastic job serially, through the concurrent pool (with
// workspace reuse), and through the pool with reuse disabled, and
// requires all three bit-identical.
func TestNoiseDeterminismAcrossExecutionModes(t *testing.T) {
	sc := nonlinearStochasticScenario()
	jobs := make([]BatchJob, 4)
	for i := range jobs {
		jobs[i] = BatchJob{Name: "det", Scenario: sc.Clone(), Engine: Proposed, Decimate: 1}
	}
	serial := RunBatch(context.Background(), jobs[:1], BatchOptions{Workers: 1})
	pooled := RunBatch(context.Background(), jobs, BatchOptions{Workers: 4})
	noReuse := RunBatch(context.Background(), jobs[:1], BatchOptions{NoWorkspaceReuse: true})
	for _, r := range pooled {
		sameResult(t, "serial vs pooled", serial[0], r)
	}
	sameResult(t, "serial vs no-reuse", serial[0], noReuse[0])
}

// TestNoiseDeterminismAcrossWorkspaceReuse pins the Release/re-acquire
// path: a second assembly of the same scenario on a recycled (dirty)
// workspace must reproduce the first run bit for bit, noise realisation
// included.
func TestNoiseDeterminismAcrossWorkspaceReuse(t *testing.T) {
	sc := nonlinearStochasticScenario()
	pool := NewWorkspacePool()

	run := func() (float64, []float64) {
		h, err := AssembleWith(sc, pool)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := h.Run(Proposed, sc.Duration, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, vc := h.VcTrace.Last()
		state := append([]float64(nil), eng.State()...)
		h.Release()
		return vc, state
	}
	vc1, st1 := run()
	vc2, st2 := run()
	if vc1 != vc2 {
		t.Errorf("recycled-workspace rerun drifted: Vc %v vs %v", vc1, vc2)
	}
	for i := range st1 {
		if st1[i] != st2[i] {
			t.Errorf("recycled-workspace rerun state[%d]: %v vs %v", i, st1[i], st2[i])
		}
	}
}

// TestNoiseSeedsDistinctThroughBatch pins, at the facade level, that
// different seeds are different workloads: the settled-window power of
// two realisations differs well beyond the bit-noise level. (The run is
// deterministic, so the threshold cannot flake.)
func TestNoiseSeedsDistinctThroughBatch(t *testing.T) {
	mk := func(seed uint64) BatchJob {
		sc := NoiseScenario(1.5, 55, 85, seed)
		return BatchJob{Scenario: sc, Engine: Proposed}
	}
	results := RunBatch(context.Background(),
		[]BatchJob{mk(1), mk(2)}, BatchOptions{})
	a, b := results[0], results[1]
	if a.Err != nil || b.Err != nil {
		t.Fatalf("runs failed: %v / %v", a.Err, b.Err)
	}
	lo, hi := a.RMSPower, b.RMSPower
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi <= 0 || (hi-lo)/hi < 0.05 {
		t.Fatalf("seeds 1 and 2 statistically indistinct: RMS power %v vs %v",
			a.RMSPower, b.RMSPower)
	}
}

// lockstepEnsembleJobs builds one design point's seed ensemble — K jobs
// sharing a Group, differing only in realisation seed — for the chosen
// engine kind and Duffing coefficient.
func lockstepEnsembleJobs(k int, kind EngineKind, k3, duration float64) []BatchJob {
	jobs := make([]BatchJob, k)
	for i, seed := range Seeds(11, k) {
		sc := NoiseScenario(duration, 55, 85, seed)
		sc.Cfg.Microgen.K3 = k3
		jobs[i] = BatchJob{
			Name: "lockstep", Group: "pt", Seed: seed,
			Scenario: sc, Engine: kind, Decimate: 1,
		}
	}
	return jobs
}

// TestLockstepBitIdenticalAcrossEngines: a lockstep K-seed run is
// bit-identical to the K solo runs it replaces, for every engine kind
// and for both the linear device and the Duffing nonlinearity (whose
// per-member retangenting makes the members' Jacobians diverge, forcing
// the shared store onto its per-member fallback).
func TestLockstepBitIdenticalAcrossEngines(t *testing.T) {
	kinds := []EngineKind{Proposed, ExistingTrap, ExistingBDF2, ExistingBE}
	for _, kind := range kinds {
		for _, k3 := range []float64{0, 1e9} {
			label := kind.String()
			if k3 != 0 {
				label += "+duffing"
			}
			dur := 0.3
			if kind != Proposed {
				dur = 0.1 // the implicit baselines are ~50x slower
			}
			jobs := lockstepEnsembleJobs(3, kind, k3, dur)
			solo := RunBatchSerial(jobs, BatchOptions{NoLockstep: true})
			lock := RunBatchSerial(jobs, BatchOptions{})
			for i := range jobs {
				sameResult(t, label, solo[i], lock[i])
			}
		}
	}
}

// bistableEnsembleJobs builds one double-well design point's seed
// ensemble, with coupling corrections active so every new bistable code
// path (K1, K3, Xi1/Xi2, Z0, basin observer) is exercised.
func bistableEnsembleJobs(k int, kind EngineKind, duration float64) []BatchJob {
	jobs := make([]BatchJob, k)
	for i, seed := range Seeds(13, k) {
		sc := BistableScenario(duration, BistableWellM, BistableBarrierJ, 120, -3.4e4, 8, 40, seed)
		jobs[i] = BatchJob{
			Name: "bistable-lockstep", Group: "bi", Seed: seed,
			Scenario: sc, Engine: kind, Decimate: 1,
		}
	}
	return jobs
}

// TestBistableLockstepBitIdenticalAcrossEngines: a lockstep K-seed run
// of the double-well workload is bit-identical to the K solo runs it
// replaces, for every engine kind — including the EngineStats counters
// (the march must be the same march, not just land on the same answer)
// and the basin accounting the ensemble reductions consume.
func TestBistableLockstepBitIdenticalAcrossEngines(t *testing.T) {
	kinds := []EngineKind{Proposed, ExistingTrap, ExistingBDF2, ExistingBE}
	for _, kind := range kinds {
		dur := 0.5
		if kind != Proposed {
			dur = 0.15 // the implicit baselines are much slower
		}
		jobs := bistableEnsembleJobs(3, kind, dur)
		solo := RunBatchSerial(jobs, BatchOptions{NoLockstep: true})
		lock := RunBatchSerial(jobs, BatchOptions{})
		for i := range jobs {
			sameResult(t, kind.String(), solo[i], lock[i])
			a, b := solo[i], lock[i]
			if a.Stats != b.Stats {
				t.Errorf("%v[%d]: EngineStats differ:\nsolo %+v\nlock %+v", kind, i, a.Stats, b.Stats)
			}
			if a.Transits != b.Transits || a.SettledTransits != b.SettledTransits ||
				a.FinalBasin != b.FinalBasin {
				t.Errorf("%v[%d]: basin accounting differs: (%d,%d,%+d) vs (%d,%d,%+d)",
					kind, i, a.Transits, a.SettledTransits, a.FinalBasin,
					b.Transits, b.SettledTransits, b.FinalBasin)
			}
		}
	}
}

// TestEnsembleReductionInvariantAcrossDispatch: the Ensembles reduction
// of a seed sweep is invariant across serial singleton, pooled
// singleton, serial lockstep and pooled lockstep execution — the
// statistics are computed in job order over bit-identical member
// results, so the dispatch strategy cannot show through.
func TestEnsembleReductionInvariantAcrossDispatch(t *testing.T) {
	jobs := lockstepEnsembleJobs(4, Proposed, 1e9, 0.4)
	ref := Ensembles(RunBatchSerial(jobs, BatchOptions{NoLockstep: true}))
	runs := map[string][]BatchResult{
		"pooled-solo":     RunBatch(context.Background(), jobs, BatchOptions{Workers: 4, NoLockstep: true}),
		"serial-lockstep": RunBatchSerial(jobs, BatchOptions{}),
		"pooled-lockstep": RunBatch(context.Background(), jobs, BatchOptions{Workers: 4}),
	}
	for label, results := range runs {
		points := Ensembles(results)
		if len(points) != len(ref) {
			t.Fatalf("%s: %d points, want %d", label, len(points), len(ref))
		}
		for i := range ref {
			a, b := ref[i], points[i]
			if a.Group != b.Group || a.N != b.N || a.Failed != b.Failed ||
				a.Mean != b.Mean || a.Variance != b.Variance || a.CI95 != b.CI95 ||
				a.MeanVc != b.MeanVc {
				t.Errorf("%s: point %d differs: %+v vs %+v", label, i, a, b)
			}
		}
	}
}

// TestBistableBasinReductionInvariantAcrossDispatch: the basin-aware
// ensemble reductions — high-orbit fraction, mean transit count and the
// per-basin statistics — are invariant across serial singleton, pooled
// singleton, serial lockstep and pooled lockstep execution, exactly
// like the Student-t statistics they ride alongside. This requires the
// basin observer's settle boundary to be part of the job identity (set
// identically by the fresh and lockstep dispatch paths), not an
// artifact of how the run was scheduled.
func TestBistableBasinReductionInvariantAcrossDispatch(t *testing.T) {
	jobs := bistableEnsembleJobs(4, Proposed, 0.8)
	ref := Ensembles(RunBatchSerial(jobs, BatchOptions{NoLockstep: true}))
	if len(ref) != 1 {
		t.Fatalf("want 1 ensemble point, got %d", len(ref))
	}
	if len(ref[0].Basins) == 0 {
		t.Fatal("reference reduction carries no basin statistics — workload not bistable?")
	}
	runs := map[string][]BatchResult{
		"pooled-solo":     RunBatch(context.Background(), jobs, BatchOptions{Workers: 4, NoLockstep: true}),
		"serial-lockstep": RunBatchSerial(jobs, BatchOptions{}),
		"pooled-lockstep": RunBatch(context.Background(), jobs, BatchOptions{Workers: 4}),
	}
	for label, results := range runs {
		points := Ensembles(results)
		if len(points) != 1 {
			t.Fatalf("%s: %d points, want 1", label, len(points))
		}
		a, b := ref[0], points[0]
		if a.HighOrbitFrac != b.HighOrbitFrac || a.MeanTransits != b.MeanTransits {
			t.Errorf("%s: orbit stats differ: (%v, %v) vs (%v, %v)",
				label, a.HighOrbitFrac, a.MeanTransits, b.HighOrbitFrac, b.MeanTransits)
		}
		if len(a.Basins) != len(b.Basins) {
			t.Fatalf("%s: basin counts differ: %d vs %d", label, len(a.Basins), len(b.Basins))
		}
		for j := range a.Basins {
			if a.Basins[j] != b.Basins[j] {
				t.Errorf("%s: basin %d differs: %+v vs %+v", label, j, a.Basins[j], b.Basins[j])
			}
		}
	}
}
