package harvsim

// Service-path overhead benchmarks: the same 64-point design grid as
// BenchmarkSweepCache_{Cold,Warm}, but submitted to the sweep server
// over HTTP and consumed as an NDJSON stream. The Cold/Warm deltas
// against the direct batch benchmarks record what the transport layer
// costs (JSON compile, HTTP round-trips, stream encoding) on top of the
// simulation and cache work — the number that tells us when the service
// front-end, not the physics, becomes the bottleneck.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"harvsim/internal/server"
	"harvsim/internal/wire"
)

// serverGridSpec is the wire form of bench_test.go's batchSweepGrid: the
// 8x8 coil-resistance x multiplier-stages grid over the charge scenario.
func serverGridSpec(simFor float64) wire.SweepRequest {
	return wire.SweepRequest{Spec: wire.Spec{
		Name:     "grid",
		Scenario: wire.Scenario{Kind: "charge", DurationS: simFor, Set: map[string]float64{"initial_vc": 2.5}},
		Axes: []wire.Axis{
			{Kind: wire.AxisFloat, Param: "microgen.rc", Values: []float64{100, 180, 320, 560, 1000, 1800, 3200, 5600}},
			{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4, 5, 6, 7, 8, 9, 10}},
		},
	}}
}

// runServerSweep submits the spec and drains the stream, returning
// (results, cache hits) and failing the benchmark on any job error.
func runServerSweep(b *testing.B, ts *httptest.Server, req wire.SweepRequest) (results, hits int) {
	b.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var acc wire.SweepAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	stream, err := http.Get(ts.URL + acc.StreamURL)
	if err != nil {
		b.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			b.Fatal(err)
		}
		if probe.Type != wire.LineResult {
			continue // summary line
		}
		var line wire.Result
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			b.Fatal(err)
		}
		if line.Error != "" {
			b.Fatalf("%s: %s", line.Name, line.Error)
		}
		results++
		if line.Cached {
			hits++
		}
	}
	if err := sc.Err(); err != nil {
		b.Fatal(err)
	}
	return results, hits
}

// BenchmarkServerSweep_Cold serves the 64-point grid through a fresh
// server (empty cache) per iteration — simulation cost plus the full
// transport overhead.
func BenchmarkServerSweep_Cold(b *testing.B) {
	req := serverGridSpec(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ts := httptest.NewServer(server.New(server.Options{}).Handler())
		b.StartTimer()
		if n, _ := runServerSweep(b, ts, req); n != 64 {
			b.Fatalf("streamed %d results, want 64", n)
		}
		b.StopTimer()
		ts.Close()
		b.StartTimer()
	}
}

// BenchmarkServerSweep_Warm repeats the identical grid against one
// long-lived server process with a primed cache: zero engine runs, so
// the measured cost is pure service path — request compile, 64 cache
// lookups, NDJSON encoding and streaming.
func BenchmarkServerSweep_Warm(b *testing.B) {
	req := serverGridSpec(0.5)
	ts := httptest.NewServer(server.New(server.Options{}).Handler())
	defer ts.Close()
	if n, _ := runServerSweep(b, ts, req); n != 64 {
		b.Fatal("prime run incomplete")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, hits := runServerSweep(b, ts, req)
		if n != 64 || hits != 64 {
			b.Fatalf("warm iteration: %d results, %d hits, want 64/64", n, hits)
		}
	}
}
