package harvsim

// Fleet-throughput benchmarks: the same cold sweep submitted through
// the shard coordinator backed by one worker versus three. Each worker
// is pinned to a single simulation goroutine (server.Options{Workers:
// 1}), so the pair models a fleet of single-core hosts: with real
// hardware behind each worker the three-way split approaches 3x the
// one-worker throughput, and the delta between the two benchmarks is
// the coordinator's whole overhead budget (shard fan-out, three HTTP
// streams, merge ordering).
//
// NOTE for gating: on the single-core CI container the three in-process
// workers time-slice one CPU, so the >= 2x multi-worker speedup the
// design achieves on real fleets cannot appear here (see the
// BENCH_*.json note in README.md). The benchmarks are committed and gated on
// regression like every other pair — the 3-worker run must not get
// slower — rather than on a cross-pair ratio the hardware cannot show.

import (
	"net/http/httptest"
	"testing"

	"harvsim/internal/server"
	"harvsim/internal/shard"
	"harvsim/internal/wire"
)

// coordGridSpec is a 256-point cold grid: 16 coil resistances x 16
// multiplier stage counts over the charge scenario, four times the
// service benchmark's grid so the shard split has real work to divide.
func coordGridSpec(simFor float64) wire.SweepRequest {
	rc := make([]float64, 16)
	for i := range rc {
		rc[i] = 100 * float64(i+1)
	}
	stages := make([]int, 16)
	for i := range stages {
		stages[i] = i + 2
	}
	return wire.SweepRequest{Spec: wire.Spec{
		V:        wire.Version,
		Name:     "coordgrid",
		Scenario: wire.Scenario{Kind: "charge", DurationS: simFor, Set: map[string]float64{"initial_vc": 2.5}},
		Axes: []wire.Axis{
			{Kind: wire.AxisFloat, Param: "microgen.rc", Values: rc},
			{Kind: wire.AxisInt, Param: "dickson.stages", Ints: stages},
		},
	}}
}

// benchCoordSweep runs one cold coordinated sweep per iteration over a
// fresh fleet of n single-goroutine workers.
func benchCoordSweep(b *testing.B, nWorkers int) {
	req := coordGridSpec(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		workers := make([]*httptest.Server, nWorkers)
		urls := make([]string, nWorkers)
		for w := range workers {
			workers[w] = httptest.NewServer(server.New(server.Options{Workers: 1}).Handler())
			urls[w] = workers[w].URL
		}
		coord := httptest.NewServer(shard.New(shard.Options{Workers: urls}).Handler())
		b.StartTimer()
		if n, _ := runServerSweep(b, coord, req); n != 256 {
			b.Fatalf("streamed %d results, want 256", n)
		}
		b.StopTimer()
		coord.Close()
		for _, w := range workers {
			w.Close()
		}
		b.StartTimer()
	}
}

// BenchmarkCoordSweep_1Worker is the degenerate fleet: every job on one
// single-goroutine worker, plus the full coordinator transport path.
func BenchmarkCoordSweep_1Worker(b *testing.B) { benchCoordSweep(b, 1) }

// BenchmarkCoordSweep_3Workers splits the identical grid across three
// single-goroutine workers by content-key rendezvous hash.
func BenchmarkCoordSweep_3Workers(b *testing.B) { benchCoordSweep(b, 3) }
