package harvsim

// This file is the service sub-surface of the facade: the HTTP sweep
// server a single host runs (Serve) and the shard coordinator that
// fronts a fleet of them (Coordinate). Both speak the same versioned
// wire API (internal/wire, WireVersion): POST /v1/sweep in, one
// NDJSON stream of results plus a summary line out, every non-2xx
// response carrying the canonical {"error":{"code","message",
// "retryable"}} envelope. See harvsim.go for the core model and
// sweep.go for the batch layer.

import (
	"harvsim/internal/server"
	"harvsim/internal/shard"
	"harvsim/internal/tracing"
	"harvsim/internal/wire"
)

// WireVersion is the wire-schema version this build speaks. Specs and
// summary lines carry it as "v"; a mismatched spec is rejected with
// code "unsupported_version" (see DESIGN.md for the compatibility
// rule).
const WireVersion = wire.Version

// ServeOptions configures a sweep service (worker cap, concurrency,
// budgets, shared cache); the zero value is ready to use.
type ServeOptions = server.Options

// SweepService is the long-lived single-host sweep service: an
// HTTP/JSON front-end over the batch layer with one result cache and
// one workspace-pool set shared across every request, NDJSON streaming
// of per-job results (resumable via a ?from cursor), per-request
// budgets and in-flight deduplication of identical jobs. Mount
// Handler on any mux, or run the standalone cmd/serve binary.
type SweepService = server.Server

// Serve builds the sweep service around a shared cache
// (ServeOptions.Cache, or a fresh in-memory one).
func Serve(opt ServeOptions) *SweepService { return server.New(opt) }

// CoordinateOptions configures a shard coordinator: the worker fleet
// (base URLs of running sweep services), budgets and failure-handling
// knobs.
type CoordinateOptions = shard.Options

// Coordinator partitions one sweep across a fleet of sweep services by
// consistent (rendezvous) hash on the jobs' content-address keys, fans
// the shards out over the same wire API a client would use, merges the
// per-worker streams into one globally indexed stream, and re-shards
// the unfinished jobs of a worker lost mid-sweep onto the survivors.
// Clients talk to it exactly as they would to a single SweepService.
type Coordinator = shard.Coordinator

// Coordinate builds a shard coordinator over the configured fleet.
// Mount Handler on any mux, or run the standalone cmd/coord binary.
func Coordinate(opt CoordinateOptions) *Coordinator { return shard.New(opt) }

// TraceSpan is one recorded interval of a traced sweep: a named phase
// with trace/parent links, wall-clock start and monotonic duration.
// Sweeps are traced on request (wire field "trace"); GET
// /v1/jobs/{id}/trace replays a traced sweep's spans as NDJSON.
type TraceSpan = tracing.Span

// TraceRecorder is one sweep's flight recorder — a bounded ring of
// finished spans with an absolute-sequence cursor. Embedding processes
// normally never build one directly (the service does, per traced
// request); it is exported for tools that render traces.
type TraceRecorder = tracing.Recorder

// NewTraceID mints a random hex-32 trace id for a sweep request.
func NewTraceID() string { return tracing.NewTraceID() }

// Alert is one threshold crossing reported by a service's alert
// watcher (see SweepService.Alerts / Coordinator.Alerts).
type Alert = tracing.Alert

// Alerts is the registry-level threshold watcher both services embed:
// rules sample metric closures, and notify callbacks fire on rising
// edges only.
type Alerts = tracing.Alerts

// SweepServer is the previous name of SweepService.
//
// Deprecated: Use SweepService.
type SweepServer = server.Server

// SweepServerOptions is the previous name of ServeOptions.
//
// Deprecated: Use ServeOptions.
type SweepServerOptions = server.Options

// NewSweepServer is the previous name of Serve.
//
// Deprecated: Use Serve.
func NewSweepServer(opt SweepServerOptions) *SweepServer { return server.New(opt) }
