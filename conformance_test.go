package harvsim

// Cross-engine conformance suite: the same workloads under all four
// engines, asserting the physics agrees. The CPU-time benchmarks only
// measure speed, so without this suite any one engine could silently
// drift (a sign error in a Jacobian stamp, a broken Newton tolerance)
// and the "speedup at similar accuracy" claim would quietly become
// meaningless.
//
// Tolerances are per engine, calibrated on the seed implementation:
//
//   - the trapezoidal baseline is non-dissipative and matches the
//     proposed engine within a few percent on RMS power;
//   - BDF2 (Gear) is mildly dissipative on the harvester's high-Q
//     resonator; it runs under a tightened step cap and then also
//     agrees within a few percent;
//   - backward Euler's first-order numerical damping collapses the
//     resonant response at any practical step, so for it only the
//     storage voltage (an integral quantity) is asserted, plus the
//     directional fact that dissipation can only lose power.
//
// Final supercap voltage agrees to sub-millivolt across all four.

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// conformanceCase is one engine's tolerance row.
type conformanceCase struct {
	kind    EngineKind
	hmax    float64 // step cap (tightened for the dissipative baselines)
	vcTol   float64 // |final Vc - reference| bound [V]
	powRtol float64 // relative RMS-power bound; 0 = damped-engine check only
}

func runConformance(t *testing.T, name string, sc Scenario, cases []conformanceCase) {
	t.Helper()
	jobs := make([]BatchJob, len(cases))
	for i, c := range cases {
		job := BatchJob{Name: fmt.Sprintf("%s/%v", name, c.kind), Scenario: sc.Clone(), Engine: c.kind, Decimate: 1}
		job.Scenario.Cfg.Solver.HMax = c.hmax
		jobs[i] = job
	}
	results := RunBatch(context.Background(), jobs, BatchOptions{})
	ref := results[0]
	if ref.Err != nil {
		t.Fatalf("reference engine failed: %v", ref.Err)
	}
	if ref.RMSPower <= 0 || math.IsNaN(ref.RMSPower) {
		t.Fatalf("reference produced degenerate power %v", ref.RMSPower)
	}
	for i, r := range results {
		c := cases[i]
		if r.Err != nil {
			t.Errorf("%v failed: %v", c.kind, r.Err)
			continue
		}
		if dvc := math.Abs(r.FinalVc - ref.FinalVc); dvc > c.vcTol {
			t.Errorf("%v final Vc drifted: %v vs reference %v (|d|=%.3g > %.3g)",
				c.kind, r.FinalVc, ref.FinalVc, dvc, c.vcTol)
		}
		if c.powRtol > 0 {
			if rel := math.Abs(r.RMSPower-ref.RMSPower) / ref.RMSPower; rel > c.powRtol {
				t.Errorf("%v RMS power drifted: %v vs reference %v (rel %.3g > %.3g)",
					c.kind, r.RMSPower, ref.RMSPower, rel, c.powRtol)
			}
		} else if i > 0 {
			// Dissipative engine: numerical damping only removes power.
			if r.RMSPower <= 0 || r.RMSPower >= ref.RMSPower {
				t.Errorf("%v RMS power %v outside (0, reference %v): dissipation check failed",
					c.kind, r.RMSPower, ref.RMSPower)
			}
		}
		t.Logf("%-34v finalVc=%.6f rmsP=%.4guW steps=%d", c.kind, r.FinalVc, r.RMSPower*1e6, r.Stats.Steps)
	}
}

// TestConformanceCharge checks engine agreement on the non-autonomous
// supercap charge from a partially charged working point (the operating
// region where the multiplier's diode nonlinearity is fully exercised).
func TestConformanceCharge(t *testing.T) {
	sc := ChargeScenario(2)
	sc.Cfg.InitialVc = 2.5
	runConformance(t, "charge", sc, []conformanceCase{
		{Proposed, 2.5e-4, 0, 0},
		{ExistingTrap, 2.5e-4, 1e-3, 0.10},
		{ExistingBDF2, 1e-4, 1e-3, 0.10},
		{ExistingBE, 2.5e-4, 1e-3, 0},
	})
}

// TestConformanceScenario1 checks engine agreement on a shortened
// Scenario 1 retune: the autonomous path — digital kernel events, the
// frequency meter, the tuning actuator and the mode-switched load — all
// active under every engine.
func TestConformanceScenario1(t *testing.T) {
	if testing.Short() {
		t.Skip("autonomous conformance skipped in -short (seconds of implicit solving)")
	}
	sc := Scenario1(Quick)
	sc.Duration = 20
	sc.Shifts = []FreqShift{{T: 8, Hz: 71}}
	runConformance(t, "scenario1", sc, []conformanceCase{
		{Proposed, 2.5e-4, 0, 0},
		{ExistingTrap, 2.5e-4, 2e-3, 0.15},
		{ExistingBDF2, 1e-4, 2e-3, 0.15},
		{ExistingBE, 2.5e-4, 2e-3, 0},
	})
}
