package harvsim

// Cross-engine conformance suite: the same workloads under all four
// engines, asserting the physics agrees. The CPU-time benchmarks only
// measure speed, so without this suite any one engine could silently
// drift (a sign error in a Jacobian stamp, a broken Newton tolerance)
// and the "speedup at similar accuracy" claim would quietly become
// meaningless.
//
// Tolerances are per engine, calibrated on the seed implementation:
//
//   - the trapezoidal baseline is non-dissipative and matches the
//     proposed engine within a few percent on RMS power;
//   - BDF2 (Gear) is mildly dissipative on the harvester's high-Q
//     resonator; it runs under a tightened step cap and then also
//     agrees within a few percent;
//   - backward Euler's first-order numerical damping collapses the
//     resonant response at any practical step, so for it only the
//     storage voltage (an integral quantity) is asserted, plus the
//     directional fact that dissipation can only lose power.
//
// Final supercap voltage agrees to sub-millivolt across all four.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// conformanceCase is one engine's tolerance row.
type conformanceCase struct {
	kind    EngineKind
	hmax    float64 // step cap (tightened for the dissipative baselines)
	vcTol   float64 // |final Vc - reference| bound [V]
	powRtol float64 // relative RMS-power bound; 0 = damped-engine check only
}

func runConformance(t *testing.T, name string, sc Scenario, cases []conformanceCase) {
	t.Helper()
	jobs := make([]BatchJob, len(cases))
	for i, c := range cases {
		job := BatchJob{Name: fmt.Sprintf("%s/%v", name, c.kind), Scenario: sc.Clone(), Engine: c.kind, Decimate: 1}
		job.Scenario.Cfg.Solver.HMax = c.hmax
		jobs[i] = job
	}
	results := RunBatch(context.Background(), jobs, BatchOptions{})
	ref := results[0]
	if ref.Err != nil {
		t.Fatalf("reference engine failed: %v", ref.Err)
	}
	if ref.RMSPower <= 0 || math.IsNaN(ref.RMSPower) {
		t.Fatalf("reference produced degenerate power %v", ref.RMSPower)
	}
	for i, r := range results {
		c := cases[i]
		if r.Err != nil {
			t.Errorf("%v failed: %v", c.kind, r.Err)
			continue
		}
		if dvc := math.Abs(r.FinalVc - ref.FinalVc); dvc > c.vcTol {
			t.Errorf("%v final Vc drifted: %v vs reference %v (|d|=%.3g > %.3g)",
				c.kind, r.FinalVc, ref.FinalVc, dvc, c.vcTol)
		}
		if c.powRtol > 0 {
			if rel := math.Abs(r.RMSPower-ref.RMSPower) / ref.RMSPower; rel > c.powRtol {
				t.Errorf("%v RMS power drifted: %v vs reference %v (rel %.3g > %.3g)",
					c.kind, r.RMSPower, ref.RMSPower, rel, c.powRtol)
			}
		} else if i > 0 {
			// Dissipative engine: numerical damping only removes power.
			if r.RMSPower <= 0 || r.RMSPower >= ref.RMSPower {
				t.Errorf("%v RMS power %v outside (0, reference %v): dissipation check failed",
					c.kind, r.RMSPower, ref.RMSPower)
			}
		}
		t.Logf("%-34v finalVc=%.6f rmsP=%.4guW steps=%d", c.kind, r.FinalVc, r.RMSPower*1e6, r.Stats.Steps)
	}
}

// TestConformanceCharge checks engine agreement on the non-autonomous
// supercap charge from a partially charged working point (the operating
// region where the multiplier's diode nonlinearity is fully exercised).
func TestConformanceCharge(t *testing.T) {
	sc := ChargeScenario(2)
	sc.Cfg.InitialVc = 2.5
	runConformance(t, "charge", sc, []conformanceCase{
		{Proposed, 2.5e-4, 0, 0},
		{ExistingTrap, 2.5e-4, 1e-3, 0.10},
		{ExistingBDF2, 1e-4, 1e-3, 0.10},
		{ExistingBE, 2.5e-4, 1e-3, 0},
	})
}

// TestConformanceDuffingLinearLimit pins the k3 → 0 limit of the new
// nonlinear path on every engine: DuffingScenario(d, 0) must reproduce
// the linear microgenerator's charge run to machine precision — in fact
// bit for bit, because every Duffing stamping/residual expression is
// gated so the k3 = 0 path computes exactly the pre-existing linear
// arithmetic.
func TestConformanceDuffingLinearLimit(t *testing.T) {
	for _, kind := range []EngineKind{Proposed, ExistingTrap, ExistingBDF2, ExistingBE} {
		duff := DuffingScenario(1.5, 0)
		hD, engD, err := RunScenario(duff, kind, 1)
		if err != nil {
			t.Fatalf("%v duffing: %v", kind, err)
		}
		lin := ChargeScenario(1.5)
		lin.Cfg.InitialVc = duff.Cfg.InitialVc // same operating point
		hL, engL, err := RunScenario(lin, kind, 1)
		if err != nil {
			t.Fatalf("%v linear: %v", kind, err)
		}
		if hD.VcTrace.Len() != hL.VcTrace.Len() {
			t.Fatalf("%v: trace lengths differ: %d vs %d", kind, hD.VcTrace.Len(), hL.VcTrace.Len())
		}
		for i := range hD.VcTrace.Times {
			if hD.VcTrace.Times[i] != hL.VcTrace.Times[i] || hD.VcTrace.Vals[i] != hL.VcTrace.Vals[i] {
				t.Fatalf("%v: Vc sample %d differs: (%v, %v) vs (%v, %v)", kind, i,
					hD.VcTrace.Times[i], hD.VcTrace.Vals[i], hL.VcTrace.Times[i], hL.VcTrace.Vals[i])
			}
		}
		sd, sl := engD.State(), engL.State()
		for i := range sd {
			if sd[i] != sl[i] {
				t.Fatalf("%v: final state[%d] differs: %v vs %v", kind, i, sd[i], sl[i])
			}
		}
		if hD.Energy != hL.Energy {
			t.Fatalf("%v: energy accounting differs: %+v vs %+v", kind, hD.Energy, hL.Energy)
		}
	}
}

// TestConformanceBistableLinearLimit pins the degenerate-well limit of
// the bistable path on every engine: BistableScenario with wellM =
// barrierJ = 0 (and no coupling corrections) must reproduce the
// monostable NoiseScenario run bit for bit — every K1/Xi1/Xi2/Z0
// stamping, residual and basin-observer expression is gated so the
// zero-valued path computes exactly the pre-existing arithmetic.
func TestConformanceBistableLinearLimit(t *testing.T) {
	for _, kind := range []EngineKind{Proposed, ExistingTrap, ExistingBDF2, ExistingBE} {
		bi := BistableScenario(1.5, 0, 0, 0, 0, 55, 85, 7)
		hB, engB, err := RunScenario(bi, kind, 1)
		if err != nil {
			t.Fatalf("%v bistable: %v", kind, err)
		}
		lin := NoiseScenario(1.5, 55, 85, 7)
		hL, engL, err := RunScenario(lin, kind, 1)
		if err != nil {
			t.Fatalf("%v linear: %v", kind, err)
		}
		if hB.VcTrace.Len() != hL.VcTrace.Len() {
			t.Fatalf("%v: trace lengths differ: %d vs %d", kind, hB.VcTrace.Len(), hL.VcTrace.Len())
		}
		for i := range hB.VcTrace.Times {
			if hB.VcTrace.Times[i] != hL.VcTrace.Times[i] || hB.VcTrace.Vals[i] != hL.VcTrace.Vals[i] {
				t.Fatalf("%v: Vc sample %d differs: (%v, %v) vs (%v, %v)", kind, i,
					hB.VcTrace.Times[i], hB.VcTrace.Vals[i], hL.VcTrace.Times[i], hL.VcTrace.Vals[i])
			}
		}
		sb, sl := engB.State(), engL.State()
		for i := range sb {
			if sb[i] != sl[i] {
				t.Fatalf("%v: final state[%d] differs: %v vs %v", kind, i, sb[i], sl[i])
			}
		}
		if hB.Energy != hL.Energy {
			t.Fatalf("%v: energy accounting differs: %+v vs %+v", kind, hB.Energy, hL.Energy)
		}
		// The degenerate well is monostable: the basin observer must stay
		// entirely inert.
		if bs := hB.BasinStats(); bs != (BasinStats{}) {
			t.Fatalf("%v: degenerate well produced basin stats %+v", kind, bs)
		}
	}
}

// TestConformanceBistable checks engine agreement on the double-well
// workload — the first piecewise-tangent workload where the operating
// point jumps between linearisation regions instead of drifting around
// one. The horizon is kept short enough that the (chaotic) inter-well
// trajectory has not decorrelated between integrators, so power and
// voltage agreement remain meaningful properties; every engine must
// also agree on the basin itinerary itself (transit count and final
// basin) over this horizon.
func TestConformanceBistable(t *testing.T) {
	sc := BistableScenario(0.8, BistableWellM, BistableBarrierJ, 0, 0, 8, 40, 7)
	runConformance(t, "bistable", sc, []conformanceCase{
		{Proposed, 2.5e-4, 0, 0},
		{ExistingTrap, 2.5e-4, 1e-3, 0.10},
		{ExistingBDF2, 1e-4, 1e-3, 0.10},
		{ExistingBE, 2.5e-4, 1e-3, 0},
	})

	// Basin itinerary agreement across all four engines.
	type itin struct{ transits, final int }
	var ref itin
	for i, kind := range []EngineKind{Proposed, ExistingTrap, ExistingBDF2, ExistingBE} {
		s := sc.Clone()
		if kind == ExistingBDF2 {
			s.Cfg.Solver.HMax = 1e-4
		} else {
			s.Cfg.Solver.HMax = 2.5e-4
		}
		h, _, err := RunScenario(s, kind, 64)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		bs := h.BasinStats()
		got := itin{bs.Transits, bs.FinalBasin}
		if bs.Transits < 2 {
			t.Errorf("%v: only %d transits — drive too weak to exercise jumps", kind, bs.Transits)
		}
		if i == 0 {
			ref = got
		} else if got != ref {
			t.Errorf("%v: basin itinerary %+v differs from proposed %+v", kind, got, ref)
		}
		h.Release()
	}
}

// TestPropertyBistableStochasticConformance is the seeded property
// suite for the double-well workload: random-but-deterministic draws
// over well geometry, barrier height, coupling corrections and noise
// drive, each run under the proposed engine and the exact-cubic
// trapezoidal ground truth. Per case: energy passivity on both engines,
// final-voltage agreement, and settled RMS power within a calibrated
// tolerance. Horizons stay short for the same reason as the bistable
// conformance case above: inter-well dynamics are chaotic, so long-run
// trajectory agreement between any two integrators is not a meaningful
// property — short-run power and passivity are.
func TestPropertyBistableStochasticConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("property conformance skipped in -short (seconds of implicit solving)")
	}
	const (
		cases   = 6
		powRtol = 0.35
		powAbs  = 1e-6 // [W] diode-threshold floor, as in the Duffing suite
		vcTol   = 2e-3
	)
	rng := rand.New(rand.NewSource(20260807)) // fixed: the suite is deterministic
	for i := 0; i < cases; i++ {
		well := 3e-4 + rng.Float64()*4e-4
		barrier := 0.5e-6 + rng.Float64()*3.5e-6
		xi1 := (rng.Float64() - 0.5) * 400 // |xi1*z| up to ~0.14
		xi2 := (rng.Float64() - 0.5) * 1e5
		rms := 0.3 + rng.Float64()*0.6
		seed := rng.Uint64()
		name := fmt.Sprintf("case%d[well=%.3g barrier=%.3g xi=%.3g/%.3g rms=%.2f seed=%d]",
			i, well, barrier, xi1, xi2, rms, seed)

		sc := BistableScenario(0.8, well, barrier, xi1, xi2, 8, 40, seed)
		sc.Cfg.VibNoise.RMS = rms
		jobs := []BatchJob{
			{Name: name + "/proposed", Scenario: sc.Clone(), Engine: Proposed, Decimate: 1},
			{Name: name + "/trap", Scenario: sc.Clone(), Engine: ExistingTrap, Decimate: 1},
		}
		results := RunBatch(context.Background(), jobs, BatchOptions{})
		ref, trap := results[0], results[1]
		if ref.Err != nil || trap.Err != nil {
			t.Fatalf("%s: run failed: %v / %v", name, ref.Err, trap.Err)
		}
		checkEnergyInvariants(t, name+"/proposed", ref.Energy)
		checkEnergyInvariants(t, name+"/trap", trap.Energy)
		if dvc := math.Abs(ref.FinalVc - trap.FinalVc); dvc > vcTol {
			t.Errorf("%s: final Vc drifted %g (tol %g)", name, dvc, vcTol)
		}
		if trap.RMSPower <= 0 || math.IsNaN(trap.RMSPower) {
			t.Errorf("%s: degenerate baseline power %v", name, trap.RMSPower)
			continue
		}
		if d := math.Abs(ref.RMSPower - trap.RMSPower); d > powAbs+powRtol*trap.RMSPower {
			t.Errorf("%s: RMS power drifted: %v vs %v (|d|=%.3g > %.3g)",
				name, ref.RMSPower, trap.RMSPower, d, powAbs+powRtol*trap.RMSPower)
		}
		t.Logf("%s: P=%.4guW/%.4guW dVc=%.2g transits=%d/%d", name,
			ref.RMSPower*1e6, trap.RMSPower*1e6, math.Abs(ref.FinalVc-trap.FinalVc),
			ref.Transits, trap.Transits)
	}
}

// TestBistableRefactorsBoundedUnderJumps is the engine-level no-thrash
// regression for the retangent policy under inter-well jumps. The
// proposed engine calls Linearise (up to) twice per step attempt on the
// full system — once at the new state, once after the PWL segment
// resolution — so 2.0 refactors per attempt is the structural ceiling,
// and a retangent test whose reference is the SIGNED stamped stiffness
// (which passes through zero at the well inflection points) pins the
// march at that ceiling: every Linearise call mid-jump restamps. The
// absolute-sum reference keeps the microgen's retangent to at most one
// per attempt, landing the forced-jump workload near 1.4 (calibrated;
// the workload is seeded and fully deterministic). The bound at 1.6
// leaves headroom for legitimate drift while still catching the
// every-call thrash mode.
func TestBistableRefactorsBoundedUnderJumps(t *testing.T) {
	sc := BistableScenario(1.5, BistableWellM, BistableBarrierJ, 0, 0, 8, 40, 7)
	sc.Cfg.VibNoise.RMS = 3.0 // hard drive: sustained jumping
	h, eng, err := RunScenario(sc, Proposed, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if bs := h.BasinStats(); bs.Transits < 10 {
		t.Fatalf("only %d transits — not a forced-jump workload", bs.Transits)
	}
	stats := StatsOf(eng)
	attempts := stats.Steps + stats.Rejected
	if ratio := float64(stats.Refactors) / float64(attempts); ratio > 1.6 {
		t.Fatalf("refactors %d for %d step attempts (%.2f per attempt, bound 1.6): retangent thrash under jumps",
			stats.Refactors, attempts, ratio)
	}
	t.Logf("steps=%d rejected=%d refactors=%d (%.2f per attempt)",
		stats.Steps, stats.Rejected, stats.Refactors, float64(stats.Refactors)/float64(attempts))
}

// checkEnergyInvariants asserts the passivity properties that hold for
// ANY parameter draw and any engine — the property-based counterpart of
// golden-answer checks, for a path where no closed form exists:
//
//   - the supercapacitor block is passive: the energy delivered into its
//     terminals covers the stored-energy increase plus the folded
//     equivalent-load energy, with the non-negative remainder being
//     internal branch/leakage dissipation;
//   - the multiplier chain is passive up to the energy its precharged
//     stage capacitors may legitimately release.
//
// Tolerances cover trapezoidal integration error of the accounting
// integrals, scaled to the gross energy flow.
func checkEnergyInvariants(t *testing.T, label string, e Energy) {
	t.Helper()
	gross := math.Abs(e.Harvested) + math.Abs(e.ToStore) + math.Abs(e.Load) +
		math.Abs(e.StoredT1-e.StoredT0)
	tol := 1e-9 + 1e-3*gross
	resid := e.ToStore - (e.StoredT1 - e.StoredT0) - e.Load
	if resid < -tol {
		t.Errorf("%s: supercap passivity violated: residual %g (tol %g, energy %+v)",
			label, resid, tol, e)
	}
	// Stage-capacitor allowance: the Dickson caps are precharged to the
	// initial operating point and may hand back at most that energy.
	if e.ToStore > e.Harvested+2e-5+tol {
		t.Errorf("%s: multiplier passivity violated: delivered %g > harvested %g",
			label, e.ToStore, e.Harvested)
	}
}

// TestPropertyNonlinearStochasticConformance is the property-based
// cross-engine suite for the workload class with no closed-form golden
// answer: random-but-seeded Duffing coefficients and noise bands, each
// case run under the proposed engine and the exact-Newton trapezoidal
// baseline. Asserted per case: the energy passivity invariants on both
// engines, final-voltage agreement, and settled-window RMS power within
// a calibrated tolerance. The parameter ranges deliberately stop short
// of the strongly-hardening chaotic regime (k3 ~ 1e10 under strong
// noise), where trajectory-level divergence between any two integrators
// is exponential and power agreement is not a meaningful property.
func TestPropertyNonlinearStochasticConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("property conformance skipped in -short (seconds of implicit solving)")
	}
	const (
		cases   = 6
		powRtol = 0.35 // calibrated: worst observed ~0.25 over the ranges below
		powAbs  = 1e-6 // [W] floor: below a few uW the multiplier operates at
		// its diode conduction threshold, where relative power is
		// ill-conditioned (threshold-crossing counting), so agreement is
		// asserted absolutely there
		vcTol = 2e-3
	)
	rng := rand.New(rand.NewSource(20260725)) // fixed: the suite is deterministic
	for i := 0; i < cases; i++ {
		k3 := rng.Float64() * 2e9
		fLo := 45 + rng.Float64()*15
		fHi := fLo + 15 + rng.Float64()*20
		rms := 0.4 + rng.Float64()*0.8
		seed := rng.Uint64()
		name := fmt.Sprintf("case%d[k3=%.3g band=%.1f-%.1f rms=%.2f seed=%d]",
			i, k3, fLo, fHi, rms, seed)

		sc := NoiseScenario(1.2, fLo, fHi, seed)
		sc.Cfg.VibNoise.RMS = rms
		sc.Cfg.Microgen.K3 = k3
		jobs := []BatchJob{
			{Name: name + "/proposed", Scenario: sc.Clone(), Engine: Proposed, Decimate: 1},
			{Name: name + "/trap", Scenario: sc.Clone(), Engine: ExistingTrap, Decimate: 1},
		}
		results := RunBatch(context.Background(), jobs, BatchOptions{})
		ref, trap := results[0], results[1]
		if ref.Err != nil || trap.Err != nil {
			t.Fatalf("%s: run failed: %v / %v", name, ref.Err, trap.Err)
		}
		checkEnergyInvariants(t, name+"/proposed", ref.Energy)
		checkEnergyInvariants(t, name+"/trap", trap.Energy)
		if dvc := math.Abs(ref.FinalVc - trap.FinalVc); dvc > vcTol {
			t.Errorf("%s: final Vc drifted %g (tol %g)", name, dvc, vcTol)
		}
		if trap.RMSPower <= 0 || math.IsNaN(trap.RMSPower) {
			t.Errorf("%s: degenerate baseline power %v", name, trap.RMSPower)
			continue
		}
		if d := math.Abs(ref.RMSPower - trap.RMSPower); d > powAbs+powRtol*trap.RMSPower {
			t.Errorf("%s: RMS power drifted: %v vs %v (|d|=%.3g > %.3g)",
				name, ref.RMSPower, trap.RMSPower, d, powAbs+powRtol*trap.RMSPower)
		}
		t.Logf("%s: P=%.4guW/%.4guW dVc=%.2g", name, ref.RMSPower*1e6, trap.RMSPower*1e6,
			math.Abs(ref.FinalVc-trap.FinalVc))
	}
}

// TestConformanceScenario1 checks engine agreement on a shortened
// Scenario 1 retune: the autonomous path — digital kernel events, the
// frequency meter, the tuning actuator and the mode-switched load — all
// active under every engine.
func TestConformanceScenario1(t *testing.T) {
	if testing.Short() {
		t.Skip("autonomous conformance skipped in -short (seconds of implicit solving)")
	}
	sc := Scenario1(Quick)
	sc.Duration = 20
	sc.Shifts = []FreqShift{{T: 8, Hz: 71}}
	runConformance(t, "scenario1", sc, []conformanceCase{
		{Proposed, 2.5e-4, 0, 0},
		{ExistingTrap, 2.5e-4, 2e-3, 0.15},
		{ExistingBDF2, 1e-4, 2e-3, 0.15},
		{ExistingBE, 2.5e-4, 2e-3, 0},
	})
}
