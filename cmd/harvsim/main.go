// Command harvsim runs one simulation of the complete tunable energy
// harvesting system and writes the recorded waveforms as CSV.
//
// Examples:
//
//	harvsim -scenario s1 -engine proposed -out s1.csv
//	harvsim -scenario charge -duration 120 -engine trap
//	harvsim -scenario s2 -fidelity paper -decimate 512
//	harvsim -scenario duffing -k3 1e9
//	harvsim -scenario noise -noise-lo 55 -noise-hi 85 -noise-seed 7 -k3 1e9
package main

import (
	"flag"
	"fmt"
	"os"

	"harvsim/internal/harvester"
	"harvsim/internal/trace"
)

const usageFooter = `
Scenarios (-scenario):
  charge    non-tunable supercap charge-up at 70 Hz (Table I)
  s1        1 Hz retune: ambient shifts 70 -> 71 Hz, controller retunes (Fig. 8)
  s2        14 Hz retune: 64 -> 78 Hz, duty-cycled tuning bursts (Fig. 9)
  track     slow linear chirp the controller must track repeatedly
  duffing   charge-up with a cubic (Duffing) spring (default k3 1e9 N/m^3)
  noise     charge-up under seeded band-limited noise excitation
  bistable  double-well (bistable) device under seeded noise excitation

Engines (-engine):
  proposed  explicit linearised state-space technique (the paper's)
  trap      trapezoidal + Newton-Raphson (SystemVision-like baseline)
  bdf2      Gear/BDF2 + Newton-Raphson (SystemC-A-like baseline)
  be        backward-Euler + Newton-Raphson baseline

Examples:
  harvsim -scenario s1 -engine proposed -out s1.csv
  harvsim -scenario noise -noise-lo 55 -noise-hi 85 -noise-seed 7 -k3 1e9
  harvsim -scenario bistable -well 5e-4 -barrier 2e-6 -noise-seed 7
`

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"Usage: harvsim [flags]\n\nOne simulation of the complete tunable energy harvesting system.\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprint(flag.CommandLine.Output(), usageFooter)
}

func main() {
	var (
		scenario = flag.String("scenario", "s1", "scenario: charge, s1 (1 Hz retune), s2 (14 Hz retune), track (chirp tracking), duffing (nonlinear spring), noise (stochastic wideband), bistable (double well)")
		engine   = flag.String("engine", "proposed", "engine: proposed, trap, bdf2, be")
		fidelity = flag.String("fidelity", "quick", "scenario timing: quick, paper")
		duration = flag.Float64("duration", 0, "override simulated span [s] (0 = scenario default)")
		decimate = flag.Int("decimate", 64, "keep every n-th waveform sample")
		out      = flag.String("out", "", "CSV output path (default: stdout summary only)")
		vcd      = flag.String("vcd", "", "VCD waveform dump path (viewable in GTKWave)")
		plot     = flag.Bool("plot", true, "print ASCII waveform plots")

		k3       = flag.Float64("k3", 0, "cubic (Duffing) spring coefficient [N/m^3] applied to the chosen scenario (duffing scenario default: 1e9)")
		noiseLo  = flag.Float64("noise-lo", 55, "noise scenario: band lower edge [Hz]")
		noiseHi  = flag.Float64("noise-hi", 85, "noise scenario: band upper edge [Hz]")
		noiseRMS = flag.Float64("noise-rms", 0.59, "noise scenario: RMS base acceleration [m/s^2] (bistable scenario default: 0.5)")
		noiseSd  = flag.Uint64("noise-seed", 1, "noise scenario: realisation seed")
		wellM    = flag.Float64("well", harvester.BistableWellM, "bistable scenario: well displacement [m]")
		barrierJ = flag.Float64("barrier", harvester.BistableBarrierJ, "bistable scenario: double-well barrier height [J]")
		xi1      = flag.Float64("xi1", 0, "bistable scenario: linear coupling correction [1/m]")
		xi2      = flag.Float64("xi2", 0, "bistable scenario: quadratic coupling correction [1/m^2]")
	)
	flag.Usage = usage
	flag.Parse()

	// Validate flags up front: a bad value must produce a usage error and
	// exit 2, not a panic (or a silent clamp) deep inside assembly.
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "harvsim: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *decimate < 1 {
		usageErr("-decimate must be >= 1 (got %d)", *decimate)
	}
	if *duration < 0 {
		usageErr("-duration must be >= 0 (got %g)", *duration)
	}
	if !(*noiseLo > 0 && *noiseHi > *noiseLo) {
		usageErr("noise band [%g, %g] must satisfy 0 < lo < hi", *noiseLo, *noiseHi)
	}
	if *noiseRMS < 0 {
		usageErr("-noise-rms must be >= 0 (got %g)", *noiseRMS)
	}
	if *wellM < 0 || *barrierJ < 0 {
		usageErr("-well and -barrier must be >= 0 (got %g, %g)", *wellM, *barrierJ)
	}
	// Track which noise knobs were set explicitly: the bistable scenario
	// has its own band and drive defaults (in-well resonance ~18 Hz sits
	// far below the monostable band), overridden only by explicit flags.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	var fid harvester.Fidelity
	switch *fidelity {
	case "quick":
		fid = harvester.Quick
	case "paper":
		fid = harvester.PaperScale
	default:
		usageErr("unknown -fidelity %q (want quick or paper)", *fidelity)
	}
	var sc harvester.Scenario
	switch *scenario {
	case "charge":
		d := *duration
		if d == 0 {
			d = 60
		}
		sc = harvester.ChargeScenario(d)
	case "s1":
		sc = harvester.Scenario1(fid)
	case "s2":
		sc = harvester.Scenario2(fid)
	case "track":
		d := *duration
		if d == 0 {
			d = 150
		}
		sc = harvester.TrackingScenario(d, 66, 72)
	case "duffing":
		d := *duration
		if d == 0 {
			d = 10
		}
		kk := *k3
		if kk == 0 {
			kk = harvester.DuffingK3Moderate
		}
		sc = harvester.DuffingScenario(d, kk)
	case "noise":
		d := *duration
		if d == 0 {
			d = 10
		}
		sc = harvester.NoiseScenario(d, *noiseLo, *noiseHi, *noiseSd)
		sc.Cfg.VibNoise.RMS = *noiseRMS
	case "bistable":
		d := *duration
		if d == 0 {
			d = 10
		}
		fLo, fHi := 8.0, 40.0 // band around the default in-well resonance
		if setFlags["noise-lo"] {
			fLo = *noiseLo
		}
		if setFlags["noise-hi"] {
			fHi = *noiseHi
		}
		sc = harvester.BistableScenario(d, *wellM, *barrierJ, *xi1, *xi2, fLo, fHi, *noiseSd)
		if setFlags["noise-rms"] {
			sc.Cfg.VibNoise.RMS = *noiseRMS
		}
	default:
		usageErr("unknown -scenario %q (want charge, s1, s2, track, duffing, noise or bistable)", *scenario)
	}
	if *duration > 0 {
		sc.Duration = *duration
	}
	// -k3 generalises beyond the duffing scenario: any workload can run
	// with the nonlinear spring.
	if *k3 != 0 {
		sc.Cfg.Microgen.K3 = *k3
	}

	var kind harvester.EngineKind
	switch *engine {
	case "proposed":
		kind = harvester.Proposed
	case "trap":
		kind = harvester.ExistingTrap
	case "bdf2":
		kind = harvester.ExistingBDF2
	case "be":
		kind = harvester.ExistingBE
	default:
		usageErr("unknown -engine %q (want proposed, trap, bdf2 or be)", *engine)
	}

	fmt.Printf("scenario %s (%s), engine %s, %.4g s simulated\n",
		sc.Name, fid, kind, sc.Duration)
	h, _, err := harvester.RunScenario(sc, kind, *decimate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulation failed: %v\n", err)
		os.Exit(1)
	}

	_, vcEnd := h.VcTrace.Last()
	fmt.Printf("final supercap voltage: %.4f V\n", vcEnd)
	if sc.Cfg.Microgen.Bistable() {
		bs := h.BasinStats()
		fmt.Printf("basins: %d inter-well transits (%d settled), final basin %+d\n",
			bs.Transits, bs.SettledTransits, bs.FinalBasin)
	}
	fmt.Printf("energy: harvested %.4g J, to store %.4g J, load %.4g J, stored %+.4g J\n",
		h.Energy.Harvested, h.Energy.ToStore, h.Energy.Load,
		h.Energy.StoredT1-h.Energy.StoredT0)
	if h.MCU != nil {
		fmt.Printf("MCU: %d wakes, %d measurements, %d tuning runs, %d aborts\n",
			h.MCU.Stats.Wakes, h.MCU.Stats.Measures, h.MCU.Stats.Tunes, h.MCU.Stats.Aborts)
		fmt.Printf("final resonance: %.2f Hz (ambient %.2f Hz)\n",
			h.Cfg.Microgen.TunedHz(h.Act.ForceAt(sc.Duration)), h.Vib.Freq(sc.Duration))
	}
	if *plot {
		fmt.Println(trace.ASCIIPlot(h.VcTrace, 76, 10))
		rms := h.PMultIn.WindowedRMS(0.05, sc.Duration/200)
		if rms.Len() > 2 {
			fmt.Println(trace.ASCIIPlot(rms, 76, 10))
		}
	}
	if *vcd != "" {
		f, err := os.Create(*vcd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *vcd, err)
			os.Exit(1)
		}
		if err := trace.WriteVCD(f, 1e-4, h.VcTrace, h.PMultIn, h.FresTrace); err != nil {
			fmt.Fprintf(os.Stderr, "write VCD: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote VCD to %s\n", *vcd)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *out, err)
			os.Exit(1)
		}
		defer f.Close()
		rows, err := trace.WriteCSV(f, h.VcTrace, h.PMultIn, h.FresTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "write CSV: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d rows to %s\n", rows, *out)
	}
}
