// Command benchgate converts `go test -bench -benchmem` output into the
// repo's machine-readable benchmark format (internal/benchfmt) and gates
// it against a committed baseline, failing when ns/op or allocs/op
// regress beyond the tolerance. It is the CI benchmark-regression gate:
//
//	go test -run '^$' -bench 'Benchmark(Table1|Table2|BatchSweep)' \
//	    -benchmem . | tee bench.out
//	benchgate -parse bench.out -out bench.json          # snapshot
//	benchgate -parse bench.out -baseline BENCH_2.json   # gate (exit 1)
//
// Refresh the committed baseline after an intentional performance change
// with -write-baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"harvsim/internal/benchfmt"
)

func main() {
	var (
		parse     = flag.String("parse", "", "go-bench output file to convert ('-' = stdin)")
		out       = flag.String("out", "", "write the parsed/current report as JSON to this path")
		baseline  = flag.String("baseline", "", "baseline report to gate against")
		current   = flag.String("current", "", "current report JSON (alternative to -parse)")
		tol       = flag.Float64("tol", 0.20, "allowed fractional regression in ns/op and allocs/op")
		nsTol     = flag.Float64("ns-tol", 0, "override -tol for ns/op only (0 = use -tol); widen when the baseline machine and the runner differ, allocs/op stays strict")
		writeBase = flag.Bool("write-baseline", false, "overwrite -baseline with the current report instead of gating")
	)
	flag.Parse()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
		os.Exit(2)
	}

	var cur benchfmt.Report
	haveCur := false
	switch {
	case *parse != "" && *current != "":
		fail("-parse and -current are mutually exclusive")
	case *parse != "":
		var rd io.Reader
		if *parse == "-" {
			rd = os.Stdin
		} else {
			f, err := os.Open(*parse)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			rd = f
		}
		rep, err := benchfmt.ParseGoBench(rd)
		if err != nil {
			fail("parse: %v", err)
		}
		if len(rep.Benchmarks) == 0 {
			fail("no benchmark lines found in %s", *parse)
		}
		rep.GoVersion = runtime.Version()
		rep.Sort()
		cur, haveCur = rep, true
	case *current != "":
		rep, err := benchfmt.ReadFile(*current)
		if err != nil {
			fail("%v", err)
		}
		cur, haveCur = rep, true
	}

	if !haveCur {
		fail("nothing to do: need -parse or -current (see -help)")
	}
	if *out != "" {
		if err := cur.WriteFile(*out); err != nil {
			fail("%v", err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(cur.Benchmarks), *out)
	}
	if *baseline == "" {
		return
	}
	if *writeBase {
		if err := cur.WriteFile(*baseline); err != nil {
			fail("%v", err)
		}
		fmt.Printf("benchgate: baseline %s refreshed (%d benchmarks)\n", *baseline, len(cur.Benchmarks))
		return
	}

	base, err := benchfmt.ReadFile(*baseline)
	if err != nil {
		fail("%v", err)
	}
	effNsTol := *tol
	if *nsTol > 0 {
		effNsTol = *nsTol
	}
	regressions, missing := benchfmt.CompareTol(base, cur, effNsTol, *tol)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchgate: MISSING %s (present in baseline, absent in run)\n", name)
	}
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "benchgate: REGRESSION %s\n", r)
	}
	if len(regressions) > 0 || len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — %d regression(s), %d missing vs %s (tol %.0f%%)\n",
			len(regressions), len(missing), *baseline, *tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — %d benchmarks within %.0f%% of %s\n",
		len(base.Benchmarks), *tol*100, *baseline)
}
