package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"harvsim/internal/wire"
)

// fakeServer serves the two endpoints runRemote uses — POST /v1/sweep
// (202 + accept envelope for `jobs` jobs) and the stream URL, whose
// body is delegated to the test case.
func fakeServer(t *testing.T, jobs int, stream http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(wire.SweepAccepted{
			ID: "t1", Jobs: jobs,
			StatusURL: "/v1/jobs/t1", StreamURL: "/v1/jobs/t1/stream",
		})
	})
	mux.HandleFunc("/v1/jobs/t1/stream", stream)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// okResult renders one complete NDJSON result line for job i.
func okResult(i int) string {
	b, _ := json.Marshal(wire.Result{
		Type: wire.LineResult, Index: i, Name: fmt.Sprintf("job-%d", i),
		Metric: 1, FinalVc: 2.5, Steps: 10,
	})
	return string(b) + "\n"
}

func summaryLine(jobs, failed int) string {
	b, _ := json.Marshal(wire.Summary{Type: wire.LineSummary, Jobs: jobs, Failed: failed})
	return string(b) + "\n"
}

// callRemote drives runRemote against srv with a minimal 1-candidate
// spec shape (the fake server ignores the spec; only the stream
// contract is under test).
func callRemote(srv *httptest.Server) (string, error) {
	var out strings.Builder
	err := runRemote(&out, srv.URL, 1, 2.5, 1, 5, nil, 0, 1, bistableOpts{}, false, false, 5, false)
	return out.String(), err
}

// TestRunRemoteTruncatedStream: the server dies (or drops the
// connection) after emitting some results but before the summary —
// the exact "server killed mid-sweep" shape. runRemote must return an
// error naming the missing summary, not render a partial table.
func TestRunRemoteTruncatedStream(t *testing.T) {
	srv := fakeServer(t, 4, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okResult(0))
		fmt.Fprint(w, okResult(1))
		// Connection closes cleanly here: 2 of 4 results, no summary.
	})
	out, err := callRemote(srv)
	if err == nil {
		t.Fatalf("want error for truncated stream, got nil; output:\n%s", out)
	}
	if !strings.Contains(err.Error(), "summary") || !strings.Contains(err.Error(), "2 of 4") {
		t.Errorf("error %q should say the summary is missing after 2 of 4 results", err)
	}
	if strings.Contains(out, "completed in") {
		t.Errorf("partial sweep rendered as a completed report:\n%s", out)
	}
}

// TestRunRemoteMidStreamAbort: the server panics mid-stream after
// flushing partial data (http.ErrAbortHandler aborts the connection
// without a clean close), so the client sees a read error — which must
// surface, not be swallowed into a partial success.
func TestRunRemoteMidStreamAbort(t *testing.T) {
	srv := fakeServer(t, 3, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okResult(0))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	})
	out, err := callRemote(srv)
	if err == nil {
		t.Fatalf("want error for aborted stream, got nil; output:\n%s", out)
	}
	if strings.Contains(out, "completed in") {
		t.Errorf("aborted sweep rendered as a completed report:\n%s", out)
	}
}

// TestRunRemoteMissingResults: a summary arrives but some result lines
// were lost — runRemote must flag the count mismatch instead of
// padding the table with zero rows.
func TestRunRemoteMissingResults(t *testing.T) {
	srv := fakeServer(t, 3, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okResult(0))
		fmt.Fprint(w, okResult(2))
		fmt.Fprint(w, summaryLine(3, 0))
	})
	_, err := callRemote(srv)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation error, got %v", err)
	}
}

// TestRunRemoteDuplicateIndex: two results claiming the same job slot
// would silently drop one job's outcome; runRemote must reject it.
func TestRunRemoteDuplicateIndex(t *testing.T) {
	srv := fakeServer(t, 2, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okResult(0))
		fmt.Fprint(w, okResult(0))
		fmt.Fprint(w, summaryLine(2, 0))
	})
	_, err := callRemote(srv)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-index error, got %v", err)
	}
}

// TestRunRemoteServerSideFailure: a complete stream whose summary
// reports failed jobs renders the report (the user should see which
// candidates failed) but still returns an error so the process exits
// non-zero.
func TestRunRemoteServerSideFailure(t *testing.T) {
	srv := fakeServer(t, 2, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okResult(0))
		bad, _ := json.Marshal(wire.Result{
			Type: wire.LineResult, Index: 1, Name: "job-1", Error: "engine diverged",
		})
		fmt.Fprintf(w, "%s\n", bad)
		fmt.Fprint(w, summaryLine(2, 1))
	})
	out, err := callRemote(srv)
	if err == nil || !strings.Contains(err.Error(), "1 of 2 jobs failed") {
		t.Fatalf("want failed-jobs error, got %v", err)
	}
	if !strings.Contains(out, "completed in") {
		t.Errorf("failed sweep should still render its report:\n%s", out)
	}
}

// TestRunRemoteCompleteStream: the happy path stays green — a full
// result set plus summary returns nil and renders the report.
func TestRunRemoteCompleteStream(t *testing.T) {
	srv := fakeServer(t, 2, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okResult(1))
		fmt.Fprint(w, okResult(0))
		fmt.Fprint(w, summaryLine(2, 0))
	})
	out, err := callRemote(srv)
	if err != nil {
		t.Fatalf("complete stream: %v", err)
	}
	if !strings.Contains(out, "completed in") || !strings.Contains(out, "best design") {
		t.Errorf("report missing expected sections:\n%s", out)
	}
}
