// Command sweep demonstrates the paper's stated motivation for fast
// simulation: automated design exploration, where "the best topology and
// optimal parameters of the energy harvester are obtained iteratively
// using multiple simulations". It sweeps the voltage-multiplier design
// (stage count and stage capacitance) through the concurrent batch
// runner and ranks configurations by the power delivered into the
// partially charged storage element — a workload that is practical
// because each full-system simulation takes a fraction of a second under
// the explicit engine, and that now scales across every core the machine
// has, caches repeated candidates, averages stochastic workloads over
// seed ensembles, and (with -remote) runs against a long-lived sweep
// server whose cache is shared by every client.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"sort"

	"harvsim/internal/batch"
	"harvsim/internal/harvester"
	"harvsim/internal/tracing"
	"harvsim/internal/wire"
)

const usageFooter = `
Base workloads (chosen by flags, all sweep the Dickson multiplier design):
  default          sinusoidal 70 Hz charge scenario (deterministic)
  -noise-seed N    seeded band-limited noise excitation, 55-85 Hz,
                   RMS 0.59 m/s^2 (N != 0 selects this workload)
  -bistable        double-well (bistable) device under seeded noise,
                   8-40 Hz band around the in-well resonance; tune the
                   well with -well/-barrier/-xi1/-xi2. Summaries and
                   ensemble tables gain basin columns (high-orbit
                   fraction, transit counts, per-basin mean/CI)

Ensembles (stochastic workloads only):
  -seeds N         run every design point under N noise realisations
                   (seeds derived from -noise-seed) and rank by the
                   ensemble mean power, reporting variance and 95% CI

Result cache:
  -cache           serve repeated candidates from an in-memory
                   content-addressed result cache
  -cache-dir DIR   additionally persist results under DIR, so re-running
                   the sweep (or zooming into the argmax region) is
                   served from disk instead of re-simulating
  -v               verbose: full cache counters (hits/misses/evictions/
                   in-flight shares) and the complete ensemble table with
                   95% CI half-widths, so warm-vs-cold behaviour is
                   observable without reading code

Remote mode:
  -remote URL      run the identical sweep against a long-lived sweep
                   server (cmd/serve) instead of simulating locally: the
                   spec travels as declarative JSON, results stream back
                   as NDJSON, and the server's shared cache makes repeats
                   (from any client) free

Tracing:
  -trace           record a span per sweep phase and job (cache probe,
                   march, factorisation, stability scan) and render a
                   per-phase waterfall of the slowest jobs after the
                   ranking tables; works locally and with -remote
                   (against a worker or a coordinator fleet, whose
                   merged trace spans every worker). Results are
                   bit-identical with and without -trace.
  -trace-top N     waterfall rows: the N slowest jobs (default 5)

Examples:
  sweep -sim 12 -vc 2.5 -top 5
  sweep -noise-seed 7 -seeds 8 -cache-dir /tmp/harvsim-cache -v
  sweep -bistable -noise-seed 7 -seeds 8 -barrier 8e-6
  sweep -remote http://127.0.0.1:8080 -sim 12 -vc 2.5
  sweep -remote http://127.0.0.1:8080 -trace -trace-top 3
`

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"Usage: sweep [flags]\n\nDickson voltage-multiplier design sweep over the concurrent batch runner.\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprint(flag.CommandLine.Output(), usageFooter)
}

// bistableOpts gathers the double-well workload knobs threaded from the
// flags into both the local scenario and the declarative remote spec.
type bistableOpts struct {
	on                      bool
	well, barrier, xi1, xi2 float64
}

// The bistable workload's excitation band: wrapped around the default
// geometry's ~18 Hz in-well resonance rather than the monostable
// device's 55-85 Hz band.
const (
	bistableFLo = 8.0
	bistableFHi = 40.0
)

// parseFloatList parses a comma-separated float list ("0,1e9,5e9").
func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		simFor   = flag.Float64("sim", 12, "simulated span per candidate [s]")
		vc       = flag.Float64("vc", 2.5, "storage operating point [V]")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS; in remote mode, requested of the server)")
		topK     = flag.Int("top", 10, "ranked designs to print")
		k3List   = flag.String("k3", "", "comma-separated cubic spring coefficients [N/m^3] to add as a Duffing sweep axis (e.g. 0,1e9,5e9)")
		noiseSd  = flag.Uint64("noise-seed", 0, "nonzero: replace the sinusoid with seeded band-limited noise (55-85 Hz, RMS 0.59 m/s^2)")
		bistable = flag.Bool("bistable", false, "double-well (bistable) device under seeded noise (8-40 Hz band); needs -noise-seed")
		wellM    = flag.Float64("well", harvester.BistableWellM, "bistable: well displacement [m]")
		barrierJ = flag.Float64("barrier", harvester.BistableBarrierJ, "bistable: double-well barrier height [J]")
		xi1      = flag.Float64("xi1", 0, "bistable: linear coupling correction [1/m]")
		xi2      = flag.Float64("xi2", 0, "bistable: quadratic coupling correction [1/m^2]")
		seeds    = flag.Int("seeds", 1, "noise realisations per design point (>1 adds a seed ensemble axis and reports mean/CI statistics; needs -noise-seed)")
		useCache = flag.Bool("cache", false, "serve repeated candidates from an in-memory result cache")
		cacheDir = flag.String("cache-dir", "", "persist cached results under this directory (implies -cache)")
		remote   = flag.String("remote", "", "sweep server base URL (e.g. http://127.0.0.1:8080); runs the sweep remotely instead of simulating locally")
		noLock   = flag.Bool("no-lockstep", false, "disable the ensemble-lockstep dispatch (A/B timing and bisection; results are bit-identical either way)")
		trace    = flag.Bool("trace", false, "trace the sweep and render a per-phase waterfall of the slowest jobs (results are bit-identical either way)")
		traceTop = flag.Int("trace-top", 5, "slowest jobs to show in the -trace waterfall")
		verbose  = flag.Bool("v", false, "verbose: full cache counters and complete ensemble CI table")
	)
	flag.Usage = usage
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *seeds < 1 {
		usageErr("-seeds must be >= 1 (got %d)", *seeds)
	}
	if *seeds > 1 && *noiseSd == 0 {
		usageErr("-seeds %d needs a stochastic workload: set -noise-seed (the ensemble base seed)", *seeds)
	}
	if *bistable && *noiseSd == 0 {
		usageErr("-bistable is noise-driven: set -noise-seed (the realisation seed)")
	}
	if *wellM < 0 || *barrierJ < 0 {
		usageErr("-well and -barrier must be >= 0 (got %g, %g)", *wellM, *barrierJ)
	}
	if *remote != "" && (*useCache || *cacheDir != "") {
		usageErr("-cache/-cache-dir are local-mode flags; the server at -remote owns the (always-on) shared cache")
	}
	var k3s []float64
	if *k3List != "" {
		var err error
		k3s, err = parseFloatList(*k3List)
		if err != nil {
			usageErr("-k3: %v", err)
		}
		if len(k3s) == 0 {
			usageErr("-k3 %q holds no values", *k3List)
		}
	}

	bi := bistableOpts{}
	if *bistable {
		bi = bistableOpts{on: true, well: *wellM, barrier: *barrierJ, xi1: *xi1, xi2: *xi2}
	}

	if *remote != "" {
		if err := runRemote(os.Stdout, *remote, *simFor, *vc, *workers, *topK, k3s, *noiseSd, *seeds, bi, *noLock, *trace, *traceTop, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: remote: %v\n", err)
			os.Exit(1)
		}
		return
	}

	base := harvester.ChargeScenario(*simFor)
	base.Cfg.InitialVc = *vc
	if *noiseSd != 0 {
		noisy := harvester.NoiseScenario(*simFor, 55, 85, *noiseSd)
		noisy.Cfg.InitialVc = *vc
		base = noisy
	}
	if bi.on {
		// Mirrors remoteSpec's "bistable" wire scenario exactly, so local
		// and remote runs share cache identities.
		b := harvester.BistableScenario(*simFor, bi.well, bi.barrier, bi.xi1, bi.xi2,
			bistableFLo, bistableFHi, *noiseSd)
		b.Cfg.InitialVc = *vc
		base = b
	}
	spec := batch.SweepSpec{
		Base: batch.Job{
			Name:     "dickson",
			Scenario: base,
			Engine:   harvester.Proposed,
		},
		Axes: []batch.Axis{
			batch.IntAxis("stages", []int{2, 3, 4, 5, 6, 7}, func(j *batch.Job, n int) {
				j.Scenario.Cfg.Dickson.Stages = n
			}),
			batch.FloatAxis("cstage", []float64{10e-6, 22e-6, 47e-6}, func(j *batch.Job, c float64) {
				j.Scenario.Cfg.Dickson.CStage = c
			}),
		},
	}
	if len(k3s) > 0 {
		spec.Axes = append(spec.Axes, batch.FloatAxis("k3", k3s, func(j *batch.Job, v float64) {
			j.Scenario.Cfg.Microgen.K3 = v
		}))
	}
	if *seeds > 1 {
		spec.Axes = append(spec.Axes, batch.SeedAxis("seed", batch.Seeds(*noiseSd, *seeds),
			func(j *batch.Job, s uint64) { j.Scenario.Cfg.VibNoise.Seed = s }))
	}
	// Rank by mean power into the store over the settled window. The
	// metric closure is shared by every expanded job, so it derives
	// everything from its per-job harvester argument; MetricKey declares
	// it a pure function of the run so results stay cacheable (the same
	// named metric the wire format and the sweep server resolve, so
	// local and remote runs share cache identities).
	spec.Base.Metric = func(h *harvester.Harvester, eng harvester.Engine) float64 {
		return h.PStoreTrace.Slice(*simFor/3, *simFor).Mean()
	}
	spec.Base.MetricKey = wire.MetricPStoreMeanSettled

	opt := batch.Options{Workers: *workers, NoLockstep: *noLock}
	switch {
	case *cacheDir != "":
		c, err := batch.NewDiskCache(0, *cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		opt.Cache = c
	case *useCache:
		opt.Cache = batch.NewCache(0)
	}

	// -trace: the local run owns its recorder directly — same span
	// topology the server records, minus the queue phase it doesn't have.
	var rec *tracing.Recorder
	var rootSpan *tracing.Active
	if *trace {
		rec = tracing.New("", 0)
		rootSpan = rec.Start("sweep", "")
		opt.Trace = rec
		opt.TraceParent = rootSpan.ID()
	}

	fmt.Printf("design sweep: %d candidates, %.3g s simulated each, %d workers\n",
		spec.Size(), *simFor, opt.EffectiveWorkers())
	start := time.Now()
	results, err := batch.Sweep(context.Background(), spec, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)
	rootSpan.End()
	rec.Finish()

	var cacheStats *batch.CacheStats
	if opt.Cache != nil {
		cs := opt.Cache.Stats()
		cacheStats = &cs
	}
	failed := report(os.Stdout, results, wall, *topK, *seeds, *vc, *simFor, cacheStats, *verbose)
	if rec != nil {
		spans, _ := rec.Snapshot(0)
		renderTrace(os.Stdout, spans, *traceTop)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// renderTrace prints a completed trace: the sweep-level phases first
// (root, expand, queue/exec or per-worker shards), then a per-phase
// waterfall of the slowest jobs — each phase bar positioned and scaled
// inside its job's wall-clock window, so "slow because cache-miss
// march" and "slow because factorisation churn" read directly off the
// terminal.
func renderTrace(w io.Writer, spans []tracing.Span, top int) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "\ntrace: no spans recorded")
		return
	}
	byID := make(map[string]tracing.Span, len(spans))
	children := make(map[string][]tracing.Span)
	for _, s := range spans {
		byID[s.ID] = s
		children[s.Parent] = append(children[s.Parent], s)
	}
	depth := func(s tracing.Span) int {
		d := 0
		for {
			p, ok := byID[s.Parent]
			if !ok || d >= 8 {
				return d
			}
			d++
			s = p
		}
	}

	fmt.Fprintf(w, "\ntrace %s (%d spans)\n", spans[0].Trace, len(spans))
	for _, s := range spans {
		if s.Job >= 0 {
			continue
		}
		label := s.Name
		if s.Worker != "" {
			label += " " + s.Worker
		}
		fmt.Fprintf(w, "  %-52s %12s\n", strings.Repeat("  ", depth(s))+label, s.Dur.Round(time.Microsecond))
	}

	var jobs []tracing.Span
	for _, s := range spans {
		if s.Name == "job" && s.Job >= 0 {
			jobs = append(jobs, s)
		}
	}
	if len(jobs) == 0 {
		return
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Dur > jobs[j].Dur })
	if top <= 0 || top > len(jobs) {
		top = len(jobs)
	}
	const width = 32
	fmt.Fprintf(w, "slowest %d of %d jobs (bars span each job's window):\n", top, len(jobs))
	for _, js := range jobs[:top] {
		fmt.Fprintf(w, "  job %-6d %-37s %12s\n", js.Job, "", js.Dur.Round(time.Microsecond))
		var phases []tracing.Span
		var walk func(id string)
		walk = func(id string) {
			for _, c := range children[id] {
				phases = append(phases, c)
				walk(c.ID)
			}
		}
		walk(js.ID)
		sort.Slice(phases, func(i, j int) bool { return phases[i].Start.Before(phases[j].Start) })
		for _, p := range phases {
			lo, n := 0, width
			if js.Dur > 0 {
				off := p.Start.Sub(js.Start)
				if off < 0 {
					off = 0
				}
				lo = int(float64(off) / float64(js.Dur) * width)
				n = int(float64(p.Dur) / float64(js.Dur) * width)
			}
			if lo >= width {
				lo = width - 1
			}
			if n < 1 {
				n = 1
			}
			if lo+n > width {
				n = width - lo
			}
			bar := strings.Repeat(" ", lo) + strings.Repeat("#", n) + strings.Repeat(" ", width-lo-n)
			fmt.Fprintf(w, "    %-10s [%s] %12s\n", p.Name, bar, p.Dur.Round(time.Microsecond))
		}
	}
}

// report renders a completed sweep — shared by local and remote modes so
// both read identically — and returns the number of failed candidates
// (the caller decides the process exit status; report itself never
// exits, so the remote path can wrap the count in a proper error).
func report(w io.Writer, results []batch.Result, wall time.Duration, topK, seeds int, vc, simFor float64,
	cacheStats *batch.CacheStats, verbose bool) int {
	sum := batch.Summarize(results)
	fmt.Fprintf(w, "completed in %v wall (summed job time %v)\n\n",
		wall.Round(time.Millisecond), sum.CPUTime.Round(time.Millisecond))

	var ranked []batch.EnsemblePoint
	if seeds > 1 {
		points := batch.Ensembles(results)
		ranked = batch.EnsembleTop(points, topK)
		fmt.Fprintf(w, "ensemble power into store at %.3g V over %d seeds (top %d by mean):\n",
			vc, seeds, topK)
		fmt.Fprint(w, batch.EnsembleTable(ranked))
		if verbose && len(points) > len(ranked) {
			fmt.Fprintf(w, "\nall %d design points (95%% CI half-widths):\n", len(points))
			fmt.Fprint(w, batch.EnsembleTable(points))
		}
	} else {
		fmt.Fprintf(w, "power into store at %.3g V (top %d):\n", vc, topK)
		fmt.Fprint(w, batch.Table(batch.Top(results, topK)))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, sum.String())
	if cacheStats != nil {
		cs := cacheStats
		fmt.Fprintf(w, "cache: %d hits (%d from disk, %d in-flight shares), %d misses, %d stale, %d evictions, %d entries\n",
			cs.Hits, cs.DiskHits, cs.Shared, cs.Misses, cs.Stale, cs.Evictions, cs.Entries)
		if verbose {
			total := cs.Hits + cs.Misses
			if total > 0 {
				fmt.Fprintf(w, "cache: %.1f%% hit rate over %d lookups (cold sweeps miss everything; a warm repeat hits everything)\n",
					100*float64(cs.Hits)/float64(total), total)
			}
		}
	}
	if sum.ArgMaxMetric >= 0 && seeds == 1 {
		best := results[sum.ArgMaxMetric]
		fmt.Fprintf(w, "\nbest design: %s -> %.1f uW\n", best.Name, best.Metric*1e6)
	}
	if len(ranked) > 0 && ranked[0].N > 0 {
		fmt.Fprintf(w, "\nbest design: %s -> %.1f +/- %.1f uW (95%% CI over %d seeds)\n",
			ranked[0].Group, ranked[0].Mean*1e6, ranked[0].CI95*1e6, ranked[0].N)
	}
	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "\n%d candidates failed:\n", sum.Failed)
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "  %s: %v\n", r.Name, r.Err)
			}
		}
	}
	return sum.Failed
}

// remoteSpec builds the declarative wire form of the exact sweep the
// local mode assembles with closures — the wire round-trip tests pin
// that both produce identical job identities, so a remote run hits
// cache entries primed locally and vice versa.
func remoteSpec(simFor, vc float64, k3s []float64, noiseSd uint64, seeds int, bi bistableOpts) wire.Spec {
	sc := wire.Scenario{Kind: "charge", DurationS: simFor,
		Set: map[string]float64{"initial_vc": vc}}
	if noiseSd != 0 {
		sc = wire.Scenario{Kind: "noise", DurationS: simFor,
			NoiseFLoHz: 55, NoiseFHiHz: 85, NoiseSeed: wire.Seed(noiseSd),
			Set: map[string]float64{"initial_vc": vc}}
	}
	if bi.on {
		sc = wire.Scenario{Kind: "bistable", DurationS: simFor,
			WellM: bi.well, BarrierJ: bi.barrier, Xi1: bi.xi1, Xi2: bi.xi2,
			NoiseFLoHz: bistableFLo, NoiseFHiHz: bistableFHi, NoiseSeed: wire.Seed(noiseSd),
			Set: map[string]float64{"initial_vc": vc}}
	}
	spec := wire.Spec{
		Name:     "dickson",
		V:        wire.Version,
		Scenario: sc,
		Metric:   wire.MetricPStoreMeanSettled,
		Axes: []wire.Axis{
			{Kind: wire.AxisInt, Param: "dickson.stages", Name: "stages", Ints: []int{2, 3, 4, 5, 6, 7}},
			{Kind: wire.AxisFloat, Param: "dickson.cstage", Name: "cstage", Values: []float64{10e-6, 22e-6, 47e-6}},
		},
	}
	if len(k3s) > 0 {
		spec.Axes = append(spec.Axes, wire.Axis{Kind: wire.AxisFloat, Param: "microgen.k3", Name: "k3", Values: k3s})
	}
	if seeds > 1 {
		spec.Axes = append(spec.Axes, wire.Axis{Kind: wire.AxisSeed, Name: "seed",
			BaseSeed: wire.Seed(noiseSd), Count: seeds})
	}
	return spec
}

// runRemote submits the sweep to a server and renders the streamed
// results with the same report the local mode prints. It returns a
// non-nil error — and renders nothing that could be mistaken for a
// successful sweep — whenever the stream is truncated (connection
// dropped, server killed mid-sweep, missing or duplicate results) or
// any job failed server-side; the caller turns that into a non-zero
// exit.
func runRemote(w io.Writer, baseURL string, simFor, vc float64, workers, topK int, k3s []float64,
	noiseSd uint64, seeds int, bi bistableOpts, noLockstep, traced bool, traceTop int, verbose bool) error {
	baseURL = strings.TrimRight(baseURL, "/")
	req := wire.SweepRequest{Spec: remoteSpec(simFor, vc, k3s, noiseSd, seeds, bi),
		Workers: workers, NoLockstep: noLockstep}
	if traced {
		req.Trace = tracing.NewTraceID()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	start := time.Now()
	resp, err := http.Post(baseURL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	acc := wire.SweepAccepted{}
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		// Every non-2xx carries the canonical envelope; surface its stable
		// code (and whether a retry can help) rather than raw HTTP noise.
		var e wire.Error
		if json.Unmarshal(msg, &e) == nil && e.Error.Code != "" {
			hint := ""
			if e.Error.Retryable {
				hint = "; retrying may succeed"
			}
			return fmt.Errorf("server refused sweep [%s]: %s%s", e.Error.Code, e.Error.Message, hint)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	err = json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decoding accept response: %w", err)
	}
	fmt.Fprintf(w, "design sweep: %d candidates on %s (job %s)\n", acc.Jobs, baseURL, acc.ID)

	stream, err := http.Get(baseURL + acc.StreamURL)
	if err != nil {
		return err
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: %s", stream.Status)
	}

	// Reconstruct batch results from the NDJSON lines so the rendering
	// (ranking, ensembles, summary) is byte-for-byte the local one.
	results := make([]batch.Result, 0, acc.Jobs)
	var summary *wire.Summary
	scanner := bufio.NewScanner(stream.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &probe); err != nil {
			return fmt.Errorf("bad stream line %q: %v", scanner.Text(), err)
		}
		switch probe.Type {
		case wire.LineResult:
			var r wire.Result
			if err := json.Unmarshal(scanner.Bytes(), &r); err != nil {
				return err
			}
			results = append(results, wire.BatchResultOf(r))
		case wire.LineSummary:
			s := wire.Summary{}
			if err := json.Unmarshal(scanner.Bytes(), &s); err != nil {
				return err
			}
			summary = &s
		default:
			return fmt.Errorf("unknown stream line type %q", probe.Type)
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("stream read failed after %d of %d results: %w (server killed mid-sweep?)",
			len(results), acc.Jobs, err)
	}
	if summary == nil {
		return fmt.Errorf("stream ended without a summary after %d of %d results (server killed mid-sweep?)",
			len(results), acc.Jobs)
	}
	if len(results) != acc.Jobs {
		return fmt.Errorf("stream truncated: received %d of %d results", len(results), acc.Jobs)
	}
	wall := time.Since(start)

	// Job-order results (the stream is completion-ordered). Every index
	// must land exactly once: with the count check above, a range or
	// duplicate violation means a hole would render as a silent zero row.
	ordered := make([]batch.Result, acc.Jobs)
	seen := make([]bool, acc.Jobs)
	for _, r := range results {
		if r.Index < 0 || r.Index >= acc.Jobs {
			return fmt.Errorf("stream result index %d outside [0, %d)", r.Index, acc.Jobs)
		}
		if seen[r.Index] {
			return fmt.Errorf("duplicate stream result for job %d", r.Index)
		}
		seen[r.Index] = true
		ordered[r.Index] = r
	}

	var cacheStats *batch.CacheStats
	if verbose {
		if resp, err := http.Get(baseURL + "/v1/cache/stats"); err == nil {
			var cs wire.CacheStats
			if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&cs) == nil {
				cacheStats = &batch.CacheStats{
					Hits: cs.Hits, Misses: cs.Misses, Stale: cs.Stale,
					DiskHits: cs.DiskHits, Shared: cs.Shared,
					Evictions: cs.Evictions, Entries: cs.Entries,
				}
			}
			resp.Body.Close()
		}
	}
	fmt.Fprintf(w, "server: %d/%d cache hits (%d in-flight shares)\n",
		summary.CacheHits, summary.Jobs, summary.Shared)
	// A shard coordinator's summary carries fleet counters; a plain
	// worker omits them — -remote works against either transparently.
	if summary.Workers > 0 {
		noun := "workers"
		if summary.Workers == 1 {
			noun = "worker"
		}
		fmt.Fprintf(w, "fleet: %d %s", summary.Workers, noun)
		if summary.LostWorkers > 0 || summary.Resharded > 0 || summary.Retries > 0 {
			fmt.Fprintf(w, " (%d lost, %d jobs re-sharded, %d stream retries)",
				summary.LostWorkers, summary.Resharded, summary.Retries)
		}
		fmt.Fprintln(w)
	}
	failed := report(w, ordered, wall, topK, seeds, vc, simFor, cacheStats, verbose)
	if traced {
		// The stream's summary line means the sweep finished; the trace
		// endpoint seals moments later, and its replay blocks until then.
		if spans, err := fetchTrace(baseURL, acc.ID); err != nil {
			fmt.Fprintf(w, "\ntrace: fetch failed: %v\n", err)
		} else {
			renderTrace(w, spans, traceTop)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d jobs failed server-side", failed, acc.Jobs)
	}
	return nil
}

// fetchTrace replays a finished sweep's span stream into memory — the
// same NDJSON a coordinator imports per shard, here for rendering.
func fetchTrace(baseURL, id string) ([]tracing.Span, error) {
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("trace endpoint replied %s", resp.Status)
	}
	var spans []tracing.Span
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ln wire.SpanLine
		if json.Unmarshal(sc.Bytes(), &ln) != nil || ln.Type != wire.LineSpan {
			continue
		}
		spans = append(spans, wire.SpanOf(ln))
	}
	return spans, sc.Err()
}
