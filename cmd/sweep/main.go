// Command sweep demonstrates the paper's stated motivation for fast
// simulation: automated design exploration, where "the best topology and
// optimal parameters of the energy harvester are obtained iteratively
// using multiple simulations". It sweeps the voltage-multiplier design
// (stage count and stage capacitance) and ranks configurations by the
// power delivered into the partially charged storage element — a
// workload that is only practical because each full-system simulation
// takes a fraction of a second under the explicit engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"harvsim/internal/blocks"
	"harvsim/internal/core"
	"harvsim/internal/harvester"
	"harvsim/internal/trace"
)

type result struct {
	stages int
	cstage float64
	power  float64 // mean power into the store [W]
}

func main() {
	var (
		simFor = flag.Float64("sim", 12, "simulated span per candidate [s]")
		vc     = flag.Float64("vc", 2.5, "storage operating point [V]")
	)
	flag.Parse()

	stages := []int{2, 3, 4, 5, 6, 7}
	caps := []float64{10e-6, 22e-6, 47e-6}
	fmt.Printf("design sweep: %d candidates, %.3g s simulated each\n",
		len(stages)*len(caps), *simFor)
	start := time.Now()

	var results []result
	for _, n := range stages {
		for _, c := range caps {
			cfg := harvester.DefaultConfig()
			cfg.Autonomous = false
			cfg.InitialVc = *vc
			dp := blocks.DefaultDickson(cfg.PWLSegments)
			dp.Stages = n
			dp.CStage = c
			cfg.Dickson = dp
			h := harvester.New(cfg)
			eng := core.NewEngine(h.Sys)
			eng.Ctl.HMax = 2.5e-4
			idxVc := h.Sys.MustTerminal("Vc")
			idxIc := h.Sys.MustTerminal("Ic")
			rec := trace.NewSeries("p")
			eng.Observe(func(t float64, x, y []float64) {
				if t > *simFor/3 {
					rec.Append(t, y[idxVc]*y[idxIc])
				}
			})
			if err := eng.Run(0, *simFor); err != nil {
				fmt.Fprintf(os.Stderr, "candidate N=%d C=%.2g failed: %v\n", n, c, err)
				continue
			}
			results = append(results, result{stages: n, cstage: c, power: rec.Mean()})
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].power > results[j].power })

	fmt.Printf("completed in %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("%-8s %-12s %s\n", "stages", "CStage", "P into store @ %.3gV")
	fmt.Printf("%-8s %-12s (top 10)\n", "", "")
	for i, r := range results {
		if i >= 10 {
			break
		}
		fmt.Printf("%-8d %-12.3g %8.1f uW\n", r.stages, r.cstage, r.power*1e6)
	}
	if len(results) > 0 {
		best := results[0]
		fmt.Printf("\nbest design: %d stages, CStage=%.3g F -> %.1f uW\n",
			best.stages, best.cstage, best.power*1e6)
	}
}
