// Command sweep demonstrates the paper's stated motivation for fast
// simulation: automated design exploration, where "the best topology and
// optimal parameters of the energy harvester are obtained iteratively
// using multiple simulations". It sweeps the voltage-multiplier design
// (stage count and stage capacitance) through the concurrent batch
// runner and ranks configurations by the power delivered into the
// partially charged storage element — a workload that is practical
// because each full-system simulation takes a fraction of a second under
// the explicit engine, and that now scales across every core the machine
// has, caches repeated candidates, and averages stochastic workloads
// over seed ensembles.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/harvester"
)

const usageFooter = `
Base workloads (chosen by flags, both sweep the Dickson multiplier design):
  default          sinusoidal 70 Hz charge scenario (deterministic)
  -noise-seed N    seeded band-limited noise excitation, 55-85 Hz,
                   RMS 0.59 m/s^2 (N != 0 selects this workload)

Ensembles (stochastic workloads only):
  -seeds N         run every design point under N noise realisations
                   (seeds derived from -noise-seed) and rank by the
                   ensemble mean power, reporting variance and 95% CI

Result cache:
  -cache           serve repeated candidates from an in-memory
                   content-addressed result cache
  -cache-dir DIR   additionally persist results under DIR, so re-running
                   the sweep (or zooming into the argmax region) is
                   served from disk instead of re-simulating

Examples:
  sweep -sim 12 -vc 2.5 -top 5
  sweep -noise-seed 7 -seeds 8 -cache-dir /tmp/harvsim-cache
`

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"Usage: sweep [flags]\n\nDickson voltage-multiplier design sweep over the concurrent batch runner.\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprint(flag.CommandLine.Output(), usageFooter)
}

// parseFloatList parses a comma-separated float list ("0,1e9,5e9").
func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		simFor   = flag.Float64("sim", 12, "simulated span per candidate [s]")
		vc       = flag.Float64("vc", 2.5, "storage operating point [V]")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		topK     = flag.Int("top", 10, "ranked designs to print")
		k3List   = flag.String("k3", "", "comma-separated cubic spring coefficients [N/m^3] to add as a Duffing sweep axis (e.g. 0,1e9,5e9)")
		noiseSd  = flag.Uint64("noise-seed", 0, "nonzero: replace the sinusoid with seeded band-limited noise (55-85 Hz, RMS 0.59 m/s^2)")
		seeds    = flag.Int("seeds", 1, "noise realisations per design point (>1 adds a seed ensemble axis and reports mean/CI statistics; needs -noise-seed)")
		useCache = flag.Bool("cache", false, "serve repeated candidates from an in-memory result cache")
		cacheDir = flag.String("cache-dir", "", "persist cached results under this directory (implies -cache)")
	)
	flag.Usage = usage
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *seeds < 1 {
		usageErr("-seeds must be >= 1 (got %d)", *seeds)
	}
	if *seeds > 1 && *noiseSd == 0 {
		usageErr("-seeds %d needs a stochastic workload: set -noise-seed (the ensemble base seed)", *seeds)
	}

	base := harvester.ChargeScenario(*simFor)
	base.Cfg.InitialVc = *vc
	if *noiseSd != 0 {
		noisy := harvester.NoiseScenario(*simFor, 55, 85, *noiseSd)
		noisy.Cfg.InitialVc = *vc
		base = noisy
	}
	spec := batch.SweepSpec{
		Base: batch.Job{
			Name:     "dickson",
			Scenario: base,
			Engine:   harvester.Proposed,
		},
		Axes: []batch.Axis{
			batch.IntAxis("stages", []int{2, 3, 4, 5, 6, 7}, func(j *batch.Job, n int) {
				j.Scenario.Cfg.Dickson.Stages = n
			}),
			batch.FloatAxis("cstage", []float64{10e-6, 22e-6, 47e-6}, func(j *batch.Job, c float64) {
				j.Scenario.Cfg.Dickson.CStage = c
			}),
		},
	}
	if *k3List != "" {
		k3s, err := parseFloatList(*k3List)
		if err != nil {
			usageErr("-k3: %v", err)
		}
		if len(k3s) == 0 {
			usageErr("-k3 %q holds no values", *k3List)
		}
		spec.Axes = append(spec.Axes, batch.FloatAxis("k3", k3s, func(j *batch.Job, v float64) {
			j.Scenario.Cfg.Microgen.K3 = v
		}))
	}
	if *seeds > 1 {
		spec.Axes = append(spec.Axes, batch.SeedAxis("seed", batch.Seeds(*noiseSd, *seeds),
			func(j *batch.Job, s uint64) { j.Scenario.Cfg.VibNoise.Seed = s }))
	}
	// Rank by mean power into the store over the settled window. The
	// metric closure is shared by every expanded job, so it derives
	// everything from its per-job harvester argument; MetricKey declares
	// it a pure function of the run so results stay cacheable.
	spec.Base.Metric = func(h *harvester.Harvester, eng harvester.Engine) float64 {
		return h.PStoreTrace.Slice(*simFor/3, *simFor).Mean()
	}
	spec.Base.MetricKey = "pstore-mean-settled"

	opt := batch.Options{Workers: *workers}
	switch {
	case *cacheDir != "":
		c, err := batch.NewDiskCache(0, *cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		opt.Cache = c
	case *useCache:
		opt.Cache = batch.NewCache(0)
	}

	fmt.Printf("design sweep: %d candidates, %.3g s simulated each, %d workers\n",
		spec.Size(), *simFor, opt.EffectiveWorkers())
	start := time.Now()
	results, err := batch.Sweep(context.Background(), spec, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)
	sum := batch.Summarize(results)

	fmt.Printf("completed in %v wall (summed job time %v)\n\n",
		wall.Round(time.Millisecond), sum.CPUTime.Round(time.Millisecond))
	var ranked []batch.EnsemblePoint
	if *seeds > 1 {
		ranked = batch.EnsembleTop(batch.Ensembles(results), *topK)
		fmt.Printf("ensemble power into store at %.3g V over %d seeds (top %d by mean):\n",
			*vc, *seeds, *topK)
		fmt.Print(batch.EnsembleTable(ranked))
	} else {
		fmt.Printf("power into store at %.3g V (top %d):\n", *vc, *topK)
		fmt.Print(batch.Table(batch.Top(results, *topK)))
	}
	fmt.Println()
	fmt.Println(sum.String())
	if opt.Cache != nil {
		cs := opt.Cache.Stats()
		fmt.Printf("cache: %d hits (%d from disk), %d misses, %d stale, %d entries\n",
			cs.Hits, cs.DiskHits, cs.Misses, cs.Stale, cs.Entries)
	}
	if sum.ArgMaxMetric >= 0 && *seeds == 1 {
		best := results[sum.ArgMaxMetric]
		fmt.Printf("\nbest design: %s -> %.1f uW\n", best.Name, best.Metric*1e6)
	}
	if len(ranked) > 0 && ranked[0].N > 0 {
		fmt.Printf("\nbest design: %s -> %.1f +/- %.1f uW (95%% CI over %d seeds)\n",
			ranked[0].Group, ranked[0].Mean*1e6, ranked[0].CI95*1e6, ranked[0].N)
	}
	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "\n%d candidates failed:\n", sum.Failed)
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "  %s: %v\n", r.Name, r.Err)
			}
		}
		os.Exit(1)
	}
}
