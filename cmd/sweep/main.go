// Command sweep demonstrates the paper's stated motivation for fast
// simulation: automated design exploration, where "the best topology and
// optimal parameters of the energy harvester are obtained iteratively
// using multiple simulations". It sweeps the voltage-multiplier design
// (stage count and stage capacitance) through the concurrent batch
// runner and ranks configurations by the power delivered into the
// partially charged storage element — a workload that is practical
// because each full-system simulation takes a fraction of a second under
// the explicit engine, and that now scales across every core the machine
// has.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/harvester"
)

func main() {
	var (
		simFor  = flag.Float64("sim", 12, "simulated span per candidate [s]")
		vc      = flag.Float64("vc", 2.5, "storage operating point [V]")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		topK    = flag.Int("top", 10, "ranked designs to print")
	)
	flag.Parse()

	base := harvester.ChargeScenario(*simFor)
	base.Cfg.InitialVc = *vc
	spec := batch.SweepSpec{
		Base: batch.Job{
			Name:     "dickson",
			Scenario: base,
			Engine:   harvester.Proposed,
		},
		Axes: []batch.Axis{
			batch.IntAxis("stages", []int{2, 3, 4, 5, 6, 7}, func(j *batch.Job, n int) {
				j.Scenario.Cfg.Dickson.Stages = n
			}),
			batch.FloatAxis("cstage", []float64{10e-6, 22e-6, 47e-6}, func(j *batch.Job, c float64) {
				j.Scenario.Cfg.Dickson.CStage = c
			}),
		},
	}
	// Rank by mean power into the store over the settled window. The
	// metric closure is shared by every expanded job, so it derives
	// everything from its per-job harvester argument.
	spec.Base.Metric = func(h *harvester.Harvester, eng harvester.Engine) float64 {
		return h.PStoreTrace.Slice(*simFor/3, *simFor).Mean()
	}

	opt := batch.Options{Workers: *workers}
	fmt.Printf("design sweep: %d candidates, %.3g s simulated each, %d workers\n",
		spec.Size(), *simFor, opt.EffectiveWorkers())
	start := time.Now()
	results, err := batch.Sweep(context.Background(), spec, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)
	sum := batch.Summarize(results)

	fmt.Printf("completed in %v wall (summed job time %v)\n\n",
		wall.Round(time.Millisecond), sum.CPUTime.Round(time.Millisecond))
	fmt.Printf("power into store at %.3g V (top %d):\n", *vc, *topK)
	fmt.Print(batch.Table(batch.Top(results, *topK)))
	fmt.Println()
	fmt.Println(sum.String())
	if sum.ArgMaxMetric >= 0 {
		best := results[sum.ArgMaxMetric]
		fmt.Printf("\nbest design: %s -> %.1f uW\n", best.Name, best.Metric*1e6)
	}
	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "\n%d candidates failed:\n", sum.Failed)
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "  %s: %v\n", r.Name, r.Err)
			}
		}
		os.Exit(1)
	}
}
