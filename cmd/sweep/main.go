// Command sweep demonstrates the paper's stated motivation for fast
// simulation: automated design exploration, where "the best topology and
// optimal parameters of the energy harvester are obtained iteratively
// using multiple simulations". It sweeps the voltage-multiplier design
// (stage count and stage capacitance) through the concurrent batch
// runner and ranks configurations by the power delivered into the
// partially charged storage element — a workload that is practical
// because each full-system simulation takes a fraction of a second under
// the explicit engine, and that now scales across every core the machine
// has.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/harvester"
)

// parseFloatList parses a comma-separated float list ("0,1e9,5e9").
func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		simFor  = flag.Float64("sim", 12, "simulated span per candidate [s]")
		vc      = flag.Float64("vc", 2.5, "storage operating point [V]")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		topK    = flag.Int("top", 10, "ranked designs to print")
		k3List  = flag.String("k3", "", "comma-separated cubic spring coefficients [N/m^3] to add as a Duffing sweep axis (e.g. 0,1e9,5e9)")
		noiseSd = flag.Uint64("noise-seed", 0, "nonzero: replace the sinusoid with seeded band-limited noise (55-85 Hz, RMS 0.59 m/s^2)")
	)
	flag.Parse()

	base := harvester.ChargeScenario(*simFor)
	base.Cfg.InitialVc = *vc
	if *noiseSd != 0 {
		noisy := harvester.NoiseScenario(*simFor, 55, 85, *noiseSd)
		noisy.Cfg.InitialVc = *vc
		base = noisy
	}
	spec := batch.SweepSpec{
		Base: batch.Job{
			Name:     "dickson",
			Scenario: base,
			Engine:   harvester.Proposed,
		},
		Axes: []batch.Axis{
			batch.IntAxis("stages", []int{2, 3, 4, 5, 6, 7}, func(j *batch.Job, n int) {
				j.Scenario.Cfg.Dickson.Stages = n
			}),
			batch.FloatAxis("cstage", []float64{10e-6, 22e-6, 47e-6}, func(j *batch.Job, c float64) {
				j.Scenario.Cfg.Dickson.CStage = c
			}),
		},
	}
	if *k3List != "" {
		k3s, err := parseFloatList(*k3List)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: -k3: %v\n", err)
			os.Exit(2)
		}
		if len(k3s) == 0 {
			fmt.Fprintf(os.Stderr, "sweep: -k3 %q holds no values\n", *k3List)
			os.Exit(2)
		}
		spec.Axes = append(spec.Axes, batch.FloatAxis("k3", k3s, func(j *batch.Job, v float64) {
			j.Scenario.Cfg.Microgen.K3 = v
		}))
	}
	// Rank by mean power into the store over the settled window. The
	// metric closure is shared by every expanded job, so it derives
	// everything from its per-job harvester argument.
	spec.Base.Metric = func(h *harvester.Harvester, eng harvester.Engine) float64 {
		return h.PStoreTrace.Slice(*simFor/3, *simFor).Mean()
	}

	opt := batch.Options{Workers: *workers}
	fmt.Printf("design sweep: %d candidates, %.3g s simulated each, %d workers\n",
		spec.Size(), *simFor, opt.EffectiveWorkers())
	start := time.Now()
	results, err := batch.Sweep(context.Background(), spec, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)
	sum := batch.Summarize(results)

	fmt.Printf("completed in %v wall (summed job time %v)\n\n",
		wall.Round(time.Millisecond), sum.CPUTime.Round(time.Millisecond))
	fmt.Printf("power into store at %.3g V (top %d):\n", *vc, *topK)
	fmt.Print(batch.Table(batch.Top(results, *topK)))
	fmt.Println()
	fmt.Println(sum.String())
	if sum.ArgMaxMetric >= 0 {
		best := results[sum.ArgMaxMetric]
		fmt.Printf("\nbest design: %s -> %.1f uW\n", best.Name, best.Metric*1e6)
	}
	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "\n%d candidates failed:\n", sum.Failed)
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "  %s: %v\n", r.Name, r.Err)
			}
		}
		os.Exit(1)
	}
}
