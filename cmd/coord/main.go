// Command coord runs the sharded sweep coordinator: it fronts a fleet
// of sweep services (cmd/serve) behind the same versioned wire API a
// single worker speaks, partitions each sweep across the fleet by
// consistent hash on the jobs' content-address keys (each design point
// lands on the worker whose cache already holds it), merges the
// per-worker NDJSON streams into one globally indexed stream, and
// re-shards the unfinished jobs of a worker lost mid-sweep onto the
// survivors. Clients cannot tell it from a single cmd/serve.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"harvsim"
)

const usageFooter = `
Quickstart (three workers and a coordinator):
  serve -addr 127.0.0.1:8081 -cache-dir /tmp/hs-w1 &
  serve -addr 127.0.0.1:8082 -cache-dir /tmp/hs-w2 &
  serve -addr 127.0.0.1:8083 -cache-dir /tmp/hs-w3 &
  coord -addr 127.0.0.1:8080 \
    -workers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 &

  curl -s localhost:8080/v1/workers            # states: live | draining | lost
  curl -s -X POST localhost:8080/v1/sweep -d @spec.json
  curl -sN localhost:8080/v1/jobs/co-1/stream  # one merged NDJSON stream
  curl -s localhost:8080/metrics               # fleet counters, per-worker latency
  curl -s -X POST 'localhost:8080/v1/workers/drain?worker=http://127.0.0.1:8082'

A draining worker takes no new shards but finishes its in-flight ones
(planned maintenance without tripping the loss machinery). The
coordinator accepts the exact spec a single worker accepts; the
merged stream is bit-identical to a single-host run of the same spec,
even when a worker dies mid-sweep (its unfinished jobs are re-sharded
onto the survivors). See README.md "Operating the fleet".
`

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"Usage: coord -workers <url,url,...> [flags]\n\nSharded sweep coordinator over a fleet of sweep services.\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprint(flag.CommandLine.Output(), usageFooter)
}

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the chosen address is printed)")
		workers       = flag.String("workers", "", "comma-separated base URLs of the worker fleet (required)")
		maxJobs       = flag.Int("max-jobs", 0, "per-request expanded job budget across the whole fleet (0 = 4096)")
		maxTime       = flag.Duration("max-request-time", 0, "per-request wall-clock budget ceiling (0 = 2m)")
		healthTimeout = flag.Duration("health-timeout", 0, "per-probe worker health-check timeout (0 = 2s)")
		maxRetries    = flag.Int("max-retries", 0, "stream-resume attempts against a worker that still answers health checks before it is declared lost (0 = 2)")
		pprofOn       = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the coordinator mux")
		alertLost     = flag.Float64("alert-lost", 0, "log an alert when cumulative lost workers reach this count (0 = off)")
		alertP99      = flag.Float64("alert-shard-p99", 0, "log an alert when any worker's shard p99 reaches this many seconds (0 = off)")
		alertEvery    = flag.Duration("alert-interval", 0, "alert poll interval (0 = 10s)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "coord: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var fleet []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			fleet = append(fleet, strings.TrimRight(w, "/"))
		}
	}
	if len(fleet) == 0 {
		fmt.Fprintln(os.Stderr, "coord: -workers is required (comma-separated worker base URLs)")
		flag.Usage()
		os.Exit(2)
	}

	coord := harvsim.Coordinate(harvsim.CoordinateOptions{
		Workers:        fleet,
		MaxJobs:        *maxJobs,
		MaxRequestTime: *maxTime,
		HealthTimeout:  *healthTimeout,
		MaxRetries:     *maxRetries,
	})

	if *alertLost > 0 {
		coord.WatchLostWorkers(*alertLost)
	}
	if *alertP99 > 0 {
		coord.WatchShardP99(*alertP99)
	}
	if *alertLost > 0 || *alertP99 > 0 {
		coord.Alerts().Notify(func(a harvsim.Alert) {
			fmt.Fprintf(os.Stderr, "coord: ALERT %s: value %g reached bound %g at %s\n",
				a.Name, a.Value, a.Bound, a.At.Format(time.RFC3339))
		})
		go coord.Alerts().Run(context.Background(), *alertEvery)
	}

	// -pprof shares the coordinator mux: profiling lives next to
	// /metrics on the one listener, off by default.
	handler := coord.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", coord.Handler())
		handler = mux
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coord: %v\n", err)
		os.Exit(1)
	}
	// Printed (not logged) so scripts can capture the resolved address
	// when -addr used port 0.
	fmt.Printf("listening on %s\n", ln.Addr())
	fmt.Printf("fleet of %d workers: %s\n", len(fleet), strings.Join(fleet, " "))

	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "coord: %v\n", err)
		os.Exit(1)
	}
}
