// Command benchtab regenerates every table and figure of the paper's
// evaluation section on this machine and prints them in a form directly
// comparable with the paper (see DESIGN.md for the experiment list).
//
//	benchtab                # all experiments, bench-scale horizons
//	benchtab -only table2   # one experiment
//	benchtab -only xengine  # cross-engine conformance tables
//	benchtab -full          # paper-scale scenario horizons (slow!)
//	benchtab -table1-sim 30
//	benchtab -json          # Table I/II + xengine as a benchfmt report
//
// With -json the Table I, Table II and cross-engine results are emitted
// as one machine-readable JSON document in the internal/benchfmt schema
// — the same format as the committed BENCH_*.json baselines the CI bench
// gate (cmd/benchgate) enforces — so snapshots from either source diff
// against each other directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"harvsim/internal/benchfmt"
	"harvsim/internal/exp"
	"harvsim/internal/harvester"
)

func main() {
	var (
		only      = flag.String("only", "", "run a single experiment: table1, table2, fig8a, fig8b, fig9, ablations, xengine")
		full      = flag.Bool("full", false, "paper-scale scenario horizons (hours of simulated time)")
		table1Sim = flag.Float64("table1-sim", 10, "simulated charging span for Table I [s]")
		ablSim    = flag.Float64("ablation-sim", 3, "simulated span for the ablations [s]")
		xengSim   = flag.Float64("xengine-sim", 2, "simulated span for the cross-engine conformance charge [s]")
		workers   = flag.Int("workers", 0, "batch worker-pool size for xengine (0 = GOMAXPROCS)")
		asJSON    = flag.Bool("json", false, "emit Table I/II and xengine results as a benchfmt JSON report")
	)
	flag.Parse()

	fid := harvester.Quick
	if *full {
		fid = harvester.PaperScale
	}
	want := func(name string) bool { return *only == "" || *only == name }
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		switch *only {
		case "", "table1", "table2", "xengine":
		default:
			fmt.Fprintf(os.Stderr, "benchtab: -json covers table1, table2 and xengine; %q has no JSON form\n", *only)
			os.Exit(2)
		}
	}

	report := benchfmt.NewReport()
	report.GoVersion = runtime.Version()
	addRun := func(name string, run exp.EngineRun) {
		report.Benchmarks = append(report.Benchmarks, benchfmt.Benchmark{
			Name:        name,
			Runs:        1,
			NsPerOp:     float64(run.CPUTime.Nanoseconds()),
			AllocsPerOp: float64(run.Stats.Allocs),
			BytesPerOp:  float64(run.Stats.AllocBytes),
			Metrics: map[string]float64{
				"steps":     float64(run.Steps),
				"sim_s":     run.SimTime,
				"hmean_s":   run.HMeanSec,
				"refactors": float64(run.Stats.Refactors),
				"solves":    float64(run.Stats.Solves),
			},
		})
	}
	addConformance := func(prefix string, res exp.ConformanceResult) {
		for _, row := range res.Rows {
			if row.Err != nil {
				continue
			}
			report.Benchmarks = append(report.Benchmarks, benchfmt.Benchmark{
				Name:    prefix + "/" + row.Engine.String(),
				Runs:    1,
				NsPerOp: float64(row.CPUTime.Nanoseconds()),
				Metrics: map[string]float64{
					"steps":      float64(row.Steps),
					"hmax_s":     row.HMax,
					"final_vc_v": row.FinalVc,
					"rms_pin_w":  row.RMSPower,
					"dvc_v":      row.DVc,
					"dpow_rel":   row.DPowRel,
				},
			})
		}
	}

	if want("table1") {
		res, err := exp.Table1(*table1Sim)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			for _, row := range res.Rows {
				addRun("Table1/"+row.Simulator, row.Run)
			}
		} else {
			fmt.Println(res.String())
			// Extrapolations to a paper-scale 4-hour charge.
			const fullCharge = 4 * 3600.0
			fmt.Println("extrapolated to a 4 h simulated charge:")
			for _, row := range res.Rows {
				fmt.Printf("  %-24s %s\n", row.Simulator, exp.FormatDuration(row.Run.ExtrapolateTo(fullCharge)))
			}
			fmt.Println()
		}
	}
	if want("table2") {
		res, err := exp.Table2(fid)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			for _, row := range res.Rows {
				addRun("Table2/"+row.Scenario+"/existing", row.Existing)
				addRun("Table2/"+row.Scenario+"/proposed", row.Proposed)
			}
		} else {
			fmt.Println(res.String())
		}
	}
	if !*asJSON {
		if want("fig8a") {
			res, err := exp.Fig8a(fid)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.String())
		}
		if want("fig8b") {
			res, err := exp.Fig8b(fid)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.String())
		}
		if want("fig9") {
			res, err := exp.Fig9(fid)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.String())
		}
	}
	if want("xengine") {
		// The agreement tables the benchmarks can't provide: the same
		// workload under all four engines, run through the concurrent
		// batch layer, with deviations against the proposed engine.
		charge, err := exp.ConformanceCharge(*xengSim, *workers)
		if err != nil {
			fail(err)
		}
		sc1, err := exp.ConformanceScenario1(20, *workers)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			addConformance("XEngine/charge", charge)
			addConformance("XEngine/scenario1", sc1)
		} else {
			fmt.Println(charge.String())
			fmt.Println(sc1.String())
		}
	}
	if !*asJSON && want("ablations") {
		for _, run := range []func(float64) (exp.AblationResult, error){
			exp.AblationABOrder, exp.AblationPWL, exp.AblationStability, exp.AblationAccuracy,
		} {
			res, err := run(*ablSim)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.String())
		}
	}
	if *asJSON {
		report.Sort()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fail(err)
		}
	}
}
