// Command serve runs the long-lived sweep service: an HTTP/JSON server
// over the concurrent batch layer with one shared content-addressed
// result cache (optionally disk-backed) and shared per-worker workspace
// pools, so interactive design exploration is served cache-warm across
// clients and requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"harvsim"
)

const usageFooter = `
Quickstart:
  serve -addr 127.0.0.1:8080 -cache-dir /tmp/harvsim-cache &
  curl -s localhost:8080/healthz
  curl -s -X POST localhost:8080/v1/sweep -d '{
    "spec": {
      "scenario": {"kind": "charge", "duration_s": 0.5, "set": {"initial_vc": 2.5}},
      "metric": "pstore-mean-settled",
      "axes": [
        {"kind": "int",   "param": "dickson.stages", "ints": [2,3,4,5,6,7]},
        {"kind": "float", "param": "dickson.cstage", "values": [1e-5,2.2e-5,4.7e-5]}
      ]
    }
  }'
  curl -sN localhost:8080/v1/jobs/sw-1/stream     # NDJSON, one line per result
  curl -s localhost:8080/v1/cache/stats
  curl -s localhost:8080/metrics                  # Prometheus text exposition

A repeated POST of the same spec is served entirely from the cache
(zero engine runs, bit-identical metrics); see README.md.
`

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"Usage: serve [flags]\n\nLong-lived HTTP/JSON sweep service over the batch layer.\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprint(flag.CommandLine.Output(), usageFooter)
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the chosen address is printed)")
		workers     = flag.Int("workers", 0, "per-sweep worker pool cap (0 = GOMAXPROCS)")
		maxActive   = flag.Int("max-active", 0, "concurrently simulating sweeps; further sweeps queue (0 = 2)")
		maxJobs     = flag.Int("max-jobs", 0, "per-request expanded job budget (0 = 4096)")
		maxTime     = flag.Duration("max-request-time", 0, "per-request wall-clock budget ceiling (0 = 2m)")
		cacheCap    = flag.Int("cache-cap", 0, "in-memory cache entries (0 = default capacity)")
		cacheDir    = flag.String("cache-dir", "", "persist cached results under this directory (warm starts across restarts)")
		noLock      = flag.Bool("no-lockstep", false, "disable the ensemble-lockstep dispatch server-wide (A/B timing; results are bit-identical either way)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the service mux")
		alertFailed = flag.Float64("alert-failed", 0, "log an alert when cumulative failed jobs reach this count (0 = off)")
		alertP99    = flag.Float64("alert-exec-p99", 0, "log an alert when sweep-execution p99 reaches this many seconds (0 = off)")
		alertEvery  = flag.Duration("alert-interval", 0, "alert poll interval (0 = 10s)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "serve: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var cache *harvsim.Cache
	var err error
	if *cacheDir != "" {
		cache, err = harvsim.NewDiskCache(*cacheCap, *cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	} else {
		cache = harvsim.NewCache(*cacheCap)
	}

	srv := harvsim.Serve(harvsim.ServeOptions{
		Workers:        *workers,
		MaxActive:      *maxActive,
		MaxJobs:        *maxJobs,
		MaxRequestTime: *maxTime,
		Cache:          cache,
		NoLockstep:     *noLock,
	})

	if *alertFailed > 0 {
		srv.WatchFailed(*alertFailed)
	}
	if *alertP99 > 0 {
		srv.WatchExecP99(*alertP99)
	}
	if *alertFailed > 0 || *alertP99 > 0 {
		srv.Alerts().Notify(func(a harvsim.Alert) {
			fmt.Fprintf(os.Stderr, "serve: ALERT %s: value %g reached bound %g at %s\n",
				a.Name, a.Value, a.Bound, a.At.Format(time.RFC3339))
		})
		go srv.Alerts().Run(context.Background(), *alertEvery)
	}

	// -pprof shares the service mux: profiling lives next to /metrics on
	// the one listener, off by default so a production service exposes
	// no profiling surface unless asked to.
	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv.Handler())
		handler = mux
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	// Printed (not logged) so scripts can capture the resolved address
	// when -addr used port 0.
	fmt.Printf("listening on %s\n", ln.Addr())
	if *cacheDir != "" {
		fmt.Printf("cache dir %s\n", *cacheDir)
	}

	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
}
