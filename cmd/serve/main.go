// Command serve runs the long-lived sweep service: an HTTP/JSON server
// over the concurrent batch layer with one shared content-addressed
// result cache (optionally disk-backed) and shared per-worker workspace
// pools, so interactive design exploration is served cache-warm across
// clients and requests.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"harvsim"
)

const usageFooter = `
Quickstart:
  serve -addr 127.0.0.1:8080 -cache-dir /tmp/harvsim-cache &
  curl -s localhost:8080/healthz
  curl -s -X POST localhost:8080/v1/sweep -d '{
    "spec": {
      "scenario": {"kind": "charge", "duration_s": 0.5, "set": {"initial_vc": 2.5}},
      "metric": "pstore-mean-settled",
      "axes": [
        {"kind": "int",   "param": "dickson.stages", "ints": [2,3,4,5,6,7]},
        {"kind": "float", "param": "dickson.cstage", "values": [1e-5,2.2e-5,4.7e-5]}
      ]
    }
  }'
  curl -sN localhost:8080/v1/jobs/sw-1/stream     # NDJSON, one line per result
  curl -s localhost:8080/v1/cache/stats
  curl -s localhost:8080/metrics                  # Prometheus text exposition

A repeated POST of the same spec is served entirely from the cache
(zero engine runs, bit-identical metrics); see README.md.
`

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"Usage: serve [flags]\n\nLong-lived HTTP/JSON sweep service over the batch layer.\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprint(flag.CommandLine.Output(), usageFooter)
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the chosen address is printed)")
		workers   = flag.Int("workers", 0, "per-sweep worker pool cap (0 = GOMAXPROCS)")
		maxActive = flag.Int("max-active", 0, "concurrently simulating sweeps; further sweeps queue (0 = 2)")
		maxJobs   = flag.Int("max-jobs", 0, "per-request expanded job budget (0 = 4096)")
		maxTime   = flag.Duration("max-request-time", 0, "per-request wall-clock budget ceiling (0 = 2m)")
		cacheCap  = flag.Int("cache-cap", 0, "in-memory cache entries (0 = default capacity)")
		cacheDir  = flag.String("cache-dir", "", "persist cached results under this directory (warm starts across restarts)")
		noLock    = flag.Bool("no-lockstep", false, "disable the ensemble-lockstep dispatch server-wide (A/B timing; results are bit-identical either way)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "serve: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var cache *harvsim.Cache
	var err error
	if *cacheDir != "" {
		cache, err = harvsim.NewDiskCache(*cacheCap, *cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	} else {
		cache = harvsim.NewCache(*cacheCap)
	}

	srv := harvsim.Serve(harvsim.ServeOptions{
		Workers:        *workers,
		MaxActive:      *maxActive,
		MaxJobs:        *maxJobs,
		MaxRequestTime: *maxTime,
		Cache:          cache,
		NoLockstep:     *noLock,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	// Printed (not logged) so scripts can capture the resolved address
	// when -addr used port 0.
	fmt.Printf("listening on %s\n", ln.Addr())
	if *cacheDir != "" {
		fmt.Printf("cache dir %s\n", *cacheDir)
	}

	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
}
