// Package harvsim reproduces the linearised state-space simulation
// technique for complete tunable vibration energy harvesting systems of
// Wang, Kazmierski, Al-Hashimi, Weddell, Merrett and Ayala Garcia
// (DATE 2011).
//
// The root package is a thin facade over the internal implementation; it
// re-exports the types a downstream user needs to assemble and simulate
// a harvester:
//
//	cfg := harvsim.DefaultConfig()
//	h := harvsim.New(cfg)
//	eng, err := h.Run(harvsim.Proposed, 60 /* seconds */, 16)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduced tables and figures. The runnable entry points live under
// cmd/ and examples/.
package harvsim

import (
	"harvsim/internal/harvester"
)

// Config gathers every component's parameters. See the internal
// harvester package for field documentation.
type Config = harvester.Config

// Harvester is the assembled mixed-technology system.
type Harvester = harvester.Harvester

// Scenario is one of the paper's evaluation runs.
type Scenario = harvester.Scenario

// FreqShift schedules an ambient frequency change.
type FreqShift = harvester.FreqShift

// EngineKind selects the analogue solver.
type EngineKind = harvester.EngineKind

// Engine abstracts the analogue solvers (proposed explicit engine and
// implicit baselines).
type Engine = harvester.Engine

// Engine kinds: the proposed explicit linearised state-space engine and
// the Newton-Raphson implicit baselines of the paper's comparison.
const (
	Proposed     = harvester.Proposed
	ExistingTrap = harvester.ExistingTrap
	ExistingBDF2 = harvester.ExistingBDF2
	ExistingBE   = harvester.ExistingBE
)

// Fidelity selects bench-scale or paper-scale scenario timing.
type Fidelity = harvester.Fidelity

// Fidelity levels.
const (
	Quick      = harvester.Quick
	PaperScale = harvester.PaperScale
)

// DefaultConfig returns the calibrated full-system configuration.
func DefaultConfig() Config { return harvester.DefaultConfig() }

// New assembles a harvester from cfg.
func New(cfg Config) *Harvester { return harvester.New(cfg) }

// Scenario1 is the paper's 1 Hz retune scenario (Fig. 8, Table II).
func Scenario1(f Fidelity) Scenario { return harvester.Scenario1(f) }

// Scenario2 is the 14 Hz wide-range scenario (Fig. 9, Table II).
func Scenario2(f Fidelity) Scenario { return harvester.Scenario2(f) }

// ChargeScenario is the non-tunable supercapacitor charge-up (Table I).
func ChargeScenario(duration float64) Scenario {
	return harvester.ChargeScenario(duration)
}

// RunScenario assembles and runs a scenario under the chosen engine.
func RunScenario(sc Scenario, kind EngineKind, decimate int) (*Harvester, Engine, error) {
	return harvester.RunScenario(sc, kind, decimate)
}
