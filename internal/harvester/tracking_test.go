package harvester

import (
	"math"
	"testing"
)

func TestVibrationSweepInScenario(t *testing.T) {
	sc := TrackingScenario(100, 66, 72)
	h := New(sc.Cfg)
	h.Vib.Sweep(15, 60, 72)
	// Frequency profile: 66 before, ramping across, 72 after.
	if f := h.Vib.Freq(10); math.Abs(f-66) > 1e-9 {
		t.Fatalf("pre-sweep freq = %v", f)
	}
	if f := h.Vib.Freq(45); f <= 66 || f >= 72 {
		t.Fatalf("mid-sweep freq = %v, want inside (66, 72)", f)
	}
	if f := h.Vib.Freq(90); math.Abs(f-72) > 1e-9 {
		t.Fatalf("post-sweep freq = %v", f)
	}
	// Phase continuity across the chirp boundaries.
	for _, tb := range []float64{15, 75} {
		before := h.Vib.Accel(tb - 1e-9)
		after := h.Vib.Accel(tb + 1e-9)
		if math.Abs(before-after) > 1e-3 {
			t.Fatalf("chirp discontinuity at %v: %v vs %v", tb, before, after)
		}
	}
}

func TestTrackingScenarioRetunesRepeatedly(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system tracking run")
	}
	sc := TrackingScenario(150, 66, 72)
	h, _, err := RunScenario(sc, Proposed, 32)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// A 6 Hz drift with a 0.5 Hz tolerance needs several distinct tuning
	// runs to track.
	if h.MCU.Stats.Tunes < 2 {
		t.Fatalf("controller should re-tune repeatedly while tracking: %+v", h.MCU.Stats)
	}
	// The final resonance must have followed the drift most of the way.
	fres := h.Cfg.Microgen.TunedHz(h.Act.ForceAt(sc.Duration))
	if fres < 70 {
		t.Fatalf("resonance did not track the drift: %v Hz (ambient ends at 72)", fres)
	}
}

func TestSweepValidation(t *testing.T) {
	sc := TrackingScenario(100, 66, 72)
	sc.Chirp = &ChirpSpec{T0: 90, Duration: 60, FEnd: 72}
	if _, _, err := RunScenario(sc, Proposed, 32); err == nil {
		t.Fatalf("sweep past horizon should error")
	}
}
