package harvester

import (
	"math"
	"testing"

	"harvsim/internal/trace"
)

// FuzzScenarioConfig assembles and runs short full-system scenarios
// whose nonlinear-spring and stochastic-excitation knobs are derived
// from arbitrary bytes, and asserts the simulation contract: assembly
// either fails with an error (never a panic), and a successful run
// produces traces with non-decreasing time stamps, finite samples and
// finite energy accounting. Softening springs (K3 < 0) are generated
// too: they can make the device genuinely unstable, in which case the
// engine must report divergence as an error, not NaN-poisoned output.
func FuzzScenarioConfig(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("duffing-and-noise-seed-corpus-01"))
	f.Add([]byte{255, 0, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255, 77, 200, 13, 99, 1, 2, 3, 4})
	// Bistable activation (operands 10..14 high): deep double well with
	// strong coupling corrections riding band-limited noise.
	f.Add([]byte{
		40, 0, 100, 0, 60, 0, 0, 0, 200, 0, // duration/Vc/amp/K3/noise-gate
		20, 0, 180, 0, 40, 0, 8, 0, 200, 0, // fLo/rms/fHi/tones/seed
		220, 0, 160, 0, 140, 0, 255, 255, 10, 10, // bistable gate/well/barrier/xi1/xi2
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Consume 16-bit operands; missing bytes read as zero so every
		// prefix is a valid input.
		frac := func(i int) float64 {
			var hi, lo byte
			if 2*i < len(data) {
				hi = data[2*i]
			}
			if 2*i+1 < len(data) {
				lo = data[2*i+1]
			}
			return float64(uint16(hi)<<8|uint16(lo)) / 65535
		}
		sc := ChargeScenario(0.03 + frac(0)*0.05)
		sc.Cfg.InitialVc = frac(1) * 4
		sc.Cfg.VibAmplitude = frac(2) * 1.5
		sc.Cfg.Microgen.K3 = (frac(3) - 0.2) * 5e9 // softening through strongly hardening
		if frac(10) > 0.6 {
			// Double-well reshape: overwrite the spring with the bistable
			// inversion (well 0.1..0.9 mm, barrier up to ~8 uJ) plus
			// displacement-dependent coupling corrections of either sign.
			// Zero-area wells (frac -> 0) degenerate to the knobs above.
			well := frac(11) * 9e-4
			barrier := frac(12) * 8e-6
			if well > 1e-4 && barrier > 0 {
				kl := -4 * barrier / (well * well)
				sc.Cfg.Microgen.K1 = kl - sc.Cfg.Microgen.Ks
				sc.Cfg.Microgen.K3 = 4 * barrier / (well * well * well * well)
				sc.Cfg.Microgen.Z0 = -well
				sc.Cfg.InitialTuneHz = sc.Cfg.Microgen.UntunedHz()
			}
			sc.Cfg.Microgen.Xi1 = (frac(13) - 0.5) * 400
			sc.Cfg.Microgen.Xi2 = (frac(14) - 0.5) * 1e5
		}
		if frac(4) > 0.25 { // three quarters of inputs add noise
			fLo := 0.5 + frac(5)*100
			sc.Cfg.VibNoise.RMS = frac(6) * 2
			sc.Cfg.VibNoise.FLo = fLo
			sc.Cfg.VibNoise.FHi = fLo + 0.2 + frac(7)*60
			sc.Cfg.VibNoise.Tones = 1 + int(frac(8)*63)
			sc.Cfg.VibNoise.Seed = uint64(frac(9) * 65535)
		}

		h, err := Assemble(sc)
		if err != nil {
			return // graceful rejection is fine; a panic is the failure mode
		}
		if _, err := h.Run(Proposed, sc.Duration, 1); err != nil {
			return // divergence must surface as an error, which it did
		}
		for _, s := range []*trace.Series{h.VcTrace, h.PMultIn, h.PStoreTrace} {
			last := math.Inf(-1)
			for i := range s.Times {
				if s.Times[i] < last {
					t.Fatalf("%s: time stamps not monotone at sample %d: %g < %g",
						s.Name, i, s.Times[i], last)
				}
				last = s.Times[i]
				if math.IsNaN(s.Vals[i]) || math.IsInf(s.Vals[i], 0) {
					t.Fatalf("%s: non-finite sample %g at t=%g", s.Name, s.Vals[i], s.Times[i])
				}
			}
		}
		for _, e := range []float64{h.Energy.Harvested, h.Energy.ToStore, h.Energy.Load,
			h.Energy.StoredT0, h.Energy.StoredT1} {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("non-finite energy accounting: %+v", h.Energy)
			}
		}
	})
}
