package harvester

import (
	"math"
	"testing"

	"harvsim/internal/core"
	"harvsim/internal/trace"
)

func TestEngineKindNames(t *testing.T) {
	for _, k := range []EngineKind{Proposed, ExistingTrap, ExistingBDF2, ExistingBE} {
		if k.String() == "" {
			t.Fatalf("empty name for kind %d", int(k))
		}
	}
	if EngineKind(99).String() == "" {
		t.Fatalf("unknown kind should render")
	}
}

func TestFidelityNames(t *testing.T) {
	if Quick.String() != "quick" || PaperScale.String() != "paper-scale" {
		t.Fatalf("fidelity names wrong")
	}
}

func TestChargeScenarioAccumulates(t *testing.T) {
	sc := ChargeScenario(30)
	h, eng, err := RunScenario(sc, Proposed, 8)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	_ = eng
	_, vEnd := h.VcTrace.Last()
	if vEnd <= 1e-3 {
		t.Fatalf("charging made no progress: %v", vEnd)
	}
	if h.Energy.Harvested <= 0 {
		t.Fatalf("no energy harvested: %+v", h.Energy)
	}
	// Multiplier dissipates: delivered <= harvested.
	if h.Energy.ToStore > h.Energy.Harvested+1e-9 {
		t.Fatalf("store received more than harvested: %+v", h.Energy)
	}
	// Store bookkeeping: delivered energy covers the stored increase
	// (plus branch losses, which are positive).
	dStored := h.Energy.StoredT1 - h.Energy.StoredT0
	if dStored <= 0 {
		t.Fatalf("stored energy did not increase: %+v", h.Energy)
	}
	if h.Energy.ToStore < dStored-1e-6 {
		t.Fatalf("energy books violated: delivered %v < stored %v", h.Energy.ToStore, dStored)
	}
}

func TestScenario1AutonomousRetune(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system run")
	}
	sc := Scenario1(Quick)
	h, _, err := RunScenario(sc, Proposed, 16)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if h.MCU.Stats.Tunes < 1 {
		t.Fatalf("controller did not tune: %+v", h.MCU.Stats)
	}
	fres := h.Cfg.Microgen.TunedHz(h.Act.ForceAt(sc.Duration))
	if math.Abs(fres-71) > h.Cfg.MCU.TolHz+0.2 {
		t.Fatalf("final resonance = %v, want ~71", fres)
	}
	// The supercap must have carried the tuning burst: it dipped but
	// stayed above the abort threshold minus margin.
	lo, _ := h.VcTrace.MinMax()
	if lo < h.Cfg.MCU.VStop-0.3 {
		t.Fatalf("supercap collapsed during tuning: min %v", lo)
	}
	// Power recovery: RMS power after retune within the calibrated band.
	rms := h.PMultIn.Slice(sc.Duration-30, sc.Duration).RMS()
	if rms < 60e-6 || rms > 260e-6 {
		t.Fatalf("post-tune power RMS = %v W, want ~1e-4", rms)
	}
}

func TestScenario1PowerDipsWhileDetuned(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system run")
	}
	// Without the controller, shifting 70 -> 71 Hz leaves the generator
	// detuned and the delivered power visibly lower (the motivation for
	// tuning, Fig. 8(a)).
	sc := Scenario1(Quick)
	sc.Cfg.Autonomous = false
	h, _, err := RunScenario(sc, Proposed, 16)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	before := h.PMultIn.Slice(4, 9).Mean()
	after := h.PMultIn.Slice(60, 120).Mean()
	if after > 0.75*before {
		t.Fatalf("detuned power %v should drop well below tuned %v", after, before)
	}
}

func TestScenario2WideRetune(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system run")
	}
	sc := Scenario2(Quick)
	h, _, err := RunScenario(sc, Proposed, 16)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if h.MCU.Stats.Tunes < 1 {
		t.Fatalf("controller did not tune: %+v", h.MCU.Stats)
	}
	fres := h.Cfg.Microgen.TunedHz(h.Act.ForceAt(sc.Duration))
	if math.Abs(fres-78) > 1.0 {
		t.Fatalf("final resonance = %v, want ~78", fres)
	}
}

func TestScenarioShiftValidation(t *testing.T) {
	sc := Scenario1(Quick)
	sc.Shifts = []FreqShift{{T: 1e9, Hz: 71}}
	if _, _, err := RunScenario(sc, Proposed, 1); err == nil {
		t.Fatalf("out-of-horizon shift should error")
	}
}

func TestExplicitVsImplicitFullSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine run")
	}
	// Accuracy parity on the full system over a short horizon.
	mk := func() Scenario {
		sc := ChargeScenario(5)
		sc.Cfg.InitialVc = 2.5
		return sc
	}
	h1, _, err := RunScenario(mk(), Proposed, 4)
	if err != nil {
		t.Fatalf("proposed: %v", err)
	}
	h2, _, err := RunScenario(mk(), ExistingTrap, 4)
	if err != nil {
		t.Fatalf("existing: %v", err)
	}
	// Vc moves by well under a millivolt over this short horizon, so
	// normalising by the reference span would be meaningless; compare the
	// absolute RMSE against the ~2.5 V signal level instead.
	cmp := trace.Compare(h1.VcTrace, h2.VcTrace, 200)
	if cmp.RMSE > 2.5e-3 {
		t.Fatalf("cross-engine Vc RMSE = %v V on a 2.5 V signal: %+v", cmp.RMSE, cmp)
	}
	// Compare delivered power trends too.
	p1 := h1.PMultIn.Slice(2, 5).Mean()
	p2 := h2.PMultIn.Slice(2, 5).Mean()
	if p1 <= 0 || p2 <= 0 || math.Abs(p1-p2) > 0.15*math.Max(p1, p2) {
		t.Fatalf("power means diverge: %v vs %v", p1, p2)
	}
}

func TestInductiveCoilVariantWithImplicitEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-variant run")
	}
	// The paper's full Eq. 13 (coil inductance as a state) runs under the
	// implicit baseline; at 70 Hz the waveforms should differ only
	// marginally from the quasi-static coil.
	mkCfg := func(lc float64) Scenario {
		sc := ChargeScenario(3)
		sc.Cfg.InitialVc = 2.5
		sc.Cfg.Microgen.Lc = lc
		return sc
	}
	hQS, _, err := RunScenario(mkCfg(0), ExistingTrap, 4)
	if err != nil {
		t.Fatalf("quasi-static: %v", err)
	}
	hL, _, err := RunScenario(mkCfg(0.3), ExistingTrap, 4)
	if err != nil {
		t.Fatalf("inductive: %v", err)
	}
	p1 := hQS.PMultIn.Slice(1, 3).Mean()
	p2 := hL.PMultIn.Slice(1, 3).Mean()
	if p1 <= 0 || p2 <= 0 {
		t.Fatalf("no power: %v %v", p1, p2)
	}
	if math.Abs(p1-p2) > 0.35*math.Max(p1, p2) {
		t.Fatalf("coil inductance changed power too much: %v vs %v", p1, p2)
	}
}

func TestHarvesterProbesConsistent(t *testing.T) {
	// Vc trace equals the V5 = Vc terminal relation at every sample.
	sc := ChargeScenario(2)
	sc.Cfg.InitialVc = 1.0
	h := New(sc.Cfg)
	eng := h.NewEngine(Proposed, 1)
	var worst float64
	mOff := h.Sys.MustStateOffset("mult")
	vn := mOff + h.Cfg.Dickson.Stages - 1
	eng.Observe(func(tm float64, x, y []float64) {
		if d := math.Abs(y[h.idxVc] - x[vn]); d > worst {
			worst = d
		}
	})
	if err := eng.Run(0, 2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if worst > 1e-9 {
		t.Fatalf("Vc != V5 by %v", worst)
	}
}

func TestDefaultConfigBuilds(t *testing.T) {
	h := New(DefaultConfig())
	if h.Sys.NX() != 10 || h.Sys.NY() != 4 {
		t.Fatalf("composite dims = %d states, %d terminals", h.Sys.NX(), h.Sys.NY())
	}
	if h.MCU == nil || h.Kernel == nil {
		t.Fatalf("autonomous harvester missing digital side")
	}
	var e core.Engine
	_ = e // silence unused-import styling in case of edits
}
