// Package harvester assembles the complete mixed-technology tunable
// energy harvesting system of paper Fig. 1 / Section III-E: the tunable
// electromagnetic microgenerator, the Dickson voltage multiplier, the
// supercapacitor with its mode-switched equivalent load, the linear
// tuning actuator and the autonomous microcontroller process — wired to
// either the proposed explicit linearised state-space engine or the
// Newton-Raphson implicit baselines.
//
// # Determinism contract
//
// A Config (plus a Scenario's schedule and solver/engine selection) is
// a complete value-typed description of a run: equal configs produce
// bit-identical trajectories, traces and energy accounting, no matter
// how the run executes — freshly assembled, Reset and re-run, on a
// recycled workspace, serially or inside the concurrent batch pool.
// Stochastic excitation keeps the contract because a noise realisation
// is a pure function of its spec (see blocks.NoiseSpec). The root
// determinism test suite pins all of this; Scenario.WriteHash turns the
// identity into the canonical content hash the batch layer's result
// cache is keyed on.
package harvester

import (
	"fmt"
	"math"

	"harvsim/internal/actuator"
	"harvsim/internal/blocks"
	"harvsim/internal/core"
	"harvsim/internal/digital"
	"harvsim/internal/implicit"
	"harvsim/internal/trace"
)

// Config gathers every component's parameters.
type Config struct {
	Microgen blocks.MicrogenParams
	Dickson  blocks.DicksonParams
	Supercap blocks.SupercapParams
	Actuator actuator.Params
	MCU      digital.MCUConfig

	VibAmplitude float64 // peak base acceleration of the sinusoid [m/s^2]
	VibFreq      float64 // initial ambient frequency [Hz]

	// VibNoise adds a band-limited stochastic excitation component on top
	// of (or, with VibAmplitude = 0, instead of) the sinusoid. The zero
	// value disables it. The realisation is a pure function of the spec,
	// so a Config remains a complete value-typed description of a run:
	// equal Configs reproduce bit-identical excitations across serial,
	// pooled and Reset-reused executions (see blocks.NoiseSpec).
	VibNoise blocks.NoiseSpec

	InitialTuneHz float64 // generator's initial tuned resonance [Hz]
	InitialVc     float64 // initial supercapacitor voltage [V]

	PWLSegments int // diode lookup-table granularity

	// Autonomous enables the microcontroller/actuator processes; without
	// it the system is a plain (non-tunable) harvester charging its
	// storage.
	Autonomous bool

	// Solver carries optional numerical overrides; zero values select
	// the calibrated defaults. Making these part of Config keeps every
	// knob a batch sweep may vary in one declarative place.
	Solver SolverConfig
}

// SolverConfig tunes the numerical engines beyond their defaults. The
// zero value means "use the calibrated default" for every field.
type SolverConfig struct {
	HMax    float64 // step-size cap [s]; 0 = 2.5e-4
	Rtol    float64 // relative local-error tolerance; 0 = controller default
	ABOrder int     // proposed engine's Adams-Bashforth order (1..4); 0 = 4
}

// Validate reports configuration errors that assembly would otherwise
// surface as panics deep inside the block constructors — the checks a
// batch sweep needs so one bad axis value fails its job, not the worker.
func (c Config) Validate() error {
	if err := c.VibNoise.Validate(); err != nil {
		return fmt.Errorf("harvester: %w", err)
	}
	for _, f := range [...]float64{c.Microgen.K3, c.Microgen.K1, c.Microgen.Xi1,
		c.Microgen.Xi2, c.Microgen.Z0, c.VibAmplitude, c.VibFreq} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("harvester: non-finite excitation/spring parameter in config")
		}
	}
	return nil
}

// DefaultConfig returns the calibrated full-system configuration.
func DefaultConfig() Config {
	return Config{
		Microgen:      blocks.DefaultMicrogen(),
		Dickson:       blocks.DefaultDickson(1024),
		Supercap:      blocks.DefaultSupercap(),
		Actuator:      actuator.Default(),
		MCU:           digital.DefaultMCUConfig(),
		VibAmplitude:  0.59,
		VibFreq:       70,
		InitialTuneHz: 70,
		InitialVc:     0,
		PWLSegments:   1024,
		Autonomous:    true,
	}
}

// Harvester is the assembled system plus its digital side.
type Harvester struct {
	Cfg Config

	Sys    *core.System
	Vib    *blocks.Vibration
	Gen    *blocks.Microgenerator
	Mult   *blocks.Dickson
	Store  *blocks.Supercap
	Act    *actuator.Actuator
	Kernel *digital.Kernel
	MCU    *digital.MCU
	Meter  *digital.ZeroCrossMeter

	// terminal indices for probes
	idxVm, idxIm, idxVc, idxIc int
	scOff, genOff              int

	tuning  bool
	arrival float64

	// Basin accounting (active when the microgenerator declares a double
	// well): the proof mass is classified into the -1/+1 basin with a
	// ±WellZ/2 hysteresis band, every reclassification is an inter-well
	// transit, and transits at t >= basinSettleT count as settled — the
	// discriminator between a seed captured in one well and one still on
	// the energetic inter-well ("high") orbit.
	basinThr             float64 // hysteresis threshold [m]; 0 = monostable, counting off
	basinSide            int     // current basin (-1/+1), 0 before first classification
	basinTransits        int
	basinSettledTransits int
	basinSettleT         float64
	basinSettleSet       bool

	// Traces recorded during Run.
	VcTrace     *trace.Series // supercapacitor terminal voltage
	PMultIn     *trace.Series // instantaneous power into the multiplier
	PStoreTrace *trace.Series // instantaneous power into the supercap
	ModeTrace   *trace.Series // load mode as a step waveform
	FresTrace   *trace.Series // generator resonant frequency

	// Energy accounting (trapezoidal integrals over the run).
	Energy Energy

	lastT, lastPIn, lastPLoad, lastPStore float64
	haveLast                              bool
}

// Energy summarises the run's energy flows [J].
type Energy struct {
	Harvested float64 // into the multiplier terminals
	ToStore   float64 // into the supercapacitor terminals
	Load      float64 // dissipated in the equivalent load (MCU + actuator)
	StoredT0  float64
	StoredT1  float64
}

// Engine abstracts the two analogue engines.
type Engine interface {
	Run(t0, tEnd float64) error
	Observe(core.Observer)
	State() []float64
	Terminals() []float64
}

// EngineKind selects the solver for Run.
type EngineKind int

const (
	// Proposed is the explicit linearised state-space engine.
	Proposed EngineKind = iota
	// ExistingTrap is trapezoidal + Newton-Raphson (SystemVision-like).
	ExistingTrap
	// ExistingBDF2 is Gear + Newton-Raphson (SystemC-A-like).
	ExistingBDF2
	// ExistingBE is backward-Euler + Newton-Raphson.
	ExistingBE
)

// String names the engine kind.
func (k EngineKind) String() string {
	switch k {
	case Proposed:
		return "proposed-linearised-state-space"
	case ExistingTrap:
		return "existing-trapezoidal-NR"
	case ExistingBDF2:
		return "existing-bdf2-NR"
	case ExistingBE:
		return "existing-backward-euler-NR"
	default:
		return fmt.Sprintf("engine(%d)", int(k))
	}
}

// New assembles a harvester from cfg with its own storage.
func New(cfg Config) *Harvester { return NewWith(cfg, nil) }

// NewWith assembles a harvester whose Jacobian and engine storage comes
// from the pool's recycled workspaces (nil pool = own storage). Call
// Release when done with the harvester to hand the workspace back; see
// the batch runner for the sweep-amortisation this enables.
func NewWith(cfg Config, pool *core.WorkspacePool) *Harvester {
	h := &Harvester{Cfg: cfg}
	h.Vib = blocks.NewVibration(cfg.VibAmplitude, cfg.VibFreq)
	h.Vib.ConfigureNoise(cfg.VibNoise)
	h.Sys = core.NewSystem()
	if pool != nil {
		h.Sys.UsePool(pool)
	}
	h.Gen = blocks.NewMicrogenerator("gen", cfg.Microgen, h.Vib)
	h.Mult = blocks.NewDickson("mult", cfg.Dickson)
	scp := cfg.Supercap
	scp.V0 = cfg.InitialVc
	h.Store = blocks.NewSupercap("store", scp)
	h.Mult.PrechargeOutput(cfg.InitialVc)
	h.Sys.AddBlock(h.Gen)
	h.Sys.AddBlock(h.Mult)
	h.Sys.AddBlock(h.Store)
	h.Sys.MustBuild()
	h.idxVm = h.Sys.MustTerminal("Vm")
	h.idxIm = h.Sys.MustTerminal("Im")
	h.idxVc = h.Sys.MustTerminal("Vc")
	h.idxIc = h.Sys.MustTerminal("Ic")
	h.scOff = h.Sys.MustStateOffset("store")
	h.genOff = h.Sys.MustStateOffset("gen")
	h.initBasin()

	h.initDigital()

	h.VcTrace = trace.NewSeries("Vc")
	h.PMultIn = trace.NewSeries("Pmult")
	h.PStoreTrace = trace.NewSeries("Pstore")
	h.ModeTrace = trace.NewSeries("mode")
	h.FresTrace = trace.NewSeries("fres")
	return h
}

// initDigital parks the actuator at the initial tuned frequency, builds
// a fresh event kernel/meter and wires the MCU process — the part of
// assembly that Reset repeats for a rerun.
func (h *Harvester) initDigital() {
	cfg := h.Cfg
	ft := cfg.Microgen.ForceForHz(cfg.InitialTuneHz)
	h.Act = actuator.New(cfg.Actuator, 0)
	h.Act.MoveTo(-1e9, h.Act.GapForForce(ft))
	h.Act.Settle(0)
	h.Gen.SetTuningForce(h.Act.ForceAt(0), 0)

	h.Kernel = digital.NewKernel()
	if h.Meter == nil {
		h.Meter = digital.NewZeroCrossMeter(1024)
	} else {
		h.Meter.Reset()
	}
	h.tuning = false
	h.arrival = 0
	if cfg.Autonomous {
		h.wireMCU()
	}
}

// Reset returns the harvester to its freshly assembled state while
// keeping all storage: traces are cleared in place (capacity retained),
// the vibration source, actuator, event kernel, MCU and frequency meter
// restart, the load mode returns to sleep, the energy accounting zeroes,
// and every block's cached linearisation stamps are discarded so the
// next run restamps from the initial operating point. A Reset harvester
// re-runs a scenario bit-identically to a freshly assembled one; callers
// that used Schedule must Schedule again after Reset.
func (h *Harvester) Reset() {
	// Vibration.Reset also clears the stochastic component; re-deriving
	// it from the config's spec regenerates the identical realisation.
	h.Vib.Reset(h.Cfg.VibFreq)
	h.Vib.ConfigureNoise(h.Cfg.VibNoise)
	h.Store.SetMode(blocks.LoadSleep)
	h.initDigital()
	h.VcTrace.Clear()
	h.PMultIn.Clear()
	h.PStoreTrace.Clear()
	h.ModeTrace.Clear()
	h.FresTrace.Clear()
	h.Energy = Energy{}
	h.lastT, h.lastPIn, h.lastPLoad, h.lastPStore = 0, 0, 0, 0
	h.haveLast = false
	h.initBasin()
	h.basinSettleT, h.basinSettleSet = 0, false
	h.Sys.ResetLinearisation()
}

// initBasin restarts the basin classifier from the configured initial
// displacement. Monostable devices get a zero threshold, which disables
// counting entirely (the observer's fast path).
func (h *Harvester) initBasin() {
	h.basinTransits, h.basinSettledTransits = 0, 0
	h.basinThr, h.basinSide = 0, 0
	if wz := h.Cfg.Microgen.WellZ(); wz > 0 {
		h.basinThr = wz / 2
		switch z0 := h.Cfg.Microgen.Z0; {
		case z0 > 0:
			h.basinSide = 1
		case z0 < 0:
			h.basinSide = -1
		}
	}
}

// BasinStats is the run's inter-well accounting: how often the proof
// mass crossed between wells, how often it still crossed inside the
// settled window, and which well it ended in. All zero for monostable
// devices.
type BasinStats struct {
	Transits        int `json:"transits,omitempty"`
	SettledTransits int `json:"settled_transits,omitempty"`
	// FinalBasin is the sign (-1/+1) of the well the mass ended in; 0
	// for monostable devices (or a bistable run that never left the
	// hysteresis band).
	FinalBasin int `json:"final_basin,omitempty"`
}

// BasinStats returns the basin accounting of the run so far.
func (h *Harvester) BasinStats() BasinStats {
	return BasinStats{
		Transits:        h.basinTransits,
		SettledTransits: h.basinSettledTransits,
		FinalBasin:      h.basinSide,
	}
}

// SetBasinSettle fixes the settled-window boundary [s] for the
// settled-transit counter. The batch runner calls it with
// duration*settleFrac before every run — the same boundary the power
// metrics use, and part of the cache identity — so basin reductions are
// deterministic across dispatch modes. Unset, RunEngine/RunEnsemble
// default it to duration/3 (the batch default fraction).
func (h *Harvester) SetBasinSettle(t float64) {
	h.basinSettleT = t
	h.basinSettleSet = true
}

// defaultBasinSettle applies the duration/3 default when no explicit
// settle boundary was set for this run.
func (h *Harvester) defaultBasinSettle(duration float64) {
	if !h.basinSettleSet {
		h.basinSettleT = duration / 3
	}
}

// observeBasin classifies one accepted step's displacement. Called on
// the engine's observer path: no allocation, integer work only, and a
// single compare for monostable devices.
func (h *Harvester) observeBasin(t, z float64) {
	if h.basinThr == 0 {
		return
	}
	side := 0
	switch {
	case z >= h.basinThr:
		side = 1
	case z <= -h.basinThr:
		side = -1
	default:
		return
	}
	if h.basinSide != side {
		if h.basinSide != 0 {
			h.basinTransits++
			if t >= h.basinSettleT {
				h.basinSettledTransits++
			}
		}
		h.basinSide = side
	}
}

// Release hands the harvester's pooled workspace back to its pool (a
// no-op for harvesters assembled without one). The harvester and any
// engine built from it must not be used afterwards.
func (h *Harvester) Release() { h.Sys.Release() }

// wireMCU connects the microcontroller process to the analogue blocks,
// actuator and sensors.
func (h *Harvester) wireMCU() {
	h.MCU = digital.NewMCU(h.Kernel, h.Cfg.MCU)
	h.MCU.ReadVc = func(t float64) float64 {
		return h.lastVc()
	}
	h.MCU.AmbientHz = func(t float64) float64 {
		f := h.Meter.Measure(t, h.Cfg.MCU.MeasureTime)
		if math.IsNaN(f) {
			// Sensor produced no usable crossings (e.g. tiny amplitude):
			// fall back to the excitation's actual frequency.
			f = h.Vib.Freq(t)
		}
		return f
	}
	h.MCU.ResonantHz = func(t float64) float64 {
		return h.Cfg.Microgen.TunedHz(h.Act.ForceAt(t))
	}
	h.MCU.SetMode = func(m digital.Mode) bool {
		switch m {
		case digital.ModeAwake:
			h.Store.SetMode(blocks.LoadMCU)
		case digital.ModeTuning:
			h.Store.SetMode(blocks.LoadTuning)
		default:
			h.Store.SetMode(blocks.LoadSleep)
		}
		h.Sys.Invalidate()
		return true
	}
	h.MCU.TuneStep = func(t, targetHz float64) (done, changed bool) {
		if !h.tuning {
			gap := h.Act.GapForForce(h.Cfg.Microgen.ForceForHz(targetHz))
			h.arrival = h.Act.MoveTo(t, gap)
			h.tuning = true
		}
		h.Gen.SetTuningForce(h.Act.ForceAt(t), 0)
		h.Sys.Invalidate()
		if t >= h.arrival {
			h.Act.Settle(t)
			h.tuning = false
			return true, true
		}
		return false, true
	}
	h.MCU.TuneHalt = func(t float64) bool {
		h.Act.Halt(t)
		h.tuning = false
		h.Gen.SetTuningForce(h.Act.ForceAt(t), 0)
		h.Sys.Invalidate()
		return true
	}
	h.MCU.Start(0)
}

// lastVc returns the most recent supercap terminal voltage (from the
// trace; before the first step, the initial condition).
func (h *Harvester) lastVc() float64 {
	if h.VcTrace.Len() == 0 {
		return h.Cfg.InitialVc
	}
	_, v := h.VcTrace.Last()
	return v
}

// NewEngine builds the chosen analogue engine wired to the digital
// kernel and the waveform probes. decimate keeps every n-th sample in
// the traces (1 = keep all).
func (h *Harvester) NewEngine(kind EngineKind, decimate int) Engine {
	hmax := h.Cfg.Solver.HMax
	if hmax <= 0 {
		hmax = 2.5e-4
	}
	var eng Engine
	switch kind {
	case Proposed:
		e := core.NewEngine(h.Sys)
		e.Ctl.HMax = hmax
		if h.Cfg.Solver.Rtol > 0 {
			e.Ctl.Rtol = h.Cfg.Solver.Rtol
		}
		if h.Cfg.Solver.ABOrder > 0 {
			e.Order = h.Cfg.Solver.ABOrder
		}
		e.Events = h.Kernel
		eng = e
	case ExistingTrap, ExistingBDF2, ExistingBE:
		m := implicit.Trapezoidal
		switch kind {
		case ExistingBDF2:
			m = implicit.BDF2
		case ExistingBE:
			m = implicit.BackwardEuler
		}
		e := implicit.NewEngine(h.Sys, m)
		e.Ctl.HMax = hmax
		if h.Cfg.Solver.Rtol > 0 {
			e.Ctl.Rtol = h.Cfg.Solver.Rtol
		}
		e.Events = h.Kernel
		eng = e
	default:
		panic(fmt.Sprintf("harvester: unknown engine kind %d", int(kind)))
	}
	h.attachProbes(eng, decimate)
	return eng
}

// attachProbes wires the traces, the frequency meter and the energy
// integrals to the engine.
func (h *Harvester) attachProbes(eng Engine, decimate int) {
	if decimate < 1 {
		decimate = 1
	}
	vcDec := trace.NewDecimator(h.VcTrace, decimate)
	pDec := trace.NewDecimator(h.PMultIn, decimate)
	psDec := trace.NewDecimator(h.PStoreTrace, decimate)
	fDec := trace.NewDecimator(h.FresTrace, decimate*4)
	count := 0
	eng.Observe(func(t float64, x, y []float64) {
		pin := y[h.idxVm] * y[h.idxIm]
		h.observeBasin(t, x[h.genOff])
		// The frequency meter samples the accelerometer signal.
		h.Meter.Sample(t, h.Vib.Accel(t))
		// Energy integrals (trapezoidal).
		vc := y[h.idxVc]
		pstore := vc * y[h.idxIc]
		pload := vc * vc / h.Store.Mode().Req()
		if h.haveLast && t > h.lastT {
			dt := t - h.lastT
			h.Energy.Harvested += dt * (pin + h.lastPIn) / 2
			h.Energy.ToStore += dt * (pstore + h.lastPStore) / 2
			h.Energy.Load += dt * (pload + h.lastPLoad) / 2
		}
		h.lastT, h.lastPIn, h.lastPLoad, h.lastPStore = t, pin, pload, pstore
		h.haveLast = true
		// Traces. Vc is recorded undecimated in time but decimated in
		// sample count; the MCU reads the latest value.
		vcDec.Append(t, vc)
		pDec.Append(t, pin)
		psDec.Append(t, pstore)
		if count%16 == 0 {
			fDec.Append(t, h.Cfg.Microgen.TunedHz(h.Act.ForceAt(t)))
		}
		count++
	})
}

// Run assembles an engine of the given kind, runs [0, duration] and
// returns it (for stats inspection).
func (h *Harvester) Run(kind EngineKind, duration float64, decimate int) (Engine, error) {
	eng := h.NewEngine(kind, decimate)
	return eng, h.RunEngine(eng, duration)
}

// RunEngine runs a previously built engine over [0, duration] with the
// harvester's energy bookkeeping. Splitting construction from execution
// lets callers (the batch runner, conformance harnesses) attach extra
// observers or adjust engine settings between NewEngine and the run.
func (h *Harvester) RunEngine(eng Engine, duration float64) error {
	h.defaultBasinSettle(duration)
	x0 := make([]float64, h.Sys.NX())
	h.Sys.InitState(x0)
	h.Energy.StoredT0 = h.Store.StoredEnergy(x0[h.scOff : h.scOff+3])
	if err := eng.Run(0, duration); err != nil {
		return err
	}
	x := eng.State()
	h.Energy.StoredT1 = h.Store.StoredEnergy(x[h.scOff : h.scOff+3])
	// Mode trace is reconstructed from kernel activity indirectly; record
	// the final mode for completeness.
	h.ModeTrace.Append(h.lastT, float64(h.Store.Mode()))
	return nil
}
