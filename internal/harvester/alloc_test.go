package harvester

import (
	"testing"

	"harvsim/internal/core"
	"harvsim/internal/trace"
)

// TestWarmStepZeroAllocs pins the allocation-free hot path: once the
// engine is warm (workspace bound, stability caches built, trace
// capacity reserved), an accepted simulation step — linearise,
// eliminate, observe, Adams-Bashforth update, including the periodic
// Jyy refactorisations and stability recomputes the march triggers —
// performs zero heap allocations.
func TestWarmStepZeroAllocs(t *testing.T) {
	sc := ChargeScenario(1000) // horizon far beyond the steps taken here
	sc.Cfg.InitialVc = 2.5     // working point: diode segments active
	h, err := Assemble(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*trace.Series{h.VcTrace, h.PMultIn, h.PStoreTrace, h.FresTrace} {
		s.Reserve(1 << 16)
	}
	eng, ok := h.NewEngine(Proposed, 1).(*core.Engine)
	if !ok {
		t.Fatal("proposed engine is not a core.Engine")
	}
	if err := eng.Begin(0, sc.Duration); err != nil {
		t.Fatal(err)
	}
	// Warm-up: fill the AB history, settle the PWL segments and trigger
	// the first stability analyses.
	for i := 0; i < 2000; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	stepErr := error(nil)
	avg := testing.AllocsPerRun(500, func() {
		if _, err := eng.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if avg != 0 {
		t.Fatalf("warm steady-state step allocates %.3f objects/step, want 0", avg)
	}
	if eng.Stats.StabilityRecomputes < 2 {
		t.Fatalf("test premise broken: only %d stability recomputes during warm march",
			eng.Stats.StabilityRecomputes)
	}
}

// TestWarmStepZeroAllocsDuffingNoise extends the zero-alloc pin to the
// nonlinear/stochastic workload: the Duffing re-tangent path (restamp +
// Jyy refactor + stability drift accounting) and the band-limited noise
// evaluation must both stay on the allocation-free hot path.
func TestWarmStepZeroAllocsDuffingNoise(t *testing.T) {
	sc := NoiseScenario(1000, 55, 85, 42)
	sc.Cfg.VibNoise.RMS = 2 // strong drive: frequent re-tangents
	sc.Cfg.Microgen.K3 = DuffingK3Strong
	h, err := Assemble(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*trace.Series{h.VcTrace, h.PMultIn, h.PStoreTrace, h.FresTrace} {
		s.Reserve(1 << 16)
	}
	eng, ok := h.NewEngine(Proposed, 1).(*core.Engine)
	if !ok {
		t.Fatal("proposed engine is not a core.Engine")
	}
	if err := eng.Begin(0, sc.Duration); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	refreshesBefore := eng.Stats.Refreshes
	stepErr := error(nil)
	avg := testing.AllocsPerRun(500, func() {
		if _, err := eng.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if avg != 0 {
		t.Fatalf("warm Duffing/noise step allocates %.3f objects/step, want 0", avg)
	}
	if eng.Stats.Refreshes == refreshesBefore {
		t.Fatal("test premise broken: no Duffing re-tangents during the measured steps")
	}
}

// TestWarmStepZeroAllocsAfterReset pins the batch reuse path's step
// cost: an engine rebuilt on the same harvester after Reset steps
// without allocating, because the workspace, history ring and trace
// buffers all survive the Reset.
func TestWarmStepZeroAllocsAfterReset(t *testing.T) {
	sc := ChargeScenario(1000)
	sc.Cfg.InitialVc = 2.5
	h, err := Assemble(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*trace.Series{h.VcTrace, h.PMultIn, h.PStoreTrace, h.FresTrace} {
		s.Reserve(1 << 16)
	}
	run := func() *core.Engine {
		eng := h.NewEngine(Proposed, 1).(*core.Engine)
		if err := eng.Begin(0, sc.Duration); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1500; i++ {
			if _, err := eng.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}
	first := run()
	first.Reset()
	h.Reset()
	eng := run()
	var stepErr error
	avg := testing.AllocsPerRun(500, func() {
		if _, err := eng.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if avg != 0 {
		t.Fatalf("warm step after Reset allocates %.3f objects/step, want 0", avg)
	}
}
