package harvester

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"reflect"

	"harvsim/internal/pwl"
)

// This file defines the stable content hash of a scenario — the job
// identity the batch layer's result cache is keyed on. The encoding is
// canonical and collision-safe by construction:
//
//   - every value is prefixed with a kind tag, so values of different
//     kinds can never collide;
//   - all variable-length data (strings, slices, struct field sets) is
//     length- or name-prefixed, so concatenation ambiguities cannot
//     arise;
//   - structs contribute their type name and every *exported* field,
//     name first, walked recursively via reflection — a field added to
//     Config (or any nested parameter struct) is hashed automatically,
//     and renaming a type or field changes the hash, which is exactly
//     the conservative behaviour a physics cache wants;
//   - floats are encoded as their IEEE-754 bit patterns, never through a
//     decimal formatting round-trip: the cache promises bit-identical
//     results, so two configs are "equal" only when every float is
//     bit-equal (+0/-0 and different NaN payloads are deliberately
//     distinct).
//
// Unexported fields are skipped: a Config's identity is its exported
// surface (derived caches such as the diode's PWL table are rebuilt
// deterministically from it). The one pointer type Config carries,
// *pwl.Diode, is special-cased so the derived table's granularity — set
// at construction, not stored in an exported field — still enters the
// hash. Kinds with no canonical encoding (func, map, chan, interface)
// panic, so a new field of such a type cannot silently bypass the hash.

// Encoding kind tags. The values are part of the hash format: reordering
// or reusing them changes every key, which is safe (a full cache miss),
// but gratuitous — append new tags instead.
const (
	tagBool byte = iota + 1
	tagInt
	tagUint
	tagFloat
	tagString
	tagSlice
	tagPtrNil
	tagPtr
	tagStruct
	tagDiode
)

var diodeType = reflect.TypeOf((*pwl.Diode)(nil))

// hasher streams the canonical encoding into w (in practice a
// hash.Hash, which never returns a write error).
type hasher struct {
	w   io.Writer
	buf [8]byte
}

func (h *hasher) tag(t byte) {
	h.buf[0] = t
	h.w.Write(h.buf[:1])
}

func (h *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	h.w.Write(h.buf[:8])
}

func (h *hasher) i64(v int64) { h.u64(uint64(v)) }

func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	io.WriteString(h.w, s)
}

// value walks v, writing its canonical encoding.
func (h *hasher) value(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		h.tag(tagBool)
		if v.Bool() {
			h.u64(1)
		} else {
			h.u64(0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		h.tag(tagInt)
		h.i64(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		h.tag(tagUint)
		h.u64(v.Uint())
	case reflect.Float32, reflect.Float64:
		h.tag(tagFloat)
		h.f64(v.Float())
	case reflect.String:
		h.tag(tagString)
		h.str(v.String())
	case reflect.Slice, reflect.Array:
		h.tag(tagSlice)
		h.u64(uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			h.value(v.Index(i))
		}
	case reflect.Pointer:
		if v.Type() == diodeType {
			h.diode(v.Interface().(*pwl.Diode))
			return
		}
		if v.IsNil() {
			h.tag(tagPtrNil)
			return
		}
		h.tag(tagPtr)
		h.value(v.Elem())
	case reflect.Struct:
		h.tag(tagStruct)
		t := v.Type()
		h.str(t.String())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			h.str(f.Name)
			h.value(v.Field(i))
		}
	default:
		panic(fmt.Sprintf("harvester: no canonical hash encoding for kind %s (%s) — "+
			"extend hash.go before adding such a field to a cached config", v.Kind(), v.Type()))
	}
}

// diode hashes the diode model's physical parameters plus the derived
// companion table's granularity (which is fixed at BuildTable time and
// changes the simulated physics, but lives in an unexported field).
func (h *hasher) diode(d *pwl.Diode) {
	h.tag(tagDiode)
	if d == nil {
		h.u64(0)
		return
	}
	h.u64(1)
	h.f64(d.Is)
	h.f64(d.NVt)
	h.f64(d.Rs)
	segs := 0
	if t := d.Table(); t != nil {
		segs = t.NumSegments()
	}
	h.i64(int64(segs))
}

// WriteHash writes the canonical, collision-safe encoding of the
// scenario's physics identity into w — everything that determines the
// simulated trajectory: the full Config (all exported fields,
// recursively, floats bit-exact), the horizon, the scheduled frequency
// shifts and the chirp. The scenario Name is deliberately excluded: it
// labels results, it does not change physics, so two identically
// configured jobs with different names share one cache entry.
//
// The determinism contract this leans on: a run is a pure function of
// its (Config, Scenario schedule, engine, solver) tuple — equal inputs
// produce bit-identical trajectories across serial, pooled and
// workspace-reused executions (pinned by the root determinism suite).
func (sc Scenario) WriteHash(w io.Writer) {
	h := &hasher{w: w}
	h.str("harvsim/scenario")
	h.value(reflect.ValueOf(sc.Cfg))
	h.tag(tagFloat)
	h.f64(sc.Duration)
	h.value(reflect.ValueOf(sc.Shifts))
	h.value(reflect.ValueOf(sc.Chirp))
}
