package harvester

import (
	"crypto/sha256"
	"math"
	"reflect"
	"testing"

	"harvsim/internal/blocks"
)

// scenarioHash reduces WriteHash output to a comparable digest.
func scenarioHash(sc Scenario) [sha256.Size]byte {
	h := sha256.New()
	sc.WriteHash(h)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// hashBase builds a fresh, fully populated scenario for hashing tests
// (noise spec set so the stochastic fields are exercised by the
// coverage walk). Every call constructs its own diode, so perturbing
// one copy can never alias another.
func hashBase() Scenario {
	sc := ChargeScenario(2)
	sc.Cfg.VibNoise = blocks.NoiseSpec{RMS: 0.59, FLo: 55, FHi: 85, Tones: 48, Seed: 7}
	return sc
}

func TestScenarioHashDeterministic(t *testing.T) {
	a, b := hashBase(), hashBase()
	if scenarioHash(a) != scenarioHash(b) {
		t.Fatal("two identically built scenarios hash differently")
	}
	if scenarioHash(a) != scenarioHash(a.Clone()) {
		t.Fatal("Clone changes the hash")
	}
}

func TestScenarioHashIgnoresName(t *testing.T) {
	a, b := hashBase(), hashBase()
	b.Name = "completely-different-label"
	if scenarioHash(a) != scenarioHash(b) {
		t.Fatal("scenario Name leaked into the physics hash")
	}
}

func TestScenarioHashCoversScheduleKnobs(t *testing.T) {
	base := scenarioHash(hashBase())
	mut := map[string]func(sc *Scenario){
		"Duration":      func(sc *Scenario) { sc.Duration += 1 },
		"Shifts add":    func(sc *Scenario) { sc.Shifts = append(sc.Shifts, FreqShift{T: 1, Hz: 71}) },
		"Chirp non-nil": func(sc *Scenario) { sc.Chirp = &ChirpSpec{T0: 0.5, Duration: 1, FEnd: 72} },
	}
	for name, f := range mut {
		sc := hashBase()
		f(&sc)
		if scenarioHash(sc) == base {
			t.Errorf("%s does not change the hash", name)
		}
	}
	// Shift ordering is physical (two shifts swap which frequency wins).
	two := hashBase()
	two.Shifts = []FreqShift{{T: 0.5, Hz: 71}, {T: 1, Hz: 72}}
	swapped := hashBase()
	swapped.Shifts = []FreqShift{{T: 1, Hz: 72}, {T: 0.5, Hz: 71}}
	if scenarioHash(two) == scenarioHash(swapped) {
		t.Error("shift order does not change the hash")
	}
}

// visitLeaves walks every settable exported leaf (bool, int, uint,
// float, string) of v in a fixed depth-first order — the same traversal
// shape the hasher uses — and calls fn on each. It mirrors hash.go's
// skip rules: unexported fields are ignored, nil pointers are leaves of
// their own (handled by the schedule-knob test above).
func visitLeaves(v reflect.Value, path string, fn func(path string, leaf reflect.Value)) {
	switch v.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64, reflect.String:
		fn(path, v)
	case reflect.Pointer:
		if !v.IsNil() {
			visitLeaves(v.Elem(), path, fn)
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			visitLeaves(v.Index(i), path, fn)
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			visitLeaves(v.Field(i), path+"."+t.Field(i).Name, fn)
		}
	}
}

// perturbLeaf changes the leaf's value by at least one bit.
func perturbLeaf(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		if f := v.Float(); math.IsInf(f, 0) || math.IsNaN(f) {
			v.SetFloat(12345.678) // Nextafter is a no-op on non-finite values
		} else {
			v.SetFloat(math.Nextafter(f, math.Inf(1)))
		}
	case reflect.String:
		v.SetString(v.String() + "x")
	}
}

// TestScenarioHashCoversEveryConfigField is the reflection-based
// field-coverage guarantee: perturbing ANY exported leaf field reachable
// from Config — including fields added after this test was written —
// must change the hash. A new Config (or nested parameter struct) field
// therefore cannot silently miss the cache key; if it is intentionally
// non-physical it must be unexported or the hasher must learn about it
// explicitly.
func TestScenarioHashCoversEveryConfigField(t *testing.T) {
	var leaves []string
	enum := hashBase()
	visitLeaves(reflect.ValueOf(&enum.Cfg).Elem(), "Config",
		func(p string, _ reflect.Value) { leaves = append(leaves, p) })
	if len(leaves) < 30 {
		t.Fatalf("coverage walk found only %d leaves; walker broken?", len(leaves))
	}
	// The bistable knobs must be visible to the walk (and hence to the
	// hasher): if one of these were unexported or pruned, two design
	// points differing only in well shape or coupling correction would
	// collide in the sweep cache.
	seen := make(map[string]bool, len(leaves))
	for _, p := range leaves {
		seen[p] = true
	}
	for _, p := range []string{
		"Config.Microgen.K1", "Config.Microgen.K3", "Config.Microgen.Z0",
		"Config.Microgen.Xi1", "Config.Microgen.Xi2",
	} {
		if !seen[p] {
			t.Errorf("%s not reachable by the coverage walk — bistable knob missing from the cache key", p)
		}
	}
	base := scenarioHash(hashBase())
	for i, path := range leaves {
		sc := hashBase()
		j := 0
		visitLeaves(reflect.ValueOf(&sc.Cfg).Elem(), "Config",
			func(_ string, leaf reflect.Value) {
				if j == i {
					perturbLeaf(leaf)
				}
				j++
			})
		if scenarioHash(sc) == base {
			t.Errorf("perturbing %s does not change the hash — field missing from the cache key", path)
		}
	}
	t.Logf("hash coverage verified over %d Config leaf fields", len(leaves))
}
