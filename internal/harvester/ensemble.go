package harvester

import (
	"errors"

	"harvsim/internal/core"
)

// AssembleEnsemble assembles one harvester per scenario — the K seeds
// of one design point — against a shared structure-of-arrays ensemble
// workspace, so the members' march-critical vectors are contiguous and
// a lockstep run walks adjacent memory. Each member also gets the
// vibration Accel memo enabled (a bit-exact pure-function memo; see
// blocks.Vibration.EnableAccelMemo). The returned workspace keeps the
// SoA blocks alive; it is otherwise only needed by tests.
//
// The scenarios are normally identical up to the noise seed, but
// nothing here requires that: members of a different shape simply get
// private (non-SoA) storage from the pool and still run correctly.
func AssembleEnsemble(scs []Scenario) ([]*Harvester, *core.EnsembleWorkspace, error) {
	if len(scs) == 0 {
		return nil, nil, errors.New("harvester: empty ensemble")
	}
	if err := scs[0].Cfg.Validate(); err != nil {
		return nil, nil, err
	}
	// A throwaway probe assembly learns the system shape; the real
	// members then draw SoA-backed workspaces of exactly that shape.
	probe := New(scs[0].Cfg)
	ew := core.NewEnsembleWorkspace(len(scs), probe.Sys.NX(), probe.Sys.NY())
	pool := ew.Pool()
	hs := make([]*Harvester, len(scs))
	for i, sc := range scs {
		h, err := AssembleWith(sc, pool)
		if err != nil {
			return nil, nil, err
		}
		h.Vib.EnableAccelMemo()
		hs[i] = h
	}
	return hs, ew, nil
}

// RunEnsemble runs the members' engines over [0, duration] in lockstep
// with the harvester-level energy bookkeeping RunEngine performs,
// returning one error slot per member. When every engine is the
// proposed explicit engine the members march through
// core.EnsembleEngine, sharing factorisations and stability analyses;
// the implicit baselines have no lockstep mode and run sequentially
// (which is trivially bit-identical to their solo runs). Either way,
// member i's outcome is exactly hs[i].RunEngine(engs[i], duration).
func RunEnsemble(hs []*Harvester, engs []Engine, duration float64) []error {
	if len(engs) != len(hs) {
		panic("harvester: RunEnsemble member/engine count mismatch")
	}
	errs := make([]error, len(hs))
	cores := make([]*core.Engine, len(engs))
	allCore := true
	for i, eng := range engs {
		ce, ok := eng.(*core.Engine)
		if !ok {
			allCore = false
			break
		}
		cores[i] = ce
	}
	if !allCore {
		for i := range hs {
			errs[i] = hs[i].RunEngine(engs[i], duration)
		}
		return errs
	}
	for _, h := range hs {
		h.defaultBasinSettle(duration)
		x0 := make([]float64, h.Sys.NX())
		h.Sys.InitState(x0)
		h.Energy.StoredT0 = h.Store.StoredEnergy(x0[h.scOff : h.scOff+3])
	}
	ee := core.NewEnsembleEngine(cores)
	runErrs := ee.Run(0, duration)
	for i, h := range hs {
		if runErrs[i] != nil {
			errs[i] = runErrs[i]
			continue
		}
		x := cores[i].State()
		h.Energy.StoredT1 = h.Store.StoredEnergy(x[h.scOff : h.scOff+3])
		h.ModeTrace.Append(h.lastT, float64(h.Store.Mode()))
	}
	return errs
}
