package harvester

import (
	"fmt"

	"harvsim/internal/blocks"
	"harvsim/internal/core"
)

// FreqShift is a scheduled change of the ambient vibration frequency.
type FreqShift struct {
	T  float64 // time [s]
	Hz float64 // new frequency [Hz]
}

// Scenario is one of the paper's evaluation runs: a configured harvester,
// a sequence of ambient frequency shifts and a simulation horizon.
type Scenario struct {
	Name     string
	Cfg      Config
	Duration float64
	Shifts   []FreqShift
	Chirp    *ChirpSpec // optional linear chirp (TrackingScenario)
}

// Clone returns a deep copy of the scenario: mutating the copy's Shifts
// or Chirp never aliases the original. The batch sweep expander relies
// on this to derive many jobs from one shared base without data races.
func (sc Scenario) Clone() Scenario {
	out := sc
	if len(sc.Shifts) > 0 {
		out.Shifts = append([]FreqShift(nil), sc.Shifts...)
	}
	if sc.Chirp != nil {
		ch := *sc.Chirp
		out.Chirp = &ch
	}
	return out
}

// Fidelity selects between bench-scale and paper-scale scenario timing.
// The physics is identical; Quick shortens the watchdog period, speeds
// the actuator up and shrinks the horizon so a run finishes in seconds.
// CPU-time *ratios* between engines are per-step properties and carry
// over to the full-scale runs (see DESIGN.md).
type Fidelity int

const (
	// Quick is the bench-scale variant.
	Quick Fidelity = iota
	// PaperScale reproduces the paper's multi-hour horizons.
	PaperScale
)

// String names the fidelity.
func (f Fidelity) String() string {
	if f == PaperScale {
		return "paper-scale"
	}
	return "quick"
}

// Scenario1 is the paper's narrow-range run: the ambient frequency
// shifts from 70 to 71 Hz and the autonomous controller retunes the
// generator by 1 Hz (Fig. 8, Table II row 1).
func Scenario1(f Fidelity) Scenario {
	cfg := DefaultConfig()
	cfg.VibFreq = 70
	cfg.InitialTuneHz = 70
	cfg.InitialVc = 2.9
	sc := Scenario{Name: "scenario1-1Hz", Cfg: cfg}
	switch f {
	case PaperScale:
		sc.Cfg.MCU.Watchdog = 600
		sc.Duration = 7200
		sc.Shifts = []FreqShift{{T: 300, Hz: 71}}
	default:
		sc.Cfg.MCU.Watchdog = 20
		sc.Duration = 120
		sc.Shifts = []FreqShift{{T: 10, Hz: 71}}
	}
	return sc
}

// Scenario2 is the wide-range run: a 14 Hz shift spanning the design's
// maximum tuning range, 64 to 78 Hz (Fig. 9, Table II row 2). At paper
// scale the actuator travel costs more energy than the supercapacitor
// holds, so the controller tunes in duty-cycled bursts separated by
// recharge intervals — the behaviour that makes this the expensive
// simulation case.
func Scenario2(f Fidelity) Scenario {
	cfg := DefaultConfig()
	cfg.VibFreq = 64
	cfg.InitialTuneHz = 64
	sc := Scenario{Name: "scenario2-14Hz", Cfg: cfg}
	switch f {
	case PaperScale:
		sc.Cfg.InitialVc = 2.9
		sc.Cfg.MCU.Watchdog = 600
		sc.Duration = 14400
		sc.Shifts = []FreqShift{{T: 300, Hz: 78}}
	default:
		sc.Cfg.InitialVc = 3.3
		sc.Cfg.MCU.Watchdog = 20
		sc.Cfg.Actuator.Speed = 10e-3 // quick variant: faster actuator
		sc.Duration = 180
		sc.Shifts = []FreqShift{{T: 10, Hz: 78}}
	}
	return sc
}

// ChargeScenario is the non-tunable charge-up used by Table I: a fixed
// 70 Hz excitation charging the supercapacitor from empty, no digital
// activity.
func ChargeScenario(duration float64) Scenario {
	cfg := DefaultConfig()
	cfg.Autonomous = false
	cfg.InitialVc = 0
	return Scenario{Name: "supercap-charging", Cfg: cfg, Duration: duration}
}

// TrackingScenario extends the paper's evaluation: instead of a single
// step, the ambient frequency drifts slowly (a phase-continuous linear
// chirp from f0 to fEnd over the middle of the horizon), and the
// autonomous controller must re-tune repeatedly to track it — the
// operating condition the paper's introduction motivates tunable
// harvesters with. The chirp is scheduled directly on the vibration
// source by RunScenario via the Sweep field.
func TrackingScenario(duration, f0, fEnd float64) Scenario {
	cfg := DefaultConfig()
	cfg.VibFreq = f0
	cfg.InitialTuneHz = f0
	// Margins sized for repeated tuning bursts: the supercapacitor's
	// series resistance sags the terminal voltage by ~0.25 V under the
	// measurement load, so the energy thresholds sit well below the
	// stored level or the controller would wrongly declare starvation.
	cfg.InitialVc = 3.3
	cfg.MCU.Watchdog = 15
	cfg.MCU.MeasureTime = 0.05
	cfg.MCU.VMin = 2.1
	cfg.MCU.VTune = 2.3
	// Quick-demo actuator (as in Scenario2(Quick)): at the rig's 1 mm/s a
	// single retune costs more energy than the storage holds, which is
	// the paper-scale duty-cycling behaviour — appropriate for multi-hour
	// horizons, not a minutes-long tracking demonstration.
	cfg.Actuator.Speed = 10e-3
	sc := Scenario{Name: "frequency-tracking", Cfg: cfg, Duration: duration}
	sc.Chirp = &ChirpSpec{T0: duration * 0.15, Duration: duration * 0.6, FEnd: fEnd}
	return sc
}

// DuffingScenario is the nonlinear-spring workload of the paper's
// generality claim (Section V): the supercap charge run with a cubic
// (Duffing) spring of coefficient k3 [N/m^3] added to the
// microgenerator, sinusoidally excited at the storage operating point
// where the multiplier's diode nonlinearity is also active. k3 = 0
// degenerates to the linear ChargeScenario device bit for bit; the
// hardening values DuffingK3Moderate/DuffingK3Strong shift the
// effective resonance by roughly one and several hertz at the device's
// steady-state amplitude — enough that the proposed engine's
// operating-point-driven restamps and LLE monitor are genuinely
// exercised.
func DuffingScenario(duration, k3 float64) Scenario {
	cfg := DefaultConfig()
	cfg.Autonomous = false
	cfg.InitialVc = 2.5
	cfg.Microgen.K3 = k3
	return Scenario{Name: "duffing-charge", Cfg: cfg, Duration: duration}
}

// DuffingK3Moderate and DuffingK3Strong are calibrated cubic
// coefficients for the default microgenerator geometry (sub-millimetre
// proof-mass travel): at the device's sinusoidal steady state they
// raise the tangent stiffness by a few percent and a few tens of
// percent respectively.
const (
	DuffingK3Moderate = 1e9 // [N/m^3]
	DuffingK3Strong   = 1e10
)

// NoiseScenario is the stochastic wideband workload: band-limited noise
// excitation over [fLo, fHi] Hz replacing the sinusoid (the realistic
// ambient-vibration condition of Hosseinloo et al.), charging the
// storage from the same partially charged operating point as
// ChargeScenario. The realisation is deterministic per seed — see
// blocks.NoiseSpec for the seeding contract.
func NoiseScenario(duration, fLo, fHi float64, seed uint64) Scenario {
	cfg := DefaultConfig()
	cfg.Autonomous = false
	cfg.InitialVc = 2.5
	cfg.VibAmplitude = 0 // pure stochastic excitation
	cfg.VibNoise = blocks.NoiseSpec{RMS: 0.59, FLo: fLo, FHi: fHi, Seed: seed}
	return Scenario{Name: "noise-charge", Cfg: cfg, Duration: duration}
}

// Calibrated bistable defaults for the standard microgenerator
// geometry: a 0.5 mm well displacement with a 2 uJ barrier puts the
// in-well resonance near 18 Hz, and the drive sits just above the
// barrier-crossing threshold — every seed holds the inter-well orbit at
// the default barrier, but doubling the barrier twice splits the
// ensemble between captured and orbiting seeds, which is the regime the
// basin-aware reductions (and the retangent policy under jumps) are
// built for.
const (
	BistableWellM    = 5e-4 // well displacement [m]
	BistableBarrierJ = 2e-6 // barrier height [J]
	BistableNoiseRMS = 0.5  // default drive [m/s^2]
)

// BistableScenario is the double-well workload of the bistable-harvester
// literature (Morel et al., Boisseau et al.): the noise-charge run with
// the microgenerator's restoring force reshaped into a double well of
// the given well displacement [m] and barrier height [J], optional
// displacement-dependent coupling corrections xi1 [1/m] / xi2 [1/m^2],
// and the proof mass started in the negative well. The well geometry is
// inverted into the spring coefficients:
//
//	kl = -4*barrier/well^2   (total linear stiffness, negative)
//	K3 =  4*barrier/well^4   K1 = kl - Ks
//
// and the tuning force is parked at zero (InitialTuneHz = untuned
// resonance) so the stamped linear stiffness is exactly Ks+K1. With
// wellM = barrierJ = 0 the config degenerates bit-identically to
// NoiseScenario's monostable device — the linear-limit conformance
// tests pin this.
func BistableScenario(duration, wellM, barrierJ, xi1, xi2, fLo, fHi float64, seed uint64) Scenario {
	sc := NoiseScenario(duration, fLo, fHi, seed)
	sc.Name = "bistable-charge"
	if wellM > 0 && barrierJ > 0 {
		kl := -4 * barrierJ / (wellM * wellM)
		sc.Cfg.Microgen.K1 = kl - sc.Cfg.Microgen.Ks
		sc.Cfg.Microgen.K3 = 4 * barrierJ / (wellM * wellM * wellM * wellM)
		sc.Cfg.Microgen.Z0 = -wellM
		sc.Cfg.InitialTuneHz = sc.Cfg.Microgen.UntunedHz()
		sc.Cfg.VibNoise.RMS = BistableNoiseRMS
	}
	sc.Cfg.Microgen.Xi1 = xi1
	sc.Cfg.Microgen.Xi2 = xi2
	return sc
}

// ChirpSpec schedules a linear ambient-frequency chirp.
type ChirpSpec struct {
	T0       float64
	Duration float64
	FEnd     float64
}

// Assemble builds the harvester for a scenario and schedules its
// frequency shifts and chirp on the digital kernel, without running it.
// Callers that need to attach extra probes or tweak the engine do so
// between Assemble and RunEngine; RunScenario is the one-shot path.
func Assemble(sc Scenario) (*Harvester, error) {
	return AssembleWith(sc, nil)
}

// AssembleWith is Assemble drawing the harvester's Jacobian and engine
// storage from the pool's recycled workspaces (nil = own storage); see
// NewWith.
func AssembleWith(sc Scenario, pool *core.WorkspacePool) (*Harvester, error) {
	if err := sc.Cfg.Validate(); err != nil {
		return nil, err
	}
	h := NewWith(sc.Cfg, pool)
	if err := h.Schedule(sc); err != nil {
		// Hand the freshly acquired workspace straight back: a sweep with
		// invalid jobs must not drain its worker's pool.
		h.Release()
		return nil, err
	}
	return h, nil
}

// Schedule programs the scenario's frequency shifts and chirp onto the
// harvester's kernel and vibration source. It is called by Assemble and
// must be repeated after a Reset (which discards the kernel's events and
// the vibration profile).
func (h *Harvester) Schedule(sc Scenario) error {
	for _, shift := range sc.Shifts {
		shift := shift
		if shift.T >= sc.Duration {
			return fmt.Errorf("harvester: shift at %g outside horizon %g", shift.T, sc.Duration)
		}
		h.Kernel.At(shift.T, func(now float64) bool {
			h.Vib.SetFrequency(now, shift.Hz)
			// The excitation's derivative changes discontinuously; restart
			// the multistep history.
			return true
		})
	}
	if ch := sc.Chirp; ch != nil {
		if ch.T0+ch.Duration > sc.Duration {
			return fmt.Errorf("harvester: chirp extends past horizon %g", sc.Duration)
		}
		// Pre-programme the chirp; it is smooth (phase and frequency both
		// continuous), so no event discontinuity is needed.
		h.Vib.Sweep(ch.T0, ch.Duration, ch.FEnd)
	}
	return nil
}

// RunScenario assembles the harvester, schedules the frequency shifts on
// the digital kernel and runs the chosen engine over the scenario
// horizon. decimate bounds trace memory (1 = keep everything).
func RunScenario(sc Scenario, kind EngineKind, decimate int) (*Harvester, Engine, error) {
	h, err := Assemble(sc)
	if err != nil {
		return nil, nil, err
	}
	eng, err := h.Run(kind, sc.Duration, decimate)
	return h, eng, err
}
