package harvester

import (
	"testing"

	"harvsim/internal/core"
	"harvsim/internal/trace"
)

// sameSeries asserts bit-for-bit equality of two recorded waveforms.
func sameSeries(t *testing.T, label string, a, b *trace.Series) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: length %d vs %d", label, a.Len(), b.Len())
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] || a.Vals[i] != b.Vals[i] {
			t.Fatalf("%s: sample %d differs: (%v, %v) vs (%v, %v)",
				label, i, a.Times[i], a.Vals[i], b.Times[i], b.Vals[i])
		}
	}
}

func sameState(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: state length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: state[%d] = %v vs %v", label, i, a[i], b[i])
		}
	}
}

// TestResetRerunBitIdentical pins the Reset reuse protocol: a harvester
// that has already completed a run, after Reset+Schedule, must reproduce
// a freshly assembled harvester's run bit for bit — same waveforms, same
// final state, same energy accounting. The scenario is autonomous (MCU
// wake, frequency shift event) so the kernel/actuator/meter reset paths
// are all exercised.
func TestResetRerunBitIdentical(t *testing.T) {
	sc := Scenario1(Quick)
	sc.Duration = 25
	sc.Shifts = []FreqShift{{T: 10, Hz: 71}}

	fresh, err := Assemble(sc)
	if err != nil {
		t.Fatal(err)
	}
	engF, err := fresh.Run(Proposed, sc.Duration, 4)
	if err != nil {
		t.Fatal(err)
	}

	reused, err := Assemble(sc)
	if err != nil {
		t.Fatal(err)
	}
	// First run dirties every cache: PWL segments, supercap tangent,
	// balancing scales, event queue, traces.
	if _, err := reused.Run(Proposed, sc.Duration, 4); err != nil {
		t.Fatal(err)
	}
	reused.Reset()
	if err := reused.Schedule(sc); err != nil {
		t.Fatal(err)
	}
	engR, err := reused.Run(Proposed, sc.Duration, 4)
	if err != nil {
		t.Fatal(err)
	}

	sameSeries(t, "Vc", fresh.VcTrace, reused.VcTrace)
	sameSeries(t, "Pmult", fresh.PMultIn, reused.PMultIn)
	sameSeries(t, "fres", fresh.FresTrace, reused.FresTrace)
	sameState(t, "final", engF.State(), engR.State())
	if fresh.Energy != reused.Energy {
		t.Fatalf("energy accounting differs: %+v vs %+v", fresh.Energy, reused.Energy)
	}
	sf, sr := core.Stats{}, core.Stats{}
	if e, ok := engF.(*core.Engine); ok {
		sf = e.Stats
	}
	if e, ok := engR.(*core.Engine); ok {
		sr = e.Stats
	}
	if sf.Steps != sr.Steps || sf.Refreshes != sr.Refreshes {
		t.Fatalf("run shape differs: %d/%d steps, %d/%d refreshes",
			sf.Steps, sr.Steps, sf.Refreshes, sr.Refreshes)
	}
}

// TestTwoEnginesOnPooledSystemDoNotAlias pins the workspace claiming
// rule: only one engine may bind a pooled system's workspace; a second
// engine on the same system must get private storage, not clobber the
// first engine's state views.
func TestTwoEnginesOnPooledSystemDoNotAlias(t *testing.T) {
	sc := ChargeScenario(0.05)
	sc.Cfg.InitialVc = 2.5
	pool := core.NewWorkspacePool()
	h, err := AssembleWith(sc, pool)
	if err != nil {
		t.Fatal(err)
	}
	e1 := core.NewEngine(h.Sys)
	e1.Ctl.HMax = 2.5e-4
	if err := e1.Run(0, sc.Duration); err != nil {
		t.Fatal(err)
	}
	s1 := append([]float64(nil), e1.State()...)

	e2 := core.NewEngine(h.Sys)
	e2.Ctl.HMax = 1e-4 // different cap: a different trajectory
	if err := e2.Run(0, sc.Duration); err != nil {
		t.Fatal(err)
	}
	sameState(t, "first engine after second run", e1.State(), s1)
	if e1.Workspace() == e2.Workspace() {
		t.Fatal("second engine aliased the first engine's workspace")
	}
}

// TestPooledAssembleBitIdentical pins the workspace-pool path: a
// harvester assembled on a recycled (dirty) workspace must run
// bit-identically to one with fresh storage.
func TestPooledAssembleBitIdentical(t *testing.T) {
	sc := ChargeScenario(2)
	sc.Cfg.InitialVc = 2.5

	fresh, err := Assemble(sc)
	if err != nil {
		t.Fatal(err)
	}
	engF, err := fresh.Run(Proposed, sc.Duration, 1)
	if err != nil {
		t.Fatal(err)
	}

	pool := core.NewWorkspacePool()
	first, err := AssembleWith(sc, pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Run(Proposed, sc.Duration, 1); err != nil {
		t.Fatal(err)
	}
	first.Release()

	second, err := AssembleWith(sc, pool)
	if err != nil {
		t.Fatal(err)
	}
	if gets, hits := pool.Stats(); gets != 2 || hits != 1 {
		t.Fatalf("pool did not recycle: gets=%d hits=%d", gets, hits)
	}
	engP, err := second.Run(Proposed, sc.Duration, 1)
	if err != nil {
		t.Fatal(err)
	}

	sameSeries(t, "Vc", fresh.VcTrace, second.VcTrace)
	sameState(t, "final", engF.State(), engP.State())
	second.Release()
}
