package harvester

import (
	"testing"

	"harvsim/internal/core"
)

// TestNoiseDuffingResetRerunBitIdentical extends the Reset reuse pin to
// the nonlinear/stochastic path: a harvester running the Duffing spring
// under seeded band-limited noise must, after Reset+Schedule, reproduce
// a freshly assembled run bit for bit — which exercises both halves of
// the new state: the vibration source's regenerated noise realisation
// and the microgenerator's discarded Duffing tangent point.
func TestNoiseDuffingResetRerunBitIdentical(t *testing.T) {
	sc := NoiseScenario(1.0, 55, 85, 42)
	sc.Cfg.Microgen.K3 = DuffingK3Moderate

	fresh, err := Assemble(sc)
	if err != nil {
		t.Fatal(err)
	}
	engF, err := fresh.Run(Proposed, sc.Duration, 4)
	if err != nil {
		t.Fatal(err)
	}

	reused, err := Assemble(sc)
	if err != nil {
		t.Fatal(err)
	}
	// First run leaves the Duffing tangent at the final displacement and
	// the noise tones warm; Reset must restore both.
	if _, err := reused.Run(Proposed, sc.Duration, 4); err != nil {
		t.Fatal(err)
	}
	reused.Reset()
	if err := reused.Schedule(sc); err != nil {
		t.Fatal(err)
	}
	engR, err := reused.Run(Proposed, sc.Duration, 4)
	if err != nil {
		t.Fatal(err)
	}

	sameSeries(t, "Vc", fresh.VcTrace, reused.VcTrace)
	sameSeries(t, "Pmult", fresh.PMultIn, reused.PMultIn)
	sameState(t, "final", engF.State(), engR.State())
	if fresh.Energy != reused.Energy {
		t.Fatalf("energy accounting differs: %+v vs %+v", fresh.Energy, reused.Energy)
	}
}

// TestDuffingRefreshesDivergeFullSystem pins, at full-system level, that
// the nonlinear spring is the first workload whose engine work profile
// is operating-point driven: under identical stochastic excitation the
// Duffing configuration refactors the terminal-elimination matrix
// substantially more often than the linear one (the diode restamps
// common to both set the baseline).
func TestDuffingRefreshesDivergeFullSystem(t *testing.T) {
	run := func(k3 float64) core.Stats {
		sc := NoiseScenario(1.5, 55, 85, 1)
		sc.Cfg.VibNoise.RMS = 2
		sc.Cfg.Microgen.K3 = k3
		h, err := Assemble(sc)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := h.Run(Proposed, sc.Duration, 64)
		if err != nil {
			t.Fatal(err)
		}
		return eng.(*core.Engine).Stats
	}
	lin := run(0)
	duff := run(DuffingK3Strong)
	if duff.Refreshes < lin.Refreshes*13/10 {
		t.Fatalf("Duffing refreshes (%d) should exceed linear refreshes (%d) by >=30%%",
			duff.Refreshes, lin.Refreshes)
	}
}

// TestNoiseScenarioSeedsDistinct pins that distinct seeds yield
// genuinely different workloads (the run is fully deterministic, so the
// comparison is exact and non-flaky): the settled-window power of two
// realisations must differ by more than a few percent.
func TestNoiseScenarioSeedsDistinct(t *testing.T) {
	rms := func(seed uint64) float64 {
		sc := NoiseScenario(1.5, 55, 85, seed)
		h, err := Assemble(sc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Run(Proposed, sc.Duration, 1); err != nil {
			t.Fatal(err)
		}
		return h.PMultIn.Slice(sc.Duration/3, sc.Duration).RMS()
	}
	p1, p2 := rms(1), rms(2)
	if p1 <= 0 || p2 <= 0 {
		t.Fatalf("degenerate noise power: %g, %g", p1, p2)
	}
	lo, hi := p1, p2
	if lo > hi {
		lo, hi = hi, lo
	}
	if (hi-lo)/hi < 0.05 {
		t.Fatalf("seeds 1 and 2 produced near-identical power %g vs %g", p1, p2)
	}
}
