package harvester

import (
	"math"
	"reflect"
	"testing"

	"harvsim/internal/core"
	"harvsim/internal/trace"
)

// TestBistableScenarioDerivation pins the well-geometry inversion: the
// scenario constructor must produce spring coefficients whose derived
// geometry round-trips to the requested well displacement and barrier
// height, with the in-well resonance where the stiffness formula puts
// it and the tuning force parked so the stamp is exactly Ks+K1.
func TestBistableScenarioDerivation(t *testing.T) {
	const wellM, barrierJ = 5e-4, 2e-6
	sc := BistableScenario(2, wellM, barrierJ, 120, -3.4e4, 8, 40, 7)
	mg := sc.Cfg.Microgen
	if !mg.Bistable() {
		t.Fatal("BistableScenario produced a monostable device")
	}
	if wz := mg.WellZ(); math.Abs(wz-wellM) > 1e-12*wellM {
		t.Errorf("WellZ round-trip: got %g, want %g", wz, wellM)
	}
	if bj := mg.BarrierJ(); math.Abs(bj-barrierJ) > 1e-12*barrierJ {
		t.Errorf("BarrierJ round-trip: got %g, want %g", bj, barrierJ)
	}
	wantHz := math.Sqrt(-2*(mg.Ks+mg.K1)/mg.M) / (2 * math.Pi)
	if hz := mg.InWellHz(); math.Abs(hz-wantHz) > 1e-9 {
		t.Errorf("InWellHz: got %g, want %g", hz, wantHz)
	}
	if hz := mg.InWellHz(); hz < 10 || hz > 30 {
		t.Errorf("calibrated in-well resonance %g Hz outside the 10..30 Hz design band", hz)
	}
	if mg.Z0 != -wellM {
		t.Errorf("Z0 = %g, want the negative well %g", mg.Z0, -wellM)
	}
	if sc.Cfg.InitialTuneHz != mg.UntunedHz() {
		t.Errorf("tuning not parked: InitialTuneHz %g, untuned %g",
			sc.Cfg.InitialTuneHz, mg.UntunedHz())
	}
	if mg.Xi1 != 120 || mg.Xi2 != -3.4e4 {
		t.Errorf("coupling corrections not threaded: Xi1=%g Xi2=%g", mg.Xi1, mg.Xi2)
	}
}

// TestBistableScenarioDegeneratesToNoise: with zero well geometry the
// bistable constructor is NoiseScenario with a different label — same
// config struct, same physics hash, so the cache treats them as one
// scenario.
func TestBistableScenarioDegeneratesToNoise(t *testing.T) {
	bi := BistableScenario(1.5, 0, 0, 0, 0, 55, 85, 9)
	ns := NoiseScenario(1.5, 55, 85, 9)
	if bi.Name == ns.Name {
		t.Error("degenerate bistable scenario should keep its own label")
	}
	bi.Name = ns.Name
	if !reflect.DeepEqual(bi, ns) {
		t.Errorf("degenerate bistable scenario differs from NoiseScenario beyond the name:\n%+v\nvs\n%+v", bi, ns)
	}
	if scenarioHash(bi) != scenarioHash(ns) {
		t.Error("degenerate bistable scenario hashes differently from NoiseScenario")
	}
}

// TestBasinObserverHysteresis unit-tests the classifier against
// hand-fed displacements: the ±WellZ/2 hysteresis band, transit
// counting only on full side flips, the settled-window boundary, and
// the monostable fast path.
func TestBasinObserverHysteresis(t *testing.T) {
	h, err := Assemble(BistableScenario(10, BistableWellM, BistableBarrierJ, 0, 0, 8, 40, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	thr := h.Cfg.Microgen.WellZ() / 2
	if thr <= 0 {
		t.Fatal("no hysteresis threshold on a bistable device")
	}
	h.SetBasinSettle(1.0)

	check := func(label string, want BasinStats) {
		t.Helper()
		if got := h.BasinStats(); got != want {
			t.Fatalf("%s: stats %+v, want %+v", label, got, want)
		}
	}
	check("initial (started in -well)", BasinStats{FinalBasin: -1})

	// Excursions inside the hysteresis band never count.
	for _, z := range []float64{0, 0.99 * thr, -0.99 * thr, 0.5 * thr} {
		h.observeBasin(0.1, z)
	}
	check("sub-threshold excursions", BasinStats{FinalBasin: -1})

	// Full crossing before the settle boundary: a transit, not settled.
	h.observeBasin(0.2, thr)
	check("early crossing to +well", BasinStats{Transits: 1, FinalBasin: 1})

	// Re-entering the band and returning to the same side is not a transit.
	h.observeBasin(0.3, 0.2*thr)
	h.observeBasin(0.4, thr)
	check("band re-entry, same side", BasinStats{Transits: 1, FinalBasin: 1})

	// Crossing after the settle boundary counts as settled.
	h.observeBasin(1.5, -thr)
	check("settled crossing to -well", BasinStats{Transits: 2, SettledTransits: 1, FinalBasin: -1})

	// Reset restarts the classifier from the configured initial basin and
	// clears the explicit settle boundary.
	h.Reset()
	check("after Reset", BasinStats{FinalBasin: -1})
}

// TestBasinObserverMonostableOff: a monostable device has a zero
// threshold, so the observer is inert no matter the excursion — the
// counting cost is a single compare on every accepted step.
func TestBasinObserverMonostableOff(t *testing.T) {
	h, err := Assemble(NoiseScenario(10, 55, 85, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	for _, z := range []float64{-1, -1e-3, 0, 1e-3, 1} {
		h.observeBasin(5, z)
	}
	if got := h.BasinStats(); got != (BasinStats{}) {
		t.Fatalf("monostable observer counted: %+v", got)
	}
}

// TestBasinSettleDefault pins the duration/3 fallback: an engine run
// without an explicit SetBasinSettle classifies transits against
// duration/3, and an explicit boundary overrides it.
func TestBasinSettleDefault(t *testing.T) {
	h, err := Assemble(BistableScenario(3, BistableWellM, BistableBarrierJ, 0, 0, 8, 40, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	h.defaultBasinSettle(3)
	thr := h.Cfg.Microgen.WellZ() / 2
	h.observeBasin(0.9, thr)  // before 3/3 = 1 s: unsettled
	h.observeBasin(1.1, -thr) // after: settled
	if got := h.BasinStats(); got != (BasinStats{Transits: 2, SettledTransits: 1, FinalBasin: -1}) {
		t.Fatalf("default settle boundary misclassified: %+v", got)
	}

	h.Reset()
	h.SetBasinSettle(0.5) // explicit boundary wins over the default
	h.defaultBasinSettle(3)
	h.observeBasin(0.9, thr)
	if got := h.BasinStats(); got != (BasinStats{Transits: 1, SettledTransits: 1, FinalBasin: 1}) {
		t.Fatalf("explicit settle boundary ignored: %+v", got)
	}
}

// TestBistableRunEnsembleMatchesSolo: a bistable seed ensemble marched
// through the lockstep path (AssembleEnsemble + RunEnsemble, shared SoA
// workspace and factorisations) reproduces each member's solo run bit
// for bit — voltage trace, energy bookkeeping and basin accounting.
// The implicit fallback (no lockstep mode, sequential members) is held
// to the same contract.
func TestBistableRunEnsembleMatchesSolo(t *testing.T) {
	const dur = 0.4
	seeds := []uint64{3, 5, 9}
	mk := func(seed uint64) Scenario {
		return BistableScenario(dur, BistableWellM, BistableBarrierJ, 120, -3.4e4, 8, 40, seed)
	}
	for _, kind := range []EngineKind{Proposed, ExistingTrap} {
		scs := make([]Scenario, len(seeds))
		for i, s := range seeds {
			scs[i] = mk(s)
		}
		hs, _, err := AssembleEnsemble(scs)
		if err != nil {
			t.Fatal(err)
		}
		engs := make([]Engine, len(hs))
		for i, h := range hs {
			engs[i] = h.NewEngine(kind, 1)
		}
		for i, err := range RunEnsemble(hs, engs, dur) {
			if err != nil {
				t.Fatalf("%v member %d: %v", kind, i, err)
			}
		}
		for i, seed := range seeds {
			solo, err := Assemble(mk(seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := solo.RunEngine(solo.NewEngine(kind, 1), dur); err != nil {
				t.Fatal(err)
			}
			ens := hs[i]
			if len(ens.VcTrace.Vals) != len(solo.VcTrace.Vals) {
				t.Fatalf("%v seed %d: trace lengths %d vs %d",
					kind, seed, len(ens.VcTrace.Vals), len(solo.VcTrace.Vals))
			}
			for j := range solo.VcTrace.Vals {
				if ens.VcTrace.Vals[j] != solo.VcTrace.Vals[j] {
					t.Fatalf("%v seed %d: Vc diverges at sample %d: %g vs %g",
						kind, seed, j, ens.VcTrace.Vals[j], solo.VcTrace.Vals[j])
				}
			}
			if ens.Energy != solo.Energy {
				t.Errorf("%v seed %d: energy bookkeeping differs:\n%+v\nvs\n%+v",
					kind, seed, ens.Energy, solo.Energy)
			}
			if ens.BasinStats() != solo.BasinStats() {
				t.Errorf("%v seed %d: basin stats %+v != solo %+v",
					kind, seed, ens.BasinStats(), solo.BasinStats())
			}
			solo.Release()
			ens.Release()
		}
	}
}

// TestWarmStepZeroAllocsBistable extends the zero-alloc pin to the
// double-well workload: piecewise re-tangents that survive inter-well
// jumps, the displacement-dependent coupling restamp and the basin
// observer must all stay on the allocation-free hot path.
func TestWarmStepZeroAllocsBistable(t *testing.T) {
	sc := BistableScenario(1000, BistableWellM, BistableBarrierJ, 120, -3.4e4, 8, 40, 42)
	sc.Cfg.VibNoise.RMS = 3 // forced-jump regime: constant basin traffic
	h, err := Assemble(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*trace.Series{h.VcTrace, h.PMultIn, h.PStoreTrace, h.FresTrace} {
		s.Reserve(1 << 16)
	}
	h.SetBasinSettle(0) // every transit settled: observer fully active
	eng, ok := h.NewEngine(Proposed, 1).(*core.Engine)
	if !ok {
		t.Fatal("proposed engine is not a core.Engine")
	}
	if err := eng.Begin(0, sc.Duration); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	refreshesBefore := eng.Stats.Refreshes
	transitsBefore := h.BasinStats().Transits
	stepErr := error(nil)
	avg := testing.AllocsPerRun(500, func() {
		if _, err := eng.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if avg != 0 {
		t.Fatalf("warm bistable step allocates %.3f objects/step, want 0", avg)
	}
	if eng.Stats.Refreshes == refreshesBefore {
		t.Fatal("test premise broken: no re-tangents during the measured steps")
	}
	if h.BasinStats().Transits == transitsBefore {
		t.Fatal("test premise broken: no inter-well transits during the measured steps")
	}
}
