// Package trace records, post-processes and compares simulation
// waveforms: time series with decimation, windowed RMS measurement
// (used for the microgenerator output-power figures), CSV export, crude
// ASCII rendering for terminal inspection, and the comparison metrics
// (RMSE/NRMSE/peak deviation) used to quantify simulation-vs-measurement
// correlation in the paper's Figs. 8(b) and 9.
package trace

import (
	"fmt"
	"math"
	"sort"
)

// Series is a sampled waveform: strictly increasing times with values.
type Series struct {
	Name  string
	Times []float64
	Vals  []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Append adds a sample. Times must be non-decreasing; samples at a
// duplicate time overwrite the previous value (events may legitimately
// re-sample at an event instant).
func (s *Series) Append(t, v float64) {
	if n := len(s.Times); n > 0 {
		last := s.Times[n-1]
		if t < last {
			panic(fmt.Sprintf("trace: non-monotonic time %g after %g in %q", t, last, s.Name))
		}
		if t == last {
			s.Vals[n-1] = v
			return
		}
	}
	s.Times = append(s.Times, t)
	s.Vals = append(s.Vals, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Times) }

// Reserve grows the series' backing arrays to hold at least n samples,
// so a recording run appends without reallocating — the grow-once
// protocol the allocation-free engine loop relies on.
func (s *Series) Reserve(n int) {
	if cap(s.Times) >= n {
		return
	}
	times := make([]float64, len(s.Times), n)
	vals := make([]float64, len(s.Vals), n)
	copy(times, s.Times)
	copy(vals, s.Vals)
	s.Times, s.Vals = times, vals
}

// Clear empties the series in place, keeping the backing arrays: a
// cleared series records a rerun of the same length without allocating.
func (s *Series) Clear() {
	s.Times = s.Times[:0]
	s.Vals = s.Vals[:0]
}

// At interpolates the series linearly at time t, clamping to the end
// values outside the sampled range.
func (s *Series) At(t float64) float64 {
	n := len(s.Times)
	if n == 0 {
		return math.NaN()
	}
	if t <= s.Times[0] {
		return s.Vals[0]
	}
	if t >= s.Times[n-1] {
		return s.Vals[n-1]
	}
	// Binary search for the bracketing interval.
	k := sort.SearchFloat64s(s.Times, t)
	// s.Times[k-1] < t <= s.Times[k]
	t0, t1 := s.Times[k-1], s.Times[k]
	v0, v1 := s.Vals[k-1], s.Vals[k]
	if t1 == t0 {
		return v1
	}
	w := (t - t0) / (t1 - t0)
	return v0 + w*(v1-v0)
}

// Last returns the final sample, or NaNs when empty.
func (s *Series) Last() (t, v float64) {
	n := len(s.Times)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	return s.Times[n-1], s.Vals[n-1]
}

// MinMax returns the extrema of the values; NaNs when empty.
func (s *Series) MinMax() (lo, hi float64) {
	if len(s.Vals) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range s.Vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Slice returns a copy restricted to t in [t0, t1].
func (s *Series) Slice(t0, t1 float64) *Series {
	out := NewSeries(s.Name)
	for i, t := range s.Times {
		if t >= t0 && t <= t1 {
			out.Times = append(out.Times, t)
			out.Vals = append(out.Vals, s.Vals[i])
		}
	}
	return out
}

// Resample returns the series sampled at n uniform points across its
// span (linear interpolation).
func (s *Series) Resample(n int) *Series {
	out := NewSeries(s.Name)
	if s.Len() == 0 || n < 2 {
		return out
	}
	t0 := s.Times[0]
	t1 := s.Times[len(s.Times)-1]
	for i := 0; i < n; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(n-1)
		out.Append(t, s.At(t))
	}
	return out
}

// RMS returns the root-mean-square of the waveform over its full span
// computed with trapezoidal weighting (robust to non-uniform sampling).
func (s *Series) RMS() float64 {
	n := len(s.Times)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return math.Abs(s.Vals[0])
	}
	var acc, span float64
	for i := 1; i < n; i++ {
		dt := s.Times[i] - s.Times[i-1]
		a, b := s.Vals[i-1], s.Vals[i]
		acc += dt * (a*a + b*b) / 2
		span += dt
	}
	if span == 0 {
		return math.Abs(s.Vals[0])
	}
	return math.Sqrt(acc / span)
}

// Mean returns the trapezoidal time-average of the waveform.
func (s *Series) Mean() float64 {
	n := len(s.Times)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return s.Vals[0]
	}
	var acc, span float64
	for i := 1; i < n; i++ {
		dt := s.Times[i] - s.Times[i-1]
		acc += dt * (s.Vals[i-1] + s.Vals[i]) / 2
		span += dt
	}
	if span == 0 {
		return s.Vals[0]
	}
	return acc / span
}

// WindowedRMS returns a new series whose value at each window centre is
// the RMS of s over [t-window/2, t+window/2], sampled every stride. This
// is how the paper's Fig. 8(a) "output power" envelope is produced from
// the instantaneous p(t) = Vm*Im waveform.
func (s *Series) WindowedRMS(window, stride float64) *Series {
	out := NewSeries(s.Name + ".rms")
	if s.Len() < 2 || window <= 0 || stride <= 0 {
		return out
	}
	t0 := s.Times[0]
	t1 := s.Times[len(s.Times)-1]
	for c := t0 + window/2; c+window/2 <= t1+1e-12; c += stride {
		w := s.Slice(c-window/2, c+window/2)
		if w.Len() >= 2 {
			out.Append(c, w.RMS())
		}
	}
	return out
}

// WindowedMean returns a new series whose value at each window centre
// is the time-average of s over [t-window/2, t+window/2], sampled every
// stride — the envelope used for power waveforms, where the mean of the
// instantaneous p(t) is the figure the paper reports as "RMS power"
// (RMS voltage times RMS current for in-phase waveforms).
func (s *Series) WindowedMean(window, stride float64) *Series {
	out := NewSeries(s.Name + ".mean")
	if s.Len() < 2 || window <= 0 || stride <= 0 {
		return out
	}
	t0 := s.Times[0]
	t1 := s.Times[len(s.Times)-1]
	for c := t0 + window/2; c+window/2 <= t1+1e-12; c += stride {
		w := s.Slice(c-window/2, c+window/2)
		if w.Len() >= 2 {
			out.Append(c, w.Mean())
		}
	}
	return out
}

// Decimator keeps every keepEvery-th Append; use it to bound memory when
// recording multi-hour simulations with microsecond steps.
type Decimator struct {
	S         *Series
	KeepEvery int
	count     int
}

// NewDecimator wraps s keeping one sample in keepEvery.
func NewDecimator(s *Series, keepEvery int) *Decimator {
	if keepEvery < 1 {
		keepEvery = 1
	}
	return &Decimator{S: s, KeepEvery: keepEvery}
}

// Append forwards every keepEvery-th sample to the underlying series.
func (d *Decimator) Append(t, v float64) {
	if d.count%d.KeepEvery == 0 {
		d.S.Append(t, v)
	}
	d.count++
}
