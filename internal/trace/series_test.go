package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sine(name string, f, amp, dur, dt float64) *Series {
	s := NewSeries(name)
	for t := 0.0; t <= dur; t += dt {
		s.Append(t, amp*math.Sin(2*math.Pi*f*t))
	}
	return s
}

func TestAppendAndLen(t *testing.T) {
	s := NewSeries("x")
	s.Append(0, 1)
	s.Append(1, 2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Duplicate time overwrites.
	s.Append(1, 5)
	if s.Len() != 2 || s.Vals[1] != 5 {
		t.Fatalf("duplicate-time overwrite failed: %v", s.Vals)
	}
}

func TestAppendNonMonotonicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	s := NewSeries("x")
	s.Append(1, 0)
	s.Append(0.5, 0)
}

func TestAtInterpolation(t *testing.T) {
	s := NewSeries("x")
	s.Append(0, 0)
	s.Append(2, 4)
	if got := s.At(1); math.Abs(got-2) > 1e-15 {
		t.Fatalf("At(1) = %v", got)
	}
	if got := s.At(-1); got != 0 {
		t.Fatalf("clamp low = %v", got)
	}
	if got := s.At(5); got != 4 {
		t.Fatalf("clamp high = %v", got)
	}
	if !math.IsNaN(NewSeries("e").At(0)) {
		t.Fatalf("empty At should be NaN")
	}
}

func TestLastMinMax(t *testing.T) {
	s := NewSeries("x")
	s.Append(0, -3)
	s.Append(1, 7)
	s.Append(2, 2)
	tm, v := s.Last()
	if tm != 2 || v != 2 {
		t.Fatalf("Last = %v %v", tm, v)
	}
	lo, hi := s.MinMax()
	if lo != -3 || hi != 7 {
		t.Fatalf("MinMax = %v %v", lo, hi)
	}
}

func TestSliceAndResample(t *testing.T) {
	s := sine("sin", 1, 1, 2, 0.01)
	sl := s.Slice(0.5, 1.5)
	if sl.Times[0] < 0.5 || sl.Times[len(sl.Times)-1] > 1.5 {
		t.Fatalf("Slice bounds wrong")
	}
	rs := s.Resample(11)
	if rs.Len() != 11 {
		t.Fatalf("Resample len = %d", rs.Len())
	}
	if math.Abs(rs.Times[10]-2.0) > 0.011 {
		t.Fatalf("Resample end = %v", rs.Times[10])
	}
}

func TestRMSSine(t *testing.T) {
	// RMS of a sine over whole periods is amp/sqrt(2).
	s := sine("sin", 5, 2, 1.0, 1e-4)
	want := 2 / math.Sqrt2
	if got := s.RMS(); math.Abs(got-want) > 1e-3 {
		t.Fatalf("RMS = %v, want %v", got, want)
	}
}

func TestMeanConstantAndLinear(t *testing.T) {
	s := NewSeries("c")
	s.Append(0, 3)
	s.Append(10, 3)
	if got := s.Mean(); math.Abs(got-3) > 1e-15 {
		t.Fatalf("Mean const = %v", got)
	}
	l := NewSeries("l")
	l.Append(0, 0)
	l.Append(1, 1)
	if got := l.Mean(); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("Mean ramp = %v", got)
	}
}

func TestWindowedRMSTracksAmplitudeStep(t *testing.T) {
	// Sine with amplitude 1 for t<1 and 2 for t>=1: windowed RMS should
	// move from ~0.707 to ~1.414.
	s := NewSeries("p")
	for t := 0.0; t < 2; t += 1e-4 {
		amp := 1.0
		if t >= 1 {
			amp = 2
		}
		s.Append(t, amp*math.Sin(2*math.Pi*50*t))
	}
	rms := s.WindowedRMS(0.1, 0.05)
	if rms.Len() == 0 {
		t.Fatalf("no RMS windows")
	}
	early := rms.At(0.3)
	late := rms.At(1.7)
	if math.Abs(early-1/math.Sqrt2) > 0.02 {
		t.Fatalf("early RMS = %v", early)
	}
	if math.Abs(late-2/math.Sqrt2) > 0.04 {
		t.Fatalf("late RMS = %v", late)
	}
}

func TestPropertyRMSBoundedByPeak(t *testing.T) {
	// Property: RMS <= max|v| for any waveform.
	f := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		s := NewSeries("q")
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// bound magnitudes to avoid overflow in squares
			if math.Abs(v) > 1e100 {
				return true
			}
			s.Append(float64(i), v)
		}
		var peak float64
		for _, v := range vals {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		return s.RMS() <= peak+1e-9*(1+peak)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestDecimator(t *testing.T) {
	s := NewSeries("d")
	d := NewDecimator(s, 10)
	for i := 0; i < 100; i++ {
		d.Append(float64(i), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("decimated Len = %d, want 10", s.Len())
	}
	if s.Times[1] != 10 {
		t.Fatalf("second kept sample at t=%v, want 10", s.Times[1])
	}
	// keepEvery < 1 clamps to 1.
	s2 := NewSeries("d2")
	d2 := NewDecimator(s2, 0)
	d2.Append(0, 1)
	d2.Append(1, 2)
	if s2.Len() != 2 {
		t.Fatalf("clamped decimator dropped samples")
	}
}

func TestCompareIdenticalAndShifted(t *testing.T) {
	a := sine("a", 2, 1, 3, 1e-3)
	same := Compare(a, a, 500)
	if same.RMSE > 1e-12 || same.MaxAbs > 1e-12 {
		t.Fatalf("self comparison should be ~0: %+v", same)
	}
	b := NewSeries("b")
	for i, tm := range a.Times {
		b.Append(tm, a.Vals[i]+0.1)
	}
	off := Compare(b, a, 500)
	if math.Abs(off.RMSE-0.1) > 1e-6 || math.Abs(off.MaxAbs-0.1) > 1e-6 {
		t.Fatalf("offset comparison: %+v", off)
	}
	// NRMSE normalised by ref peak-to-peak = 2.
	if math.Abs(off.NRMSE-0.05) > 1e-6 {
		t.Fatalf("NRMSE = %v, want 0.05", off.NRMSE)
	}
}

func TestCompareDegenerate(t *testing.T) {
	empty := NewSeries("e")
	c := Compare(empty, empty, 100)
	if !math.IsNaN(c.RMSE) {
		t.Fatalf("empty comparison should be NaN")
	}
	// Non-overlapping spans.
	a := NewSeries("a")
	a.Append(0, 1)
	a.Append(1, 1)
	b := NewSeries("b")
	b.Append(5, 1)
	b.Append(6, 1)
	if c := Compare(a, b, 10); !math.IsNaN(c.RMSE) {
		t.Fatalf("disjoint comparison should be NaN")
	}
}

func TestWriteCSV(t *testing.T) {
	a := NewSeries("va")
	a.Append(0, 1)
	a.Append(1, 2)
	b := NewSeries("vb")
	b.Append(0, 5)
	b.Append(1, 6)
	var sb strings.Builder
	rows, err := WriteCSV(&sb, a, b)
	if err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if rows != 2 {
		t.Fatalf("rows = %d", rows)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "t,va,vb\n") {
		t.Fatalf("header wrong: %q", out)
	}
	if !strings.Contains(out, "1,2,6") {
		t.Fatalf("row content wrong: %q", out)
	}
	if _, err := WriteCSV(&sb); err == nil {
		t.Fatalf("no series should error")
	}
}

func TestASCIIPlot(t *testing.T) {
	s := sine("w", 1, 1, 1, 0.001)
	p := ASCIIPlot(s, 40, 10)
	if !strings.Contains(p, "*") || !strings.Contains(p, "w") {
		t.Fatalf("plot looks empty:\n%s", p)
	}
	if got := ASCIIPlot(NewSeries("e"), 40, 10); got != "(insufficient data)" {
		t.Fatalf("empty plot = %q", got)
	}
}
