package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Comparison quantifies the agreement of two waveforms on a common
// uniform grid across the overlap of their spans.
type Comparison struct {
	N       int     // number of comparison points
	RMSE    float64 // root mean square error
	NRMSE   float64 // RMSE normalised by the reference peak-to-peak range
	MaxAbs  float64 // maximum absolute deviation
	AtMax   float64 // time of the maximum deviation
	RefSpan float64 // reference peak-to-peak range used for NRMSE
}

// Compare evaluates a against ref at n uniform points over the overlap of
// their time spans.
func Compare(a, ref *Series, n int) Comparison {
	var c Comparison
	if a.Len() == 0 || ref.Len() == 0 || n < 2 {
		c.RMSE, c.NRMSE, c.MaxAbs = math.NaN(), math.NaN(), math.NaN()
		return c
	}
	t0 := math.Max(a.Times[0], ref.Times[0])
	t1 := math.Min(a.Times[len(a.Times)-1], ref.Times[len(ref.Times)-1])
	if !(t1 > t0) {
		c.RMSE, c.NRMSE, c.MaxAbs = math.NaN(), math.NaN(), math.NaN()
		return c
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var sum float64
	for i := 0; i < n; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(n-1)
		va := a.At(t)
		vr := ref.At(t)
		d := va - vr
		sum += d * d
		if ad := math.Abs(d); ad > c.MaxAbs {
			c.MaxAbs = ad
			c.AtMax = t
		}
		if vr < lo {
			lo = vr
		}
		if vr > hi {
			hi = vr
		}
	}
	c.N = n
	c.RMSE = math.Sqrt(sum / float64(n))
	c.RefSpan = hi - lo
	if c.RefSpan > 0 {
		c.NRMSE = c.RMSE / c.RefSpan
	} else {
		c.NRMSE = math.NaN()
	}
	return c
}

// WriteCSV writes one or more series sharing a header row to w. Series
// are resampled onto the union grid of the first series; a column per
// series. Returns the number of rows written.
func WriteCSV(w io.Writer, series ...*Series) (int, error) {
	if len(series) == 0 {
		return 0, fmt.Errorf("trace: no series to write")
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, "t")
	for _, s := range series {
		name := s.Name
		if name == "" {
			name = "v"
		}
		header = append(header, name)
	}
	if err := cw.Write(header); err != nil {
		return 0, err
	}
	base := series[0]
	row := make([]string, len(series)+1)
	rows := 0
	for i, t := range base.Times {
		row[0] = strconv.FormatFloat(t, 'g', 10, 64)
		row[1] = strconv.FormatFloat(base.Vals[i], 'g', 10, 64)
		for k := 1; k < len(series); k++ {
			row[k+1] = strconv.FormatFloat(series[k].At(t), 'g', 10, 64)
		}
		if err := cw.Write(row); err != nil {
			return rows, err
		}
		rows++
	}
	cw.Flush()
	return rows, cw.Error()
}

// ASCIIPlot renders the series as a rough width x height character plot
// for terminal inspection of waveform shape.
func ASCIIPlot(s *Series, width, height int) string {
	if s.Len() < 2 || width < 8 || height < 3 {
		return "(insufficient data)"
	}
	lo, hi := s.MinMax()
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	t0 := s.Times[0]
	t1 := s.Times[len(s.Times)-1]
	for c := 0; c < width; c++ {
		t := t0 + (t1-t0)*float64(c)/float64(width-1)
		v := s.At(t)
		r := int((hi - v) / (hi - lo) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		grid[r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.4g, %.4g] over t=[%.4g, %.4g]\n", s.Name, lo, hi, t0, t1)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
