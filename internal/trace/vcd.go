package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteVCD exports one or more series as a Value Change Dump file with
// real-valued variables, viewable in GTKWave and other EDA waveform
// browsers. Time is quantised to the given timescale (e.g. 1e-6 for
// microseconds); samples from all series are merged into one ordered
// change stream.
func WriteVCD(w io.Writer, timescale float64, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("trace: no series to write")
	}
	if timescale <= 0 {
		return fmt.Errorf("trace: invalid timescale %g", timescale)
	}
	unit, per := vcdUnit(timescale)

	var b strings.Builder
	b.WriteString("$date harvsim export $end\n")
	b.WriteString("$version harvsim trace writer $end\n")
	fmt.Fprintf(&b, "$timescale %d %s $end\n", per, unit)
	b.WriteString("$scope module harvester $end\n")
	ids := make([]string, len(series))
	for i, s := range series {
		ids[i] = vcdID(i)
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("sig%d", i)
		}
		name = strings.Map(func(r rune) rune {
			switch r {
			case ' ', '\t', '\n':
				return '_'
			}
			return r
		}, name)
		fmt.Fprintf(&b, "$var real 64 %s %s $end\n", ids[i], name)
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}

	// Merge all change points in time order.
	type change struct {
		tick int64
		sig  int
		val  float64
	}
	var changes []change
	for i, s := range series {
		for k, t := range s.Times {
			changes = append(changes, change{
				tick: int64(math.Round(t / timescale)),
				sig:  i,
				val:  s.Vals[k],
			})
		}
	}
	sort.SliceStable(changes, func(a, b int) bool { return changes[a].tick < changes[b].tick })

	lastTick := int64(-1)
	last := make([]float64, len(series))
	seen := make([]bool, len(series))
	var out strings.Builder
	for _, c := range changes {
		if seen[c.sig] && last[c.sig] == c.val {
			continue
		}
		if c.tick != lastTick {
			fmt.Fprintf(&out, "#%d\n", c.tick)
			lastTick = c.tick
		}
		fmt.Fprintf(&out, "r%g %s\n", c.val, ids[c.sig])
		last[c.sig] = c.val
		seen[c.sig] = true
		if out.Len() > 1<<16 {
			if _, err := io.WriteString(w, out.String()); err != nil {
				return err
			}
			out.Reset()
		}
	}
	_, err := io.WriteString(w, out.String())
	return err
}

// vcdID generates the short identifier code for variable i.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return fmt.Sprintf("%c%c", alphabet[i%len(alphabet)], alphabet[i/len(alphabet)])
}

// vcdUnit picks the closest standard VCD timescale unit at or below the
// requested scale.
func vcdUnit(ts float64) (unit string, per int) {
	type u struct {
		name string
		s    float64
	}
	units := []u{{"s", 1}, {"ms", 1e-3}, {"us", 1e-6}, {"ns", 1e-9}, {"ps", 1e-12}, {"fs", 1e-15}}
	for _, cand := range units {
		for _, mult := range []int{100, 10, 1} {
			if ts >= cand.s*float64(mult) {
				return cand.name, mult
			}
		}
	}
	return "fs", 1
}
