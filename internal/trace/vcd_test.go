package trace

import (
	"strings"
	"testing"
)

func TestWriteVCDBasic(t *testing.T) {
	a := NewSeries("Vc")
	a.Append(0, 1.0)
	a.Append(1e-3, 1.5)
	a.Append(2e-3, 1.5) // unchanged: must be suppressed
	a.Append(3e-3, 2.0)
	b := NewSeries("P mult")
	b.Append(0, 0)
	b.Append(2e-3, 5e-6)

	var sb strings.Builder
	if err := WriteVCD(&sb, 1e-6, a, b); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1 us $end",
		"$var real 64 ! Vc $end",
		"$var real 64 \" P_mult $end", // space sanitised
		"#0", "#1000", "#3000",
		"r1 !", "r1.5 !", "r2 !",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The unchanged sample at #2000 for Vc must not emit a change.
	if strings.Count(out, "r1.5 !") != 1 {
		t.Fatalf("duplicate value emitted:\n%s", out)
	}
}

func TestWriteVCDValidation(t *testing.T) {
	var sb strings.Builder
	if err := WriteVCD(&sb, 1e-6); err == nil {
		t.Fatalf("no series should error")
	}
	s := NewSeries("x")
	s.Append(0, 1)
	if err := WriteVCD(&sb, 0, s); err == nil {
		t.Fatalf("zero timescale should error")
	}
}

func TestVCDUnitSelection(t *testing.T) {
	cases := []struct {
		ts   float64
		unit string
		per  int
	}{
		{1, "s", 1},
		{1e-3, "ms", 1},
		{1e-5, "us", 10},
		{1e-6, "us", 1},
		{2.5e-9, "ns", 1},
	}
	for _, c := range cases {
		unit, per := vcdUnit(c.ts)
		if unit != c.unit || per != c.per {
			t.Fatalf("vcdUnit(%g) = %d %s, want %d %s", c.ts, per, unit, c.per, c.unit)
		}
	}
}

func TestVCDIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}
