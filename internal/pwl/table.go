// Package pwl implements the piecewise-linear tabular device models of the
// paper (Section III-B). A nonlinear branch equation i = f(v) is sampled
// once, offline, into segments; during simulation each lookup returns the
// local companion pair (G, J) such that i ≈ G·v + J on the segment
// containing v. Because the explicit integration algorithm marches forward
// in time, the Jacobian values can be retrieved from the table in O(1)
// without evaluating the underlying physical equations, and — as the paper
// notes — the granularity of the table can be made arbitrarily fine
// without affecting simulation speed.
package pwl

import (
	"fmt"
	"math"
)

// Segment is one linear piece i = G·v + J valid on [V0, V1).
type Segment struct {
	V0, V1 float64
	G, J   float64
}

// Table is a uniform-grid piecewise-linear model of a scalar function.
// Uniform spacing makes the segment lookup a single multiply (O(1)),
// which is what makes table granularity free at simulation time.
type Table struct {
	vmin, vmax float64
	inv        float64 // 1/dv
	segs       []Segment
	// Slopes used outside the sampled window; linear extrapolation keeps
	// the simulated system passive rather than clamping current flat.
	loG, loJ float64
	hiG, hiJ float64
}

// Build samples f on [vmin, vmax] with n segments (n >= 1) and returns the
// table. f must be finite on the interval.
func Build(f func(v float64) float64, vmin, vmax float64, n int) (*Table, error) {
	if n < 1 {
		return nil, fmt.Errorf("pwl: need at least 1 segment, got %d", n)
	}
	if !(vmax > vmin) {
		return nil, fmt.Errorf("pwl: invalid interval [%g, %g]", vmin, vmax)
	}
	dv := (vmax - vmin) / float64(n)
	t := &Table{vmin: vmin, vmax: vmax, inv: 1 / dv, segs: make([]Segment, n)}
	prev := f(vmin)
	if math.IsNaN(prev) || math.IsInf(prev, 0) {
		return nil, fmt.Errorf("pwl: f(%g) is not finite", vmin)
	}
	v0 := vmin
	for k := 0; k < n; k++ {
		v1 := vmin + float64(k+1)*dv
		if k == n-1 {
			v1 = vmax // avoid accumulation error at the top edge
		}
		y1 := f(v1)
		if math.IsNaN(y1) || math.IsInf(y1, 0) {
			return nil, fmt.Errorf("pwl: f(%g) is not finite", v1)
		}
		g := (y1 - prev) / (v1 - v0)
		j := prev - g*v0
		t.segs[k] = Segment{V0: v0, V1: v1, G: g, J: j}
		prev = y1
		v0 = v1
	}
	first, last := t.segs[0], t.segs[n-1]
	t.loG, t.loJ = first.G, first.J
	t.hiG, t.hiJ = last.G, last.J
	return t, nil
}

// MustBuild is Build that panics on error; for package-level tables with
// constant arguments.
func MustBuild(f func(v float64) float64, vmin, vmax float64, n int) *Table {
	t, err := Build(f, vmin, vmax, n)
	if err != nil {
		panic(err)
	}
	return t
}

// NumSegments returns the table granularity.
func (t *Table) NumSegments() int { return len(t.segs) }

// Domain returns the sampled interval.
func (t *Table) Domain() (vmin, vmax float64) { return t.vmin, t.vmax }

// SegmentIndex returns the index of the segment containing v, with values
// outside the domain mapped to -1 (below) or NumSegments() (above). The
// index identity is what the linearised state-space engine uses to decide
// whether the Jacobian entries changed between time points (LLE control).
func (t *Table) SegmentIndex(v float64) int {
	if math.IsNaN(v) {
		return -1 // degenerate input: treat as off-table low
	}
	if v < t.vmin {
		return -1
	}
	if v >= t.vmax {
		return len(t.segs)
	}
	k := int((v - t.vmin) * t.inv)
	// Guard against floating-point edge effects at segment boundaries.
	if k >= len(t.segs) {
		k = len(t.segs) - 1
	}
	if k > 0 && v < t.segs[k].V0 {
		k--
	} else if v >= t.segs[k].V1 && k < len(t.segs)-1 {
		k++
	}
	return k
}

// Lookup returns the companion pair (G, J) for operating point v, i.e.
// f(v) ≈ G·v + J locally.
func (t *Table) Lookup(v float64) (g, j float64) {
	k := t.SegmentIndex(v)
	switch {
	case k < 0:
		return t.loG, t.loJ
	case k >= len(t.segs):
		return t.hiG, t.hiJ
	default:
		s := &t.segs[k]
		return s.G, s.J
	}
}

// Eval returns the PWL approximation of f at v.
func (t *Table) Eval(v float64) float64 {
	g, j := t.Lookup(v)
	return g*v + j
}

// MaxAbsError returns the maximum absolute deviation between the table and
// f measured on a grid of probes-per-segment points. Used in tests and in
// the granularity ablation.
func (t *Table) MaxAbsError(f func(v float64) float64, probesPerSegment int) float64 {
	if probesPerSegment < 1 {
		probesPerSegment = 1
	}
	var worst float64
	for _, s := range t.segs {
		for p := 0; p <= probesPerSegment; p++ {
			v := s.V0 + (s.V1-s.V0)*float64(p)/float64(probesPerSegment)
			if e := math.Abs(t.Eval(v) - f(v)); e > worst {
				worst = e
			}
		}
	}
	return worst
}
