package pwl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiodeCurrentReverseAndForward(t *testing.T) {
	d := DefaultDiode(1024)
	// Deep reverse bias: current saturates near -Is.
	if i := d.Current(-5); math.Abs(i+d.Is) > 0.05*d.Is {
		t.Fatalf("reverse current = %v, want ~%v", i, -d.Is)
	}
	// Zero bias: zero current.
	if i := d.Current(0); math.Abs(i) > 1e-15 {
		t.Fatalf("zero-bias current = %v", i)
	}
	// Strong forward bias: current approaches (Vd - Von)/Rs and must stay
	// below Vd/Rs.
	i := d.Current(1.0)
	if i <= 0 || i >= 1.0/d.Rs {
		t.Fatalf("forward current = %v, want in (0, %v)", i, 1.0/d.Rs)
	}
}

func TestDiodeCurrentMonotonic(t *testing.T) {
	d := DefaultDiode(256)
	prev := math.Inf(-1)
	for v := -10.0; v <= 1.5; v += 0.01 {
		i := d.Current(v)
		if i < prev-1e-18 {
			t.Fatalf("current not monotonic at v=%v: %v < %v", v, i, prev)
		}
		prev = i
	}
}

func TestDiodeSeriesResistanceConsistency(t *testing.T) {
	// The implicit solve must satisfy Id = Is*(exp((Vd-Id*Rs)/NVt)-1).
	d := DefaultDiode(64)
	for _, v := range []float64{-2, -0.1, 0.05, 0.2, 0.4, 0.8, 1.2} {
		i := d.Current(v)
		rhs := d.Is * (math.Exp((v-i*d.Rs)/d.NVt) - 1)
		if math.Abs(i-rhs) > 1e-9*(1+math.Abs(i)) {
			t.Fatalf("implicit equation violated at v=%v: i=%v rhs=%v", v, i, rhs)
		}
	}
}

func TestDiodeConductancePositiveAndBounded(t *testing.T) {
	d := DefaultDiode(64)
	for v := -5.0; v <= 1.5; v += 0.05 {
		g := d.Conductance(v)
		if g < 0 {
			t.Fatalf("negative conductance at v=%v: %v", v, g)
		}
		if g > 1/d.Rs+1e-9 {
			t.Fatalf("conductance exceeds series-resistance limit at v=%v: %v > %v", v, g, 1/d.Rs)
		}
	}
}

func TestDiodeConductanceMatchesFiniteDifference(t *testing.T) {
	d := DefaultDiode(64)
	h := 1e-6
	for _, v := range []float64{-1, 0, 0.2, 0.35, 0.6} {
		fd := (d.Current(v+h) - d.Current(v-h)) / (2 * h)
		an := d.Conductance(v)
		if math.Abs(fd-an) > 1e-4*(1+math.Abs(an)) {
			t.Fatalf("conductance mismatch at v=%v: analytic %v, fd %v", v, an, fd)
		}
	}
}

func TestDiodeCompanionApproximatesCurrent(t *testing.T) {
	d := DefaultDiode(4096)
	for _, v := range []float64{-8, -1, 0, 0.1, 0.3, 0.5, 1.0} {
		g, j, _ := d.Companion(v)
		approx := g*v + j
		exact := d.Current(v)
		// Absolute tolerance scaled to the on-current magnitude.
		if math.Abs(approx-exact) > 1e-4 {
			t.Fatalf("companion at v=%v: %v vs exact %v", v, approx, exact)
		}
	}
}

func TestDiodeCompanionSegmentChanges(t *testing.T) {
	d := DefaultDiode(512)
	_, _, s1 := d.Companion(0.10)
	_, _, s2 := d.Companion(0.50)
	if s1 == s2 {
		t.Fatalf("distant operating points should hit different segments")
	}
	_, _, s3 := d.Companion(0.10 + 1e-9)
	if s1 != s3 {
		t.Fatalf("nearby operating points should share a segment")
	}
}

func TestDiodePropertyCompanionPassive(t *testing.T) {
	// Property: every companion has G >= 0 (passivity of the linearised
	// device — required by the paper's stability argument).
	d := DefaultDiode(2048)
	f := func(vRaw int16) bool {
		v := float64(vRaw) / 1000.0 // [-32.8, 32.8] V, covers extrapolation
		g, _, _ := d.Companion(v)
		return g >= -1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestDiodeNoSeriesResistance(t *testing.T) {
	d := &Diode{Is: 1e-9, NVt: 26e-3}
	d.BuildTable(128)
	v := 0.3
	want := d.Is * (math.Exp(v/d.NVt) - 1)
	if got := d.Current(v); math.Abs(got-want) > 1e-12*(1+want) {
		t.Fatalf("Rs=0 current = %v, want %v", got, want)
	}
	wantG := d.Is * math.Exp(v/d.NVt) / d.NVt
	if got := d.Conductance(v); math.Abs(got-wantG) > 1e-9*(1+wantG) {
		t.Fatalf("Rs=0 conductance = %v, want %v", got, wantG)
	}
}

func TestBuildTableMinimumSegments(t *testing.T) {
	d := &Diode{Is: 1e-9, NVt: 26e-3, Rs: 10}
	d.BuildTable(0)
	if d.Table().NumSegments() < 2 {
		t.Fatalf("BuildTable should clamp to >= 2 segments")
	}
}
