package pwl

import "math"

// Diode is the piecewise-linear companion model of a junction diode used
// by the Dickson voltage multiplier block (paper Fig. 5(b)). The
// underlying physical model is the Shockley equation
//
//	Id = Is·(exp(Vd/(n·Vt)) − 1)
//
// moderated by a series resistance Rs that bounds the on-conductance (a
// physical effect of the contact/bulk resistance that also keeps the
// companion conductance — and with it the smallest time constant seen by
// the explicit integrator — bounded).
type Diode struct {
	Is  float64 // saturation current [A]
	NVt float64 // emission coefficient times thermal voltage [V]
	Rs  float64 // series resistance [Ohm]; > 0

	table *Table
}

// DefaultDiode returns the parameters used by the harvester's multiplier:
// a small-signal Schottky-like diode suited to µW-level rectification.
func DefaultDiode(segments int) *Diode {
	d := &Diode{Is: 25e-9, NVt: 38.7e-3, Rs: 25}
	d.BuildTable(segments)
	return d
}

// Current evaluates the exact (non-tabulated) diode current for terminal
// voltage vd, solving the implicit series-resistance equation
// Id = Is·(exp((Vd − Id·Rs)/NVt) − 1) by a few Newton steps. This is the
// model the Newton-Raphson baseline engines evaluate directly.
func (d *Diode) Current(vd float64) float64 {
	if d.Rs <= 0 {
		return d.Is * (math.Exp(vd/d.NVt) - 1)
	}
	// Newton on g(i) = Is*(exp((vd - i*Rs)/NVt) - 1) - i.
	// Start from the resistor-limited estimate for forward bias, the raw
	// exponential for reverse.
	var i float64
	if vd > 0 {
		i = vd / (d.Rs + d.NVt/d.Is)
	}
	for iter := 0; iter < 60; iter++ {
		e := math.Exp((vd - i*d.Rs) / d.NVt)
		g := d.Is*(e-1) - i
		dg := -d.Is*e*d.Rs/d.NVt - 1
		di := g / dg
		i -= di
		if math.Abs(di) <= 1e-15*(1+math.Abs(i)) {
			break
		}
	}
	return i
}

// Conductance evaluates the exact differential conductance dId/dVd at vd
// by implicit differentiation of the series-resistance equation.
func (d *Diode) Conductance(vd float64) float64 {
	i := d.Current(vd)
	gj := d.Is * math.Exp((vd-i*d.Rs)/d.NVt) / d.NVt // junction conductance
	if d.Rs <= 0 {
		return gj
	}
	return gj / (1 + gj*d.Rs)
}

// BuildTable (re)builds the PWL companion table with the given number of
// segments over a voltage window wide enough for the multiplier stages.
func (d *Diode) BuildTable(segments int) {
	if segments < 2 {
		segments = 2
	}
	// The window covers deep reverse bias (stage stacking) through strong
	// forward conduction. Outside the window the table extrapolates with
	// the edge slopes, which for the high edge is the Rs-limited ~1/Rs
	// slope — exactly the physical behaviour.
	d.table = MustBuild(d.Current, -15.0, 1.5, segments)
}

// Table exposes the underlying companion table.
func (d *Diode) Table() *Table { return d.table }

// Companion returns the linearised pair (G, J) with Id ≈ G·Vd + J at the
// operating point vd, plus the table segment index used (for LLE /
// Jacobian-change detection).
func (d *Diode) Companion(vd float64) (g, j float64, segment int) {
	g, j = d.table.Lookup(vd)
	return g, j, d.table.SegmentIndex(vd)
}
