package pwl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(math.Sin, 0, 1, 0); err == nil {
		t.Fatalf("n=0 should error")
	}
	if _, err := Build(math.Sin, 1, 1, 4); err == nil {
		t.Fatalf("empty interval should error")
	}
	if _, err := Build(func(v float64) float64 { return math.Inf(1) }, 0, 1, 4); err == nil {
		t.Fatalf("non-finite f should error")
	}
}

func TestLinearFunctionIsExact(t *testing.T) {
	f := func(v float64) float64 { return 3*v - 2 }
	tab := MustBuild(f, -5, 5, 7)
	for _, v := range []float64{-5, -1.3, 0, 2.2, 4.999, 5, 6, -9} {
		if got := tab.Eval(v); math.Abs(got-f(v)) > 1e-12 {
			t.Fatalf("Eval(%v) = %v, want %v", v, got, f(v))
		}
		g, j := tab.Lookup(v)
		if math.Abs(g-3) > 1e-12 || math.Abs(j-(-2)) > 1e-12 {
			t.Fatalf("Lookup(%v) = (%v, %v), want (3, -2)", v, g, j)
		}
	}
}

func TestSegmentIndexBoundaries(t *testing.T) {
	tab := MustBuild(func(v float64) float64 { return v * v }, 0, 1, 4)
	cases := []struct {
		v    float64
		want int
	}{
		{-0.1, -1}, {0, 0}, {0.24, 0}, {0.25, 1}, {0.5, 2}, {0.99, 3}, {1.0, 4}, {2, 4},
	}
	for _, c := range cases {
		if got := tab.SegmentIndex(c.v); got != c.want {
			t.Fatalf("SegmentIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestInterpolationNodesExact(t *testing.T) {
	f := math.Exp
	tab := MustBuild(f, -1, 1, 16)
	for k := 0; k <= 16; k++ {
		v := -1 + 2*float64(k)/16
		if math.Abs(tab.Eval(v)-f(v)) > 1e-12 {
			t.Fatalf("node %v not interpolated exactly: %v vs %v", v, tab.Eval(v), f(v))
		}
	}
}

func TestErrorShrinksWithGranularity(t *testing.T) {
	f := func(v float64) float64 { return math.Exp(2 * v) }
	var prev float64 = math.Inf(1)
	for _, n := range []int{8, 32, 128, 512} {
		tab := MustBuild(f, -1, 1, n)
		e := tab.MaxAbsError(f, 13)
		if e >= prev {
			t.Fatalf("error did not shrink: n=%d err=%v prev=%v", n, e, prev)
		}
		prev = e
	}
	// Piecewise-linear interpolation is second order: quadrupling the
	// segment count should shrink the error by roughly 16x.
	tabA := MustBuild(f, -1, 1, 64)
	tabB := MustBuild(f, -1, 1, 256)
	ratio := tabA.MaxAbsError(f, 17) / tabB.MaxAbsError(f, 17)
	if ratio < 8 || ratio > 32 {
		t.Fatalf("convergence ratio = %v, want ~16", ratio)
	}
}

func TestPropertyTableMatchesFunctionWithinBound(t *testing.T) {
	// Property: for smooth f (here a cubic with bounded second derivative
	// on the window), max error <= M2*dv^2/8 with M2 = max|f''|.
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a2 := r.NormFloat64()
		a1 := r.NormFloat64()
		a0 := r.NormFloat64()
		fn := func(v float64) float64 { return a2*v*v + a1*v + a0 }
		n := 4 + int(nRaw%60)
		tab, err := Build(fn, -2, 2, n)
		if err != nil {
			return false
		}
		dv := 4.0 / float64(n)
		bound := math.Abs(2*a2)*dv*dv/8 + 1e-9
		return tab.MaxAbsError(fn, 9) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestExtrapolationContinuesEdgeSlope(t *testing.T) {
	f := func(v float64) float64 { return 2 * v }
	tab := MustBuild(f, 0, 1, 4)
	if got := tab.Eval(3); math.Abs(got-6) > 1e-12 {
		t.Fatalf("high extrapolation = %v, want 6", got)
	}
	if got := tab.Eval(-2); math.Abs(got-(-4)) > 1e-12 {
		t.Fatalf("low extrapolation = %v, want -4", got)
	}
}

func TestDomainAndNumSegments(t *testing.T) {
	tab := MustBuild(math.Sin, -3, 4, 10)
	lo, hi := tab.Domain()
	if lo != -3 || hi != 4 || tab.NumSegments() != 10 {
		t.Fatalf("domain/segments wrong: [%v %v] n=%d", lo, hi, tab.NumSegments())
	}
}

func TestLookupIsContinuousAcrossSegments(t *testing.T) {
	// The PWL model must be continuous: at the boundary between segments
	// the two linear pieces agree. Discontinuities would inject artificial
	// charge into the simulated circuit.
	tab := MustBuild(func(v float64) float64 { return math.Exp(v) }, -2, 2, 33)
	for k := 0; k < tab.NumSegments()-1; k++ {
		vb := tab.segs[k].V1
		left := tab.segs[k].G*vb + tab.segs[k].J
		right := tab.segs[k+1].G*vb + tab.segs[k+1].J
		if math.Abs(left-right) > 1e-12*(1+math.Abs(left)) {
			t.Fatalf("discontinuity at segment %d boundary %v: %v vs %v", k, vb, left, right)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustBuild should panic on invalid input")
		}
	}()
	MustBuild(math.Sin, 0, -1, 4)
}
