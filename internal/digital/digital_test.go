package digital

import (
	"math"
	"testing"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(2, func(float64) bool { order = append(order, 2); return false })
	k.At(1, func(float64) bool { order = append(order, 1); return false })
	k.At(3, func(float64) bool { order = append(order, 3); return false })
	if k.Next() != 1 {
		t.Fatalf("Next = %v", k.Next())
	}
	k.Fire(2.5)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("fire order = %v", order)
	}
	if k.Next() != 3 {
		t.Fatalf("remaining event at %v", k.Next())
	}
	k.Fire(3)
	if k.Pending() != 0 || k.Fired() != 3 {
		t.Fatalf("pending=%d fired=%d", k.Pending(), k.Fired())
	}
	if !math.IsInf(k.Next(), 1) {
		t.Fatalf("empty queue Next should be +Inf")
	}
}

func TestKernelFIFOForSimultaneous(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(1, func(float64) bool { order = append(order, i); return false })
	}
	k.Fire(1)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestKernelDeltaCycles(t *testing.T) {
	// An action scheduling another action at the same time must have it
	// fire within the same Fire call.
	k := NewKernel()
	var hit bool
	k.At(1, func(now float64) bool {
		k.At(now, func(float64) bool { hit = true; return false })
		return false
	})
	k.Fire(1)
	if !hit {
		t.Fatalf("delta-cycle event did not fire")
	}
}

func TestKernelChangedPropagation(t *testing.T) {
	k := NewKernel()
	k.At(1, func(float64) bool { return false })
	k.At(1, func(float64) bool { return true })
	if !k.Fire(1) {
		t.Fatalf("Fire should report analogue change")
	}
}

func TestKernelPastSchedulingClamped(t *testing.T) {
	k := NewKernel()
	k.Fire(5)
	var at float64
	k.At(1, func(now float64) bool { at = now; return false })
	if k.Next() < 5 {
		t.Fatalf("past event should clamp to now: %v", k.Next())
	}
	k.Fire(5)
	if at != 5 {
		t.Fatalf("clamped event fired at %v", at)
	}
}

func TestZeroCrossMeterPureSine(t *testing.T) {
	z := NewZeroCrossMeter(256)
	f := 70.0
	dt := 1e-4
	for tm := 0.0; tm < 1.0; tm += dt {
		z.Sample(tm, math.Sin(2*math.Pi*f*tm))
	}
	got := z.Measure(1.0, 0.5)
	if math.Abs(got-f) > 0.2 {
		t.Fatalf("measured %v Hz, want %v", got, f)
	}
}

func TestZeroCrossMeterFrequencyStep(t *testing.T) {
	z := NewZeroCrossMeter(512)
	dt := 5e-5
	// 64 Hz then 71 Hz after t=1.
	phase := 0.0
	for tm := 0.0; tm < 2.0; tm += dt {
		f := 64.0
		if tm >= 1 {
			f = 71.0
		}
		phase += 2 * math.Pi * f * dt
		z.Sample(tm, math.Sin(phase))
	}
	got := z.Measure(2.0, 0.5)
	if math.Abs(got-71) > 0.3 {
		t.Fatalf("post-step measurement = %v, want ~71", got)
	}
}

func TestZeroCrossMeterInsufficientData(t *testing.T) {
	z := NewZeroCrossMeter(16)
	if !math.IsNaN(z.Measure(1, 1)) {
		t.Fatalf("no samples should give NaN")
	}
	z.Sample(0, -1)
	z.Sample(0.1, 1) // single crossing
	if !math.IsNaN(z.Measure(0.2, 1)) {
		t.Fatalf("single crossing should give NaN")
	}
}

// mcuHarness wires an MCU to a scripted analogue stand-in.
type mcuHarness struct {
	k       *Kernel
	mcu     *MCU
	vc      float64
	ambient float64
	res     float64
	mode    Mode
	tunes   int
	halts   int
}

func newMCUHarness(cfg MCUConfig) *mcuHarness {
	cfg.Watchdog = 10
	cfg.MeasureTime = 1
	h := &mcuHarness{k: NewKernel(), vc: 3.0, ambient: 70, res: 70}
	h.mcu = NewMCU(h.k, cfg)
	h.mcu.ReadVc = func(float64) float64 { return h.vc }
	h.mcu.AmbientHz = func(float64) float64 { return h.ambient }
	h.mcu.ResonantHz = func(float64) float64 { return h.res }
	h.mcu.SetMode = func(m Mode) bool { h.mode = m; return true }
	h.mcu.TuneStep = func(t, target float64) (bool, bool) {
		h.tunes++
		// Approach the target by 0.5 Hz per tick.
		if h.res < target {
			h.res = math.Min(h.res+0.5, target)
		} else {
			h.res = math.Max(h.res-0.5, target)
		}
		return h.res == target, true
	}
	h.mcu.TuneHalt = func(float64) bool { h.halts++; return false }
	return h
}

// runKernel advances the kernel until time end.
func (h *mcuHarness) runKernel(end float64) {
	for {
		next := h.k.Next()
		if math.IsInf(next, 1) || next > end {
			return
		}
		h.k.Fire(next)
	}
}

func TestMCUSleepsWhenMatched(t *testing.T) {
	cfg := DefaultMCUConfig()
	h := newMCUHarness(cfg)
	h.mcu.Start(0)
	h.runKernel(60)
	if h.mcu.Stats.Wakes < 4 {
		t.Fatalf("watchdog should wake repeatedly: %+v", h.mcu.Stats)
	}
	if h.mcu.Stats.Tunes != 0 {
		t.Fatalf("matched frequency should not tune: %+v", h.mcu.Stats)
	}
	if h.mode != ModeSleep {
		t.Fatalf("should end asleep, mode=%v", h.mode)
	}
}

func TestMCUTunesOnMismatch(t *testing.T) {
	cfg := DefaultMCUConfig()
	h := newMCUHarness(cfg)
	h.ambient = 73 // resonance starts at 70
	h.mcu.Start(0)
	h.runKernel(60)
	if h.mcu.Stats.Tunes == 0 {
		t.Fatalf("mismatch should trigger tuning: %+v", h.mcu.Stats)
	}
	if math.Abs(h.res-73) > 1e-9 {
		t.Fatalf("resonance not driven to target: %v", h.res)
	}
	if h.mode != ModeSleep {
		t.Fatalf("should sleep after tuning, mode=%v", h.mode)
	}
	// After retuning, later wakes must not re-tune.
	tunesAfter := h.mcu.Stats.Tunes
	h.runKernel(120)
	if h.mcu.Stats.Tunes != tunesAfter {
		t.Fatalf("re-tuned a matched system")
	}
}

func TestMCUStaysAsleepBelowVMin(t *testing.T) {
	cfg := DefaultMCUConfig()
	h := newMCUHarness(cfg)
	h.vc = 1.0
	h.ambient = 75
	h.mcu.Start(0)
	h.runKernel(60)
	if h.mcu.Stats.Measures != 0 || h.mcu.Stats.Tunes != 0 {
		t.Fatalf("low voltage should prevent activity: %+v", h.mcu.Stats)
	}
	if h.mcu.Stats.SleptLowV < 4 {
		t.Fatalf("low-voltage sleeps not counted: %+v", h.mcu.Stats)
	}
}

func TestMCUAbortsTuningOnLowVoltage(t *testing.T) {
	cfg := DefaultMCUConfig()
	h := newMCUHarness(cfg)
	h.ambient = 78
	// Drain the supply during tuning.
	drained := false
	h.mcu.TuneStep = func(tm, target float64) (bool, bool) {
		h.tunes++
		if h.tunes > 3 && !drained {
			h.vc = 1.5
			drained = true
		}
		return false, true
	}
	h.mcu.Start(0)
	h.runKernel(30)
	if h.mcu.Stats.Aborts == 0 {
		t.Fatalf("tuning should abort on low voltage: %+v", h.mcu.Stats)
	}
	if h.halts == 0 {
		t.Fatalf("TuneHalt not invoked")
	}
	if h.mode != ModeSleep {
		t.Fatalf("should sleep after abort")
	}
}

func TestMCUSkipsTuningBelowVTune(t *testing.T) {
	cfg := DefaultMCUConfig()
	h := newMCUHarness(cfg)
	h.vc = 2.4 // above VMin (2.2) but below VTune (2.6)
	h.ambient = 75
	h.mcu.Start(0)
	h.runKernel(40)
	if h.mcu.Stats.Measures == 0 {
		t.Fatalf("should measure above VMin")
	}
	if h.mcu.Stats.Tunes != 0 {
		t.Fatalf("should not tune below VTune: %+v", h.mcu.Stats)
	}
}
