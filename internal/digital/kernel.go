// Package digital provides the event-driven digital simulation kernel
// that co-simulates with the analogue engines (the role SystemC's digital
// kernel plays in the paper), plus the microcontroller process
// implementing the tuning flow chart of paper Fig. 7 and the supporting
// frequency detector.
//
// Since the microcontroller is purely digital, there are no state
// equations to model it (paper Section III-D): it is a process scheduled
// on an event queue. The analogue engine never integrates across a
// pending event time, and processes may change analogue block parameters
// (load mode, tuning force), which the engine treats as a linearisation
// discontinuity.
package digital

import (
	"container/heap"
	"math"
)

// Action is a scheduled digital activity. Returning true reports that it
// changed an analogue parameter (discontinuity).
type Action func(now float64) (analogueChanged bool)

// event is a queue entry.
type event struct {
	at  float64
	seq int64 // FIFO tiebreak for simultaneous events
	fn  Action
}

// eventHeap orders events by (time, insertion sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the digital event queue. It implements core.Events so it can
// be attached to either analogue engine.
type Kernel struct {
	q     eventHeap
	seq   int64
	now   float64
	fired int
}

// NewKernel returns an empty kernel.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.q)
	return k
}

// At schedules fn at absolute time t. Scheduling in the past (relative
// to the last Fire) is clamped to "immediately at the next Fire".
func (k *Kernel) At(t float64, fn Action) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.q, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn delay seconds after the current kernel time.
func (k *Kernel) After(delay float64, fn Action) {
	k.At(k.now+delay, fn)
}

// Now returns the kernel's current time (the time of the last Fire).
func (k *Kernel) Now() float64 { return k.now }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return k.q.Len() }

// Fired returns the total number of executed events.
func (k *Kernel) Fired() int { return k.fired }

// Next implements core.Events.
func (k *Kernel) Next() float64 {
	if k.q.Len() == 0 {
		return math.Inf(1)
	}
	return k.q[0].at
}

// Fire implements core.Events: executes every event due at or before
// now, including events the executed actions schedule for <= now (delta
// cycles).
func (k *Kernel) Fire(now float64) bool {
	changed := false
	if now > k.now {
		k.now = now
	}
	for k.q.Len() > 0 && k.q[0].at <= now+1e-12 {
		e := heap.Pop(&k.q).(*event)
		k.fired++
		if e.fn(now) {
			changed = true
		}
	}
	return changed
}
