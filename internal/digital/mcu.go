package digital

import "math"

// Mode mirrors the three operating modes of paper Eq. 16 that the
// microcontroller drives the system through.
type Mode int

const (
	// ModeSleep: microcontroller asleep, waiting on the watchdog timer.
	ModeSleep Mode = iota
	// ModeAwake: microcontroller awake, measuring.
	ModeAwake
	// ModeTuning: actuator moving the tuning magnet.
	ModeTuning
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAwake:
		return "awake"
	case ModeTuning:
		return "tuning"
	default:
		return "sleep"
	}
}

// MCUConfig sets the autonomous controller's thresholds and timing.
type MCUConfig struct {
	Watchdog    float64 // watchdog wake period [s]
	MeasureTime float64 // frequency measurement window [s]
	VMin        float64 // below this the MCU goes straight back to sleep [V]
	VTune       float64 // minimum stored voltage to start tuning [V]
	VStop       float64 // tuning aborts below this [V]
	TolHz       float64 // acceptable |f_ambient - f_resonant| [Hz]
	ActUpdate   float64 // tuning-force refresh interval while moving [s]
}

// DefaultMCUConfig returns the controller settings used by the
// autonomous harvester scenarios.
func DefaultMCUConfig() MCUConfig {
	return MCUConfig{
		Watchdog:    30,
		MeasureTime: 0.1,
		VMin:        2.2,
		VTune:       2.6,
		VStop:       2.0,
		TolHz:       0.5,
		ActUpdate:   0.25,
	}
}

// MCUStats counts controller activity.
type MCUStats struct {
	Wakes     int
	Measures  int
	Tunes     int
	TuneTicks int
	Aborts    int
	SleptLowV int
}

// MCU is the digital microcontroller process implementing the tuning
// flow chart of paper Fig. 7: watchdog wake -> enough energy? ->
// frequency match? -> tune (driving the actuator) -> sleep. It is wired
// to the analogue side purely through callbacks so the digital kernel
// stays independent of the block implementations.
type MCU struct {
	K   *Kernel
	Cfg MCUConfig

	// ReadVc samples the supercapacitor voltage.
	ReadVc func(t float64) float64
	// AmbientHz returns the ambient vibration frequency measured over
	// the preceding measurement window.
	AmbientHz func(t float64) float64
	// ResonantHz returns the microgenerator's current resonant frequency
	// (from the actuator-position calibration table).
	ResonantHz func(t float64) float64
	// SetMode switches the equivalent load (Eq. 16); returns whether an
	// analogue parameter changed.
	SetMode func(m Mode) bool
	// TuneStep advances the tuning process toward targetHz; done reports
	// arrival (or travel limit), changed any analogue update.
	TuneStep func(t, targetHz float64) (done, changed bool)
	// TuneHalt freezes the actuator (low-energy abort).
	TuneHalt func(t float64) bool

	Stats  MCUStats
	target float64
	mode   Mode
}

// NewMCU returns an MCU bound to kernel k. The caller wires the
// callbacks before Start.
func NewMCU(k *Kernel, cfg MCUConfig) *MCU {
	return &MCU{K: k, Cfg: cfg, mode: ModeSleep}
}

// Mode returns the controller's current mode.
func (m *MCU) Mode() Mode { return m.mode }

// Start schedules the first watchdog wake-up after t0.
func (m *MCU) Start(t0 float64) {
	m.K.At(t0+m.Cfg.Watchdog, m.wake)
}

func (m *MCU) setMode(mode Mode) bool {
	m.mode = mode
	if m.SetMode == nil {
		return false
	}
	return m.SetMode(mode)
}

// wake is the watchdog event: check stored energy, then start a
// measurement or go back to sleep (Fig. 7, top).
func (m *MCU) wake(now float64) bool {
	m.Stats.Wakes++
	if m.ReadVc(now) < m.Cfg.VMin {
		m.Stats.SleptLowV++
		m.K.After(m.Cfg.Watchdog, m.wake)
		return false
	}
	changed := m.setMode(ModeAwake)
	m.K.After(m.Cfg.MeasureTime, m.afterMeasure)
	return changed
}

// afterMeasure compares the measured ambient frequency with the current
// resonance and decides whether to tune (Fig. 7, middle).
func (m *MCU) afterMeasure(now float64) bool {
	m.Stats.Measures++
	f := m.AmbientHz(now)
	fr := m.ResonantHz(now)
	if math.Abs(f-fr) <= m.Cfg.TolHz || m.ReadVc(now) < m.Cfg.VTune {
		changed := m.setMode(ModeSleep)
		m.K.After(m.Cfg.Watchdog, m.wake)
		return changed
	}
	m.Stats.Tunes++
	m.target = f
	changed := m.setMode(ModeTuning)
	m.K.After(m.Cfg.ActUpdate, m.tuneTick)
	return changed
}

// tuneTick advances the actuator until the target is reached or the
// stored energy runs low (Fig. 7, bottom loop).
func (m *MCU) tuneTick(now float64) bool {
	m.Stats.TuneTicks++
	if m.ReadVc(now) < m.Cfg.VStop {
		m.Stats.Aborts++
		changed := false
		if m.TuneHalt != nil && m.TuneHalt(now) {
			changed = true
		}
		if m.setMode(ModeSleep) {
			changed = true
		}
		m.K.After(m.Cfg.Watchdog, m.wake)
		return changed
	}
	done, changed := m.TuneStep(now, m.target)
	if done {
		if m.setMode(ModeSleep) {
			changed = true
		}
		m.K.After(m.Cfg.Watchdog, m.wake)
		return changed
	}
	m.K.After(m.Cfg.ActUpdate, m.tuneTick)
	return changed
}
