package digital

import "math"

// ZeroCrossMeter estimates the ambient vibration frequency from sampled
// acceleration, the way the validation rig's microcontroller does with
// its accelerometer input: count positive-going zero crossings over a
// measurement window. Samples are fed from an analogue-engine observer;
// the MCU reads the estimate at the end of its measurement window.
type ZeroCrossMeter struct {
	capacity  int
	crossings []float64 // recent up-crossing times, ring buffer
	head      int
	count     int
	lastT     float64
	lastV     float64
	primed    bool
}

// NewZeroCrossMeter returns a meter remembering up to capacity recent
// up-crossings (capacity ~ 4*f_max*window is plenty).
func NewZeroCrossMeter(capacity int) *ZeroCrossMeter {
	if capacity < 4 {
		capacity = 4
	}
	return &ZeroCrossMeter{capacity: capacity, crossings: make([]float64, capacity)}
}

// Reset discards all remembered crossings and the priming sample,
// returning the meter to its freshly constructed state without touching
// the ring storage.
func (z *ZeroCrossMeter) Reset() {
	z.head, z.count = 0, 0
	z.lastT, z.lastV = 0, 0
	z.primed = false
}

// Sample feeds one (t, value) pair; call from an engine observer.
func (z *ZeroCrossMeter) Sample(t, v float64) {
	if !z.primed {
		z.lastT, z.lastV, z.primed = t, v, true
		return
	}
	if t <= z.lastT {
		z.lastV = v
		return
	}
	if z.lastV <= 0 && v > 0 {
		// Linear interpolation for the crossing instant.
		frac := -z.lastV / (v - z.lastV)
		tc := z.lastT + frac*(t-z.lastT)
		z.crossings[z.head] = tc
		z.head = (z.head + 1) % z.capacity
		if z.count < z.capacity {
			z.count++
		}
	}
	z.lastT, z.lastV = t, v
}

// Crossings returns the number of stored up-crossings.
func (z *ZeroCrossMeter) Crossings() int { return z.count }

// Measure estimates the frequency from the up-crossings inside
// [now-window, now]. Returns NaN when fewer than two crossings are in
// the window.
func (z *ZeroCrossMeter) Measure(now, window float64) float64 {
	t0 := now - window
	var first, last float64
	n := 0
	for i := 0; i < z.count; i++ {
		idx := (z.head - 1 - i + 2*z.capacity) % z.capacity
		tc := z.crossings[idx]
		if tc < t0 || tc > now {
			continue
		}
		if n == 0 {
			last = tc
		}
		first = tc
		n++
	}
	if n < 2 || last == first {
		return math.NaN()
	}
	return float64(n-1) / (last - first)
}
