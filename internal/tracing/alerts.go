package tracing

import (
	"context"
	"sync"
	"time"
)

// Alert is one threshold crossing: a watched signal rose to or above
// its configured bound.
type Alert struct {
	// Name identifies the watched signal (e.g. "failed_total",
	// "lost_workers", "exec_p99_seconds").
	Name string
	// Value is the sampled value that crossed.
	Value float64
	// Bound is the configured threshold.
	Bound float64
	// At is when the crossing was observed.
	At time.Time
}

// rule is one armed watch: a sampler closure and its bound, plus the
// rising-edge latch so a persistently bad signal fires once per
// excursion, not once per poll.
type rule struct {
	name   string
	bound  float64
	sample func() float64
	firing bool
}

// Alerts is the registry-level threshold watcher — the push half of the
// observability layer. Rules sample closures (a counter's Value, a
// histogram's Quantile) so the watcher stays dependency-free of any
// particular metrics implementation; Poll evaluates every rule and
// fires the notify callbacks on rising edges only. All methods are safe
// for concurrent use and on a nil receiver.
type Alerts struct {
	mu     sync.Mutex
	rules  []*rule
	notify []func(Alert)
}

// NewAlerts returns an empty watcher.
func NewAlerts() *Alerts { return &Alerts{} }

// Watch arms a rule: sample is evaluated on every Poll and an Alert
// fires when it reaches or exceeds bound (rising edge: the rule re-arms
// only after the signal drops back below the bound). No-op on nil.
func (a *Alerts) Watch(name string, bound float64, sample func() float64) {
	if a == nil || sample == nil {
		return
	}
	a.mu.Lock()
	a.rules = append(a.rules, &rule{name: name, bound: bound, sample: sample})
	a.mu.Unlock()
}

// Notify registers a callback invoked (synchronously, from Poll's
// caller) for every fired alert. No-op on nil.
func (a *Alerts) Notify(fn func(Alert)) {
	if a == nil || fn == nil {
		return
	}
	a.mu.Lock()
	a.notify = append(a.notify, fn)
	a.mu.Unlock()
}

// Poll samples every armed rule once and returns the alerts that fired
// on this pass (rising edges only), after delivering each to the notify
// callbacks. Samplers run outside the watcher's lock, so they may take
// other locks (histogram quantiles do).
func (a *Alerts) Poll() []Alert {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	rules := append([]*rule(nil), a.rules...)
	notify := append([]func(Alert){}, a.notify...)
	a.mu.Unlock()

	now := time.Now()
	var fired []Alert
	for _, r := range rules {
		v := r.sample()
		crossed := v >= r.bound
		a.mu.Lock()
		edge := crossed && !r.firing
		r.firing = crossed
		a.mu.Unlock()
		if edge {
			fired = append(fired, Alert{Name: r.name, Value: v, Bound: r.bound, At: now})
		}
	}
	for _, al := range fired {
		for _, fn := range notify {
			fn(al)
		}
	}
	return fired
}

// Run polls on the interval until the context is cancelled — the
// background loop a service binary starts once at boot. 0 selects a
// 10-second interval. No-op on nil.
func (a *Alerts) Run(ctx context.Context, interval time.Duration) {
	if a == nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			a.Poll()
		}
	}
}
