// Package tracing is the sweep fabric's dependency-free span layer: a
// per-sweep flight recorder that follows one request from the shard
// coordinator through a worker's queue/exec split and the batch layer's
// cache-probe/march phases down to the engine's factorisation and
// stability events.
//
// The model is deliberately tiny — W3C-traceparent in spirit, not in
// syntax: one hex-32 trace id per sweep, one hex-16 span id per
// shard/job/engine-phase, parent links, wall-clock starts with
// monotonic-clock durations. Spans accumulate in a bounded ring per
// sweep (memory is capped however large the grid is); a trace endpoint
// replays them as NDJSON with the same ?from cursor semantics the
// result streams use, so a coordinator can merge a worker's spans into
// its own recorder (Import) and a client sees one connected trace.
//
// Tracing is strictly observer-grade. Every method is safe on a nil
// *Recorder and a nil *Active, and the off path (nil recorder, the
// default everywhere) performs no allocation and no clock read — the
// batch and engine layers guard their instrumentation behind a single
// nil check, which the zero-overhead tests and the trace-overhead
// benchmark gate pin. Span data never enters cache keys, snapshots or
// summaries: a traced sweep's results are bit-identical to an untraced
// run of the same grid.
package tracing

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"time"
)

// DefaultCapacity bounds a recorder's span ring when New is given no
// explicit capacity: generous for a 4096-job sweep with a handful of
// spans per job, small enough that a retained finished run costs
// kilobytes, not the sweep's working set.
const DefaultCapacity = 32768

// Span is one recorded interval of a sweep: a named phase with parent
// link, wall-clock start and monotonic duration. Spans are value types;
// a Recorder owns the only mutable state.
type Span struct {
	// Trace is the sweep-wide hex-32 trace id every span shares.
	Trace string
	// ID is the span's hex-16 id, unique within the trace (a random
	// per-recorder prefix keeps ids from colliding when a coordinator
	// merges spans recorded on different hosts).
	ID string
	// Parent is the parent span's id; empty marks the trace root.
	Parent string
	// Name is the phase: "sweep", "expand", "queue", "exec", "shard",
	// "job", "probe", "march", "factor", "stability".
	Name string
	// Worker annotates coordinator shard spans with the worker URL.
	Worker string
	// Job is the global expansion index for per-job spans, -1 otherwise.
	Job int
	// Start is the wall-clock start (for display and cross-host
	// alignment; ordering within a recorder is by sequence, not clock).
	Start time.Time
	// Dur is the span's duration, measured on the monotonic clock.
	Dur time.Duration
}

// Recorder is one sweep's flight recorder: a bounded ring of finished
// spans with an absolute-sequence cursor, so trace streams can resume
// (?from) and survive eviction of the oldest spans. All methods are
// safe for concurrent use and on a nil receiver (the "tracing off"
// state).
type Recorder struct {
	trace  string
	prefix uint64 // random high bits of every span id minted here

	mu   sync.Mutex
	cond *sync.Cond
	max  int
	buf  []Span
	// first is the absolute sequence number of buf[0]: cursors are
	// absolute, so eviction moves first forward instead of renumbering.
	first    int64
	seq      uint64 // span-id sequence (monotonic, never reused)
	finished bool
}

// New builds a recorder for one sweep. trace selects the trace id (a
// client-minted hex-32); empty mints a fresh one. capacity bounds the
// span ring (0 = DefaultCapacity); the oldest spans are evicted first.
func New(trace string, capacity int) *Recorder {
	if trace == "" {
		trace = NewTraceID()
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{trace: trace, prefix: randomPrefix(), max: capacity}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// NewTraceID mints a random hex-32 trace id.
func NewTraceID() string {
	var b [16]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// randomPrefix returns the random 32 high bits all of one recorder's
// span ids share, so ids minted on different hosts cannot collide when
// their spans are merged into one trace.
func randomPrefix() uint64 {
	var b [4]byte
	rand.Read(b[:])
	return uint64(binary.BigEndian.Uint32(b[:])) << 32
}

// Trace returns the trace id ("" on a nil recorder).
func (r *Recorder) Trace() string {
	if r == nil {
		return ""
	}
	return r.trace
}

// nextID mints a span id. Caller holds no lock.
func (r *Recorder) nextID() string {
	r.mu.Lock()
	r.seq++
	id := r.prefix | (r.seq & 0xffffffff)
	r.mu.Unlock()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return hex.EncodeToString(b[:])
}

// Active is an open span: Start returned it, End records it. Safe on a
// nil receiver (the off path's no-op handle).
type Active struct {
	rec   *Recorder
	span  Span
	start time.Time
}

// Start opens a span with Job = -1 (a non-job phase). On a nil
// recorder it returns nil, whose methods are all no-ops.
func (r *Recorder) Start(name, parent string) *Active {
	return r.StartJob(name, parent, -1)
}

// StartJob opens a span tagged with a global job index.
func (r *Recorder) StartJob(name, parent string, job int) *Active {
	if r == nil {
		return nil
	}
	now := time.Now()
	return &Active{
		rec:   r,
		start: now,
		span: Span{
			Trace:  r.trace,
			ID:     r.nextID(),
			Parent: parent,
			Name:   name,
			Job:    job,
			Start:  now,
		},
	}
}

// ID returns the open span's id ("" on nil), for parenting children.
func (a *Active) ID() string {
	if a == nil {
		return ""
	}
	return a.span.ID
}

// SetWorker annotates the open span with a worker URL.
func (a *Active) SetWorker(worker string) {
	if a != nil {
		a.span.Worker = worker
	}
}

// End closes the span (duration from the monotonic clock) and records
// it. Safe to call at most once; on a nil receiver it is a no-op.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.span.Dur = time.Since(a.start)
	a.rec.Import(a.span)
}

// Add records an already-measured interval as a span — the hook for
// phases timed without an open handle (engine phase accumulators, an
// expansion timed before the recorder existed). Returns the new span's
// id ("" on a nil recorder).
func (r *Recorder) Add(name, parent string, job int, start time.Time, d time.Duration) string {
	if r == nil {
		return ""
	}
	s := Span{Trace: r.trace, ID: r.nextID(), Parent: parent, Name: name, Job: job, Start: start, Dur: d}
	r.Import(s)
	return s.ID
}

// Import appends a fully formed span — the merge point where a
// coordinator folds a worker's replayed spans into the sweep's own
// recorder. Spans keep their original ids and trace id is normalised to
// this recorder's. No-op on a nil recorder or after Finish.
func (r *Recorder) Import(s Span) {
	if r == nil {
		return
	}
	s.Trace = r.trace
	r.mu.Lock()
	if r.finished {
		r.mu.Unlock()
		return
	}
	r.buf = append(r.buf, s)
	if len(r.buf) > r.max {
		n := len(r.buf) - r.max
		r.buf = r.buf[n:]
		r.first += int64(n)
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Finish seals the recorder: trace streams drain and terminate, later
// Imports are dropped. Idempotent; no-op on nil.
func (r *Recorder) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.finished = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Finished reports whether the recorder is sealed.
func (r *Recorder) Finished() bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finished
}

// Len returns the number of spans recorded so far, evicted ones
// included (the absolute sequence height).
func (r *Recorder) Len() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.first + int64(len(r.buf))
}

// Snapshot copies the retained spans from absolute cursor from onward
// (clamped past evictions) without blocking, returning the next cursor.
func (r *Recorder) Snapshot(from int64) (spans []Span, next int64) {
	if r == nil {
		return nil, from
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < r.first {
		from = r.first
	}
	if i := from - r.first; i < int64(len(r.buf)) {
		spans = append(spans, r.buf[i:]...)
	}
	return spans, r.first + int64(len(r.buf))
}

// Next blocks until spans past the absolute cursor from exist, the
// recorder finishes, or stop reports true (checked on every wake-up; use
// Interrupt to force a check). It returns the available chunk, the next
// cursor, and whether the trace is complete (finished and fully
// delivered). A cursor before the ring's oldest retained span is
// clamped forward — the evicted prefix is gone by design.
func (r *Recorder) Next(from int64, stop func() bool) (spans []Span, next int64, done bool) {
	if r == nil {
		return nil, from, true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < r.first {
		from = r.first
	}
	for from >= r.first+int64(len(r.buf)) && !r.finished && (stop == nil || !stop()) {
		r.cond.Wait()
		if from < r.first {
			from = r.first
		}
	}
	if i := from - r.first; i < int64(len(r.buf)) {
		spans = append(spans, r.buf[i:]...)
	}
	// A finished recorder accepts no further Imports, so the chunk
	// returned here is the last one: finished means complete.
	return spans, r.first + int64(len(r.buf)), r.finished
}

// Interrupt wakes every blocked Next call so its stop predicate is
// re-evaluated — the hook a disconnecting trace stream's monitor uses.
// The empty critical section serialises with the check-then-Wait window
// so the wake-up cannot be lost.
func (r *Recorder) Interrupt() {
	if r == nil {
		return
	}
	r.mu.Lock()
	//lint:ignore SA2001 empty critical section on purpose: it
	// serialises with Next's check-then-Wait window before waking.
	r.mu.Unlock()
	r.cond.Broadcast()
}
