package tracing

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycleAndLinks(t *testing.T) {
	rec := New("", 0)
	if len(rec.Trace()) != 32 {
		t.Fatalf("trace id %q: want hex-32", rec.Trace())
	}
	root := rec.Start("sweep", "")
	child := rec.StartJob("job", root.ID(), 7)
	child.End()
	root.End()

	spans, next := rec.Snapshot(0)
	if len(spans) != 2 || next != 2 {
		t.Fatalf("got %d spans, next=%d; want 2, 2", len(spans), next)
	}
	// Completion order: the child ended first.
	if spans[0].Name != "job" || spans[1].Name != "sweep" {
		t.Fatalf("span order %q, %q; want job, sweep", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent %q does not link to root id %q", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != "" {
		t.Fatalf("root parent %q; want empty", spans[1].Parent)
	}
	if spans[0].Job != 7 || spans[1].Job != -1 {
		t.Fatalf("job tags %d, %d; want 7, -1", spans[0].Job, spans[1].Job)
	}
	for _, s := range spans {
		if s.Trace != rec.Trace() {
			t.Fatalf("span trace %q != recorder trace %q", s.Trace, rec.Trace())
		}
		if len(s.ID) != 16 {
			t.Fatalf("span id %q: want hex-16", s.ID)
		}
		if s.Dur < 0 {
			t.Fatalf("negative duration %v", s.Dur)
		}
	}
	if spans[0].ID == spans[1].ID {
		t.Fatal("span ids collide")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	a := rec.Start("sweep", "")
	a.SetWorker("w")
	a.End()
	if id := a.ID(); id != "" {
		t.Fatalf("nil Active id %q; want empty", id)
	}
	rec.StartJob("job", "", 3).End()
	rec.Add("expand", "", -1, time.Now(), time.Millisecond)
	rec.Import(Span{Name: "x"})
	rec.Finish()
	rec.Interrupt()
	if !rec.Finished() {
		t.Fatal("nil recorder must report finished")
	}
	if rec.Trace() != "" || rec.Len() != 0 {
		t.Fatal("nil recorder must be empty")
	}
	if spans, _, done := rec.Next(0, nil); spans != nil || !done {
		t.Fatal("nil recorder Next must be empty and done")
	}
}

func TestRingEvictionKeepsAbsoluteCursor(t *testing.T) {
	rec := New("", 4)
	for i := 0; i < 10; i++ {
		rec.Add("job", "", i, time.Now(), 0)
	}
	if rec.Len() != 10 {
		t.Fatalf("Len = %d; want 10 (evictions keep the absolute height)", rec.Len())
	}
	// A cursor inside the evicted prefix clamps forward to the oldest
	// retained span.
	spans, next := rec.Snapshot(0)
	if len(spans) != 4 || next != 10 {
		t.Fatalf("got %d spans, next=%d; want the 4 retained, next=10", len(spans), next)
	}
	if spans[0].Job != 6 || spans[3].Job != 9 {
		t.Fatalf("retained jobs %d..%d; want 6..9", spans[0].Job, spans[3].Job)
	}
	// Resuming from a live cursor replays nothing until new spans land.
	spans, next = rec.Snapshot(next)
	if len(spans) != 0 || next != 10 {
		t.Fatalf("resume replayed %d spans; want 0", len(spans))
	}
}

func TestImportAfterFinishIsDropped(t *testing.T) {
	rec := New("", 0)
	rec.Add("job", "", 0, time.Now(), 0)
	rec.Finish()
	rec.Add("late", "", 1, time.Now(), 0)
	if rec.Len() != 1 {
		t.Fatalf("Len = %d after post-finish import; want 1", rec.Len())
	}
}

func TestImportNormalisesTraceID(t *testing.T) {
	rec := New("aaaa", 0)
	rec.Import(Span{Trace: "bbbb", ID: "0123456789abcdef", Name: "job"})
	spans, _ := rec.Snapshot(0)
	if spans[0].Trace != "aaaa" {
		t.Fatalf("imported span trace %q; want recorder's %q", spans[0].Trace, "aaaa")
	}
	if spans[0].ID != "0123456789abcdef" {
		t.Fatalf("imported span id %q changed; must be preserved", spans[0].ID)
	}
}

func TestNextBlocksUntilSpanOrFinish(t *testing.T) {
	rec := New("", 0)
	got := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		spans, next, _ := rec.Next(0, nil)
		got <- len(spans)
		spans, _, done := rec.Next(next, nil)
		if !done {
			t.Error("Next after Finish must report done")
		}
		got <- len(spans)
	}()
	rec.Add("job", "", 0, time.Now(), 0)
	if n := <-got; n != 1 {
		t.Fatalf("first Next delivered %d spans; want 1", n)
	}
	rec.Finish()
	if n := <-got; n != 0 {
		t.Fatalf("post-finish Next delivered %d spans; want 0", n)
	}
	wg.Wait()
}

func TestNextStopPredicateUnblocks(t *testing.T) {
	rec := New("", 0)
	stopped := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec.Next(0, func() bool {
			select {
			case <-stopped:
				return true
			default:
				return false
			}
		})
	}()
	close(stopped)
	rec.Interrupt()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock on the stop predicate")
	}
}

func TestConcurrentRecordingIsRaceFree(t *testing.T) {
	rec := New("", 128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a := rec.StartJob("job", "", w*50+i)
				rec.Add("probe", a.ID(), w*50+i, time.Now(), 0)
				a.End()
			}
		}()
	}
	wg.Wait()
	rec.Finish()
	if rec.Len() != 800 {
		t.Fatalf("Len = %d; want 800", rec.Len())
	}
	ids := make(map[string]bool)
	spans, _ := rec.Snapshot(0)
	for _, s := range spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %s", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestAlertsRisingEdge(t *testing.T) {
	a := NewAlerts()
	v := 0.0
	a.Watch("failed_total", 3, func() float64 { return v })
	var seen []Alert
	a.Notify(func(al Alert) { seen = append(seen, al) })

	if fired := a.Poll(); len(fired) != 0 {
		t.Fatalf("fired %d alerts below bound; want 0", len(fired))
	}
	v = 5
	fired := a.Poll()
	if len(fired) != 1 || fired[0].Name != "failed_total" || fired[0].Value != 5 || fired[0].Bound != 3 {
		t.Fatalf("unexpected alerts %+v", fired)
	}
	// Still above the bound: latched, no re-fire.
	if fired := a.Poll(); len(fired) != 0 {
		t.Fatalf("re-fired while latched: %+v", fired)
	}
	// Drop below, rise again: a fresh excursion fires again.
	v = 1
	a.Poll()
	v = 9
	if fired := a.Poll(); len(fired) != 1 {
		t.Fatalf("second excursion fired %d alerts; want 1", len(fired))
	}
	if len(seen) != 2 {
		t.Fatalf("notify saw %d alerts; want 2", len(seen))
	}
}

func TestAlertsNilSafe(t *testing.T) {
	var a *Alerts
	a.Watch("x", 1, func() float64 { return 2 })
	a.Notify(func(Alert) {})
	if fired := a.Poll(); fired != nil {
		t.Fatal("nil Alerts must not fire")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a.Run(ctx, time.Millisecond) // must return immediately, not hang
}

func TestAlertsRunLoopPolls(t *testing.T) {
	a := NewAlerts()
	var mu sync.Mutex
	hits := 0
	a.Watch("sig", 1, func() float64 { return 10 })
	a.Notify(func(Alert) {
		mu.Lock()
		hits++
		mu.Unlock()
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.Run(ctx, time.Millisecond)
	}()
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := hits
		mu.Unlock()
		if n >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("Run loop never polled")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
}
