package actuator

import (
	"math"
	"testing"
	"testing/quick"
)

func TestForceLawMonotone(t *testing.T) {
	a := New(Default(), 10e-3)
	prev := math.Inf(1)
	for d := 1e-3; d <= 30e-3; d += 1e-3 {
		f := a.Force(d)
		if f >= prev {
			t.Fatalf("force not decreasing with gap at %v", d)
		}
		prev = f
	}
}

func TestGapForForceRoundTrip(t *testing.T) {
	a := New(Default(), 10e-3)
	f := func(raw uint16) bool {
		d := 1e-3 + float64(raw)/65535*29e-3
		ft := a.Force(d)
		back := a.GapForForce(ft)
		return math.Abs(back-d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestGapForForceClamps(t *testing.T) {
	a := New(Default(), 10e-3)
	if got := a.GapForForce(0); got != a.P.TravelHi {
		t.Fatalf("zero force should park at max gap: %v", got)
	}
	if got := a.GapForForce(100); got != a.P.TravelLo {
		t.Fatalf("huge force should clamp to min gap: %v", got)
	}
}

func TestMoveToAndPosition(t *testing.T) {
	a := New(Default(), 10e-3)
	arrival := a.MoveTo(0, 15e-3) // 5 mm at 1 mm/s
	if math.Abs(arrival-5) > 1e-9 {
		t.Fatalf("arrival = %v, want 5", arrival)
	}
	if p := a.Position(2.5); math.Abs(p-12.5e-3) > 1e-12 {
		t.Fatalf("midway position = %v", p)
	}
	if !a.Moving(2.5) {
		t.Fatalf("should be moving at t=2.5")
	}
	if p := a.Position(7); p != 15e-3 {
		t.Fatalf("post-arrival position = %v", p)
	}
	a.Settle(7)
	if a.Moving(7) {
		t.Fatalf("should be settled")
	}
}

func TestMoveClampsToTravel(t *testing.T) {
	a := New(Default(), 10e-3)
	a.MoveTo(0, 1) // way past TravelHi
	a.Settle(1e6)
	if p := a.Position(1e6); p != a.P.TravelHi {
		t.Fatalf("clamped target = %v", p)
	}
}

func TestHaltFreezesPosition(t *testing.T) {
	a := New(Default(), 10e-3)
	a.MoveTo(0, 20e-3)
	a.Halt(3) // 3 mm into a 10 mm move
	if p := a.Position(10); math.Abs(p-13e-3) > 1e-12 {
		t.Fatalf("halted position = %v, want 13 mm", p)
	}
	if a.Moving(10) {
		t.Fatalf("halted actuator reports moving")
	}
}

func TestForceAtTracksMotion(t *testing.T) {
	a := New(Default(), 20e-3)
	f0 := a.ForceAt(0)
	a.MoveTo(0, 5e-3)
	fMid := a.ForceAt(10)
	a.Settle(20)
	fEnd := a.ForceAt(20)
	if !(fEnd > fMid && fMid > f0) {
		t.Fatalf("force should grow as gap closes: %v %v %v", f0, fMid, fEnd)
	}
}

func TestReverseMove(t *testing.T) {
	a := New(Default(), 5e-3)
	arrival := a.MoveTo(0, 25e-3)
	if math.Abs(arrival-20) > 1e-9 {
		t.Fatalf("arrival = %v, want 20", arrival)
	}
	if p := a.Position(10); math.Abs(p-15e-3) > 1e-12 {
		t.Fatalf("position = %v", p)
	}
}

func TestNewClampsInitialPosition(t *testing.T) {
	a := New(Default(), 99)
	if a.Position(0) != Default().TravelHi {
		t.Fatalf("initial position not clamped: %v", a.Position(0))
	}
}
