// Package actuator models the linear actuator of the tuning mechanism
// (paper Fig. 4(a)): it moves the free tuning magnet along the axis, and
// the gap between the two tuning magnets sets the attractive tuning
// force that shifts the cantilever's effective stiffness (paper Eq. 12).
package actuator

import "math"

// Params describes the actuator and the magnetic force law
// Ft(d) = F0 * exp(-d/D0), a standard closed-form fit to the measured
// force-vs-gap curves of axially magnetised magnet pairs over the
// millimetre travel range used by the validation rig.
type Params struct {
	F0       float64 // force at zero gap [N]
	D0       float64 // force decay length [m]
	Speed    float64 // actuator travel speed [m/s]
	TravelLo float64 // minimum gap [m]
	TravelHi float64 // maximum gap [m]
}

// Default returns the calibrated actuator: force span covering the
// microgenerator's 14 Hz tuning range (~0 to ~2 N) over 0-30 mm travel
// at 1 mm/s.
func Default() Params {
	return Params{
		F0:       2.5,
		D0:       6e-3,
		Speed:    1e-3,
		TravelLo: 1.0e-3,
		TravelHi: 30e-3,
	}
}

// Actuator tracks the tuning-magnet position. All motion is commanded by
// the microcontroller process; Position advances lazily from motion
// segments so the analogue side never needs actuator state equations
// (the actuator's electrical load is folded into Req per paper Eq. 16).
type Actuator struct {
	P Params

	pos       float64 // current gap [m] at time ref
	ref       float64 // time of pos
	target    float64 // commanded gap [m]
	moving    bool
	moveStart float64
}

// New returns an actuator resting at gap pos0.
func New(p Params, pos0 float64) *Actuator {
	pos0 = clamp(pos0, p.TravelLo, p.TravelHi)
	return &Actuator{P: p, pos: pos0, target: pos0}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Force returns the magnetic tuning force at gap d (Ft(d) law).
func (a *Actuator) Force(d float64) float64 {
	return a.P.F0 * math.Exp(-d/a.P.D0)
}

// GapForForce inverts the force law, clamped to the travel range.
func (a *Actuator) GapForForce(ft float64) float64 {
	if ft <= 0 {
		return a.P.TravelHi
	}
	if ft >= a.P.F0 {
		return a.P.TravelLo
	}
	return clamp(-a.P.D0*math.Log(ft/a.P.F0), a.P.TravelLo, a.P.TravelHi)
}

// Position returns the gap at time t (advancing any motion in progress).
func (a *Actuator) Position(t float64) float64 {
	if !a.moving {
		return a.pos
	}
	if t < a.ref {
		t = a.ref
	}
	dist := a.P.Speed * (t - a.ref)
	remaining := math.Abs(a.target - a.pos)
	if dist >= remaining {
		return a.target
	}
	if a.target > a.pos {
		return a.pos + dist
	}
	return a.pos - dist
}

// Moving reports whether a motion command is in progress at time t.
func (a *Actuator) Moving(t float64) bool {
	if !a.moving {
		return false
	}
	return a.Position(t) != a.target
}

// MoveTo commands motion to gap target starting at time t and returns
// the arrival time. The target is clamped to the travel range.
func (a *Actuator) MoveTo(t, target float64) (arrival float64) {
	target = clamp(target, a.P.TravelLo, a.P.TravelHi)
	a.pos = a.Position(t)
	a.ref = t
	a.target = target
	a.moving = true
	a.moveStart = t
	return t + math.Abs(target-a.pos)/a.P.Speed
}

// Halt stops any motion at time t, freezing the position there.
func (a *Actuator) Halt(t float64) {
	a.pos = a.Position(t)
	a.ref = t
	a.target = a.pos
	a.moving = false
}

// Settle marks a commanded motion complete at time t (the kernel calls
// this at the arrival event).
func (a *Actuator) Settle(t float64) {
	a.pos = a.Position(t)
	a.ref = t
	if a.pos == a.target {
		a.moving = false
	}
}

// ForceAt returns the tuning force at time t given any motion progress.
func (a *Actuator) ForceAt(t float64) float64 {
	return a.Force(a.Position(t))
}
