package batch

import (
	"context"
	"os"
	"runtime"
	"strings"
	"testing"

	"harvsim/internal/harvester"
)

// cacheScenario is a short deterministic workload for cache tests.
func cacheScenario() harvester.Scenario {
	sc := harvester.ChargeScenario(0.25)
	sc.Cfg.InitialVc = 2.5
	return sc
}

// samePhysics asserts every cacheable Result field is bit-identical.
func samePhysics(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Err != nil || b.Err != nil {
		t.Fatalf("%s: run failed: %v / %v", label, a.Err, b.Err)
	}
	if a.FinalVc != b.FinalVc || a.RMSPower != b.RMSPower ||
		a.MeanPower != b.MeanPower || a.Metric != b.Metric {
		t.Errorf("%s: scalar metrics differ: %+v vs %+v", label,
			[4]float64{a.FinalVc, a.RMSPower, a.MeanPower, a.Metric},
			[4]float64{b.FinalVc, b.RMSPower, b.MeanPower, b.Metric})
	}
	if a.Energy != b.Energy {
		t.Errorf("%s: Energy %+v vs %+v", label, a.Energy, b.Energy)
	}
	if a.Stats != b.Stats {
		t.Errorf("%s: Stats %+v vs %+v", label, a.Stats, b.Stats)
	}
	if len(a.FinalState) != len(b.FinalState) {
		t.Fatalf("%s: state length %d vs %d", label, len(a.FinalState), len(b.FinalState))
	}
	for i := range a.FinalState {
		if a.FinalState[i] != b.FinalState[i] {
			t.Errorf("%s: state[%d] %v vs %v", label, i, a.FinalState[i], b.FinalState[i])
		}
	}
}

// TestCacheHitBitIdenticalAllEngines pins the core cache promise on all
// four engines: a warm hit returns a Result bit-identical to a fresh,
// cache-free run.
func TestCacheHitBitIdenticalAllEngines(t *testing.T) {
	kinds := []harvester.EngineKind{
		harvester.Proposed, harvester.ExistingTrap,
		harvester.ExistingBDF2, harvester.ExistingBE,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			job := Job{Scenario: cacheScenario(), Engine: kind}
			fresh := RunSerial([]Job{job}, Options{})[0]

			c := NewCache(8)
			cold := RunSerial([]Job{job}, Options{Cache: c})[0]
			if cold.Cached {
				t.Fatal("cold run claims to be cached")
			}
			warm := RunSerial([]Job{job}, Options{Cache: c})[0]
			if !warm.Cached {
				t.Fatal("warm run missed the cache")
			}
			samePhysics(t, "cold vs fresh", cold, fresh)
			samePhysics(t, "warm vs fresh", warm, fresh)
			st := c.Stats()
			if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
				t.Errorf("counters hits/misses/entries = %d/%d/%d, want 1/1/1",
					st.Hits, st.Misses, st.Entries)
			}
		})
	}
}

// TestCacheKeyDiscriminates: every knob outside Config that changes the
// Result must change the key, and pure labels must not.
func TestCacheKeyDiscriminates(t *testing.T) {
	base := Job{Scenario: cacheScenario(), Engine: harvester.Proposed}
	baseKey := KeyOf(base, Options{})

	change := map[string]func() (Job, Options){
		"engine":     func() (Job, Options) { j := base; j.Engine = harvester.ExistingTrap; return j, Options{} },
		"decimate":   func() (Job, Options) { j := base; j.Decimate = 1; return j, Options{} },
		"settleFrac": func() (Job, Options) { return base, Options{SettleFrac: 0.5} },
		"metricKey": func() (Job, Options) {
			j := base
			j.Metric = func(*harvester.Harvester, harvester.Engine) float64 { return 0 }
			j.MetricKey = "custom"
			return j, Options{}
		},
		"duration": func() (Job, Options) {
			j := base
			j.Scenario = cacheScenario()
			j.Scenario.Duration *= 2
			return j, Options{}
		},
		"noise seed": func() (Job, Options) {
			j := base
			j.Scenario = harvester.NoiseScenario(0.25, 55, 85, 3)
			return j, Options{}
		},
	}
	for name, f := range change {
		j, o := f()
		if KeyOf(j, o) == baseKey {
			t.Errorf("changing %s does not change the cache key", name)
		}
	}

	same := map[string]func() (Job, Options){
		"job name":   func() (Job, Options) { j := base; j.Name = "other"; return j, Options{} },
		"group":      func() (Job, Options) { j := base; j.Group = "g"; return j, Options{} },
		"seed label": func() (Job, Options) { j := base; j.Seed = 99; return j, Options{} },
		"metricKey, nil Metric": func() (Job, Options) {
			j := base
			j.MetricKey = "ignored-without-closure"
			return j, Options{}
		},
		"scenario name":    func() (Job, Options) { j := base; j.Scenario.Name = "zzz"; return j, Options{} },
		"default decimate": func() (Job, Options) { j := base; j.Decimate = DefaultDecimate; return j, Options{} },
		"workers":          func() (Job, Options) { return base, Options{Workers: 7} },
	}
	for name, f := range same {
		j, o := f()
		if KeyOf(j, o) != baseKey {
			t.Errorf("changing %s (a pure label) changed the cache key", name)
		}
	}
}

func TestCacheableRules(t *testing.T) {
	job := Job{Scenario: cacheScenario(), Engine: harvester.Proposed}
	if !Cacheable(job, Options{}) {
		t.Error("plain job should be cacheable")
	}
	if Cacheable(job, Options{Keep: true}) {
		t.Error("Keep retains live engines; must bypass the cache")
	}
	probed := job
	probed.Probe = func(*harvester.Harvester, harvester.Engine) {}
	if Cacheable(probed, Options{}) {
		t.Error("Probe has side effects; must bypass the cache")
	}
	metric := job
	metric.Metric = func(*harvester.Harvester, harvester.Engine) float64 { return 0 }
	if Cacheable(metric, Options{}) {
		t.Error("opaque Metric closure must bypass the cache")
	}
	metric.MetricKey = "declared-pure"
	if !Cacheable(metric, Options{}) {
		t.Error("Metric with MetricKey should be cacheable")
	}
}

// TestCacheKeepAndProbeBypass verifies uncacheable jobs run fresh even
// with a primed cache.
func TestCacheKeepAndProbeBypass(t *testing.T) {
	c := NewCache(8)
	job := Job{Scenario: cacheScenario(), Engine: harvester.Proposed}
	RunSerial([]Job{job}, Options{Cache: c}) // prime

	kept := RunSerial([]Job{job}, Options{Cache: c, Keep: true})[0]
	if kept.Cached || kept.Harvester == nil {
		t.Errorf("Keep run: cached=%v harvester=%v; want fresh run with live harvester",
			kept.Cached, kept.Harvester != nil)
	}
	probed := job
	ran := false
	probed.Probe = func(*harvester.Harvester, harvester.Engine) { ran = true }
	pr := RunSerial([]Job{probed}, Options{Cache: c})[0]
	if pr.Cached || !ran {
		t.Errorf("Probe run: cached=%v probeRan=%v; want fresh run with probe", pr.Cached, ran)
	}
}

// TestDiskCacheWarmAcrossInstances: a second cache instance over the
// same directory serves the first instance's results, bit-identically.
func TestDiskCacheWarmAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	job := Job{Scenario: cacheScenario(), Engine: harvester.Proposed}

	c1, err := NewDiskCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	first := RunSerial([]Job{job}, Options{Cache: c1})[0]

	c2, err := NewDiskCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	second := RunSerial([]Job{job}, Options{Cache: c2})[0]
	if !second.Cached {
		t.Fatal("fresh cache instance over a warm directory missed")
	}
	samePhysics(t, "cross-instance disk hit", second, first)
	st := c2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Errorf("disk hit counters: %+v", st)
	}
}

// TestDiskCacheIgnoresCorruptAndStale: corrupted files and entries from
// another schema version are counted stale, never served, and the job
// re-runs (then self-heals the store).
func TestDiskCacheIgnoresCorruptAndStale(t *testing.T) {
	job := Job{Scenario: cacheScenario(), Engine: harvester.Proposed}
	fresh := RunSerial([]Job{job}, Options{})[0]
	key := KeyOf(job, Options{})

	corruptions := map[string]string{
		"garbage":      "{not json",
		"wrong schema": `{"schema":"harvsim-result-cache/v0","goarch":"` + runtime.GOARCH + `","key":"` + key.String() + `","result":{"final_vc":99}}`,
		"wrong arch":   `{"schema":"` + cacheSchema + `","goarch":"never-an-arch","key":"` + key.String() + `","result":{"final_vc":99}}`,
		"wrong key":    `{"schema":"` + cacheSchema + `","goarch":"` + runtime.GOARCH + `","key":"deadbeef","result":{"final_vc":99}}`,
	}
	for name, contents := range corruptions {
		t.Run(strings.ReplaceAll(name, " ", "-"), func(t *testing.T) {
			dir := t.TempDir()
			c, err := NewDiskCache(8, dir)
			if err != nil {
				t.Fatal(err)
			}
			path := c.entryPath(key)
			if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
				t.Fatal(err)
			}
			got := RunSerial([]Job{job}, Options{Cache: c})[0]
			if got.Cached {
				t.Fatal("corrupt/stale disk entry was served")
			}
			samePhysics(t, "re-run after stale entry", got, fresh)
			if st := c.Stats(); st.Stale != 1 {
				t.Errorf("stale counter = %d, want 1", st.Stale)
			}
			// The fresh result must have replaced the bad entry.
			c2, err := NewDiskCache(8, dir)
			if err != nil {
				t.Fatal(err)
			}
			healed := RunSerial([]Job{job}, Options{Cache: c2})[0]
			if !healed.Cached {
				t.Error("store did not self-heal after stale entry")
			}
		})
	}
}

// TestCacheConcurrentPooledSharing: many workers sharing one cache over
// duplicate jobs stay race-free (run under -race in CI) and a repeat
// pooled run is served entirely from the cache.
func TestCacheConcurrentPooledSharing(t *testing.T) {
	c := NewCache(64)
	var jobs []Job
	for i := 0; i < 12; i++ {
		sc := cacheScenario()
		// three distinct physics identities, four duplicates of each
		sc.Cfg.Dickson.Stages = 3 + i%3
		jobs = append(jobs, Job{Scenario: sc, Engine: harvester.Proposed})
	}
	first := Run(context.Background(), jobs, Options{Workers: 8, Cache: c})
	for i, r := range first {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	// Duplicates must agree bit-for-bit whether they hit or simulated.
	for i := 3; i < len(first); i++ {
		samePhysics(t, "duplicate job", first[i], first[i%3])
	}
	second := Run(context.Background(), jobs, Options{Workers: 8, Cache: c})
	for i, r := range second {
		if !r.Cached {
			t.Errorf("repeat pooled job %d missed the warm cache", i)
		}
		samePhysics(t, "warm pooled", r, first[i])
	}
	if st := c.Stats(); st.Entries != 3 {
		t.Errorf("expected 3 distinct entries, got %d", st.Entries)
	}
}

// TestCacheLRUEviction: the in-memory store is bounded and evicts least
// recently used.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	k := func(b byte) CacheKey { var k CacheKey; k[0] = b; return k }
	c.Put(k(1), Snapshot{FinalVc: 1})
	c.Put(k(2), Snapshot{FinalVc: 2})
	if _, ok := c.Get(k(1)); !ok { // touch 1: now 2 is LRU
		t.Fatal("entry 1 missing before eviction")
	}
	c.Put(k(3), Snapshot{FinalVc: 3}) // evicts 2
	if _, ok := c.Get(k(2)); ok {
		t.Error("LRU entry 2 was not evicted")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Error("recently used entry 1 was evicted")
	}
	if _, ok := c.Get(k(3)); !ok {
		t.Error("newest entry 3 missing")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}
