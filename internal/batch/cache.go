package batch

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"harvsim/internal/harvester"
)

// CacheSchemaVersion stamps every cache key and on-disk entry with the
// current physics/result schema. Bump it whenever an engine, block model
// or Result field change makes previously computed results incomparable
// with fresh ones — old entries then miss (in memory, the key itself
// changes) or are counted stale and ignored (on disk), so a cache can
// never serve outdated physics.
//
// v2: Snapshot gained the bistable basin fields (Transits,
// SettledTransits, FinalBasin) — a v1 entry replayed under v2 would
// report a bistable run as transit-free.
const CacheSchemaVersion = 2

// cacheSchema is the full stamp written into disk entries and mixed into
// every key.
var cacheSchema = fmt.Sprintf("harvsim-result-cache/v%d", CacheSchemaVersion)

// CacheKey is the content-addressed identity of a job under the options
// that affect its Result: a collision-safe SHA-256 over the canonical
// encoding of (schema version, Config, scenario schedule, engine kind,
// trace decimation, settle fraction, metric key). See
// harvester.Scenario.WriteHash for the encoding contract.
type CacheKey [sha256.Size]byte

// String renders the key as lowercase hex (also the on-disk file stem).
func (k CacheKey) String() string { return hex.EncodeToString(k[:]) }

// Cacheable reports whether a job's Result is reproducible from its
// value-typed identity alone, and therefore may be served from and
// stored into a cache:
//
//   - Options.Keep retains the live Harvester/Engine, which a cache hit
//     cannot supply — bypass;
//   - a Probe hook exists to cause side effects during the run — bypass;
//   - a custom Metric closure is opaque; it only participates when the
//     job declares it pure and names it via Job.MetricKey.
func Cacheable(job Job, opt Options) bool {
	if opt.Keep || job.Probe != nil {
		return false
	}
	if job.Metric != nil && job.MetricKey == "" {
		return false
	}
	return true
}

// Keys returns the stable key string of every job under opt — the
// lowercase-hex content address for cacheable jobs, "" for jobs whose
// identity cannot be captured by value (see Cacheable). The shard
// coordinator hashes these strings to place jobs on workers, so a
// design point always lands where its disk-cache entry lives.
func Keys(jobs []Job, opt Options) []string {
	keys := make([]string, len(jobs))
	for i, job := range jobs {
		if Cacheable(job, opt) {
			keys[i] = KeyOf(job, opt).String()
		}
	}
	return keys
}

// KeyOf computes the job's cache key under opt. Jobs with equal keys
// produce bit-identical Results (the determinism contract the root
// determinism suite pins); labels — Job.Name, Job.Group, Job.Seed,
// Scenario.Name — are excluded, so identically configured jobs share an
// entry regardless of how a sweep named them.
func KeyOf(job Job, opt Options) CacheKey {
	h := sha256.New()
	hw := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	hw("%s\n", cacheSchema)
	job.Scenario.WriteHash(h)
	dec := job.Decimate
	if dec == 0 {
		dec = DefaultDecimate
	}
	// MetricKey is documented as ignored without a Metric closure: a
	// stray label must not split otherwise-identical jobs across entries.
	mk := job.MetricKey
	if job.Metric == nil {
		mk = ""
	}
	hw("engine=%d dec=%d settle=%x metric=%d:%s",
		int64(job.Engine), dec, opt.settleFrac(), len(mk), mk)
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// Snapshot is the value-typed slice of a Result a cache stores: every
// field that is a pure function of the job identity. Elapsed records the
// original compute cost (informational; a hit's Result.Elapsed is the
// lookup time, not this).
type Snapshot struct {
	FinalVc         float64          `json:"final_vc"`
	FinalState      []float64        `json:"final_state"`
	RMSPower        float64          `json:"rms_power"`
	MeanPower       float64          `json:"mean_power"`
	Metric          float64          `json:"metric"`
	Energy          harvester.Energy `json:"energy"`
	Stats           EngineStats      `json:"stats"`
	Transits        int              `json:"transits,omitempty"`
	SettledTransits int              `json:"settled_transits,omitempty"`
	FinalBasin      int              `json:"final_basin,omitempty"`
	Elapsed         time.Duration    `json:"elapsed_ns"`
}

// snapshotOf extracts the cacheable slice of a successful result.
func snapshotOf(r Result) Snapshot {
	return Snapshot{
		FinalVc:         r.FinalVc,
		FinalState:      r.FinalState,
		RMSPower:        r.RMSPower,
		MeanPower:       r.MeanPower,
		Metric:          r.Metric,
		Energy:          r.Energy,
		Stats:           r.Stats,
		Transits:        r.Transits,
		SettledTransits: r.SettledTransits,
		FinalBasin:      r.FinalBasin,
		Elapsed:         r.Elapsed,
	}
}

// fill copies the snapshot into a result shell (Index/Name/Job already
// set by the caller). FinalState is copied so a caller mutating its
// result cannot corrupt the shared cache entry.
func (s Snapshot) fill(r *Result) {
	r.FinalVc = s.FinalVc
	r.FinalState = append([]float64(nil), s.FinalState...)
	r.RMSPower = s.RMSPower
	r.MeanPower = s.MeanPower
	r.Metric = s.Metric
	r.Energy = s.Energy
	r.Stats = s.Stats
	r.Transits = s.Transits
	r.SettledTransits = s.SettledTransits
	r.FinalBasin = s.FinalBasin
}

// CacheStats is a point-in-time counter snapshot. Hits includes
// DiskHits (a disk hit is promoted into memory and counted in both);
// Shared lookups were first counted as Misses (the miss is what sent
// them into the in-flight wait).
type CacheStats struct {
	Hits      int64 // lookups served from the cache
	Misses    int64 // lookups that fell through to a fresh run
	Stale     int64 // disk entries ignored: wrong schema/arch/key or unreadable
	DiskHits  int64 // hits satisfied by the on-disk store
	Shared    int64 // misses resolved by in-flight dedup: waited on, or arrived just behind, an identical run
	Evictions int64 // in-memory entries dropped by the LRU capacity bound
	Entries   int   // current in-memory entry count
}

// Cache is a content-addressed store of simulation Results: an
// in-memory LRU, optionally backed by an on-disk directory so refinement
// sweeps get warm starts across processes. All methods are safe for
// concurrent use — the batch runner's workers share one cache, and a
// long-lived front-end shares one across every request. Workers racing
// on the same missing key are deduplicated in flight: the first runs the
// simulation, the rest wait for its snapshot (see flightDo; surfaced as
// Result.Shared and CacheStats.Shared).
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[CacheKey]*list.Element
	dir     string
	stats   CacheStats

	// In-flight computations, keyed like the entries; see flightDo.
	// Guarded by its own mutex so waiters never hold up lookups.
	flightMu sync.Mutex
	flight   map[CacheKey]*flightCall
}

type cacheEntry struct {
	key  CacheKey
	snap Snapshot
}

// DefaultCacheCapacity bounds the in-memory entry count when NewCache is
// given a non-positive capacity.
const DefaultCacheCapacity = 4096

// NewCache returns an in-memory LRU cache holding up to capacity entries
// (<= 0 selects DefaultCacheCapacity).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[CacheKey]*list.Element),
	}
}

// NewDiskCache returns an LRU cache backed by dir: every Put also writes
// a JSON entry file, and a memory miss falls back to the directory
// before declaring a full miss. Entries from other schema versions or
// architectures are ignored (counted Stale), never served: results are
// bit-exact per (schema, GOARCH) and the stamp is checked on read.
func NewDiskCache(capacity int, dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("batch: cache dir: %w", err)
	}
	c := NewCache(capacity)
	c.dir = dir
	return c, nil
}

// Dir returns the on-disk directory, or "" for a memory-only cache.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}

// Get looks the key up, first in memory, then (for disk-backed caches)
// on disk; a disk hit is promoted into the LRU. Disk I/O happens
// outside the mutex so pooled workers never serialise on each other's
// file reads; two workers racing on the same file both succeed.
func (c *Cache) Get(key CacheKey) (Snapshot, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		snap := el.Value.(*cacheEntry).snap
		c.mu.Unlock()
		return snap, true
	}
	if c.dir == "" {
		c.stats.Misses++
		c.mu.Unlock()
		return Snapshot{}, false
	}
	c.mu.Unlock()

	snap, ok, stale := c.readDisk(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if stale {
		c.stats.Stale++
	}
	if !ok {
		c.stats.Misses++
		return Snapshot{}, false
	}
	c.insert(key, snap)
	c.stats.Hits++
	c.stats.DiskHits++
	return snap, true
}

// peek reports a memory-resident entry without touching the hit/miss
// counters — the re-probe flightDo performs after a caller's counted
// miss, before it commits to leading a fresh run.
func (c *Cache) peek(key CacheKey) (Snapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).snap, true
	}
	return Snapshot{}, false
}

// Put stores the snapshot under key, evicting least-recently-used
// entries beyond capacity and (for disk-backed caches) persisting it.
// The disk write happens outside the mutex.
func (c *Cache) Put(key CacheKey, snap Snapshot) {
	c.mu.Lock()
	c.insert(key, snap)
	c.mu.Unlock()
	if c.dir != "" {
		c.writeDisk(key, snap)
	}
}

// insert adds or refreshes the in-memory entry. Caller holds mu.
func (c *Cache) insert(key CacheKey, snap Snapshot) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).snap = snap
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, snap: snap})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// diskEntry is the persisted envelope. Schema, GoArch and Key guard
// against stale physics, cross-architecture float drift and renamed
// files respectively; any mismatch makes the entry stale. Floats
// round-trip bit-exactly through Go's JSON encoding (shortest
// representation that parses back to the same value); non-finite floats
// do not — Results containing them are simply not persisted.
type diskEntry struct {
	Schema string   `json:"schema"`
	GoArch string   `json:"goarch"`
	Key    string   `json:"key"`
	Snap   Snapshot `json:"result"`
}

func (c *Cache) entryPath(key CacheKey) string {
	return filepath.Join(c.dir, key.String()+".json")
}

// readDisk loads and validates an entry file, without touching cache
// state (runs outside the mutex; the caller accounts stale). Unreadable,
// corrupt, wrong-version, wrong-architecture or mislabelled files are
// reported stale and best-effort removed, so one refresh self-heals the
// store.
func (c *Cache) readDisk(key CacheKey) (snap Snapshot, ok, stale bool) {
	path := c.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, false, !os.IsNotExist(err)
	}
	var e diskEntry
	if json.Unmarshal(data, &e) != nil ||
		e.Schema != cacheSchema || e.GoArch != runtime.GOARCH || e.Key != key.String() {
		os.Remove(path)
		return Snapshot{}, false, true
	}
	return e.Snap, true, false
}

// writeDisk persists an entry atomically (temp file + rename), so a
// concurrent reader never sees a torn write. Failures are silent: the
// disk store is an accelerator, not a source of truth. Runs outside the
// mutex; racing writers of one key rename bit-identical contents.
func (c *Cache) writeDisk(key CacheKey, snap Snapshot) {
	e := diskEntry{Schema: cacheSchema, GoArch: runtime.GOARCH, Key: key.String(), Snap: snap}
	data, err := json.Marshal(e)
	if err != nil {
		return // non-finite floats in the result; memory-only entry
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), c.entryPath(key)) != nil {
		os.Remove(tmp.Name())
	}
}
