package batch

import "testing"

// TestWorkspaceReuseBitIdentical pins the batch reuse path: a serial run
// with per-worker workspace recycling (the default) must produce results
// bit-identical to one that allocates fresh storage per job (the PR 1
// behaviour, Options.NoWorkspaceReuse).
func TestWorkspaceReuseBitIdentical(t *testing.T) {
	base := chargeJob(0.4)
	spec := SweepSpec{
		Base: base,
		Axes: []Axis{
			FloatAxis("rc", []float64{200, 500, 1000, 2000}, func(j *Job, v float64) {
				j.Scenario.Cfg.Microgen.Rc = v
			}),
		},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	reused := RunSerial(jobs, Options{})
	fresh := RunSerial(jobs, Options{NoWorkspaceReuse: true})
	for i := range jobs {
		r, f := reused[i], fresh[i]
		if r.Err != nil || f.Err != nil {
			t.Fatalf("job %d failed: reuse=%v fresh=%v", i, r.Err, f.Err)
		}
		if r.FinalVc != f.FinalVc || r.RMSPower != f.RMSPower || r.Stats.Steps != f.Stats.Steps {
			t.Fatalf("job %d differs: Vc %v vs %v, P %v vs %v, steps %d vs %d",
				i, r.FinalVc, f.FinalVc, r.RMSPower, f.RMSPower, r.Stats.Steps, f.Stats.Steps)
		}
		for k := range r.FinalState {
			if r.FinalState[k] != f.FinalState[k] {
				t.Fatalf("job %d state[%d] differs: %v vs %v", i, k, r.FinalState[k], f.FinalState[k])
			}
		}
	}
}

// TestKeepRetainsWorkspace ensures Options.Keep results stay readable:
// the kept harvester's workspace must NOT be recycled into a later job
// of the same worker (its traces and state would be overwritten).
func TestKeepRetainsWorkspace(t *testing.T) {
	jobs := []Job{chargeJob(0.2), chargeJob(0.2), chargeJob(0.2)}
	results := RunSerial(jobs, Options{Keep: true})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Harvester == nil || r.Engine == nil {
			t.Fatalf("job %d: Keep did not retain harvester/engine", i)
		}
		// The engine's live state must still match the copied final state.
		for k, v := range r.Engine.State() {
			if r.FinalState[k] != v {
				t.Fatalf("job %d: kept engine state was clobbered at [%d]: %v vs %v",
					i, k, v, r.FinalState[k])
			}
		}
	}
}
