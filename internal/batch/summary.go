package batch

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary aggregates a batch's results: error tally, wall-clock
// accounting, and the metric/voltage extrema with the jobs that attained
// them (the argmax table a design sweep exists to produce).
type Summary struct {
	Jobs   int
	Failed int
	// CPUTime is the summed per-job wall time. It equals the serial
	// cost only when jobs did not contend for cores; under an
	// oversubscribed pool it overstates it, so derive speedups from a
	// real RunSerial baseline, not from this.
	CPUTime time.Duration

	MinMetric, MaxMetric       float64
	ArgMinMetric, ArgMaxMetric int // indices into the results slice; -1 if none
	MinVc, MaxVc               float64
	TotalSteps                 int

	// CacheHits counts results served from Options.Cache (Result.Cached)
	// without running an engine; CacheHits == Jobs means the whole batch
	// was warm and did zero simulation work.
	CacheHits int

	// Transits sums the successful jobs' full-run inter-well transit
	// counts; HighOrbit counts successful jobs still crossing between
	// wells in the settled window. Both zero for monostable workloads.
	Transits  int
	HighOrbit int
}

// Summarize reduces a result slice.
func Summarize(results []Result) Summary {
	s := Summary{
		Jobs:         len(results),
		ArgMinMetric: -1, ArgMaxMetric: -1,
		MinMetric: math.Inf(1), MaxMetric: math.Inf(-1),
		MinVc: math.Inf(1), MaxVc: math.Inf(-1),
	}
	for i, r := range results {
		s.CPUTime += r.Elapsed
		if r.Cached {
			s.CacheHits++
		}
		if r.Err != nil {
			s.Failed++
			continue
		}
		s.TotalSteps += r.Stats.Steps
		s.Transits += r.Transits
		if r.SettledTransits > 0 {
			s.HighOrbit++
		}
		if r.Metric < s.MinMetric {
			s.MinMetric, s.ArgMinMetric = r.Metric, i
		}
		if r.Metric > s.MaxMetric {
			s.MaxMetric, s.ArgMaxMetric = r.Metric, i
		}
		if r.FinalVc < s.MinVc {
			s.MinVc = r.FinalVc
		}
		if r.FinalVc > s.MaxVc {
			s.MaxVc = r.FinalVc
		}
	}
	return s
}

// String renders the aggregate block.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs %d  failed %d  steps %d  summed job time %v\n",
		s.Jobs, s.Failed, s.TotalSteps, s.CPUTime.Round(time.Millisecond))
	if s.CacheHits > 0 {
		fmt.Fprintf(&b, "cache hits %d/%d\n", s.CacheHits, s.Jobs)
	}
	if s.Transits > 0 || s.HighOrbit > 0 {
		fmt.Fprintf(&b, "basins  %d inter-well transits  %d/%d jobs on the high orbit\n",
			s.Transits, s.HighOrbit, s.Jobs)
	}
	if s.ArgMaxMetric >= 0 {
		fmt.Fprintf(&b, "metric  min %.4g (#%d)  max %.4g (#%d)\n",
			s.MinMetric, s.ArgMinMetric, s.MaxMetric, s.ArgMaxMetric)
		fmt.Fprintf(&b, "final Vc  min %.4g V  max %.4g V", s.MinVc, s.MaxVc)
	}
	return b.String()
}

// Top returns the k successful results with the largest Metric, in
// descending order (ties broken by job index, so the ranking is
// deterministic).
func Top(results []Result, k int) []Result {
	ok := make([]Result, 0, len(results))
	for _, r := range results {
		if r.Err == nil {
			ok = append(ok, r)
		}
	}
	sort.SliceStable(ok, func(i, j int) bool {
		if ok[i].Metric != ok[j].Metric {
			return ok[i].Metric > ok[j].Metric
		}
		return ok[i].Index < ok[j].Index
	})
	if k < 0 {
		k = 0
	}
	if k < len(ok) {
		ok = ok[:k]
	}
	return ok
}

// Table renders ranked results as a fixed-width table: rank, job name,
// metric, final Vc, steps, elapsed.
func Table(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-48s %12s %10s %8s %10s\n",
		"#", "job", "metric", "Vc [V]", "steps", "elapsed")
	for i, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-4d %-48s ERROR: %v\n", i+1, r.Name, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-4d %-48s %12.5g %10.4f %8d %10s\n",
			i+1, r.Name, r.Metric, r.FinalVc, r.Stats.Steps,
			r.Elapsed.Round(time.Microsecond))
	}
	return b.String()
}
