package batch

import (
	"reflect"
	"testing"

	"harvsim/internal/harvester"
)

// seedEnsembleJobs builds one design point's seed ensemble: k jobs
// sharing a Group and differing only in the noise realisation seed.
func seedEnsembleJobs(k int, duration float64, kind harvester.EngineKind) []Job {
	jobs := make([]Job, k)
	for i, seed := range Seeds(7, k) {
		sc := harvester.NoiseScenario(duration, 55, 85, seed)
		jobs[i] = Job{
			Name:     "ens",
			Group:    "point-0",
			Seed:     seed,
			Scenario: sc,
			Engine:   kind,
		}
	}
	return jobs
}

func requireSameResults(t *testing.T, label string, solo, lock []Result) {
	t.Helper()
	if len(solo) != len(lock) {
		t.Fatalf("%s: %d vs %d results", label, len(solo), len(lock))
	}
	for i := range solo {
		a, b := solo[i], lock[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s[%d]: errors %v / %v", label, i, a.Err, b.Err)
		}
		if a.FinalVc != b.FinalVc || a.RMSPower != b.RMSPower ||
			a.MeanPower != b.MeanPower || a.Metric != b.Metric {
			t.Errorf("%s[%d]: metrics differ: %+v vs %+v", label, i, a, b)
		}
		if !reflect.DeepEqual(a.FinalState, b.FinalState) {
			t.Errorf("%s[%d]: final state differs", label, i)
		}
		if a.Energy != b.Energy {
			t.Errorf("%s[%d]: energy differs: %+v vs %+v", label, i, a.Energy, b.Energy)
		}
		if a.Stats != b.Stats {
			t.Errorf("%s[%d]: engine stats differ: %+v vs %+v", label, i, a.Stats, b.Stats)
		}
		if a.Key != b.Key {
			t.Errorf("%s[%d]: cache key %q vs %q", label, i, a.Key, b.Key)
		}
	}
}

// TestLockstepBitIdenticalToSolo pins the tentpole's correctness
// contract at the batch level: a seed-grouped unit dispatched through
// the lockstep engine produces bit-identical Results — metrics, final
// state, energy bookkeeping AND per-engine work counters — to the same
// jobs run as independent singletons.
func TestLockstepBitIdenticalToSolo(t *testing.T) {
	jobs := seedEnsembleJobs(5, 0.3, harvester.Proposed)
	solo := RunSerial(jobs, Options{NoLockstep: true})
	lock := RunSerial(jobs, Options{})
	requireSameResults(t, "proposed", solo, lock)
}

// TestLockstepCacheInterop: lockstep members use the same cache keys
// and store the same snapshots as singleton runs, so a cache warmed by
// a lockstep run serves a NoLockstep run (and vice versa), and a
// partially warmed ensemble runs only its missing members.
func TestLockstepCacheInterop(t *testing.T) {
	jobs := seedEnsembleJobs(4, 0.25, harvester.Proposed)

	cache := NewCache(0)
	first := RunSerial(jobs, Options{Cache: cache})
	for i, r := range first {
		if r.Err != nil || r.Cached {
			t.Fatalf("first[%d]: err=%v cached=%v", i, r.Err, r.Cached)
		}
		if r.Key == "" {
			t.Fatalf("first[%d]: no cache key", i)
		}
	}
	// A NoLockstep rerun on the same cache must hit every entry.
	second := RunSerial(jobs, Options{Cache: cache, NoLockstep: true})
	for i, r := range second {
		if r.Err != nil || !r.Cached {
			t.Fatalf("second[%d]: err=%v cached=%v (want hit)", i, r.Err, r.Cached)
		}
	}
	requireSameResults(t, "warm", first, second)

	// Partially warmed: a fresh cache with only member 1's entry; the
	// lockstep unit serves it from the cache and marches the rest, with
	// results still bit-identical.
	partial := NewCache(0)
	RunSerial(jobs[1:2], Options{Cache: partial, NoLockstep: true})
	third := RunSerial(jobs, Options{Cache: partial})
	if !third[1].Cached {
		t.Errorf("member 1 not served from warm cache")
	}
	requireSameResults(t, "partial", first, third)
}

// TestLockstepUnitPartition pins the grouping rule: only same-group,
// proposed-engine, multi-seed jobs form a unit; everything else stays a
// singleton, and NoLockstep forces all singletons.
func TestLockstepUnitPartition(t *testing.T) {
	sc := harvester.NoiseScenario(0.1, 55, 85, 1)
	seeds := Seeds(3, 3)
	jobs := []Job{
		{Group: "a", Seed: seeds[0], Scenario: sc, Engine: harvester.Proposed},   // unit "a"
		{Group: "", Seed: seeds[0], Scenario: sc, Engine: harvester.Proposed},    // singleton: no group
		{Group: "a", Seed: seeds[1], Scenario: sc, Engine: harvester.Proposed},   // unit "a"
		{Group: "b", Seed: seeds[0], Scenario: sc, Engine: harvester.ExistingBE}, // singleton: implicit engine
		{Group: "b", Seed: seeds[1], Scenario: sc, Engine: harvester.ExistingBE}, // singleton: implicit engine
		{Group: "c", Seed: seeds[2], Scenario: sc, Engine: harvester.Proposed},   // demoted: lone seed
		{Group: "c", Seed: seeds[2], Scenario: sc, Engine: harvester.Proposed},   // demoted: duplicate seed
	}
	units := lockstepUnits(jobs, Options{})
	var sizes []int
	for _, u := range units {
		sizes = append(sizes, len(u))
	}
	if want := []int{2, 1, 1, 1, 1, 1}; !reflect.DeepEqual(sizes, want) {
		t.Fatalf("unit sizes = %v (units %v), want %v", sizes, units, want)
	}
	if got := units[0]; got[0] != 0 || got[1] != 2 {
		t.Errorf("unit 0 = %v, want [0 2]", got)
	}
	units = lockstepUnits(jobs, Options{NoLockstep: true})
	if len(units) != len(jobs) {
		t.Errorf("NoLockstep: %d units, want %d singletons", len(units), len(jobs))
	}
	for i, u := range units {
		if len(u) != 1 || u[0] != i {
			t.Errorf("NoLockstep unit %d = %v", i, u)
		}
	}
}
