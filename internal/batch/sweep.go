package batch

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"harvsim/internal/harvester"
)

// Point is one setting of a sweep axis: a label for result naming and a
// transform applied to the job. Apply functions receive a job whose
// Scenario has already been deep-cloned from the base, so mutating value
// fields of job.Scenario.Cfg is safe; pointer fields (the Dickson diode
// table) must be replaced, never mutated in place, because they are
// shared read-only across concurrent jobs.
type Point struct {
	Label string
	Apply func(j *Job)
}

// Axis is a named list of points; a sweep is the cartesian product of
// its axes.
type Axis struct {
	Name   string
	Points []Point

	// Ensemble marks a statistical axis (seed realisations of one design
	// point, see SeedAxis) rather than a design axis. Job names still
	// include its label, but SweepSpec.Jobs builds each job's Group from
	// the design axes only, so the ensemble reductions (Ensembles,
	// EnsembleTop, EnsembleTable) can aggregate realisations per point.
	Ensemble bool
}

// FloatAxis sweeps a float-valued knob.
func FloatAxis(name string, values []float64, set func(j *Job, v float64)) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: strconv.FormatFloat(v, 'g', -1, 64),
			Apply: func(j *Job) { set(j, v) },
		})
	}
	return ax
}

// IntAxis sweeps an integer-valued knob.
func IntAxis(name string, values []int, set func(j *Job, v int)) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: strconv.Itoa(v),
			Apply: func(j *Job) { set(j, v) },
		})
	}
	return ax
}

// SeedAxis sweeps noise-realisation seeds as an ensemble axis: each
// point stamps Job.Seed and hands the seed to set (which typically
// writes Config.VibNoise.Seed). Jobs expanded from it carry the same
// Group per design point, which is what the ensemble reductions group
// by. Derive the seed list with Seeds for the documented base-seed rule.
func SeedAxis(name string, seeds []uint64, set func(j *Job, seed uint64)) Axis {
	ax := Axis{Name: name, Ensemble: true}
	for _, s := range seeds {
		s := s
		ax.Points = append(ax.Points, Point{
			Label: strconv.FormatUint(s, 10),
			Apply: func(j *Job) {
				j.Seed = s
				set(j, s)
			},
		})
	}
	return ax
}

// EngineAxis sweeps the solver kind.
func EngineAxis(kinds ...harvester.EngineKind) Axis {
	ax := Axis{Name: "engine"}
	for _, k := range kinds {
		k := k
		ax.Points = append(ax.Points, Point{
			Label: k.String(),
			Apply: func(j *Job) { j.Engine = k },
		})
	}
	return ax
}

// SweepSpec declares a cartesian parameter sweep: every combination of
// axis points applied to a copy of the base job, expanded in row-major
// order (the last axis varies fastest).
type SweepSpec struct {
	Base Job
	Axes []Axis
}

// Size returns the number of jobs the sweep expands to.
func (s SweepSpec) Size() int {
	n := 1
	for _, ax := range s.Axes {
		n *= len(ax.Points)
	}
	return n
}

// checkAxes rejects unexpandable specs (an empty axis would make the
// cartesian product empty, which is always a caller bug, not a sweep).
func (s SweepSpec) checkAxes() error {
	for _, ax := range s.Axes {
		if len(ax.Points) == 0 {
			return fmt.Errorf("batch: axis %q has no points", ax.Name)
		}
	}
	return nil
}

// jobAt materialises the job at the given axis coordinates: a
// deep-cloned Scenario with every axis point applied, named
// "base[axis=label ...]", grouped by the design (non-Ensemble) axes.
// Jobs and JobsAt both build through here, so a selectively expanded
// job is identical — name, group and content-addressed identity — to
// the same index of a full expansion.
func (s SweepSpec) jobAt(idx []int) Job {
	job := s.Base
	job.Scenario = s.Base.Scenario.Clone()
	base := jobName(s.Base)
	var labels, groupLabels []string
	for a, ax := range s.Axes {
		pt := ax.Points[idx[a]]
		pt.Apply(&job)
		labels = append(labels, ax.Name+"="+pt.Label)
		if !ax.Ensemble {
			groupLabels = append(groupLabels, ax.Name+"="+pt.Label)
		}
	}
	if len(labels) > 0 {
		job.Name = base + "[" + strings.Join(labels, " ") + "]"
	}
	job.Group = base
	if len(groupLabels) > 0 {
		job.Group = base + "[" + strings.Join(groupLabels, " ") + "]"
	}
	return job
}

// Jobs expands the sweep into its job list. Each job gets a deep-cloned
// Scenario (no Shifts/Chirp aliasing with the base or its siblings) and
// a name of the form "base[axis=label ...]". Job.Group is the same name
// built from the design (non-Ensemble) axes only, so every realisation
// an ensemble axis spawns for one design point shares its Group.
func (s SweepSpec) Jobs() ([]Job, error) {
	if err := s.checkAxes(); err != nil {
		return nil, err
	}
	jobs := make([]Job, 0, s.Size())
	idx := make([]int, len(s.Axes))
	for {
		jobs = append(jobs, s.jobAt(idx))
		// Odometer increment, last axis fastest.
		a := len(idx) - 1
		for ; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(s.Axes[a].Points) {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			return jobs, nil
		}
	}
}

// JobsAt expands only the jobs at the given row-major indices of the
// full cartesian expansion — the shard subset a coordinated worker was
// assigned. Cost is proportional to len(indices), not to Size, so a
// worker can execute a thin slice of a grid whose full expansion would
// exceed its memory budget. Each returned job is bit-identical (name,
// group, content-addressed identity) to Jobs()[index].
func (s SweepSpec) JobsAt(indices []int) ([]Job, error) {
	if err := s.checkAxes(); err != nil {
		return nil, err
	}
	size := s.Size()
	jobs := make([]Job, 0, len(indices))
	idx := make([]int, len(s.Axes))
	for _, index := range indices {
		if index < 0 || index >= size {
			return nil, fmt.Errorf("batch: job index %d outside the %d-job expansion", index, size)
		}
		// Row-major coordinates: the last axis varies fastest.
		rem := index
		for a := len(s.Axes) - 1; a >= 0; a-- {
			n := len(s.Axes[a].Points)
			idx[a] = rem % n
			rem /= n
		}
		jobs = append(jobs, s.jobAt(idx))
	}
	return jobs, nil
}

// Sweep expands the spec and runs it across the pool.
func Sweep(ctx context.Context, spec SweepSpec, opt Options) ([]Result, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	return Run(ctx, jobs, opt), nil
}
