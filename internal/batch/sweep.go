package batch

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"harvsim/internal/harvester"
)

// Point is one setting of a sweep axis: a label for result naming and a
// transform applied to the job. Apply functions receive a job whose
// Scenario has already been deep-cloned from the base, so mutating value
// fields of job.Scenario.Cfg is safe; pointer fields (the Dickson diode
// table) must be replaced, never mutated in place, because they are
// shared read-only across concurrent jobs.
type Point struct {
	Label string
	Apply func(j *Job)
}

// Axis is a named list of points; a sweep is the cartesian product of
// its axes.
type Axis struct {
	Name   string
	Points []Point
}

// FloatAxis sweeps a float-valued knob.
func FloatAxis(name string, values []float64, set func(j *Job, v float64)) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: strconv.FormatFloat(v, 'g', -1, 64),
			Apply: func(j *Job) { set(j, v) },
		})
	}
	return ax
}

// IntAxis sweeps an integer-valued knob.
func IntAxis(name string, values []int, set func(j *Job, v int)) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: strconv.Itoa(v),
			Apply: func(j *Job) { set(j, v) },
		})
	}
	return ax
}

// EngineAxis sweeps the solver kind.
func EngineAxis(kinds ...harvester.EngineKind) Axis {
	ax := Axis{Name: "engine"}
	for _, k := range kinds {
		k := k
		ax.Points = append(ax.Points, Point{
			Label: k.String(),
			Apply: func(j *Job) { j.Engine = k },
		})
	}
	return ax
}

// SweepSpec declares a cartesian parameter sweep: every combination of
// axis points applied to a copy of the base job, expanded in row-major
// order (the last axis varies fastest).
type SweepSpec struct {
	Base Job
	Axes []Axis
}

// Size returns the number of jobs the sweep expands to.
func (s SweepSpec) Size() int {
	n := 1
	for _, ax := range s.Axes {
		n *= len(ax.Points)
	}
	return n
}

// Jobs expands the sweep into its job list. Each job gets a deep-cloned
// Scenario (no Shifts/Chirp aliasing with the base or its siblings) and
// a name of the form "base[axis=label ...]".
func (s SweepSpec) Jobs() ([]Job, error) {
	for _, ax := range s.Axes {
		if len(ax.Points) == 0 {
			return nil, fmt.Errorf("batch: axis %q has no points", ax.Name)
		}
	}
	jobs := make([]Job, 0, s.Size())
	idx := make([]int, len(s.Axes))
	base := jobName(s.Base)
	for {
		job := s.Base
		job.Scenario = s.Base.Scenario.Clone()
		var labels []string
		for a, ax := range s.Axes {
			pt := ax.Points[idx[a]]
			pt.Apply(&job)
			labels = append(labels, ax.Name+"="+pt.Label)
		}
		if len(labels) > 0 {
			job.Name = base + "[" + strings.Join(labels, " ") + "]"
		}
		jobs = append(jobs, job)
		// Odometer increment, last axis fastest.
		a := len(idx) - 1
		for ; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(s.Axes[a].Points) {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			return jobs, nil
		}
	}
}

// Sweep expands the spec and runs it across the pool.
func Sweep(ctx context.Context, spec SweepSpec, opt Options) ([]Result, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	return Run(ctx, jobs, opt), nil
}
