package batch

import (
	"time"

	"harvsim/internal/core"
	"harvsim/internal/harvester"
	"harvsim/internal/tracing"
)

// lockstepUnits partitions the jobs into dispatch units. Jobs that form
// a seed ensemble — the same non-empty Job.Group, the proposed explicit
// engine, the same horizon, and at least two distinct Job.Seed values —
// become one lockstep unit, dispatched to a single worker that steps
// all members through shared factorisations; everything else stays a
// singleton. Units are emitted in first-member job order, and the
// partition never changes any job's Result: a lockstep member runs its
// exact solo march, so grouping is a pure scheduling decision (pinned
// by the determinism suite, A/B-switchable via Options.NoLockstep).
func lockstepUnits(jobs []Job, opt Options) [][]int {
	units := make([][]int, 0, len(jobs))
	if opt.NoLockstep {
		for i := range jobs {
			units = append(units, []int{i})
		}
		return units
	}
	type groupKey struct {
		group    string
		engine   harvester.EngineKind
		duration float64
	}
	grouped := make(map[groupKey]int) // key -> index into units
	for i, job := range jobs {
		if job.Group == "" || job.Engine != harvester.Proposed {
			units = append(units, []int{i})
			continue
		}
		key := groupKey{job.Group, job.Engine, job.Scenario.Duration}
		if u, ok := grouped[key]; ok {
			units[u] = append(units[u], i)
			continue
		}
		grouped[key] = len(units)
		units = append(units, []int{i})
	}
	// Ensembles of one — or groups whose members all share one seed —
	// gain nothing from lockstep; demote them to singletons so they take
	// the exact singleton path (runOne, with singleflight).
	for u, unit := range units {
		if len(unit) < 2 {
			continue
		}
		distinct := false
		for _, i := range unit[1:] {
			if jobs[i].Seed != jobs[unit[0]].Seed {
				distinct = true
				break
			}
		}
		if !distinct {
			for _, i := range unit[1:] {
				units = append(units, []int{i})
			}
			units[u] = unit[:1]
		}
	}
	return units
}

// runUnit resolves one dispatch unit into its result slots and streams
// each member through OnResult. Singleton units take the ordinary
// runOne path; multi-member units run in lockstep.
func runUnit(unit []int, jobs []Job, opt Options, results []Result, pool *core.WorkspacePool) {
	if len(unit) == 1 {
		i := unit[0]
		results[i] = runOne(i, jobs[i], opt, pool)
		opt.Metrics.observe(results[i])
		if opt.OnResult != nil {
			opt.OnResult(results[i])
		}
		return
	}
	opt.Metrics.observeLockstepUnit(len(unit))
	runLockstep(unit, jobs, opt, results)
	for _, i := range unit {
		opt.Metrics.observe(results[i])
	}
	if opt.OnResult != nil {
		for _, i := range unit {
			opt.OnResult(results[i])
		}
	}
}

// runLockstep resolves a seed-ensemble unit: members served by the
// result cache fill from their snapshots exactly as runOne's hit path
// would, and the remaining members assemble against a shared
// structure-of-arrays workspace and march in lockstep through one set
// of factorisations. Per-member Results, cache keys (KeyOf is
// unchanged) and cache entries are identical to K singleton runs; the
// only singleton behaviour lockstep members skip is in-flight miss
// deduplication (singleflight) — a concurrent identical job in another
// run may compute the same entry redundantly, which costs time, never
// correctness (Put is idempotent for bit-identical snapshots).
func runLockstep(unit []int, jobs []Job, opt Options, results []Result) {
	start := time.Now()
	// One span per member job (parented like the singleton path's), so a
	// trace reads identically whether the scheduler grouped or not; the
	// lockstep members' march spans share the unit's wall time, which is
	// the honest accounting — they marched as one pass. Every tracing
	// call is a no-op when Options.Trace is nil.
	jobSpans := make(map[int]*tracing.Active)
	startJobSpan := func(i int) *tracing.Active {
		a, ok := jobSpans[i]
		if !ok {
			a = opt.Trace.StartJob("job", opt.TraceParent, i)
			jobSpans[i] = a
		}
		return a
	}
	pending := make([]int, 0, len(unit))
	for _, i := range unit {
		res := Result{Index: i, Name: jobName(jobs[i]), Job: jobs[i]}
		jobSpan := startJobSpan(i)
		if err := jobs[i].Scenario.Cfg.Validate(); err != nil {
			res.Err = err
			results[i] = res
			jobSpan.End()
			continue
		}
		if c := opt.Cache; c != nil && Cacheable(jobs[i], opt) {
			probeStart := time.Now()
			key := KeyOf(jobs[i], opt)
			res.Key = key.String()
			if snap, ok := c.Get(key); ok {
				snap.fill(&res)
				res.Cached = true
				res.Elapsed = time.Since(start)
				tracePhase(&res, opt, PhaseProbe, jobSpan.ID(), probeStart, time.Since(probeStart))
				results[i] = res
				jobSpan.End()
				continue
			}
			tracePhase(&res, opt, PhaseProbe, jobSpan.ID(), probeStart, time.Since(probeStart))
		}
		results[i] = res
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return
	}
	marchStart := time.Now()

	scs := make([]harvester.Scenario, len(pending))
	for k, i := range pending {
		scs[k] = jobs[i].Scenario
	}
	hs, _, err := harvester.AssembleEnsemble(scs)
	if err != nil {
		for _, i := range pending {
			results[i].Err = err
			results[i].Elapsed = time.Since(start)
			startJobSpan(i).End()
		}
		return
	}
	engs := make([]harvester.Engine, len(pending))
	var phases []*core.PhaseTimes
	if opt.Trace != nil {
		phases = make([]*core.PhaseTimes, len(pending))
	}
	for k, i := range pending {
		dec := jobs[i].Decimate
		if dec == 0 {
			dec = DefaultDecimate
		}
		engs[k] = hs[k].NewEngine(jobs[i].Engine, dec)
		if phases != nil {
			if ce, ok := engs[k].(*core.Engine); ok {
				phases[k] = &core.PhaseTimes{}
				ce.Phases = phases[k]
			}
		}
		if jobs[i].Probe != nil {
			jobs[i].Probe(hs[k], engs[k])
		}
		hs[k].SetBasinSettle(jobs[i].Scenario.Duration * opt.settleFrac())
	}
	errs := harvester.RunEnsemble(hs, engs, scs[0].Duration)
	// One engine-run observation per unit: the members marched as a
	// single shared-factorisation pass, not len(pending) separate runs.
	opt.Metrics.observeEngineRun(time.Since(start))
	marchDur := time.Since(marchStart)

	for k, i := range pending {
		res := &results[i]
		res.Elapsed = time.Since(start)
		if opt.Trace != nil {
			// Each member's march span carries the unit's full wall
			// time: the members stepped as one pass, so that is the
			// honest per-member accounting.
			jobSpan := startJobSpan(i)
			marchID := opt.Trace.Add(PhaseMarch, jobSpan.ID(), i, marchStart, marchDur)
			if res.Phases == nil {
				res.Phases = make(map[string]time.Duration, 4)
			}
			res.Phases[PhaseMarch] += marchDur
			if p := phases[k]; p != nil {
				opt.Trace.Add(PhaseFactor, marchID, i, marchStart, p.Refactor)
				opt.Trace.Add(PhaseStability, marchID, i, marchStart, p.Stability)
				res.Phases[PhaseFactor] += p.Refactor
				res.Phases[PhaseStability] += p.Stability
			}
			jobSpan.End()
		}
		if errs[k] != nil {
			res.Err = errs[k]
			hs[k].Release()
			continue
		}
		h, eng, job := hs[k], engs[k], jobs[i]
		_, res.FinalVc = h.VcTrace.Last()
		res.FinalState = append([]float64(nil), eng.State()...)
		settled := h.PMultIn.Slice(job.Scenario.Duration*opt.settleFrac(), job.Scenario.Duration)
		res.RMSPower = settled.RMS()
		res.MeanPower = settled.Mean()
		if job.Metric != nil {
			res.Metric = job.Metric(h, eng)
		} else {
			res.Metric = res.RMSPower
		}
		res.Energy = h.Energy
		res.Stats = StatsOf(eng)
		bs := h.BasinStats()
		res.Transits, res.SettledTransits, res.FinalBasin = bs.Transits, bs.SettledTransits, bs.FinalBasin
		// Store every successful result, non-finite metrics included —
		// the same policy as the singleton path (the wire layer encodes
		// non-finite floats safely).
		if c := opt.Cache; c != nil && res.Key != "" {
			c.Put(KeyOf(job, opt), snapshotOf(*res))
		}
		if opt.Keep {
			res.Harvester = h
			res.Engine = eng
		} else {
			h.Release()
		}
	}
}
