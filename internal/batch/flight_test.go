package batch

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"harvsim/internal/harvester"
)

// countingEngineRuns wires a counter into the fresh-run path via a pure
// (MetricKey-declared) metric: the closure only executes on a real
// simulation, never on a cache or singleflight hit, so its call count is
// the number of engine runs the batch performed.
func countingJob(count *atomic.Int64) Job {
	return Job{
		Scenario:  cacheScenario(),
		Engine:    harvester.Proposed,
		MetricKey: "rms-counted",
		Metric: func(h *harvester.Harvester, eng harvester.Engine) float64 {
			count.Add(1)
			settled := h.PMultIn.Slice(0.25/3, 0.25)
			return settled.RMS()
		},
	}
}

// TestSingleflightDedupesWithinRun submits many identical jobs through a
// wide pool and asserts exactly one engine run happened: every other job
// either hit the cache (leader finished before it looked) or waited on
// the in-flight computation (Shared).
func TestSingleflightDedupesWithinRun(t *testing.T) {
	var engineRuns atomic.Int64
	const n = 16
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = countingJob(&engineRuns)
	}
	c := NewCache(0)
	results := Run(context.Background(), jobs, Options{Workers: 8, Cache: c})

	if got := engineRuns.Load(); got != 1 {
		t.Fatalf("identical jobs ran %d engines, want exactly 1 (singleflight)", got)
	}
	var fresh, shared, cached int
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		switch {
		case r.Shared:
			shared++
			if !r.Cached {
				t.Errorf("job %d: Shared without Cached", r.Index)
			}
		case r.Cached:
			cached++
		default:
			fresh++
		}
		samePhysics(t, "dedup member", r, results[0])
	}
	if fresh != 1 {
		t.Errorf("fresh runs %d, want 1 (shared %d, cached %d)", fresh, shared, cached)
	}
	st := c.Stats()
	if st.Shared != int64(shared) {
		t.Errorf("stats.Shared = %d, want %d", st.Shared, shared)
	}
	if st.Hits+st.Misses != n {
		t.Errorf("lookups %d, want %d", st.Hits+st.Misses, n)
	}
}

// TestSingleflightDedupesAcrossRuns is the sweep-server situation: two
// concurrent Run calls (two client requests) over one shared cache, same
// job identity — the engine must run once in total.
func TestSingleflightDedupesAcrossRuns(t *testing.T) {
	var engineRuns atomic.Int64
	c := NewCache(0)
	const clients = 4
	var wg sync.WaitGroup
	resCh := make(chan Result, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := Run(context.Background(), []Job{countingJob(&engineRuns)},
				Options{Workers: 1, Cache: c})[0]
			resCh <- r
		}()
	}
	wg.Wait()
	close(resCh)
	if got := engineRuns.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d engines, want 1", clients, got)
	}
	var first *Result
	for r := range resCh {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		r := r
		if first == nil {
			first = &r
			continue
		}
		samePhysics(t, "cross-run member", r, *first)
	}
}

// TestFlightReprobe pins the miss-then-lead window: a caller whose Get
// missed but that acquires leadership after the previous leader has
// already published must serve the published snapshot (as shared), not
// lead a redundant run.
func TestFlightReprobe(t *testing.T) {
	c := NewCache(0)
	var key CacheKey
	key[0] = 7
	c.Put(key, Snapshot{Metric: 42})
	snap, err, shared := c.flightDo(key, func() (Snapshot, error) {
		t.Error("flightDo re-ran an already-published computation")
		return Snapshot{}, nil
	})
	if !shared || err != nil || snap.Metric != 42 {
		t.Fatalf("re-probe: shared=%v err=%v snap=%+v", shared, err, snap)
	}
	if st := c.Stats(); st.Shared != 1 {
		t.Errorf("stats.Shared = %d, want 1", st.Shared)
	}
}

// TestSingleflightPropagatesError: followers of a failing leader get the
// leader's error (identical identities fail identically) and nothing is
// stored.
func TestSingleflightPropagatesError(t *testing.T) {
	sc := cacheScenario()
	sc.Shifts = []harvester.FreqShift{{T: 99, Hz: 71}} // outside the 0.25 s horizon
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Scenario: sc, Engine: harvester.Proposed}
	}
	c := NewCache(0)
	results := Run(context.Background(), jobs, Options{Workers: 4, Cache: c})
	for _, r := range results {
		if r.Err == nil {
			t.Fatalf("job %d: expected schedule error", r.Index)
		}
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("failed jobs stored %d cache entries", st.Entries)
	}
}

// TestInvalidConfigNeverTouchesCache is the regression test for
// validate-before-cache: an invalid Config fails before any key is
// computed, so the cache sees no lookup, no store, and a subsequent
// valid job is unaffected.
func TestInvalidConfigNeverTouchesCache(t *testing.T) {
	bad := cacheScenario()
	bad.Cfg.Microgen.K3 = math.NaN()
	c := NewCache(0)
	res := RunSerial([]Job{{Scenario: bad, Engine: harvester.Proposed}}, Options{Cache: c})[0]
	if res.Err == nil {
		t.Fatal("NaN config did not fail validation")
	}
	if res.Cached {
		t.Fatal("invalid job claims to be cached")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("invalid job touched the cache: %+v", st)
	}

	// The same failure without a cache reports the identical error, so
	// the early validation did not change the no-cache contract.
	plain := RunSerial([]Job{{Scenario: bad, Engine: harvester.Proposed}}, Options{})[0]
	if plain.Err == nil || plain.Err.Error() != res.Err.Error() {
		t.Fatalf("validation error differs with/without cache: %v vs %v", plain.Err, res.Err)
	}
}

// TestCacheEvictionCounter pins the new Evictions counter: inserting
// beyond capacity increments it by exactly the overflow.
func TestCacheEvictionCounter(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 5; i++ {
		var key CacheKey
		key[0] = byte(i)
		c.Put(key, Snapshot{})
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
}

// TestOnResultStreamsEveryJob: the streaming hook fires exactly once per
// job — including jobs cancelled before starting — and each callback
// carries the same Result the ordered slice reports.
func TestOnResultStreamsEveryJob(t *testing.T) {
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{Scenario: cacheScenario(), Engine: harvester.Proposed}
	}
	var mu sync.Mutex
	seen := map[int]Result{}
	opt := Options{Workers: 3, OnResult: func(r Result) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := seen[r.Index]; dup {
			t.Errorf("OnResult fired twice for job %d", r.Index)
		}
		seen[r.Index] = r
	}}
	results := Run(context.Background(), jobs, opt)
	if len(seen) != len(jobs) {
		t.Fatalf("OnResult fired %d times, want %d", len(seen), len(jobs))
	}
	for i, r := range results {
		if seen[i].Err != nil || r.Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, seen[i].Err, r.Err)
		}
		samePhysics(t, "callback vs slice", seen[i], r)
	}

	// Cancelled-before-start jobs are reported too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mu.Lock()
	seen = map[int]Result{}
	mu.Unlock()
	Run(ctx, jobs, opt)
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(jobs) {
		t.Fatalf("cancelled run reported %d results via OnResult, want %d", len(seen), len(jobs))
	}
	for i := range jobs {
		if seen[i].Err == nil {
			t.Errorf("cancelled job %d reported no error", i)
		}
	}
}

// TestPoolCacheRecycles: pools handed back are handed out again.
func TestPoolCacheRecycles(t *testing.T) {
	pc := NewPoolCache()
	p1 := pc.Get()
	pc.Put(p1)
	if got := pc.Get(); got != p1 {
		t.Error("PoolCache did not recycle the returned pool")
	}
	// And the batch path runs cleanly with a shared pool cache.
	jobs := []Job{{Scenario: cacheScenario(), Engine: harvester.Proposed}}
	ref := RunSerial(jobs, Options{})[0]
	for i := 0; i < 2; i++ {
		r := Run(context.Background(), jobs, Options{Pools: pc})[0]
		if r.Err != nil {
			t.Fatalf("pooled run %d: %v", i, r.Err)
		}
		samePhysics(t, "pool-cache run", r, ref)
	}
}
