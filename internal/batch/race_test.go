package batch

// Race-safety tests, designed to run under `go test -race`. The two
// hazards a concurrent scenario runner must not have:
//
//  1. shared-Config aliasing — every job expanded from one base shares
//     the base's pointer-valued Config fields (the Dickson diode and its
//     PWL table). Those are read-only after construction; if any engine
//     path ever writes through them, concurrent jobs race.
//  2. observer capture — per-job Probe/Metric closures run on worker
//     goroutines; state they capture must stay private to their job.

import (
	"context"
	"math"
	"testing"

	"harvsim/internal/harvester"
	"harvsim/internal/trace"
)

// TestSharedConfigRace fans 16 jobs expanded from a single base Config
// across 8 workers. All jobs share the base's *pwl.Diode lookup table;
// the race detector verifies no engine writes through it mid-run.
func TestSharedConfigRace(t *testing.T) {
	base := chargeJob(0.3)
	if base.Scenario.Cfg.Dickson.Diode == nil {
		t.Fatal("test premise broken: no shared diode table in the base config")
	}
	spec := SweepSpec{
		Base: base,
		Axes: []Axis{
			FloatAxis("vc", []float64{2.3, 2.5, 2.7, 2.9},
				func(j *Job, v float64) { j.Scenario.Cfg.InitialVc = v }),
			IntAxis("order", []int{1, 2, 3, 4},
				func(j *Job, v int) { j.Scenario.Cfg.Solver.ABOrder = v }),
		},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Scenario.Cfg.Dickson.Diode != base.Scenario.Cfg.Dickson.Diode {
			t.Fatal("test premise broken: expansion copied the diode table")
		}
	}
	results := Run(context.Background(), jobs, Options{Workers: 8})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if r.RMSPower <= 0 || math.IsNaN(r.RMSPower) {
			t.Fatalf("%s: degenerate power %v", r.Name, r.RMSPower)
		}
	}
	// Different initial voltages must yield different physics — if the
	// jobs had silently shared mutable state, they would collapse onto
	// one trajectory.
	if results[0].FinalVc == results[12].FinalVc {
		t.Fatalf("distinct configs produced identical final Vc %v", results[0].FinalVc)
	}
}

// TestObserverCaptureRace gives every job a Probe that records into its
// own trace and a Metric that reads it back, across enough workers that
// any cross-job capture shows up under -race (and as cross-talk in the
// per-job sample counts).
func TestObserverCaptureRace(t *testing.T) {
	const n = 12
	jobs := make([]Job, n)
	recs := make([]*trace.Series, n)
	for i := range jobs {
		i := i
		job := chargeJob(0.2 + 0.05*float64(i%3))
		recs[i] = trace.NewSeries("store-power")
		rec := recs[i]
		job.Probe = func(h *harvester.Harvester, eng harvester.Engine) {
			idxVc := h.Sys.MustTerminal("Vc")
			idxIc := h.Sys.MustTerminal("Ic")
			eng.Observe(func(tm float64, x, y []float64) {
				rec.Append(tm, y[idxVc]*y[idxIc])
			})
		}
		job.Metric = func(h *harvester.Harvester, eng harvester.Engine) float64 {
			return float64(rec.Len())
		}
		jobs[i] = job
	}
	results := Run(context.Background(), jobs, Options{Workers: n})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if recs[i].Len() == 0 {
			t.Fatalf("job %d probe never fired", i)
		}
		if int(r.Metric) != recs[i].Len() {
			t.Fatalf("job %d metric saw %d samples, series has %d (cross-job capture?)",
				i, int(r.Metric), recs[i].Len())
		}
		// The recorded horizon must match this job's own duration, not a
		// sibling's.
		lastT, _ := recs[i].Last()
		if want := jobs[i].Scenario.Duration; math.Abs(lastT-want) > 1e-6 {
			t.Fatalf("job %d recorded to t=%v, want %v (observer crossed jobs)",
				i, lastT, want)
		}
	}
}
