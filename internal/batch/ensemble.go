package batch

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Seeds derives n realisation seeds from a base seed — the repo's one
// seed-derivation rule (documented in DESIGN.md): seed_i is the i-th
// output of a splitmix64 generator initialised with base. The mapping is
// a bijective mix at every step, so distinct bases give statistically
// unrelated streams, nearby bases do not give nearby seeds, and the
// expansion is reproducible anywhere (a shard or a cache on another
// machine derives the identical job identities from (base, n)).
func Seeds(base uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	out := make([]uint64, n)
	state := base
	for i := range out {
		state += 0x9E3779B97F4A7C15
		z := state
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		out[i] = z
	}
	return out
}

// EnsemblePoint is one design point's reduction over its seed
// realisations: the sample mean, unbiased sample variance and the 95%
// confidence half-width of the per-realisation Metric. Realisations are
// accumulated in job order, so the reduction is deterministic across
// serial and pooled execution (both return results in job order).
type EnsemblePoint struct {
	Group   string // shared Job.Group (or Name) of the realisations
	Indices []int  // result indices of the members, in job order
	N       int    // successful realisations
	Failed  int    // failed realisations (excluded from the statistics)

	Mean     float64 // sample mean of Metric over the N realisations
	Variance float64 // unbiased (n-1) sample variance of Metric
	// CI95 is the 95% confidence half-width of the mean under the
	// Student-t model: t_{0.975, N-1} * sqrt(Variance/N). Zero when
	// N < 2. The interval is Mean ± CI95.
	CI95 float64

	MeanVc float64 // sample mean of the final supercap voltage

	// Basin-aware reduction (bistable workloads; zero/nil when no member
	// reported a final basin). A bistable ensemble splits across
	// attractors — some seeds stay captured in one well, some keep
	// jumping on the energetic inter-well orbit — and the plain mean
	// averages over qualitatively different responses. These fields keep
	// the split visible.

	// HighOrbitFrac is the fraction of successful realisations still
	// crossing between wells inside the settled window (SettledTransits
	// > 0) — the probability the design holds the high-power orbit.
	HighOrbitFrac float64
	// MeanTransits is the mean full-run inter-well transit count over
	// the successful realisations.
	MeanTransits float64
	// Basins holds per-final-basin Student-t statistics of Metric, in
	// ascending basin order (-1, 0, +1); basins with no members are
	// omitted. Deterministic across dispatch modes like the rest of the
	// reduction.
	Basins []BasinStat
}

// BasinStat is the Metric statistics of the realisations that ended in
// one basin (keyed by the sign of the final well).
type BasinStat struct {
	Basin    int     // -1 or +1 (0 = never classified)
	N        int     // successful realisations ending in this basin
	Mean     float64 // sample mean of Metric
	Variance float64 // unbiased sample variance of Metric
	CI95     float64 // Student-t 95% half-width; 0 when N < 2
}

// tCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (exact table for df <= 30, the normal-limit 1.960
// beyond — ~3.9% under the exact 2.0395 at df 31, converging upward).
func tCrit95(df int) float64 {
	table := [...]float64{
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
		11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
		16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
		21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
		26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
	}
	if df < 1 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.960
}

// Ensembles groups results by Job.Group (falling back to Name) and
// reduces each group, preserving first-occurrence order. With a
// SeedAxis-expanded sweep each group is one design point and each member
// one seed realisation; without ensemble axes every group has one
// member (variance and CI are zero) so the reduction degrades
// gracefully to the per-job view.
func Ensembles(results []Result) []EnsemblePoint {
	order := make([]string, 0)
	byGroup := map[string]*EnsemblePoint{}
	for i, r := range results {
		g := r.Job.Group
		if g == "" {
			g = r.Name
		}
		p, ok := byGroup[g]
		if !ok {
			p = &EnsemblePoint{Group: g}
			byGroup[g] = p
			order = append(order, g)
		}
		p.Indices = append(p.Indices, i)
		if r.Err != nil {
			p.Failed++
		}
	}
	points := make([]EnsemblePoint, 0, len(order))
	for _, g := range order {
		p := byGroup[g]
		reduce(p, results)
		reduceBasins(p, results)
		points = append(points, *p)
	}
	return points
}

// reduce fills a point's statistics from its members using the two-pass
// mean/variance algorithm (numerically stable, and summed in fixed job
// order for determinism).
func reduce(p *EnsemblePoint, results []Result) {
	var sum, sumVc float64
	for _, i := range p.Indices {
		if results[i].Err != nil {
			continue
		}
		p.N++
		sum += results[i].Metric
		sumVc += results[i].FinalVc
	}
	if p.N == 0 {
		return
	}
	n := float64(p.N)
	p.Mean = sum / n
	p.MeanVc = sumVc / n
	if p.N < 2 {
		return
	}
	var ss float64
	for _, i := range p.Indices {
		if results[i].Err != nil {
			continue
		}
		d := results[i].Metric - p.Mean
		ss += d * d
	}
	p.Variance = ss / (n - 1)
	p.CI95 = tCrit95(p.N-1) * math.Sqrt(p.Variance/n)
}

// reduceBasins fills a point's basin-aware statistics. Skipped entirely
// (nil Basins, zero fractions) when no member reported a final basin,
// so monostable sweeps reduce exactly as before.
func reduceBasins(p *EnsemblePoint, results []Result) {
	if p.N == 0 {
		return
	}
	any := false
	high, transits := 0, 0
	for _, i := range p.Indices {
		if results[i].Err != nil {
			continue
		}
		if results[i].FinalBasin != 0 {
			any = true
		}
		transits += results[i].Transits
		if results[i].SettledTransits > 0 {
			high++
		}
	}
	if !any {
		return
	}
	n := float64(p.N)
	p.HighOrbitFrac = float64(high) / n
	p.MeanTransits = float64(transits) / n
	for _, basin := range [...]int{-1, 0, 1} {
		var bs BasinStat
		bs.Basin = basin
		var sum float64
		for _, i := range p.Indices {
			if results[i].Err != nil || results[i].FinalBasin != basin {
				continue
			}
			bs.N++
			sum += results[i].Metric
		}
		if bs.N == 0 {
			continue
		}
		bn := float64(bs.N)
		bs.Mean = sum / bn
		if bs.N >= 2 {
			var ss float64
			for _, i := range p.Indices {
				if results[i].Err != nil || results[i].FinalBasin != basin {
					continue
				}
				d := results[i].Metric - bs.Mean
				ss += d * d
			}
			bs.Variance = ss / (bn - 1)
			bs.CI95 = tCrit95(bs.N-1) * math.Sqrt(bs.Variance/bn)
		}
		p.Basins = append(p.Basins, bs)
	}
}

// EnsembleTop returns the k points with the largest ensemble Mean, in
// descending order (ties broken by first member index, so the ranking
// is deterministic). Points whose successful members produced a NaN
// mean rank after every finite-mean point; points with no successful
// member rank last of all.
func EnsembleTop(points []EnsemblePoint, k int) []EnsemblePoint {
	out := append([]EnsemblePoint(nil), points...)
	// tier partitions the points into a totally ordered hierarchy so the
	// comparator satisfies strict weak ordering even with NaN means: a
	// bare `Mean > Mean` comparison is false both ways for NaN, which
	// would otherwise make NaN points compare "equal" to everything and
	// the sort order nondeterministic.
	tier := func(p EnsemblePoint) int {
		switch {
		case p.N == 0:
			return 2
		case math.IsNaN(p.Mean):
			return 1
		default:
			return 0
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := tier(out[i]), tier(out[j])
		if ti != tj {
			return ti < tj
		}
		if ti == 0 && out[i].Mean != out[j].Mean {
			return out[i].Mean > out[j].Mean
		}
		return out[i].Indices[0] < out[j].Indices[0]
	})
	if k < 0 {
		k = 0
	}
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// EnsembleTable renders ensemble points as a fixed-width table: rank,
// group, ensemble mean with its 95% CI half-width, sample standard
// deviation, realisation count and mean final voltage.
func EnsembleTable(points []EnsemblePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-40s %12s %12s %10s %6s %10s\n",
		"#", "group", "mean", "ci95", "stddev", "n", "mean Vc")
	for i, p := range points {
		if p.N == 0 {
			fmt.Fprintf(&b, "%-4d %-40s all %d realisations failed\n", i+1, p.Group, p.Failed)
			continue
		}
		fmt.Fprintf(&b, "%-4d %-40s %12.5g %12.3g %10.3g %6d %10.4f\n",
			i+1, p.Group, p.Mean, p.CI95, math.Sqrt(p.Variance), p.N, p.MeanVc)
		if len(p.Basins) > 0 {
			fmt.Fprintf(&b, "     %-40s high-orbit %.2f  transits %.1f ",
				"", p.HighOrbitFrac, p.MeanTransits)
			for _, bs := range p.Basins {
				fmt.Fprintf(&b, " basin %+d: %.5g ±%.3g (n %d)", bs.Basin, bs.Mean, bs.CI95, bs.N)
			}
			b.WriteByte('\n')
		}
		if p.Failed > 0 {
			fmt.Fprintf(&b, "     %-40s (%d failed realisations excluded)\n", "", p.Failed)
		}
	}
	return b.String()
}
