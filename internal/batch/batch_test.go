package batch

import (
	"context"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"harvsim/internal/harvester"
)

// chargeJob is a short non-autonomous charge run from a working point —
// cheap enough to fan out by the dozen in tests.
func chargeJob(duration float64) Job {
	sc := harvester.ChargeScenario(duration)
	sc.Cfg.InitialVc = 2.5
	return Job{Scenario: sc, Engine: harvester.Proposed}
}

func TestSweepExpansion(t *testing.T) {
	spec := SweepSpec{
		Base: Job{Name: "base", Scenario: harvester.ChargeScenario(1)},
		Axes: []Axis{
			FloatAxis("rc", []float64{100, 200}, func(j *Job, v float64) {
				j.Scenario.Cfg.Microgen.Rc = v
			}),
			IntAxis("stages", []int{3, 4, 5}, func(j *Job, v int) {
				j.Scenario.Cfg.Dickson.Stages = v
			}),
		},
	}
	if got := spec.Size(); got != 6 {
		t.Fatalf("Size = %d, want 6", got)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("expanded %d jobs, want 6", len(jobs))
	}
	// Row-major: last axis fastest.
	wantNames := []string{
		"base[rc=100 stages=3]", "base[rc=100 stages=4]", "base[rc=100 stages=5]",
		"base[rc=200 stages=3]", "base[rc=200 stages=4]", "base[rc=200 stages=5]",
	}
	for i, j := range jobs {
		if j.Name != wantNames[i] {
			t.Fatalf("job %d name = %q, want %q", i, j.Name, wantNames[i])
		}
	}
	if jobs[0].Scenario.Cfg.Microgen.Rc != 100 || jobs[5].Scenario.Cfg.Microgen.Rc != 200 {
		t.Fatalf("rc axis not applied: %g, %g",
			jobs[0].Scenario.Cfg.Microgen.Rc, jobs[5].Scenario.Cfg.Microgen.Rc)
	}
	if jobs[2].Scenario.Cfg.Dickson.Stages != 5 || jobs[3].Scenario.Cfg.Dickson.Stages != 3 {
		t.Fatalf("stages axis not applied")
	}
}

func TestSweepExpansionNoAxes(t *testing.T) {
	jobs, err := SweepSpec{Base: chargeJob(1)}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("axisless sweep expanded to %d jobs, want 1", len(jobs))
	}
}

func TestSweepEmptyAxisRejected(t *testing.T) {
	_, err := SweepSpec{Base: chargeJob(1), Axes: []Axis{{Name: "empty"}}}.Jobs()
	if err == nil {
		t.Fatal("empty axis must be rejected")
	}
}

// TestJobsAtMatchesJobs pins the selective expansion against the full
// one: the shard coordinator sends workers index subsets, and the jobs a
// worker materialises via JobsAt must be identical — name, group, seed
// and content-addressed identity — to the same indices of Jobs().
func TestJobsAtMatchesJobs(t *testing.T) {
	spec := SweepSpec{
		Base: Job{Name: "grid", Scenario: harvester.ChargeScenario(1)},
		Axes: []Axis{
			FloatAxis("rc", []float64{100, 200, 300}, func(j *Job, v float64) {
				j.Scenario.Cfg.Microgen.Rc = v
			}),
			SeedAxis("seed", []uint64{1, 2}, func(j *Job, s uint64) {
				j.Scenario.Cfg.VibNoise.Seed = s
			}),
			IntAxis("stages", []int{3, 4}, func(j *Job, v int) {
				j.Scenario.Cfg.Dickson.Stages = v
			}),
		},
	}
	all, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	indices := []int{0, 3, 7, len(all) - 1}
	subset, err := spec.JobsAt(indices)
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != len(indices) {
		t.Fatalf("JobsAt expanded %d jobs, want %d", len(subset), len(indices))
	}
	opt := Options{}
	for i, gi := range indices {
		got, want := subset[i], all[gi]
		if got.Name != want.Name || got.Group != want.Group || got.Seed != want.Seed {
			t.Fatalf("JobsAt[%d] labels = (%q,%q,%d), want Jobs[%d] = (%q,%q,%d)",
				i, got.Name, got.Group, got.Seed, gi, want.Name, want.Group, want.Seed)
		}
		if KeyOf(got, opt) != KeyOf(want, opt) {
			t.Fatalf("JobsAt[%d] identity differs from Jobs[%d]", i, gi)
		}
	}
	for _, bad := range [][]int{{-1}, {len(all)}} {
		if _, err := spec.JobsAt(bad); err == nil {
			t.Fatalf("JobsAt(%v) must reject out-of-range index", bad)
		}
	}
}

// TestKeys pins the exported key-string list the coordinator hashes:
// cacheable jobs yield their KeyOf hex, uncacheable jobs yield "".
func TestKeys(t *testing.T) {
	jobs := []Job{chargeJob(1), chargeJob(2)}
	jobs[1].Probe = func(h *harvester.Harvester, eng harvester.Engine) {} // side effects → uncacheable
	keys := Keys(jobs, Options{})
	if keys[0] != KeyOf(jobs[0], Options{}).String() {
		t.Fatalf("Keys[0] = %q, want KeyOf hex", keys[0])
	}
	if keys[1] != "" {
		t.Fatalf("Keys[1] = %q for uncacheable job, want empty", keys[1])
	}
}

func TestSweepCloneNoAliasing(t *testing.T) {
	base := Job{Scenario: harvester.Scenario1(harvester.Quick)}
	spec := SweepSpec{
		Base: base,
		Axes: []Axis{FloatAxis("hz", []float64{70.5, 71, 71.5}, func(j *Job, v float64) {
			j.Scenario.Shifts[0].Hz = v
		})},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if base.Scenario.Shifts[0].Hz != 71 {
		t.Fatalf("base scenario mutated through a sweep point: %+v", base.Scenario.Shifts)
	}
	for i, want := range []float64{70.5, 71, 71.5} {
		if got := jobs[i].Scenario.Shifts[0].Hz; got != want {
			t.Fatalf("job %d shift = %g, want %g (aliased Shifts?)", i, got, want)
		}
	}
}

// TestPooledMatchesSerial is the determinism contract: a pooled run must
// produce bit-identical physics to the serial reference, job for job.
func TestPooledMatchesSerial(t *testing.T) {
	spec := SweepSpec{
		Base: chargeJob(0.4),
		Axes: []Axis{FloatAxis("rc", []float64{100, 250, 500, 1000, 2000, 4000},
			func(j *Job, v float64) { j.Scenario.Cfg.Microgen.Rc = v })},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	serial := RunSerial(jobs, Options{})
	pooled := Run(context.Background(), jobs, Options{Workers: 8})
	if len(serial) != len(pooled) {
		t.Fatalf("length mismatch %d vs %d", len(serial), len(pooled))
	}
	for i := range serial {
		s, p := serial[i], pooled[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("job %d failed: serial=%v pooled=%v", i, s.Err, p.Err)
		}
		if p.Index != i || p.Name != s.Name {
			t.Fatalf("job %d out of order: index=%d name=%q", i, p.Index, p.Name)
		}
		if math.Float64bits(s.RMSPower) != math.Float64bits(p.RMSPower) ||
			math.Float64bits(s.FinalVc) != math.Float64bits(p.FinalVc) {
			t.Fatalf("job %d metrics differ: serial (%v, %v) pooled (%v, %v)",
				i, s.RMSPower, s.FinalVc, p.RMSPower, p.FinalVc)
		}
		if len(s.FinalState) != len(p.FinalState) {
			t.Fatalf("job %d state length differs", i)
		}
		for k := range s.FinalState {
			if math.Float64bits(s.FinalState[k]) != math.Float64bits(p.FinalState[k]) {
				t.Fatalf("job %d state[%d] differs: %v vs %v",
					i, k, s.FinalState[k], p.FinalState[k])
			}
		}
		if s.Stats.Steps != p.Stats.Steps {
			t.Fatalf("job %d step counts differ: %d vs %d", i, s.Stats.Steps, p.Stats.Steps)
		}
	}
}

func TestErrorCaptureIsolated(t *testing.T) {
	good := chargeJob(0.3)
	bad := chargeJob(0.3)
	bad.Scenario.Shifts = []harvester.FreqShift{{T: 5, Hz: 71}} // beyond horizon
	results := Run(context.Background(), []Job{good, bad, good}, Options{Workers: 3})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid job must report its error")
	}
	if results[0].RMSPower <= 0 || results[2].RMSPower <= 0 {
		t.Fatalf("healthy jobs produced no power metric")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = chargeJob(0.3)
	}
	// Cancel from inside the first job: with a single worker, jobs 1..7
	// are deterministically still unscheduled at that moment.
	jobs[0].Probe = func(h *harvester.Harvester, eng harvester.Engine) { cancel() }
	results := Run(ctx, jobs, Options{Workers: 1})
	if results[0].Err != nil {
		t.Fatalf("in-flight job should complete: %v", results[0].Err)
	}
	cancelled := 0
	for _, r := range results[1:] {
		if r.Err == context.Canceled {
			cancelled++
		}
	}
	if cancelled != len(jobs)-1 {
		t.Fatalf("cancelled %d of %d pending jobs, want all", cancelled, len(jobs)-1)
	}
}

func TestMetricAndProbeHooks(t *testing.T) {
	job := chargeJob(0.4)
	var observed int
	job.Probe = func(h *harvester.Harvester, eng harvester.Engine) {
		eng.Observe(func(tm float64, x, y []float64) { observed++ })
	}
	job.Metric = func(h *harvester.Harvester, eng harvester.Engine) float64 {
		return h.Energy.Harvested
	}
	res := RunSerial([]Job{job}, Options{})[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if observed == 0 {
		t.Fatal("probe-attached observer never fired")
	}
	if res.Metric != res.Energy.Harvested || res.Metric <= 0 {
		t.Fatalf("custom metric not captured: metric=%v harvested=%v",
			res.Metric, res.Energy.Harvested)
	}
}

func TestKeepOption(t *testing.T) {
	job := chargeJob(0.3)
	dropped := RunSerial([]Job{job}, Options{})[0]
	if dropped.Harvester != nil || dropped.Engine != nil {
		t.Fatal("artifacts retained without Keep")
	}
	kept := RunSerial([]Job{job}, Options{Keep: true})[0]
	if kept.Harvester == nil || kept.Engine == nil {
		t.Fatal("Keep did not retain artifacts")
	}
	if kept.Harvester.VcTrace.Len() == 0 {
		t.Fatal("kept harvester has no traces")
	}
}

func TestSummaryAndTop(t *testing.T) {
	spec := SweepSpec{
		Base: chargeJob(0.4),
		Axes: []Axis{FloatAxis("rc", []float64{250, 500, 4000},
			func(j *Job, v float64) { j.Scenario.Cfg.Microgen.Rc = v })},
	}
	results, err := Sweep(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(results)
	if s.Jobs != 3 || s.Failed != 0 {
		t.Fatalf("summary counts wrong: %+v", s)
	}
	if s.ArgMaxMetric < 0 || s.MaxMetric < s.MinMetric {
		t.Fatalf("summary extrema wrong: %+v", s)
	}
	if results[s.ArgMaxMetric].Metric != s.MaxMetric {
		t.Fatalf("argmax does not attain max")
	}
	top := Top(results, 2)
	if len(top) != 2 || top[0].Metric < top[1].Metric {
		t.Fatalf("Top misordered: %+v", top)
	}
	if top[0].Metric != s.MaxMetric {
		t.Fatalf("Top[0] is not the argmax")
	}
	if out := Table(top); !strings.Contains(out, top[0].Name) {
		t.Fatalf("table missing winner: %s", out)
	}
	if out := s.String(); !strings.Contains(out, "jobs 3") {
		t.Fatalf("summary render wrong: %s", out)
	}
}

// TestPoolSpeedup is the acceptance gate for the concurrent runner: on a
// machine with at least 4 cores, a 64-point sweep must finish in under
// half the serial wall-clock (the paper's speedup story, applied to the
// sweep dimension instead of the per-step dimension).
func TestPoolSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short")
	}
	if raceEnabled {
		t.Skip("speedup gate skipped under the race detector (instrumentation serialises the pool)")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores for the speedup gate, have %d", runtime.NumCPU())
	}
	spec := SweepSpec{
		Base: chargeJob(1.0),
		Axes: []Axis{
			FloatAxis("rc", []float64{100, 180, 320, 560, 1000, 1800, 3200, 5600},
				func(j *Job, v float64) { j.Scenario.Cfg.Microgen.Rc = v }),
			IntAxis("stages", []int{3, 4, 5, 6, 7, 8, 9, 10},
				func(j *Job, v int) { j.Scenario.Cfg.Dickson.Stages = v }),
		},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 64 {
		t.Fatalf("grid is %d points, want 64", len(jobs))
	}
	t0 := time.Now()
	serial := RunSerial(jobs, Options{})
	serialWall := time.Since(t0)
	t0 = time.Now()
	pooled := Run(context.Background(), jobs, Options{})
	pooledWall := time.Since(t0)
	for i := range jobs {
		if serial[i].Err != nil || pooled[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, serial[i].Err, pooled[i].Err)
		}
		if math.Float64bits(serial[i].FinalVc) != math.Float64bits(pooled[i].FinalVc) {
			t.Fatalf("job %d pooled result drifted from serial", i)
		}
	}
	t.Logf("serial %v, pooled %v (%.2fx) on %d cores",
		serialWall, pooledWall, float64(serialWall)/float64(pooledWall), runtime.NumCPU())
	if pooledWall >= serialWall/2 {
		t.Fatalf("pooled %v not under 0.5x serial %v", pooledWall, serialWall)
	}
}
