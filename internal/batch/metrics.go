package batch

import (
	"time"

	"harvsim/internal/metrics"
)

// Metrics is the batch layer's instrument bundle. A long-lived front-end
// (the sweep server, the shard coordinator's workers) creates one per
// process with NewMetrics and sets it on every Run's Options; the
// counters then accumulate across requests, which is what a scrape-based
// collector wants. A nil *Metrics (the zero Options) records nothing —
// every instrument is nil-safe — so library callers and tests pay no
// observability tax.
type Metrics struct {
	// Jobs counts every job that produced a Result, whatever its outcome
	// (fresh, cached, shared, failed, cancelled-before-start).
	Jobs *metrics.Counter
	// Failed counts results with a non-nil Err, cancellations included.
	Failed *metrics.Counter
	// CacheHits counts results served from the content-addressed cache
	// (Result.Cached), singleflight shares included.
	CacheHits *metrics.Counter
	// Shared counts the singleflight subset of cache hits
	// (Result.Shared): jobs that waited on an identical in-flight
	// computation instead of recomputing it.
	Shared *metrics.Counter
	// LockstepUnits / LockstepMembers count multi-member ensemble units
	// dispatched in lockstep and the jobs marched inside them — their
	// ratio is the realised ensemble width.
	LockstepUnits   *metrics.Counter
	LockstepMembers *metrics.Counter
	// EngineRunSeconds observes the wall time of every engine march that
	// actually simulated: one observation per fresh singleton run, one
	// per lockstep unit (the unit marches as a single engine pass).
	// Cache hits and shares are excluded — they elide the engine.
	EngineRunSeconds *metrics.Histogram
}

// NewMetrics registers the batch instrument bundle on r under the
// harvsim_batch_* namespace and returns it. Register at most once per
// registry (duplicate names panic, by design).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Jobs:      r.Counter("harvsim_batch_jobs_total", "Jobs that produced a result, whatever the outcome."),
		Failed:    r.Counter("harvsim_batch_failed_total", "Jobs whose result carries an error (cancellations included)."),
		CacheHits: r.Counter("harvsim_batch_cache_hits_total", "Jobs served from the content-addressed result cache (singleflight shares included)."),
		Shared:    r.Counter("harvsim_batch_shared_total", "Cache hits obtained by waiting on an identical in-flight computation (singleflight)."),
		LockstepUnits: r.Counter("harvsim_batch_lockstep_units_total",
			"Multi-member seed-ensemble units dispatched in lockstep."),
		LockstepMembers: r.Counter("harvsim_batch_lockstep_members_total",
			"Jobs marched inside multi-member lockstep units."),
		EngineRunSeconds: r.Histogram("harvsim_batch_engine_run_seconds",
			"Wall time of engine marches that actually simulated (one observation per fresh run or lockstep unit).", nil),
	}
}

// observe records one finished Result. Safe on a nil receiver.
func (m *Metrics) observe(res Result) {
	if m == nil {
		return
	}
	m.Jobs.Inc()
	if res.Err != nil {
		m.Failed.Inc()
	}
	if res.Cached {
		m.CacheHits.Inc()
	}
	if res.Shared {
		m.Shared.Inc()
	}
}

// observeEngineRun records the wall time of one engine march. Safe on a
// nil receiver.
func (m *Metrics) observeEngineRun(d time.Duration) {
	if m == nil {
		return
	}
	m.EngineRunSeconds.Observe(d.Seconds())
}

// observeLockstepUnit records the dispatch of one multi-member lockstep
// unit. Safe on a nil receiver.
func (m *Metrics) observeLockstepUnit(members int) {
	if m == nil {
		return
	}
	m.LockstepUnits.Inc()
	m.LockstepMembers.Add(int64(members))
}
