package batch

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"harvsim/internal/harvester"
)

func TestSeedsDerivation(t *testing.T) {
	a := Seeds(42, 8)
	b := Seeds(42, 8)
	if len(a) != 8 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds is not deterministic")
		}
	}
	seen := map[uint64]bool{}
	for _, s := range append(a, Seeds(43, 8)...) {
		if seen[s] {
			t.Fatalf("duplicate seed %d across bases 42/43", s)
		}
		seen[s] = true
	}
	if Seeds(1, 0) != nil || Seeds(1, -3) != nil {
		t.Error("non-positive n should return nil")
	}
}

// TestSeedAxisGrouping: the expansion names jobs with the seed label but
// groups them by design point only.
func TestSeedAxisGrouping(t *testing.T) {
	base := harvester.NoiseScenario(0.5, 55, 85, 0)
	spec := SweepSpec{
		Base: Job{Name: "ens", Scenario: base, Engine: harvester.Proposed},
		Axes: []Axis{
			IntAxis("stages", []int{3, 5}, func(j *Job, n int) { j.Scenario.Cfg.Dickson.Stages = n }),
			SeedAxis("seed", Seeds(7, 3), func(j *Job, s uint64) { j.Scenario.Cfg.VibNoise.Seed = s }),
		},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("expanded %d jobs, want 6", len(jobs))
	}
	groups := map[string]int{}
	for _, j := range jobs {
		if !strings.Contains(j.Name, "seed=") {
			t.Errorf("job name %q lacks the seed label", j.Name)
		}
		if strings.Contains(j.Group, "seed=") {
			t.Errorf("group %q contains the ensemble label", j.Group)
		}
		if !strings.Contains(j.Group, "stages=") {
			t.Errorf("group %q lacks the design label", j.Group)
		}
		if j.Seed == 0 || j.Scenario.Cfg.VibNoise.Seed != j.Seed {
			t.Errorf("job %q: Seed label %d vs config seed %d", j.Name, j.Seed, j.Scenario.Cfg.VibNoise.Seed)
		}
		groups[j.Group]++
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(groups), groups)
	}
	for g, n := range groups {
		if n != 3 {
			t.Errorf("group %q has %d realisations, want 3", g, n)
		}
	}
}

// TestEnsembleStatistics checks the estimators on hand-computable
// synthetic results: mean, unbiased variance, Student-t CI, failure
// exclusion and single-member degradation.
func TestEnsembleStatistics(t *testing.T) {
	mk := func(group string, metric, vc float64, err error) Result {
		return Result{Job: Job{Group: group}, Metric: metric, FinalVc: vc, Err: err}
	}
	results := []Result{
		mk("g1", 1, 2.0, nil),
		mk("g2", 10, 3.0, nil),
		mk("g1", 2, 2.2, nil),
		mk("g1", 3, 2.4, nil),
		mk("g1", 999, 9.9, errors.New("boom")), // excluded
	}
	points := Ensembles(results)
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	g1 := points[0]
	if g1.Group != "g1" || g1.N != 3 || g1.Failed != 1 {
		t.Fatalf("g1 = %+v", g1)
	}
	if g1.Mean != 2 {
		t.Errorf("g1 mean = %v, want 2", g1.Mean)
	}
	if g1.Variance != 1 {
		t.Errorf("g1 variance = %v, want 1 (unbiased)", g1.Variance)
	}
	wantCI := 4.303 * math.Sqrt(1.0/3.0) // t_{0.975,2} * sqrt(s^2/n)
	if math.Abs(g1.CI95-wantCI) > 1e-12 {
		t.Errorf("g1 CI95 = %v, want %v", g1.CI95, wantCI)
	}
	if want := (2.0 + 2.2 + 2.4) / 3; math.Abs(g1.MeanVc-want) > 1e-15 {
		t.Errorf("g1 MeanVc = %v, want %v", g1.MeanVc, want)
	}
	g2 := points[1]
	if g2.N != 1 || g2.Mean != 10 || g2.Variance != 0 || g2.CI95 != 0 {
		t.Errorf("single-member g2 = %+v", g2)
	}
}

func TestEnsembleTopOrdering(t *testing.T) {
	mk := func(group string, metric float64) Result {
		return Result{Job: Job{Group: group}, Metric: metric}
	}
	results := []Result{
		mk("lo", 1), mk("hi", 9), mk("mid", 5),
		{Job: Job{Group: "dead"}, Err: errors.New("x")},
	}
	top := EnsembleTop(Ensembles(results), 10)
	order := []string{"hi", "mid", "lo", "dead"}
	for i, want := range order {
		if top[i].Group != want {
			t.Fatalf("rank %d = %q, want %q", i, top[i].Group, want)
		}
	}
	if got := EnsembleTop(Ensembles(results), 2); len(got) != 2 {
		t.Errorf("k=2 returned %d points", len(got))
	}
	table := EnsembleTable(top)
	if !strings.Contains(table, "hi") || !strings.Contains(table, "all 1 realisations failed") {
		t.Errorf("table rendering missing expected rows:\n%s", table)
	}
}

// TestEnsembleTopNaNOrdering: a successful member with a NaN metric
// poisons its point's Mean; the comparator must still satisfy strict
// weak ordering (a bare Mean comparison is false both ways for NaN,
// leaving the sort order input-permutation-dependent). NaN-mean points
// rank after every finite point and before zero-member points, ties by
// first member index, so every input permutation yields one ranking.
func TestEnsembleTopNaNOrdering(t *testing.T) {
	mk := func(group string, metric float64) Result {
		return Result{Job: Job{Group: group}, Metric: metric}
	}
	results := []Result{
		mk("nan-a", math.NaN()),
		mk("lo", 1),
		{Job: Job{Group: "dead"}, Err: errors.New("x")},
		mk("hi", 9),
		mk("nan-b", math.NaN()),
	}
	// Every rotation of the input must produce the tiered ranking:
	// finite means descending, then the NaN-mean points (by first member
	// index, i.e. order of appearance), then the all-failed point.
	for shift := 0; shift < len(results); shift++ {
		perm := append(append([]Result(nil), results[shift:]...), results[:shift]...)
		for i := range perm {
			perm[i].Index = i
		}
		want := []string{"hi", "lo"}
		for _, r := range perm {
			if math.IsNaN(r.Metric) && r.Err == nil {
				want = append(want, r.Job.Group)
			}
		}
		want = append(want, "dead")
		top := EnsembleTop(Ensembles(perm), 10)
		for i, g := range want {
			if top[i].Group != g {
				t.Fatalf("shift %d: rank %d = %q, want %q", shift, i, top[i].Group, g)
			}
		}
	}
}

// TestEnsembleSerialPooledIdentical: the ensemble reduction of a real
// stochastic sweep is bit-identical between serial and pooled execution
// — the reduction runs in job order over bit-identical results.
func TestEnsembleSerialPooledIdentical(t *testing.T) {
	base := harvester.NoiseScenario(0.4, 55, 85, 0)
	base.Cfg.VibNoise.RMS = 2
	spec := SweepSpec{
		Base: Job{Name: "ens", Scenario: base, Engine: harvester.Proposed},
		Axes: []Axis{
			IntAxis("stages", []int{3, 5}, func(j *Job, n int) { j.Scenario.Cfg.Dickson.Stages = n }),
			SeedAxis("seed", Seeds(42, 4), func(j *Job, s uint64) { j.Scenario.Cfg.VibNoise.Seed = s }),
		},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	serial := Ensembles(RunSerial(jobs, Options{}))
	pooled := Ensembles(Run(context.Background(), jobs, Options{Workers: 4}))
	if len(serial) != len(pooled) || len(serial) != 2 {
		t.Fatalf("point counts: serial %d pooled %d", len(serial), len(pooled))
	}
	for i := range serial {
		s, p := serial[i], pooled[i]
		if s.Group != p.Group || s.N != p.N ||
			s.Mean != p.Mean || s.Variance != p.Variance || s.CI95 != p.CI95 || s.MeanVc != p.MeanVc {
			t.Errorf("point %d differs:\nserial %+v\npooled %+v", i, s, p)
		}
		if s.N != 4 || s.Variance <= 0 || s.CI95 <= 0 {
			t.Errorf("point %d: degenerate ensemble statistics %+v", i, s)
		}
	}
}
