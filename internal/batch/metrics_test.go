package batch

import (
	"context"
	"strings"
	"testing"

	"harvsim/internal/harvester"
	"harvsim/internal/metrics"
)

// TestMetricsAccumulateAcrossRuns pins the instrument semantics the
// service layers scrape: counters accumulate across Run calls on one
// bundle, cache hits don't re-observe the engine histogram, and a
// lockstep unit is one engine observation but len(unit) job counts.
func TestMetricsAccumulateAcrossRuns(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	cache := NewCache(0)
	jobs := seedEnsembleJobs(4, 0.25, harvester.Proposed)
	opt := Options{Cache: cache, Metrics: m}

	RunSerial(jobs, opt)
	if m.Jobs.Value() != 4 || m.Failed.Value() != 0 || m.CacheHits.Value() != 0 {
		t.Fatalf("cold: jobs=%d failed=%d hits=%d", m.Jobs.Value(), m.Failed.Value(), m.CacheHits.Value())
	}
	if m.LockstepUnits.Value() != 1 || m.LockstepMembers.Value() != 4 {
		t.Errorf("cold: lockstep units=%d members=%d", m.LockstepUnits.Value(), m.LockstepMembers.Value())
	}
	if m.EngineRunSeconds.Count() != 1 {
		t.Errorf("cold: engine observations = %d, want 1 (one lockstep march)", m.EngineRunSeconds.Count())
	}

	// Warm rerun as singletons: four cache hits, no new engine marches,
	// no new lockstep units.
	RunSerial(jobs, Options{Cache: cache, Metrics: m, NoLockstep: true})
	if m.Jobs.Value() != 8 || m.CacheHits.Value() != 4 {
		t.Errorf("warm: jobs=%d hits=%d", m.Jobs.Value(), m.CacheHits.Value())
	}
	if m.EngineRunSeconds.Count() != 1 {
		t.Errorf("warm: engine observations = %d, want still 1", m.EngineRunSeconds.Count())
	}

	// A pre-cancelled pooled run reports every job as failed — the
	// stream-accounting contract extends to the counters.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	Run(ctx, jobs, opt)
	if m.Jobs.Value() != 12 || m.Failed.Value() != 4 {
		t.Errorf("cancelled: jobs=%d failed=%d", m.Jobs.Value(), m.Failed.Value())
	}

	// The registry exposes all of it under the harvsim_batch_* namespace.
	var b strings.Builder
	if err := reg.Collect(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"harvsim_batch_jobs_total 12",
		"harvsim_batch_failed_total 4",
		"harvsim_batch_cache_hits_total 4",
		"harvsim_batch_lockstep_units_total 1",
		"harvsim_batch_lockstep_members_total 4",
		"harvsim_batch_engine_run_seconds_count 1",
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, b.String())
		}
	}
}

// TestMetricsNilIsFree: the zero Options must not panic anywhere on the
// dispatch paths (singleton, lockstep, cancelled tail).
func TestMetricsNilIsFree(t *testing.T) {
	jobs := seedEnsembleJobs(2, 0.1, harvester.Proposed)
	RunSerial(jobs, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	Run(ctx, jobs, Options{})
}
