package batch

// In-flight deduplication (singleflight) for the result cache: when two
// workers miss on the same key concurrently — duplicated jobs inside one
// Run, or identical requests racing through a shared long-lived cache
// (the sweep server's situation) — exactly one simulates and the rest
// wait for its snapshot. Without it the documented "both simulate,
// last-write-wins" race is harmless for correctness but wastes a full
// engine run per concurrent duplicate, which at service scale is the
// common case, not the corner case.

// flightCall is one in-flight computation; done is closed when the
// leader has filled snap/err.
type flightCall struct {
	done chan struct{}
	snap Snapshot
	err  error
}

// flightDo executes fn once per key among concurrent callers. The first
// caller (the leader) runs fn and returns shared == false with fn's
// results; every caller arriving while the leader is still running
// blocks until it finishes and returns the leader's snapshot (or error)
// with shared == true. Completed calls are forgotten immediately — the
// leader's Put has already made the snapshot visible to later lookups
// through the cache proper.
//
// Callers arrive here having just missed in Get, but leadership is
// decided later, under flightMu: a previous leader may have published
// its entry and retired in between. Would-be leaders therefore re-probe
// the store before simulating, so that window cannot cause a redundant
// engine run (it resolves as shared, like a wait would have).
//
// The leader is never preempted (engines run to completion), so waiters
// are guaranteed to unblock; the call entry is cleared even if fn
// panics.
func (c *Cache) flightDo(key CacheKey, fn func() (Snapshot, error)) (snap Snapshot, err error, shared bool) {
	c.flightMu.Lock()
	if call, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		<-call.done
		c.mu.Lock()
		c.stats.Shared++
		c.mu.Unlock()
		return call.snap, call.err, true
	}
	if snap, ok := c.peek(key); ok {
		c.flightMu.Unlock()
		c.mu.Lock()
		c.stats.Shared++
		c.mu.Unlock()
		return snap, nil, true
	}
	call := &flightCall{done: make(chan struct{})}
	if c.flight == nil {
		c.flight = make(map[CacheKey]*flightCall)
	}
	c.flight[key] = call
	c.flightMu.Unlock()

	defer func() {
		c.flightMu.Lock()
		delete(c.flight, key)
		c.flightMu.Unlock()
		close(call.done)
	}()
	call.snap, call.err = fn()
	return call.snap, call.err, false
}
