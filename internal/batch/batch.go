// Package batch runs many harvester scenarios concurrently across a
// worker pool — the workload the paper's conclusion motivates ("the best
// topology and optimal parameters of the energy harvester are obtained
// iteratively using multiple simulations") scaled to all available
// cores. Jobs are embarrassingly parallel: each worker assembles its own
// harvester and engine from the job's value-typed Config, so no
// simulation state is shared between goroutines (the only shared data
// are read-only PWL tables). Results come back in job order regardless
// of scheduling, which makes pooled runs bit-identical to serial ones.
//
// # Determinism contract
//
// A job's Result is a pure function of its identity — (Config, scenario
// schedule, engine kind, decimation, settle fraction, metric): equal
// identities produce bit-identical Results whether executed serially,
// across the pool, on recycled workspaces, or in a different process.
// The root determinism test suite pins this. Two layers build on it:
//
//   - the content-addressed result Cache (Options.Cache) keys Results by
//     a collision-safe hash of the job identity (KeyOf) and serves
//     repeat jobs without simulating — refinement sweeps that revisit
//     the argmax region become nearly free;
//   - seed-ensemble statistics (SeedAxis, Ensembles, EnsembleTop,
//     EnsembleTable) expand a sweep over stochastic-excitation seeds and
//     reduce each design point's realisations to mean / variance /
//     confidence-interval power estimates, turning single-draw numbers
//     into honest expectations.
package batch

import (
	"context"
	"runtime"
	"sync"
	"time"

	"harvsim/internal/core"
	"harvsim/internal/harvester"
	"harvsim/internal/implicit"
	"harvsim/internal/tracing"
)

// Phase names of the per-job spans a traced run records (Result.Phases
// keys and internal/tracing span names): the cache probe, the
// assemble-and-march pass, and the engine's factorisation / stability
// shares of the march.
const (
	PhaseProbe     = "probe"
	PhaseMarch     = "march"
	PhaseFactor    = "factor"
	PhaseStability = "stability"
)

// DefaultDecimate bounds per-job trace memory when a job does not choose
// its own decimation: sweeps keep enough waveform for RMS-power metrics
// without retaining every sub-millisecond step of every candidate.
const DefaultDecimate = 64

// Job is one scenario execution request.
type Job struct {
	Name     string
	Scenario harvester.Scenario
	Engine   harvester.EngineKind
	Decimate int // trace decimation; 0 = DefaultDecimate, 1 = keep all

	// Group identifies the design point this job belongs to when a sweep
	// carries an ensemble (seed) axis: all realisations of one point
	// share a Group, and the ensemble reductions (Ensembles, EnsembleTop)
	// aggregate over it. SweepSpec.Jobs fills it in; hand-built job lists
	// may set it directly. Empty means "group by Name".
	Group string

	// Seed is the realisation label a SeedAxis stamped on this job
	// (informational; the physical seed lives wherever the axis setter
	// put it, normally Config.VibNoise.Seed).
	Seed uint64

	// MetricKey declares that the job's Metric closure is a pure,
	// deterministic function of the run, identified by this label, which
	// then enters the cache key. Jobs with a Metric but no MetricKey are
	// never cached: a closure is opaque, so the cache must assume it
	// differs between runs. Ignored when Metric is nil.
	MetricKey string

	// Probe, when set, is called after the engine is built and before it
	// runs — the hook for attaching extra observers (custom recorders,
	// VCD writers). It runs on the worker goroutine. A Probe set on a
	// sweep's Base is shared by every expanded job, so it must derive
	// all per-job state from its (h, eng) arguments; capturing outside
	// state is only safe when the closure is built per job.
	Probe func(h *harvester.Harvester, eng harvester.Engine)

	// Metric, when set, is evaluated after a successful run and stored
	// in Result.Metric — the figure of merit sweeps rank by. When nil,
	// Result.Metric is the settled-window RMS input power. The Base-
	// sharing caveat on Probe applies here too.
	Metric func(h *harvester.Harvester, eng harvester.Engine) float64
}

// EngineStats is the engine-kind-independent slice of the run counters
// (the proposed and implicit engines keep different Stats structs).
type EngineStats struct {
	Steps       int
	Rejected    int
	EventsFired int
	// Refactors counts dense-matrix factorisations: Jyy elimination
	// refreshes for the proposed engine, full Newton-Jacobian LU factors
	// for the implicit baselines.
	Refactors int
	// Solves counts linear-system solves: terminal-variable eliminations
	// (proposed) or Newton iterations (implicit).
	Solves int
	// StabilityRecomputes counts reduced-matrix stability analyses
	// (proposed engine only).
	StabilityRecomputes int
	// Restarts counts multistep-history restarts at discontinuities
	// (proposed engine only).
	Restarts int
	// Allocs/AllocBytes are heap allocations attributed to the run, when
	// the engine measured them (core.Engine.MeasureAllocs).
	Allocs     uint64
	AllocBytes uint64
	HMean      float64
	SimTime    float64
}

// StatsOf extracts the unified counters from either engine family.
func StatsOf(eng harvester.Engine) EngineStats {
	switch e := eng.(type) {
	case *core.Engine:
		return EngineStats{
			Steps:               e.Stats.Steps,
			Rejected:            e.Stats.Rejected,
			EventsFired:         e.Stats.EventsFired,
			Refactors:           e.Stats.Refreshes,
			Solves:              e.Stats.YSolves,
			StabilityRecomputes: e.Stats.StabilityRecomputes,
			Restarts:            e.Stats.Restarts,
			Allocs:              e.Stats.Allocs,
			AllocBytes:          e.Stats.AllocBytes,
			HMean:               e.Stats.HMean,
			SimTime:             e.Stats.SimTime,
		}
	case *implicit.Engine:
		return EngineStats{
			Steps:       e.Stats.Steps,
			Rejected:    e.Stats.Rejected,
			EventsFired: e.Stats.EventsFired,
			Refactors:   e.Stats.LUFactors,
			Solves:      e.Stats.NewtonIters,
			HMean:       e.Stats.HMean,
			SimTime:     e.Stats.SimTime,
		}
	default:
		return EngineStats{}
	}
}

// Result captures one job's outcome. Index matches the job's position in
// the input slice; the results slice is always in input order.
type Result struct {
	Index   int
	Name    string
	Job     Job // the request this result answers (the argmax's configuration)
	Err     error
	Elapsed time.Duration

	FinalVc    float64   // supercap terminal voltage at the horizon
	FinalState []float64 // copy of the engine's state vector
	RMSPower   float64   // RMS input power over the settled window [W]
	MeanPower  float64   // mean input power over the settled window [W]
	Metric     float64   // Job.Metric value, or RMSPower
	Energy     harvester.Energy
	Stats      EngineStats

	// Transits / SettledTransits / FinalBasin are the bistable run's
	// inter-well accounting (harvester.BasinStats): total well-to-well
	// crossings, crossings inside the settled window, and the sign of the
	// final well. All zero for monostable workloads.
	Transits        int
	SettledTransits int
	FinalBasin      int

	// Cached marks a result served from Options.Cache without running an
	// engine. Every other field above is bit-identical to what a fresh
	// run would have produced (Elapsed, which is wall time, is the
	// lookup cost instead of the simulation cost).
	Cached bool

	// Shared marks a cached result obtained by waiting on an identical
	// in-flight computation (singleflight): another worker — possibly
	// serving a different Run on the same Cache — was already simulating
	// this exact job identity, so this job waited for its snapshot
	// instead of recomputing it. Shared implies Cached; Elapsed is the
	// wait time.
	Shared bool

	// Key is the job's content-addressed identity (CacheKey hex),
	// recorded when a cache run computed it — the handle a service
	// front-end or shard coordinator can route and deduplicate by
	// without re-hashing the config. Empty for cache-less runs and
	// uncacheable jobs.
	Key string

	// Phases is the job's per-phase wall-time breakdown (PhaseProbe,
	// PhaseMarch, PhaseFactor, PhaseStability), filled only when the run
	// is traced (Options.Trace). It is observability data, not physics:
	// it never enters cache keys, cache snapshots or summaries, and a
	// traced result is bit-identical to an untraced one on every other
	// field.
	Phases map[string]time.Duration

	// Harvester and Engine are retained only under Options.Keep — a
	// thousand-job sweep must not pin a thousand trace sets.
	Harvester *harvester.Harvester
	Engine    harvester.Engine
}

// Options configures a batch run. The zero value is ready to use.
type Options struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// Keep retains each job's Harvester and Engine in its Result (full
	// traces, stats structs) instead of dropping them after metric
	// extraction.
	Keep bool
	// SettleFrac is the fraction of the horizon discarded before the
	// power metrics are computed (start-up transient); 0 means 1/3.
	SettleFrac float64
	// NoWorkspaceReuse disables the per-worker workspace pools, so every
	// job allocates its Jacobian and engine storage afresh — the PR 1
	// behaviour, kept for A/B benchmarking of the reuse path.
	NoWorkspaceReuse bool

	// NoLockstep disables ensemble-lockstep dispatch: seed-grouped jobs
	// (same non-empty Job.Group, proposed engine, equal horizon) run as
	// independent singletons instead of one shared-factorisation unit.
	// Output is bit-identical either way (the determinism suite pins
	// it); the switch exists for A/B benchmarking and bisection.
	NoLockstep bool

	// Cache, when set, serves cacheable jobs (see Cacheable) from the
	// content-addressed result store instead of simulating, and stores
	// every fresh successful result back. The cache is shared across the
	// worker pool and across Run calls; because a run is a pure function
	// of its job identity, a hit is bit-identical to the run it elides.
	// Concurrent misses on one key — within a Run or across Runs sharing
	// the cache — are deduplicated in flight (singleflight): one worker
	// simulates, the rest wait for its snapshot (Result.Shared).
	Cache *Cache

	// OnResult, when set, is called exactly once per job as its Result
	// becomes available — the streaming hook a long-lived front-end uses
	// to push partial results to clients while the sweep is still
	// running. Calls happen in completion order (not job order) and may
	// run concurrently from every worker goroutine, so the callback must
	// be safe for concurrent use and should return quickly (it runs on
	// the worker's critical path). Jobs cancelled before starting are
	// reported too, so a stream always accounts for every job. The
	// returned results slice is unaffected.
	OnResult func(Result)

	// Pools, when set, recycles per-worker workspace pools across Run
	// calls: each worker draws a pool at start and hands it back when
	// its Run ends, so a later Run's workers inherit warmed same-shape
	// workspaces instead of allocating storage afresh — the cross-request
	// reuse a long-lived sweep service wants. Ignored under
	// NoWorkspaceReuse.
	Pools *PoolCache

	// Metrics, when set, accumulates per-job counters and engine-run
	// latency into a process-wide instrument bundle (see NewMetrics).
	// Like Cache and Pools it is meant to be shared across Run calls by
	// a long-lived front-end; nil records nothing.
	Metrics *Metrics

	// Trace, when set, records one span per job plus cache-probe, march
	// and engine-phase child spans into the sweep's flight recorder, and
	// fills Result.Phases. nil (the default) is tracing off: no clock
	// reads, no allocations, and bit-identical results — tracing is
	// strictly observer-grade (pinned by the determinism tests and the
	// trace-overhead benchmark gate).
	Trace *tracing.Recorder

	// TraceParent is the span id job spans are parented to (a server's
	// exec span, a CLI's sweep root). Ignored when Trace is nil.
	TraceParent string
}

// EffectiveWorkers resolves the pool size the options select: Workers
// when positive, GOMAXPROCS otherwise. Exported so front-ends report
// the same number the pool actually uses.
func (o Options) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) settleFrac() float64 {
	if o.SettleFrac > 0 && o.SettleFrac < 1 {
		return o.SettleFrac
	}
	return 1.0 / 3.0
}

// Run executes the jobs across the worker pool and returns one Result
// per job, in job order. Cancelling the context stops the pool between
// jobs: jobs not yet started report ctx.Err(), jobs already running
// finish normally (the engines are non-preemptible single sweeps).
func Run(ctx context.Context, jobs []Job, opt Options) []Result {
	results := make([]Result, len(jobs))
	units := lockstepUnits(jobs, opt)
	n := opt.EffectiveWorkers()
	if n > len(units) {
		n = len(units)
	}
	if n < 1 {
		n = 1
	}
	next := make(chan int)
	go func() {
		defer close(next)
		for u := range units {
			// Check cancellation before offering the unit: with an idle
			// worker ready, the select below would otherwise pick its
			// send case at random even on a done context.
			if ctx.Err() == nil {
				select {
				case next <- u:
					continue
				case <-ctx.Done():
				}
			}
			// Unit u was never handed out, so the producer owns the
			// remaining units' result slots exclusively — mark them
			// cancelled.
			for _, unit := range units[u:] {
				for _, j := range unit {
					results[j] = Result{Index: j, Name: jobName(jobs[j]), Job: jobs[j], Err: ctx.Err()}
					opt.Metrics.observe(results[j])
					if opt.OnResult != nil {
						opt.OnResult(results[j])
					}
				}
			}
			return
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One workspace pool per worker: same-shape jobs on this
			// worker rebuild state, not storage, and the pool never
			// crosses a goroutine boundary while held (it is not
			// locked). With Options.Pools it is returned afterwards so a
			// later Run's workers inherit the warmed workspaces.
			pool := workerPool(opt)
			defer returnWorkerPool(opt, pool)
			for u := range next {
				// Each worker writes only its own unit's indices; the
				// slots are disjoint, so no locking is needed.
				runUnit(units[u], jobs, opt, results, pool)
			}
		}()
	}
	wg.Wait()
	return results
}

// RunSerial executes the jobs one after another on the calling
// goroutine — the reference execution pooled runs must match
// bit-for-bit, and the baseline the speedup benchmarks compare against.
func RunSerial(jobs []Job, opt Options) []Result {
	results := make([]Result, len(jobs))
	pool := workerPool(opt)
	defer returnWorkerPool(opt, pool)
	for _, unit := range lockstepUnits(jobs, opt) {
		runUnit(unit, jobs, opt, results, pool)
	}
	return results
}

// workerPool returns a per-worker workspace pool — recycled from
// Options.Pools when the caller shares one, fresh otherwise — or nil
// when the options disable reuse.
func workerPool(opt Options) *core.WorkspacePool {
	if opt.NoWorkspaceReuse {
		return nil
	}
	if opt.Pools != nil {
		return opt.Pools.Get()
	}
	return core.NewWorkspacePool()
}

// returnWorkerPool hands a worker's pool back to the shared cache, when
// there is one to return it to.
func returnWorkerPool(opt Options, pool *core.WorkspacePool) {
	if pool != nil && opt.Pools != nil {
		opt.Pools.Put(pool)
	}
}

// PoolCache recycles per-worker workspace pools across Run calls. The
// batch runner's pools are single-goroutine while held, so they cannot
// simply be shared; a PoolCache is the locked hand-off point between
// runs — a long-lived front-end (the sweep server) keeps one so request
// N's workers inherit request N-1's warmed same-shape workspaces instead
// of allocating Jacobian and engine storage afresh. The zero value is
// not ready to use; call NewPoolCache.
type PoolCache struct {
	mu   sync.Mutex
	free []*core.WorkspacePool
}

// NewPoolCache returns an empty pool cache.
func NewPoolCache() *PoolCache { return &PoolCache{} }

// Get hands out a recycled workspace pool, or a fresh one when none is
// free.
func (p *PoolCache) Get() *core.WorkspacePool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		ws := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return ws
	}
	return core.NewWorkspacePool()
}

// Put returns a pool for later reuse. The caller must no longer touch
// it: the next Get may hand it to another goroutine.
func (p *PoolCache) Put(ws *core.WorkspacePool) {
	if ws == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, ws)
	p.mu.Unlock()
}

// jobName labels a job, falling back to its scenario's name.
func jobName(job Job) string {
	if job.Name != "" {
		return job.Name
	}
	return job.Scenario.Name
}

// runOne resolves a single job: from the result cache when the options
// carry one and the job is cacheable, otherwise by a fresh simulation
// (whose successful result is then stored back).
//
// The config is validated before any cache interaction: an invalid job
// fails here without ever computing a key, so bad configurations can
// neither be stored nor served — the cache only ever sees identities
// that assembly would accept.
func runOne(idx int, job Job, opt Options, pool *core.WorkspacePool) Result {
	res := Result{Index: idx, Name: jobName(job), Job: job}
	// One span per job, parented to the sweep's exec (or client root)
	// span. Every tracing call below is a no-op when Options.Trace is
	// nil — the default, zero-overhead state.
	jobSpan := opt.Trace.StartJob("job", opt.TraceParent, idx)
	defer jobSpan.End()
	if err := job.Scenario.Cfg.Validate(); err != nil {
		res.Err = err
		return res
	}
	if c := opt.Cache; c != nil && Cacheable(job, opt) {
		start := time.Now()
		key := KeyOf(job, opt)
		res.Key = key.String()
		if snap, ok := c.Get(key); ok {
			snap.fill(&res)
			res.Cached = true
			res.Elapsed = time.Since(start)
			tracePhase(&res, opt, PhaseProbe, jobSpan.ID(), start, res.Elapsed)
			return res
		}
		tracePhase(&res, opt, PhaseProbe, jobSpan.ID(), start, time.Since(start))
		// Miss: lead the computation for this key, or — when another
		// worker (possibly in a different Run on the same cache) is
		// already simulating the identical job — wait for its snapshot.
		snap, err, shared := c.flightDo(key, func() (Snapshot, error) {
			runFresh(&res, job, opt, pool, jobSpan.ID())
			if res.Err != nil {
				return Snapshot{}, res.Err
			}
			snap := snapshotOf(res)
			c.Put(key, snap)
			return snap, nil
		})
		if shared {
			if err != nil {
				// Identical jobs fail identically (the run is a pure
				// function of the identity), so the leader's error is
				// this job's error.
				res.Err = err
			} else {
				snap.fill(&res)
				res.Cached = true
				res.Shared = true
			}
			res.Elapsed = time.Since(start)
		}
		return res
	}
	runFresh(&res, job, opt, pool, jobSpan.ID())
	return res
}

// tracePhase records one measured phase span and accumulates it into
// the result's breakdown. No-op when the run is untraced.
func tracePhase(res *Result, opt Options, name, parent string, start time.Time, d time.Duration) {
	if opt.Trace == nil {
		return
	}
	opt.Trace.Add(name, parent, res.Index, start, d)
	if res.Phases == nil {
		res.Phases = make(map[string]time.Duration, 4)
	}
	res.Phases[name] += d
}

// runFresh assembles, runs and summarises a single job. With a pool, the
// harvester's Jacobian and engine storage comes from recycled same-shape
// workspaces and is handed back after metric extraction (unless the
// caller keeps the harvester), amortising assembly across a sweep.
// parent is the job span the march's trace spans hang off (ignored when
// the run is untraced).
func runFresh(res *Result, job Job, opt Options, pool *core.WorkspacePool, parent string) {
	start := time.Now()
	march := opt.Trace.StartJob(PhaseMarch, parent, res.Index)
	var phases *core.PhaseTimes
	// endMarch closes the march span and records the engine's phase
	// accumulators under it — called on every exit, failures included,
	// so a trace shows where a failed job's time went too.
	endMarch := func() {
		if opt.Trace == nil {
			return
		}
		march.End()
		if res.Phases == nil {
			res.Phases = make(map[string]time.Duration, 4)
		}
		res.Phases[PhaseMarch] += time.Since(start)
		if phases != nil {
			opt.Trace.Add(PhaseFactor, march.ID(), res.Index, start, phases.Refactor)
			opt.Trace.Add(PhaseStability, march.ID(), res.Index, start, phases.Stability)
			res.Phases[PhaseFactor] += phases.Refactor
			res.Phases[PhaseStability] += phases.Stability
		}
	}
	h, err := harvester.AssembleWith(job.Scenario, pool)
	if err != nil {
		res.Err = err
		res.Elapsed = time.Since(start)
		endMarch()
		return
	}
	dec := job.Decimate
	if dec == 0 {
		dec = DefaultDecimate
	}
	eng := h.NewEngine(job.Engine, dec)
	if opt.Trace != nil {
		// Engine-phase timing rides only on traced runs; the proposed
		// engine is the one with the refactor/stability split to expose.
		if ce, ok := eng.(*core.Engine); ok {
			phases = &core.PhaseTimes{}
			ce.Phases = phases
		}
	}
	if job.Probe != nil {
		job.Probe(h, eng)
	}
	// The settled-transit boundary is the power metrics' settle window,
	// which is part of the cache identity (KeyOf hashes settleFrac).
	h.SetBasinSettle(job.Scenario.Duration * opt.settleFrac())
	if err := h.RunEngine(eng, job.Scenario.Duration); err != nil {
		res.Err = err
		res.Elapsed = time.Since(start)
		endMarch()
		h.Release()
		return
	}
	res.Elapsed = time.Since(start)
	endMarch()
	opt.Metrics.observeEngineRun(res.Elapsed)

	_, res.FinalVc = h.VcTrace.Last()
	res.FinalState = append([]float64(nil), eng.State()...)
	settled := h.PMultIn.Slice(job.Scenario.Duration*opt.settleFrac(), job.Scenario.Duration)
	res.RMSPower = settled.RMS()
	res.MeanPower = settled.Mean()
	if job.Metric != nil {
		res.Metric = job.Metric(h, eng)
	} else {
		res.Metric = res.RMSPower
	}
	res.Energy = h.Energy
	res.Stats = StatsOf(eng)
	bs := h.BasinStats()
	res.Transits, res.SettledTransits, res.FinalBasin = bs.Transits, bs.SettledTransits, bs.FinalBasin
	if opt.Keep {
		res.Harvester = h
		res.Engine = eng
	} else {
		// The result has copied everything it needs; the workspace goes
		// back to the worker's pool for the next same-shape job.
		h.Release()
	}
}
