package wire

import (
	"time"

	"harvsim/internal/batch"
)

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Spec Spec `json:"spec"`
	// Workers requests a pool size; the server clamps it to its own
	// per-request cap. 0 selects the server's default.
	Workers int `json:"workers,omitempty"`
	// SettleFrac is the transient fraction discarded before power
	// metrics (part of the job identity); 0 selects the batch default.
	SettleFrac float64 `json:"settle_frac,omitempty"`
	// BudgetMS requests a wall-clock budget; the server clamps it to its
	// own per-request maximum and cancels the sweep's context when it
	// expires. 0 selects the server's maximum.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// NoLockstep disables the ensemble-lockstep dispatch for this sweep
	// (every job simulates independently). Results are bit-identical
	// either way; the switch exists for A/B timing and bisection.
	NoLockstep bool `json:"no_lockstep,omitempty"`
}

// SweepAccepted is the 202 response to a submitted sweep.
type SweepAccepted struct {
	ID        string `json:"id"`
	Jobs      int    `json:"jobs"`
	StatusURL string `json:"status_url"`
	StreamURL string `json:"stream_url"`
}

// Stream line types: every NDJSON line carries a "type" discriminator.
const (
	LineResult  = "result"
	LineSummary = "summary"
)

// Result is the wire form of one job's outcome — an NDJSON stream line
// (Type == "result") and the element of a finished job's result list.
// Metric values are bit-exact: finite floats encode in Go's shortest
// round-trip form, so equal physics produces byte-equal JSON.
type Result struct {
	Type  string `json:"type,omitempty"`
	Index int    `json:"index"`
	Name  string `json:"name"`
	Group string `json:"group,omitempty"`
	Seed  Seed   `json:"seed,omitempty"`
	// Key is the job's content-addressed cache identity (hex), when the
	// job is cacheable — the handle a client or shard coordinator can
	// dedupe and route by.
	Key       string `json:"key,omitempty"`
	Error     string `json:"error,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Shared    bool   `json:"shared,omitempty"`
	ElapsedUS int64  `json:"elapsed_us"`
	Metric    Float  `json:"metric"`
	RMSPower  Float  `json:"rms_power"`
	MeanPower Float  `json:"mean_power"`
	FinalVc   Float  `json:"final_vc"`
	Steps     int    `json:"steps"`
}

// ResultOf converts a batch result for the wire. The content-address
// key is the one the batch cache run already computed (empty for
// uncacheable jobs).
func ResultOf(r batch.Result) Result {
	out := Result{
		Type:      LineResult,
		Index:     r.Index,
		Name:      r.Name,
		Group:     r.Job.Group,
		Seed:      Seed(r.Job.Seed),
		Key:       r.Key,
		Cached:    r.Cached,
		Shared:    r.Shared,
		ElapsedUS: r.Elapsed.Microseconds(),
		Metric:    Float(r.Metric),
		RMSPower:  Float(r.RMSPower),
		MeanPower: Float(r.MeanPower),
		FinalVc:   Float(r.FinalVc),
		Steps:     r.Stats.Steps,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

// Summary is the final NDJSON stream line (Type == "summary") and the
// aggregate block of a finished job's status.
type Summary struct {
	Type      string `json:"type,omitempty"`
	Jobs      int    `json:"jobs"`
	Failed    int    `json:"failed"`
	CacheHits int    `json:"cache_hits"`
	Shared    int    `json:"shared"`
	Steps     int    `json:"steps"`
	WallMS    int64  `json:"wall_ms"`
	CPUMS     int64  `json:"cpu_ms"`
	MaxMetric Float  `json:"max_metric"`
	ArgMax    string `json:"argmax,omitempty"`
}

// SummaryOf reduces a finished sweep for the wire.
func SummaryOf(results []batch.Result, wall time.Duration) Summary {
	s := batch.Summarize(results)
	out := Summary{
		Type:      LineSummary,
		Jobs:      s.Jobs,
		Failed:    s.Failed,
		CacheHits: s.CacheHits,
		Steps:     s.TotalSteps,
		WallMS:    wall.Milliseconds(),
		CPUMS:     s.CPUTime.Milliseconds(),
		MaxMetric: Float(s.MaxMetric),
	}
	for _, r := range results {
		if r.Shared {
			out.Shared++
		}
	}
	if s.ArgMaxMetric >= 0 {
		out.ArgMax = results[s.ArgMaxMetric].Name
	} else {
		out.MaxMetric = 0 // no successful job; -Inf sentinel stays internal
	}
	return out
}

// JobStatus is the GET /v1/jobs/{id} response.
type JobStatus struct {
	ID        string   `json:"id"`
	State     string   `json:"state"` // "running" | "done"
	Jobs      int      `json:"jobs"`
	Completed int      `json:"completed"`
	Failed    int      `json:"failed"`
	CacheHits int      `json:"cache_hits"`
	Shared    int      `json:"shared"`
	ElapsedMS int64    `json:"elapsed_ms"`
	Summary   *Summary `json:"summary,omitempty"`
	Results   []Result `json:"results,omitempty"` // when done and ?results=1
}

// Job states.
const (
	StateRunning = "running"
	StateDone    = "done"
)

// CacheStats is the GET /v1/cache/stats response.
type CacheStats struct {
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Stale     int64  `json:"stale"`
	DiskHits  int64  `json:"disk_hits"`
	Shared    int64  `json:"shared"`
	Evictions int64  `json:"evictions"`
	Entries   int    `json:"entries"`
	Dir       string `json:"dir,omitempty"`
}

// CacheStatsOf snapshots a batch cache for the wire.
func CacheStatsOf(c *batch.Cache) CacheStats {
	s := c.Stats()
	return CacheStats{
		Hits:      s.Hits,
		Misses:    s.Misses,
		Stale:     s.Stale,
		DiskHits:  s.DiskHits,
		Shared:    s.Shared,
		Evictions: s.Evictions,
		Entries:   s.Entries,
		Dir:       c.Dir(),
	}
}

// Error is the JSON error envelope every non-2xx response carries.
type Error struct {
	Error string `json:"error"`
}

// Health is the GET /healthz response.
type Health struct {
	Status       string `json:"status"`
	ActiveSweeps int    `json:"active_sweeps"`
	CacheEntries int    `json:"cache_entries"`
}
