package wire

import (
	"errors"
	"fmt"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/tracing"
)

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Spec Spec `json:"spec"`
	// Indices, when non-empty, restricts execution to these indices of
	// the spec's full row-major expansion — the shard subset a
	// coordinator assigns one worker. They must be strictly increasing
	// and in range. Result lines keep the global expansion indices, so
	// a coordinator can merge shard streams into one globally indexed
	// stream; jobs outside the subset are neither expanded nor run.
	Indices []int `json:"indices,omitempty"`
	// Workers requests a pool size; the server clamps it to its own
	// per-request cap. 0 selects the server's default.
	Workers int `json:"workers,omitempty"`
	// SettleFrac is the transient fraction discarded before power
	// metrics (part of the job identity); 0 selects the batch default.
	SettleFrac float64 `json:"settle_frac,omitempty"`
	// BudgetMS requests a wall-clock budget; the server clamps it to its
	// own per-request maximum and cancels the sweep's context when it
	// expires. 0 selects the server's maximum.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// NoLockstep disables the ensemble-lockstep dispatch for this sweep
	// (every job simulates independently). Results are bit-identical
	// either way; the switch exists for A/B timing and bisection.
	NoLockstep bool `json:"no_lockstep,omitempty"`
	// Trace, when non-empty, enables span recording for this sweep under
	// the given trace id (32 hex chars, W3C-traceparent style). Tracing
	// is observer-grade: it never changes results, cache keys or
	// summaries, and the server records nothing when the field is absent.
	Trace string `json:"trace,omitempty"`
	// Span is the caller's parent span id (16 hex chars) — the sweep's
	// root span links to it, so a coordinator's shard span and the
	// worker-side spans it fans out to form one connected trace.
	Span string `json:"span,omitempty"`
}

// SweepAccepted is the 202 response to a submitted sweep.
type SweepAccepted struct {
	V         int    `json:"v"`
	ID        string `json:"id"`
	Jobs      int    `json:"jobs"`
	StatusURL string `json:"status_url"`
	StreamURL string `json:"stream_url"`
}

// Stream line types: every NDJSON line carries a "type" discriminator.
const (
	LineResult  = "result"
	LineSummary = "summary"
	// LineSpan lines appear on GET /v1/jobs/{id}/trace only — never in
	// the result stream, which stays byte-identical with tracing on.
	LineSpan = "span"
)

// Result is the wire form of one job's outcome — an NDJSON stream line
// (Type == "result") and the element of a finished job's result list.
// Metric values are bit-exact: finite floats encode in Go's shortest
// round-trip form, so equal physics produces byte-equal JSON.
type Result struct {
	Type  string `json:"type,omitempty"`
	Index int    `json:"index"`
	Name  string `json:"name"`
	Group string `json:"group,omitempty"`
	Seed  Seed   `json:"seed,omitempty"`
	// Key is the job's content-addressed cache identity (hex), when the
	// job is cacheable — the handle a client or shard coordinator can
	// dedupe and route by.
	Key       string `json:"key,omitempty"`
	Error     string `json:"error,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Shared    bool   `json:"shared,omitempty"`
	ElapsedUS int64  `json:"elapsed_us"`
	Metric    Float  `json:"metric"`
	RMSPower  Float  `json:"rms_power"`
	MeanPower Float  `json:"mean_power"`
	FinalVc   Float  `json:"final_vc"`
	Steps     int    `json:"steps"`

	// Bistable basin accounting (additive v1-compatible fields, omitted
	// for monostable workloads): full-run inter-well transits, transits
	// inside the settled window, and the sign of the final well.
	Transits        int `json:"transits,omitempty"`
	SettledTransits int `json:"settled_transits,omitempty"`
	FinalBasin      int `json:"final_basin,omitempty"`

	// SpanMS is the per-phase wall-time breakdown (milliseconds) recorded
	// when the sweep ran with tracing enabled — observability only, never
	// part of the job identity, absent when tracing is off.
	SpanMS map[string]Float `json:"span_ms,omitempty"`
}

// ResultOf converts a batch result for the wire. The content-address
// key is the one the batch cache run already computed (empty for
// uncacheable jobs).
func ResultOf(r batch.Result) Result {
	out := Result{
		Type:      LineResult,
		Index:     r.Index,
		Name:      r.Name,
		Group:     r.Job.Group,
		Seed:      Seed(r.Job.Seed),
		Key:       r.Key,
		Cached:    r.Cached,
		Shared:    r.Shared,
		ElapsedUS: r.Elapsed.Microseconds(),
		Metric:    Float(r.Metric),
		RMSPower:  Float(r.RMSPower),
		MeanPower: Float(r.MeanPower),
		FinalVc:   Float(r.FinalVc),
		Steps:     r.Stats.Steps,

		Transits:        r.Transits,
		SettledTransits: r.SettledTransits,
		FinalBasin:      r.FinalBasin,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	if len(r.Phases) > 0 {
		out.SpanMS = make(map[string]Float, len(r.Phases))
		for name, d := range r.Phases {
			out.SpanMS[name] = Float(float64(d) / float64(time.Millisecond))
		}
	}
	return out
}

// Summary is the final NDJSON stream line (Type == "summary") and the
// aggregate block of a finished job's status. The fleet fields
// (Workers, Resharded, Retries, LostWorkers) are filled by the shard
// coordinator only; a single worker's summary omits them.
type Summary struct {
	Type      string `json:"type,omitempty"`
	V         int    `json:"v"`
	Jobs      int    `json:"jobs"`
	Failed    int    `json:"failed"`
	CacheHits int    `json:"cache_hits"`
	Shared    int    `json:"shared"`
	Steps     int    `json:"steps"`
	// WallMS is execution wall time only. A sweep that waited for an
	// execution slot (server MaxActive backlog) reports that wait in
	// QueuedMS instead of folding it in here, so latency accounting and
	// benchmark numbers stay meaningful under contention; end-to-end
	// client-visible time is QueuedMS + WallMS.
	WallMS    int64  `json:"wall_ms"`
	QueuedMS  int64  `json:"queued_ms,omitempty"`
	CPUMS     int64  `json:"cpu_ms"`
	MaxMetric Float  `json:"max_metric"`
	ArgMax    string `json:"argmax,omitempty"`

	// Transits sums the jobs' full-run inter-well transit counts and
	// HighOrbit counts jobs still crossing wells in the settled window —
	// additive v1-compatible basin fields, omitted for monostable sweeps.
	Transits  int `json:"transits,omitempty"`
	HighOrbit int `json:"high_orbit,omitempty"`

	// Workers is the fleet size that started serving the sweep.
	Workers int `json:"workers,omitempty"`
	// Resharded counts jobs re-assigned to surviving workers after a
	// worker was lost mid-sweep.
	Resharded int `json:"resharded,omitempty"`
	// Retries counts stream reconnects (?from cursor resumes) that
	// recovered a shard without re-sharding it.
	Retries int `json:"retries,omitempty"`
	// LostWorkers counts workers declared dead during the sweep.
	LostWorkers int `json:"lost_workers,omitempty"`
}

// SummaryOf reduces a finished sweep for the wire.
func SummaryOf(results []batch.Result, wall time.Duration) Summary {
	s := batch.Summarize(results)
	out := Summary{
		Type:      LineSummary,
		V:         Version,
		Jobs:      s.Jobs,
		Failed:    s.Failed,
		CacheHits: s.CacheHits,
		Steps:     s.TotalSteps,
		WallMS:    wall.Milliseconds(),
		CPUMS:     s.CPUTime.Milliseconds(),
		MaxMetric: Float(s.MaxMetric),
		Transits:  s.Transits,
		HighOrbit: s.HighOrbit,
	}
	for _, r := range results {
		if r.Shared {
			out.Shared++
		}
	}
	if s.ArgMaxMetric >= 0 {
		out.ArgMax = results[s.ArgMaxMetric].Name
	} else {
		out.MaxMetric = 0 // no successful job; -Inf sentinel stays internal
	}
	return out
}

// SpanLine is one NDJSON line of GET /v1/jobs/{id}/trace (Type ==
// "span"): a finished span from the sweep's flight recorder. Times are
// integer microseconds so span lines, like result lines, are
// byte-stable across encoders.
type SpanLine struct {
	Type   string `json:"type"`
	V      int    `json:"v"`
	Trace  string `json:"trace"`
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	Worker string `json:"worker,omitempty"`
	// Job is the global expansion index the span belongs to; -1 marks
	// sweep-level spans (root, expand, queue, exec, shard).
	Job     int   `json:"job"`
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
}

// SpanLineOf converts a recorded span for the wire.
func SpanLineOf(s tracing.Span) SpanLine {
	return SpanLine{
		Type:    LineSpan,
		V:       Version,
		Trace:   s.Trace,
		ID:      s.ID,
		Parent:  s.Parent,
		Name:    s.Name,
		Worker:  s.Worker,
		Job:     s.Job,
		StartUS: s.Start.UnixMicro(),
		DurUS:   s.Dur.Microseconds(),
	}
}

// SpanOf is the inverse of SpanLineOf — the form a coordinator imports
// worker-side spans through when stitching shard traces into the
// sweep's own recorder.
func SpanOf(l SpanLine) tracing.Span {
	return tracing.Span{
		Trace:  l.Trace,
		ID:     l.ID,
		Parent: l.Parent,
		Name:   l.Name,
		Worker: l.Worker,
		Job:    l.Job,
		Start:  time.UnixMicro(l.StartUS),
		Dur:    time.Duration(l.DurUS) * time.Microsecond,
	}
}

// JobStatus is the GET /v1/jobs/{id} response.
type JobStatus struct {
	V         int      `json:"v"`
	ID        string   `json:"id"`
	State     string   `json:"state"` // "running" | "done"
	Jobs      int      `json:"jobs"`
	Completed int      `json:"completed"`
	Failed    int      `json:"failed"`
	CacheHits int      `json:"cache_hits"`
	Shared    int      `json:"shared"`
	ElapsedMS int64    `json:"elapsed_ms"`
	Summary   *Summary `json:"summary,omitempty"`
	Results   []Result `json:"results,omitempty"` // when done and ?results=1
}

// Job states.
const (
	StateRunning = "running"
	StateDone    = "done"
)

// CacheStats is the GET /v1/cache/stats response.
type CacheStats struct {
	V         int    `json:"v"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Stale     int64  `json:"stale"`
	DiskHits  int64  `json:"disk_hits"`
	Shared    int64  `json:"shared"`
	Evictions int64  `json:"evictions"`
	Entries   int    `json:"entries"`
	Dir       string `json:"dir,omitempty"`
}

// CacheStatsOf snapshots a batch cache for the wire.
func CacheStatsOf(c *batch.Cache) CacheStats {
	s := c.Stats()
	return CacheStats{
		V:         Version,
		Hits:      s.Hits,
		Misses:    s.Misses,
		Stale:     s.Stale,
		DiskHits:  s.DiskHits,
		Shared:    s.Shared,
		Evictions: s.Evictions,
		Entries:   s.Entries,
		Dir:       c.Dir(),
	}
}

// Error codes: the stable machine-readable identifiers of the canonical
// error envelope. Clients branch on Code, never on Message text.
const (
	CodeBadRequest         = "bad_request"         // malformed body or invalid spec
	CodeUnsupportedVersion = "unsupported_version" // wire version mismatch (see Version)
	CodeTooManyJobs        = "too_many_jobs"       // expansion exceeds the server's job budget
	CodeNotFound           = "not_found"           // unknown job id or route
	CodeMethodNotAllowed   = "method_not_allowed"  // known route, wrong HTTP method
	CodeNoWorkers          = "no_workers"          // coordinator: no healthy worker to dispatch to
	CodeInternal           = "internal"            // unexpected server-side failure
)

// ErrorDetail is the body of the canonical error envelope.
type ErrorDetail struct {
	// Code is a stable identifier from the Code* set.
	Code string `json:"code"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
	// Retryable reports whether the identical request may succeed later
	// (transient overload, fleet churn) — false means the request itself
	// is wrong and retrying is pointless.
	Retryable bool `json:"retryable"`
}

// Error is the canonical JSON error envelope every non-2xx response
// from the sweep service and the shard coordinator carries:
// {"error": {"code", "message", "retryable"}}.
type Error struct {
	Error ErrorDetail `json:"error"`
}

// Errorf builds an error envelope.
func Errorf(code string, retryable bool, format string, args ...any) Error {
	return Error{Error: ErrorDetail{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		Retryable: retryable,
	}}
}

// Health is the GET /healthz response. Workers is reported by the
// coordinator only (its configured fleet size).
type Health struct {
	V            int    `json:"v"`
	Status       string `json:"status"`
	ActiveSweeps int    `json:"active_sweeps"`
	CacheEntries int    `json:"cache_entries,omitempty"`
	Workers      int    `json:"workers,omitempty"`
}

// Worker lifecycle states reported by GET /v1/workers.
const (
	// WorkerLive: the worker answers health probes and receives shards.
	WorkerLive = "live"
	// WorkerDraining: planned maintenance — excluded from new shard
	// placement (re-shards included) while in-flight streams finish.
	WorkerDraining = "draining"
	// WorkerLost: the worker failed its health probe.
	WorkerLost = "lost"
)

// WorkerStatus is one worker's probe outcome in GET /v1/workers.
type WorkerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// State is the coordinator's placement view of the worker:
	// WorkerLive, WorkerDraining or WorkerLost. Draining wins over the
	// probe outcome — a draining worker may still be healthy.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// FleetStatus is the coordinator's GET /v1/workers response.
type FleetStatus struct {
	V       int            `json:"v"`
	Workers []WorkerStatus `json:"workers"`
}

// DrainStatus acknowledges POST /v1/workers/drain.
type DrainStatus struct {
	V      int    `json:"v"`
	Worker string `json:"worker"`
	State  string `json:"state"`
}

// BatchResultOf reconstructs the batch-layer view of a wire result — the
// inverse of ResultOf over the fields the wire carries. Remote clients
// (cmd/sweep -remote) and the shard coordinator reduce streams through
// it so rankings and summaries run the exact code path a local run uses;
// metric floats round-trip bit-exactly, so the reductions agree bit for
// bit with a local sweep.
func BatchResultOf(r Result) batch.Result {
	br := batch.Result{
		Index:     r.Index,
		Name:      r.Name,
		Job:       batch.Job{Name: r.Name, Group: r.Group, Seed: uint64(r.Seed)},
		Key:       r.Key,
		Elapsed:   time.Duration(r.ElapsedUS) * time.Microsecond,
		FinalVc:   float64(r.FinalVc),
		RMSPower:  float64(r.RMSPower),
		MeanPower: float64(r.MeanPower),
		Metric:    float64(r.Metric),
		Cached:    r.Cached,
		Shared:    r.Shared,

		Transits:        r.Transits,
		SettledTransits: r.SettledTransits,
		FinalBasin:      r.FinalBasin,
	}
	br.Stats.Steps = r.Steps
	if r.Error != "" {
		br.Err = errors.New(r.Error)
	}
	return br
}
