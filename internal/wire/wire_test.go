package wire

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/harvester"
)

// keysOf expands a wire spec and returns the content-addressed identity
// of every job, in expansion order.
func keysOf(t *testing.T, spec Spec, opt batch.Options) []batch.CacheKey {
	t.Helper()
	bspec, err := spec.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	jobs, err := bspec.Jobs()
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	keys := make([]batch.CacheKey, len(jobs))
	for i, j := range jobs {
		if !batch.Cacheable(j, opt) {
			t.Fatalf("job %d (%s) is not cacheable — wire jobs must be", i, j.Name)
		}
		keys[i] = batch.KeyOf(j, opt)
	}
	return keys
}

// roundTrip encodes and decodes the spec through its JSON wire form.
func roundTrip(t *testing.T, spec Spec) Spec {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out Spec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

// TestRoundTripKeyIdentity is the wire-format pin the server and future
// sharding depend on: decode(encode(spec)) compiles to a job list whose
// batch.KeyOf identities are bit-identical to the original's, for every
// axis kind at once — float (with values that stress shortest-form
// float encoding), int, engine and seed (full-range uint64 base).
func TestRoundTripKeyIdentity(t *testing.T) {
	spec := Spec{
		V:    Version,
		Name: "grid",
		Scenario: Scenario{
			Kind:       "noise",
			DurationS:  0.25,
			NoiseFLoHz: 55,
			NoiseFHiHz: 85,
			NoiseSeed:  Seed(math.MaxUint64 - 12345), // above 2^53: floats would mangle it
			Set:        map[string]float64{"initial_vc": 2.5, "noise.rms": 0.5900000000000001},
		},
		Engine: EngineProposed,
		Metric: MetricPStoreMeanSettled,
		Axes: []Axis{
			{Kind: AxisFloat, Param: "dickson.cstage", Values: []float64{10e-6, 2.2e-5, 4.7e-5, 0.1 + 0.2}},
			{Kind: AxisInt, Param: "dickson.stages", Ints: []int{3, 5}},
			{Kind: AxisEngine, Engines: []string{EngineProposed, EngineBE}},
			{Kind: AxisSeed, BaseSeed: Seed(1)<<63 | 42, Count: 3},
		},
	}
	opt := batch.Options{}

	want := keysOf(t, spec, opt)
	back := roundTrip(t, spec)
	if back.V != Version {
		t.Errorf("version field dropped across round-trip: got v=%d, want v=%d", back.V, Version)
	}
	got := keysOf(t, back, opt)

	// The version is transport metadata, never physics: an unversioned
	// (pre-versioning) spec must compile to the same identities, or a
	// version stamp would invalidate every existing cache entry.
	unversioned := spec
	unversioned.V = 0
	for i, k := range keysOf(t, unversioned, opt) {
		if k != want[i] {
			t.Errorf("job %d: v=0 key differs from v=%d key", i, Version)
		}
	}

	if len(want) != len(got) {
		t.Fatalf("job count changed across round-trip: %d vs %d", len(want), len(got))
	}
	if n := spec.Size(); n != len(want) {
		t.Errorf("Size() = %d, want %d", n, len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("job %d: key changed across round-trip:\n  %s\n  %s", i, want[i], got[i])
		}
	}
}

// TestRoundTripEveryScenarioKind round-trips a minimal spec of each
// scenario kind and checks key identity (single-job specs).
func TestRoundTripEveryScenarioKind(t *testing.T) {
	cases := []Scenario{
		{Kind: "charge", DurationS: 0.25},
		{Kind: "scenario1"},
		{Kind: "scenario1", Fidelity: "paper"},
		{Kind: "scenario2", Fidelity: "quick"},
		{Kind: "duffing", DurationS: 0.25, K3: harvester.DuffingK3Moderate},
		{Kind: "noise", DurationS: 0.25, NoiseFLoHz: 55, NoiseFHiHz: 85, NoiseSeed: 7},
		{Kind: "bistable", DurationS: 0.25, WellM: 5e-4, BarrierJ: 2e-6,
			Xi1: 120, Xi2: -3.4e4, NoiseFLoHz: 8, NoiseFHiHz: 40, NoiseSeed: 7},
		{Kind: "tracking", DurationS: 2, TrackF0Hz: 68, TrackFEndHz: 72},
	}
	for _, sc := range cases {
		t.Run(sc.Kind+sc.Fidelity, func(t *testing.T) {
			spec := Spec{Scenario: sc}
			want := keysOf(t, spec, batch.Options{})
			got := keysOf(t, roundTrip(t, spec), batch.Options{})
			if len(want) != 1 || len(got) != 1 || want[0] != got[0] {
				t.Fatalf("round-trip key mismatch: %v vs %v", want, got)
			}
		})
	}
}

// TestWireMatchesHandBuiltSweep pins that a wire spec compiles to the
// same job identities as the equivalent hand-built batch.SweepSpec with
// closures — the property that lets cmd/sweep's -remote mode hit the
// server's cache entries for sweeps primed locally (and vice versa).
func TestWireMatchesHandBuiltSweep(t *testing.T) {
	wireSpec := Spec{
		Name:     "dickson",
		Scenario: Scenario{Kind: "charge", DurationS: 0.5, Set: map[string]float64{"initial_vc": 2.5}},
		Metric:   MetricPStoreMeanSettled,
		Axes: []Axis{
			{Kind: AxisInt, Param: "dickson.stages", Ints: []int{2, 3}},
			{Kind: AxisFloat, Param: "dickson.cstage", Values: []float64{10e-6, 22e-6}},
		},
	}

	base := harvester.ChargeScenario(0.5)
	base.Cfg.InitialVc = 2.5
	hand := batch.SweepSpec{
		Base: batch.Job{
			Name: "dickson", Scenario: base, Engine: harvester.Proposed,
			MetricKey: MetricPStoreMeanSettled,
			Metric: func(h *harvester.Harvester, eng harvester.Engine) float64 {
				return h.PStoreTrace.Slice(0.5/3, 0.5).Mean()
			},
		},
		Axes: []batch.Axis{
			batch.IntAxis("dickson.stages", []int{2, 3},
				func(j *batch.Job, v int) { j.Scenario.Cfg.Dickson.Stages = v }),
			batch.FloatAxis("dickson.cstage", []float64{10e-6, 22e-6},
				func(j *batch.Job, v float64) { j.Scenario.Cfg.Dickson.CStage = v }),
		},
	}
	handJobs, err := hand.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	opt := batch.Options{}
	wireKeys := keysOf(t, wireSpec, opt)
	if len(wireKeys) != len(handJobs) {
		t.Fatalf("job counts differ: wire %d vs hand-built %d", len(wireKeys), len(handJobs))
	}
	for i := range handJobs {
		if want := batch.KeyOf(handJobs[i], opt); wireKeys[i] != want {
			t.Errorf("job %d: wire key %s != hand-built key %s", i, wireKeys[i], want)
		}
	}
}

// TestWireMatchesHandBuiltBistable pins the same local/remote identity
// property for the bistable workload: the "bistable" wire kind compiles
// to the exact job identity of a hand-built harvester.BistableScenario
// sweep — the pairing cmd/sweep's -bistable flag relies on for shared
// cache entries between local and -remote runs.
func TestWireMatchesHandBuiltBistable(t *testing.T) {
	wireSpec := Spec{
		Name: "bi",
		Scenario: Scenario{Kind: "bistable", DurationS: 0.5,
			WellM: 5e-4, BarrierJ: 2e-6, Xi1: 120, Xi2: -3.4e4,
			NoiseFLoHz: 8, NoiseFHiHz: 40, NoiseSeed: 7,
			Set: map[string]float64{"initial_vc": 2.5}},
		Metric: MetricPStoreMeanSettled,
		Axes: []Axis{
			{Kind: AxisFloat, Param: "microgen.k1", Name: "k1", Values: []float64{-850, -900}},
			{Kind: AxisSeed, Name: "seed", BaseSeed: 7, Count: 2},
		},
	}

	base := harvester.BistableScenario(0.5, 5e-4, 2e-6, 120, -3.4e4, 8, 40, 7)
	base.Cfg.InitialVc = 2.5
	hand := batch.SweepSpec{
		Base: batch.Job{
			Name: "bi", Scenario: base, Engine: harvester.Proposed,
			MetricKey: MetricPStoreMeanSettled,
			Metric: func(h *harvester.Harvester, eng harvester.Engine) float64 {
				return h.PStoreTrace.Slice(0.5/3, 0.5).Mean()
			},
		},
		Axes: []batch.Axis{
			batch.FloatAxis("k1", []float64{-850, -900},
				func(j *batch.Job, v float64) { j.Scenario.Cfg.Microgen.K1 = v }),
			batch.SeedAxis("seed", batch.Seeds(7, 2),
				func(j *batch.Job, s uint64) { j.Scenario.Cfg.VibNoise.Seed = s }),
		},
	}
	handJobs, err := hand.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	opt := batch.Options{}
	wireKeys := keysOf(t, wireSpec, opt)
	if len(wireKeys) != len(handJobs) {
		t.Fatalf("job counts differ: wire %d vs hand-built %d", len(wireKeys), len(handJobs))
	}
	for i := range handJobs {
		if want := batch.KeyOf(handJobs[i], opt); wireKeys[i] != want {
			t.Errorf("job %d: wire key %s != hand-built key %s", i, wireKeys[i], want)
		}
	}
}

// TestSeedJSONSafety: seeds marshal as strings and survive values a
// float64 intermediary would corrupt; numbers are accepted on input.
func TestSeedJSONSafety(t *testing.T) {
	s := Seed(math.MaxUint64)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"18446744073709551615"` {
		t.Fatalf("seed encoded as %s", data)
	}
	var back Seed
	if err := json.Unmarshal(data, &back); err != nil || back != s {
		t.Fatalf("seed round-trip: %v, %v", back, err)
	}
	if err := json.Unmarshal([]byte(`12345`), &back); err != nil || back != 12345 {
		t.Fatalf("numeric seed: %v, %v", back, err)
	}
}

// TestFloatNonFinite: the Float wrapper encodes non-finite values JSON
// cannot hold and round-trips them.
func TestFloatNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0.1, -1e-300} {
		data, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		var back Float
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if math.IsNaN(v) != math.IsNaN(float64(back)) ||
			(!math.IsNaN(v) && float64(back) != v) {
			t.Errorf("%v round-tripped to %v (%s)", v, back, data)
		}
	}
}

// TestValidationErrors: malformed specs are rejected with telling
// errors, not compiled into surprising sweeps.
func TestValidationErrors(t *testing.T) {
	cases := map[string]Spec{
		"future wire version": {V: Version + 1, Scenario: Scenario{Kind: "charge", DurationS: 1}},
		"unknown kind":        {Scenario: Scenario{Kind: "warp", DurationS: 1}},
		"missing duration":    {Scenario: Scenario{Kind: "charge"}},
		"unknown engine":      {Scenario: Scenario{Kind: "charge", DurationS: 1}, Engine: "spice"},
		"unknown metric":      {Scenario: Scenario{Kind: "charge", DurationS: 1}, Metric: "vibes"},
		"unknown param":       {Scenario: Scenario{Kind: "charge", DurationS: 1, Set: map[string]float64{"dickson.stagecoach": 3}}},
		"fractional int set":  {Scenario: Scenario{Kind: "charge", DurationS: 1, Set: map[string]float64{"dickson.stages": 2.5}}},
		"bad fidelity":        {Scenario: Scenario{Kind: "scenario1", Fidelity: "medium"}},
		"negative decimate":   {Scenario: Scenario{Kind: "charge", DurationS: 1}, Decimate: -1},
		"empty float axis": {Scenario: Scenario{Kind: "charge", DurationS: 1},
			Axes: []Axis{{Kind: AxisFloat, Param: "microgen.k3"}}},
		"int param on float axis": {Scenario: Scenario{Kind: "charge", DurationS: 1},
			Axes: []Axis{{Kind: AxisFloat, Param: "dickson.stages", Values: []float64{1}}}},
		"float param on int axis": {Scenario: Scenario{Kind: "charge", DurationS: 1},
			Axes: []Axis{{Kind: AxisInt, Param: "microgen.k3", Ints: []int{1}}}},
		"seed axis without count": {Scenario: Scenario{Kind: "charge", DurationS: 1},
			Axes: []Axis{{Kind: AxisSeed, BaseSeed: 1}}},
		"unknown axis kind": {Scenario: Scenario{Kind: "charge", DurationS: 1},
			Axes: []Axis{{Kind: "logarithmic"}}},
		"unknown axis engine": {Scenario: Scenario{Kind: "charge", DurationS: 1},
			Axes: []Axis{{Kind: AxisEngine, Engines: []string{"spice"}}}},
	}
	for name, spec := range cases {
		if _, err := spec.Compile(); err == nil {
			t.Errorf("%s: Compile accepted the spec", name)
		}
	}
}

// TestVersionCheck pins the compatibility rule: v==0 (pre-versioning)
// and v==Version compile; any other version is rejected with an error
// that unwraps to ErrUnsupportedVersion (the hook front-ends map onto
// the "unsupported_version" envelope code).
func TestVersionCheck(t *testing.T) {
	base := Spec{Scenario: Scenario{Kind: "charge", DurationS: 1}}
	for _, v := range []int{0, Version} {
		s := base
		s.V = v
		if err := s.CheckVersion(); err != nil {
			t.Errorf("v=%d rejected: %v", v, err)
		}
		if _, err := s.Compile(); err != nil {
			t.Errorf("v=%d failed to compile: %v", v, err)
		}
	}
	for _, v := range []int{-1, Version + 1, 99} {
		s := base
		s.V = v
		err := s.CheckVersion()
		if !errors.Is(err, ErrUnsupportedVersion) {
			t.Errorf("v=%d: CheckVersion = %v, want ErrUnsupportedVersion", v, err)
		}
		if _, err := s.Compile(); !errors.Is(err, ErrUnsupportedVersion) {
			t.Errorf("v=%d: Compile = %v, want ErrUnsupportedVersion", v, err)
		}
	}
}

// TestErrorEnvelopeShape pins the canonical error envelope JSON layout
// every non-2xx response carries: {"error":{"code","message","retryable"}}.
func TestErrorEnvelopeShape(t *testing.T) {
	data, err := json.Marshal(Errorf(CodeTooManyJobs, false, "sweep would expand to %d jobs", 1000000))
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			Retryable *bool  `json:"retryable"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Error.Code != CodeTooManyJobs || decoded.Error.Message == "" || decoded.Error.Retryable == nil {
		t.Fatalf("envelope %s missing canonical fields", data)
	}
}

// TestBatchResultRoundTrip: BatchResultOf inverts ResultOf over the
// wire-carried fields, bit-exactly for the metric floats — what lets a
// remote client and the coordinator reduce summaries identically to a
// local run.
func TestBatchResultRoundTrip(t *testing.T) {
	in := batch.Result{
		Index: 7, Name: "grid[stages=4]",
		Job:       batch.Job{Name: "grid[stages=4]", Group: "grid", Seed: 42},
		Key:       "abc123",
		Elapsed:   1500 * time.Microsecond,
		FinalVc:   2.5000000000000004,
		RMSPower:  1e-6,
		MeanPower: 0.1 + 0.2,
		Metric:    3.3e-7,
		Cached:    true,
		Shared:    true,
	}
	in.Stats.Steps = 1234
	in.Transits, in.SettledTransits, in.FinalBasin = 17, 11, -1
	out := BatchResultOf(ResultOf(in))
	if out.Index != in.Index || out.Name != in.Name || out.Key != in.Key ||
		out.Job.Group != in.Job.Group || out.Job.Seed != in.Job.Seed ||
		out.Elapsed != in.Elapsed || out.FinalVc != in.FinalVc ||
		out.RMSPower != in.RMSPower || out.MeanPower != in.MeanPower ||
		out.Metric != in.Metric || out.Cached != in.Cached || out.Shared != in.Shared ||
		out.Stats.Steps != in.Stats.Steps || out.Err != nil ||
		out.Transits != in.Transits || out.SettledTransits != in.SettledTransits ||
		out.FinalBasin != in.FinalBasin {
		t.Fatalf("round trip changed the result:\n in %+v\nout %+v", in, out)
	}
	// The basin fields must survive the JSON encoding too (a negative
	// FinalBasin exercises the signed field), and reduce into the wire
	// summary's basin counters.
	line, err := json.Marshal(ResultOf(in))
	if err != nil {
		t.Fatal(err)
	}
	var wr Result
	if err := json.Unmarshal(line, &wr); err != nil {
		t.Fatal(err)
	}
	if got := BatchResultOf(wr); got.Transits != 17 || got.SettledTransits != 11 || got.FinalBasin != -1 {
		t.Fatalf("basin fields lost across JSON: %+v", got)
	}
	sum := SummaryOf([]batch.Result{in}, 0)
	if sum.Transits != 17 || sum.HighOrbit != 1 {
		t.Fatalf("summary basin counters: transits %d, high-orbit %d", sum.Transits, sum.HighOrbit)
	}
	in.Err = errors.New("boom")
	if out := BatchResultOf(ResultOf(in)); out.Err == nil || out.Err.Error() != "boom" {
		t.Fatalf("error not carried: %v", out.Err)
	}
}

// TestSizeSaturates: Size never overflows (it is the pre-compilation
// budget check, so it must stay truthful for hostile axis products) and
// ignores axes Compile would reject.
func TestSizeSaturates(t *testing.T) {
	s := Spec{Axes: []Axis{
		{Kind: AxisSeed, Count: math.MaxInt / 2},
		{Kind: AxisInt, Param: "dickson.stages", Ints: []int{1, 2, 3}},
	}}
	if got := s.Size(); got != math.MaxInt {
		t.Errorf("overflowing product: Size = %d, want MaxInt", got)
	}
	s = Spec{Axes: []Axis{
		{Kind: AxisSeed, Count: -5},
		{Kind: "bogus"},
		{Kind: AxisInt, Param: "dickson.stages", Ints: []int{1, 2, 3}},
	}}
	if got := s.Size(); got != 3 {
		t.Errorf("invalid axes: Size = %d, want 3", got)
	}
}

// TestEngineNames: every kind's short name resolves back, and the long
// String() forms are accepted.
func TestEngineNames(t *testing.T) {
	kinds := []harvester.EngineKind{
		harvester.Proposed, harvester.ExistingTrap,
		harvester.ExistingBDF2, harvester.ExistingBE,
	}
	for _, k := range kinds {
		if got, err := EngineFromName(EngineName(k)); err != nil || got != k {
			t.Errorf("short name of %v: got %v, %v", k, got, err)
		}
		if got, err := EngineFromName(k.String()); err != nil || got != k {
			t.Errorf("long name of %v: got %v, %v", k, got, err)
		}
	}
}

// TestNonFiniteResultStreamSafe pins the NDJSON audit for ensemble
// statistics: a NaN or ±Inf metric in a batch Result (or a summary's
// MaxMetric) must survive the wire encode/decode round trip rather than
// making json.Marshal fail — which would silently drop a stream line or
// kill the stream mid-sweep. All metric fields are wire.Float, whose
// codec turns non-finite values into the strings "NaN"/"+Inf"/"-Inf";
// this test exists so a field can never quietly regress to a raw
// float64.
func TestNonFiniteResultStreamSafe(t *testing.T) {
	r := batch.Result{
		Index:     3,
		Name:      "nan-case",
		Metric:    math.NaN(),
		RMSPower:  math.Inf(1),
		MeanPower: math.Inf(-1),
		FinalVc:   math.NaN(),
	}
	line, err := json.Marshal(ResultOf(r))
	if err != nil {
		t.Fatalf("marshal non-finite result: %v", err)
	}
	var back Result
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatalf("unmarshal non-finite result: %v", err)
	}
	if !math.IsNaN(float64(back.Metric)) {
		t.Errorf("Metric round trip: got %v, want NaN", back.Metric)
	}
	if !math.IsInf(float64(back.RMSPower), 1) {
		t.Errorf("RMSPower round trip: got %v, want +Inf", back.RMSPower)
	}
	if !math.IsInf(float64(back.MeanPower), -1) {
		t.Errorf("MeanPower round trip: got %v, want -Inf", back.MeanPower)
	}
	if !math.IsNaN(float64(back.FinalVc)) {
		t.Errorf("FinalVc round trip: got %v, want NaN", back.FinalVc)
	}

	// A summary over non-finite metrics must encode too. (All jobs
	// successful, so MaxMetric keeps whatever the metric extremum is.)
	sum := SummaryOf([]batch.Result{r}, 0)
	if _, err := json.Marshal(sum); err != nil {
		t.Fatalf("marshal summary over non-finite metrics: %v", err)
	}
}
