// Package wire defines the JSON wire format of the sweep service: a
// declarative, closure-free encoding of the batch layer's job boundary
// that a client can POST to a server (or a shard coordinator can route)
// and that compiles back into an executable batch.SweepSpec.
//
// The format is canonical in the sense the result cache needs:
// decode(encode(spec)) compiles to jobs whose content-addressed
// identities (batch.KeyOf) are bit-identical to the original's. Three
// properties carry that guarantee:
//
//   - floats travel as JSON numbers, which Go encodes in the shortest
//     form that parses back to the same IEEE-754 value — bit-exact
//     round-trips, matching the cache key's bit-exact float hashing;
//   - seeds (full-range uint64) travel as decimal strings, immune to
//     the float64 mangling a JavaScript intermediary would apply to
//     large numeric literals;
//   - every knob an axis or override can touch is a named entry in a
//     fixed parameter registry, so a spec never carries code, only
//     names — the server and any future shard resolve the same name to
//     the same setter.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"harvsim/internal/batch"
	"harvsim/internal/harvester"
)

// Version is the wire schema version this build speaks. Every Spec and
// every NDJSON summary line carries it as "v". The compatibility rule
// (documented in DESIGN.md) is exact-match with a zero escape hatch: a
// component accepts v == Version and treats an absent/zero v as Version
// (specs written before versioning existed), and rejects anything else
// with the canonical error envelope, code "unsupported_version". Bump
// Version only on breaking schema changes; additive omitempty fields do
// not bump it.
const Version = 1

// ErrUnsupportedVersion is wrapped by version-mismatch errors, so
// front-ends can map them onto CodeUnsupportedVersion with errors.Is.
var ErrUnsupportedVersion = errors.New("unsupported wire version")

// Seed is a uint64 that survives JSON intermediaries: it marshals as a
// decimal string and unmarshals from either a string or a number.
type Seed uint64

// MarshalJSON encodes the seed as a quoted decimal string.
func (s Seed) MarshalJSON() ([]byte, error) {
	return []byte(`"` + strconv.FormatUint(uint64(s), 10) + `"`), nil
}

// UnmarshalJSON accepts "123" (canonical) and 123 (convenience).
func (s *Seed) UnmarshalJSON(data []byte) error {
	str := string(data)
	if len(str) >= 2 && str[0] == '"' {
		str = str[1 : len(str)-1]
	}
	v, err := strconv.ParseUint(str, 10, 64)
	if err != nil {
		return fmt.Errorf("wire: bad seed %s: %w", string(data), err)
	}
	*s = Seed(v)
	return nil
}

// Float is a float64 that survives JSON: finite values encode as plain
// numbers (Go's shortest-round-trip form, bit-exact), non-finite values
// — which JSON cannot represent — as the strings "NaN", "+Inf", "-Inf".
type Float float64

// MarshalJSON encodes finite floats as numbers, non-finite as strings.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts numbers and the three non-finite strings.
func (f *Float) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"NaN"`:
		*f = Float(math.NaN())
		return nil
	case `"+Inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = Float(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("wire: bad float %s: %w", string(data), err)
	}
	*f = Float(v)
	return nil
}

// Engine names: the short canonical wire identifiers. The long
// EngineKind.String() forms are accepted on input for readability.
const (
	EngineProposed = "proposed"
	EngineTrap     = "trap"
	EngineBDF2     = "bdf2"
	EngineBE       = "be"
)

// EngineFromName resolves a wire engine name ("" selects the proposed
// engine, the service's default solver).
func EngineFromName(name string) (harvester.EngineKind, error) {
	switch name {
	case "", EngineProposed, harvester.Proposed.String():
		return harvester.Proposed, nil
	case EngineTrap, harvester.ExistingTrap.String():
		return harvester.ExistingTrap, nil
	case EngineBDF2, harvester.ExistingBDF2.String():
		return harvester.ExistingBDF2, nil
	case EngineBE, harvester.ExistingBE.String():
		return harvester.ExistingBE, nil
	}
	return 0, fmt.Errorf("wire: unknown engine %q (want %s|%s|%s|%s)",
		name, EngineProposed, EngineTrap, EngineBDF2, EngineBE)
}

// EngineName returns the short canonical wire name of an engine kind.
func EngineName(k harvester.EngineKind) string {
	switch k {
	case harvester.ExistingTrap:
		return EngineTrap
	case harvester.ExistingBDF2:
		return EngineBDF2
	case harvester.ExistingBE:
		return EngineBE
	default:
		return EngineProposed
	}
}

// param is one registry entry: a named, typed knob on the harvester
// Config that axes sweep and scenario overrides set. Int params receive
// a value already checked to be integral.
type param struct {
	integer bool
	set     func(c *harvester.Config, v float64)
}

// params is THE registry of sweepable knobs. A name here is a stable
// wire identifier: renaming one breaks clients, so add, don't rename.
var params = map[string]param{
	"microgen.k3":     {false, func(c *harvester.Config, v float64) { c.Microgen.K3 = v }},
	"microgen.k1":     {false, func(c *harvester.Config, v float64) { c.Microgen.K1 = v }},
	"microgen.xi1":    {false, func(c *harvester.Config, v float64) { c.Microgen.Xi1 = v }},
	"microgen.xi2":    {false, func(c *harvester.Config, v float64) { c.Microgen.Xi2 = v }},
	"microgen.z0":     {false, func(c *harvester.Config, v float64) { c.Microgen.Z0 = v }},
	"microgen.rc":     {false, func(c *harvester.Config, v float64) { c.Microgen.Rc = v }},
	"microgen.cp":     {false, func(c *harvester.Config, v float64) { c.Microgen.Cp = v }},
	"dickson.stages":  {true, func(c *harvester.Config, v float64) { c.Dickson.Stages = int(v) }},
	"dickson.cstage":  {false, func(c *harvester.Config, v float64) { c.Dickson.CStage = v }},
	"dickson.cout":    {false, func(c *harvester.Config, v float64) { c.Dickson.COut = v }},
	"vib.amplitude":   {false, func(c *harvester.Config, v float64) { c.VibAmplitude = v }},
	"vib.freq_hz":     {false, func(c *harvester.Config, v float64) { c.VibFreq = v }},
	"noise.rms":       {false, func(c *harvester.Config, v float64) { c.VibNoise.RMS = v }},
	"noise.flo_hz":    {false, func(c *harvester.Config, v float64) { c.VibNoise.FLo = v }},
	"noise.fhi_hz":    {false, func(c *harvester.Config, v float64) { c.VibNoise.FHi = v }},
	"noise.tones":     {true, func(c *harvester.Config, v float64) { c.VibNoise.Tones = int(v) }},
	"initial_vc":      {false, func(c *harvester.Config, v float64) { c.InitialVc = v }},
	"initial_tune_hz": {false, func(c *harvester.Config, v float64) { c.InitialTuneHz = v }},
	"solver.hmax":     {false, func(c *harvester.Config, v float64) { c.Solver.HMax = v }},
	"solver.rtol":     {false, func(c *harvester.Config, v float64) { c.Solver.Rtol = v }},
	"solver.ab_order": {true, func(c *harvester.Config, v float64) { c.Solver.ABOrder = int(v) }},
}

// Params lists the registry's parameter names, sorted — for error
// messages and service discovery.
func Params() []string {
	out := make([]string, 0, len(params))
	for name := range params {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookupParam resolves a registry name, optionally requiring an integer
// knob (int axes) or a float knob (float axes); wantInt < 0 accepts
// either (scenario overrides).
func lookupParam(name string, wantInt int) (param, error) {
	p, ok := params[name]
	if !ok {
		return param{}, fmt.Errorf("wire: unknown parameter %q (known: %v)", name, Params())
	}
	if wantInt == 1 && !p.integer {
		return param{}, fmt.Errorf("wire: parameter %q is float-valued; use a float axis", name)
	}
	if wantInt == 0 && p.integer {
		return param{}, fmt.Errorf("wire: parameter %q is integer-valued; use an int axis", name)
	}
	return p, nil
}

// Scenario declares the base workload by kind. Kind-specific fields
// configure the constructor; Set then overrides any registry parameter
// on the resulting Config (applied in sorted name order, so the
// compilation is deterministic).
type Scenario struct {
	// Kind selects the constructor: "charge", "scenario1", "scenario2",
	// "duffing", "noise", "bistable" or "tracking".
	Kind string `json:"kind"`
	// Fidelity applies to scenario1/scenario2: "quick" (default) or
	// "paper".
	Fidelity string `json:"fidelity,omitempty"`
	// DurationS is the simulated horizon [s]; required for every kind
	// except scenario1/scenario2 (whose fidelity sets it).
	DurationS float64 `json:"duration_s,omitempty"`

	K3          float64 `json:"k3,omitempty"`            // duffing: cubic spring [N/m^3]
	NoiseFLoHz  float64 `json:"noise_flo_hz,omitempty"`  // noise/bistable: band lower edge
	NoiseFHiHz  float64 `json:"noise_fhi_hz,omitempty"`  // noise/bistable: band upper edge
	NoiseSeed   Seed    `json:"noise_seed,omitempty"`    // noise/bistable: realisation seed
	TrackF0Hz   float64 `json:"track_f0_hz,omitempty"`   // tracking: chirp start [Hz]
	TrackFEndHz float64 `json:"track_fend_hz,omitempty"` // tracking: chirp end [Hz]
	WellM       float64 `json:"well_m,omitempty"`        // bistable: well displacement [m]
	BarrierJ    float64 `json:"barrier_j,omitempty"`     // bistable: barrier height [J]
	Xi1         float64 `json:"xi1,omitempty"`           // bistable: coupling correction [1/m]
	Xi2         float64 `json:"xi2,omitempty"`           // bistable: coupling correction [1/m^2]

	// Set overrides registry parameters on the constructed Config, e.g.
	// {"initial_vc": 2.5, "dickson.stages": 4}.
	Set map[string]float64 `json:"set,omitempty"`
}

// build constructs the harvester scenario.
func (s Scenario) build() (harvester.Scenario, error) {
	var fid harvester.Fidelity
	switch s.Fidelity {
	case "", "quick":
		fid = harvester.Quick
	case "paper", "paper-scale":
		fid = harvester.PaperScale
	default:
		return harvester.Scenario{}, fmt.Errorf("wire: unknown fidelity %q (want quick|paper)", s.Fidelity)
	}
	needDuration := func() error {
		if !(s.DurationS > 0) || math.IsInf(s.DurationS, 0) {
			return fmt.Errorf("wire: scenario kind %q needs duration_s > 0", s.Kind)
		}
		return nil
	}
	var sc harvester.Scenario
	switch s.Kind {
	case "charge":
		if err := needDuration(); err != nil {
			return sc, err
		}
		sc = harvester.ChargeScenario(s.DurationS)
	case "scenario1":
		sc = harvester.Scenario1(fid)
	case "scenario2":
		sc = harvester.Scenario2(fid)
	case "duffing":
		if err := needDuration(); err != nil {
			return sc, err
		}
		sc = harvester.DuffingScenario(s.DurationS, s.K3)
	case "noise":
		if err := needDuration(); err != nil {
			return sc, err
		}
		sc = harvester.NoiseScenario(s.DurationS, s.NoiseFLoHz, s.NoiseFHiHz, uint64(s.NoiseSeed))
	case "bistable":
		if err := needDuration(); err != nil {
			return sc, err
		}
		sc = harvester.BistableScenario(s.DurationS, s.WellM, s.BarrierJ, s.Xi1, s.Xi2,
			s.NoiseFLoHz, s.NoiseFHiHz, uint64(s.NoiseSeed))
	case "tracking":
		if err := needDuration(); err != nil {
			return sc, err
		}
		sc = harvester.TrackingScenario(s.DurationS, s.TrackF0Hz, s.TrackFEndHz)
	default:
		return sc, fmt.Errorf("wire: unknown scenario kind %q (want charge|scenario1|scenario2|duffing|noise|bistable|tracking)", s.Kind)
	}
	names := make([]string, 0, len(s.Set))
	for name := range s.Set {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p, err := lookupParam(name, -1)
		if err != nil {
			return sc, err
		}
		v := s.Set[name]
		if p.integer && v != math.Trunc(v) {
			return sc, fmt.Errorf("wire: parameter %q wants an integer, got %v", name, v)
		}
		p.set(&sc.Cfg, v)
	}
	return sc, nil
}

// Axis kinds.
const (
	AxisFloat  = "float"
	AxisInt    = "int"
	AxisEngine = "engine"
	AxisSeed   = "seed"
)

// Axis is the wire form of one sweep dimension. Kind selects which
// fields apply:
//
//   - "float":  Param (a float registry knob) and Values;
//   - "int":    Param (an int registry knob) and Ints;
//   - "engine": Engines (wire engine names);
//   - "seed":   BaseSeed and Count — expanded server-side via the
//     documented splitmix64 rule (batch.Seeds), so a shard holding only
//     (base, count) derives identical job identities.
type Axis struct {
	Kind     string    `json:"kind"`
	Param    string    `json:"param,omitempty"`
	Name     string    `json:"name,omitempty"` // axis label; defaults to Param or Kind
	Values   []float64 `json:"values,omitempty"`
	Ints     []int     `json:"ints,omitempty"`
	Engines  []string  `json:"engines,omitempty"`
	BaseSeed Seed      `json:"base_seed,omitempty"`
	Count    int       `json:"count,omitempty"`
}

// compile lowers the axis onto the batch layer.
func (a Axis) compile() (batch.Axis, error) {
	name := a.Name
	switch a.Kind {
	case AxisFloat:
		p, err := lookupParam(a.Param, 0)
		if err != nil {
			return batch.Axis{}, err
		}
		if len(a.Values) == 0 {
			return batch.Axis{}, fmt.Errorf("wire: float axis %q has no values", a.Param)
		}
		if name == "" {
			name = a.Param
		}
		return batch.FloatAxis(name, a.Values, func(j *batch.Job, v float64) {
			p.set(&j.Scenario.Cfg, v)
		}), nil
	case AxisInt:
		p, err := lookupParam(a.Param, 1)
		if err != nil {
			return batch.Axis{}, err
		}
		if len(a.Ints) == 0 {
			return batch.Axis{}, fmt.Errorf("wire: int axis %q has no values", a.Param)
		}
		if name == "" {
			name = a.Param
		}
		return batch.IntAxis(name, a.Ints, func(j *batch.Job, v int) {
			p.set(&j.Scenario.Cfg, float64(v))
		}), nil
	case AxisEngine:
		if len(a.Engines) == 0 {
			return batch.Axis{}, fmt.Errorf("wire: engine axis has no engines")
		}
		kinds := make([]harvester.EngineKind, len(a.Engines))
		for i, n := range a.Engines {
			k, err := EngineFromName(n)
			if err != nil {
				return batch.Axis{}, err
			}
			kinds[i] = k
		}
		return batch.EngineAxis(kinds...), nil
	case AxisSeed:
		if a.Count < 1 {
			return batch.Axis{}, fmt.Errorf("wire: seed axis needs count >= 1, got %d", a.Count)
		}
		if name == "" {
			name = "seed"
		}
		return batch.SeedAxis(name, batch.Seeds(uint64(a.BaseSeed), a.Count),
			func(j *batch.Job, s uint64) { j.Scenario.Cfg.VibNoise.Seed = s }), nil
	default:
		return batch.Axis{}, fmt.Errorf("wire: unknown axis kind %q (want %s|%s|%s|%s)",
			a.Kind, AxisFloat, AxisInt, AxisEngine, AxisSeed)
	}
}

// Metric names. The empty name selects the default figure of merit (the
// settled-window RMS power into the multiplier, computed without a
// metric closure).
const (
	// MetricPStoreMeanSettled is the mean power delivered into the
	// storage element over the settled final two thirds of the horizon —
	// the design-sweep ranking cmd/sweep uses.
	MetricPStoreMeanSettled = "pstore-mean-settled"
)

// metricFor resolves a named metric into the batch closure and its
// cache-key label. The closure is a pure function of the run (that is
// what being in this registry asserts), so jobs carrying it stay
// cacheable.
func metricFor(name string, sc harvester.Scenario) (func(*harvester.Harvester, harvester.Engine) float64, string, error) {
	switch name {
	case "":
		return nil, "", nil
	case MetricPStoreMeanSettled:
		d := sc.Duration
		return func(h *harvester.Harvester, eng harvester.Engine) float64 {
			return h.PStoreTrace.Slice(d/3, d).Mean()
		}, MetricPStoreMeanSettled, nil
	}
	return nil, "", fmt.Errorf("wire: unknown metric %q (want \"\"|%s)", name, MetricPStoreMeanSettled)
}

// Spec is the wire form of a full sweep: base scenario, solver, metric
// and axes. It is the unit a client POSTs and a coordinator routes.
type Spec struct {
	// V is the wire schema version (see Version). 0 means "written
	// before versioning" and is accepted as the current version; any
	// other mismatch is rejected. The version is transport metadata, not
	// physics: it never enters the content-addressed job identity, so
	// cache entries survive a version bump that leaves physics alone.
	V int `json:"v,omitempty"`
	// Name labels the base job (result names become
	// "name[axis=value ...]"); defaults to the scenario kind.
	Name     string   `json:"name,omitempty"`
	Scenario Scenario `json:"scenario"`
	Engine   string   `json:"engine,omitempty"`   // wire engine name; "" = proposed
	Decimate int      `json:"decimate,omitempty"` // trace decimation; 0 = batch default
	Metric   string   `json:"metric,omitempty"`   // named metric; "" = settled RMS input power
	Axes     []Axis   `json:"axes,omitempty"`
}

// CheckVersion applies the compatibility rule: nil for v == Version and
// for the pre-versioning zero, ErrUnsupportedVersion (wrapped) for
// everything else.
func (s Spec) CheckVersion() error {
	if s.V != 0 && s.V != Version {
		return fmt.Errorf("%w: spec declares v=%d, this build speaks v=%d",
			ErrUnsupportedVersion, s.V, Version)
	}
	return nil
}

// Compile lowers the spec into an executable batch sweep. The result is
// deterministic: equal specs compile to job lists with equal
// content-addressed identities on every host.
func (s Spec) Compile() (batch.SweepSpec, error) {
	if err := s.CheckVersion(); err != nil {
		return batch.SweepSpec{}, err
	}
	sc, err := s.Scenario.build()
	if err != nil {
		return batch.SweepSpec{}, err
	}
	kind, err := EngineFromName(s.Engine)
	if err != nil {
		return batch.SweepSpec{}, err
	}
	metric, metricKey, err := metricFor(s.Metric, sc)
	if err != nil {
		return batch.SweepSpec{}, err
	}
	if s.Decimate < 0 {
		return batch.SweepSpec{}, fmt.Errorf("wire: decimate must be >= 0, got %d", s.Decimate)
	}
	name := s.Name
	if name == "" {
		name = s.Scenario.Kind
	}
	spec := batch.SweepSpec{
		Base: batch.Job{
			Name:      name,
			Scenario:  sc,
			Engine:    kind,
			Decimate:  s.Decimate,
			Metric:    metric,
			MetricKey: metricKey,
		},
	}
	for _, ax := range s.Axes {
		bax, err := ax.compile()
		if err != nil {
			return batch.SweepSpec{}, err
		}
		spec.Axes = append(spec.Axes, bax)
	}
	return spec, nil
}

// Size returns the number of jobs the spec would expand to (the product
// of the axis lengths), without compiling or allocating anything — the
// number a server MUST check against its per-request budget before
// Compile, because compilation materialises seed lists and expansion
// materialises cloned configs. The product saturates at math.MaxInt on
// overflow, so a hostile axis product still trips any sane budget.
// Invalid axes (empty, unknown kind) contribute nothing here; Compile
// reports them.
func (s Spec) Size() int {
	n := 1
	for _, ax := range s.Axes {
		var m int
		switch ax.Kind {
		case AxisFloat:
			m = len(ax.Values)
		case AxisInt:
			m = len(ax.Ints)
		case AxisEngine:
			m = len(ax.Engines)
		case AxisSeed:
			m = ax.Count
		}
		if m <= 0 {
			continue
		}
		if n > math.MaxInt/m {
			return math.MaxInt
		}
		n *= m
	}
	return n
}
