package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"harvsim/internal/tracing"
	"harvsim/internal/wire"
)

// Run is one submitted sweep's lifecycle state, shared by the single-host
// server and the shard coordinator. results accumulates in completion
// order (the stream order); done flips exactly once, after the last
// result is recorded. cond (over mu) wakes streamers on every append and
// on completion.
type Run struct {
	ID      string
	Total   int
	Started time.Time
	Cancel  context.CancelFunc
	// Trace is the sweep's flight recorder, non-nil only when the request
	// asked for tracing; set before the 202 is written and never after,
	// so handlers read it without the run lock.
	Trace *tracing.Recorder

	mu      sync.Mutex
	cond    *sync.Cond
	results []wire.Result
	failed  int
	hits    int
	shared  int
	done    bool
	summary wire.Summary
}

// NewRun builds a run in the "running" state.
func NewRun(id string, total int, cancel context.CancelFunc) *Run {
	run := &Run{ID: id, Total: total, Started: time.Now(), Cancel: cancel}
	run.cond = sync.NewCond(&run.mu)
	return run
}

// Record appends one completed job's wire result (called concurrently
// from every worker / every shard stream).
func (run *Run) Record(r wire.Result) {
	run.mu.Lock()
	run.results = append(run.results, r)
	if r.Error != "" {
		run.failed++
	}
	if r.Cached {
		run.hits++
	}
	if r.Shared {
		run.shared++
	}
	run.mu.Unlock()
	run.cond.Broadcast()
}

// Finish marks the run complete with its summary line.
func (run *Run) Finish(summary wire.Summary) {
	run.mu.Lock()
	run.summary = summary
	run.done = true
	run.mu.Unlock()
	run.cond.Broadcast()
}

// Done reports completion.
func (run *Run) Done() bool {
	run.mu.Lock()
	defer run.mu.Unlock()
	return run.done
}

// Status snapshots the run as a wire.JobStatus; withResults includes the
// completion-ordered result list when done.
func (run *Run) Status(withResults bool) wire.JobStatus {
	run.mu.Lock()
	defer run.mu.Unlock()
	st := wire.JobStatus{
		V:         wire.Version,
		ID:        run.ID,
		State:     wire.StateRunning,
		Jobs:      run.Total,
		Completed: len(run.results),
		Failed:    run.failed,
		CacheHits: run.hits,
		Shared:    run.shared,
		ElapsedMS: time.Since(run.Started).Milliseconds(),
	}
	if run.done {
		st.State = wire.StateDone
		// End-to-end elapsed: queue wait plus execution wall (they are
		// reported separately in the summary).
		st.ElapsedMS = run.summary.QueuedMS + run.summary.WallMS
		sum := run.summary
		st.Summary = &sum
		if withResults {
			st.Results = append([]wire.Result(nil), run.results...)
		}
	}
	return st
}

// Runs is an id-keyed registry of sweep runs with bounded retention of
// finished ones.
type Runs struct {
	prefix string
	keep   int

	mu   sync.Mutex
	seq  int64
	jobs map[string]*Run
	// finished ids in completion order, for retention eviction.
	doneOrder []string
}

// NewRuns builds a registry. Ids are prefix + sequence number;
// keepFinished bounds how many finished runs stay queryable (oldest
// dropped first), 0 means the default of 128.
func NewRuns(prefix string, keepFinished int) *Runs {
	if keepFinished <= 0 {
		keepFinished = 128
	}
	return &Runs{prefix: prefix, keep: keepFinished, jobs: make(map[string]*Run)}
}

// New registers a fresh run.
func (rs *Runs) New(total int, cancel context.CancelFunc) *Run {
	rs.mu.Lock()
	rs.seq++
	run := NewRun(rs.prefix+strconv.FormatInt(rs.seq, 10), total, cancel)
	rs.jobs[run.ID] = run
	rs.mu.Unlock()
	return run
}

// Lookup resolves an id; nil when unknown (or evicted).
func (rs *Runs) Lookup(id string) *Run {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.jobs[id]
}

// Retire records a finished run and evicts the oldest finished ones
// beyond the retention bound.
func (rs *Runs) Retire(id string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.doneOrder = append(rs.doneOrder, id)
	for len(rs.doneOrder) > rs.keep {
		delete(rs.jobs, rs.doneOrder[0])
		rs.doneOrder = rs.doneOrder[1:]
	}
}

// Active counts unfinished runs.
func (rs *Runs) Active() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := 0
	for _, run := range rs.jobs {
		if !run.Done() {
			n++
		}
	}
	return n
}

// ServeStream writes a run as NDJSON: every result line as it completes,
// then the summary line. Late subscribers get a full replay; a
// ?from=<n> cursor skips the first n lines of the completion-ordered
// replay instead, which is how a client (or the shard coordinator's
// retry path) resumes a stream that died after n lines without paying
// for — or double-counting — what it already has. Large grids render
// progressively because each line is flushed as written.
func ServeStream(w http.ResponseWriter, r *http.Request, run *Run) {
	next := 0
	if from := r.URL.Query().Get("from"); from != "" {
		n, err := strconv.Atoi(from)
		if err != nil || n < 0 {
			WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false,
				"from must be a non-negative integer, got %q", from)
			return
		}
		next = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// A disconnecting client must unblock the cond wait below. The
	// monitor takes run.mu before broadcasting so the wake-up cannot slip
	// into the gap between the loop's ctx.Err() check and its
	// cond.Wait registration (a lost wake-up would strand the handler
	// until the sweep's next result).
	ctx := r.Context()
	go func() {
		<-ctx.Done()
		run.mu.Lock()
		//lint:ignore SA2001 empty critical section on purpose: it
		// serialises with the check-then-Wait window before waking.
		run.mu.Unlock()
		run.cond.Broadcast()
	}()

	for {
		run.mu.Lock()
		for next >= len(run.results) && !run.done && ctx.Err() == nil {
			run.cond.Wait()
		}
		var chunk []wire.Result
		if next < len(run.results) {
			chunk = run.results[next:len(run.results):len(run.results)]
		}
		next += len(chunk)
		done := run.done && next >= len(run.results)
		summary := run.summary
		run.mu.Unlock()

		if ctx.Err() != nil {
			return
		}
		for _, line := range chunk {
			if enc.Encode(line) != nil {
				return // client went away
			}
		}
		if done {
			enc.Encode(summary)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if flusher != nil && len(chunk) > 0 {
			flusher.Flush()
		}
	}
}
