package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"harvsim/internal/wire"
)

// scrapeMetrics fetches GET /metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one un-labelled sample from an exposition body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %q not in exposition:\n%s", name, body)
	return 0
}

// TestMetricsEndpointMatchesStream is the tentpole acceptance check at
// the server layer: after a cold + warm run of the same grid, the
// /metrics exposition must agree with the NDJSON summaries — batch job
// and cache-hit counters, sweep-level finished/exec counts, and the
// collect-time cache bridge.
func TestMetricsEndpointMatchesStream(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := wire.SweepRequest{Spec: grid64Spec(0.25)}
	_, coldSum := streamSweep(t, ts, postSweep(t, ts, req))
	_, warmSum := streamSweep(t, ts, postSweep(t, ts, req))
	if warmSum.CacheHits != 64 {
		t.Fatalf("warm repeat hit the cache %d/64 times", warmSum.CacheHits)
	}

	body := scrapeMetrics(t, ts)
	jobs := coldSum.Jobs + warmSum.Jobs
	if got := metricValue(t, body, "harvsim_batch_jobs_total"); got != float64(jobs) {
		t.Errorf("batch_jobs_total = %g, streams said %d", got, jobs)
	}
	hits := coldSum.CacheHits + warmSum.CacheHits
	if got := metricValue(t, body, "harvsim_batch_cache_hits_total"); got != float64(hits) {
		t.Errorf("batch_cache_hits_total = %g, streams said %d", got, hits)
	}
	if got := metricValue(t, body, "harvsim_server_sweeps_finished_total"); got != 2 {
		t.Errorf("sweeps_finished_total = %g, want 2", got)
	}
	if got := metricValue(t, body, "harvsim_server_sweep_exec_seconds_count"); got != 2 {
		t.Errorf("sweep_exec_seconds_count = %g, want 2", got)
	}
	if got := metricValue(t, body, "harvsim_server_sweeps_active"); got != 0 {
		t.Errorf("sweeps_active = %g, want 0", got)
	}
	// The collect-time bridge reads the same counters /v1/cache/stats
	// serves.
	var cs wire.CacheStats
	getJSON(t, ts, "/v1/cache/stats", &cs)
	if got := metricValue(t, body, "harvsim_cache_hits_total"); got != float64(cs.Hits) {
		t.Errorf("cache_hits_total = %g, /v1/cache/stats says %d", got, cs.Hits)
	}
	if got := metricValue(t, body, "harvsim_cache_entries"); got != float64(cs.Entries) {
		t.Errorf("cache_entries = %g, /v1/cache/stats says %d", got, cs.Entries)
	}
}

// TestQueuedSweepSeparatesQueueFromWall: with MaxActive=1 the second
// concurrent sweep waits for the first's slot, and that wait must land
// in queued_ms, not wall_ms — the regression this PR fixes had WallMS
// conflating the two, skewing contended benchmarks.
func TestQueuedSweepSeparatesQueueFromWall(t *testing.T) {
	srv := New(Options{MaxActive: 1, Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := postSweep(t, ts, wire.SweepRequest{Spec: grid64Spec(0.25)})
	second := postSweep(t, ts, wire.SweepRequest{Spec: wire.Spec{
		Scenario: wire.Scenario{Kind: "charge", DurationS: 0.25},
		Axes:     []wire.Axis{{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4}}},
	}})

	_, sum1 := streamSweep(t, ts, first)
	_, sum2 := streamSweep(t, ts, second)
	if sum1.QueuedMS > 100 {
		t.Errorf("first sweep queued %dms with a free slot", sum1.QueuedMS)
	}
	if sum2.QueuedMS <= 0 {
		t.Errorf("second sweep reports queued_ms=%d behind a %dms sweep", sum2.QueuedMS, sum1.WallMS)
	}
	// The execution wall must not absorb the queue wait: the 2-job
	// second sweep cannot plausibly take as long as its own queue time
	// plus the 64-job first sweep.
	if sum2.WallMS >= sum2.QueuedMS+sum1.WallMS {
		t.Errorf("second sweep wall_ms=%d still conflates queue wait (queued_ms=%d)", sum2.WallMS, sum2.QueuedMS)
	}
	// Status reports end-to-end elapsed as the sum of the two clocks.
	var st wire.JobStatus
	getJSON(t, ts, "/v1/jobs/"+second.ID, &st)
	if st.ElapsedMS != sum2.QueuedMS+sum2.WallMS {
		t.Errorf("status elapsed_ms=%d, want queued+wall=%d", st.ElapsedMS, sum2.QueuedMS+sum2.WallMS)
	}
}

// TestSettleValidatedBeforeExpansion pins the hoisted validation order:
// an invalid settle_frac is rejected before Compile/Jobs do any
// per-grid-point work.
func TestSettleValidatedBeforeExpansion(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(req wire.SweepRequest) (int, string) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		msg, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(msg)
	}

	// Ordering proof: this spec cannot compile (unknown axis parameter),
	// so getting the settle_frac error back means the scalar check ran
	// first — before the fix, the compile error won.
	code, msg := post(wire.SweepRequest{
		Spec: wire.Spec{
			Scenario: wire.Scenario{Kind: "charge", DurationS: 0.25},
			Axes:     []wire.Axis{{Kind: wire.AxisFloat, Param: "no.such.param", Values: []float64{1}}},
		},
		SettleFrac: 1.5,
	})
	if code != http.StatusBadRequest || !strings.Contains(msg, "settle_frac") {
		t.Errorf("uncompilable spec + bad settle: %d %q, want 400 mentioning settle_frac", code, msg)
	}

	// A maximum-size grid (exactly the 4096-job budget) with a bad
	// settle_frac returns 400 fast, without cloning 4096 configs.
	start := time.Now()
	code, msg = post(wire.SweepRequest{
		Spec: wire.Spec{
			Scenario: wire.Scenario{Kind: "charge", DurationS: 0.25},
			Axes:     []wire.Axis{{Kind: wire.AxisSeed, BaseSeed: 9, Count: 4096}},
		},
		SettleFrac: -0.5,
	})
	if code != http.StatusBadRequest || !strings.Contains(msg, "settle_frac") {
		t.Errorf("max grid + bad settle: %d %q, want 400 mentioning settle_frac", code, msg)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("max-size grid took %v to reject a scalar field", d)
	}
}

// TestCancelReportsActualState: DELETE on a finished run must say so —
// a client that reads "cancelling" off a completed sweep will poll for
// a transition that never comes.
func TestCancelReportsActualState(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	del := func(id string) map[string]any {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %s: %s", id, resp.Status)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Drive the run registry directly so each lifecycle state is exact,
	// not a race against real engine timing.
	newRun := func() (*Run, *bool) {
		cancelled := false
		run := srv.runs.New(1, func() { cancelled = true })
		return run, &cancelled
	}
	running, runningCancelled := newRun()
	done, doneCancelled := newRun()
	done.Finish(wire.Summary{Type: wire.LineSummary, V: wire.Version})
	cancelledRun, _ := newRun()
	cancelledRun.Cancel()
	cancelledRun.Finish(wire.Summary{Type: wire.LineSummary, V: wire.Version})

	cases := []struct {
		name       string
		run        *Run
		wantStatus string
	}{
		{"running", running, "cancelling"},
		{"done", done, "done"},
		{"cancelled then finished", cancelledRun, "done"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := del(tc.run.ID)
			if out["status"] != tc.wantStatus || out["id"] != tc.run.ID {
				t.Errorf("DELETE -> %v, want status %q", out, tc.wantStatus)
			}
		})
	}
	if !*runningCancelled {
		t.Error("DELETE on a running sweep did not invoke its cancel func")
	}
	if *doneCancelled {
		t.Error("DELETE on a finished sweep invoked its cancel func")
	}
}

// TestStreamFromBeyondEnd: a resume cursor past the end of a finished
// stream yields exactly one line — the summary — not an error and not a
// replay.
func TestStreamFromBeyondEnd(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	acc := postSweep(t, ts, wire.SweepRequest{Spec: wire.Spec{
		Scenario: wire.Scenario{Kind: "charge", DurationS: 0.25},
		Axes:     []wire.Axis{{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4, 5, 6}}},
	}})
	streamSweep(t, ts, acc) // wait for completion

	resp, err := http.Get(ts.URL + acc.StreamURL + "?from=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("from=10 on a 4-result stream delivered %d lines:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &probe); err != nil || probe.Type != wire.LineSummary {
		t.Fatalf("sole line is %q, want the summary", lines[0])
	}
}

// TestStreamMonitorExitsOnDisconnect: the per-request monitor goroutine
// (and the handler itself) must exit when the client goes away while
// the run is still open — otherwise every dropped long-poll leaks two
// goroutines for the life of the sweep.
func TestStreamMonitorExitsOnDisconnect(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A run that never finishes: the stream can only terminate via
	// client disconnect.
	run := srv.runs.New(1, func() {})

	before := runtime.NumGoroutine()
	const clients = 4
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+run.ID+"/stream", nil)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				// Blocks until the context cancels the request.
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			errs <- err
		}()
	}
	// Let the handlers reach their cond.Wait before disconnecting.
	time.Sleep(100 * time.Millisecond)
	cancel()
	for i := 0; i < clients; i++ {
		<-errs
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d -> %d: stream handlers/monitors leaked after disconnect",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
