// Package server is the long-lived sweep service: an HTTP/JSON front-end
// over the batch layer that turns one-shot CLI sweeps into a shared,
// cache-warm design-exploration endpoint. One server process owns
//
//   - one content-addressed result cache shared by every request (so a
//     design point any client ever computed is a lookup for all of
//     them, and concurrent identical jobs are deduplicated in flight by
//     the cache's singleflight), and
//   - one workspace-pool cache, so request N's workers inherit request
//     N-1's warmed same-shape workspaces.
//
// Endpoints:
//
//	POST   /v1/sweep            submit a wire.SweepRequest; returns 202 + job id
//	GET    /v1/jobs/{id}        job status (add ?results=1 for the full list when done)
//	GET    /v1/jobs/{id}/stream NDJSON: one wire.Result line per job as it
//	                            completes, then one wire.Summary line
//	DELETE /v1/jobs/{id}        cancel a running sweep
//	GET    /v1/cache/stats      shared cache counters
//	GET    /healthz             liveness
//
// Budgets: a request's expansion is bounded by Options.MaxJobs and its
// wall clock by Options.MaxRequestTime (clients may ask for less via
// budget_ms, never more); the deadline propagates as context
// cancellation into batch.Run, so an expired sweep stops between jobs
// and reports the unstarted remainder as cancelled. Options.MaxActive
// bounds how many sweeps simulate concurrently; excess sweeps queue.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/wire"
)

// Options configures a Server. The zero value is ready for tests: an
// in-memory cache, GOMAXPROCS workers, default budgets.
type Options struct {
	// Workers caps the per-sweep worker pool (and is the default when a
	// request does not ask for fewer). 0 = GOMAXPROCS.
	Workers int
	// MaxActive bounds concurrently simulating sweeps; further sweeps
	// queue in submission order. 0 = 2.
	MaxActive int
	// MaxJobs rejects requests expanding beyond this many jobs (413).
	// 0 = 4096.
	MaxJobs int
	// MaxRequestTime is the wall-clock budget ceiling per sweep; the
	// sweep's context is cancelled when it expires. 0 = 120s.
	MaxRequestTime time.Duration
	// Cache is the shared result store; nil builds an in-memory cache
	// with the default capacity.
	Cache *batch.Cache
	// KeepFinished bounds how many finished sweeps stay queryable;
	// oldest are dropped first. 0 = 128.
	KeepFinished int
	// NoLockstep disables the ensemble-lockstep dispatch server-wide
	// (requests may also opt out individually; either switch wins).
	// Results are bit-identical either way.
	NoLockstep bool
}

func (o Options) maxActive() int {
	if o.MaxActive > 0 {
		return o.MaxActive
	}
	return 2
}

func (o Options) maxJobs() int {
	if o.MaxJobs > 0 {
		return o.MaxJobs
	}
	return 4096
}

func (o Options) maxRequestTime() time.Duration {
	if o.MaxRequestTime > 0 {
		return o.MaxRequestTime
	}
	return 120 * time.Second
}

func (o Options) keepFinished() int {
	if o.KeepFinished > 0 {
		return o.KeepFinished
	}
	return 128
}

// maxRequestBody bounds a sweep request's JSON body. Specs are small
// (names and number lists); a megabyte is orders of magnitude of
// headroom, not a DoS surface.
const maxRequestBody = 1 << 20

// sweepRun is one submitted sweep's lifecycle state. results accumulates
// in completion order (the stream order); done flips exactly once, after
// the last result is recorded. cond (over mu) wakes streamers on every
// append and on completion.
type sweepRun struct {
	id      string
	total   int
	started time.Time
	cancel  context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	results []wire.Result
	failed  int
	hits    int
	shared  int
	done    bool
	summary wire.Summary
}

func newSweepRun(id string, total int, cancel context.CancelFunc) *sweepRun {
	sw := &sweepRun{id: id, total: total, started: time.Now(), cancel: cancel}
	sw.cond = sync.NewCond(&sw.mu)
	return sw
}

// record appends one completed job's wire result (the batch OnResult
// hook; called concurrently from every worker).
func (sw *sweepRun) record(r wire.Result) {
	sw.mu.Lock()
	sw.results = append(sw.results, r)
	if r.Error != "" {
		sw.failed++
	}
	if r.Cached {
		sw.hits++
	}
	if r.Shared {
		sw.shared++
	}
	sw.mu.Unlock()
	sw.cond.Broadcast()
}

// finish marks the run complete.
func (sw *sweepRun) finish(summary wire.Summary) {
	sw.mu.Lock()
	sw.summary = summary
	sw.done = true
	sw.mu.Unlock()
	sw.cond.Broadcast()
}

// Server is the sweep service. Create with New, mount via Handler.
type Server struct {
	opt   Options
	cache *batch.Cache
	pools *batch.PoolCache
	sem   chan struct{}
	mux   *http.ServeMux

	mu   sync.Mutex
	seq  int64
	jobs map[string]*sweepRun
	// finished ids in completion order, for KeepFinished eviction.
	doneOrder []string
}

// New builds a server. The cache (Options.Cache or a fresh in-memory
// one) and the workspace pools live as long as the server: every
// request shares them.
func New(opt Options) *Server {
	s := &Server{
		opt:   opt,
		cache: opt.Cache,
		pools: batch.NewPoolCache(),
		sem:   make(chan struct{}, opt.maxActive()),
		jobs:  make(map[string]*sweepRun),
	}
	if s.cache == nil {
		s.cache = batch.NewCache(0)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	return s
}

// Cache exposes the shared result cache (for priming or inspection by
// an embedding process).
func (s *Server) Cache() *batch.Cache { return s.cache }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP lets the Server be mounted directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, wire.Error{Error: fmt.Sprintf(format, args...)})
}

// handleSweep validates, compiles and launches a sweep, replying 202
// with the job id before any simulation work happens.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req wire.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Budget-check the declared size BEFORE compiling: Compile
	// materialises seed lists and Jobs clones a Config per job, so a
	// few hundred bytes of hostile axis product must be rejected while
	// it is still arithmetic (Size saturates instead of overflowing).
	if n := req.Spec.Size(); n > s.opt.maxJobs() {
		writeError(w, http.StatusRequestEntityTooLarge,
			"sweep would expand to %d jobs, server budget is %d", n, s.opt.maxJobs())
		return
	}
	bspec, err := req.Spec.Compile()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs, err := bspec.Jobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(jobs) > s.opt.maxJobs() {
		writeError(w, http.StatusRequestEntityTooLarge,
			"sweep expands to %d jobs, server budget is %d", len(jobs), s.opt.maxJobs())
		return
	}
	if req.SettleFrac < 0 || req.SettleFrac >= 1 {
		writeError(w, http.StatusBadRequest, "settle_frac must be in [0, 1), got %g", req.SettleFrac)
		return
	}

	// Budgets: the client may shrink, never grow, the server's ceiling.
	// Compare in the millisecond domain first so an absurd BudgetMS
	// cannot overflow the Duration multiplication into an
	// already-expired deadline — it just means "server maximum".
	budget := s.opt.maxRequestTime()
	if req.BudgetMS > 0 && req.BudgetMS < budget.Milliseconds() {
		budget = time.Duration(req.BudgetMS) * time.Millisecond
	}
	// Clients may shrink the worker pool below the server's cap, never
	// grow it (with Options.Workers unset the cap is GOMAXPROCS, so an
	// oversized request cannot conjure thousands of goroutines — and
	// thousands of permanently pooled workspaces — on a default server).
	workerCap := s.opt.Workers
	if workerCap <= 0 {
		workerCap = runtime.GOMAXPROCS(0)
	}
	workers := workerCap
	if req.Workers > 0 && req.Workers < workerCap {
		workers = req.Workers
	}

	ctx, cancel := context.WithTimeout(context.Background(), budget)
	s.mu.Lock()
	s.seq++
	id := "sw-" + strconv.FormatInt(s.seq, 10)
	sw := newSweepRun(id, len(jobs), cancel)
	s.jobs[id] = sw
	s.mu.Unlock()

	opt := batch.Options{
		Workers:    workers,
		SettleFrac: req.SettleFrac,
		Cache:      s.cache,
		Pools:      s.pools,
		NoLockstep: req.NoLockstep || s.opt.NoLockstep,
	}
	// The batch layer stamps each Result with the content-address key it
	// computed for its cache lookup, so the hook only converts — no
	// second reflection hash on the worker's critical path.
	opt.OnResult = func(r batch.Result) {
		sw.record(wire.ResultOf(r))
	}
	go s.run(ctx, sw, jobs, opt)

	writeJSON(w, http.StatusAccepted, wire.SweepAccepted{
		ID:        id,
		Jobs:      len(jobs),
		StatusURL: "/v1/jobs/" + id,
		StreamURL: "/v1/jobs/" + id + "/stream",
	})
}

// run executes a submitted sweep under the concurrency semaphore and
// finalises its state.
func (s *Server) run(ctx context.Context, sw *sweepRun, jobs []batch.Job, opt batch.Options) {
	defer sw.cancel()
	// Queue for an execution slot; an expired budget while queued still
	// runs batch.Run, which then reports every job cancelled (so streams
	// and status always resolve).
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
	}
	results := batch.Run(ctx, jobs, opt)
	sw.finish(wire.SummaryOf(results, time.Since(sw.started)))
	s.retire(sw.id)
}

// retire records a finished sweep and evicts the oldest finished ones
// beyond the retention bound.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneOrder = append(s.doneOrder, id)
	for len(s.doneOrder) > s.opt.keepFinished() {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// lookup resolves a job id.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *sweepRun {
	id := r.PathValue("id")
	s.mu.Lock()
	sw := s.jobs[id]
	s.mu.Unlock()
	if sw == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	}
	return sw
}

// handleJob reports a sweep's status; ?results=1 includes the full
// result list once done.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	sw.mu.Lock()
	st := wire.JobStatus{
		ID:        sw.id,
		State:     wire.StateRunning,
		Jobs:      sw.total,
		Completed: len(sw.results),
		Failed:    sw.failed,
		CacheHits: sw.hits,
		Shared:    sw.shared,
		ElapsedMS: time.Since(sw.started).Milliseconds(),
	}
	if sw.done {
		st.State = wire.StateDone
		st.ElapsedMS = sw.summary.WallMS
		sum := sw.summary
		st.Summary = &sum
		if r.URL.Query().Get("results") == "1" {
			st.Results = append([]wire.Result(nil), sw.results...)
		}
	}
	sw.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleStream writes NDJSON: every result line as it completes (replayed
// from the start for late subscribers), then the summary line. Large
// grids render progressively because each line is flushed as written.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// A disconnecting client must unblock the cond wait below. The
	// monitor takes sw.mu before broadcasting so the wake-up cannot slip
	// into the gap between the loop's ctx.Err() check and its
	// cond.Wait registration (a lost wake-up would strand the handler
	// until the sweep's next result).
	ctx := r.Context()
	go func() {
		<-ctx.Done()
		sw.mu.Lock()
		//lint:ignore SA2001 empty critical section on purpose: it
		// serialises with the check-then-Wait window before waking.
		sw.mu.Unlock()
		sw.cond.Broadcast()
	}()

	next := 0
	for {
		sw.mu.Lock()
		for next >= len(sw.results) && !sw.done && ctx.Err() == nil {
			sw.cond.Wait()
		}
		chunk := sw.results[next:len(sw.results):len(sw.results)]
		next += len(chunk)
		done := sw.done && next == len(sw.results)
		summary := sw.summary
		sw.mu.Unlock()

		if ctx.Err() != nil {
			return
		}
		for _, line := range chunk {
			if enc.Encode(line) != nil {
				return // client went away
			}
		}
		if done {
			enc.Encode(summary)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if flusher != nil && len(chunk) > 0 {
			flusher.Flush()
		}
	}
}

// handleCancel cancels a running sweep's context. Running jobs finish
// (engines are non-preemptible); unstarted jobs report cancellation.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	sw.cancel()
	writeJSON(w, http.StatusOK, map[string]string{"id": sw.id, "status": "cancelling"})
}

// handleCacheStats reports the shared cache's counters.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.CacheStatsOf(s.cache))
}

// handleHealth is the liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	active := 0
	for _, sw := range s.jobs {
		sw.mu.Lock()
		if !sw.done {
			active++
		}
		sw.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, wire.Health{
		Status:       "ok",
		ActiveSweeps: active,
		CacheEntries: s.cache.Stats().Entries,
	})
}
