// Package server is the long-lived sweep service: an HTTP/JSON front-end
// over the batch layer that turns one-shot CLI sweeps into a shared,
// cache-warm design-exploration endpoint. One server process owns
//
//   - one content-addressed result cache shared by every request (so a
//     design point any client ever computed is a lookup for all of
//     them, and concurrent identical jobs are deduplicated in flight by
//     the cache's singleflight), and
//   - one workspace-pool cache, so request N's workers inherit request
//     N-1's warmed same-shape workspaces.
//
// Endpoints:
//
//	POST   /v1/sweep            submit a wire.SweepRequest; returns 202 + job id
//	GET    /v1/jobs/{id}        job status (add ?results=1 for the full list when done)
//	GET    /v1/jobs/{id}/stream NDJSON: one wire.Result line per job as it
//	                            completes, then one wire.Summary line;
//	                            ?from=<n> skips the first n replay lines
//	GET    /v1/jobs/{id}/trace  NDJSON: one wire.SpanLine per finished
//	                            span of a traced sweep's flight recorder
//	                            (404 when the sweep was not traced);
//	                            ?from=<n> resumes past the first n spans
//	DELETE /v1/jobs/{id}        cancel a running sweep
//	GET    /v1/cache/stats      shared cache counters
//	GET    /healthz             liveness
//
// Every non-2xx response carries the canonical JSON error envelope
// {"error":{"code","message","retryable"}} (see wire.Error), including
// mux-generated 404/405s — the CanonicalErrors middleware guarantees it.
//
// Budgets: a request's expansion is bounded by Options.MaxJobs and its
// wall clock by Options.MaxRequestTime (clients may ask for less via
// budget_ms, never more); the deadline propagates as context
// cancellation into batch.Run, so an expired sweep stops between jobs
// and reports the unstarted remainder as cancelled. Options.MaxActive
// bounds how many sweeps simulate concurrently; excess sweeps queue.
//
// Sharding: a request may carry "indices" — a strictly increasing subset
// of the spec's row-major expansion — and the server then expands and
// runs only those jobs (batch.SweepSpec.JobsAt), while result lines keep
// the global expansion indices. That is the worker half of the shard
// coordinator protocol (internal/shard): the full grid must still clear
// this server's MaxJobs budget, because the declared axis product is
// validated before compilation either way.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/metrics"
	"harvsim/internal/tracing"
	"harvsim/internal/wire"
)

// Options configures a Server. The zero value is ready for tests: an
// in-memory cache, GOMAXPROCS workers, default budgets.
type Options struct {
	// Workers caps the per-sweep worker pool (and is the default when a
	// request does not ask for fewer). 0 = GOMAXPROCS.
	Workers int
	// MaxActive bounds concurrently simulating sweeps; further sweeps
	// queue in submission order. 0 = 2.
	MaxActive int
	// MaxJobs rejects requests expanding beyond this many jobs (413).
	// 0 = 4096.
	MaxJobs int
	// MaxRequestTime is the wall-clock budget ceiling per sweep; the
	// sweep's context is cancelled when it expires. 0 = 120s.
	MaxRequestTime time.Duration
	// Cache is the shared result store; nil builds an in-memory cache
	// with the default capacity.
	Cache *batch.Cache
	// KeepFinished bounds how many finished sweeps stay queryable;
	// oldest are dropped first. 0 = 128.
	KeepFinished int
	// NoLockstep disables the ensemble-lockstep dispatch server-wide
	// (requests may also opt out individually; either switch wins).
	// Results are bit-identical either way.
	NoLockstep bool
}

func (o Options) maxActive() int {
	if o.MaxActive > 0 {
		return o.MaxActive
	}
	return 2
}

func (o Options) maxJobs() int {
	if o.MaxJobs > 0 {
		return o.MaxJobs
	}
	return 4096
}

func (o Options) maxRequestTime() time.Duration {
	if o.MaxRequestTime > 0 {
		return o.MaxRequestTime
	}
	return 120 * time.Second
}

// maxRequestBody bounds a sweep request's JSON body. Specs are small
// (names and number lists); a megabyte is orders of magnitude of
// headroom, not a DoS surface.
const maxRequestBody = 1 << 20

// Server is the sweep service. Create with New, mount via Handler.
type Server struct {
	opt      Options
	cache    *batch.Cache
	pools    *batch.PoolCache
	sem      chan struct{}
	runs     *Runs
	handler  http.Handler
	registry *metrics.Registry
	metrics  *serverMetrics
	batchM   *batch.Metrics
	alerts   *tracing.Alerts
}

// New builds a server. The cache (Options.Cache or a fresh in-memory
// one) and the workspace pools live as long as the server: every
// request shares them.
func New(opt Options) *Server {
	s := &Server{
		opt:   opt,
		cache: opt.Cache,
		pools: batch.NewPoolCache(),
		sem:   make(chan struct{}, opt.maxActive()),
		runs:  NewRuns("sw-", opt.KeepFinished),
	}
	if s.cache == nil {
		s.cache = batch.NewCache(0)
	}
	s.registry = metrics.NewRegistry()
	s.batchM = batch.NewMetrics(s.registry)
	s.metrics = newServerMetrics(s.registry, s.runs, s.cache)
	s.alerts = tracing.NewAlerts()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	mux.Handle("GET /metrics", s.registry.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.handler = CanonicalErrors(mux)
	return s
}

// Metrics exposes the server's metric registry — the same one GET
// /metrics collects — so an embedding process can register its own
// instruments alongside the service's.
func (s *Server) Metrics() *metrics.Registry { return s.registry }

// Cache exposes the shared result cache (for priming or inspection by
// an embedding process).
func (s *Server) Cache() *batch.Cache { return s.cache }

// Alerts exposes the server's threshold watcher. Arm rules with the
// Watch* helpers (or Alerts().Watch directly), register sinks with
// Alerts().Notify, and start Alerts().Run once at boot.
func (s *Server) Alerts() *tracing.Alerts { return s.alerts }

// WatchFailed arms an alert on the cumulative failed-jobs counter
// (harvsim_batch_failed_total) reaching bound.
func (s *Server) WatchFailed(bound float64) {
	s.alerts.Watch("failed_total", bound, func() float64 { return float64(s.batchM.Failed.Value()) })
}

// WatchExecP99 arms an alert on the p99 of sweep execution wall time
// (harvsim_server_sweep_exec_seconds) reaching bound seconds.
func (s *Server) WatchExecP99(bound float64) {
	s.alerts.Watch("exec_p99_seconds", bound, func() float64 { return s.metrics.execSeconds.Quantile(0.99) })
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// ServeHTTP lets the Server be mounted directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// handleSweep validates, compiles and launches a sweep, replying 202
// with the job id before any simulation work happens.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req wire.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false, "bad request body: %v", err)
		return
	}
	if err := req.Spec.CheckVersion(); err != nil {
		WriteError(w, http.StatusBadRequest, wire.CodeUnsupportedVersion, false, "%v", err)
		return
	}
	// Scalar-field validation comes before any expansion work: a bad
	// settle_frac must cost a comparison, not a Compile plus one Config
	// clone per grid point.
	if req.SettleFrac < 0 || req.SettleFrac >= 1 {
		WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false,
			"settle_frac must be in [0, 1), got %g", req.SettleFrac)
		return
	}
	// Budget-check the declared size BEFORE compiling: Compile
	// materialises seed lists and Jobs clones a Config per job, so a
	// few hundred bytes of hostile axis product must be rejected while
	// it is still arithmetic (Size saturates instead of overflowing).
	// A sharded request only runs its indices, but its declared grid
	// must clear the same bar, for the same reason.
	if n := req.Spec.Size(); n > s.opt.maxJobs() {
		WriteError(w, http.StatusRequestEntityTooLarge, wire.CodeTooManyJobs, false,
			"sweep would expand to %d jobs, server budget is %d", n, s.opt.maxJobs())
		return
	}
	for i, ix := range req.Indices {
		if i > 0 && ix <= req.Indices[i-1] {
			WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false,
				"indices must be strictly increasing: indices[%d]=%d after %d", i, ix, req.Indices[i-1])
			return
		}
	}
	expandStart := time.Now()
	bspec, err := req.Spec.Compile()
	if err != nil {
		code := wire.CodeBadRequest
		if errors.Is(err, wire.ErrUnsupportedVersion) {
			code = wire.CodeUnsupportedVersion
		}
		WriteError(w, http.StatusBadRequest, code, false, "%v", err)
		return
	}
	var jobs []batch.Job
	if len(req.Indices) > 0 {
		jobs, err = bspec.JobsAt(req.Indices)
	} else {
		jobs, err = bspec.Jobs()
	}
	if err != nil {
		WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false, "%v", err)
		return
	}
	if len(jobs) > s.opt.maxJobs() {
		WriteError(w, http.StatusRequestEntityTooLarge, wire.CodeTooManyJobs, false,
			"sweep expands to %d jobs, server budget is %d", len(jobs), s.opt.maxJobs())
		return
	}
	expandDur := time.Since(expandStart)

	// Budgets: the client may shrink, never grow, the server's ceiling.
	// Compare in the millisecond domain first so an absurd BudgetMS
	// cannot overflow the Duration multiplication into an
	// already-expired deadline — it just means "server maximum".
	budget := s.opt.maxRequestTime()
	if req.BudgetMS > 0 && req.BudgetMS < budget.Milliseconds() {
		budget = time.Duration(req.BudgetMS) * time.Millisecond
	}
	// Clients may shrink the worker pool below the server's cap, never
	// grow it (with Options.Workers unset the cap is GOMAXPROCS, so an
	// oversized request cannot conjure thousands of goroutines — and
	// thousands of permanently pooled workspaces — on a default server).
	workerCap := s.opt.Workers
	if workerCap <= 0 {
		workerCap = runtime.GOMAXPROCS(0)
	}
	workers := workerCap
	if req.Workers > 0 && req.Workers < workerCap {
		workers = req.Workers
	}

	ctx, cancel := context.WithTimeout(context.Background(), budget)
	run := s.runs.New(len(jobs), cancel)

	// Tracing is opt-in per request: a non-empty trace id builds the
	// sweep's flight recorder. The root span links to the caller's span
	// (a coordinator's shard span), so fleet traces stay connected; the
	// expansion above was timed unconditionally (two clock reads on a
	// cold path) so it can be reported here without re-compiling.
	var root *tracing.Active
	if req.Trace != "" {
		rec := tracing.New(req.Trace, 0)
		root = rec.Start("sweep", req.Span)
		rec.Add("expand", root.ID(), -1, expandStart, expandDur)
		run.Trace = rec
	}

	opt := batch.Options{
		Workers:    workers,
		SettleFrac: req.SettleFrac,
		Cache:      s.cache,
		Pools:      s.pools,
		NoLockstep: req.NoLockstep || s.opt.NoLockstep,
		Metrics:    s.batchM,
		Trace:      run.Trace,
	}
	// The batch layer stamps each Result with the content-address key it
	// computed for its cache lookup, so the hook only converts — no
	// second reflection hash on the worker's critical path. For a shard
	// subset, local slice positions are remapped to the global expansion
	// indices the coordinator merges by.
	indices := req.Indices
	opt.OnResult = func(r batch.Result) {
		wr := wire.ResultOf(r)
		if len(indices) > 0 {
			wr.Index = indices[r.Index]
		}
		run.Record(wr)
	}
	go s.run(ctx, run, jobs, opt, root)

	WriteJSON(w, http.StatusAccepted, wire.SweepAccepted{
		V:         wire.Version,
		ID:        run.ID,
		Jobs:      len(jobs),
		StatusURL: "/v1/jobs/" + run.ID,
		StreamURL: "/v1/jobs/" + run.ID + "/stream",
	})
}

// run executes a submitted sweep under the concurrency semaphore and
// finalises its state. root is the sweep's open trace span (nil when
// tracing is off); its queue/exec children split the same clock the
// summary's QueuedMS/WallMS report.
func (s *Server) run(ctx context.Context, run *Run, jobs []batch.Job, opt batch.Options, root *tracing.Active) {
	defer run.Cancel()
	// Queue for an execution slot; an expired budget while queued still
	// runs batch.Run, which then reports every job cancelled (so streams
	// and status always resolve).
	queueStart := time.Now()
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
	}
	// The clock a summary reports splits here: queued covers the
	// semaphore wait since submission, wall covers execution only. A
	// sweep queued behind MaxActive used to fold its wait into WallMS,
	// which both misled clients and would poison the latency histograms
	// under contention.
	queued := time.Since(run.Started)
	run.Trace.Add("queue", root.ID(), -1, queueStart, time.Since(queueStart))
	execSpan := run.Trace.Start("exec", root.ID())
	opt.TraceParent = execSpan.ID()
	execStart := time.Now()
	results := batch.Run(ctx, jobs, opt)
	wall := time.Since(execStart)
	execSpan.End()
	sum := wire.SummaryOf(results, wall)
	sum.QueuedMS = queued.Milliseconds()
	run.Finish(sum)
	root.End()
	run.Trace.Finish()
	s.metrics.finished.Inc()
	s.metrics.queueSeconds.Observe(queued.Seconds())
	s.metrics.execSeconds.Observe(wall.Seconds())
	s.runs.Retire(run.ID)
}

// lookup resolves a job id.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Run {
	id := r.PathValue("id")
	run := s.runs.Lookup(id)
	if run == nil {
		WriteError(w, http.StatusNotFound, wire.CodeNotFound, false, "unknown job %q", id)
	}
	return run
}

// handleJob reports a sweep's status; ?results=1 includes the full
// result list once done.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	WriteJSON(w, http.StatusOK, run.Status(r.URL.Query().Get("results") == "1"))
}

// handleStream streams a run as NDJSON (see ServeStream).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	ServeStream(w, r, run)
}

// handleCancel cancels a running sweep's context. Running jobs finish
// (engines are non-preemptible); unstarted jobs report cancellation. A
// finished run reports "done" instead of pretending to cancel — client
// and coordinator retry logic must not misread a completed sweep as
// still winding down.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	status := "cancelling"
	if run.Done() {
		status = "done"
	} else {
		run.Cancel()
	}
	WriteJSON(w, http.StatusOK, map[string]any{"v": wire.Version, "id": run.ID, "status": status})
}

// handleTrace replays a sweep's flight recorder as NDJSON span lines
// (see ServeTrace). A sweep submitted without a trace id has no
// recorder and reports 404.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(w, r)
	if run == nil {
		return
	}
	if run.Trace == nil {
		WriteError(w, http.StatusNotFound, wire.CodeNotFound, false,
			"job %q was not traced (submit with a \"trace\" id)", run.ID)
		return
	}
	ServeTrace(w, r, run.Trace)
}

// handleCacheStats reports the shared cache's counters.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, wire.CacheStatsOf(s.cache))
}

// handleHealth is the liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, wire.Health{
		V:            wire.Version,
		Status:       "ok",
		ActiveSweeps: s.runs.Active(),
		CacheEntries: s.cache.Stats().Entries,
	})
}
