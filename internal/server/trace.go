package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"harvsim/internal/tracing"
	"harvsim/internal/wire"
)

// ServeTrace replays a sweep's flight recorder as NDJSON — one
// wire.SpanLine per finished span, with the same ?from=<n> cursor
// semantics the result streams use (a resuming client skips the first n
// spans of the absolute sequence; a cursor behind the ring's eviction
// horizon is clamped forward). The stream stays open while the sweep
// runs, delivering spans as they finish, and terminates once the
// recorder is sealed and fully drained. Shared by the single-host
// server and the shard coordinator.
func ServeTrace(w http.ResponseWriter, r *http.Request, rec *tracing.Recorder) {
	var from int64
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n < 0 {
			WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false,
				"from must be a non-negative integer, got %q", q)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// A disconnecting client must unblock the Next wait; Interrupt
	// serialises with its check-then-wait window, so the wake-up cannot
	// be lost.
	ctx := r.Context()
	stop := func() bool { return ctx.Err() != nil }
	go func() {
		<-ctx.Done()
		rec.Interrupt()
	}()

	for {
		spans, next, done := rec.Next(from, stop)
		if ctx.Err() != nil {
			return
		}
		from = next
		for _, s := range spans {
			if enc.Encode(wire.SpanLineOf(s)) != nil {
				return // client went away
			}
		}
		if flusher != nil && (len(spans) > 0 || done) {
			flusher.Flush()
		}
		if done {
			return
		}
	}
}
