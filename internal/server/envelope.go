package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"harvsim/internal/wire"
)

// writeJSON writes a JSON response body.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes the canonical error envelope
// {"error":{"code","message","retryable"}} — the one shape every
// non-2xx response from the sweep service and the shard coordinator
// carries.
func WriteError(w http.ResponseWriter, status int, code string, retryable bool, format string, args ...any) {
	WriteJSON(w, status, wire.Errorf(code, retryable, format, args...))
}

// envelopeFor maps an HTTP status the mux (or any non-envelope-aware
// layer) produced to the canonical envelope.
func envelopeFor(status int) wire.Error {
	switch {
	case status == http.StatusNotFound:
		return wire.Errorf(wire.CodeNotFound, false, "no such route")
	case status == http.StatusMethodNotAllowed:
		return wire.Errorf(wire.CodeMethodNotAllowed, false, "method not allowed")
	case status >= 500:
		return wire.Errorf(wire.CodeInternal, true, "%s", http.StatusText(status))
	default:
		return wire.Errorf(wire.CodeBadRequest, false, "%s", http.StatusText(status))
	}
}

// envelopeWriter intercepts non-JSON error responses (the mux's
// plain-text 404/405, any stray http.Error) and rewrites them as the
// canonical envelope. Handlers that already speak JSON pass through
// untouched.
type envelopeWriter struct {
	http.ResponseWriter
	wroteHeader bool
	intercepted bool
}

func (ew *envelopeWriter) WriteHeader(status int) {
	if ew.wroteHeader {
		return
	}
	ew.wroteHeader = true
	if status >= 400 && ew.Header().Get("Content-Type") != "application/json" {
		ew.intercepted = true
		body, _ := json.Marshal(envelopeFor(status))
		body = append(body, '\n')
		h := ew.Header()
		h.Set("Content-Type", "application/json")
		h.Set("Content-Length", strconv.Itoa(len(body)))
		ew.ResponseWriter.WriteHeader(status)
		ew.ResponseWriter.Write(body)
		return
	}
	ew.ResponseWriter.WriteHeader(status)
}

func (ew *envelopeWriter) Write(p []byte) (int, error) {
	if !ew.wroteHeader {
		ew.WriteHeader(http.StatusOK)
	}
	if ew.intercepted {
		// Swallow the original plain-text body; the envelope already went out.
		return len(p), nil
	}
	return ew.ResponseWriter.Write(p)
}

// Flush must pass through for NDJSON streaming to stay progressive.
func (ew *envelopeWriter) Flush() {
	if f, ok := ew.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// CanonicalErrors wraps a handler so every non-2xx response carries the
// canonical JSON error envelope, including responses the underlying
// ServeMux generates itself (unknown route 404, wrong-method 405).
func CanonicalErrors(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}
