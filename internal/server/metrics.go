package server

import (
	"harvsim/internal/batch"
	"harvsim/internal/metrics"
)

// serverMetrics is the sweep service's instrument bundle, registered on
// the server's private registry and served by GET /metrics. The batch
// bundle (harvsim_batch_*) shares the same registry, so one scrape sees
// job-level and sweep-level views of the same traffic.
type serverMetrics struct {
	finished *metrics.Counter
	// queueSeconds observes how long each sweep waited for a MaxActive
	// execution slot; execSeconds observes the execution wall that
	// follows. Keeping them separate is the point — their sum is the
	// client-visible latency, but only execSeconds says anything about
	// engine throughput (see wire.Summary.QueuedMS).
	queueSeconds *metrics.Histogram
	execSeconds  *metrics.Histogram
}

// newServerMetrics registers the sweep-level instruments plus
// collect-time bridges to the run registry and the shared cache's own
// counters (the cache keeps its stats; /metrics just reads them at
// scrape time, so the numbers always agree with GET /v1/cache/stats).
func newServerMetrics(r *metrics.Registry, runs *Runs, cache *batch.Cache) *serverMetrics {
	m := &serverMetrics{
		finished: r.Counter("harvsim_server_sweeps_finished_total", "Sweeps that ran to completion (cancelled and budget-expired included)."),
		queueSeconds: r.Histogram("harvsim_server_sweep_queue_seconds",
			"Time each sweep waited for a MaxActive execution slot.", nil),
		execSeconds: r.Histogram("harvsim_server_sweep_exec_seconds",
			"Execution wall time per sweep, queue wait excluded.", nil),
	}
	r.GaugeFunc("harvsim_server_sweeps_active", "Sweeps submitted but not yet finished.",
		func() float64 { return float64(runs.Active()) })
	r.CounterFunc("harvsim_cache_hits_total", "Result-cache lookups served from the cache.",
		func() int64 { return cache.Stats().Hits })
	r.CounterFunc("harvsim_cache_misses_total", "Result-cache lookups that fell through to a fresh run.",
		func() int64 { return cache.Stats().Misses })
	r.CounterFunc("harvsim_cache_shared_total", "Cache misses resolved by in-flight dedup (singleflight).",
		func() int64 { return cache.Stats().Shared })
	r.CounterFunc("harvsim_cache_stale_total", "Disk entries ignored as stale or unreadable.",
		func() int64 { return cache.Stats().Stale })
	r.CounterFunc("harvsim_cache_disk_hits_total", "Cache hits satisfied by the on-disk store.",
		func() int64 { return cache.Stats().DiskHits })
	r.CounterFunc("harvsim_cache_evictions_total", "In-memory cache entries dropped by the LRU bound.",
		func() int64 { return cache.Stats().Evictions })
	r.GaugeFunc("harvsim_cache_entries", "Current in-memory cache entry count.",
		func() float64 { return float64(cache.Stats().Entries) })
	return m
}
