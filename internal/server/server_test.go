package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/wire"
)

// grid64Spec is the wire form of the repo's 64-point benchmark grid
// (bench_test.go batchSweepGrid): coil resistance x multiplier stages
// over the supercap charge scenario.
func grid64Spec(duration float64) wire.Spec {
	return wire.Spec{
		Name:     "grid",
		Scenario: wire.Scenario{Kind: "charge", DurationS: duration, Set: map[string]float64{"initial_vc": 2.5}},
		Axes: []wire.Axis{
			{Kind: wire.AxisFloat, Param: "microgen.rc", Values: []float64{100, 180, 320, 560, 1000, 1800, 3200, 5600}},
			{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4, 5, 6, 7, 8, 9, 10}},
		},
	}
}

func postSweep(t *testing.T, ts *httptest.Server, req wire.SweepRequest) wire.SweepAccepted {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/sweep: %s: %s", resp.Status, msg)
	}
	var acc wire.SweepAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc
}

// streamSweep reads the job's NDJSON stream to completion.
func streamSweep(t *testing.T, ts *httptest.Server, acc wire.SweepAccepted) ([]wire.Result, wire.Summary) {
	t.Helper()
	resp, err := http.Get(ts.URL + acc.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", acc.StreamURL, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var results []wire.Result
	var summary wire.Summary
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if sawSummary {
			t.Fatalf("line after summary: %s", sc.Text())
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch probe.Type {
		case wire.LineResult:
			var r wire.Result
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		case wire.LineSummary:
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
		default:
			t.Fatalf("unknown line type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return results, summary
}

// metricsByIndex projects the fields that must be bit-identical across
// cold and warm runs (everything except timing/cache markers).
func metricsByIndex(results []wire.Result) map[int][5]string {
	out := make(map[int][5]string, len(results))
	for _, r := range results {
		m := func(f wire.Float) string {
			b, _ := json.Marshal(f)
			return string(b)
		}
		out[r.Index] = [5]string{m(r.Metric), m(r.RMSPower), m(r.MeanPower), m(r.FinalVc), r.Key}
	}
	return out
}

// TestSweepEndToEnd is the acceptance path: POST the 64-point grid,
// stream it, then POST the identical spec again against the same server
// process — the warm repeat must do zero engine runs (64/64 cache hits)
// and return bit-identical metrics.
func TestSweepEndToEnd(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := wire.SweepRequest{Spec: grid64Spec(0.25)}
	cold := postSweep(t, ts, req)
	if cold.Jobs != 64 {
		t.Fatalf("grid expands to %d jobs, want 64", cold.Jobs)
	}
	coldResults, coldSummary := streamSweep(t, ts, cold)
	if len(coldResults) != 64 {
		t.Fatalf("streamed %d results, want 64", len(coldResults))
	}
	if coldSummary.Failed != 0 {
		t.Fatalf("cold run failed %d jobs", coldSummary.Failed)
	}

	warm := postSweep(t, ts, req)
	warmResults, warmSummary := streamSweep(t, ts, warm)
	if warmSummary.CacheHits != 64 {
		t.Fatalf("warm repeat hit the cache %d/64 times", warmSummary.CacheHits)
	}
	for _, r := range warmResults {
		if !r.Cached {
			t.Fatalf("warm result %d (%s) not served from cache", r.Index, r.Name)
		}
	}
	coldM, warmM := metricsByIndex(coldResults), metricsByIndex(warmResults)
	for idx, want := range coldM {
		if got, ok := warmM[idx]; !ok || got != want {
			t.Errorf("job %d: warm metrics %v != cold %v", idx, got, want)
		}
	}

	// Status endpoint agrees and serves the result list once done.
	var st wire.JobStatus
	getJSON(t, ts, cold.StatusURL+"?results=1", &st)
	if st.State != wire.StateDone || st.Completed != 64 || len(st.Results) != 64 || st.Summary == nil {
		t.Fatalf("status after completion: %+v", st)
	}

	// The shared cache's counters are visible.
	var cs wire.CacheStats
	getJSON(t, ts, "/v1/cache/stats", &cs)
	if cs.Entries != 64 || cs.Hits < 64 {
		t.Fatalf("cache stats %+v, want 64 entries and >= 64 hits", cs)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIdenticalRequestsSingleflight submits the same spec from
// concurrent clients against one server and asserts the engine ran once
// per design point in total: every duplicate was either a cache hit or
// an in-flight share.
func TestConcurrentIdenticalRequestsSingleflight(t *testing.T) {
	srv := New(Options{MaxActive: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := wire.Spec{
		Name:     "dup",
		Scenario: wire.Scenario{Kind: "charge", DurationS: 0.25, Set: map[string]float64{"initial_vc": 2.5}},
		Axes: []wire.Axis{
			{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4}},
		},
	}
	const clients = 4
	var wg sync.WaitGroup
	summaries := make([]wire.Summary, clients)
	resultSets := make([][]wire.Result, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			acc := postSweep(t, ts, wire.SweepRequest{Spec: spec})
			resultSets[i], summaries[i] = streamSweep(t, ts, acc)
		}()
	}
	wg.Wait()

	// Engine runs = jobs that were neither cached nor shared. Exactly
	// one per design point across ALL clients.
	fresh := 0
	for _, rs := range resultSets {
		for _, r := range rs {
			if r.Error != "" {
				t.Fatalf("%s: %s", r.Name, r.Error)
			}
			if !r.Cached && !r.Shared {
				fresh++
			}
		}
	}
	if fresh != 2 {
		t.Errorf("%d concurrent identical requests performed %d engine runs, want 2 (one per design point)", clients, fresh)
	}
	// All clients saw bit-identical metrics.
	ref := metricsByIndex(resultSets[0])
	for i := 1; i < clients; i++ {
		m := metricsByIndex(resultSets[i])
		for idx, want := range ref {
			if m[idx] != want {
				t.Errorf("client %d job %d: metrics differ: %v vs %v", i, idx, m[idx], want)
			}
		}
	}
}

// TestStreamIsProgressive subscribes to the stream before completion and
// checks results arrive as NDJSON lines while the sweep is running (the
// handler flushes per chunk) — by observing that the stream delivers all
// lines and the summary terminates it.
func TestStreamIsProgressive(t *testing.T) {
	srv := New(Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	acc := postSweep(t, ts, wire.SweepRequest{Spec: wire.Spec{
		Scenario: wire.Scenario{Kind: "charge", DurationS: 0.25},
		Axes:     []wire.Axis{{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4, 5, 6}}},
	}})
	results, summary := streamSweep(t, ts, acc)
	if len(results) != 4 || summary.Jobs != 4 {
		t.Fatalf("streamed %d results, summary %+v", len(results), summary)
	}
	// Late subscriber replays the full stream.
	replayed, _ := streamSweep(t, ts, acc)
	if len(replayed) != 4 {
		t.Fatalf("replayed stream delivered %d results", len(replayed))
	}
}

// TestBudgetMaxJobs: a spec expanding beyond the server's job budget is
// rejected up front with 413, before any simulation.
func TestBudgetMaxJobs(t *testing.T) {
	srv := New(Options{MaxJobs: 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(wire.SweepRequest{Spec: grid64Spec(0.25)})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %s, want 413", resp.Status)
	}
	var e wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil ||
		e.Error.Code != wire.CodeTooManyJobs || !strings.Contains(e.Error.Message, "64") {
		t.Fatalf("error envelope %+v, %v", e, err)
	}

	// A hostile axis product (here a 2e9-realisation seed axis in a
	// few hundred bytes of JSON) must be rejected before compilation
	// materialises anything — this request OOM'd the server when the
	// budget was checked post-expansion.
	huge, _ := json.Marshal(wire.SweepRequest{Spec: wire.Spec{
		Scenario: wire.Scenario{Kind: "charge", DurationS: 1},
		Axes: []wire.Axis{
			{Kind: wire.AxisSeed, BaseSeed: 1, Count: 2_000_000_000},
			{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4, 5, 6}},
		},
	}})
	start := time.Now()
	resp2, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("huge spec: status %s, want 413", resp2.Status)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("huge spec took %v to reject — expansion happened before the budget check", d)
	}
}

// TestBudgetMSOverflowClamped: an absurd budget_ms (a client saying
// "unlimited — clamp me") must mean the server ceiling, not an
// overflowed, already-expired deadline.
func TestBudgetMSOverflowClamped(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	acc := postSweep(t, ts, wire.SweepRequest{
		Spec:     wire.Spec{Scenario: wire.Scenario{Kind: "charge", DurationS: 0.1}},
		BudgetMS: 1 << 53,
	})
	results, summary := streamSweep(t, ts, acc)
	if summary.Failed != 0 || len(results) != 1 || results[0].Error != "" {
		t.Fatalf("huge budget_ms cancelled the sweep: %+v / %+v", results, summary)
	}
}

// TestBudgetDeadline: a tiny wall-clock budget cancels the sweep via
// context; unstarted jobs report errors and the stream still resolves
// with a summary accounting for every job.
func TestBudgetDeadline(t *testing.T) {
	srv := New(Options{Workers: 1, MaxRequestTime: 30 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Long-horizon jobs so the budget expires mid-sweep.
	acc := postSweep(t, ts, wire.SweepRequest{Spec: wire.Spec{
		Scenario: wire.Scenario{Kind: "charge", DurationS: 5},
		Axes:     []wire.Axis{{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4, 5, 6, 7, 8}}},
	}})
	results, summary := streamSweep(t, ts, acc)
	if len(results) != 6 || summary.Jobs != 6 {
		t.Fatalf("stream accounted for %d results, summary %+v", len(results), summary)
	}
	cancelled := 0
	for _, r := range results {
		if strings.Contains(r.Error, context.DeadlineExceeded.Error()) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no job reported the deadline, budget did not propagate")
	}
}

// TestCancelEndpoint: DELETE cancels a running sweep.
func TestCancelEndpoint(t *testing.T) {
	srv := New(Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	acc := postSweep(t, ts, wire.SweepRequest{Spec: wire.Spec{
		Scenario: wire.Scenario{Kind: "charge", DurationS: 5},
		Axes:     []wire.Axis{{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4, 5, 6, 7, 8}}},
	}})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+acc.StatusURL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %s", resp.Status)
	}
	results, _ := streamSweep(t, ts, acc)
	cancelled := 0
	for _, r := range results {
		if r.Error != "" {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("cancel did not stop any job")
	}
}

// TestRequestValidation: malformed bodies and unknown fields are 400s
// with the JSON error envelope; unknown jobs are 404s.
func TestRequestValidation(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for name, body := range map[string]string{
		"not json":      "{",
		"unknown field": `{"spec":{"scenario":{"kind":"charge","duration_s":1}},"frobnicate":1}`,
		"unknown kind":  `{"spec":{"scenario":{"kind":"warp","duration_s":1}}}`,
		"bad settle":    `{"spec":{"scenario":{"kind":"charge","duration_s":1}},"settle_frac":1.5}`,
	} {
		resp := post(body)
		var e wire.Error
		err := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || err != nil ||
			e.Error.Code != wire.CodeBadRequest || e.Error.Message == "" {
			t.Errorf("%s: status %s envelope %+v err %v", name, resp.Status, e, err)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %s, want 404", resp.Status)
	}
}

// TestErrorEnvelopeEverywhere is the error-surface contract: every
// non-2xx response on every route — including the 404/405s the ServeMux
// generates itself — is application/json carrying the canonical
// {"error":{"code","message","retryable"}} envelope with the expected
// stable code.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	srv := New(Options{MaxJobs: 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One live job so the ?from validation path is reachable.
	acc := postSweep(t, ts, wire.SweepRequest{
		Spec: wire.Spec{Scenario: wire.Scenario{Kind: "charge", DurationS: 0.1}}})
	streamSweep(t, ts, acc)

	big, _ := json.Marshal(wire.SweepRequest{Spec: grid64Spec(0.25)})
	futureSpec := grid64Spec(0.25)
	futureSpec.V = wire.Version + 1
	future, _ := json.Marshal(wire.SweepRequest{Spec: futureSpec})

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed body", "POST", "/v1/sweep", "{", http.StatusBadRequest, wire.CodeBadRequest},
		{"unknown field", "POST", "/v1/sweep", `{"spec":{"scenario":{"kind":"charge","duration_s":1}},"frobnicate":1}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"invalid spec", "POST", "/v1/sweep", `{"spec":{"scenario":{"kind":"warp","duration_s":1}}}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"future version", "POST", "/v1/sweep", string(future), http.StatusBadRequest, wire.CodeUnsupportedVersion},
		{"over budget", "POST", "/v1/sweep", string(big), http.StatusRequestEntityTooLarge, wire.CodeTooManyJobs},
		{"bad indices order", "POST", "/v1/sweep", `{"spec":{"scenario":{"kind":"charge","duration_s":1}},"indices":[1,1]}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"indices out of range", "POST", "/v1/sweep", `{"spec":{"scenario":{"kind":"charge","duration_s":1}},"indices":[5]}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"unknown job status", "GET", "/v1/jobs/nope", "", http.StatusNotFound, wire.CodeNotFound},
		{"unknown job stream", "GET", "/v1/jobs/nope/stream", "", http.StatusNotFound, wire.CodeNotFound},
		{"unknown job cancel", "DELETE", "/v1/jobs/nope", "", http.StatusNotFound, wire.CodeNotFound},
		{"bad from cursor", "GET", acc.StreamURL + "?from=x", "", http.StatusBadRequest, wire.CodeBadRequest},
		{"negative from cursor", "GET", acc.StreamURL + "?from=-1", "", http.StatusBadRequest, wire.CodeBadRequest},
		{"unknown route", "GET", "/v1/frobnicate", "", http.StatusNotFound, wire.CodeNotFound},
		{"mux wrong method", "PUT", "/v1/sweep", "", http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed},
		{"mux wrong method on jobs", "POST", "/v1/jobs/nope", "", http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		var body io.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		}
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %s, want %d (body %q)", tc.name, resp.Status, tc.wantStatus, raw)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", tc.name, ct)
		}
		var e wire.Error
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Errorf("%s: body %q is not the error envelope: %v", tc.name, raw, err)
			continue
		}
		if e.Error.Code != tc.wantCode || e.Error.Message == "" {
			t.Errorf("%s: envelope %+v, want code %q and a message", tc.name, e, tc.wantCode)
		}
	}
}

// TestStreamFromCursor: ?from=<n> skips the first n lines of the
// completion-ordered replay — the coordinator's resume path after a
// stream dies mid-shard.
func TestStreamFromCursor(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	acc := postSweep(t, ts, wire.SweepRequest{Spec: wire.Spec{
		Scenario: wire.Scenario{Kind: "charge", DurationS: 0.25},
		Axes:     []wire.Axis{{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4, 5, 6}}},
	}})
	full, fullSummary := streamSweep(t, ts, acc)
	if len(full) != 4 {
		t.Fatalf("full stream delivered %d results", len(full))
	}

	resp, err := http.Get(ts.URL + acc.StreamURL + "?from=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tail []wire.Result
	var tailSummary wire.Summary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatal(err)
		}
		if probe.Type == wire.LineSummary {
			if err := json.Unmarshal(sc.Bytes(), &tailSummary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var r wire.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, r)
	}
	if len(tail) != 2 {
		t.Fatalf("?from=2 delivered %d results, want 2", len(tail))
	}
	for i, r := range tail {
		if r.Index != full[2+i].Index || r.Name != full[2+i].Name {
			t.Errorf("resumed line %d = %s (index %d), want replay line %d (%s)",
				i, r.Name, r.Index, 2+i, full[2+i].Name)
		}
	}
	if tailSummary.Jobs != fullSummary.Jobs || tailSummary.V != wire.Version {
		t.Errorf("resumed summary %+v, want jobs %d v %d", tailSummary, fullSummary.Jobs, wire.Version)
	}

	// A cursor at (or past) the end skips straight to the summary.
	respEnd, err := http.Get(ts.URL + acc.StreamURL + "?from=4")
	if err != nil {
		t.Fatal(err)
	}
	defer respEnd.Body.Close()
	lines := 0
	scEnd := bufio.NewScanner(respEnd.Body)
	for scEnd.Scan() {
		lines++
	}
	if lines != 1 {
		t.Errorf("?from=4 delivered %d lines, want summary only", lines)
	}
}

// TestShardIndicesSubset: a request carrying indices runs exactly that
// subset of the row-major expansion, and result lines keep the GLOBAL
// indices with physics bit-identical to the full run — the worker half
// of the shard coordinator protocol.
func TestShardIndicesSubset(t *testing.T) {
	spec := grid64Spec(0.25)
	srvFull := New(Options{})
	tsFull := httptest.NewServer(srvFull.Handler())
	defer tsFull.Close()
	full, _ := streamSweep(t, tsFull, postSweep(t, tsFull, wire.SweepRequest{Spec: spec}))
	fullM := metricsByIndex(full)

	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	indices := []int{0, 7, 13, 42, 63}
	acc := postSweep(t, ts, wire.SweepRequest{Spec: spec, Indices: indices})
	if acc.Jobs != len(indices) {
		t.Fatalf("shard request accepted %d jobs, want %d", acc.Jobs, len(indices))
	}
	shard, summary := streamSweep(t, ts, acc)
	if len(shard) != len(indices) || summary.Jobs != len(indices) {
		t.Fatalf("shard delivered %d results, summary %+v", len(shard), summary)
	}
	got := map[int]bool{}
	for _, r := range shard {
		got[r.Index] = true
	}
	for _, ix := range indices {
		if !got[ix] {
			t.Fatalf("global index %d missing from shard stream (got %v)", ix, got)
		}
	}
	shardM := metricsByIndex(shard)
	for _, ix := range indices {
		if shardM[ix] != fullM[ix] {
			t.Errorf("index %d: shard metrics %v != full-run %v", ix, shardM[ix], fullM[ix])
		}
	}
}

// TestInvalidJobFailsCleanly: a spec that compiles but whose axis drives
// the config invalid fails per job with the validation error, and the
// shared cache is untouched by those jobs.
func TestInvalidJobFailsCleanly(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	acc := postSweep(t, ts, wire.SweepRequest{Spec: wire.Spec{
		Scenario: wire.Scenario{Kind: "noise", DurationS: 0.25, NoiseFLoHz: 55, NoiseFHiHz: 85, NoiseSeed: 1},
		Axes: []wire.Axis{
			// FHi below FLo makes the noise spec invalid.
			{Kind: wire.AxisFloat, Param: "noise.fhi_hz", Values: []float64{85, 10}},
		},
	}})
	results, summary := streamSweep(t, ts, acc)
	if summary.Failed != 1 {
		t.Fatalf("summary.Failed = %d, want 1", summary.Failed)
	}
	for _, r := range results {
		if (r.Error != "") != (r.Name == "noise[noise.fhi_hz=10]") {
			t.Errorf("unexpected error state: %+v", r)
		}
	}
	if st := srv.Cache().Stats(); st.Entries != 1 {
		t.Errorf("cache entries = %d, want 1 (the valid job only)", st.Entries)
	}
}

// TestHealthz: liveness probe.
func TestHealthz(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var h wire.Health
	getJSON(t, ts, "/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("health %+v", h)
	}
}

// TestFinishedJobRetention: finished sweeps beyond KeepFinished are
// evicted oldest-first; the newest stays queryable.
func TestFinishedJobRetention(t *testing.T) {
	srv := New(Options{KeepFinished: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := wire.Spec{Scenario: wire.Scenario{Kind: "charge", DurationS: 0.1}}
	var accs []wire.SweepAccepted
	for i := 0; i < 3; i++ {
		acc := postSweep(t, ts, wire.SweepRequest{Spec: spec})
		streamSweep(t, ts, acc) // wait for completion
		accs = append(accs, acc)
	}
	resp, err := http.Get(ts.URL + accs[0].StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest finished job still present: %s", resp.Status)
	}
	var st wire.JobStatus
	getJSON(t, ts, accs[2].StatusURL, &st)
	if st.State != wire.StateDone {
		t.Errorf("newest job not queryable: %+v", st)
	}
}

// TestDiskBackedServerCache: a server over a disk cache serves a sweep
// primed by a previous server process (warm start across restarts).
func TestDiskBackedServerCache(t *testing.T) {
	dir := t.TempDir()
	spec := wire.Spec{Scenario: wire.Scenario{Kind: "charge", DurationS: 0.25},
		Axes: []wire.Axis{{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4}}}}

	c1, err := batch.NewDiskCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(New(Options{Cache: c1}).Handler())
	_, sum1 := streamSweep(t, ts1, postSweep(t, ts1, wire.SweepRequest{Spec: spec}))
	ts1.Close()
	if sum1.CacheHits != 0 {
		t.Fatalf("first process already warm: %+v", sum1)
	}

	c2, err := batch.NewDiskCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(Options{Cache: c2}).Handler())
	defer ts2.Close()
	_, sum2 := streamSweep(t, ts2, postSweep(t, ts2, wire.SweepRequest{Spec: spec}))
	if sum2.CacheHits != 2 {
		t.Fatalf("restarted server hit the disk cache %d/2 times", sum2.CacheHits)
	}
}

// TestServerMatchesDirectSweep: the service path returns the same
// physics as calling batch.Sweep directly — the HTTP layer adds
// transport, never simulation drift.
func TestServerMatchesDirectSweep(t *testing.T) {
	spec := grid64Spec(0.25)
	bspec, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := batch.Sweep(context.Background(), bspec, batch.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	results, _ := streamSweep(t, ts, postSweep(t, ts, wire.SweepRequest{Spec: spec}))

	byIndex := make(map[int]wire.Result, len(results))
	for _, r := range results {
		byIndex[r.Index] = r
	}
	for _, d := range direct {
		r, ok := byIndex[d.Index]
		if !ok {
			t.Fatalf("job %d missing from stream", d.Index)
		}
		if float64(r.Metric) != d.Metric || float64(r.FinalVc) != d.FinalVc ||
			float64(r.RMSPower) != d.RMSPower || float64(r.MeanPower) != d.MeanPower {
			t.Errorf("job %d (%s): served metrics differ from direct sweep", d.Index, d.Name)
		}
	}
}
