package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"harvsim/internal/tracing"
	"harvsim/internal/wire"
)

// fetchSpans replays a job's trace endpoint into memory.
func fetchSpans(t *testing.T, ts *httptest.Server, id, query string) []wire.SpanLine {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type %q", ct)
	}
	var spans []wire.SpanLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ln wire.SpanLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		if ln.Type != wire.LineSpan {
			t.Fatalf("unexpected line type %q on trace stream", ln.Type)
		}
		spans = append(spans, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return spans
}

// TestTracedSweepMatchesUntracedBitExactly is the server half of the
// observer-grade contract: the same grid run with and without tracing
// (on fresh servers, so the cache cannot mask an engine-path
// difference) yields bit-identical metrics, and only the traced run
// exposes a trace.
func TestTracedSweepMatchesUntracedBitExactly(t *testing.T) {
	spec := grid64Spec(0.05)

	tsOff := httptest.NewServer(New(Options{}).Handler())
	defer tsOff.Close()
	accOff := postSweep(t, tsOff, wire.SweepRequest{Spec: spec})
	off, _ := streamSweep(t, tsOff, accOff)

	tsOn := httptest.NewServer(New(Options{}).Handler())
	defer tsOn.Close()
	trace := tracing.NewTraceID()
	accOn := postSweep(t, tsOn, wire.SweepRequest{Spec: spec, Trace: trace})
	on, _ := streamSweep(t, tsOn, accOn)

	wantM, gotM := metricsByIndex(off), metricsByIndex(on)
	if len(wantM) != len(gotM) {
		t.Fatalf("result counts differ: %d untraced vs %d traced", len(wantM), len(gotM))
	}
	for ix, want := range wantM {
		if gotM[ix] != want {
			t.Fatalf("job %d: traced metrics %v != untraced %v", ix, gotM[ix], want)
		}
	}

	// Traced results additionally carry the per-phase breakdown; the
	// untraced ones must not.
	for _, r := range on {
		if len(r.SpanMS) == 0 {
			t.Fatalf("traced result %d carries no span_ms", r.Index)
		}
	}
	for _, r := range off {
		if len(r.SpanMS) != 0 {
			t.Fatalf("untraced result %d carries span_ms %v", r.Index, r.SpanMS)
		}
	}

	// The untraced job has no recorder: 404 with the canonical envelope.
	resp, err := http.Get(tsOff.URL + "/v1/jobs/" + accOff.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var env wire.Error
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced trace fetch: %s", resp.Status)
	}
	if json.NewDecoder(resp.Body).Decode(&env) != nil || env.Error.Code != wire.CodeNotFound {
		t.Fatalf("untraced trace fetch envelope: %+v", env)
	}
	resp.Body.Close()

	spans := fetchSpans(t, tsOn, accOn.ID, "")
	if len(spans) < len(on) {
		t.Fatalf("%d spans for %d jobs", len(spans), len(on))
	}
	byID := make(map[string]wire.SpanLine, len(spans))
	var roots []wire.SpanLine
	jobSpans := 0
	for _, s := range spans {
		if s.V != wire.Version {
			t.Fatalf("span %s carries v=%d", s.ID, s.V)
		}
		if s.Trace != trace {
			t.Fatalf("span %s carries trace %q, want %q", s.ID, s.Trace, trace)
		}
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span id %s", s.ID)
		}
		byID[s.ID] = s
		if s.Parent == "" {
			roots = append(roots, s)
		}
		if s.Name == "job" {
			jobSpans++
		}
	}
	if len(roots) != 1 || roots[0].Name != "sweep" {
		t.Fatalf("want exactly one root 'sweep' span, got %+v", roots)
	}
	if jobSpans != len(on) {
		t.Fatalf("%d job spans for %d jobs", jobSpans, len(on))
	}
	// Every span must be reachable from the root via parent links.
	for _, s := range spans {
		hops := 0
		for cur := s; cur.Parent != ""; hops++ {
			p, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %s (%s) has dangling parent %s", s.ID, s.Name, cur.Parent)
			}
			if hops > len(spans) {
				t.Fatalf("parent cycle at span %s", s.ID)
			}
			cur = p
		}
	}

	// ?from resumes past the replayed prefix.
	tail := fetchSpans(t, tsOn, accOn.ID, "?from=5")
	if len(tail) != len(spans)-5 {
		t.Fatalf("?from=5 returned %d of %d spans", len(tail), len(spans))
	}
	if tail[0] != spans[5] {
		t.Fatalf("?from=5 starts at %+v, want %+v", tail[0], spans[5])
	}
}

// TestVersionStampOnAllJSONRoutes pins the satellite fix: every JSON
// response body the server emits carries the wire-version stamp "v".
func TestVersionStampOnAllJSONRoutes(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	acc := postSweep(t, ts, wire.SweepRequest{Spec: grid64Spec(0.01)})
	streamSweep(t, ts, acc) // run to completion so status carries a summary

	checkStamp := func(name string, body []byte) {
		t.Helper()
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v, ok := m["v"].(float64)
		if !ok || int(v) != wire.Version {
			t.Fatalf("%s: response carries no v=%d stamp: %s", name, wire.Version, body)
		}
	}

	// POST /v1/sweep re-encodes the accepted struct for the check.
	accBody, err := json.Marshal(acc)
	if err != nil {
		t.Fatal(err)
	}
	checkStamp("POST /v1/sweep", accBody)

	for _, route := range []string{
		"/v1/jobs/" + acc.ID,
		"/v1/cache/stats",
		"/healthz",
	} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", route, resp.Status)
		}
		var buf []byte
		buf, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		checkStamp("GET "+route, buf)
	}
}
