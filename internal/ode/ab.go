package ode

import "fmt"

// MaxABOrder is the highest Adams-Bashforth order supported. The paper
// uses the multi-step Adams-Bashforth formula "due to its simplicity and
// accuracy"; orders beyond 4 have shrinking stability regions that defeat
// the purpose for mildly stiff harvester models.
const MaxABOrder = 4

// ABStabilityFraction returns the fraction of the forward-Euler real-axis
// stability limit h_FE = 2/|lambda| available to the Adams-Bashforth
// method of the given order. The real-axis stability intervals of AB1..4
// are (-2, 0), (-1, 0), (-6/11, 0) and (-3/10, 0); the paper's
// diagonal-dominance criterion (Eqs. 6-7) bounds the one-step (Euler)
// march, so higher-order multistep updates must scale the resulting cap
// by this fraction.
func ABStabilityFraction(order int) float64 {
	switch order {
	case 1:
		return 1
	case 2:
		return 0.5
	case 3:
		return 3.0 / 11.0
	case 4:
		return 3.0 / 20.0
	default:
		panic(fmt.Sprintf("ode: ABStabilityFraction order %d out of range", order))
	}
}

// ABImagExtent returns the usable extent |h*lambda| of the AB stability
// region along the imaginary axis for oscillatory modes. AB3 and AB4
// genuinely include imaginary-axis segments (~0.72 and ~0.43); AB1 and
// AB2 are only tangent to the axis at the origin, so the returned values
// are practical limits that rely on the physical damping always present
// in the passive analogue blocks the paper targets (growth per step at
// these extents is < 1e-2 even for zero damping, and the order ramps past
// 2 within a few steps).
func ABImagExtent(order int) float64 {
	switch order {
	case 1:
		return 0.25
	case 2:
		return 0.35
	case 3:
		return 0.70
	case 4:
		return 0.40
	default:
		panic(fmt.Sprintf("ode: ABImagExtent order %d out of range", order))
	}
}

// ABCoeffs computes the variable-step Adams-Bashforth weights beta_i such
// that
//
//	x(t_n + h) = x(t_n) + sum_i beta_i * f(t_i, x_i)
//
// where times lists the history abscissae newest first (times[0] == t_n).
// The weights are the exact integrals over [t_n, t_n+h] of the Lagrange
// basis polynomials through the history points, so for uniformly spaced
// history they reduce to the classical AB coefficients (e.g. order 2:
// {3h/2, -h/2}). The order of the formula equals len(times).
//
// dst must have length len(times); it is returned for convenience.
func ABCoeffs(dst []float64, times []float64, h float64) []float64 {
	p := len(times)
	if p == 0 || p > MaxABOrder {
		panic(fmt.Sprintf("ode: ABCoeffs order %d out of range [1,%d]", p, MaxABOrder))
	}
	if len(dst) != p {
		panic("ode: ABCoeffs dst length mismatch")
	}
	if p == 1 {
		dst[0] = h // Forward Euler
		return dst
	}
	// Work in the shifted variable s = tau - t_n, so history nodes are
	// s_i = times[i] - times[0] <= 0 and we integrate over [0, h].
	var s [MaxABOrder]float64
	for i := 0; i < p; i++ {
		s[i] = times[i] - times[0]
	}
	// For each i build the numerator polynomial prod_{j != i}(x - s_j) by
	// convolution, evaluate its definite integral over [0, h], and divide
	// by the denominator prod_{j != i}(s_i - s_j).
	var poly [MaxABOrder]float64 // coefficients, poly[k] * s^k
	for i := 0; i < p; i++ {
		for k := range poly {
			poly[k] = 0
		}
		poly[0] = 1
		deg := 0
		den := 1.0
		for j := 0; j < p; j++ {
			if j == i {
				continue
			}
			den *= s[i] - s[j]
			// poly *= (x - s_j): new[k] = old[k-1] - s_j*old[k], updated
			// from the top down so old values are still in place.
			for k := deg + 1; k >= 1; k-- {
				poly[k] = poly[k-1] - s[j]*poly[k]
			}
			poly[0] = -s[j] * poly[0]
			deg++
		}
		// Integrate: int_0^h sum_k poly[k] x^k dx = sum_k poly[k] h^{k+1}/(k+1).
		var integral float64
		hp := h
		for k := 0; k <= deg; k++ {
			integral += poly[k] * hp / float64(k+1)
			hp *= h
		}
		dst[i] = integral / den
	}
	return dst
}

// History is a fixed-capacity ring of past derivative evaluations, newest
// first, as needed by the Adams-Bashforth formulas.
type History struct {
	n     int // state dimension
	cap   int
	count int
	head  int // index of the newest entry
	times []float64
	fs    [][]float64
}

// NewHistory returns a history for n states holding up to depth entries.
func NewHistory(n, depth int) *History {
	if depth < 1 || depth > MaxABOrder {
		panic(fmt.Sprintf("ode: history depth %d out of range", depth))
	}
	h := &History{n: n, cap: depth, times: make([]float64, depth), fs: make([][]float64, depth)}
	for i := range h.fs {
		h.fs[i] = make([]float64, n)
	}
	return h
}

// Depth returns the number of stored entries.
func (h *History) Depth() int { return h.count }

// Reset discards all stored entries.
func (h *History) Reset() { h.count, h.head = 0, 0 }

// Push records the derivative f evaluated at time t as the newest entry.
func (h *History) Push(t float64, f []float64) {
	if len(f) != h.n {
		panic("ode: History.Push dimension mismatch")
	}
	h.head = (h.head + h.cap - 1) % h.cap
	h.times[h.head] = t
	copy(h.fs[h.head], f)
	if h.count < h.cap {
		h.count++
	}
}

// Entry returns the i-th newest entry (0 = newest). The returned slice is
// a view into the ring and must not be modified.
func (h *History) Entry(i int) (t float64, f []float64) {
	if i < 0 || i >= h.count {
		panic("ode: History.Entry out of range")
	}
	k := (h.head + i) % h.cap
	return h.times[k], h.fs[k]
}

// Times fills dst with the stored abscissae, newest first, returning the
// filled prefix.
func (h *History) Times(dst []float64) []float64 {
	if len(dst) < h.count {
		panic("ode: History.Times dst too small")
	}
	for i := 0; i < h.count; i++ {
		k := (h.head + i) % h.cap
		dst[i] = h.times[k]
	}
	return dst[:h.count]
}

// AdamsBashforth is a self-starting variable-step Adams-Bashforth
// integrator: it begins at order 1 (Forward Euler) and raises the order
// as history accumulates, up to the configured target order. After a
// Reset (e.g. a digital event discontinuity) it restarts at order 1.
type AdamsBashforth struct {
	target int
	hist   *History
	coeffs []float64
	times  []float64
	fnow   []float64
	boot   *RK4 // bootstrap integrator while the history fills
}

// NewAdamsBashforth returns an AB integrator of the given target order
// (1..MaxABOrder) for n states.
func NewAdamsBashforth(n, order int) *AdamsBashforth {
	if order < 1 || order > MaxABOrder {
		panic(fmt.Sprintf("ode: AB order %d out of range [1,%d]", order, MaxABOrder))
	}
	return &AdamsBashforth{
		target: order,
		hist:   NewHistory(n, order),
		coeffs: make([]float64, order),
		times:  make([]float64, order),
		fnow:   make([]float64, n),
		boot:   NewRK4(n),
	}
}

func (ab *AdamsBashforth) Name() string {
	return fmt.Sprintf("adams-bashforth-%d", ab.target)
}

func (ab *AdamsBashforth) Order() int { return ab.target }

// CurrentOrder returns the order the next step will use (grows from 1).
func (ab *AdamsBashforth) CurrentOrder() int {
	if o := ab.hist.Depth() + 1; o < ab.target {
		return o
	}
	return ab.target
}

func (ab *AdamsBashforth) Reset() { ab.hist.Reset() }

// Step advances from (t, x) to t+h. The derivative at (t, x) is evaluated
// once and pushed into the history; while the history is still filling,
// the state update itself is delegated to an embedded RK4 step so the
// startup error does not degrade the asymptotic order of the multistep
// formula. Once enough history exists, the variable-step Adams-Bashforth
// formula of the target order is applied.
func (ab *AdamsBashforth) Step(f RHS, t, h float64, x, xNext []float64) {
	f(t, x, ab.fnow)
	ab.hist.Push(t, ab.fnow)
	p := ab.hist.Depth()
	if p < ab.target {
		ab.boot.Step(f, t, h, x, xNext)
		return
	}
	times := ab.hist.Times(ab.times[:p])
	coeffs := ABCoeffs(ab.coeffs[:p], times, h)
	copy(xNext, x)
	for i := 0; i < p; i++ {
		_, fi := ab.hist.Entry(i)
		c := coeffs[i]
		for k := range xNext {
			xNext[k] += c * fi[k]
		}
	}
}
