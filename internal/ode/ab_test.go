package ode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestABCoeffsUniformClassicalValues(t *testing.T) {
	h := 0.1
	// Order 1: {h}.
	c1 := ABCoeffs(make([]float64, 1), []float64{0}, h)
	if !almostEqual(c1[0], h, 1e-15) {
		t.Fatalf("AB1 = %v", c1)
	}
	// Order 2 with uniform spacing: {3h/2, -h/2}.
	c2 := ABCoeffs(make([]float64, 2), []float64{0, -h}, h)
	if !almostEqual(c2[0], 1.5*h, 1e-14) || !almostEqual(c2[1], -0.5*h, 1e-14) {
		t.Fatalf("AB2 = %v", c2)
	}
	// Order 3: h*{23/12, -16/12, 5/12}.
	c3 := ABCoeffs(make([]float64, 3), []float64{0, -h, -2 * h}, h)
	want3 := []float64{23.0 / 12, -16.0 / 12, 5.0 / 12}
	for i := range want3 {
		if !almostEqual(c3[i], want3[i]*h, 1e-13) {
			t.Fatalf("AB3 = %v, want %v*h", c3, want3)
		}
	}
	// Order 4: h*{55/24, -59/24, 37/24, -9/24}.
	c4 := ABCoeffs(make([]float64, 4), []float64{0, -h, -2 * h, -3 * h}, h)
	want4 := []float64{55.0 / 24, -59.0 / 24, 37.0 / 24, -9.0 / 24}
	for i := range want4 {
		if !almostEqual(c4[i], want4[i]*h, 1e-13) {
			t.Fatalf("AB4 = %v, want %v*h", c4, want4)
		}
	}
}

func TestABCoeffsSumEqualsH(t *testing.T) {
	// Property: the weights integrate the constant polynomial exactly, so
	// they must sum to h for any (distinct, descending) history spacing.
	f := func(seed int64, pRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + int(pRaw%4)
		times := make([]float64, p)
		tcur := 0.0
		for i := 0; i < p; i++ {
			times[i] = tcur
			tcur -= 0.01 + r.Float64()
		}
		h := 0.01 + r.Float64()
		c := ABCoeffs(make([]float64, p), times, h)
		var sum float64
		for _, v := range c {
			sum += v
		}
		return almostEqual(sum, h, 1e-9*(1+h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestABCoeffsExactOnPolynomials(t *testing.T) {
	// Property: an order-p AB formula integrates f(t) = t^k exactly for
	// k <= p-1, i.e. sum_i beta_i * t_i^k == ((tn+h)^{k+1} - tn^{k+1})/(k+1),
	// even with non-uniform history spacing.
	f := func(seed int64, pRaw, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + int(pRaw%4)
		k := int(kRaw) % p // degree <= p-1
		times := make([]float64, p)
		tcur := 0.3 * r.Float64()
		for i := 0; i < p; i++ {
			times[i] = tcur
			tcur -= 0.05 + 0.5*r.Float64()
		}
		h := 0.05 + 0.5*r.Float64()
		c := ABCoeffs(make([]float64, p), times, h)
		var got float64
		for i, ti := range times {
			got += c[i] * math.Pow(ti, float64(k))
		}
		tn := times[0]
		want := (math.Pow(tn+h, float64(k+1)) - math.Pow(tn, float64(k+1))) / float64(k+1)
		return almostEqual(got, want, 1e-8*(1+math.Abs(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestABCoeffsPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic for order 5")
		}
	}()
	ABCoeffs(make([]float64, 5), make([]float64, 5), 0.1)
}

func TestHistoryRing(t *testing.T) {
	h := NewHistory(2, 3)
	if h.Depth() != 0 {
		t.Fatalf("new history not empty")
	}
	h.Push(1, []float64{10, 11})
	h.Push(2, []float64{20, 21})
	if h.Depth() != 2 {
		t.Fatalf("depth = %d", h.Depth())
	}
	tm, f := h.Entry(0)
	if tm != 2 || f[0] != 20 {
		t.Fatalf("newest entry wrong: %v %v", tm, f)
	}
	tm, f = h.Entry(1)
	if tm != 1 || f[1] != 11 {
		t.Fatalf("older entry wrong: %v %v", tm, f)
	}
	h.Push(3, []float64{30, 31})
	h.Push(4, []float64{40, 41}) // evicts t=1
	if h.Depth() != 3 {
		t.Fatalf("depth after wrap = %d", h.Depth())
	}
	times := h.Times(make([]float64, 3))
	if times[0] != 4 || times[1] != 3 || times[2] != 2 {
		t.Fatalf("times = %v", times)
	}
	h.Reset()
	if h.Depth() != 0 {
		t.Fatalf("reset did not clear history")
	}
}

// decayRHS is xdot = -x with exact solution e^{-t}.
func decayRHS(t float64, x, dst []float64) { dst[0] = -x[0] }

func globalError(integ Integrator, h float64, steps int) float64 {
	x := []float64{1}
	xn := []float64{0}
	tcur := 0.0
	for i := 0; i < steps; i++ {
		integ.Step(decayRHS, tcur, h, x, xn)
		x[0] = xn[0]
		tcur += h
	}
	return math.Abs(x[0] - math.Exp(-tcur))
}

func measuredOrder(make func() Integrator, warmupFree bool) float64 {
	// Integrate to t=1 with two resolutions; order ~ log2(e1/e2).
	h1, n1 := 1.0/64, 64
	h2, n2 := 1.0/128, 128
	e1 := globalError(make(), h1, n1)
	e2 := globalError(make(), h2, n2)
	return math.Log2(e1 / e2)
}

func TestIntegratorObservedOrders(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Integrator
		want float64
		tol  float64
	}{
		{"fe", func() Integrator { return NewForwardEuler(1) }, 1, 0.25},
		{"rk2", func() Integrator { return NewRK2(1) }, 2, 0.25},
		{"rk4", func() Integrator { return NewRK4(1) }, 4, 0.35},
		{"ab2", func() Integrator { return NewAdamsBashforth(1, 2) }, 2, 0.35},
		{"ab3", func() Integrator { return NewAdamsBashforth(1, 3) }, 3, 0.45},
		{"ab4", func() Integrator { return NewAdamsBashforth(1, 4) }, 4, 0.6},
	}
	for _, c := range cases {
		got := measuredOrder(c.mk, true)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s observed order = %.2f, want ~%v", c.name, got, c.want)
		}
	}
}

func TestABSelfStartsAndGrowsOrder(t *testing.T) {
	ab := NewAdamsBashforth(1, 4)
	if ab.CurrentOrder() != 1 {
		t.Fatalf("fresh AB should start at order 1, got %d", ab.CurrentOrder())
	}
	x := []float64{1}
	xn := []float64{0}
	tcur := 0.0
	for i := 0; i < 5; i++ {
		ab.Step(decayRHS, tcur, 0.01, x, xn)
		x[0] = xn[0]
		tcur += 0.01
	}
	if ab.CurrentOrder() != 4 {
		t.Fatalf("after 5 steps order = %d, want 4", ab.CurrentOrder())
	}
	ab.Reset()
	if ab.CurrentOrder() != 1 {
		t.Fatalf("Reset should drop back to order 1")
	}
}

func TestABVariableStepAccuracy(t *testing.T) {
	// Integrate the decay with deliberately alternating step sizes; the
	// variable-step coefficients must keep the solution accurate.
	ab := NewAdamsBashforth(1, 3)
	x := []float64{1}
	xn := []float64{0}
	tcur := 0.0
	hs := []float64{0.01, 0.013, 0.007, 0.011}
	for i := 0; i < 400; i++ {
		h := hs[i%len(hs)]
		ab.Step(decayRHS, tcur, h, x, xn)
		x[0] = xn[0]
		tcur += h
	}
	if err := math.Abs(x[0] - math.Exp(-tcur)); err > 1e-6 {
		t.Fatalf("variable-step AB3 error = %v at t=%v", err, tcur)
	}
}

func TestIntegratorNamesAndOrders(t *testing.T) {
	if NewForwardEuler(1).Name() == "" || NewForwardEuler(1).Order() != 1 {
		t.Fatal("FE metadata")
	}
	if NewRK2(1).Order() != 2 || NewRK4(1).Order() != 4 {
		t.Fatal("RK metadata")
	}
	ab := NewAdamsBashforth(2, 3)
	if ab.Order() != 3 || ab.Name() != "adams-bashforth-3" {
		t.Fatalf("AB metadata: %s %d", ab.Name(), ab.Order())
	}
}

func TestOscillatorEnergyRK4(t *testing.T) {
	// Undamped oscillator xdot = v, vdot = -x: RK4 should keep the energy
	// drift tiny over many periods at modest step size.
	osc := func(t float64, x, dst []float64) {
		dst[0] = x[1]
		dst[1] = -x[0]
	}
	rk := NewRK4(2)
	x := []float64{1, 0}
	xn := make([]float64, 2)
	h := 2 * math.Pi / 200
	for i := 0; i < 200*50; i++ { // 50 periods
		rk.Step(osc, float64(i)*h, h, x, xn)
		copy(x, xn)
	}
	energy := x[0]*x[0] + x[1]*x[1]
	if math.Abs(energy-1) > 1e-4 {
		t.Fatalf("energy drift = %v", energy-1)
	}
}
