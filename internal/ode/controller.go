package ode

import "math"

// Controller implements the combined step-size policy of the paper's
// Section II: the step is bounded above by the stability limit derived
// from diagonal dominance of the point total-step matrix (Eq. 7), and
// within that limit it is adapted to the local truncation error estimate.
// For strongly stiff systems the stability cap binds and no speed
// advantage remains — exactly the limitation the paper states.
type Controller struct {
	Atol   float64 // absolute error tolerance per step
	Rtol   float64 // relative error tolerance per step
	Safety float64 // safety factor on the accuracy step (typ. 0.9)

	MinFactor float64 // largest allowed step shrink per adjustment (typ. 0.2)
	MaxFactor float64 // largest allowed step growth per adjustment (typ. 2.0)

	HMin float64 // hard floor on the step
	HMax float64 // hard ceiling on the step (e.g. waveform resolution)

	StabilityMargin float64 // fraction of the stability limit to use (typ. 0.9)
}

// DefaultController returns the tolerances used by the harvester
// simulations: mid-accuracy analogue tolerances comparable to a SPICE
// reltol of 1e-3.
func DefaultController() Controller {
	return Controller{
		Atol:            1e-6,
		Rtol:            1e-3,
		Safety:          0.9,
		MinFactor:       0.2,
		MaxFactor:       2.0,
		HMin:            1e-9,
		HMax:            1e-3,
		StabilityMargin: 0.9,
	}
}

// Clamp restricts h to [HMin, min(HMax, StabilityMargin*hStab)].
func (c *Controller) Clamp(h, hStab float64) float64 {
	hi := c.HMax
	if s := c.StabilityMargin * hStab; s < hi {
		hi = s
	}
	if h > hi {
		h = hi
	}
	if h < c.HMin {
		h = c.HMin
	}
	return h
}

// Decide returns whether a step with weighted error norm errNorm (<= 1
// means within tolerance) is accepted, and the suggested next step size.
// order is the order of the formula that produced the error estimate.
// hStab is the current stability cap (+Inf if none).
func (c *Controller) Decide(h, errNorm float64, order int, hStab float64) (accept bool, hNext float64) {
	accept = errNorm <= 1 || math.IsNaN(errNorm) || h <= c.HMin*(1+1e-12)
	var factor float64
	switch {
	case errNorm <= 0 || math.IsNaN(errNorm):
		// No usable estimate (or a clean linear segment): grow cautiously.
		factor = c.MaxFactor
	default:
		factor = c.Safety * math.Pow(errNorm, -1/float64(order+1))
	}
	if math.IsNaN(factor) || factor < c.MinFactor {
		factor = c.MinFactor
	}
	if factor > c.MaxFactor {
		factor = c.MaxFactor
	}
	hNext = c.Clamp(h*factor, hStab)
	return accept, hNext
}

// ErrNorm computes the weighted RMS norm of the estimate est against the
// reference state ref, such that a value of 1 sits exactly on tolerance.
func (c *Controller) ErrNorm(est, ref []float64) float64 {
	if len(est) != len(ref) {
		panic("ode: ErrNorm length mismatch")
	}
	if len(est) == 0 {
		return 0
	}
	var s float64
	for i, e := range est {
		w := c.Atol + c.Rtol*math.Abs(ref[i])
		r := e / w
		s += r * r
	}
	return math.Sqrt(s / float64(len(est)))
}
