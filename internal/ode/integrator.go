// Package ode provides the explicit integration machinery used by the
// linearised state-space engine: Forward Euler, Runge-Kutta, and the
// variable-step Adams-Bashforth family the paper adopts (Eq. 5), together
// with the f-history bookkeeping and a step-size controller combining
// accuracy (local truncation error) and the stability cap supplied by the
// diagonal-dominance analysis.
//
// All integrators here are explicit: each step is a feed-forward update
// requiring only past derivative evaluations — no Newton-Raphson
// iteration — which is the source of the paper's speedup.
package ode

// RHS evaluates the derivative dx/dt at (t, x) into dst. dst and x must
// not alias.
type RHS func(t float64, x, dst []float64)

// Integrator advances an ODE system one step at a time.
type Integrator interface {
	// Name identifies the method (for reports).
	Name() string
	// Order returns the asymptotic order of accuracy.
	Order() int
	// Step advances the solution from (t, x) to t+h, writing into xNext.
	// x and xNext must not alias.
	Step(f RHS, t, h float64, x, xNext []float64)
	// Reset discards any multistep history (e.g. after a discontinuity
	// such as a digital mode change).
	Reset()
}

// ForwardEuler is the first-order explicit Euler method.
type ForwardEuler struct {
	dx []float64
}

// NewForwardEuler returns a Forward Euler integrator for n states.
func NewForwardEuler(n int) *ForwardEuler {
	return &ForwardEuler{dx: make([]float64, n)}
}

func (fe *ForwardEuler) Name() string { return "forward-euler" }

func (fe *ForwardEuler) Order() int { return 1 }

func (fe *ForwardEuler) Reset() {}

func (fe *ForwardEuler) Step(f RHS, t, h float64, x, xNext []float64) {
	f(t, x, fe.dx)
	for i := range x {
		xNext[i] = x[i] + h*fe.dx[i]
	}
}

// RK2 is the explicit midpoint method (second order).
type RK2 struct {
	k1, k2, tmp []float64
}

// NewRK2 returns a midpoint integrator for n states.
func NewRK2(n int) *RK2 {
	return &RK2{k1: make([]float64, n), k2: make([]float64, n), tmp: make([]float64, n)}
}

func (r *RK2) Name() string { return "rk2-midpoint" }

func (r *RK2) Order() int { return 2 }

func (r *RK2) Reset() {}

func (r *RK2) Step(f RHS, t, h float64, x, xNext []float64) {
	f(t, x, r.k1)
	for i := range x {
		r.tmp[i] = x[i] + 0.5*h*r.k1[i]
	}
	f(t+0.5*h, r.tmp, r.k2)
	for i := range x {
		xNext[i] = x[i] + h*r.k2[i]
	}
}

// RK4 is the classical fourth-order Runge-Kutta method.
type RK4 struct {
	k1, k2, k3, k4, tmp []float64
}

// NewRK4 returns a classical RK4 integrator for n states.
func NewRK4(n int) *RK4 {
	return &RK4{
		k1: make([]float64, n), k2: make([]float64, n),
		k3: make([]float64, n), k4: make([]float64, n),
		tmp: make([]float64, n),
	}
}

func (r *RK4) Name() string { return "rk4-classic" }

func (r *RK4) Order() int { return 4 }

func (r *RK4) Reset() {}

func (r *RK4) Step(f RHS, t, h float64, x, xNext []float64) {
	f(t, x, r.k1)
	for i := range x {
		r.tmp[i] = x[i] + 0.5*h*r.k1[i]
	}
	f(t+0.5*h, r.tmp, r.k2)
	for i := range x {
		r.tmp[i] = x[i] + 0.5*h*r.k2[i]
	}
	f(t+0.5*h, r.tmp, r.k3)
	for i := range x {
		r.tmp[i] = x[i] + h*r.k3[i]
	}
	f(t+h, r.tmp, r.k4)
	sixth := h / 6
	for i := range x {
		xNext[i] = x[i] + sixth*(r.k1[i]+2*r.k2[i]+2*r.k3[i]+r.k4[i])
	}
}
