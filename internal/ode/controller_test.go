package ode

import (
	"math"
	"testing"
)

func TestControllerClamp(t *testing.T) {
	c := DefaultController()
	c.HMin, c.HMax, c.StabilityMargin = 1e-6, 1e-3, 0.9
	if got := c.Clamp(1, math.Inf(1)); got != 1e-3 {
		t.Fatalf("Clamp to HMax: %v", got)
	}
	if got := c.Clamp(1e-9, math.Inf(1)); got != 1e-6 {
		t.Fatalf("Clamp to HMin: %v", got)
	}
	if got := c.Clamp(1e-3, 1e-4); math.Abs(got-0.9e-4) > 1e-18 {
		t.Fatalf("Clamp to stability: %v", got)
	}
}

func TestControllerDecideAcceptAndGrow(t *testing.T) {
	c := DefaultController()
	c.HMax = 1
	accept, hNext := c.Decide(0.01, 0.1, 2, math.Inf(1))
	if !accept {
		t.Fatalf("errNorm 0.1 should be accepted")
	}
	if hNext <= 0.01 {
		t.Fatalf("small error should grow the step, got %v", hNext)
	}
	if hNext > 0.02+1e-12 {
		t.Fatalf("growth should be bounded by MaxFactor: %v", hNext)
	}
}

func TestControllerDecideRejectAndShrink(t *testing.T) {
	c := DefaultController()
	accept, hNext := c.Decide(1e-4, 50, 2, math.Inf(1))
	if accept {
		t.Fatalf("errNorm 50 should be rejected")
	}
	if hNext >= 1e-4 {
		t.Fatalf("rejected step should shrink, got %v", hNext)
	}
	if hNext < 0.2*1e-4-1e-18 {
		t.Fatalf("shrink should be bounded by MinFactor: %v", hNext)
	}
}

func TestControllerAcceptsAtFloor(t *testing.T) {
	c := DefaultController()
	c.HMin = 1e-6
	accept, _ := c.Decide(1e-6, 100, 2, math.Inf(1))
	if !accept {
		t.Fatalf("step at HMin must be accepted to guarantee progress")
	}
}

func TestControllerZeroOrNaNError(t *testing.T) {
	c := DefaultController()
	accept, hNext := c.Decide(1e-5, 0, 3, math.Inf(1))
	if !accept || hNext < 1e-5 {
		t.Fatalf("zero error should accept and grow: %v %v", accept, hNext)
	}
	accept, hNext = c.Decide(1e-5, math.NaN(), 3, math.Inf(1))
	if !accept || hNext <= 0 {
		t.Fatalf("NaN error treated as no-estimate: %v %v", accept, hNext)
	}
}

func TestControllerErrNorm(t *testing.T) {
	c := Controller{Atol: 1, Rtol: 0}
	if got := c.ErrNorm([]float64{3, 4}, []float64{0, 0}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("ErrNorm = %v", got)
	}
	if c.ErrNorm(nil, nil) != 0 {
		t.Fatalf("empty ErrNorm should be 0")
	}
	c2 := Controller{Atol: 0, Rtol: 0.1}
	// err 0.5 against ref 10 -> weight 1 -> norm 0.5.
	if got := c2.ErrNorm([]float64{0.5}, []float64{10}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("relative ErrNorm = %v", got)
	}
}

func TestControllerStabilityCapBindsGrowth(t *testing.T) {
	c := DefaultController()
	c.HMax = 1
	// Tiny error wants to double the step, but stability cap holds it.
	_, hNext := c.Decide(0.01, 1e-8, 4, 0.012)
	if hNext > 0.9*0.012+1e-15 {
		t.Fatalf("stability cap violated: %v", hNext)
	}
}
