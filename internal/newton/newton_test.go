package newton

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"harvsim/internal/la"
)

func TestSolveLinearSystem(t *testing.T) {
	// F(u) = A u - b with known solution.
	a := la.FromRows([][]float64{{3, 1}, {1, 2}})
	b := []float64{9, 8}
	f := func(u, dst []float64) {
		a.MulVec(dst, u)
		la.SubTo(dst, dst, b)
	}
	s := NewSolver(2, DefaultOptions())
	u := []float64{0, 0}
	if err := s.Solve(f, nil, u); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(u[0]-2) > 1e-8 || math.Abs(u[1]-3) > 1e-8 {
		t.Fatalf("u = %v, want [2 3]", u)
	}
	if s.Stats.Iterations == 0 || s.Stats.LUFactors == 0 {
		t.Fatalf("stats not recorded: %+v", s.Stats)
	}
}

func TestSolveScalarNonlinear(t *testing.T) {
	// u^2 = 2.
	f := func(u, dst []float64) { dst[0] = u[0]*u[0] - 2 }
	s := NewSolver(1, DefaultOptions())
	u := []float64{1}
	if err := s.Solve(f, nil, u); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(u[0]-math.Sqrt2) > 1e-8 {
		t.Fatalf("u = %v, want sqrt(2)", u[0])
	}
}

func TestSolveWithAnalyticJacobian(t *testing.T) {
	f := func(u, dst []float64) {
		dst[0] = math.Exp(u[0]) - 2
		dst[1] = u[0] + u[1] - 1
	}
	jac := func(u []float64, dst *la.Matrix) {
		dst.Set(0, 0, math.Exp(u[0]))
		dst.Set(0, 1, 0)
		dst.Set(1, 0, 1)
		dst.Set(1, 1, 1)
	}
	s := NewSolver(2, DefaultOptions())
	u := []float64{0, 0}
	if err := s.Solve(f, jac, u); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(u[0]-math.Log(2)) > 1e-8 || math.Abs(u[1]-(1-math.Log(2))) > 1e-8 {
		t.Fatalf("u = %v", u)
	}
	if s.Stats.FuncEvals > 20 {
		t.Fatalf("analytic Jacobian should not need finite-difference evals: %+v", s.Stats)
	}
}

func TestSolveDiodeLikeEquation(t *testing.T) {
	// The stiff exponential that motivates damping: solve
	// 1e-9*(exp(u/0.026)-1) + u/1000 - 0.01 = 0 from a poor start.
	f := func(u, dst []float64) {
		dst[0] = 1e-9*(math.Exp(u[0]/0.026)-1) + u[0]/1000 - 0.01
	}
	s := NewSolver(1, DefaultOptions())
	u := []float64{0}
	if err := s.Solve(f, nil, u); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	res := make([]float64, 1)
	f(u, res)
	if math.Abs(res[0]) > 1e-8 {
		t.Fatalf("residual = %v at u = %v", res[0], u[0])
	}
}

func TestSolveNoConvergence(t *testing.T) {
	// F(u) = 1 + u^2 has no real root.
	f := func(u, dst []float64) { dst[0] = 1 + u[0]*u[0] }
	opts := DefaultOptions()
	opts.MaxIter = 15
	s := NewSolver(1, opts)
	u := []float64{3}
	err := s.Solve(f, nil, u)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
}

func TestSolveSingularJacobian(t *testing.T) {
	f := func(u, dst []float64) { dst[0], dst[1] = u[0]+u[1]-1, u[0]+u[1]-1 }
	s := NewSolver(2, DefaultOptions())
	u := []float64{5, 5}
	if err := s.Solve(f, nil, u); err == nil {
		t.Fatalf("singular Jacobian should error")
	}
}

func TestSolveNonFiniteStart(t *testing.T) {
	f := func(u, dst []float64) { dst[0] = math.Log(u[0]) }
	s := NewSolver(1, DefaultOptions())
	u := []float64{-1} // log(-1) = NaN
	if err := s.Solve(f, nil, u); err == nil {
		t.Fatalf("non-finite residual at start should error")
	}
}

func TestNumJacMatchesAnalytic(t *testing.T) {
	f := func(u, dst []float64) {
		dst[0] = u[0]*u[0] + u[1]
		dst[1] = math.Sin(u[0]) * u[1]
	}
	u := []float64{0.7, -1.2}
	f0 := make([]float64, 2)
	f(u, f0)
	nj := NewNumJac(2)
	jac := la.NewMatrix(2, 2)
	nj.Eval(f, u, f0, jac)
	want := la.FromRows([][]float64{
		{2 * u[0], 1},
		{math.Cos(u[0]) * u[1], math.Sin(u[0])},
	})
	if !jac.Equalish(want, 1e-5) {
		t.Fatalf("numeric jacobian\n%v\nwant\n%v", jac, want)
	}
}

func TestPropertyQuadraticRoots(t *testing.T) {
	// Property: Newton from a start above the larger root of
	// (u-a)(u-b) = 0 with a<b converges to b.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.NormFloat64()
		b := a + 0.5 + r.Float64()*3
		fn := func(u, dst []float64) { dst[0] = (u[0] - a) * (u[0] - b) }
		s := NewSolver(1, DefaultOptions())
		u := []float64{b + 1 + r.Float64()*5}
		if err := s.Solve(fn, nil, u); err != nil {
			return false
		}
		return math.Abs(u[0]-b) < 1e-6*(1+math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestOptionsDefaultsApplied(t *testing.T) {
	s := NewSolver(1, Options{})
	if s.Opts.MaxIter != 50 || s.Opts.Atol != 1e-9 || s.Opts.MaxHalvings != 8 {
		t.Fatalf("defaults not applied: %+v", s.Opts)
	}
}
