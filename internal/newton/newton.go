// Package newton implements the damped Newton-Raphson solver used by the
// "existing technique" baseline engines (implicit integration as found in
// SystemVision, PSPICE and SystemC-A per the paper's Tables I and II).
// Each implicit time step requires solving a nonlinear algebraic system
// F(u) = 0; the per-step Newton iteration with a dense LU factorisation of
// the Jacobian is exactly the cost the paper's explicit linearised
// technique avoids.
package newton

import (
	"errors"
	"fmt"
	"math"

	"harvsim/internal/la"
)

// Func evaluates the residual F(u) into dst. dst and u must not alias.
type Func func(u, dst []float64)

// Jacobian evaluates dF/du at u into the matrix dst.
type Jacobian func(u []float64, dst *la.Matrix)

// ErrNoConvergence is returned when the iteration exhausts MaxIter.
var ErrNoConvergence = errors.New("newton: iteration did not converge")

// Options controls the solver.
type Options struct {
	MaxIter int     // maximum Newton iterations (default 50)
	Atol    float64 // absolute tolerance on the update norm (default 1e-9)
	Rtol    float64 // relative tolerance on the update norm (default 1e-6)
	Ftol    float64 // residual infinity-norm tolerance (default 1e-9)
	// Damping enables a halving line search when a full step increases
	// the residual norm; essential for exponential diode models.
	Damping     bool
	MaxHalvings int // line-search depth (default 8)
}

// DefaultOptions returns SPICE-like Newton settings.
func DefaultOptions() Options {
	return Options{MaxIter: 50, Atol: 1e-9, Rtol: 1e-6, Ftol: 1e-9, Damping: true, MaxHalvings: 8}
}

// Stats reports the work performed by a solve.
type Stats struct {
	Iterations  int
	FuncEvals   int
	JacEvals    int
	LUFactors   int
	ResidualInf float64
}

// Solver holds reusable workspace for systems of fixed size n.
type Solver struct {
	Opts Options

	n     int
	lu    *la.LU
	jac   *la.Matrix
	f0    []float64
	fTry  []float64
	du    []float64
	uTry  []float64
	numJ  *NumJac
	Stats Stats
}

// NewSolver returns a solver for n unknowns.
func NewSolver(n int, opts Options) *Solver {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 50
	}
	if opts.Atol <= 0 {
		opts.Atol = 1e-9
	}
	if opts.Rtol <= 0 {
		opts.Rtol = 1e-6
	}
	if opts.Ftol <= 0 {
		opts.Ftol = 1e-9
	}
	if opts.MaxHalvings <= 0 {
		opts.MaxHalvings = 8
	}
	return &Solver{
		Opts: opts,
		n:    n,
		lu:   la.NewLU(n),
		jac:  la.NewMatrix(n, n),
		f0:   make([]float64, n),
		fTry: make([]float64, n),
		du:   make([]float64, n),
		uTry: make([]float64, n),
		numJ: NewNumJac(n),
	}
}

// Solve finds u with F(u) = 0 starting from the initial guess in u, which
// is updated in place. If jac is nil a forward-difference Jacobian is
// used. Returns ErrNoConvergence (wrapped with diagnostics) on failure;
// u then holds the best iterate found.
func (s *Solver) Solve(f Func, jac Jacobian, u []float64) error {
	if len(u) != s.n {
		panic("newton: Solve dimension mismatch")
	}
	s.Stats = Stats{}
	f(u, s.f0)
	s.Stats.FuncEvals++
	normF := la.NormInfVec(s.f0)
	if !la.AllFinite(s.f0) {
		return fmt.Errorf("newton: residual not finite at initial guess")
	}
	for iter := 0; iter < s.Opts.MaxIter; iter++ {
		if normF <= s.Opts.Ftol {
			s.Stats.ResidualInf = normF
			return nil
		}
		if jac != nil {
			jac(u, s.jac)
		} else {
			s.numJ.Eval(f, u, s.f0, s.jac)
			s.Stats.FuncEvals += s.n
		}
		s.Stats.JacEvals++
		if err := s.lu.Factor(s.jac); err != nil {
			return fmt.Errorf("newton: Jacobian factorisation failed at iteration %d: %w", iter, err)
		}
		s.Stats.LUFactors++
		// Newton direction: J*du = -F.
		for i := range s.f0 {
			s.du[i] = -s.f0[i]
		}
		if err := s.lu.Solve(s.du, s.du); err != nil {
			return fmt.Errorf("newton: solve failed: %w", err)
		}
		// Optionally damp: halve the step until the residual decreases.
		lambda := 1.0
		for half := 0; ; half++ {
			la.AxpyTo(s.uTry, lambda, s.du, u)
			f(s.uTry, s.fTry)
			s.Stats.FuncEvals++
			normTry := la.NormInfVec(s.fTry)
			if la.AllFinite(s.fTry) && (normTry < normF || !s.Opts.Damping) {
				copy(u, s.uTry)
				copy(s.f0, s.fTry)
				normF = normTry
				break
			}
			if half >= s.Opts.MaxHalvings {
				// Accept the smallest step anyway to keep moving; the
				// convergence check below will flag failure if stuck.
				copy(u, s.uTry)
				copy(s.f0, s.fTry)
				normF = normTry
				break
			}
			lambda *= 0.5
		}
		s.Stats.Iterations++
		// Convergence on the (undamped) update size.
		updateNorm := lambda * la.NormInfVec(s.du)
		scale := s.Opts.Atol + s.Opts.Rtol*la.NormInfVec(u)
		if updateNorm <= scale && normF <= math.Sqrt(s.Opts.Ftol) {
			s.Stats.ResidualInf = normF
			return nil
		}
	}
	s.Stats.ResidualInf = normF
	if normF <= s.Opts.Ftol {
		return nil
	}
	return fmt.Errorf("%w: residual %g after %d iterations", ErrNoConvergence, normF, s.Opts.MaxIter)
}

// NumJac computes forward-difference Jacobians with reusable workspace.
type NumJac struct {
	n    int
	fph  []float64
	upt  []float64
	base []float64
}

// NewNumJac returns a workspace for n unknowns.
func NewNumJac(n int) *NumJac {
	return &NumJac{n: n, fph: make([]float64, n), upt: make([]float64, n), base: make([]float64, n)}
}

// Eval computes J = dF/du at u into dst using forward differences. f0
// must hold F(u) (it is not recomputed).
func (nj *NumJac) Eval(f Func, u, f0 []float64, dst *la.Matrix) {
	if len(u) != nj.n || dst.Rows != nj.n || dst.Cols != nj.n {
		panic("newton: NumJac dimension mismatch")
	}
	copy(nj.upt, u)
	for j := 0; j < nj.n; j++ {
		h := 1e-8 * (1 + math.Abs(u[j]))
		nj.upt[j] = u[j] + h
		f(nj.upt, nj.fph)
		inv := 1 / h
		for i := 0; i < nj.n; i++ {
			dst.Set(i, j, (nj.fph[i]-f0[i])*inv)
		}
		nj.upt[j] = u[j]
	}
}
