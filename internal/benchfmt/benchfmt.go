// Package benchfmt defines the machine-readable benchmark-report format
// shared by every performance artefact in the repo: the committed
// BENCH_*.json regression baselines, the CI bench gate (cmd/benchgate)
// and cmd/benchtab's -json output all speak this one schema, so a
// baseline can be diffed against either a `go test -bench` run or a
// benchtab table without translation.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the report format version.
const Schema = "harvsim-bench/v1"

// Benchmark is one measured workload. NsPerOp/AllocsPerOp/BytesPerOp
// mirror `go test -bench -benchmem`; Metrics carries any additional
// named values (custom b.ReportMetric units, benchtab counters such as
// steps or refactorisations).
type Benchmark struct {
	Name    string  `json:"name"`
	Runs    int     `json:"runs,omitempty"`
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// AllocsPerOp/BytesPerOp serialise even at zero: a committed zero is
	// a hard pin the gate enforces (any allocation regresses it), so it
	// must be visible in the baseline.
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is a full benchmark snapshot.
type Report struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// NewReport returns an empty report carrying the schema tag.
func NewReport() Report { return Report{Schema: Schema} }

// Find returns the named benchmark, or nil.
func (r *Report) Find(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// Sort orders the benchmarks by name, for stable committed baselines.
func (r *Report) Sort() {
	sort.Slice(r.Benchmarks, func(i, j int) bool {
		return r.Benchmarks[i].Name < r.Benchmarks[j].Name
	})
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	if r.Schema == "" {
		r.Schema = Schema
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report and checks its schema tag.
func ReadFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return Report{}, fmt.Errorf("benchfmt: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return r, nil
}

// procSuffix matches the trailing GOMAXPROCS tag go test appends to
// benchmark names (BenchmarkFoo-8). It is stripped so baselines compare
// across machines with different core counts.
var procSuffix = regexp.MustCompile(`-\d+$`)

// ParseGoBench converts `go test -bench -benchmem` output into a report.
// Unrecognised lines are ignored; repeated runs of one benchmark (-count
// > 1) keep the fastest ns/op and the lowest allocs/op, the conventional
// noise floor.
func ParseGoBench(rd io.Reader) (Report, error) {
	rep := NewReport()
	byName := map[string]int{} // index into rep.Benchmarks: appends may move the array
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		runs, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		b := Benchmark{Name: name, Runs: runs}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		if i, ok := byName[name]; ok {
			prev := &rep.Benchmarks[i]
			prev.Runs += b.Runs
			if b.NsPerOp > 0 && (prev.NsPerOp == 0 || b.NsPerOp < prev.NsPerOp) {
				prev.NsPerOp = b.NsPerOp
			}
			if b.AllocsPerOp < prev.AllocsPerOp {
				prev.AllocsPerOp = b.AllocsPerOp
			}
			if b.BytesPerOp < prev.BytesPerOp {
				prev.BytesPerOp = b.BytesPerOp
			}
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		byName[name] = len(rep.Benchmarks) - 1
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// Regression is one gate violation: a benchmark whose cost grew beyond
// the tolerated ratio over the baseline.
type Regression struct {
	Name     string
	Metric   string // "ns/op" or "allocs/op"
	Base     float64
	Current  float64
	Ratio    float64 // Current/Base (+Inf when Base == 0)
	Tolerant float64 // the ratio the gate allowed
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx, allowed %.2fx)",
		r.Name, r.Metric, r.Base, r.Current, r.Ratio, r.Tolerant)
}

// Compare gates current against base: every benchmark present in base
// must exist in current (missing ones are reported) and must not regress
// by more than tol (0.20 = +20%) in ns/op or allocs/op. A zero-alloc
// baseline is a hard pin: any allocation at all regresses it.
func Compare(base, current Report, tol float64) (regressions []Regression, missing []string) {
	return CompareTol(base, current, tol, tol)
}

// CompareTol is Compare with independent tolerances for the two
// metrics. Allocation counts are machine-independent and deterministic,
// so allocTol can stay tight even when nsTol is widened to absorb
// hardware differences between the baseline machine and the runner.
func CompareTol(base, current Report, nsTol, allocTol float64) (regressions []Regression, missing []string) {
	nsRatio, allocRatio := 1+nsTol, 1+allocTol
	for _, b := range base.Benchmarks {
		cur := current.Find(b.Name)
		if cur == nil {
			missing = append(missing, b.Name)
			continue
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*nsRatio {
			regressions = append(regressions, Regression{
				Name: b.Name, Metric: "ns/op",
				Base: b.NsPerOp, Current: cur.NsPerOp,
				Ratio: cur.NsPerOp / b.NsPerOp, Tolerant: nsRatio,
			})
		}
		switch {
		case b.AllocsPerOp == 0 && cur.AllocsPerOp > 0:
			regressions = append(regressions, Regression{
				Name: b.Name, Metric: "allocs/op",
				Base: 0, Current: cur.AllocsPerOp,
				Ratio: math.Inf(1), Tolerant: allocRatio,
			})
		case b.AllocsPerOp > 0 && cur.AllocsPerOp > b.AllocsPerOp*allocRatio:
			regressions = append(regressions, Regression{
				Name: b.Name, Metric: "allocs/op",
				Base: b.AllocsPerOp, Current: cur.AllocsPerOp,
				Ratio: cur.AllocsPerOp / b.AllocsPerOp, Tolerant: allocRatio,
			})
		}
	}
	return regressions, missing
}
