package benchfmt

import (
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: harvsim
cpu: Example CPU @ 2.00GHz
BenchmarkTable1_Proposed-8   	      12	  95698357 ns/op	 1234567 B/op	   23456 allocs/op
BenchmarkBatchSweep_Pooled-8 	       5	 210000000 ns/op	       8.000 workers	 9876543 B/op	   54321 allocs/op
BenchmarkWarmStep-8          	 1000000	      1052 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	harvsim	12.3s
`

func TestParseGoBench(t *testing.T) {
	rep, err := ParseGoBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Find("BenchmarkTable1_Proposed")
	if b == nil {
		t.Fatal("BenchmarkTable1_Proposed not found (proc suffix not stripped?)")
	}
	if b.Runs != 12 || b.NsPerOp != 95698357 || b.AllocsPerOp != 23456 || b.BytesPerOp != 1234567 {
		t.Fatalf("bad parse: %+v", b)
	}
	p := rep.Find("BenchmarkBatchSweep_Pooled")
	if p == nil || p.Metrics["workers"] != 8 {
		t.Fatalf("custom metric lost: %+v", p)
	}
	w := rep.Find("BenchmarkWarmStep")
	if w == nil || w.AllocsPerOp != 0 || w.NsPerOp != 1052 {
		t.Fatalf("zero-alloc line mis-parsed: %+v", w)
	}
}

func TestParseGoBenchMultiCount(t *testing.T) {
	two := `BenchmarkX-4  10  200 ns/op  5 allocs/op
BenchmarkX-4  12  150 ns/op  7 allocs/op
`
	rep, err := ParseGoBench(strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	b := rep.Find("BenchmarkX")
	if b == nil || b.NsPerOp != 150 || b.AllocsPerOp != 5 || b.Runs != 22 {
		t.Fatalf("multi-count merge wrong: %+v", b)
	}
}

// TestParseGoBenchInterleaved merges duplicates that recur after other
// benchmarks were first seen (concatenated runs), which forces the
// benchmark slice to reallocate between the first sighting and the
// merge — the merge must land in the live array, not a stale one.
func TestParseGoBenchInterleaved(t *testing.T) {
	var in strings.Builder
	for run := 0; run < 2; run++ {
		for _, name := range []string{"A", "B", "C", "D", "E"} {
			ns := 100 * (run + 1)
			fmt.Fprintf(&in, "Benchmark%s-2  1  %d ns/op  %d allocs/op\n", name, ns, 9-run)
		}
	}
	rep, err := ParseGoBench(strings.NewReader(in.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("got %d benchmarks, want 5", len(rep.Benchmarks))
	}
	for _, b := range rep.Benchmarks {
		if b.Runs != 2 || b.NsPerOp != 100 || b.AllocsPerOp != 8 {
			t.Fatalf("merge lost on %s: %+v", b.Name, b)
		}
	}
}

func TestCompareGate(t *testing.T) {
	base := NewReport()
	base.Benchmarks = []Benchmark{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "B", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "Gone", NsPerOp: 50},
	}
	cur := NewReport()
	cur.Benchmarks = []Benchmark{
		{Name: "A", NsPerOp: 119, AllocsPerOp: 13}, // ns ok (+19%), allocs regressed (+30%)
		{Name: "B", NsPerOp: 300, AllocsPerOp: 1},  // both regressed; zero-alloc pin broken
	}
	regs, missing := Compare(base, cur, 0.20)
	if len(missing) != 1 || missing[0] != "Gone" {
		t.Fatalf("missing = %v", missing)
	}
	var metrics []string
	for _, r := range regs {
		metrics = append(metrics, r.Name+"/"+r.Metric)
		if r.Name == "B" && r.Metric == "allocs/op" && !math.IsInf(r.Ratio, 1) {
			t.Fatalf("zero-alloc pin should report infinite ratio, got %v", r.Ratio)
		}
	}
	want := []string{"A/allocs/op", "B/ns/op", "B/allocs/op"}
	if len(metrics) != len(want) {
		t.Fatalf("regressions %v, want %v", metrics, want)
	}
	for i := range want {
		if metrics[i] != want[i] {
			t.Fatalf("regressions %v, want %v", metrics, want)
		}
	}

	// Within tolerance passes.
	regs, missing = Compare(base, base, 0.20)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("self-compare not clean: %v %v", regs, missing)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := NewReport()
	rep.GoVersion = "go1.24.0"
	rep.Benchmarks = []Benchmark{
		{Name: "Z", NsPerOp: 3},
		{Name: "A", NsPerOp: 1, Metrics: map[string]float64{"steps": 42}},
	}
	rep.Sort()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks[0].Name != "A" || got.Benchmarks[0].Metrics["steps"] != 42 {
		t.Fatalf("round trip lost data: %+v", got.Benchmarks)
	}
	if got.Schema != Schema {
		t.Fatalf("schema %q", got.Schema)
	}
}
