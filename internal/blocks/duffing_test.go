package blocks

import (
	"math"
	"testing"

	"harvsim/internal/core"
	"harvsim/internal/implicit"
	"harvsim/internal/trace"
)

// TestDuffingTangentStamp checks the piecewise linearisation of the
// cubic spring directly against the closed form: the stamped state
// entry must be the tangent stiffness -(keff + 3*K3*z^2)/M at the
// stamping displacement, and the excitation row must carry the affine
// remainder +2*K3*z^3/M so the linear model and the exact cubic agree
// in value AND slope at the stamping point.
func TestDuffingTangentStamp(t *testing.T) {
	p := DefaultMicrogen()
	p.K3 = 2e9
	vib := NewVibration(0, 64) // no excitation: isolate the spring terms
	sys := core.NewSystem()
	gen := NewMicrogenerator("gen", p, vib)
	sys.AddBlock(gen)
	sys.AddBlock(NewResistor("load", "Vm", "Im", 3000))
	sys.MustBuild()

	x := make([]float64, sys.NX())
	y := make([]float64, sys.NY())
	z := 2.5e-4
	x[0] = z
	if !sys.Linearise(0, x, y) {
		t.Fatal("first Linearise reported no change")
	}
	wantA := -(p.Ks + 3*p.K3*z*z) / p.M // untuned: keff = Ks at ft = 0
	if got := sys.Jxx.At(1, 0); math.Abs(got-wantA) > math.Abs(wantA)*1e-12 {
		t.Fatalf("tangent stamp A(1,0) = %g, want %g", got, wantA)
	}
	wantE := 2 * p.K3 * z * z * z / p.M
	if got := sys.Ex[1]; math.Abs(got-wantE) > math.Abs(wantE)*1e-12 {
		t.Fatalf("affine remainder Ex[1] = %g, want %g", got, wantE)
	}
	// The tangent line must reproduce the exact cubic restoring force at
	// the stamping point: A*z + E == -(Ks*z + K3*z^3)/M.
	lin := sys.Jxx.At(1, 0)*z + sys.Ex[1]
	exact := -(p.Ks*z + p.K3*z*z*z) / p.M
	if math.Abs(lin-exact) > math.Abs(exact)*1e-12 {
		t.Fatalf("tangent line %g does not interpolate exact force %g", lin, exact)
	}

	// Within the retangent tolerance nothing restamps; far outside it the
	// tangent refreshes at the new displacement.
	x[0] = z * (1 + 1e-4)
	if sys.Linearise(0, x, y) {
		t.Fatal("negligible displacement drift forced a restamp")
	}
	x[0] = 4 * z
	if !sys.Linearise(0, x, y) {
		t.Fatal("large displacement drift did not restamp the tangent")
	}
	wantA = -(p.Ks + 3*p.K3*x[0]*x[0]) / p.M
	if got := sys.Jxx.At(1, 0); math.Abs(got-wantA) > math.Abs(wantA)*1e-12 {
		t.Fatalf("retangented A(1,0) = %g, want %g", got, wantA)
	}
}

// TestDuffingExactResiduals checks EvalNonlinear/JacNonlinear carry the
// exact cubic for the implicit baselines.
func TestDuffingExactResiduals(t *testing.T) {
	p := DefaultMicrogen()
	p.K3 = -5e8 // softening sign must flow through too
	vib := NewVibration(0, 64)
	gen := NewMicrogenerator("gen", p, vib)
	x := []float64{3e-4, 0.01}
	y := []float64{0.5, 1e-4}
	fx := make([]float64, 2)
	fy := make([]float64, 1)
	gen.EvalNonlinear(0, x, y, fx, fy)
	z, zd, im := x[0], x[1], y[1]
	want := (-(p.Ks*z + p.K3*z*z*z) - p.Cp*zd - p.Phi*im) / p.M
	if math.Abs(fx[1]-want) > math.Abs(want)*1e-12 {
		t.Fatalf("EvalNonlinear fx[1] = %g, want %g", fx[1], want)
	}
}

// TestDuffingHardeningDetunes pins the physics: a strongly hardening
// spring shifts the effective resonance away from a drive at the linear
// resonant frequency, collapsing the delivered power relative to the
// linear device.
func TestDuffingHardeningDetunes(t *testing.T) {
	run := func(k3 float64) float64 {
		p := DefaultMicrogen()
		p.K3 = k3
		vib := NewVibration(0.59, 64)
		sys := core.NewSystem()
		sys.AddBlock(NewMicrogenerator("gen", p, vib))
		sys.AddBlock(NewResistor("load", "Vm", "Im", 3000))
		eng := core.NewEngine(sys)
		eng.Ctl.HMax = 2e-4
		var pw trace.Series
		eng.Observe(func(tm float64, x, y []float64) {
			if tm > 2 {
				pw.Append(tm, y[0]*y[1])
			}
		})
		if err := eng.Run(0, 4); err != nil {
			t.Fatalf("k3=%g: %v", k3, err)
		}
		return pw.Mean()
	}
	linear := run(0)
	hard := run(1e10)
	if hard <= 0 || linear < 3*hard {
		t.Fatalf("hardening should detune the resonant drive: P(0)=%g, P(1e10)=%g",
			linear, hard)
	}
}

// TestDuffingRefreshCountsDiverge pins the claim that the cubic spring
// is the first workload whose Jacobian-refresh counts are driven by the
// operating point: on a gen+load system (no PWL diodes to mask it) the
// linear device stamps once, while the Duffing device re-tangents
// throughout the march.
func TestDuffingRefreshCountsDiverge(t *testing.T) {
	run := func(k3 float64) int {
		p := DefaultMicrogen()
		p.K3 = k3
		vib := NewVibration(0.59, 64)
		sys := core.NewSystem()
		sys.AddBlock(NewMicrogenerator("gen", p, vib))
		sys.AddBlock(NewResistor("load", "Vm", "Im", 3000))
		eng := core.NewEngine(sys)
		eng.Ctl.HMax = 2e-4
		if err := eng.Run(0, 2); err != nil {
			t.Fatalf("k3=%g: %v", k3, err)
		}
		return eng.Stats.Refreshes
	}
	lin := run(0)
	duff := run(1e9)
	if lin > 4 {
		t.Fatalf("linear gen+load refreshed %d times, want a handful at most", lin)
	}
	if duff < 20*lin {
		t.Fatalf("Duffing refreshes (%d) should dwarf linear refreshes (%d)", duff, lin)
	}
}

// TestDuffingExplicitMatchesImplicit checks the piecewise-tangent
// explicit march against the exact-Newton trapezoidal baseline on the
// nonlinear gen+load system: the local linearisation with the
// duffingRetanTol granularity must track the exact cubic dynamics.
func TestDuffingExplicitMatchesImplicit(t *testing.T) {
	mk := func() *core.System {
		p := DefaultMicrogen()
		p.K3 = 2e9
		vib := NewVibration(0.59, 64)
		sys := core.NewSystem()
		sys.AddBlock(NewMicrogenerator("gen", p, vib))
		sys.AddBlock(NewResistor("load", "Vm", "Im", 3000))
		return sys
	}
	var ex, im trace.Series
	sysE := mk()
	e1 := core.NewEngine(sysE)
	e1.Ctl.HMax = 1e-4
	e1.Observe(func(tm float64, x, y []float64) { ex.Append(tm, x[0]) })
	if err := e1.Run(0, 2); err != nil {
		t.Fatalf("explicit: %v", err)
	}
	sysI := mk()
	e2 := implicit.NewEngine(sysI, implicit.Trapezoidal)
	e2.Ctl.HMax = 1e-4
	e2.Observe(func(tm float64, x, y []float64) { im.Append(tm, x[0]) })
	if err := e2.Run(0, 2); err != nil {
		t.Fatalf("implicit: %v", err)
	}
	cmp := trace.Compare(&ex, &im, 400)
	if cmp.NRMSE > 0.05 {
		t.Fatalf("cross-engine NRMSE = %v (max %v at t=%v)", cmp.NRMSE, cmp.MaxAbs, cmp.AtMax)
	}
}
