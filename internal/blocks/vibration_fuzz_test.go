package blocks

import (
	"math"
	"testing"
)

// FuzzVibrationSchedule drives the vibration source through arbitrary
// byte-derived schedules — frequency steps, chirps, noise
// (re)configuration, resets, amplitude changes — and asserts the
// contract that the engines rely on: Accel/Freq/Phase stay finite and
// bounded for any in-contract schedule, the accumulated phase never
// runs backwards while the frequency is positive, and no operation
// panics. The decoder maps raw bytes into the contract domain (times
// non-decreasing, bands ordered, finite values); out-of-contract calls
// are a documented panic and are not generated here.
func FuzzVibrationSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("0123456789abcdefghij"))
	f.Add([]byte{0, 10, 0, 200, 0, 1, 50, 0, 100, 0, 2, 255, 255, 128, 7, 3, 9, 0, 0, 0})
	f.Add([]byte{2, 0, 1, 0, 1, 2, 1, 1, 1, 1, 4, 200, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		v := NewVibration(0.59, 70)
		tCur := 0.0
		maxRMS := 0.0
		// frac maps a 16-bit operand into [0, 1].
		frac := func(hi, lo byte) float64 { return float64(uint16(hi)<<8|uint16(lo)) / 65535 }
		for len(data) >= 5 {
			op, a, b := data[0]%5, frac(data[1], data[2]), frac(data[3], data[4])
			data = data[5:]
			switch op {
			case 0:
				tCur += a * 2
				v.SetFrequency(tCur, 1+b*200)
			case 1:
				start := tCur + a*2
				dur := b * 3
				v.Sweep(start, dur, 1+a*150)
				tCur = start + dur
			case 2:
				fLo := 1 + b*100
				spec := NoiseSpec{
					RMS:   a * 3,
					FLo:   fLo,
					FHi:   fLo + 0.5 + a*100,
					Tones: int(b*95) + 1,
					Seed:  uint64(a*65535)<<16 | uint64(b*65535),
				}
				v.ConfigureNoise(spec)
				if spec.Enabled() && spec.RMS > maxRMS {
					maxRMS = spec.RMS
				}
				if !spec.Enabled() {
					maxRMS = 0
				}
			case 3:
				v.Reset(1 + a*100)
				tCur = 0
				maxRMS = 0
			case 4:
				v.Amplitude = a * 2
			}
		}
		// |a(t)| is bounded by the sinusoid peak plus the coherent worst
		// case of the noise tones (RMS * sqrt(2*Tones), Tones <= 96).
		bound := math.Abs(v.Amplitude) + maxRMS*math.Sqrt(2*96) + 1
		lastPhase := math.Inf(-1)
		for i := 0; i <= 400; i++ {
			tm := tCur * float64(i) / 400
			acc, fr, ph := v.Accel(tm), v.Freq(tm), v.Phase(tm)
			if math.IsNaN(acc) || math.IsInf(acc, 0) || math.Abs(acc) > bound {
				t.Fatalf("Accel(%g) = %g out of bound %g", tm, acc, bound)
			}
			if math.IsNaN(fr) || math.IsInf(fr, 0) || fr <= 0 {
				t.Fatalf("Freq(%g) = %g, want finite positive", tm, fr)
			}
			if math.IsNaN(ph) || math.IsInf(ph, 0) {
				t.Fatalf("Phase(%g) = %g", tm, ph)
			}
			if ph < lastPhase {
				t.Fatalf("phase ran backwards at t=%g: %g < %g", tm, ph, lastPhase)
			}
			lastPhase = ph
		}
	})
}
