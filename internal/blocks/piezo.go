package blocks

import (
	"math"

	"harvsim/internal/core"
)

// PiezoParams describes a piezoelectric cantilever microgenerator. The
// paper's conclusion notes the linearised state-space approach is
// generic across transduction mechanisms: "all that is required are the
// model equations of each component block". This block provides those
// equations for the piezoelectric case:
//
//	m*zdd + c*zd + k*z + Theta*Vp = Fa
//	Cpz*Vpd = Theta*zd - Im,   Vm = Vp
type PiezoParams struct {
	M     float64 // proof mass [kg]
	Ks    float64 // stiffness [N/m]
	Cm    float64 // mechanical damping [N.s/m]
	Theta float64 // electromechanical coupling [N/V = C/m]
	Cpz   float64 // electrode capacitance [F]
}

// DefaultPiezo returns a mid-scale piezoelectric cantilever resonant at
// 64 Hz with coupling typical of PZT bimorphs.
func DefaultPiezo() PiezoParams {
	const fr = 64.0
	m := 5.0e-3
	return PiezoParams{
		M:     m,
		Ks:    m * (2 * math.Pi * fr) * (2 * math.Pi * fr),
		Cm:    7.2e-3,
		Theta: 1.0e-3,
		Cpz:   60e-9,
	}
}

// UntunedHz returns the short-circuit resonant frequency.
func (p PiezoParams) UntunedHz() float64 {
	return math.Sqrt(p.Ks/p.M) / (2 * math.Pi)
}

// Piezo is the piezoelectric microgenerator block: states [z, zd, Vp],
// terminals [Vm, Im], terminal relation 0 = Vm - Vp.
type Piezo struct {
	P   PiezoParams
	Vib *Vibration

	name    string
	stamped bool
}

// NewPiezo returns a piezo block named name driven by vib with terminals
// "Vm"/"Im".
func NewPiezo(name string, p PiezoParams, vib *Vibration) *Piezo {
	return &Piezo{P: p, Vib: vib, name: name}
}

// Name implements core.Block.
func (g *Piezo) Name() string { return g.name }

// NumStates implements core.Block.
func (g *Piezo) NumStates() int { return 3 }

// NumEquations implements core.Block.
func (g *Piezo) NumEquations() int { return 1 }

// Terminals implements core.Block.
func (g *Piezo) Terminals() []string { return []string{"Vm", "Im"} }

// InitState implements core.Block.
func (g *Piezo) InitState(x []float64) {
	x[0], x[1], x[2] = 0, 0, 0
}

// Linearise implements core.Block (the block is linear).
func (g *Piezo) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	p := g.P
	fa := -p.M * g.Vib.Accel(t)
	st.E(1, fa/p.M)
	if g.stamped {
		return false
	}
	st.A(0, 1, 1)
	st.A(1, 0, -p.Ks/p.M)
	st.A(1, 1, -p.Cm/p.M)
	st.A(1, 2, -p.Theta/p.M)
	st.A(2, 1, p.Theta/p.Cpz)
	st.B(2, 1, -1/p.Cpz) // Im
	st.C(0, 2, -1)
	st.D(0, 0, 1)
	g.stamped = true
	return true
}

// EvalNonlinear implements core.Block.
func (g *Piezo) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	p := g.P
	fa := -p.M * g.Vib.Accel(t)
	z, zd, vp := x[0], x[1], x[2]
	fx[0] = zd
	fx[1] = (-p.Ks*z - p.Cm*zd - p.Theta*vp + fa) / p.M
	fx[2] = (p.Theta*zd - y[1]) / p.Cpz
	fy[0] = y[0] - vp
}

// JacNonlinear implements core.Block.
func (g *Piezo) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	p := g.P
	st.A(0, 1, 1)
	st.A(1, 0, -p.Ks/p.M)
	st.A(1, 1, -p.Cm/p.M)
	st.A(1, 2, -p.Theta/p.M)
	st.A(2, 1, p.Theta/p.Cpz)
	st.B(2, 1, -1/p.Cpz)
	st.C(0, 2, -1)
	st.D(0, 0, 1)
	g.stamped = false
}
