package blocks

// Deterministic pseudo-random stream for the stochastic excitation mode.
// The realisation of a band-limited noise profile must be a pure
// function of its NoiseSpec (seed, band, tone count): scenarios are
// value-typed and re-assembled freely — by the batch workers, by
// Reset/rerun reuse, by result caching — and every assembly must
// reproduce the same excitation bit for bit. math/rand is deliberately
// not used: its stream is not covered by the Go 1 compatibility promise
// across seeding modes, while xoshiro256** below is a fixed published
// algorithm (Blackman & Vigna) whose output is stable by construction.

// splitmix64 is the recommended seeder for xoshiro: it expands one
// 64-bit seed into well-distributed stream state, so nearby seeds (0, 1,
// 2, ...) still yield decorrelated realisations.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// xoshiro256 is the xoshiro256** generator.
type xoshiro256 struct{ s [4]uint64 }

// newXoshiro256 seeds the generator from a single word via splitmix64.
func newXoshiro256(seed uint64) *xoshiro256 {
	sm := splitmix64(seed)
	var x xoshiro256
	for i := range x.s {
		x.s[i] = sm.next()
	}
	return &x
}

func rotl64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

func (x *xoshiro256) uint64() uint64 {
	r := rotl64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl64(x.s[3], 45)
	return r
}

// float64 returns a uniform value in [0, 1) with 53 significant bits.
func (x *xoshiro256) float64() float64 {
	return float64(x.uint64()>>11) / (1 << 53)
}
