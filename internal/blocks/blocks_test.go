package blocks

import (
	"math"
	"testing"

	"harvsim/internal/core"
	"harvsim/internal/implicit"
	"harvsim/internal/trace"
)

func TestVibrationPhaseContinuity(t *testing.T) {
	v := NewVibration(0.59, 70)
	v.SetFrequency(10, 71)
	v.SetFrequency(20, 64)
	eps := 1e-9
	for _, tc := range []float64{10, 20} {
		before := v.Accel(tc - eps)
		after := v.Accel(tc + eps)
		if math.Abs(before-after) > 1e-3 {
			t.Fatalf("acceleration discontinuity at %v: %v vs %v", tc, before, after)
		}
	}
	if v.Freq(5) != 70 || v.Freq(15) != 71 || v.Freq(25) != 64 {
		t.Fatalf("frequency profile wrong: %v %v %v", v.Freq(5), v.Freq(15), v.Freq(25))
	}
}

func TestVibrationAmplitudeAndPeriod(t *testing.T) {
	v := NewVibration(2, 50)
	// Peak near quarter period.
	if got := v.Accel(1.0 / 200); math.Abs(got-2) > 1e-9 {
		t.Fatalf("peak = %v, want 2", got)
	}
	// Zero at half period.
	if got := v.Accel(1.0 / 100); math.Abs(got) > 1e-9 {
		t.Fatalf("half-period value = %v, want 0", got)
	}
}

func TestVibrationSetFrequencyValidation(t *testing.T) {
	v := NewVibration(1, 50)
	v.SetFrequency(10, 60)
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-order SetFrequency should panic")
		}
	}()
	v.SetFrequency(5, 55)
}

func TestMicrogenTuningEquation12(t *testing.T) {
	p := DefaultMicrogen()
	fr := p.UntunedHz()
	if math.Abs(fr-64) > 1e-9 {
		t.Fatalf("untuned fr = %v, want 64", fr)
	}
	// Eq. 12 round trip.
	for _, f := range []float64{64, 67, 70, 71, 78} {
		ft := p.ForceForHz(f)
		if got := p.TunedHz(ft); math.Abs(got-f) > 1e-9 {
			t.Fatalf("TunedHz(ForceForHz(%v)) = %v", f, got)
		}
	}
	// 14 Hz range within the actuator's force budget (~2.2 N).
	if ft := p.ForceForHz(78); ft < 0 || ft > 3 {
		t.Fatalf("force for 78 Hz = %v N, want O(2) N", ft)
	}
}

// buildGenLoad wires a microgenerator to a resistive load.
func buildGenLoad(vib *Vibration, rLoad float64) (*core.System, *Microgenerator) {
	sys := core.NewSystem()
	gen := NewMicrogenerator("gen", DefaultMicrogen(), vib)
	sys.AddBlock(gen)
	sys.AddBlock(NewResistor("load", "Vm", "Im", rLoad))
	return sys, gen
}

func TestMicrogenResonantResponse(t *testing.T) {
	// Drive at the untuned resonance and off resonance: the resonant run
	// must deliver far more power into a matched load.
	run := func(fDrive float64) float64 {
		vib := NewVibration(0.59, fDrive)
		sys, _ := buildGenLoad(vib, 3000)
		eng := core.NewEngine(sys)
		eng.Ctl.HMax = 2e-4
		var p trace.Series
		eng.Observe(func(tm float64, x, y []float64) {
			if tm > 1.0 { // skip start-up transient
				p.Append(tm, y[0]*y[1])
			}
		})
		if err := eng.Run(0, 2.0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return p.Mean()
	}
	atRes := run(64)
	offRes := run(52)
	if atRes < 10*offRes {
		t.Fatalf("resonant power %v should dwarf off-resonance power %v", atRes, offRes)
	}
}

func TestMicrogenCalibratedPowerOutput(t *testing.T) {
	// Headline calibration: tuned microgenerator at resonance with its
	// matched load delivers on the order of the paper's 116-118 uW.
	vib := NewVibration(0.59, 64)
	sys, _ := buildGenLoad(vib, 3000)
	eng := core.NewEngine(sys)
	eng.Ctl.HMax = 2e-4
	var p trace.Series
	eng.Observe(func(tm float64, x, y []float64) {
		if tm > 6 { // past the mechanical transient (Q ~ 250)
			p.Append(tm, y[0]*y[1])
		}
	})
	if err := eng.Run(0, 10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mean := p.Mean()
	if mean < 60e-6 || mean > 200e-6 {
		t.Fatalf("matched-load power = %v W, want ~118 uW", mean)
	}
}

func TestMicrogenTuningShiftsResonance(t *testing.T) {
	// With the excitation at 70 Hz, power with the generator tuned to 70
	// must beat the untuned (64 Hz) generator.
	run := func(tuneHz float64) float64 {
		vib := NewVibration(0.59, 70)
		sys, gen := buildGenLoad(vib, 3000)
		gen.SetTuningForce(gen.P.ForceForHz(tuneHz), 0)
		eng := core.NewEngine(sys)
		eng.Ctl.HMax = 2e-4
		var p trace.Series
		eng.Observe(func(tm float64, x, y []float64) {
			if tm > 6 {
				p.Append(tm, y[0]*y[1])
			}
		})
		if err := eng.Run(0, 10); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return p.Mean()
	}
	tuned := run(70)
	untuned := run(64)
	if tuned < 3*untuned {
		t.Fatalf("tuned power %v should dominate untuned %v at 70 Hz drive", tuned, untuned)
	}
}

func TestDicksonRectifiesAndBoosts(t *testing.T) {
	// Drive the multiplier from an AC source into a light resistive load:
	// the DC output must build well above the source amplitude (voltage
	// boosting, paper Fig. 5). The charge pump's output impedance is
	// ~N/(C*f) ~ 3.2 kOhm, so the 220 uF output stage settles in a few
	// seconds.
	amp := 1.0
	sys := core.NewSystem()
	sys.AddBlock(NewACSource("src", "Vm", "Im", func(tm float64) float64 {
		return amp * math.Sin(2*math.Pi*70*tm)
	}, 50))
	dk := NewDickson("mult", DefaultDickson(1024))
	sys.AddBlock(dk)
	sys.AddBlock(NewResistor("load", "Vc", "Ic", 1e6))
	eng := core.NewEngine(sys)
	eng.Ctl.HMax = 2e-4
	var vout trace.Series
	off := sys.MustStateOffset("mult")
	vnIdx := off + dk.P.Stages - 1 // V_N
	eng.Observe(func(tm float64, x, y []float64) { vout.Append(tm, x[vnIdx]) })
	if err := eng.Run(0, 10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, vEnd := vout.Last()
	if vEnd < amp*1.5 {
		t.Fatalf("multiplier output %v V should exceed source amplitude %v V", vEnd, amp)
	}
}

func TestDicksonChargesSupercapSlowly(t *testing.T) {
	// Into the 0.46 F supercapacitor the same pump charges with
	// tau ~ Rout*C ~ 1500 s — the disparate-time-scale problem the paper
	// identifies. Verify a positive, slow, monotone charging slope.
	sys := core.NewSystem()
	sys.AddBlock(NewACSource("src", "Vm", "Im", func(tm float64) float64 {
		return math.Sin(2 * math.Pi * 70 * tm)
	}, 50))
	sys.AddBlock(NewDickson("mult", DefaultDickson(1024)))
	sys.AddBlock(NewSupercap("store", DefaultSupercap()))
	eng := core.NewEngine(sys)
	eng.Ctl.HMax = 2e-4
	var vout trace.Series
	off := sys.MustStateOffset("store")
	eng.Observe(func(tm float64, x, y []float64) { vout.Append(tm, x[off]) })
	if err := eng.Run(0, 20); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, vEnd := vout.Last()
	if vEnd < 5e-3 || vEnd > 0.5 {
		t.Fatalf("20 s of charging should land in the tens of mV: %v", vEnd)
	}
	for i := 1; i < vout.Len(); i++ {
		if vout.Vals[i] < vout.Vals[i-1]-1e-3 {
			t.Fatalf("supercap discharged at t=%v", vout.Times[i])
		}
	}
}

func TestDicksonStageVoltagesOrdered(t *testing.T) {
	// In steady charging, later stages accumulate more DC voltage.
	sys := core.NewSystem()
	sys.AddBlock(NewACSource("src", "Vm", "Im", func(tm float64) float64 {
		return math.Sin(2 * math.Pi * 70 * tm)
	}, 50))
	dk := NewDickson("mult", DefaultDickson(512))
	sys.AddBlock(dk)
	sys.AddBlock(NewResistor("load", "Vc", "Ic", 1e6))
	eng := core.NewEngine(sys)
	eng.Ctl.HMax = 2e-4
	if err := eng.Run(0, 8); err != nil {
		t.Fatalf("Run: %v", err)
	}
	x := eng.State()
	off := sys.MustStateOffset("mult")
	v1 := x[off]
	v5 := x[off+4]
	if !(v5 > v1) {
		t.Fatalf("stage voltages not boosting: V1=%v V5=%v", v1, v5)
	}
}

func TestSupercapBranchRedistribution(t *testing.T) {
	// Charge through the terminal with a stiff source at 2 V: the
	// immediate branch charges within seconds; the delayed and long-term
	// branches lag with their larger time constants.
	p := DefaultSupercap()
	sys := core.NewSystem()
	sys.AddBlock(NewACSource("src", "Vc", "Ic", func(float64) float64 { return 2 }, 1.0))
	sc := NewSupercap("store", p)
	sys.AddBlock(sc)
	eng := core.NewEngine(sys)
	eng.Ctl.HMax = 1e-3
	if err := eng.Run(0, 20); err != nil {
		t.Fatalf("Run: %v", err)
	}
	x := eng.State()
	vi, vd, vl := x[0], x[1], x[2]
	if vi < 1.8 {
		t.Fatalf("immediate branch should be nearly charged: %v", vi)
	}
	if !(vd < vi && vl < vd) {
		t.Fatalf("branch ordering wrong: vi=%v vd=%v vl=%v", vi, vd, vl)
	}
	if vd < 0.05 || vl < 0.001 {
		t.Fatalf("slow branches should have started charging: vd=%v vl=%v", vd, vl)
	}
}

func TestSupercapLoadModes(t *testing.T) {
	if LoadSleep.Req() != 1e9 || LoadMCU.Req() != 33 || LoadTuning.Req() != 16.7 {
		t.Fatalf("Eq. 16 load values wrong")
	}
	if LoadSleep.String() != "sleep" || LoadMCU.String() != "mcu-awake" || LoadTuning.String() != "tuning" {
		t.Fatalf("mode names wrong")
	}
}

func TestSupercapDischargeUnderLoad(t *testing.T) {
	// Pre-charged supercap discharges through the tuning load when
	// nothing feeds it (current source terminal pinned to 0 A through a
	// huge source resistance).
	p := DefaultSupercap()
	p.V0 = 3.0
	sys := core.NewSystem()
	sys.AddBlock(NewACSource("open", "Vc", "Ic", func(float64) float64 { return 0 }, 1e12))
	sc := NewSupercap("store", p)
	sc.SetMode(LoadTuning)
	sys.AddBlock(sc)
	eng := core.NewEngine(sys)
	eng.Ctl.HMax = 1e-3
	var v trace.Series
	eng.Observe(func(tm float64, x, y []float64) { v.Append(tm, x[0]) })
	if err := eng.Run(0, 5); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, vEnd := v.Last()
	if vEnd >= 3.0 {
		t.Fatalf("supercap did not discharge: %v", vEnd)
	}
	// Roughly exponential decay with tau ~ Req*C ~ 16.7*0.5 ~ 8 s.
	if vEnd < 1.0 {
		t.Fatalf("discharge too fast: %v after 5 s", vEnd)
	}
}

func TestSupercapStoredEnergy(t *testing.T) {
	p := DefaultSupercap()
	sc := NewSupercap("s", p)
	e0 := sc.StoredEnergy([]float64{0, 0, 0})
	if e0 != 0 {
		t.Fatalf("empty energy = %v", e0)
	}
	e3 := sc.StoredEnergy([]float64{3, 3, 3})
	// C0 terms: (0.27+0.10+0.22)*9/2 = 2.655; C1 term: 0.19*27/3 = 1.71.
	want := 2.655 + 1.71
	if math.Abs(e3-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", e3, want)
	}
}

func TestExplicitMatchesImplicitOnRectifier(t *testing.T) {
	// Cross-engine agreement on the nonlinear multiplier + supercap chain
	// (accuracy parity claim of the paper).
	mk := func() *core.System {
		sys := core.NewSystem()
		sys.AddBlock(NewACSource("src", "Vm", "Im", func(tm float64) float64 {
			return math.Sin(2 * math.Pi * 70 * tm)
		}, 50))
		sys.AddBlock(NewDickson("mult", DefaultDickson(2048)))
		sys.AddBlock(NewSupercap("store", DefaultSupercap()))
		return sys
	}
	var ex, im trace.Series
	sysE := mk()
	e1 := core.NewEngine(sysE)
	e1.Ctl.HMax = 1e-4
	offE := sysE.MustStateOffset("store")
	e1.Observe(func(tm float64, x, y []float64) { ex.Append(tm, x[offE]) })
	if err := e1.Run(0, 3); err != nil {
		t.Fatalf("explicit: %v", err)
	}
	sysI := mk()
	e2 := implicit.NewEngine(sysI, implicit.Trapezoidal)
	e2.Ctl.HMax = 1e-4
	offI := sysI.MustStateOffset("store")
	e2.Observe(func(tm float64, x, y []float64) { im.Append(tm, x[offI]) })
	if err := e2.Run(0, 3); err != nil {
		t.Fatalf("implicit: %v", err)
	}
	cmp := trace.Compare(&ex, &im, 300)
	if cmp.NRMSE > 0.03 {
		t.Fatalf("cross-engine NRMSE = %v (max %v at t=%v)", cmp.NRMSE, cmp.MaxAbs, cmp.AtMax)
	}
}

func TestResistorBlock(t *testing.T) {
	r := NewResistor("r", "V", "I", 100)
	if r.Resistance() != 100 {
		t.Fatalf("Resistance = %v", r.Resistance())
	}
	r.SetResistance(200)
	if r.Resistance() != 200 {
		t.Fatalf("SetResistance failed")
	}
	fy := make([]float64, 1)
	r.EvalNonlinear(0, nil, []float64{10, 0.05}, nil, fy)
	if fy[0] != 0 {
		t.Fatalf("V=10, I=0.05 should satisfy the 200-Ohm relation: %v", fy[0])
	}
}

func TestACSourceWithOutputResistance(t *testing.T) {
	s := NewACSource("s", "V", "I", func(float64) float64 { return 5 }, 10)
	fy := make([]float64, 1)
	// V + Rs*I = Voc: 3 + 10*0.2 = 5.
	s.EvalNonlinear(0, nil, []float64{3, 0.2}, nil, fy)
	if math.Abs(fy[0]) > 1e-12 {
		t.Fatalf("source relation violated: %v", fy[0])
	}
}
