package blocks

import (
	"fmt"

	"harvsim/internal/core"
	"harvsim/internal/pwl"
)

// DicksonParams configures the N-stage Dickson voltage multiplier of
// paper Fig. 5. CStage is the stage storage capacitance and COut the
// final smoothing stage that feeds the supercapacitor. The charge pump's
// output impedance is roughly sum_i 1/(f*C_i) (~2.7 kOhm at 70 Hz with
// the defaults), which is what the microgenerator's electrical side is
// matched against.
//
// The diode is a low-barrier Schottky (the standard choice in uW-level
// harvesting rectifiers for its low forward drop); its series resistance
// bounds the on-state companion conductance and hence the fastest RC
// mode the explicit integrator must respect.
type DicksonParams struct {
	Stages int
	CStage float64
	COut   float64
	Diode  *pwl.Diode
}

// DefaultDickson returns the 5-stage multiplier used by the harvester
// with the given PWL table granularity.
func DefaultDickson(segments int) DicksonParams {
	d := &pwl.Diode{Is: 5e-6, NVt: 38.7e-3, Rs: 100}
	d.BuildTable(segments)
	return DicksonParams{
		Stages: 5,
		CStage: 22e-6,
		COut:   220e-6,
		Diode:  d,
	}
}

// Dickson is the voltage-multiplier block (paper Eq. 14): states
// [V1..VN] — the stage voltages, exactly the state set of the paper's
// linearised model — and terminals [Vm, Im, Vc, Ic]. Diode i sees
// Vd_i = s_i*Vm + V_{i-1} - V_i with alternating pump sign s_i
// (s_1 = +1) and V_0 = 0, which reproduces the paper's model where the
// source voltage couples into every stage row through companion pairs
// (G_i, J_i) retrieved from the PWL lookup table. Terminal relations:
// the input KCL 0 = Im - sum_i s_i*Id_i and the output 0 = Vc - VN.
type Dickson struct {
	P    DicksonParams
	name string

	g, j    []float64 // companion pairs per diode (1-based at index 0)
	segs    []int     // last PWL segment per diode
	dirty   bool
	initOut float64 // precharge voltage for the output ladder
}

// NewDickson returns a multiplier block named name with terminals
// "Vm"/"Im" on the input and "Vc"/"Ic" on the output.
func NewDickson(name string, p DicksonParams) *Dickson {
	if p.Stages < 1 {
		panic(fmt.Sprintf("blocks: Dickson needs >= 1 stage, got %d", p.Stages))
	}
	if p.Diode == nil {
		panic("blocks: Dickson needs a diode model")
	}
	return &Dickson{
		P:     p,
		name:  name,
		g:     make([]float64, p.Stages),
		j:     make([]float64, p.Stages),
		segs:  make([]int, p.Stages),
		dirty: true,
	}
}

// Name implements core.Block.
func (d *Dickson) Name() string { return d.name }

// NumStates implements core.Block.
func (d *Dickson) NumStates() int { return d.P.Stages }

// NumEquations implements core.Block.
func (d *Dickson) NumEquations() int { return 2 }

// Terminals implements core.Block.
func (d *Dickson) Terminals() []string { return []string{"Vm", "Im", "Vc", "Ic"} }

// PrechargeOutput sets the initial condition of the stage ladder to ramp
// linearly up to v at the output, matching a storage element that is
// already charged (avoids an unphysical inrush at t=0).
func (d *Dickson) PrechargeOutput(v float64) { d.initOut = v }

// InitState implements core.Block.
func (d *Dickson) InitState(x []float64) {
	n := d.P.Stages
	for i := 1; i <= n; i++ {
		x[i-1] = d.initOut * float64(i) / float64(n)
	}
}

// sign returns the pump sign s_i for diode i (1-based).
func (d *Dickson) sign(i int) float64 {
	if i%2 == 1 {
		return 1
	}
	return -1
}

// vd returns diode i's voltage (1-based) given local state x
// (x[k] = V_{k+1}) and source voltage vm.
func (d *Dickson) vd(i int, x []float64, vm float64) float64 {
	vPrev := 0.0
	if i > 1 {
		vPrev = x[i-2]
	}
	return d.sign(i)*vm + vPrev - x[i-1]
}

// stageCap returns the capacitance of stage i (1-based).
func (d *Dickson) stageCap(i int) float64 {
	if i == d.P.Stages {
		return d.P.COut
	}
	return d.P.CStage
}

// Linearise implements core.Block: refresh the diode companions from the
// PWL table and restamp when any segment changed.
func (d *Dickson) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	n := d.P.Stages
	vm := y[0]
	changed := d.dirty
	for i := 1; i <= n; i++ {
		g, j, seg := d.P.Diode.Companion(d.vd(i, x, vm))
		if seg != d.segs[i-1] || d.g[i-1] != g {
			changed = true
		}
		d.g[i-1], d.j[i-1], d.segs[i-1] = g, j, seg
	}
	if !changed {
		return false
	}
	d.stamp(st)
	d.dirty = false
	return true
}

// stamp writes the full linearised model. State index k holds V_{k+1};
// terminal order is Vm=0, Im=1, Vc=2, Ic=3.
func (d *Dickson) stamp(st core.Stamp) {
	n := d.P.Stages
	gi := func(i int) float64 {
		if i >= 1 && i <= n {
			return d.g[i-1]
		}
		return 0
	}
	ji := func(i int) float64 {
		if i >= 1 && i <= n {
			return d.j[i-1]
		}
		return 0
	}
	si := d.sign

	// Stage rows i = 1..n-1: C_i*dV_i/dt = Id_i - Id_{i+1} with
	// Id_i = G_i*(s_i*Vm + V_{i-1} - V_i) + J_i.
	for i := 1; i < n; i++ {
		c := d.stageCap(i)
		r := i - 1
		st.B(r, 0, (si(i)*gi(i)-si(i+1)*gi(i+1))/c)
		if i >= 2 {
			st.A(r, i-2, gi(i)/c)
		}
		st.A(r, i-1, -(gi(i)+gi(i+1))/c)
		st.A(r, i, gi(i+1)/c)
		st.E(r, (ji(i)-ji(i+1))/c)
	}
	// Output stage: C_N*dV_N/dt = Id_N - Ic.
	c := d.stageCap(n)
	r := n - 1
	st.B(r, 0, si(n)*gi(n)/c)
	if n >= 2 {
		st.A(r, n-2, gi(n)/c)
	}
	st.A(r, n-1, -gi(n)/c)
	st.B(r, 3, -1/c) // Ic
	st.E(r, ji(n)/c)

	// Input KCL: 0 = Im - sum_i s_i*Id_i
	//          = Im - (sum G_i)*Vm - sum_i s_i*G_i*(V_{i-1}-V_i) - sum s_i*J_i.
	var sumG, sumSJ float64
	for i := 1; i <= n; i++ {
		sumG += gi(i)
		sumSJ += si(i) * ji(i)
	}
	st.D(0, 0, -sumG)
	st.D(0, 1, 1)
	for k := 1; k <= n; k++ {
		// V_k appears as -V_k in diode k and as V_{(k+1)-1} in diode k+1.
		st.C(0, k-1, si(k)*gi(k)-si(k+1)*gi(k+1))
	}
	st.G(0, -sumSJ)

	// Output relation: 0 = Vc - VN.
	st.C(1, n-1, -1)
	st.D(1, 2, 1)
}

// EvalNonlinear implements core.Block with exact Shockley(+Rs) diode
// currents — the model the Newton-Raphson baselines iterate on.
func (d *Dickson) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	n := d.P.Stages
	vm, im, vc, ic := y[0], y[1], y[2], y[3]
	var pumpSum float64
	idPrev := 0.0
	for i := 1; i <= n; i++ {
		id := d.P.Diode.Current(d.vd(i, x, vm))
		pumpSum += d.sign(i) * id
		if i >= 2 {
			fx[i-2] = (idPrev - id) / d.stageCap(i-1)
		}
		idPrev = id
	}
	fx[n-1] = (idPrev - ic) / d.stageCap(n)
	fy[0] = im - pumpSum
	fy[1] = vc - x[n-1]
}

// JacNonlinear implements core.Block using exact diode conductances.
func (d *Dickson) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	n := d.P.Stages
	vm := y[0]
	for i := 1; i <= n; i++ {
		v := d.vd(i, x, vm)
		g := d.P.Diode.Conductance(v)
		id := d.P.Diode.Current(v)
		d.g[i-1] = g
		d.j[i-1] = id - g*v
	}
	d.stamp(st)
	d.dirty = true // PWL stamps must be restored before explicit runs
}
