package blocks

import (
	"math"

	"harvsim/internal/core"
)

// MicrogenParams holds the tunable electromagnetic microgenerator
// parameters (paper Fig. 4, Eqs. 8-13). Defaults are calibrated so the
// device reproduces the headline observables of the validation rig
// (Ayala-Garcia et al., PowerMEMS 2009 / Zhu et al. 2010): untuned
// resonance 64 Hz, ~14 Hz magnetic tuning range, and ~116-118 uW RMS
// output at 0.59 m/s^2 when tuned to the excitation.
//
// Lc selects the coil model. With Lc > 0 the block carries the coil
// current iL as a third state exactly as paper Eq. 13. With Lc = 0 the
// coil branch is treated quasi-statically (Vm = Phi*zdot - Rc*Im): at
// vibration frequencies of tens of Hz the coil reactance is a small
// fraction of its resistance, and — crucially for the explicit technique
// — the L/R_off time constant formed with the rectifier's reverse-biased
// diodes would otherwise be an artificial sub-microsecond mode that no
// explicit integrator could step over. The quasi-static coil is the
// default; the inductive variant remains available for the implicit
// baselines and for studies of the stiff regime the paper excludes.
type MicrogenParams struct {
	M   float64 // proof mass [kg]
	Ks  float64 // untuned effective spring stiffness [N/m]
	Cp  float64 // parasitic damping [N.s/m]
	Phi float64 // transduction factor NBl [V.s/m = N/A]
	Rc  float64 // coil resistance [Ohm]
	Lc  float64 // coil inductance [H]; 0 = quasi-static coil
	Fb  float64 // cantilever buckling load for Eq. 12 [N]

	// K3 is the cubic (Duffing) spring coefficient [N/m^3]: the restoring
	// force is (keff+K1)*z + K3*z^3, the standard adjustable-nonlinearity
	// route to wider harvester bandwidth (Boisseau et al.). K3 > 0 hardens
	// the spring (resonance rises with amplitude), K3 < 0 softens it. 0
	// keeps the paper's linear device, bit-identically: every stamping and
	// residual path below degenerates to the exact linear expressions.
	K3 float64

	// K1 is an extra linear stiffness [N/m] summed with the tuned Ks
	// term. K1 < -Ks flips the total linear stiffness negative, which
	// together with a hardening K3 > 0 forms the bistable double well
	// (Morel et al.): wells at z = ±sqrt(-(Ks+K1)/K3), barrier height
	// (Ks+K1)^2/(4*K3). 0 keeps the monostable device bit-identically.
	K1 float64

	// Xi1 [1/m] and Xi2 [1/m^2] make the transduction factor
	// displacement-dependent, Phi_eff(z) = Phi*(1 + Xi1*z + Xi2*z^2) —
	// the bistable_EH coupling corrections for a mass excursion that
	// leaves the region where the flux gradient is constant. Both zero
	// keep the constant-Phi device bit-identically.
	Xi1 float64
	Xi2 float64

	// Z0 is the initial proof-mass displacement [m]. A bistable device
	// must start inside a well, not balanced on the unstable hilltop;
	// monostable scenarios leave it 0 (start at rest at equilibrium).
	Z0 float64
}

// coupled reports whether the transduction factor depends on z.
func (p MicrogenParams) coupled() bool { return p.Xi1 != 0 || p.Xi2 != 0 }

// phiAt returns the effective transduction factor at displacement z.
// For a constant-coupling device it is exactly P.Phi.
func (p MicrogenParams) phiAt(z float64) float64 {
	if !p.coupled() {
		return p.Phi
	}
	return p.Phi * (1 + p.Xi1*z + p.Xi2*z*z)
}

// dphiAt returns d(Phi_eff)/dz at displacement z.
func (p MicrogenParams) dphiAt(z float64) float64 {
	if !p.coupled() {
		return 0
	}
	return p.Phi * (p.Xi1 + 2*p.Xi2*z)
}

// operatingPointDriven reports whether any stamped coefficient depends
// on the displacement, i.e. whether the piecewise-tangent zLin
// machinery is active.
func (p MicrogenParams) operatingPointDriven() bool { return p.K3 != 0 || p.coupled() }

// Bistable reports whether the untuned restoring force forms a double
// well: total linear stiffness Ks+K1 negative with a hardening cubic.
func (p MicrogenParams) Bistable() bool { return p.Ks+p.K1 < 0 && p.K3 > 0 }

// WellZ returns the well displacement sqrt(-(Ks+K1)/K3) of the untuned
// double well (the stable equilibria sit at ±WellZ), or 0 for a
// monostable device.
func (p MicrogenParams) WellZ() float64 {
	if !p.Bistable() {
		return 0
	}
	return math.Sqrt(-(p.Ks + p.K1) / p.K3)
}

// BarrierJ returns the untuned double-well barrier height
// (Ks+K1)^2/(4*K3) [J], or 0 for a monostable device.
func (p MicrogenParams) BarrierJ() float64 {
	if !p.Bistable() {
		return 0
	}
	kl := p.Ks + p.K1
	return kl * kl / (4 * p.K3)
}

// InWellHz returns the small-signal resonance inside one well of the
// untuned double well: the tangent stiffness at z = ±WellZ is
// (Ks+K1) + 3*K3*WellZ^2 = -2*(Ks+K1), so f = sqrt(-2(Ks+K1)/M)/2pi.
// Returns 0 for a monostable device.
func (p MicrogenParams) InWellHz() float64 {
	if !p.Bistable() {
		return 0
	}
	return math.Sqrt(-2*(p.Ks+p.K1)/p.M) / (2 * math.Pi)
}

// DefaultMicrogen returns the calibrated parameter set (quasi-static
// coil).
func DefaultMicrogen() MicrogenParams {
	const fr = 64.0 // untuned resonant frequency [Hz]
	m := 5.0e-3
	return MicrogenParams{
		M:   m,
		Ks:  m * (2 * math.Pi * fr) * (2 * math.Pi * fr),
		Cp:  7.2e-3,
		Phi: 5.3,
		Rc:  500,
		Lc:  0,
		Fb:  4.0,
	}
}

// UntunedHz returns the resonant frequency with zero tuning force.
func (p MicrogenParams) UntunedHz() float64 {
	return math.Sqrt(p.Ks/p.M) / (2 * math.Pi)
}

// TunedHz returns the resonant frequency under tuning force ft (Eq. 12):
// f'r = fr*sqrt(1 + Ft/Fb).
func (p MicrogenParams) TunedHz(ft float64) float64 {
	return p.UntunedHz() * math.Sqrt(1+ft/p.Fb)
}

// ForceForHz inverts Eq. 12: the tuning force needed to move the
// resonance to f Hz.
func (p MicrogenParams) ForceForHz(f float64) float64 {
	fr := p.UntunedHz()
	return p.Fb * ((f/fr)*(f/fr) - 1)
}

// Microgenerator is the electromagnetic microgenerator block (Eq. 13):
// states [z, zdot] plus iL when the coil inductance is modelled,
// terminals [Vm, Im] with Im flowing out of the device into the
// power-processing stage.
//
// The magnetic tuning force Ft raises the effective stiffness to
// Ks*(1 + Ft/Fb), shifting the resonance per Eq. 12; its z-component
// Ftz (usually tiny) enters the force balance of Eq. 8 directly.
type Microgenerator struct {
	P   MicrogenParams
	Vib *Vibration

	name    string
	ft, ftz float64
	dirty   bool
	stamped bool

	// zLin is the displacement about which the cubic spring is currently
	// linearised (meaningful only when P.K3 != 0). The stamped tangent
	// stiffness is keff + 3*K3*zLin^2 and the affine remainder
	// 2*K3*zLin^3 rides in the excitation vector; Linearise re-tangents
	// when the true tangent at the current z has drifted materially.
	zLin float64
}

// duffingRetanTol is the relative tangent-stiffness drift that triggers
// a Duffing re-linearisation: restamp when |3*K3*(z^2 - zLin^2)| exceeds
// this fraction of the total stamped stiffness. The bound is set by the
// resonator's quality factor, not by the engine's LLE step-shrink
// threshold: the device's half-power bandwidth is fres/Q ~ 0.35% of
// fres, so a stiffness granularity of 2*0.35% would jitter the
// effective resonance across its own bandwidth and decohere a resonant
// buildup. 0.05% keeps the frequency granularity an order of magnitude
// inside the resonance width; each restamp is only a dirty flag plus a
// small-Jyy refactorisation, so the march stays cheap.
const duffingRetanTol = 5e-4

// NewMicrogenerator returns a microgenerator block named name, driven by
// vib, with terminals named "Vm" and "Im".
func NewMicrogenerator(name string, p MicrogenParams, vib *Vibration) *Microgenerator {
	return &Microgenerator{P: p, Vib: vib, name: name, dirty: true}
}

// inductive reports whether the coil current is a state.
func (g *Microgenerator) inductive() bool { return g.P.Lc > 0 }

// Name implements core.Block.
func (g *Microgenerator) Name() string { return g.name }

// NumStates implements core.Block.
func (g *Microgenerator) NumStates() int {
	if g.inductive() {
		return 3
	}
	return 2
}

// NumEquations implements core.Block.
func (g *Microgenerator) NumEquations() int { return 1 }

// Terminals implements core.Block.
func (g *Microgenerator) Terminals() []string { return []string{"Vm", "Im"} }

// InitState implements core.Block: the device starts at rest at the
// configured initial displacement (0 for monostable devices, a well
// position for bistable ones).
func (g *Microgenerator) InitState(x []float64) {
	for i := range x {
		x[i] = 0
	}
	x[0] = g.P.Z0
}

// SetTuningForce sets the magnetic tuning force (Eq. 12) and its
// z-component; callers must also Invalidate the owning system so the
// engine refreshes the linearisation.
func (g *Microgenerator) SetTuningForce(ft, ftz float64) {
	if ft != g.ft || ftz != g.ftz {
		g.ft, g.ftz = ft, ftz
		g.dirty = true
	}
}

// TuningForce returns the current tuning force.
func (g *Microgenerator) TuningForce() float64 { return g.ft }

// ResonantHz returns the current (tuned) resonant frequency.
func (g *Microgenerator) ResonantHz() float64 { return g.P.TunedHz(g.ft) }

// keff returns the tuned effective stiffness.
func (g *Microgenerator) keff() float64 { return g.P.Ks * (1 + g.ft/g.P.Fb) }

// Linearise implements core.Block. With K3 == 0 the model is linear for
// a fixed tuning force and only the excitation changes between
// refreshes. With K3 != 0 the cubic restoring force is piecewise
// linearised about the displacement zLin it was last stamped at:
//
//	-(keff*z + K3*z^3) ≈ -(keff + 3*K3*zLin^2)*z + 2*K3*zLin^3
//
// — a tangent in the state matrix plus an affine remainder in the
// excitation vector, exactly the shape the proposed engine's restamp
// and LLE machinery expects. The tangent is refreshed only when the
// true tangent at the current z drifts past duffingRetanTol, which is
// what makes this the first workload whose Jacobian-refresh counts are
// genuinely operating-point driven.
func (g *Microgenerator) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	p := g.P
	if p.operatingPointDriven() {
		z := x[0]
		if !g.stamped {
			g.zLin = z
		} else if g.retangent(z) {
			g.zLin = z
			g.dirty = true
		}
	}
	// Excitation (time-varying): base-excitation force plus the static
	// z-component of the tuning force, plus — for the Duffing spring —
	// the affine remainder of the cubic's tangent line.
	fa := -p.M*g.Vib.Accel(t) - g.ftz
	if p.K3 != 0 {
		fa += 2 * p.K3 * g.zLin * g.zLin * g.zLin
	}
	st.E(1, fa/p.M)
	if g.stamped && !g.dirty {
		return false
	}
	ke := g.keff()
	if p.K1 != 0 {
		ke += p.K1
	}
	if p.K3 != 0 {
		ke += 3 * p.K3 * g.zLin * g.zLin
	}
	// Displacement-dependent coupling is stamped frozen at zLin: the
	// bilinear tangent terms (dphi*zdot*z, dphi*i*z) are not expressible
	// in a linear stamp, so the coefficient rides the same retangent
	// schedule as the cubic's tangent stiffness and stays within
	// duffingRetanTol of the true Phi_eff between restamps.
	phi := p.Phi
	if p.coupled() {
		phi = p.phiAt(g.zLin)
	}
	// dz/dt = zdot.
	st.A(0, 1, 1)
	// dzdot/dt = -(ke/m) z - (cp/m) zdot - (phi/m) i + E.
	st.A(1, 0, -ke/p.M)
	st.A(1, 1, -p.Cp/p.M)
	if g.inductive() {
		// Electromagnetic force from the coil-current state.
		st.A(1, 2, -phi/p.M)
		// diL/dt = (phi*zdot - Rc*iL - Vm)/Lc.
		st.A(2, 1, phi/p.Lc)
		st.A(2, 2, -p.Rc/p.Lc)
		st.B(2, 0, -1/p.Lc)
		// Terminal relation 0 = Im - iL.
		st.C(0, 2, -1)
		st.D(0, 1, 1)
	} else {
		// Electromagnetic force from the terminal current (Fem = phi*Im).
		st.B(1, 1, -phi/p.M)
		// Quasi-static coil KVL: 0 = Vm - phi*zdot + Rc*Im.
		st.C(0, 1, -phi)
		st.D(0, 0, 1)
		st.D(0, 1, p.Rc)
	}
	g.stamped = true
	g.dirty = false
	return true
}

// retangent reports whether the linearisation stamped at zLin has
// drifted materially from the operating point z: tangent-stiffness
// drift for the cubic spring, effective-coupling drift for the
// displacement-dependent transduction. The stiffness reference sums
// |keff|, |K1| and the stamped cubic tangent as absolute values — for
// a double well the *signed* total passes through zero at the
// inflection points (z = ±WellZ/sqrt(3)), and a relative test against
// the signed total would retangent every step there (thrash) exactly
// when an inter-well jump is in progress. Against the absolute sum the
// tolerance stays a fixed fraction of the physical stiffness scale, so
// a jump costs O(log(zWell/tol)) restamps, not O(steps).
func (g *Microgenerator) retangent(z float64) bool {
	p := g.P
	if p.K3 != 0 {
		ref := math.Abs(g.keff()) + math.Abs(3*p.K3*g.zLin*g.zLin)
		if p.K1 != 0 {
			ref += math.Abs(p.K1)
		}
		if d := 3 * p.K3 * (z*z - g.zLin*g.zLin); math.Abs(d) > duffingRetanTol*ref {
			return true
		}
	}
	if p.coupled() {
		if d := p.phiAt(z) - p.phiAt(g.zLin); math.Abs(d) > duffingRetanTol*math.Abs(p.Phi) {
			return true
		}
	}
	return false
}

// EvalNonlinear implements core.Block: the exact device equations,
// including the cubic spring force when K3 != 0 (for K3 == 0 the device
// is linear and the expressions coincide with the linearisation).
func (g *Microgenerator) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	p := g.P
	fa := -p.M * g.Vib.Accel(t)
	z, zd := x[0], x[1]
	vm, im := y[0], y[1]
	fx[0] = zd
	fs := g.keff() * z
	if p.K1 != 0 {
		fs += p.K1 * z
	}
	if p.K3 != 0 {
		fs += p.K3 * z * z * z
	}
	phi := p.Phi
	if p.coupled() {
		phi = p.phiAt(z)
	}
	if g.inductive() {
		il := x[2]
		fx[1] = (-fs - p.Cp*zd - phi*il + fa - g.ftz) / p.M
		fx[2] = (phi*zd - p.Rc*il - vm) / p.Lc
		fy[0] = im - il
		return
	}
	fx[1] = (-fs - p.Cp*zd - phi*im + fa - g.ftz) / p.M
	fy[0] = vm - phi*zd + p.Rc*im
}

// JacNonlinear implements core.Block: exact derivatives of the device
// equations, including the cubic's tangent stiffness and — when the
// coupling is displacement-dependent — the dPhi/dz cross terms between
// the mechanical and electrical sides.
func (g *Microgenerator) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	p := g.P
	z, zd := x[0], x[1]
	ke := g.keff()
	if p.K1 != 0 {
		ke += p.K1
	}
	if p.K3 != 0 {
		ke += 3 * p.K3 * z * z
	}
	st.A(0, 1, 1)
	st.A(1, 1, -p.Cp/p.M)
	if g.inductive() {
		if p.coupled() {
			phi, dphi := p.phiAt(z), p.dphiAt(z)
			il := x[2]
			st.A(1, 0, (-ke-dphi*il)/p.M)
			st.A(1, 2, -phi/p.M)
			st.A(2, 0, dphi*zd/p.Lc)
			st.A(2, 1, phi/p.Lc)
		} else {
			st.A(1, 0, -ke/p.M)
			st.A(1, 2, -p.Phi/p.M)
			st.A(2, 1, p.Phi/p.Lc)
		}
		st.A(2, 2, -p.Rc/p.Lc)
		st.B(2, 0, -1/p.Lc)
		st.C(0, 2, -1)
		st.D(0, 1, 1)
	} else {
		if p.coupled() {
			phi, dphi := p.phiAt(z), p.dphiAt(z)
			im := y[1]
			st.A(1, 0, (-ke-dphi*im)/p.M)
			st.B(1, 1, -phi/p.M)
			st.C(0, 0, -dphi*zd)
			st.C(0, 1, -phi)
		} else {
			st.A(1, 0, -ke/p.M)
			st.B(1, 1, -p.Phi/p.M)
			st.C(0, 1, -p.Phi)
		}
		st.D(0, 0, 1)
		st.D(0, 1, p.Rc)
	}
	g.stamped = false
}

// EMF returns the electromagnetic voltage Phi_eff(z)*zdot for state x
// (Eq. 9; for constant coupling exactly Phi*zdot).
func (g *Microgenerator) EMF(x []float64) float64 { return g.P.phiAt(x[0]) * x[1] }
