package blocks

import (
	"math"

	"harvsim/internal/core"
)

// MicrogenParams holds the tunable electromagnetic microgenerator
// parameters (paper Fig. 4, Eqs. 8-13). Defaults are calibrated so the
// device reproduces the headline observables of the validation rig
// (Ayala-Garcia et al., PowerMEMS 2009 / Zhu et al. 2010): untuned
// resonance 64 Hz, ~14 Hz magnetic tuning range, and ~116-118 uW RMS
// output at 0.59 m/s^2 when tuned to the excitation.
//
// Lc selects the coil model. With Lc > 0 the block carries the coil
// current iL as a third state exactly as paper Eq. 13. With Lc = 0 the
// coil branch is treated quasi-statically (Vm = Phi*zdot - Rc*Im): at
// vibration frequencies of tens of Hz the coil reactance is a small
// fraction of its resistance, and — crucially for the explicit technique
// — the L/R_off time constant formed with the rectifier's reverse-biased
// diodes would otherwise be an artificial sub-microsecond mode that no
// explicit integrator could step over. The quasi-static coil is the
// default; the inductive variant remains available for the implicit
// baselines and for studies of the stiff regime the paper excludes.
type MicrogenParams struct {
	M   float64 // proof mass [kg]
	Ks  float64 // untuned effective spring stiffness [N/m]
	Cp  float64 // parasitic damping [N.s/m]
	Phi float64 // transduction factor NBl [V.s/m = N/A]
	Rc  float64 // coil resistance [Ohm]
	Lc  float64 // coil inductance [H]; 0 = quasi-static coil
	Fb  float64 // cantilever buckling load for Eq. 12 [N]

	// K3 is the cubic (Duffing) spring coefficient [N/m^3]: the restoring
	// force is keff*z + K3*z^3, the standard adjustable-nonlinearity route
	// to wider harvester bandwidth (Boisseau et al.). K3 > 0 hardens the
	// spring (resonance rises with amplitude), K3 < 0 softens it. 0 keeps
	// the paper's linear device, bit-identically: every stamping and
	// residual path below degenerates to the exact linear expressions.
	K3 float64
}

// DefaultMicrogen returns the calibrated parameter set (quasi-static
// coil).
func DefaultMicrogen() MicrogenParams {
	const fr = 64.0 // untuned resonant frequency [Hz]
	m := 5.0e-3
	return MicrogenParams{
		M:   m,
		Ks:  m * (2 * math.Pi * fr) * (2 * math.Pi * fr),
		Cp:  7.2e-3,
		Phi: 5.3,
		Rc:  500,
		Lc:  0,
		Fb:  4.0,
	}
}

// UntunedHz returns the resonant frequency with zero tuning force.
func (p MicrogenParams) UntunedHz() float64 {
	return math.Sqrt(p.Ks/p.M) / (2 * math.Pi)
}

// TunedHz returns the resonant frequency under tuning force ft (Eq. 12):
// f'r = fr*sqrt(1 + Ft/Fb).
func (p MicrogenParams) TunedHz(ft float64) float64 {
	return p.UntunedHz() * math.Sqrt(1+ft/p.Fb)
}

// ForceForHz inverts Eq. 12: the tuning force needed to move the
// resonance to f Hz.
func (p MicrogenParams) ForceForHz(f float64) float64 {
	fr := p.UntunedHz()
	return p.Fb * ((f/fr)*(f/fr) - 1)
}

// Microgenerator is the electromagnetic microgenerator block (Eq. 13):
// states [z, zdot] plus iL when the coil inductance is modelled,
// terminals [Vm, Im] with Im flowing out of the device into the
// power-processing stage.
//
// The magnetic tuning force Ft raises the effective stiffness to
// Ks*(1 + Ft/Fb), shifting the resonance per Eq. 12; its z-component
// Ftz (usually tiny) enters the force balance of Eq. 8 directly.
type Microgenerator struct {
	P   MicrogenParams
	Vib *Vibration

	name    string
	ft, ftz float64
	dirty   bool
	stamped bool

	// zLin is the displacement about which the cubic spring is currently
	// linearised (meaningful only when P.K3 != 0). The stamped tangent
	// stiffness is keff + 3*K3*zLin^2 and the affine remainder
	// 2*K3*zLin^3 rides in the excitation vector; Linearise re-tangents
	// when the true tangent at the current z has drifted materially.
	zLin float64
}

// duffingRetanTol is the relative tangent-stiffness drift that triggers
// a Duffing re-linearisation: restamp when |3*K3*(z^2 - zLin^2)| exceeds
// this fraction of the total stamped stiffness. The bound is set by the
// resonator's quality factor, not by the engine's LLE step-shrink
// threshold: the device's half-power bandwidth is fres/Q ~ 0.35% of
// fres, so a stiffness granularity of 2*0.35% would jitter the
// effective resonance across its own bandwidth and decohere a resonant
// buildup. 0.05% keeps the frequency granularity an order of magnitude
// inside the resonance width; each restamp is only a dirty flag plus a
// small-Jyy refactorisation, so the march stays cheap.
const duffingRetanTol = 5e-4

// NewMicrogenerator returns a microgenerator block named name, driven by
// vib, with terminals named "Vm" and "Im".
func NewMicrogenerator(name string, p MicrogenParams, vib *Vibration) *Microgenerator {
	return &Microgenerator{P: p, Vib: vib, name: name, dirty: true}
}

// inductive reports whether the coil current is a state.
func (g *Microgenerator) inductive() bool { return g.P.Lc > 0 }

// Name implements core.Block.
func (g *Microgenerator) Name() string { return g.name }

// NumStates implements core.Block.
func (g *Microgenerator) NumStates() int {
	if g.inductive() {
		return 3
	}
	return 2
}

// NumEquations implements core.Block.
func (g *Microgenerator) NumEquations() int { return 1 }

// Terminals implements core.Block.
func (g *Microgenerator) Terminals() []string { return []string{"Vm", "Im"} }

// InitState implements core.Block: the device starts at rest.
func (g *Microgenerator) InitState(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// SetTuningForce sets the magnetic tuning force (Eq. 12) and its
// z-component; callers must also Invalidate the owning system so the
// engine refreshes the linearisation.
func (g *Microgenerator) SetTuningForce(ft, ftz float64) {
	if ft != g.ft || ftz != g.ftz {
		g.ft, g.ftz = ft, ftz
		g.dirty = true
	}
}

// TuningForce returns the current tuning force.
func (g *Microgenerator) TuningForce() float64 { return g.ft }

// ResonantHz returns the current (tuned) resonant frequency.
func (g *Microgenerator) ResonantHz() float64 { return g.P.TunedHz(g.ft) }

// keff returns the tuned effective stiffness.
func (g *Microgenerator) keff() float64 { return g.P.Ks * (1 + g.ft/g.P.Fb) }

// Linearise implements core.Block. With K3 == 0 the model is linear for
// a fixed tuning force and only the excitation changes between
// refreshes. With K3 != 0 the cubic restoring force is piecewise
// linearised about the displacement zLin it was last stamped at:
//
//	-(keff*z + K3*z^3) ≈ -(keff + 3*K3*zLin^2)*z + 2*K3*zLin^3
//
// — a tangent in the state matrix plus an affine remainder in the
// excitation vector, exactly the shape the proposed engine's restamp
// and LLE machinery expects. The tangent is refreshed only when the
// true tangent at the current z drifts past duffingRetanTol, which is
// what makes this the first workload whose Jacobian-refresh counts are
// genuinely operating-point driven.
func (g *Microgenerator) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	p := g.P
	if p.K3 != 0 {
		z := x[0]
		if !g.stamped {
			g.zLin = z
		} else if d := 3 * p.K3 * (z*z - g.zLin*g.zLin); math.Abs(d) >
			duffingRetanTol*(math.Abs(g.keff())+math.Abs(3*p.K3*g.zLin*g.zLin)) {
			g.zLin = z
			g.dirty = true
		}
	}
	// Excitation (time-varying): base-excitation force plus the static
	// z-component of the tuning force, plus — for the Duffing spring —
	// the affine remainder of the cubic's tangent line.
	fa := -p.M*g.Vib.Accel(t) - g.ftz
	if p.K3 != 0 {
		fa += 2 * p.K3 * g.zLin * g.zLin * g.zLin
	}
	st.E(1, fa/p.M)
	if g.stamped && !g.dirty {
		return false
	}
	ke := g.keff()
	if p.K3 != 0 {
		ke += 3 * p.K3 * g.zLin * g.zLin
	}
	// dz/dt = zdot.
	st.A(0, 1, 1)
	// dzdot/dt = -(ke/m) z - (cp/m) zdot - (phi/m) i + E.
	st.A(1, 0, -ke/p.M)
	st.A(1, 1, -p.Cp/p.M)
	if g.inductive() {
		// Electromagnetic force from the coil-current state.
		st.A(1, 2, -p.Phi/p.M)
		// diL/dt = (phi*zdot - Rc*iL - Vm)/Lc.
		st.A(2, 1, p.Phi/p.Lc)
		st.A(2, 2, -p.Rc/p.Lc)
		st.B(2, 0, -1/p.Lc)
		// Terminal relation 0 = Im - iL.
		st.C(0, 2, -1)
		st.D(0, 1, 1)
	} else {
		// Electromagnetic force from the terminal current (Fem = phi*Im).
		st.B(1, 1, -p.Phi/p.M)
		// Quasi-static coil KVL: 0 = Vm - phi*zdot + Rc*Im.
		st.C(0, 1, -p.Phi)
		st.D(0, 0, 1)
		st.D(0, 1, p.Rc)
	}
	g.stamped = true
	g.dirty = false
	return true
}

// EvalNonlinear implements core.Block: the exact device equations,
// including the cubic spring force when K3 != 0 (for K3 == 0 the device
// is linear and the expressions coincide with the linearisation).
func (g *Microgenerator) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	p := g.P
	fa := -p.M * g.Vib.Accel(t)
	z, zd := x[0], x[1]
	vm, im := y[0], y[1]
	fx[0] = zd
	fs := g.keff() * z
	if p.K3 != 0 {
		fs += p.K3 * z * z * z
	}
	if g.inductive() {
		il := x[2]
		fx[1] = (-fs - p.Cp*zd - p.Phi*il + fa - g.ftz) / p.M
		fx[2] = (p.Phi*zd - p.Rc*il - vm) / p.Lc
		fy[0] = im - il
		return
	}
	fx[1] = (-fs - p.Cp*zd - p.Phi*im + fa - g.ftz) / p.M
	fy[0] = vm - p.Phi*zd + p.Rc*im
}

// JacNonlinear implements core.Block.
func (g *Microgenerator) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	p := g.P
	ke := g.keff()
	if p.K3 != 0 {
		z := x[0]
		ke += 3 * p.K3 * z * z
	}
	st.A(0, 1, 1)
	st.A(1, 0, -ke/p.M)
	st.A(1, 1, -p.Cp/p.M)
	if g.inductive() {
		st.A(1, 2, -p.Phi/p.M)
		st.A(2, 1, p.Phi/p.Lc)
		st.A(2, 2, -p.Rc/p.Lc)
		st.B(2, 0, -1/p.Lc)
		st.C(0, 2, -1)
		st.D(0, 1, 1)
	} else {
		st.B(1, 1, -p.Phi/p.M)
		st.C(0, 1, -p.Phi)
		st.D(0, 0, 1)
		st.D(0, 1, p.Rc)
	}
	g.stamped = false
}

// EMF returns the electromagnetic voltage Phi*zdot for state x (Eq. 9).
func (g *Microgenerator) EMF(x []float64) float64 { return g.P.Phi * x[1] }
