package blocks

import (
	"math"
	"testing"

	"harvsim/internal/core"
	"harvsim/internal/implicit"
	"harvsim/internal/trace"
)

// bistableParams returns the default microgenerator reshaped into the
// standard test double well (well displacement wellM, barrier height
// barrierJ), mirroring harvester.BistableScenario's inversion.
func bistableParams(wellM, barrierJ float64) MicrogenParams {
	p := DefaultMicrogen()
	kl := -4 * barrierJ / (wellM * wellM)
	p.K1 = kl - p.Ks
	p.K3 = 4 * barrierJ / (wellM * wellM * wellM * wellM)
	p.Z0 = -wellM
	return p
}

// TestBistableWellGeometry pins the closed-form geometry accessors
// against the inversion: the derived K1/K3 must round-trip back to the
// requested well displacement and barrier height, and the in-well
// resonance must be sqrt(-2*(Ks+K1)/M)/2pi (tangent stiffness at the
// well bottom is -2*(Ks+K1)).
func TestBistableWellGeometry(t *testing.T) {
	const wellM, barrierJ = 5e-4, 2e-6
	p := bistableParams(wellM, barrierJ)
	if !p.Bistable() {
		t.Fatal("derived double-well params not recognised as bistable")
	}
	if got := p.WellZ(); math.Abs(got-wellM) > wellM*1e-12 {
		t.Errorf("WellZ = %g, want %g", got, wellM)
	}
	if got := p.BarrierJ(); math.Abs(got-barrierJ) > barrierJ*1e-12 {
		t.Errorf("BarrierJ = %g, want %g", got, barrierJ)
	}
	want := math.Sqrt(-2*(p.Ks+p.K1)/p.M) / (2 * math.Pi)
	if got := p.InWellHz(); math.Abs(got-want) > want*1e-12 {
		t.Errorf("InWellHz = %g, want %g", got, want)
	}

	// Monostable devices report no well: all three accessors return 0
	// and Bistable is false, including the softening-cubic case (K3 < 0)
	// and the stiff-but-positive K1 case.
	for _, q := range []MicrogenParams{
		DefaultMicrogen(),
		{M: 5e-3, Ks: 800, K3: -1e8},
		{M: 5e-3, Ks: 800, K1: 100, K3: 1e8},
	} {
		if q.Bistable() || q.WellZ() != 0 || q.BarrierJ() != 0 || q.InWellHz() != 0 {
			t.Errorf("monostable %+v reported a well", q)
		}
	}
}

// TestBistableTangentStamp checks the double-well piecewise
// linearisation against the closed form at three qualitatively
// different operating points: in a well (stable tangent), on the
// hilltop (negative tangent stiffness — the stamp the engine's
// spectral-radius fallback must cope with), and mid-jump. The stamped
// state entry must be -(keff+K1+3*K3*z^2)/M with the affine remainder
// +2*K3*z^3/M, so the tangent line interpolates the exact force.
func TestBistableTangentStamp(t *testing.T) {
	p := bistableParams(5e-4, 2e-6)
	vib := NewVibration(0, 18)
	sys := core.NewSystem()
	gen := NewMicrogenerator("gen", p, vib)
	sys.AddBlock(gen)
	sys.AddBlock(NewResistor("load", "Vm", "Im", 3000))
	sys.MustBuild()

	x := make([]float64, sys.NX())
	y := make([]float64, sys.NY())
	for _, z := range []float64{-5e-4, 0, 2.1e-4} {
		x[0] = z
		sys.Invalidate()
		if !sys.Linearise(0, x, y) {
			t.Fatalf("z=%g: Linearise after Invalidate reported no change", z)
		}
		wantA := -(p.Ks + p.K1 + 3*p.K3*z*z) / p.M
		if got := sys.Jxx.At(1, 0); math.Abs(got-wantA) > math.Abs(wantA)*1e-12+1e-12 {
			t.Fatalf("z=%g: tangent stamp A(1,0) = %g, want %g", z, got, wantA)
		}
		wantE := 2 * p.K3 * z * z * z / p.M
		if got := sys.Ex[1]; math.Abs(got-wantE) > math.Abs(wantE)*1e-12+1e-12 {
			t.Fatalf("z=%g: affine remainder Ex[1] = %g, want %g", z, got, wantE)
		}
		lin := sys.Jxx.At(1, 0)*z + sys.Ex[1]
		exact := -((p.Ks+p.K1)*z + p.K3*z*z*z) / p.M
		if math.Abs(lin-exact) > math.Abs(exact)*1e-12+1e-12 {
			t.Fatalf("z=%g: tangent line %g does not interpolate exact force %g", z, lin, exact)
		}
	}
	// The hilltop stamp must be genuinely unstable: positive A(1,0)
	// (negative tangent stiffness) is what distinguishes the double well
	// from every earlier workload.
	x[0] = 0
	sys.Invalidate()
	sys.Linearise(0, x, y)
	if got := sys.Jxx.At(1, 0); got <= 0 {
		t.Fatalf("hilltop tangent A(1,0) = %g, want > 0 (unstable)", got)
	}
}

// TestBistableRetangentAtInflection is the thrash regression. At the
// inflection points z = ±WellZ/sqrt(3) the SIGNED stamped stiffness
// keff+K1+3*K3*z^2 passes through zero; a relative drift test against
// the signed total would see an (almost) zero reference there and
// retangent on every Linearise call while an inter-well jump is in
// flight. The reference must therefore be the absolute-value sum, which
// keeps the threshold a fixed fraction of the physical stiffness scale:
// a sub-threshold drift near the inflection must NOT restamp, and a
// material drift still must.
func TestBistableRetangentAtInflection(t *testing.T) {
	p := bistableParams(5e-4, 2e-6)
	vib := NewVibration(0, 18)
	sys := core.NewSystem()
	gen := NewMicrogenerator("gen", p, vib)
	sys.AddBlock(gen)
	sys.AddBlock(NewResistor("load", "Vm", "Im", 3000))
	sys.MustBuild()

	zInfl := p.WellZ() / math.Sqrt(3)
	signed := p.Ks + p.K1 + 3*p.K3*zInfl*zInfl
	ref := math.Abs(p.Ks) + math.Abs(p.K1) + math.Abs(3*p.K3*zInfl*zInfl)
	if math.Abs(signed) > 1e-9*ref {
		t.Fatalf("test premise: signed stiffness at inflection = %g, want ~0 (scale %g)", signed, ref)
	}

	x := make([]float64, sys.NX())
	y := make([]float64, sys.NY())
	x[0] = zInfl
	if !sys.Linearise(0, x, y) {
		t.Fatal("first Linearise reported no change")
	}
	// Drift well inside the absolute-sum threshold: must not restamp.
	// (Against the signed reference the allowed drift would be ~0 and
	// this would retangent — the per-step thrash this test pins out.)
	x[0] = zInfl * (1 + 1e-4)
	if sys.Linearise(0, x, y) {
		t.Fatal("sub-threshold drift at the inflection point restamped (signed-reference thrash)")
	}
	// A material drift (a real jump making progress) still retangents.
	x[0] = zInfl * 1.5
	if !sys.Linearise(0, x, y) {
		t.Fatal("material drift past the inflection point did not restamp")
	}
	wantA := -(p.Ks + p.K1 + 3*p.K3*x[0]*x[0]) / p.M
	if got := sys.Jxx.At(1, 0); math.Abs(got-wantA) > math.Abs(wantA)*1e-12 {
		t.Fatalf("retangented A(1,0) = %g, want %g", got, wantA)
	}
}

// TestBistableCouplingStamp checks the displacement-dependent
// transduction: the quasi-static terminal row must carry the effective
// coupling frozen at the stamping displacement, C(0,1) = -Phi_eff(zLin),
// and a displacement change that moves Phi_eff past its drift tolerance
// must restamp even when the spring is linear (K3 = 0).
func TestBistableCouplingStamp(t *testing.T) {
	p := DefaultMicrogen()
	p.Xi1 = 120
	p.Xi2 = -3.4e4
	vib := NewVibration(0, 64)
	sys := core.NewSystem()
	gen := NewMicrogenerator("gen", p, vib)
	sys.AddBlock(gen)
	sys.AddBlock(NewResistor("load", "Vm", "Im", 3000))
	sys.MustBuild()

	x := make([]float64, sys.NX())
	y := make([]float64, sys.NY())
	z := 2e-4
	x[0] = z
	if !sys.Linearise(0, x, y) {
		t.Fatal("first Linearise reported no change")
	}
	wantPhi := p.Phi * (1 + p.Xi1*z + p.Xi2*z*z)
	if got := sys.Jyx.At(0, 1); math.Abs(got-(-wantPhi)) > math.Abs(wantPhi)*1e-12 {
		t.Fatalf("coupling stamp C(0,1) = %g, want %g", got, -wantPhi)
	}
	if got := sys.Jxy.At(1, 1); math.Abs(got-(-wantPhi/p.M)) > math.Abs(wantPhi/p.M)*1e-12 {
		t.Fatalf("coupling stamp B(1,1) = %g, want %g", got, -wantPhi/p.M)
	}
	// Tiny drift: effective coupling moves < tol*Phi, no restamp.
	x[0] = z * (1 + 1e-5)
	if sys.Linearise(0, x, y) {
		t.Fatal("negligible coupling drift forced a restamp")
	}
	// Large drift: Phi_eff(z) changes by several tolerances.
	x[0] = -2e-4
	if !sys.Linearise(0, x, y) {
		t.Fatal("large coupling drift did not restamp")
	}
	wantPhi = p.Phi * (1 + p.Xi1*x[0] + p.Xi2*x[0]*x[0])
	if got := sys.Jyx.At(0, 1); math.Abs(got-(-wantPhi)) > math.Abs(wantPhi)*1e-12 {
		t.Fatalf("restamped C(0,1) = %g, want %g", got, -wantPhi)
	}
}

// TestBistableExactResiduals checks EvalNonlinear carries the exact
// double-well force and the exact displacement-dependent coupling for
// the implicit ground-truth engines, on both coil models.
func TestBistableExactResiduals(t *testing.T) {
	p := bistableParams(5e-4, 2e-6)
	p.Xi1 = 120
	p.Xi2 = -3.4e4
	vib := NewVibration(0, 18)

	phiAt := func(z float64) float64 { return p.Phi * (1 + p.Xi1*z + p.Xi2*z*z) }
	force := func(z float64) float64 { return (p.Ks+p.K1)*z + p.K3*z*z*z }

	// Quasi-static coil: states [z, zdot], equations [KVL].
	gen := NewMicrogenerator("gen", p, vib)
	x := []float64{3e-4, 0.01}
	y := []float64{0.5, 1e-4}
	fx := make([]float64, 2)
	fy := make([]float64, 1)
	gen.EvalNonlinear(0, x, y, fx, fy)
	z, zd, vm, im := x[0], x[1], y[0], y[1]
	want := (-force(z) - p.Cp*zd - phiAt(z)*im) / p.M
	if math.Abs(fx[1]-want) > math.Abs(want)*1e-12 {
		t.Fatalf("quasi-static fx[1] = %g, want %g", fx[1], want)
	}
	if want = vm - phiAt(z)*zd + p.Rc*im; math.Abs(fy[0]-want) > math.Abs(want)*1e-12 {
		t.Fatalf("quasi-static fy[0] = %g, want %g", fy[0], want)
	}

	// Inductive coil: states [z, zdot, iL].
	p.Lc = 0.5e-3
	gen = NewMicrogenerator("gen", p, vib)
	il := 2e-4
	x3 := []float64{3e-4, 0.01, il}
	fx3 := make([]float64, 3)
	gen.EvalNonlinear(0, x3, y, fx3, fy)
	want = (-force(z) - p.Cp*zd - phiAt(z)*il) / p.M
	if math.Abs(fx3[1]-want) > math.Abs(want)*1e-12 {
		t.Fatalf("inductive fx[1] = %g, want %g", fx3[1], want)
	}
	want = (phiAt(z)*zd - p.Rc*il - vm) / p.Lc
	if math.Abs(fx3[2]-want) > math.Abs(want)*1e-12 {
		t.Fatalf("inductive fx[2] = %g, want %g", fx3[2], want)
	}
}

// TestBistableJacobianMatchesFiniteDifference checks JacNonlinear —
// including the dPhi/dz cross terms between the mechanical and
// electrical sides — against central finite differences of
// EvalNonlinear over every state and terminal, on both coil models.
func TestBistableJacobianMatchesFiniteDifference(t *testing.T) {
	for _, lc := range []float64{0, 0.5e-3} {
		p := bistableParams(5e-4, 2e-6)
		p.Xi1 = 120
		p.Xi2 = -3.4e4
		p.Lc = lc
		vib := NewVibration(0.3, 18)
		sys := core.NewSystem()
		sys.AddBlock(NewMicrogenerator("gen", p, vib))
		sys.AddBlock(NewResistor("load", "Vm", "Im", 3000))
		sys.MustBuild()

		nx, ny := sys.NX(), sys.NY()
		x := make([]float64, nx)
		y := make([]float64, ny)
		// An operating point with every term active: mid-jump displacement,
		// real velocity, nonzero terminal values.
		x[0], x[1] = 2.1e-4, 0.02
		if lc > 0 {
			x[2] = 3e-4
		}
		y[0], y[1] = 0.4, 1.3e-4
		sys.JacNonlinear(0.1, x, y)

		eval := func(x, y []float64) ([]float64, []float64) {
			fx := make([]float64, nx)
			fy := make([]float64, ny)
			sys.EvalNonlinear(0.1, x, y, fx, fy)
			return fx, fy
		}
		// Central difference of column j of d(fx,fy)/d(v) where v is
		// (x|y)[j]; scale-aware step.
		checkCol := func(v []float64, j int, atX, atY func(i, j int) float64) {
			h := 1e-7 * (1 + math.Abs(v[j]))
			orig := v[j]
			v[j] = orig + h
			fxp, fyp := eval(x, y)
			v[j] = orig - h
			fxm, fym := eval(x, y)
			v[j] = orig
			for i := 0; i < nx; i++ {
				fd := (fxp[i] - fxm[i]) / (2 * h)
				if got := atX(i, j); math.Abs(got-fd) > 1e-5*(1+math.Abs(fd)) {
					t.Errorf("Lc=%g: d fx[%d]/d v[%d]: stamped %g, FD %g", lc, i, j, got, fd)
				}
			}
			for i := 0; i < ny; i++ {
				fd := (fyp[i] - fym[i]) / (2 * h)
				if got := atY(i, j); math.Abs(got-fd) > 1e-5*(1+math.Abs(fd)) {
					t.Errorf("Lc=%g: d fy[%d]/d v[%d]: stamped %g, FD %g", lc, i, j, got, fd)
				}
			}
		}
		for j := 0; j < nx; j++ {
			checkCol(x, j, sys.Jxx.At, sys.Jyx.At)
		}
		for j := 0; j < ny; j++ {
			checkCol(y, j, sys.Jxy.At, sys.Jyy.At)
		}
	}
}

// TestBistableExplicitMatchesImplicit checks the piecewise-tangent
// explicit march against the exact-Newton trapezoidal baseline on the
// double-well gen+load system under a strong sinusoidal drive that
// forces sustained inter-well oscillation — the jump regime the
// retangent policy must survive.
func TestBistableExplicitMatchesImplicit(t *testing.T) {
	mk := func() *core.System {
		p := bistableParams(5e-4, 2e-6)
		vib := NewVibration(3.0, 18)
		sys := core.NewSystem()
		sys.AddBlock(NewMicrogenerator("gen", p, vib))
		sys.AddBlock(NewResistor("load", "Vm", "Im", 3000))
		return sys
	}
	var ex, im trace.Series
	sysE := mk()
	e1 := core.NewEngine(sysE)
	e1.Ctl.HMax = 1e-4
	e1.Observe(func(tm float64, x, y []float64) { ex.Append(tm, x[0]) })
	if err := e1.Run(0, 1.5); err != nil {
		t.Fatalf("explicit: %v", err)
	}
	sysI := mk()
	e2 := implicit.NewEngine(sysI, implicit.Trapezoidal)
	e2.Ctl.HMax = 1e-4
	e2.Observe(func(tm float64, x, y []float64) { im.Append(tm, x[0]) })
	if err := e2.Run(0, 1.5); err != nil {
		t.Fatalf("implicit: %v", err)
	}
	// The displacement must actually cross between wells on both engines.
	crossings := func(s *trace.Series) int {
		n, last := 0, 0.0
		for _, v := range s.Vals {
			if v*last < 0 {
				n++
			}
			if v != 0 {
				last = v
			}
		}
		return n
	}
	if c := crossings(&ex); c < 4 {
		t.Fatalf("explicit trajectory crossed the barrier only %d times — drive too weak for a jump test", c)
	}
	cmp := trace.Compare(&ex, &im, 400)
	if cmp.NRMSE > 0.05 {
		t.Fatalf("cross-engine NRMSE = %v (max %v at t=%v)", cmp.NRMSE, cmp.MaxAbs, cmp.AtMax)
	}
}

// TestBistableRefreshNoThrash bounds the retangent cost of sustained
// inter-well jumping: on the forced-jump system the refresh count must
// stay within one per attempted step (the absolute-sum reference can
// legitimately fire every step while the operating point is genuinely
// moving, but never more), and a device resting at a well bottom must
// not refresh at all after the initial stamp.
func TestBistableRefreshNoThrash(t *testing.T) {
	run := func(amp float64, z0 float64) *core.Engine {
		p := bistableParams(5e-4, 2e-6)
		p.Z0 = z0
		vib := NewVibration(amp, 18)
		sys := core.NewSystem()
		sys.AddBlock(NewMicrogenerator("gen", p, vib))
		sys.AddBlock(NewResistor("load", "Vm", "Im", 3000))
		eng := core.NewEngine(sys)
		eng.Ctl.HMax = 2e-4
		if err := eng.Run(0, 1.5); err != nil {
			t.Fatalf("amp=%g: %v", amp, err)
		}
		return eng
	}
	// Forced jumps: bounded by one refresh per step attempt.
	eng := run(3.0, -5e-4)
	attempts := eng.Stats.Steps + eng.Stats.Rejected
	if eng.Stats.Refreshes > attempts+2 {
		t.Fatalf("jump workload: %d refreshes for %d step attempts (thrash)",
			eng.Stats.Refreshes, attempts)
	}
	if eng.Stats.Refreshes < 100 {
		t.Fatalf("jump workload refreshed only %d times — operating point not exercised", eng.Stats.Refreshes)
	}
	// At rest in the well bottom nothing moves: the initial stamp must
	// hold for the whole run even though K1 is large and negative.
	still := run(0, -5e-4)
	if still.Stats.Refreshes > 4 {
		t.Fatalf("resting device refreshed %d times, want a handful at most", still.Stats.Refreshes)
	}
}
