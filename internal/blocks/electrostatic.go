package blocks

import (
	"math"

	"harvsim/internal/core"
)

// ElectrostaticParams describes a gap-closing electrostatic
// microgenerator operated with a priming bias (the transduction
// mechanism of Hohlfeld et al., cited by the paper as the electrostatic
// tuning example). The variable capacitor is Cv(z) = C0*g0/(g0+z); with
// charge q on it the stored energy is q^2*(g0+z)/(2*C0*g0), giving an
// attraction force independent of gap in this parallel-plate model.
type ElectrostaticParams struct {
	M     float64 // proof mass [kg]
	Ks    float64 // stiffness [N/m]
	Cm    float64 // damping [N.s/m]
	C0    float64 // capacitance at z=0 [F]
	G0    float64 // nominal gap [m]
	QBias float64 // priming charge [C]
}

// DefaultElectrostatic returns a millimetre-gap variable capacitor
// resonant at 64 Hz primed to ~10 V.
func DefaultElectrostatic() ElectrostaticParams {
	const fr = 64.0
	m := 2.0e-3
	c0 := 200e-12
	return ElectrostaticParams{
		M:     m,
		Ks:    m * (2 * math.Pi * fr) * (2 * math.Pi * fr),
		Cm:    4e-3,
		C0:    c0,
		G0:    0.5e-3,
		QBias: c0 * 10,
	}
}

// Electrostatic is the variable-capacitance microgenerator block:
// states [z, zd, q], terminals [Vm, Im], terminal relation
// 0 = Vm - q*(g0+z)/(C0*g0). The voltage relation is bilinear in (z, q),
// so the block is genuinely nonlinear and exercises the per-step
// linearisation path.
type Electrostatic struct {
	P   ElectrostaticParams
	Vib *Vibration

	name       string
	lastZ      float64
	lastQ      float64
	stamped    bool
	quantScale float64
}

// NewElectrostatic returns an electrostatic block named name driven by
// vib with terminals "Vm"/"Im".
func NewElectrostatic(name string, p ElectrostaticParams, vib *Vibration) *Electrostatic {
	return &Electrostatic{P: p, Vib: vib, name: name, quantScale: 2e-4}
}

// Name implements core.Block.
func (g *Electrostatic) Name() string { return g.name }

// NumStates implements core.Block.
func (g *Electrostatic) NumStates() int { return 3 }

// NumEquations implements core.Block.
func (g *Electrostatic) NumEquations() int { return 1 }

// Terminals implements core.Block.
func (g *Electrostatic) Terminals() []string { return []string{"Vm", "Im"} }

// InitState implements core.Block: at rest with the priming charge.
func (g *Electrostatic) InitState(x []float64) {
	x[0], x[1], x[2] = 0, 0, g.P.QBias
}

// voltage returns the terminal voltage for gap offset z and charge q.
func (g *Electrostatic) voltage(z, q float64) float64 {
	p := g.P
	return q * (p.G0 + z) / (p.C0 * p.G0)
}

// Linearise implements core.Block: tangent model about (z, q),
// refreshed when the operating point moves appreciably.
func (g *Electrostatic) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	p := g.P
	fa := -p.M * g.Vib.Accel(t)
	z, q := x[0], x[2]
	// Electrostatic force f_es = -q^2/(2*C0*g0); tangent in q.
	dfdq := -q / (p.C0 * p.G0)
	fes0 := -q * q / (2 * p.C0 * p.G0)
	st.E(1, (fa+fes0-dfdq*q)/p.M)
	changed := !g.stamped ||
		math.Abs(z-g.lastZ) > g.quantScale*p.G0 ||
		math.Abs(q-g.lastQ) > g.quantScale*math.Max(math.Abs(g.lastQ), p.QBias)
	if !changed {
		return false
	}
	st.A(0, 1, 1)
	st.A(1, 0, -p.Ks/p.M)
	st.A(1, 1, -p.Cm/p.M)
	st.A(1, 2, dfdq/p.M)
	// dq/dt = Im.
	st.B(2, 1, 1)
	// 0 = Vm - V(z, q), tangent: V ~ V0 + Vz*(z-z0) + Vq*(q-q0).
	vz := q / (p.C0 * p.G0)
	vq := (p.G0 + z) / (p.C0 * p.G0)
	v0 := g.voltage(z, q)
	st.C(0, 0, -vz)
	st.C(0, 2, -vq)
	st.D(0, 0, 1)
	st.G(0, -(v0 - vz*z - vq*q))
	g.lastZ, g.lastQ = z, q
	g.stamped = true
	return true
}

// EvalNonlinear implements core.Block.
func (g *Electrostatic) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	p := g.P
	fa := -p.M * g.Vib.Accel(t)
	z, zd, q := x[0], x[1], x[2]
	fx[0] = zd
	fx[1] = (-p.Ks*z - p.Cm*zd - q*q/(2*p.C0*p.G0) + fa) / p.M
	fx[2] = y[1]
	fy[0] = y[0] - g.voltage(z, q)
}

// JacNonlinear implements core.Block.
func (g *Electrostatic) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	p := g.P
	z, q := x[0], x[2]
	st.A(0, 1, 1)
	st.A(1, 0, -p.Ks/p.M)
	st.A(1, 1, -p.Cm/p.M)
	st.A(1, 2, -q/(p.C0*p.G0)/p.M)
	st.B(2, 1, 1)
	st.C(0, 0, -q/(p.C0*p.G0))
	st.C(0, 2, -(p.G0+z)/(p.C0*p.G0))
	st.D(0, 0, 1)
	g.stamped = false
}
