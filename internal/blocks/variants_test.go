package blocks

import (
	"math"
	"testing"

	"harvsim/internal/core"
	"harvsim/internal/implicit"
	"harvsim/internal/trace"
)

func TestPiezoResonantPower(t *testing.T) {
	run := func(fDrive float64) float64 {
		vib := NewVibration(2.0, fDrive)
		sys := core.NewSystem()
		p := DefaultPiezo()
		sys.AddBlock(NewPiezo("pz", p, vib))
		// Matched-ish load: 1/(2*pi*f*Cpz) ~ 41 kOhm at 64 Hz.
		sys.AddBlock(NewResistor("load", "Vm", "Im", 41e3))
		eng := core.NewEngine(sys)
		eng.Ctl.HMax = 2e-4
		var pw trace.Series
		eng.Observe(func(tm float64, x, y []float64) {
			if tm > 4 {
				pw.Append(tm, y[0]*y[1])
			}
		})
		if err := eng.Run(0, 6); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return pw.Mean()
	}
	atRes := run(DefaultPiezo().UntunedHz())
	offRes := run(50)
	if atRes <= 0 {
		t.Fatalf("no piezo power at resonance: %v", atRes)
	}
	if atRes < 5*offRes {
		t.Fatalf("piezo resonance not pronounced: %v vs %v", atRes, offRes)
	}
}

func TestPiezoExplicitMatchesImplicit(t *testing.T) {
	mk := func() *core.System {
		vib := NewVibration(2.0, 64)
		sys := core.NewSystem()
		sys.AddBlock(NewPiezo("pz", DefaultPiezo(), vib))
		sys.AddBlock(NewResistor("load", "Vm", "Im", 41e3))
		return sys
	}
	var a, b trace.Series
	e1 := core.NewEngine(mk())
	e1.Ctl.HMax = 1e-4
	e1.Observe(func(tm float64, x, y []float64) { a.Append(tm, y[0]) })
	if err := e1.Run(0, 0.5); err != nil {
		t.Fatalf("explicit: %v", err)
	}
	e2 := implicit.NewEngine(mk(), implicit.Trapezoidal)
	e2.Ctl.HMax = 1e-4
	e2.Observe(func(tm float64, x, y []float64) { b.Append(tm, y[0]) })
	if err := e2.Run(0, 0.5); err != nil {
		t.Fatalf("implicit: %v", err)
	}
	cmp := trace.Compare(&a, &b, 300)
	if cmp.NRMSE > 0.02 {
		t.Fatalf("piezo cross-engine NRMSE = %v", cmp.NRMSE)
	}
}

func TestElectrostaticGeneratesAC(t *testing.T) {
	// 0.1 m/s^2 keeps the resonant displacement near a quarter of the
	// gap; stronger drive would (physically) crash the plates.
	vib := NewVibration(0.1, 64)
	sys := core.NewSystem()
	p := DefaultElectrostatic()
	sys.AddBlock(NewElectrostatic("es", p, vib))
	// Electrometer-grade load: tau = R*C0 = 20 s keeps the priming
	// charge over the run (real devices recycle charge with switches).
	sys.AddBlock(NewResistor("load", "Vm", "Im", 1e11))
	eng := core.NewEngine(sys)
	eng.Ctl.HMax = 1e-4
	var vm trace.Series
	eng.Observe(func(tm float64, x, y []float64) {
		if tm > 2 {
			vm.Append(tm, y[0])
		}
	})
	if err := eng.Run(0, 3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	lo, hi := vm.MinMax()
	// Bias voltage is 10 V; motion should modulate it visibly.
	if hi-lo < 0.5 {
		t.Fatalf("no capacitance modulation: range [%v, %v]", lo, hi)
	}
	if lo < 0 || hi > 40 {
		t.Fatalf("voltage out of physical range: [%v, %v]", lo, hi)
	}
}

func TestElectrostaticVoltageRelation(t *testing.T) {
	p := DefaultElectrostatic()
	g := NewElectrostatic("es", p, NewVibration(1, 64))
	// V(0, qbias) = qbias/C0 = 10 V.
	if got := g.voltage(0, p.QBias); math.Abs(got-10) > 1e-9 {
		t.Fatalf("bias voltage = %v, want 10", got)
	}
	// Closing the gap (z = -g0/2) halves the voltage at constant charge.
	if got := g.voltage(-p.G0/2, p.QBias); math.Abs(got-5) > 1e-9 {
		t.Fatalf("half-gap voltage = %v, want 5", got)
	}
}

func TestElectrostaticExplicitMatchesImplicit(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine run")
	}
	mk := func() *core.System {
		vib := NewVibration(0.1, 64)
		sys := core.NewSystem()
		sys.AddBlock(NewElectrostatic("es", DefaultElectrostatic(), vib))
		sys.AddBlock(NewResistor("load", "Vm", "Im", 1e11))
		return sys
	}
	var a, b trace.Series
	e1 := core.NewEngine(mk())
	e1.Ctl.HMax = 1e-4
	e1.Observe(func(tm float64, x, y []float64) { a.Append(tm, y[0]) })
	if err := e1.Run(0, 0.4); err != nil {
		t.Fatalf("explicit: %v", err)
	}
	e2 := implicit.NewEngine(mk(), implicit.Trapezoidal)
	e2.Ctl.HMax = 1e-4
	e2.Observe(func(tm float64, x, y []float64) { b.Append(tm, y[0]) })
	if err := e2.Run(0, 0.4); err != nil {
		t.Fatalf("implicit: %v", err)
	}
	cmp := trace.Compare(&a, &b, 300)
	if cmp.NRMSE > 0.05 {
		t.Fatalf("electrostatic cross-engine NRMSE = %v", cmp.NRMSE)
	}
}

func TestPiezoFullChainCharges(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chain run")
	}
	// The paper's generality claim at system level: swap the
	// electromagnetic microgenerator for the piezoelectric block and the
	// same multiplier + supercapacitor chain still assembles, eliminates
	// its terminals and charges — "all that is required are the model
	// equations of each component block".
	vib := NewVibration(3.0, 64)
	sys := core.NewSystem()
	pz := DefaultPiezo()
	sys.AddBlock(NewPiezo("pz", pz, vib))
	dk := DefaultDickson(1024)
	// The piezo source is high-impedance (60 nF electrode): smaller pump
	// capacitors keep the stage impedances comparable.
	dk.CStage = 100e-9
	dk.COut = 1e-6
	sys.AddBlock(NewDickson("mult", dk))
	scp := DefaultSupercap()
	// A small ceramic reservoir instead of the supercap keeps the
	// demo horizon short; scale the branch network down.
	scp.Ci0, scp.Ci1, scp.Cd, scp.Cl = 20e-6, 0, 5e-6, 10e-6
	scp.Ri, scp.Rd, scp.Rl = 50, 20e3, 100e3
	sys.AddBlock(NewSupercap("store", scp))
	eng := core.NewEngine(sys)
	eng.Ctl.HMax = 1e-4
	var vc trace.Series
	idx := sys.MustTerminal("Vc")
	eng.Observe(func(tm float64, x, y []float64) { vc.Append(tm, y[idx]) })
	if err := eng.Run(0, 10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, vEnd := vc.Last()
	if vEnd < 0.2 {
		t.Fatalf("piezo chain did not charge the store: %v V", vEnd)
	}
}
