package blocks

import (
	"math"
	"testing"
)

// TestNoiseDeterminism pins the seeding contract: equal specs produce
// bit-identical realisations on independently constructed sources, and
// distinct seeds produce different ones.
func TestNoiseDeterminism(t *testing.T) {
	spec := NoiseSpec{RMS: 0.8, FLo: 55, FHi: 85, Seed: 42}
	a := NewVibration(0.59, 70)
	a.ConfigureNoise(spec)
	b := NewVibration(0.59, 70)
	b.ConfigureNoise(spec)
	diffSeed := NewVibration(0.59, 70)
	diffSeed.ConfigureNoise(NoiseSpec{RMS: 0.8, FLo: 55, FHi: 85, Seed: 43})

	var sawDiff bool
	for i := 0; i <= 1000; i++ {
		tm := float64(i) * 1.7e-3
		if av, bv := a.Accel(tm), b.Accel(tm); av != bv {
			t.Fatalf("same spec diverged at t=%g: %v vs %v", tm, av, bv)
		}
		if a.Accel(tm) != diffSeed.Accel(tm) {
			sawDiff = true
		}
	}
	if !sawDiff {
		t.Fatal("different seeds produced an identical realisation")
	}
}

// TestNoiseRMSCalibration checks the spectral synthesis delivers the
// requested RMS acceleration (long-window sample statistic).
func TestNoiseRMSCalibration(t *testing.T) {
	v := NewVibration(0, 70) // sinusoid disabled: pure noise
	v.ConfigureNoise(NoiseSpec{RMS: 1.3, FLo: 40, FHi: 90, Seed: 7})
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		a := v.Accel(float64(i) * 5e-5) // 10 s window, 20 kHz sampling
		sum += a * a
	}
	rms := math.Sqrt(sum / float64(n))
	if math.Abs(rms-1.3) > 0.15*1.3 {
		t.Fatalf("sampled RMS = %g, want 1.3 +- 15%%", rms)
	}
}

// TestNoiseResetClearsStochasticState pins the Reset contract fix: a
// Reset source must fall back to the pure deterministic sinusoid, and a
// re-applied equal spec must reproduce the pre-Reset realisation bit
// for bit.
func TestNoiseResetClearsStochasticState(t *testing.T) {
	spec := NoiseSpec{RMS: 0.8, FLo: 55, FHi: 85, Seed: 42}
	v := NewVibration(0.59, 70)
	v.ConfigureNoise(spec)
	before := make([]float64, 200)
	for i := range before {
		before[i] = v.Accel(float64(i) * 2.3e-3)
	}

	v.Reset(70)
	if v.Noise().Enabled() {
		t.Fatal("Reset left the noise spec configured")
	}
	ref := NewVibration(0.59, 70)
	for i := 0; i < 200; i++ {
		tm := float64(i) * 2.3e-3
		if got, want := v.Accel(tm), ref.Accel(tm); got != want {
			t.Fatalf("Reset source still carries noise at t=%g: %v vs pure sine %v",
				tm, got, want)
		}
	}

	v.ConfigureNoise(spec)
	for i := range before {
		tm := float64(i) * 2.3e-3
		if got := v.Accel(tm); got != before[i] {
			t.Fatalf("re-applied spec diverged at t=%g: %v vs %v", tm, got, before[i])
		}
	}
}

// TestNoiseReconfigureDoesNotAllocate pins the warm Reset/Configure
// cycle used by harvester reuse: after the first configuration the tone
// storage is recycled.
func TestNoiseReconfigureDoesNotAllocate(t *testing.T) {
	spec := NoiseSpec{RMS: 0.8, FLo: 55, FHi: 85, Seed: 42}
	v := NewVibration(0.59, 70)
	v.ConfigureNoise(spec)
	avg := testing.AllocsPerRun(200, func() {
		v.Reset(70)
		v.ConfigureNoise(spec)
	})
	if avg != 0 {
		t.Fatalf("warm Reset+ConfigureNoise allocates %.2f objects, want 0", avg)
	}
}

// TestNoiseInvalidBandPanics pins the contract-violation policy.
func TestNoiseInvalidBandPanics(t *testing.T) {
	for _, spec := range []NoiseSpec{
		{RMS: 1, FLo: 0, FHi: 50},
		{RMS: 1, FLo: 60, FHi: 50},
		{RMS: math.NaN(), FLo: 40, FHi: 50},
		{RMS: 1, FLo: 40, FHi: math.Inf(1)},
		{RMS: 1, FLo: 40, FHi: 50, Tones: MaxNoiseTones + 1},
		{RMS: 1, FLo: 40, FHi: 50, Tones: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("spec %+v did not panic", spec)
				}
			}()
			NewVibration(0, 70).ConfigureNoise(spec)
		}()
	}
}

// TestNoiseDisabledSpecIsNoOp: a zero spec leaves the sinusoid exactly
// as before (the linear scenarios must be bit-unaffected by the new
// machinery).
func TestNoiseDisabledSpecIsNoOp(t *testing.T) {
	v := NewVibration(0.59, 70)
	v.ConfigureNoise(NoiseSpec{})
	ref := NewVibration(0.59, 70)
	for i := 0; i < 100; i++ {
		tm := float64(i) * 3.1e-3
		if v.Accel(tm) != ref.Accel(tm) {
			t.Fatalf("disabled noise changed the sinusoid at t=%g", tm)
		}
	}
}
