package blocks

import (
	"harvsim/internal/core"
)

// ACSource is an ideal (optionally resistive) voltage source block used
// in unit tests and component-level examples: terminal relation
// 0 = V - (v(t) - Rs*I) on configurable terminal names.
type ACSource struct {
	name     string
	termV    string
	termI    string
	V        func(t float64) float64
	Rs       float64
	stamped  bool
	needFlag bool
}

// NewACSource returns a source block driving terminal pair (termV,
// termI) with open-circuit voltage v(t) and output resistance rs.
func NewACSource(name, termV, termI string, v func(t float64) float64, rs float64) *ACSource {
	return &ACSource{name: name, termV: termV, termI: termI, V: v, Rs: rs}
}

// Name implements core.Block.
func (s *ACSource) Name() string { return s.name }

// NumStates implements core.Block.
func (s *ACSource) NumStates() int { return 0 }

// NumEquations implements core.Block.
func (s *ACSource) NumEquations() int { return 1 }

// Terminals implements core.Block.
func (s *ACSource) Terminals() []string { return []string{s.termV, s.termI} }

// InitState implements core.Block.
func (s *ACSource) InitState([]float64) {}

// Linearise implements core.Block.
func (s *ACSource) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	st.G(0, -s.V(t))
	if s.stamped {
		return false
	}
	st.D(0, 0, 1)
	st.D(0, 1, s.Rs)
	s.stamped = true
	return true
}

// EvalNonlinear implements core.Block.
func (s *ACSource) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	fy[0] = y[0] + s.Rs*y[1] - s.V(t)
}

// JacNonlinear implements core.Block.
func (s *ACSource) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	st.D(0, 0, 1)
	st.D(0, 1, s.Rs)
	s.stamped = false
}

// Resistor is a passive load block: terminal relation 0 = I - V/R with
// I flowing into the resistor. Used to close component-level systems in
// tests (e.g. a microgenerator driving a matched resistive load).
type Resistor struct {
	name    string
	termV   string
	termI   string
	r       float64
	dirty   bool
	stamped bool
}

// NewResistor returns a resistor block on terminal pair (termV, termI).
func NewResistor(name, termV, termI string, r float64) *Resistor {
	return &Resistor{name: name, termV: termV, termI: termI, r: r, dirty: true}
}

// Name implements core.Block.
func (r *Resistor) Name() string { return r.name }

// NumStates implements core.Block.
func (r *Resistor) NumStates() int { return 0 }

// NumEquations implements core.Block.
func (r *Resistor) NumEquations() int { return 1 }

// Terminals implements core.Block.
func (r *Resistor) Terminals() []string { return []string{r.termV, r.termI} }

// InitState implements core.Block.
func (r *Resistor) InitState([]float64) {}

// SetResistance changes R; callers must Invalidate the owning system.
func (r *Resistor) SetResistance(ohms float64) {
	if ohms != r.r {
		r.r = ohms
		r.dirty = true
	}
}

// Resistance returns R.
func (r *Resistor) Resistance() float64 { return r.r }

// Linearise implements core.Block.
func (r *Resistor) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	if r.stamped && !r.dirty {
		return false
	}
	st.D(0, 0, -1/r.r)
	st.D(0, 1, 1)
	r.stamped = true
	r.dirty = false
	return true
}

// EvalNonlinear implements core.Block.
func (r *Resistor) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	fy[0] = y[1] - y[0]/r.r
}

// JacNonlinear implements core.Block.
func (r *Resistor) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	st.D(0, 0, -1/r.r)
	st.D(0, 1, 1)
	r.stamped = false
}
