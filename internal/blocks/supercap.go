package blocks

import (
	"math"

	"harvsim/internal/core"
)

// LoadMode selects the equivalent load resistor of paper Eq. 16,
// representing the power consumption of the microcontroller and the
// tuning actuator.
type LoadMode int

const (
	// LoadSleep: microcontroller asleep (Req = 1e9 Ohm).
	LoadSleep LoadMode = iota
	// LoadMCU: microcontroller awake (Req = 33 Ohm).
	LoadMCU
	// LoadTuning: actuator performing tuning (Req = 16.7 Ohm).
	LoadTuning
)

// Req returns the equivalent resistance for the mode (Eq. 16).
func (m LoadMode) Req() float64 {
	switch m {
	case LoadMCU:
		return 33
	case LoadTuning:
		return 16.7
	default:
		return 1e9
	}
}

// String names the mode.
func (m LoadMode) String() string {
	switch m {
	case LoadMCU:
		return "mcu-awake"
	case LoadTuning:
		return "tuning"
	default:
		return "sleep"
	}
}

// SupercapParams holds the Zubieta-Bonert three-branch supercapacitor
// model (paper Fig. 6, Eq. 15): an immediate branch Ri-Ci(V) with
// voltage-dependent capacitance Ci0 + Ci1*Vi, a delayed branch Rd-Cd and
// a long-term branch Rl-Cl modelling charge redistribution. RLeak is an
// optional self-discharge resistance (+Inf for the ideal model; finite
// for the "practical system" parasitics the paper cites as the source of
// simulation-vs-measurement differences).
type SupercapParams struct {
	Ri, Ci0, Ci1 float64
	Rd, Cd       float64
	Rl, Cl       float64
	RLeak        float64
	V0           float64 // initial voltage on all branches
}

// DefaultSupercap returns the Zubieta 470 F module scaled by 1e-3 in
// capacitance (and 1e3 in resistance) to the ~0.5 F size used in the
// harvester, preserving the branch time constants.
func DefaultSupercap() SupercapParams {
	return SupercapParams{
		Ri: 2.5, Ci0: 0.27, Ci1: 0.19,
		Rd: 900, Cd: 0.10,
		Rl: 5200, Cl: 0.22,
		RLeak: math.Inf(1),
	}
}

// Supercap is the storage block with the folded equivalent load (paper
// Fig. 6): states [Vi, Vd, Vl], terminals [Vc, Ic] (Ic flows into the
// block), terminal relation
//
//	0 = Ic - (Vc-Vi)/Ri - (Vc-Vd)/Rd - (Vc-Vl)/Rl - Vc/Req - Vc/RLeak.
type Supercap struct {
	P    SupercapParams
	name string
	mode LoadMode

	dirty   bool
	lastJac [4]float64 // stamped Vi-row Jacobian entries + load conductance
}

// NewSupercap returns a supercapacitor block named name with terminals
// "Vc"/"Ic", starting in sleep mode.
func NewSupercap(name string, p SupercapParams) *Supercap {
	return &Supercap{P: p, name: name, mode: LoadSleep, dirty: true}
}

// Name implements core.Block.
func (s *Supercap) Name() string { return s.name }

// NumStates implements core.Block.
func (s *Supercap) NumStates() int { return 3 }

// NumEquations implements core.Block.
func (s *Supercap) NumEquations() int { return 1 }

// Terminals implements core.Block.
func (s *Supercap) Terminals() []string { return []string{"Vc", "Ic"} }

// InitState implements core.Block.
func (s *Supercap) InitState(x []float64) {
	x[0], x[1], x[2] = s.P.V0, s.P.V0, s.P.V0
}

// SetMode switches the equivalent load resistor (Eq. 16); callers must
// Invalidate the owning system.
func (s *Supercap) SetMode(m LoadMode) {
	if m != s.mode {
		s.mode = m
		s.dirty = true
	}
}

// Mode returns the active load mode.
func (s *Supercap) Mode() LoadMode { return s.mode }

// ci returns the voltage-dependent immediate-branch capacitance.
func (s *Supercap) ci(vi float64) float64 { return s.P.Ci0 + s.P.Ci1*vi }

// loadG returns the total static conductance at the terminal: equivalent
// load plus leakage.
func (s *Supercap) loadG() float64 {
	g := 1 / s.mode.Req()
	if !math.IsInf(s.P.RLeak, 1) && s.P.RLeak > 0 {
		g += 1 / s.P.RLeak
	}
	return g
}

// Linearise implements core.Block. The immediate branch is nonlinear
// through Ci(Vi); its tangent is refreshed when the operating point
// moves the Jacobian entries by more than 0.1%.
func (s *Supercap) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	p := s.P
	vi, vc := x[0], y[0]
	ci := s.ci(vi)
	f0 := (vc - vi) / (p.Ri * ci)
	dfdvi := -1/(p.Ri*ci) - (vc-vi)*p.Ci1/(p.Ri*ci*ci)
	dfdvc := 1 / (p.Ri * ci)
	lg := s.loadG()

	changed := s.dirty
	if !changed {
		rel := func(a, b float64) float64 { return math.Abs(a-b) / (1 + math.Abs(b)) }
		if rel(dfdvi, s.lastJac[0]) > 1e-3 || rel(dfdvc, s.lastJac[1]) > 1e-3 ||
			rel(lg, s.lastJac[2]) > 1e-12 {
			changed = true
		}
	}
	if !changed {
		// Keep the affine remainder consistent with the stamped tangent.
		st.E(0, f0-s.lastJac[0]*vi-s.lastJac[1]*vc)
		return false
	}
	// Immediate branch (voltage-dependent tangent).
	st.A(0, 0, dfdvi)
	st.B(0, 0, dfdvc)
	st.E(0, f0-dfdvi*vi-dfdvc*vc)
	// Delayed and long-term branches (linear).
	st.A(1, 1, -1/(p.Rd*p.Cd))
	st.B(1, 0, 1/(p.Rd*p.Cd))
	st.A(2, 2, -1/(p.Rl*p.Cl))
	st.B(2, 0, 1/(p.Rl*p.Cl))
	// Terminal relation.
	st.C(0, 0, 1/p.Ri)
	st.C(0, 1, 1/p.Rd)
	st.C(0, 2, 1/p.Rl)
	st.D(0, 0, -(1/p.Ri + 1/p.Rd + 1/p.Rl + lg)) // Vc
	st.D(0, 1, 1)                                // Ic
	s.lastJac = [4]float64{dfdvi, dfdvc, lg, 0}
	s.dirty = false
	return true
}

// EvalNonlinear implements core.Block with the exact voltage-dependent
// capacitance.
func (s *Supercap) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	p := s.P
	vi, vd, vl := x[0], x[1], x[2]
	vc, ic := y[0], y[1]
	fx[0] = (vc - vi) / (p.Ri * s.ci(vi))
	fx[1] = (vc - vd) / (p.Rd * p.Cd)
	fx[2] = (vc - vl) / (p.Rl * p.Cl)
	fy[0] = ic - (vc-vi)/p.Ri - (vc-vd)/p.Rd - (vc-vl)/p.Rl - vc*s.loadG()
}

// JacNonlinear implements core.Block.
func (s *Supercap) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	p := s.P
	vi, vc := x[0], y[0]
	ci := s.ci(vi)
	st.A(0, 0, -1/(p.Ri*ci)-(vc-vi)*p.Ci1/(p.Ri*ci*ci))
	st.B(0, 0, 1/(p.Ri*ci))
	st.A(1, 1, -1/(p.Rd*p.Cd))
	st.B(1, 0, 1/(p.Rd*p.Cd))
	st.A(2, 2, -1/(p.Rl*p.Cl))
	st.B(2, 0, 1/(p.Rl*p.Cl))
	st.C(0, 0, 1/p.Ri)
	st.C(0, 1, 1/p.Rd)
	st.C(0, 2, 1/p.Rl)
	st.D(0, 0, -(1/p.Ri + 1/p.Rd + 1/p.Rl + s.loadG()))
	st.D(0, 1, 1)
	s.dirty = true
}

// StoredEnergy returns the energy held in the three branches for local
// state x [J], using the voltage-dependent immediate branch: for
// C(V) = C0 + C1*V the stored energy is C0*V^2/2 + C1*V^3/3.
func (s *Supercap) StoredEnergy(x []float64) float64 {
	p := s.P
	vi, vd, vl := x[0], x[1], x[2]
	e := p.Ci0*vi*vi/2 + p.Ci1*vi*vi*vi/3
	e += p.Cd * vd * vd / 2
	e += p.Cl * vl * vl / 2
	return e
}
