package blocks

// core.LineariseResetter implementations. Each block's Linearise skips
// restamping when its cached operating point (last PWL segment, last
// tangent, stamped flag) still covers the new one; reusing a block for a
// fresh run must discard those caches, or the rerun would start from the
// previous run's final tangent — within tolerance, but not bit-identical
// to a freshly assembled system. See core.System.ResetLinearisation.

// ResetLinearisation implements core.LineariseResetter. The cached
// Duffing tangent point zLin is discarded too: a reused run must stamp
// its first cubic tangent at the fresh initial displacement, not at the
// previous run's final one.
func (g *Microgenerator) ResetLinearisation() {
	g.dirty, g.stamped = true, false
	g.zLin = 0
}

// ResetLinearisation implements core.LineariseResetter.
func (d *Dickson) ResetLinearisation() {
	d.dirty = true
	for i := range d.segs {
		d.segs[i] = 0
		d.g[i], d.j[i] = 0, 0
	}
}

// ResetLinearisation implements core.LineariseResetter.
func (s *Supercap) ResetLinearisation() {
	s.dirty = true
	s.lastJac = [4]float64{}
}

// ResetLinearisation implements core.LineariseResetter.
func (s *ACSource) ResetLinearisation() { s.stamped = false }

// ResetLinearisation implements core.LineariseResetter.
func (r *Resistor) ResetLinearisation() { r.dirty, r.stamped = true, false }

// ResetLinearisation implements core.LineariseResetter.
func (g *Piezo) ResetLinearisation() { g.stamped = false }

// ResetLinearisation implements core.LineariseResetter.
func (g *Electrostatic) ResetLinearisation() { g.stamped = false }
