// Package blocks implements the component-block models of the tunable
// vibration energy harvesting system (paper Section III): the tunable
// electromagnetic microgenerator (Eq. 13), the N-stage Dickson voltage
// multiplier with piecewise-linear diode tables (Eq. 14, Fig. 5), the
// Zubieta-Bonert three-branch supercapacitor with the mode-switched
// equivalent load resistor (Eqs. 15-16, Fig. 6), and — for the paper's
// generality claim (Section V) — piezoelectric and electrostatic
// microgenerator variants. Helper source/load blocks for unit tests and
// examples are also provided.
//
// All blocks implement core.Block: local state equations plus terminal
// variables, with both a piecewise-linearised view (for the proposed
// explicit engine) and exact nonlinear residuals (for the Newton-Raphson
// baselines).
//
// Blocks carry no hidden nondeterminism: construction from equal
// parameter values yields bit-identical behaviour, and the stochastic
// vibration component is a pure function of its NoiseSpec (seeded
// spectral synthesis, no shared generator state) — the block-level half
// of the determinism contract the harvester package promises and the
// batch layer's result cache depends on.
package blocks

import (
	"fmt"
	"math"
)

// Vibration models the ambient mechanical excitation as the sum of two
// independent components that may each be zero:
//
//   - a deterministic sinusoid whose frequency changes stepwise or chirps
//     but whose phase is continuous across changes (an abrupt phase jump
//     would inject spurious wide-band energy into the resonator), and
//   - an optional band-limited stochastic component (ConfigureNoise) for
//     realistic wideband ambient vibration.
type Vibration struct {
	Amplitude float64 // peak base acceleration of the sinusoid [m/s^2]
	segs      []vibSeg

	noise NoiseSpec   // zero value = no stochastic component
	tones []noiseTone // realisation of noise, derived from the spec

	// Single-entry Accel memo (EnableAccelMemo): the engines evaluate
	// Accel up to three times per step at the same t (two linearise
	// passes and the observer), and in a lockstep ensemble that
	// redundant trigonometry dominates the shared-work savings.
	memoOn bool
	memoT  float64 // NaN = empty/invalidated
	memoA  float64
}

// NoiseSpec declares a band-limited stochastic excitation: stationary
// Gaussian-like noise of the given RMS acceleration with its power
// spread over [FLo, FHi]. The realisation is synthesised by the spectral
// representation method — Tones sinusoids with frequencies jittered
// uniformly inside equal sub-bands and independent uniform phases — so
// the acceleration stays an analytic function of time that the
// variable-step engines can evaluate at any t without carrying filter
// state.
//
// Seeding contract: the realisation is a pure function of the spec
// (Seed, FLo, FHi, Tones, and nothing else). Equal specs produce
// bit-identical excitations on every assembly, across serial, pooled
// and Reset-reused runs; distinct seeds produce independent
// realisations. The generator is a fixed algorithm (xoshiro256** seeded
// via splitmix64), not math/rand, so the stream never shifts under a
// toolchain upgrade.
type NoiseSpec struct {
	RMS   float64 // RMS base acceleration [m/s^2]; 0 disables the component
	FLo   float64 // band lower edge [Hz]
	FHi   float64 // band upper edge [Hz]
	Tones int     // spectral lines; 0 = DefaultNoiseTones
	Seed  uint64  // realisation seed
}

// DefaultNoiseTones is the tone count a zero NoiseSpec.Tones selects:
// enough lines that no individual tone dominates the band, few enough
// that an Accel evaluation stays a sub-microsecond loop.
const DefaultNoiseTones = 48

// MaxNoiseTones bounds the realisation size: Accel is evaluated several
// times per engine step, so the tone count is a per-step cost knob, not
// a place for unbounded input to allocate gigabytes.
const MaxNoiseTones = 4096

// Enabled reports whether the spec requests a stochastic component.
func (n NoiseSpec) Enabled() bool { return n.RMS != 0 }

// Validate reports whether an enabled spec is synthesisable: ordered
// positive finite band, finite RMS, tone count within [0, MaxNoiseTones]
// (0 selects the default). It is THE definition of spec validity —
// ConfigureNoise panics exactly when it errs, and the harvester's
// Config.Validate wraps it so a bad batch-sweep axis value fails its
// job rather than its worker.
func (n NoiseSpec) Validate() error {
	if !n.Enabled() {
		return nil
	}
	if !(n.FLo > 0 && n.FHi > n.FLo) || math.IsInf(n.FHi, 0) ||
		math.IsNaN(n.RMS) || math.IsInf(n.RMS, 0) {
		return fmt.Errorf("blocks: invalid noise band [%g, %g] Hz (rms %g)",
			n.FLo, n.FHi, n.RMS)
	}
	if n.Tones < 0 || n.Tones > MaxNoiseTones {
		return fmt.Errorf("blocks: noise tone count %d outside [0, %d]",
			n.Tones, MaxNoiseTones)
	}
	return nil
}

// noiseTone is one spectral line of the realisation.
type noiseTone struct {
	w   float64 // angular frequency [rad/s]
	phi float64 // phase [rad]
	amp float64 // amplitude [m/s^2]
}

type vibSeg struct {
	t0     float64 // segment start time
	freq   float64 // [Hz] at t0
	rate   float64 // [Hz/s] linear chirp rate within the segment
	phase0 float64 // phase at t0 [rad]
}

// NewVibration returns a source with constant frequency f0 (Hz) and the
// given peak acceleration, starting at phase zero.
func NewVibration(amplitude, f0 float64) *Vibration {
	return &Vibration{
		Amplitude: amplitude,
		segs:      []vibSeg{{t0: 0, freq: f0, phase0: 0}},
	}
}

// phaseAt evaluates the accumulated phase of segment s at time t.
func (s vibSeg) phaseAt(t float64) float64 {
	dt := t - s.t0
	return s.phase0 + 2*math.Pi*(s.freq*dt+0.5*s.rate*dt*dt)
}

// freqAt evaluates the instantaneous frequency of segment s at time t.
func (s vibSeg) freqAt(t float64) float64 {
	return s.freq + s.rate*(t-s.t0)
}

// addSeg appends a segment starting at t with frequency f and chirp
// rate, keeping the phase continuous.
func (v *Vibration) addSeg(t, f, rate float64) {
	last := v.segs[len(v.segs)-1]
	if t < last.t0 {
		panic(fmt.Sprintf("blocks: vibration profile change at %g precedes %g", t, last.t0))
	}
	phase := last.phaseAt(t)
	seg := vibSeg{t0: t, freq: f, rate: rate, phase0: phase}
	v.memoT = math.NaN()
	if t == last.t0 {
		v.segs[len(v.segs)-1] = seg
		return
	}
	v.segs = append(v.segs, seg)
}

// Reset discards every scheduled frequency change AND any configured
// stochastic component, restarting the source at constant frequency f0
// from phase zero at t=0. All storage (segment slice, tone slice) is
// kept for reuse, so a Reset/ConfigureNoise cycle on a warm source does
// not allocate. Callers that want the noise back after Reset re-apply
// the spec with ConfigureNoise — with an equal spec the regenerated
// realisation is bit-identical (see NoiseSpec).
func (v *Vibration) Reset(f0 float64) {
	v.segs = v.segs[:1]
	v.segs[0] = vibSeg{t0: 0, freq: f0}
	v.noise = NoiseSpec{}
	v.tones = v.tones[:0]
	v.memoT = math.NaN()
}

// ConfigureNoise adds (or replaces) the band-limited stochastic
// component described by spec, synthesising its realisation
// deterministically from the spec alone. A disabled spec (RMS == 0)
// removes the component. Panics when spec.Validate errs — the same
// contract-violation policy as the segment scheduler; callers that need
// graceful rejection check Validate first.
func (v *Vibration) ConfigureNoise(spec NoiseSpec) {
	v.tones = v.tones[:0]
	v.memoT = math.NaN()
	v.noise = spec
	if !spec.Enabled() {
		v.noise = NoiseSpec{}
		return
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	n := spec.Tones
	if n <= 0 {
		n = DefaultNoiseTones
	}
	rng := newXoshiro256(spec.Seed)
	df := (spec.FHi - spec.FLo) / float64(n)
	// Equal power per sub-band: RMS of the sum is sqrt(n * amp^2 / 2).
	amp := math.Abs(spec.RMS) * math.Sqrt(2/float64(n))
	for k := 0; k < n; k++ {
		f := spec.FLo + (float64(k)+rng.float64())*df
		phi := 2 * math.Pi * rng.float64()
		v.tones = append(v.tones, noiseTone{w: 2 * math.Pi * f, phi: phi, amp: amp})
	}
}

// Noise returns the spec of the configured stochastic component (zero
// value when none).
func (v *Vibration) Noise() NoiseSpec { return v.noise }

// SetFrequency schedules a frequency change at time t (seconds, must not
// precede previously scheduled changes). The phase remains continuous.
func (v *Vibration) SetFrequency(t, f float64) {
	v.addSeg(t, f, 0)
}

// Sweep schedules a phase-continuous linear chirp from the frequency in
// effect at time t to fEnd over the given duration, after which the
// frequency holds at fEnd.
func (v *Vibration) Sweep(t, duration, fEnd float64) {
	if duration <= 0 {
		v.SetFrequency(t, fEnd)
		return
	}
	f0 := v.Freq(t)
	v.addSeg(t, f0, (fEnd-f0)/duration)
	v.addSeg(t+duration, fEnd, 0)
}

// seg returns the active segment at time t.
func (v *Vibration) seg(t float64) vibSeg {
	s := v.segs[0]
	for _, cand := range v.segs[1:] {
		if cand.t0 <= t {
			s = cand
		} else {
			break
		}
	}
	return s
}

// Freq returns the instantaneous excitation frequency at time t [Hz].
func (v *Vibration) Freq(t float64) float64 { return v.seg(t).freqAt(t) }

// Phase returns the accumulated phase at time t [rad].
func (v *Vibration) Phase(t float64) float64 { return v.seg(t).phaseAt(t) }

// Accel returns the base acceleration a(t) [m/s^2]: the sinusoidal
// component plus the stochastic component when one is configured. The
// evaluation is allocation-free — it sits on the engines' per-step hot
// path (linearisation refresh, observer, frequency meter).
func (v *Vibration) Accel(t float64) float64 {
	if v.memoOn && t == v.memoT {
		return v.memoA
	}
	a := v.Amplitude * math.Sin(v.Phase(t))
	for i := range v.tones {
		tn := &v.tones[i]
		a += tn.amp * math.Sin(tn.w*t+tn.phi)
	}
	if v.memoOn {
		v.memoT, v.memoA = t, a
	}
	return a
}

// EnableAccelMemo turns on a single-entry memo of the last Accel
// evaluation. Accel is a pure function of (t, profile, noise), so the
// memo returns the identical bits a recomputation would; every profile
// or noise mutation (SetFrequency, Sweep, Reset, ConfigureNoise)
// invalidates it. Callers that mutate Amplitude directly mid-run must
// not enable the memo. The lockstep ensemble path enables it because
// the engines evaluate Accel several times per step at one t.
func (v *Vibration) EnableAccelMemo() {
	v.memoOn = true
	v.memoT = math.NaN()
}
