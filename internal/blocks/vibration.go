// Package blocks implements the component-block models of the tunable
// vibration energy harvesting system (paper Section III): the tunable
// electromagnetic microgenerator (Eq. 13), the N-stage Dickson voltage
// multiplier with piecewise-linear diode tables (Eq. 14, Fig. 5), the
// Zubieta-Bonert three-branch supercapacitor with the mode-switched
// equivalent load resistor (Eqs. 15-16, Fig. 6), and — for the paper's
// generality claim (Section V) — piezoelectric and electrostatic
// microgenerator variants. Helper source/load blocks for unit tests and
// examples are also provided.
//
// All blocks implement core.Block: local state equations plus terminal
// variables, with both a piecewise-linearised view (for the proposed
// explicit engine) and exact nonlinear residuals (for the Newton-Raphson
// baselines).
package blocks

import (
	"fmt"
	"math"
)

// Vibration models the ambient mechanical excitation: a sinusoidal base
// acceleration whose frequency changes stepwise but whose phase is
// continuous across changes (an abrupt phase jump would inject spurious
// wide-band energy into the resonator).
type Vibration struct {
	Amplitude float64 // peak base acceleration [m/s^2]
	segs      []vibSeg
}

type vibSeg struct {
	t0     float64 // segment start time
	freq   float64 // [Hz] at t0
	rate   float64 // [Hz/s] linear chirp rate within the segment
	phase0 float64 // phase at t0 [rad]
}

// NewVibration returns a source with constant frequency f0 (Hz) and the
// given peak acceleration, starting at phase zero.
func NewVibration(amplitude, f0 float64) *Vibration {
	return &Vibration{
		Amplitude: amplitude,
		segs:      []vibSeg{{t0: 0, freq: f0, phase0: 0}},
	}
}

// phaseAt evaluates the accumulated phase of segment s at time t.
func (s vibSeg) phaseAt(t float64) float64 {
	dt := t - s.t0
	return s.phase0 + 2*math.Pi*(s.freq*dt+0.5*s.rate*dt*dt)
}

// freqAt evaluates the instantaneous frequency of segment s at time t.
func (s vibSeg) freqAt(t float64) float64 {
	return s.freq + s.rate*(t-s.t0)
}

// addSeg appends a segment starting at t with frequency f and chirp
// rate, keeping the phase continuous.
func (v *Vibration) addSeg(t, f, rate float64) {
	last := v.segs[len(v.segs)-1]
	if t < last.t0 {
		panic(fmt.Sprintf("blocks: vibration profile change at %g precedes %g", t, last.t0))
	}
	phase := last.phaseAt(t)
	seg := vibSeg{t0: t, freq: f, rate: rate, phase0: phase}
	if t == last.t0 {
		v.segs[len(v.segs)-1] = seg
		return
	}
	v.segs = append(v.segs, seg)
}

// Reset discards every scheduled frequency change and restarts the
// source at constant frequency f0 from phase zero at t=0, keeping the
// segment storage for reuse.
func (v *Vibration) Reset(f0 float64) {
	v.segs = v.segs[:1]
	v.segs[0] = vibSeg{t0: 0, freq: f0}
}

// SetFrequency schedules a frequency change at time t (seconds, must not
// precede previously scheduled changes). The phase remains continuous.
func (v *Vibration) SetFrequency(t, f float64) {
	v.addSeg(t, f, 0)
}

// Sweep schedules a phase-continuous linear chirp from the frequency in
// effect at time t to fEnd over the given duration, after which the
// frequency holds at fEnd.
func (v *Vibration) Sweep(t, duration, fEnd float64) {
	if duration <= 0 {
		v.SetFrequency(t, fEnd)
		return
	}
	f0 := v.Freq(t)
	v.addSeg(t, f0, (fEnd-f0)/duration)
	v.addSeg(t+duration, fEnd, 0)
}

// seg returns the active segment at time t.
func (v *Vibration) seg(t float64) vibSeg {
	s := v.segs[0]
	for _, cand := range v.segs[1:] {
		if cand.t0 <= t {
			s = cand
		} else {
			break
		}
	}
	return s
}

// Freq returns the instantaneous excitation frequency at time t [Hz].
func (v *Vibration) Freq(t float64) float64 { return v.seg(t).freqAt(t) }

// Phase returns the accumulated phase at time t [rad].
func (v *Vibration) Phase(t float64) float64 { return v.seg(t).phaseAt(t) }

// Accel returns the base acceleration a(t) [m/s^2].
func (v *Vibration) Accel(t float64) float64 {
	return v.Amplitude * math.Sin(v.Phase(t))
}
