package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation meets a pivot that is zero
// (or numerically indistinguishable from zero).
var ErrSingular = errors.New("la: matrix is singular")

// LU holds an LU factorisation with partial pivoting: P*A = L*U. It is
// reusable: Factor, Solve and SolveMatrix may be called repeatedly on
// matrices of the same size without allocating — all scratch storage is
// owned by the workspace, so the factorise/solve cycle inside a
// simulation inner loop stays heap-free.
type LU struct {
	n    int
	lu   *Matrix // combined L (unit lower) and U (upper)
	piv  []int   // row permutation
	sign int     // +1 or -1: parity of the permutation
	ok   bool

	tmp      []float64 // aliased-Solve permutation scratch
	col, sol []float64 // SolveMatrix column scratch
}

// NewLU returns an LU workspace for n x n systems.
func NewLU(n int) *LU {
	return &LU{
		n:   n,
		lu:  NewMatrix(n, n),
		piv: make([]int, n),
		tmp: make([]float64, n),
		col: make([]float64, n),
		sol: make([]float64, n),
	}
}

// N returns the system size.
func (f *LU) N() int { return f.n }

// Factor computes the factorisation of a. a is not modified.
func (f *LU) Factor(a *Matrix) error {
	if a.Rows != f.n || a.Cols != f.n {
		panic(fmt.Sprintf("la: LU.Factor size mismatch: %dx%d, want %dx%d", a.Rows, a.Cols, f.n, f.n))
	}
	f.lu.CopyFrom(a)
	f.sign = 1
	f.ok = false
	n := f.n
	lu := f.lu.Data
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest entry in column k at or below row k.
		p := k
		max := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > max {
				max = a
				p = i
			}
		}
		if max == 0 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rowP := lu[p*n : (p+1)*n]
			rowK := lu[k*n : (k+1)*n]
			for j := range rowK {
				rowP[j], rowK[j] = rowK[j], rowP[j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			rowI := lu[i*n : (i+1)*n]
			rowK := lu[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	f.ok = true
	return nil
}

// Solve computes x such that A*x = b, writing the result into x. b is not
// modified. x and b may alias.
func (f *LU) Solve(x, b []float64) error {
	if !f.ok {
		return errors.New("la: LU.Solve called before a successful Factor")
	}
	n := f.n
	if len(x) != n || len(b) != n {
		panic("la: LU.Solve length mismatch")
	}
	lu := f.lu.Data
	// Apply permutation: x = P*b.
	if &x[0] == &b[0] {
		for i := 0; i < n; i++ {
			f.tmp[i] = b[f.piv[i]]
		}
		copy(x, f.tmp)
	} else {
		for i := 0; i < n; i++ {
			x[i] = b[f.piv[i]]
		}
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := lu[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := lu[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return nil
}

// SolveMatrix solves A*X = B column by column. X must be n x B.Cols.
func (f *LU) SolveMatrix(x, b *Matrix) error {
	if b.Rows != f.n || x.Rows != f.n || x.Cols != b.Cols {
		panic("la: LU.SolveMatrix size mismatch")
	}
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < f.n; i++ {
			f.col[i] = b.At(i, j)
		}
		if err := f.Solve(f.sol, f.col); err != nil {
			return err
		}
		for i := 0; i < f.n; i++ {
			x.Set(i, j, f.sol[i])
		}
	}
	return nil
}

// SolveColumns solves A*x_k = b_k for a batch of right-hand-side
// vectors through the one factorisation — the many-RHS entry point the
// ensemble-lockstep engine uses to eliminate K seeds' terminal
// variables per step without refactoring. Each solve is the exact
// per-column elimination SolveMatrix performs, so a batched solve is
// bit-identical to the K individual Solve calls it replaces. xs[k] and
// bs[k] may alias; distinct pairs must not.
func (f *LU) SolveColumns(xs, bs [][]float64) error {
	if len(xs) != len(bs) {
		panic("la: LU.SolveColumns batch size mismatch")
	}
	for k := range bs {
		if err := f.Solve(xs[k], bs[k]); err != nil {
			return err
		}
	}
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	if !f.ok {
		return math.NaN()
	}
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu.Data[i*f.n+i]
	}
	return d
}

// RcondEstimate returns a cheap reciprocal-condition estimate
// 1/(||A||_inf * ||A^-1||_inf) with ||A^-1|| estimated from a few solves.
// It is an estimate, not a bound, and is used only for diagnostics.
func (f *LU) RcondEstimate(a *Matrix) float64 {
	if !f.ok {
		return 0
	}
	n := f.n
	normA := a.NormInf()
	if normA == 0 {
		return 0
	}
	// Estimate ||A^-1||_inf by solving for the all-ones vector and a few
	// alternating-sign vectors, taking the worst amplification.
	b := make([]float64, n)
	x := make([]float64, n)
	var worst float64
	for trial := 0; trial < 3; trial++ {
		for i := range b {
			switch trial {
			case 0:
				b[i] = 1
			case 1:
				if i%2 == 0 {
					b[i] = 1
				} else {
					b[i] = -1
				}
			default:
				b[i] = 1 / float64(i+1)
			}
		}
		if err := f.Solve(x, b); err != nil {
			return 0
		}
		if amp := NormInfVec(x) / NormInfVec(b); amp > worst {
			worst = amp
		}
	}
	if worst == 0 {
		return 0
	}
	return 1 / (normA * worst)
}

// Solve is a convenience one-shot solver for A*x = b. For repeated solves
// with the same structure, use an LU workspace.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f := NewLU(a.Rows)
	if err := f.Factor(a); err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	if err := f.Solve(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// Inverse returns A^-1.
func Inverse(a *Matrix) (*Matrix, error) {
	f := NewLU(a.Rows)
	if err := f.Factor(a); err != nil {
		return nil, err
	}
	inv := NewMatrix(a.Rows, a.Rows)
	if err := f.SolveMatrix(inv, Identity(a.Rows)); err != nil {
		return nil, err
	}
	return inv, nil
}
