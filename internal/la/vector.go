package la

import "math"

// Vector helpers. Vectors are plain []float64; these are free functions so
// block models can work on slices without wrapping.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("la: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AxpyTo computes dst = y + alpha*x.
func AxpyTo(dst []float64, alpha float64, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("la: AxpyTo length mismatch")
	}
	for i := range dst {
		dst[i] = y[i] + alpha*x[i]
	}
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("la: Axpy length mismatch")
	}
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// CopyVec copies src into dst.
func CopyVec(dst, src []float64) {
	if len(dst) != len(src) {
		panic("la: CopyVec length mismatch")
	}
	copy(dst, src)
}

// ZeroVec clears x.
func ZeroVec(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// NormInfVec returns max_i |x_i|.
func NormInfVec(x []float64) float64 {
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm2Vec returns the Euclidean norm of x.
func Norm2Vec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// SubTo computes dst = a - b.
func SubTo(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("la: SubTo length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// WeightedRMS returns the weighted root-mean-square norm used by step
// controllers: sqrt(mean((x_i / (atol + rtol*|ref_i|))^2)).
func WeightedRMS(x, ref []float64, atol, rtol float64) float64 {
	if len(x) != len(ref) {
		panic("la: WeightedRMS length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	var s float64
	for i, v := range x {
		w := atol + rtol*math.Abs(ref[i])
		r := v / w
		s += r * r
	}
	return math.Sqrt(s / float64(len(x)))
}

// AllFinite reports whether every entry of x is finite.
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
