// Package la provides the dense linear-algebra substrate used by the
// linearised state-space engine: matrices, vectors, LU factorisation with
// partial pivoting, norms, Gershgorin bounds, power iteration and
// diagonal-dominance analysis.
//
// Everything is small and dense: energy-harvester block models have a
// handful of states (the paper's complete system is 11x11), so no sparse
// machinery is needed. All operations are allocation-conscious so the
// simulation inner loop can run allocation-free.
package la

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("la: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("la: ragged rows: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero clears all entries in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("la: CopyFrom dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Scale multiplies every entry by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled adds s*b to m in place. Dimensions must match.
func (m *Matrix) AddScaled(s float64, b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("la: AddScaled dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += s * b.Data[i]
	}
}

// MulVec computes dst = m * x. dst must have length m.Rows and must not
// alias x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("la: MulVec dimension mismatch: %dx%d by %d into %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
}

// MulVecAdd computes dst += scale * m * x.
func (m *Matrix) MulVecAdd(dst []float64, scale float64, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("la: MulVecAdd dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] += scale * s
	}
}

// Mul computes dst = a * b. dst must be a.Rows x b.Cols and must not alias
// a or b.
func Mul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("la: Mul dimension mismatch: %dx%d * %dx%d into %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// NormInf returns the infinity norm (max absolute row sum).
func (m *Matrix) NormInf() float64 {
	var mx float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Norm1 returns the 1-norm (max absolute column sum).
func (m *Matrix) Norm1() float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			sums[j] += math.Abs(v)
		}
	}
	var mx float64
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormFrob returns the Frobenius norm.
func (m *Matrix) NormFrob() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equalish reports whether m and b agree entry-wise within tol.
func (m *Matrix) Equalish(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// SetSubmatrix copies src into m with its (0,0) entry at (r0, c0).
func (m *Matrix) SetSubmatrix(r0, c0 int, src *Matrix) {
	if r0+src.Rows > m.Rows || c0+src.Cols > m.Cols {
		panic("la: SetSubmatrix out of bounds")
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Row(i))
	}
}
