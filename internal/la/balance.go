package la

import "math"

// Balance applies Osborne-style diagonal balancing to a copy of a:
// it finds a diagonal similarity D^-1 * A * D whose row and column
// off-diagonal norms are approximately equal. Balancing preserves the
// eigenvalues exactly while making norm-based bounds (Gershgorin discs,
// diagonal-dominance step limits) dramatically tighter for physically
// heterogeneous state vectors — e.g. a state-space model mixing coil
// currents in milliamps with supercapacitor voltages in volts, where the
// raw off-diagonal entries 1/L and 1/C are huge but the underlying
// eigenvalue is the modest sqrt(1/(L*C)).
//
// sweeps of 4-8 is ample for the small matrices used here.
func Balance(a *Matrix, sweeps int) *Matrix {
	b := a.Clone()
	BalanceInPlace(b, sweeps)
	return b
}

// BalanceInPlace balances a in place (see Balance).
func BalanceInPlace(a *Matrix, sweeps int) {
	n := a.Rows
	if n != a.Cols {
		panic("la: BalanceInPlace needs a square matrix")
	}
	for s := 0; s < sweeps; s++ {
		converged := true
		for i := 0; i < n; i++ {
			var r, c float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				r += math.Abs(a.At(i, j))
				c += math.Abs(a.At(j, i))
			}
			if r == 0 || c == 0 {
				continue
			}
			// d scales column i by d and row i by 1/d; equalise norms.
			d := math.Sqrt(r / c)
			if d > 0.95 && d < 1.05 {
				continue
			}
			converged = false
			inv := 1 / d
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				a.Set(i, j, a.At(i, j)*inv)
				a.Set(j, i, a.At(j, i)*d)
			}
		}
		if converged {
			return
		}
	}
}

// BalanceScales computes the Osborne balancing scale vector d for a
// without modifying a: D^-1*A*D with D = diag(d) has approximately equal
// row and column off-diagonal norms. d must have length a.Rows and is
// overwritten. Balancing scales drift slowly for a physical system, so
// callers can cache d and re-apply it cheaply with ApplyBalance while
// the operating point moves.
func BalanceScales(a *Matrix, sweeps int, d []float64) {
	n := a.Rows
	if n != a.Cols || len(d) != n {
		panic("la: BalanceScales dimension mismatch")
	}
	for i := range d {
		d[i] = 1
	}
	data := a.Data
	for s := 0; s < sweeps; s++ {
		converged := true
		for i := 0; i < n; i++ {
			var r, c float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				// Scaled entries: a_ij * d_j / d_i.
				r += math.Abs(data[i*n+j]) * d[j]
				c += math.Abs(data[j*n+i]) / d[j]
			}
			r /= d[i]
			c *= d[i]
			if r == 0 || c == 0 {
				continue
			}
			f := math.Sqrt(r / c)
			if f > 0.95 && f < 1.05 {
				continue
			}
			converged = false
			d[i] *= f
		}
		if converged {
			return
		}
	}
}

// ApplyBalance writes the balanced matrix D^-1*A*D into dst using the
// scale vector d (one O(n^2) pass; no square roots).
func ApplyBalance(dst, a *Matrix, d []float64) {
	n := a.Rows
	if dst.Rows != n || dst.Cols != n || a.Cols != n || len(d) != n {
		panic("la: ApplyBalance dimension mismatch")
	}
	src := a.Data
	out := dst.Data
	for i := 0; i < n; i++ {
		inv := 1 / d[i]
		for j := 0; j < n; j++ {
			out[i*n+j] = src[i*n+j] * d[j] * inv
		}
	}
}

// StepLimitProfile analyses a (which should already be balanced) for the
// explicit-integration step caps used by the linearised state-space
// engine:
//
//   - hRealFE: the forward-Euler step limit contributed by the
//     diagonally dominant rows — the fast real (RC-like) modes the
//     paper's diagonal-dominance criterion (Eqs. 6-7) addresses. +Inf
//     when no row is dominant.
//   - rhoOsc: a Gershgorin bound on the eigenvalue magnitudes reachable
//     from the non-dominant rows — the oscillatory (resonator) modes,
//     which explicit Adams-Bashforth handles through the imaginary-axis
//     extent of its stability region rather than the real-axis one.
//     Zero when every row is dominant.
//   - unstable: true when some dominant row has a positive diagonal
//     (a locally non-passive mode for which no stabilising step exists).
func StepLimitProfile(a *Matrix) (hRealFE, rhoOsc float64, unstable bool) {
	hRealFE = math.Inf(1)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var r float64
		for j, v := range row {
			if j != i {
				r += math.Abs(v)
			}
		}
		d := row[i]
		if d == 0 && r == 0 {
			continue // inert row
		}
		if math.Abs(d) >= r {
			// Dominant row: a real mode near the diagonal entry.
			if d > 0 {
				unstable = true
				continue
			}
			if h := 2 / (math.Abs(d) + r); h < hRealFE {
				hRealFE = h
			}
		} else {
			// Oscillatory / strongly coupled row: bound |lambda| by the
			// Gershgorin disc reach.
			if reach := math.Abs(d) + r; reach > rhoOsc {
				rhoOsc = reach
			}
		}
	}
	return hRealFE, rhoOsc, unstable
}
