package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGershgorinRealBound(t *testing.T) {
	a := FromRows([][]float64{
		{-4, 1, 0},
		{0.5, -2, 0.5},
		{0, 1, -10},
	})
	lo, hi := GershgorinRealBound(a)
	if lo != -11 || hi != -1 {
		t.Fatalf("bounds = [%v, %v], want [-11, -1]", lo, hi)
	}
}

func TestDiagDominantStepLimitDiagonal(t *testing.T) {
	// Pure diagonal A = diag(-a): FE stable iff h < 2/a; the limit should
	// be exactly 2/a for the fastest mode.
	a := FromRows([][]float64{{-10, 0}, {0, -2}})
	h, ok := DiagDominantStepLimit(a)
	if !ok {
		t.Fatalf("expected a bound")
	}
	if math.Abs(h-0.2) > 1e-15 {
		t.Fatalf("h = %v, want 0.2", h)
	}
}

func TestDiagDominantStepLimitUnstableRow(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}}) // positive eigenvalue
	if _, ok := DiagDominantStepLimit(a); ok {
		t.Fatalf("unstable system should have no bound")
	}
}

func TestDiagDominantStepLimitInertRow(t *testing.T) {
	// z' = v row in a mechanical system has zero diagonal but non-zero
	// off-diagonal; such a row yields a finite limit only via other rows.
	a := FromRows([][]float64{{0, 0}, {0, -4}})
	h, ok := DiagDominantStepLimit(a)
	if !ok || math.Abs(h-0.5) > 1e-15 {
		t.Fatalf("h = %v ok=%v, want 0.5 true", h, ok)
	}
}

func TestStepLimitImpliesSpectralRadius(t *testing.T) {
	// Property (paper Eq. 7): at the diagonal-dominance step limit the
	// spectral radius of I + hA is <= 1; slightly inside it it is < 1+eps.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + int(sizeRaw%8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				v := r.NormFloat64() * 0.5
				a.Set(i, j, v)
				sum += math.Abs(v)
			}
			a.Set(i, i, -(sum + 0.1 + 2*r.Float64())) // passive-like
		}
		h, ok := DiagDominantStepLimit(a)
		if !ok {
			return false
		}
		m := NewMatrix(n, n)
		PointTotalStepMatrix(m, a, 0.95*h)
		rho := SpectralRadiusEstimate(m, 300)
		return rho <= 1.0+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestIsDiagDominantStep(t *testing.T) {
	a := FromRows([][]float64{{-10, 0}, {0, -2}})
	if !IsDiagDominantStep(a, 0.19, 1e-12) {
		t.Fatalf("h=0.19 should satisfy the criterion")
	}
	if IsDiagDominantStep(a, 0.21, 1e-12) {
		t.Fatalf("h=0.21 should violate the criterion")
	}
}

func TestSpectralRadiusEstimateKnown(t *testing.T) {
	a := FromRows([][]float64{{0.5, 0}, {0, -0.25}})
	rho := SpectralRadiusEstimate(a, 200)
	if math.Abs(rho-0.5) > 1e-6 {
		t.Fatalf("rho = %v, want 0.5", rho)
	}
}

func TestSpectralRadiusEstimateZero(t *testing.T) {
	if rho := SpectralRadiusEstimate(NewMatrix(3, 3), 50); rho != 0 {
		t.Fatalf("rho of zero matrix = %v", rho)
	}
	if rho := SpectralRadiusEstimate(NewMatrix(0, 0), 10); rho != 0 {
		t.Fatalf("rho of empty matrix = %v", rho)
	}
}

func TestPointTotalStepMatrix(t *testing.T) {
	a := FromRows([][]float64{{-2, 1}, {0, -4}})
	m := NewMatrix(2, 2)
	PointTotalStepMatrix(m, a, 0.1)
	want := FromRows([][]float64{{0.8, 0.1}, {0, 0.6}})
	if !m.Equalish(want, 1e-15) {
		t.Fatalf("I+hA = %v, want %v", m, want)
	}
}

func TestMinTimeConstant(t *testing.T) {
	a := FromRows([][]float64{{-100, 0}, {0, -1}})
	if tc := MinTimeConstant(a); math.Abs(tc-0.01) > 1e-15 {
		t.Fatalf("tau_min = %v, want 0.01", tc)
	}
	if tc := MinTimeConstant(NewMatrix(2, 2)); !math.IsInf(tc, 1) {
		t.Fatalf("tau_min of zero matrix = %v, want +Inf", tc)
	}
}

// TestForwardEulerStabilityEndToEnd integrates xdot = A x with forward
// Euler at a step just inside and just outside the diagonal-dominance
// limit and checks decay vs blow-up. This is the stability story of the
// paper's Section II in miniature.
func TestForwardEulerStabilityEndToEnd(t *testing.T) {
	a := FromRows([][]float64{
		{-50, 10, 0},
		{5, -80, 5},
		{0, 20, -120},
	})
	hmax, ok := DiagDominantStepLimit(a)
	if !ok {
		t.Fatalf("expected bound")
	}
	run := func(h float64, steps int) (norm float64, blewUp bool) {
		x := []float64{1, 1, 1}
		dx := make([]float64, 3)
		for i := 0; i < steps; i++ {
			a.MulVec(dx, x)
			Axpy(h, dx, x)
			if !AllFinite(x) || NormInfVec(x) > 1e6 {
				return math.Inf(1), true
			}
		}
		return NormInfVec(x), false
	}
	if final, blewUp := run(0.9*hmax, 4000); blewUp || final > 1e-3 {
		t.Fatalf("stable run did not decay: %v (blewUp=%v)", final, blewUp)
	}
	if _, blewUp := run(3.0*hmax, 4000); !blewUp {
		t.Fatalf("unstable run did not grow")
	}
}
