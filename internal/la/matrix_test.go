package la

import (
	"math"
	"testing"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("entry %d = %v, want 0", i, v)
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("At wrong: %v", m)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatalf("Set failed")
	}
	m.Add(1, 1, 1)
	if m.At(1, 1) != 10 {
		t.Fatalf("Add failed")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I[%d,%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", dst)
	}
	m.MulVecAdd(dst, 2, []float64{1, 0, 0})
	if dst[0] != 8 || dst[1] != 23 {
		t.Fatalf("MulVecAdd = %v, want [8 23]", dst)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := NewMatrix(2, 2)
	Mul(c, a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equalish(want, 0) {
		t.Fatalf("Mul = %v want %v", c, want)
	}
}

func TestMulIdentityLeavesMatrix(t *testing.T) {
	a := FromRows([][]float64{{1, -2, 3}, {0, 4, -1}, {2, 2, 2}})
	c := NewMatrix(3, 3)
	Mul(c, Identity(3), a)
	if !c.Equalish(a, 0) {
		t.Fatalf("I*A != A")
	}
	Mul(c, a, Identity(3))
	if !c.Equalish(a, 0) {
		t.Fatalf("A*I != A")
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", at)
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {-3, 4}})
	if got := a.NormInf(); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
	if got := a.Norm1(); got != 6 {
		t.Fatalf("Norm1 = %v, want 6", got)
	}
	if got := a.NormFrob(); math.Abs(got-math.Sqrt(30)) > 1e-15 {
		t.Fatalf("NormFrob = %v", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v", got)
	}
}

func TestCloneScaleAddScaled(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Scale(2)
	if a.At(0, 0) != 1 {
		t.Fatalf("Clone aliases original")
	}
	if b.At(1, 1) != 8 {
		t.Fatalf("Scale failed: %v", b)
	}
	b.AddScaled(-2, a)
	if b.MaxAbs() != 0 {
		t.Fatalf("AddScaled: want zero, got %v", b)
	}
}

func TestSetSubmatrix(t *testing.T) {
	m := NewMatrix(4, 4)
	s := FromRows([][]float64{{1, 2}, {3, 4}})
	m.SetSubmatrix(1, 2, s)
	if m.At(1, 2) != 1 || m.At(2, 3) != 4 || m.At(0, 0) != 0 {
		t.Fatalf("SetSubmatrix wrong:\n%v", m)
	}
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatalf("Row should be a view")
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	dst := make([]float64, 3)
	AxpyTo(dst, 2, a, b)
	if dst[0] != 6 || dst[2] != 12 {
		t.Fatalf("AxpyTo = %v", dst)
	}
	Axpy(-2, a, dst)
	if dst[0] != 4 || dst[2] != 6 {
		t.Fatalf("Axpy = %v", dst)
	}
	SubTo(dst, b, a)
	if dst[0] != 3 || dst[2] != 3 {
		t.Fatalf("SubTo = %v", dst)
	}
	if NormInfVec([]float64{-5, 2}) != 5 {
		t.Fatalf("NormInfVec wrong")
	}
	if math.Abs(Norm2Vec([]float64{3, 4})-5) > 1e-15 {
		t.Fatalf("Norm2Vec wrong")
	}
	if !AllFinite(a) {
		t.Fatalf("AllFinite false negative")
	}
	if AllFinite([]float64{1, math.NaN()}) || AllFinite([]float64{math.Inf(1)}) {
		t.Fatalf("AllFinite false positive")
	}
}

func TestWeightedRMS(t *testing.T) {
	// err = [1, 1], ref = [0, 0], atol=1, rtol=0 -> rms = 1.
	got := WeightedRMS([]float64{1, 1}, []float64{0, 0}, 1, 0)
	if math.Abs(got-1) > 1e-15 {
		t.Fatalf("WeightedRMS = %v, want 1", got)
	}
	if WeightedRMS(nil, nil, 1, 1) != 0 {
		t.Fatalf("WeightedRMS on empty should be 0")
	}
}
