package la

import "math"

// Stability analysis helpers for the explicit march-in-time process
// x_{n+1} = x_n + h*(A x_n + b)  (paper Eq. 6). The march is numerically
// stable when the spectral radius of I + h*A is below one (Eq. 7). The
// paper ensures this without eigenvalue computation by keeping the point
// total-step matrix diagonally dominant; these helpers implement both the
// cheap diagonal-dominance bound and a power-iteration estimate used for
// verification and for non-dominant corner cases.

// GershgorinRealBound returns the most negative and least negative real
// parts that Gershgorin's theorem allows for the eigenvalues of a, i.e.
// intervals [a_ii - r_i, a_ii + r_i] with r_i the off-diagonal row sum.
func GershgorinRealBound(a *Matrix) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var r float64
		for j, v := range row {
			if j != i {
				r += math.Abs(v)
			}
		}
		d := row[i]
		if d-r < lo {
			lo = d - r
		}
		if d+r > hi {
			hi = d + r
		}
	}
	return lo, hi
}

// DiagDominantStepLimit returns the largest step h such that every row of
// I + h*A satisfies |1 + h*a_ii| + h*sum_{j!=i}|a_ij| <= 1, which bounds
// the infinity norm of I + h*A by one and hence the spectral radius
// (paper Eqs. 6-7, after Varga). For a passive system (a_ii < 0) the
// per-row limit is h_i = 2 / (|a_ii| + r_i); rows with a_ii >= 0 admit no
// such h and the function returns 0 for hasBound=false.
//
// A zero matrix imposes no limit; +Inf is returned with hasBound=true.
func DiagDominantStepLimit(a *Matrix) (h float64, hasBound bool) {
	h = math.Inf(1)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var r float64
		for j, v := range row {
			if j != i {
				r += math.Abs(v)
			}
		}
		d := row[i]
		if d == 0 && r == 0 {
			continue // decoupled, inert row
		}
		if d >= 0 {
			// |1 + h*d| + h*r >= 1 for all h > 0: no stabilising step exists
			// for this row under the infinity-norm criterion.
			return 0, false
		}
		hi := 2 / (math.Abs(d) + r)
		if hi < h {
			h = hi
		}
	}
	return h, true
}

// IsDiagDominantStep reports whether ||I + h*A||_inf <= 1 + eps.
func IsDiagDominantStep(a *Matrix, h, eps float64) bool {
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			term := h * v
			if j == i {
				term += 1
			}
			s += math.Abs(term)
		}
		if s > 1+eps {
			return false
		}
	}
	return true
}

// SpectralRadiusEstimate estimates the spectral radius of a with power
// iteration on a deterministic start vector. It converges to the dominant
// eigenvalue magnitude for matrices with a separated dominant eigenvalue;
// for verification use only. iters of 50-200 is typically ample for the
// small matrices used here.
func SpectralRadiusEstimate(a *Matrix, iters int) float64 {
	n := a.Rows
	if n == 0 {
		return 0
	}
	return SpectralRadiusEstimateInto(a, iters, make([]float64, n), make([]float64, n))
}

// SpectralRadiusEstimateInto is SpectralRadiusEstimate with caller-owned
// iteration scratch x and y (each len a.Rows, contents overwritten), so
// the simulation loop's stability analysis stays allocation-free.
func SpectralRadiusEstimateInto(a *Matrix, iters int, x, y []float64) float64 {
	n := a.Rows
	if n == 0 {
		return 0
	}
	if len(x) != n || len(y) != n {
		panic("la: SpectralRadiusEstimateInto scratch length mismatch")
	}
	// Deterministic, non-symmetric start so we do not sit in an invariant
	// subspace of common structured matrices.
	for i := range x {
		x[i] = 1 + 0.5*float64(i%3) - 0.25*float64(i%2)
	}
	var lambda float64
	for k := 0; k < iters; k++ {
		a.MulVec(y, x)
		norm := Norm2Vec(y)
		if norm == 0 {
			return 0
		}
		lambda = norm / Norm2Vec(x)
		inv := 1 / norm
		for i := range x {
			x[i] = y[i] * inv
		}
	}
	// One Rayleigh-quotient-style refinement using the infinity norm pair.
	a.MulVec(y, x)
	num := Norm2Vec(y)
	den := Norm2Vec(x)
	if den > 0 {
		lambda = num / den
	}
	return lambda
}

// PointTotalStepMatrix writes I + h*A into dst.
func PointTotalStepMatrix(dst, a *Matrix, h float64) {
	if dst.Rows != a.Rows || dst.Cols != a.Cols || a.Rows != a.Cols {
		panic("la: PointTotalStepMatrix dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			v := h * a.At(i, j)
			if i == j {
				v += 1
			}
			dst.Set(i, j, v)
		}
	}
}

// MinTimeConstant returns 1/max_i|a_ii|, a cheap proxy for the smallest
// time constant of the linear system xdot = A x. Returns +Inf when the
// diagonal is all zero.
func MinTimeConstant(a *Matrix) float64 {
	var mx float64
	for i := 0; i < a.Rows; i++ {
		if d := math.Abs(a.At(i, i)); d > mx {
			mx = d
		}
	}
	if mx == 0 {
		return math.Inf(1)
	}
	return 1 / mx
}
