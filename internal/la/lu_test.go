package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	_, err := Solve(a, []float64{1, 1})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLUSolveBeforeFactor(t *testing.T) {
	f := NewLU(2)
	if err := f.Solve(make([]float64, 2), []float64{1, 2}); err == nil {
		t.Fatalf("Solve before Factor should error")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f := NewLU(2)
	if err := f.Factor(a); err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if d := f.Det(); math.Abs(d-(-6)) > 1e-12 {
		t.Fatalf("Det = %v, want -6", d)
	}
}

func TestLUAliasedSolve(t *testing.T) {
	a := FromRows([][]float64{{3, 1}, {1, 2}})
	f := NewLU(2)
	if err := f.Factor(a); err != nil {
		t.Fatalf("Factor: %v", err)
	}
	xb := []float64{9, 8}
	if err := f.Solve(xb, xb); err != nil {
		t.Fatalf("aliased Solve: %v", err)
	}
	if math.Abs(xb[0]-2) > 1e-12 || math.Abs(xb[1]-3) > 1e-12 {
		t.Fatalf("aliased solve wrong: %v", xb)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	a := FromRows([][]float64{{2, 0, 1}, {1, 3, 0}, {0, 1, 4}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	prod := NewMatrix(3, 3)
	Mul(prod, a, inv)
	if !prod.Equalish(Identity(3), 1e-12) {
		t.Fatalf("A*A^-1 != I:\n%v", prod)
	}
}

// randDiagDominant builds a random strictly diagonally dominant matrix,
// which is guaranteed non-singular. This is the matrix class the paper's
// stability argument relies on for passive systems.
func randDiagDominant(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.NormFloat64()
			m.Set(i, j, v)
			sum += math.Abs(v)
		}
		d := sum + 0.5 + rng.Float64()
		if rng.Intn(2) == 0 {
			d = -d
		}
		m.Set(i, i, d)
	}
	return m
}

func TestLUPropertySolveResidual(t *testing.T) {
	// Property: for random diagonally dominant A and random b, the residual
	// ||A x - b|| is tiny relative to ||b||.
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 + int(sizeRaw%12)
		a := randDiagDominant(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res := make([]float64, n)
		a.MulVec(res, x)
		SubTo(res, res, b)
		scale := NormInfVec(b) + 1
		return NormInfVec(res) <= 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestLUPropertyInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 + int(sizeRaw%8)
		a := randDiagDominant(r, n)
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		prod := NewMatrix(n, n)
		Mul(prod, a, inv)
		return prod.Equalish(Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestLUReuseAcrossFactorings(t *testing.T) {
	f := NewLU(2)
	a1 := FromRows([][]float64{{2, 0}, {0, 2}})
	a2 := FromRows([][]float64{{0, 1}, {1, 0}}) // needs pivoting
	x := make([]float64, 2)
	if err := f.Factor(a1); err != nil {
		t.Fatalf("Factor a1: %v", err)
	}
	if err := f.Solve(x, []float64{2, 4}); err != nil {
		t.Fatalf("Solve a1: %v", err)
	}
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("a1 solve = %v", x)
	}
	if err := f.Factor(a2); err != nil {
		t.Fatalf("Factor a2: %v", err)
	}
	if err := f.Solve(x, []float64{3, 5}); err != nil {
		t.Fatalf("Solve a2: %v", err)
	}
	if x[0] != 5 || x[1] != 3 {
		t.Fatalf("a2 solve = %v", x)
	}
}

func TestSolveMatrix(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {0, 2}})
	f := NewLU(2)
	if err := f.Factor(a); err != nil {
		t.Fatalf("Factor: %v", err)
	}
	b := FromRows([][]float64{{3, 1}, {4, 2}})
	x := NewMatrix(2, 2)
	if err := f.SolveMatrix(x, b); err != nil {
		t.Fatalf("SolveMatrix: %v", err)
	}
	// col0: x0+x1=3, 2x1=4 -> [1,2]; col1: [0,1]
	want := FromRows([][]float64{{1, 0}, {2, 1}})
	if !x.Equalish(want, 1e-12) {
		t.Fatalf("SolveMatrix = %v, want %v", x, want)
	}
}

func TestRcondEstimate(t *testing.T) {
	wellCond := Identity(4)
	f := NewLU(4)
	if err := f.Factor(wellCond); err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if rc := f.RcondEstimate(wellCond); rc < 0.5 {
		t.Fatalf("identity rcond estimate = %v, want ~1", rc)
	}
	// Nearly singular matrix should have a small estimate.
	almost := FromRows([][]float64{{1, 1}, {1, 1 + 1e-10}})
	f2 := NewLU(2)
	if err := f2.Factor(almost); err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if rc := f2.RcondEstimate(almost); rc > 1e-6 {
		t.Fatalf("near-singular rcond estimate = %v, want tiny", rc)
	}
}
