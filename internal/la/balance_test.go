package la

import (
	"math"
	"testing"
)

func TestBalanceEqualisesNorms(t *testing.T) {
	// LC-like pair: huge 1/C against tiny coupling; balancing should
	// bring off-diagonals to the geometric mean.
	a := FromRows([][]float64{
		{-1200, -1},
		{45000, -900},
	})
	b := Balance(a, 8)
	// Off-diagonal magnitudes should both be ~sqrt(45000) ~ 212.
	g := math.Sqrt(45000)
	if math.Abs(math.Abs(b.At(0, 1))-g) > 0.2*g || math.Abs(math.Abs(b.At(1, 0))-g) > 0.2*g {
		t.Fatalf("balanced off-diagonals = %v, %v, want ~%v", b.At(0, 1), b.At(1, 0), g)
	}
	// Diagonal untouched by similarity scaling.
	if b.At(0, 0) != -1200 || b.At(1, 1) != -900 {
		t.Fatalf("diagonal changed: %v", b)
	}
}

func TestBalancePreservesSpectralRadius(t *testing.T) {
	// Dominant eigenvalue is the isolated real mode at -30; the badly
	// scaled 2x2 block contributes a complex pair with |lambda| ~ 3.2.
	// (Power iteration only converges for real-dominant spectra, which
	// is why the engine uses it solely as a fallback.)
	a := FromRows([][]float64{
		{-2, 1000, 0},
		{-0.004, -3, 0},
		{0, 0, -30},
	})
	rhoA := SpectralRadiusEstimate(a, 400)
	b := Balance(a, 8)
	rhoB := SpectralRadiusEstimate(b, 400)
	if math.Abs(rhoA-30) > 0.5 {
		t.Fatalf("rho(A) = %v, want ~30", rhoA)
	}
	if math.Abs(rhoA-rhoB) > 0.02*math.Max(rhoA, rhoB) {
		t.Fatalf("balancing changed spectral radius: %v vs %v", rhoA, rhoB)
	}
}

func TestBalanceNoopOnSymmetric(t *testing.T) {
	a := FromRows([][]float64{{-2, 1}, {1, -3}})
	b := Balance(a, 8)
	if !b.Equalish(a, 1e-12) {
		t.Fatalf("symmetric matrix should be unchanged:\n%v", b)
	}
}

func TestStepLimitProfileMixedSystem(t *testing.T) {
	// Row 0/1: lightly damped oscillator at omega=100 (non-dominant).
	// Row 2: fast real mode at -5000 (dominant).
	a := FromRows([][]float64{
		{0, 100, 0},
		{-100, -2, 0},
		{0, 0, -5000},
	})
	hReal, rhoOsc, unstable := StepLimitProfile(a)
	if unstable {
		t.Fatalf("system should not be flagged unstable")
	}
	if math.Abs(hReal-2.0/5000) > 1e-12 {
		t.Fatalf("hReal = %v, want %v", hReal, 2.0/5000)
	}
	// Gershgorin reach of the oscillator rows is ~100-102.
	if rhoOsc < 100 || rhoOsc > 103 {
		t.Fatalf("rhoOsc = %v, want ~100", rhoOsc)
	}
}

func TestStepLimitProfilePureRC(t *testing.T) {
	a := FromRows([][]float64{{-100, 10}, {5, -50}})
	hReal, rhoOsc, unstable := StepLimitProfile(a)
	if unstable || rhoOsc != 0 {
		t.Fatalf("pure RC should have no oscillatory rows: rho=%v", rhoOsc)
	}
	want := 2.0 / 110
	if math.Abs(hReal-want) > 1e-12 {
		t.Fatalf("hReal = %v, want %v", hReal, want)
	}
}

func TestStepLimitProfileUnstableRow(t *testing.T) {
	a := FromRows([][]float64{{5, 1}, {0, -10}})
	_, _, unstable := StepLimitProfile(a)
	if !unstable {
		t.Fatalf("positive dominant diagonal should be flagged")
	}
}

func TestStepLimitProfileInertRows(t *testing.T) {
	a := NewMatrix(3, 3)
	hReal, rhoOsc, unstable := StepLimitProfile(a)
	if !math.IsInf(hReal, 1) || rhoOsc != 0 || unstable {
		t.Fatalf("zero matrix should impose no limits: %v %v %v", hReal, rhoOsc, unstable)
	}
}
