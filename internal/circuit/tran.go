package circuit

import (
	"fmt"
	"math"

	"harvsim/internal/la"
)

// TranStats reports the work a transient analysis performed.
type TranStats struct {
	Steps       int
	NewtonIters int
	LUFactors   int
	Rejected    int
	HMean       float64
}

// Transient runs nonlinear transient analysis on a netlist: trapezoidal
// companion models for the reactive elements and a full Newton-Raphson
// solve of the MNA system at every time step — the algorithmic shape of
// the circuit simulators in the paper's Table I.
type Transient struct {
	Net *Netlist

	HMax   float64 // maximum step (default 1e-4 s)
	HMin   float64 // minimum step (default 1e-9 s)
	Atol   float64 // Newton update tolerance on voltages (default 1e-6)
	Rtol   float64
	MaxNR  int // Newton iteration limit per step (default 50)
	Events func(now float64) float64
	Fire   func(now float64)

	Observer func(t float64, x []float64)

	Stats TranStats

	st    *MNAStamp
	lu    *la.LU
	x     []float64 // current accepted solution
	xTry  []float64
	xPrev []float64 // previous accepted solution (companion history)
	mat   *la.Matrix
}

// NewTransient prepares a transient analysis for the netlist.
func NewTransient(net *Netlist) *Transient {
	n := net.Size()
	return &Transient{
		Net:   net,
		HMax:  1e-4,
		HMin:  1e-9,
		Atol:  1e-6,
		Rtol:  1e-4,
		MaxNR: 50,
		st:    NewMNAStamp(n, net.NumNodes()),
		lu:    la.NewLU(n),
		x:     make([]float64, n),
		xTry:  make([]float64, n),
		xPrev: make([]float64, n),
		mat:   la.NewMatrix(n, n),
	}
}

// X returns the current solution vector (live view).
func (tr *Transient) X() []float64 { return tr.x }

// solveStep performs the Newton iteration for one candidate step,
// leaving the result in xTry. Returns the iterations used or an error.
func (tr *Transient) solveStep(t, h float64) (int, error) {
	copy(tr.xTry, tr.x)
	for iter := 0; iter < tr.MaxNR; iter++ {
		tr.st.Clear()
		for _, d := range tr.Net.Devices() {
			d.Stamp(tr.st, t, h, tr.xTry, tr.x)
		}
		// Copy into the LU workspace and solve G*xNew = b.
		for i := 0; i < tr.st.N; i++ {
			copy(tr.mat.Row(i), tr.st.G[i])
		}
		if err := tr.lu.Factor(tr.mat); err != nil {
			return iter, fmt.Errorf("circuit: MNA matrix singular at t=%g: %w", t, err)
		}
		tr.Stats.LUFactors++
		xNew := make([]float64, tr.st.N)
		if err := tr.lu.Solve(xNew, tr.st.B); err != nil {
			return iter, err
		}
		tr.Stats.NewtonIters++
		// Convergence on the largest voltage/current change.
		var worst float64
		for i := range xNew {
			d := math.Abs(xNew[i] - tr.xTry[i])
			scale := tr.Atol + tr.Rtol*math.Abs(xNew[i])
			if r := d / scale; r > worst {
				worst = r
			}
		}
		copy(tr.xTry, xNew)
		if !la.AllFinite(tr.xTry) {
			return iter, fmt.Errorf("circuit: non-finite iterate at t=%g", t)
		}
		if worst <= 1 {
			return iter + 1, nil
		}
	}
	return tr.MaxNR, fmt.Errorf("circuit: Newton did not converge at t=%g", t)
}

// commit propagates companion histories after an accepted step.
func (tr *Transient) commit(h float64) {
	for _, d := range tr.Net.Devices() {
		switch dev := d.(type) {
		case *Capacitor:
			dev.Commit(h, tr.xTry, tr.x)
		case *Inductor:
			dev.Commit(tr.st, tr.xTry)
		}
	}
	copy(tr.xPrev, tr.x)
	copy(tr.x, tr.xTry)
}

// Run marches from t0 to tEnd.
func (tr *Transient) Run(t0, tEnd float64) error {
	if tEnd <= t0 {
		return fmt.Errorf("circuit: empty span [%g, %g]", t0, tEnd)
	}
	t := t0
	// DC-ish initialisation: one tiny implicit step settles the operating
	// point from capacitor initial conditions.
	h := tr.HMax / 100
	var hSum float64
	if tr.Observer != nil {
		tr.Observer(t, tr.x)
	}
	for t < tEnd {
		horizon := tEnd
		if tr.Events != nil {
			if te := tr.Events(t); te > t && te < horizon {
				horizon = te
			}
		}
		hTry := math.Min(h, tr.HMax)
		if t+hTry > horizon {
			hTry = horizon - t
		}
		if hTry <= 0 {
			hTry = math.Min(tr.HMin, horizon-t)
		}
		var iters int
		var err error
		accepted := false
		for attempt := 0; attempt < 30; attempt++ {
			iters, err = tr.solveStep(t+hTry, hTry)
			if err == nil {
				accepted = true
				break
			}
			tr.Stats.Rejected++
			hTry = math.Max(hTry/4, tr.HMin)
			if t+hTry > horizon {
				hTry = horizon - t
			}
		}
		if !accepted {
			return err
		}
		tr.commit(hTry)
		t += hTry
		hSum += hTry
		tr.Stats.Steps++
		if tr.Observer != nil {
			tr.Observer(t, tr.x)
		}
		// Iteration-count step control (classic SPICE heuristic).
		switch {
		case iters <= 8:
			h = hTry * 1.6
		case iters >= 20:
			h = hTry / 2
		default:
			h = hTry
		}
		if h > tr.HMax {
			h = tr.HMax
		}
		if tr.Fire != nil && tr.Events != nil && tr.Events(math.Inf(-1)) <= t+1e-12 {
			tr.Fire(t)
		}
	}
	if tr.Stats.Steps > 0 {
		tr.Stats.HMean = hSum / float64(tr.Stats.Steps)
	}
	return nil
}
