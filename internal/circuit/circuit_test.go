package circuit

import (
	"math"
	"testing"

	"harvsim/internal/trace"
)

func TestRCStepResponse(t *testing.T) {
	net := NewNetlist()
	in := net.Node("in")
	out := net.Node("out")
	net.Add(&VSource{Inst: "V1", A: in, B: -1, V: func(float64) float64 { return 5 }})
	net.Add(&Resistor{Inst: "R1", A: in, B: out, R: 1e3})
	net.Add(&Capacitor{Inst: "C1", A: out, B: -1, C: 1e-6})
	tr := NewTransient(net)
	tr.HMax = 2e-5
	var rec trace.Series
	tr.Observer = func(tm float64, x []float64) { rec.Append(tm, x[out]) }
	if err := tr.Run(0, 5e-3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, tm := range []float64{1e-3, 3e-3, 5e-3} {
		want := 5 * (1 - math.Exp(-tm/1e-3))
		if got := rec.At(tm); math.Abs(got-want) > 0.03 {
			t.Fatalf("Vout(%v) = %v, want %v", tm, got, want)
		}
	}
	if tr.Stats.Steps == 0 || tr.Stats.NewtonIters == 0 {
		t.Fatalf("stats not recorded: %+v", tr.Stats)
	}
}

func TestRLCResonance(t *testing.T) {
	// Series RLC driven at resonance: the capacitor voltage is Q times
	// the drive amplitude.
	net := NewNetlist()
	in := net.Node("in")
	n1 := net.Node("n1")
	out := net.Node("out")
	l, c, r := 0.1, 1e-4, 10.0 // f0 = 50.3 Hz, Q = sqrt(L/C)/R ~ 3.16
	f0 := 1 / (2 * math.Pi * math.Sqrt(l*c))
	net.Add(&VSource{Inst: "V1", A: in, B: -1, V: func(tm float64) float64 {
		return math.Sin(2 * math.Pi * f0 * tm)
	}})
	net.Add(&Inductor{Inst: "L1", A: in, B: n1, L: l})
	net.Add(&Resistor{Inst: "R1", A: n1, B: out, R: r})
	net.Add(&Capacitor{Inst: "C1", A: out, B: -1, C: c})
	tr := NewTransient(net)
	tr.HMax = 1e-4
	var rec trace.Series
	tr.Observer = func(tm float64, x []float64) { rec.Append(tm, x[out]) }
	if err := tr.Run(0, 1.0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	q := math.Sqrt(l/c) / r
	_, peak := rec.Slice(0.6, 1.0).MinMax()
	if math.Abs(peak-q) > 0.15*q {
		t.Fatalf("resonant peak = %v, want ~Q = %v", peak, q)
	}
}

func TestDiodeHalfWaveRectifier(t *testing.T) {
	net := NewNetlist()
	in := net.Node("in")
	out := net.Node("out")
	net.Add(&VSource{Inst: "V1", A: in, B: -1, V: func(tm float64) float64 {
		return 2 * math.Sin(2*math.Pi*50*tm)
	}})
	net.Add(&Diode{Inst: "D1", A: in, B: out, Is: 1e-9, NVt: 26e-3, Rs: 10})
	net.Add(&Capacitor{Inst: "C1", A: out, B: -1, C: 1e-5})
	net.Add(&Resistor{Inst: "RL", A: out, B: -1, R: 1e5})
	tr := NewTransient(net)
	tr.HMax = 1e-4
	var rec trace.Series
	tr.Observer = func(tm float64, x []float64) { rec.Append(tm, x[out]) }
	if err := tr.Run(0, 0.2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, vEnd := rec.Last()
	if vEnd < 1.2 || vEnd > 2.0 {
		t.Fatalf("rectified output = %v, want ~2 V minus a drop", vEnd)
	}
}

func TestCCVSPair(t *testing.T) {
	// An ideal transformer-like coupling: source drives loop 1; CCVS
	// pair transfers to loop 2 loaded with a resistor. With gain k, the
	// secondary voltage is k * i1.
	net := NewNetlist()
	a := net.Node("a")
	b := net.Node("b")
	net.Add(&VSource{Inst: "V1", A: a, B: -1, V: func(float64) float64 { return 1 }})
	r1 := &Resistor{Inst: "R1", A: a, B: b, R: 100}
	net.Add(r1)
	// Sense loop-1 current with a zero-volt source (ammeter).
	amm := &VSource{Inst: "Vamm", A: b, B: -1, V: func(float64) float64 { return 0 }}
	net.Add(amm)
	sec := net.Node("sec")
	h := &CCVS{Inst: "H1", A: sec, B: -1, Gain: 50, CtrlSlot: amm.BranchSlot()}
	net.Add(h)
	net.Add(&Resistor{Inst: "RL", A: sec, B: -1, R: 1e3})
	tr := NewTransient(net)
	if err := tr.Run(0, 1e-4); err != nil {
		t.Fatalf("Run: %v", err)
	}
	x := tr.X()
	// Loop 1 current: 1 V across 100 Ohm = 10 mA; v(sec) = 50 * i = 0.5 V.
	// The ammeter branch current is defined flowing a->b through the
	// source, so the magnitude is what matters here.
	if math.Abs(math.Abs(x[sec])-0.5) > 1e-3 {
		t.Fatalf("CCVS output = %v, want |0.5|", x[sec])
	}
}

func TestHarvesterEquivalentChargesStorage(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalent-circuit transient")
	}
	p := DefaultEquivParams()
	h := BuildHarvester(p)
	tr := NewTransient(h.Net)
	tr.HMax = 1e-4
	var out trace.Series
	tr.Observer = func(tm float64, x []float64) { out.Append(tm, x[h.OutNode]) }
	if err := tr.Run(0, 15); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, vEnd := out.Last()
	if vEnd <= 5e-4 {
		t.Fatalf("equivalent circuit did not charge: %v", vEnd)
	}
	// The mechanical loop should resonate: velocity amplitude within
	// physical bounds (< free amplitude m*a/cp).
	var vel trace.Series
	// Re-read from final state only: check the branch current magnitude.
	velAmp := math.Abs(tr.X()[h.Net.NumNodes()+h.VelSlot])
	free := p.M * p.AccelAmp / p.Cp
	if velAmp > free*1.2 {
		t.Fatalf("velocity beyond free resonance: %v > %v", velAmp, free)
	}
	_ = vel
}

func TestNetlistNodeInterning(t *testing.T) {
	net := NewNetlist()
	if net.Node("0") != -1 || net.Node("gnd") != -1 {
		t.Fatalf("ground should be -1")
	}
	a := net.Node("a")
	if net.Node("a") != a {
		t.Fatalf("interning broken")
	}
	if net.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", net.NumNodes())
	}
	net.Add(&VSource{Inst: "V", A: a, B: -1, V: func(float64) float64 { return 0 }})
	if net.Size() != 2 {
		t.Fatalf("Size = %d, want nodes+branches = 2", net.Size())
	}
}

func TestTransientValidation(t *testing.T) {
	net := NewNetlist()
	a := net.Node("a")
	net.Add(&Resistor{Inst: "R", A: a, B: -1, R: 1})
	tr := NewTransient(net)
	if err := tr.Run(1, 0); err == nil {
		t.Fatalf("reversed span should error")
	}
}

func TestModeResistorSwitch(t *testing.T) {
	net := NewNetlist()
	a := net.Node("a")
	net.Add(&VSource{Inst: "V", A: a, B: -1, V: func(float64) float64 { return 2 }})
	mr := &ModeResistor{Inst: "Req", A: a, B: -1, R: 100}
	net.Add(mr)
	tr := NewTransient(net)
	if err := tr.Run(0, 1e-4); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mr.Set(50)
	if mr.R != 50 {
		t.Fatalf("Set failed")
	}
}
