package circuit

import (
	"math"
	"testing"

	"harvsim/internal/trace"
)

func TestInductorLRDecay(t *testing.T) {
	// Current source behaviour: an inductor with initial energy through a
	// resistor decays exponentially. Build: V step through R-L to ground
	// and check the L/R rise of the current.
	net := NewNetlist()
	in := net.Node("in")
	n1 := net.Node("n1")
	net.Add(&VSource{Inst: "V1", A: in, B: -1, V: func(float64) float64 { return 1 }})
	net.Add(&Resistor{Inst: "R1", A: in, B: n1, R: 100})
	l := &Inductor{Inst: "L1", A: n1, B: -1, L: 0.1} // tau = 1 ms
	net.Add(l)
	tr := NewTransient(net)
	tr.HMax = 2e-5
	var cur trace.Series
	brIdx := net.NumNodes() + l.BranchSlot()
	tr.Observer = func(tm float64, x []float64) { cur.Append(tm, x[brIdx]) }
	if err := tr.Run(0, 5e-3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, tm := range []float64{1e-3, 3e-3, 5e-3} {
		want := 0.01 * (1 - math.Exp(-tm/1e-3)) // I_final = 10 mA
		if got := cur.At(tm); math.Abs(got-want) > 5e-4 {
			t.Fatalf("iL(%v) = %v, want %v", tm, got, want)
		}
	}
}

func TestDiodeDeviceCurrentContinuity(t *testing.T) {
	// The Rs-limited exponential must be continuous and monotone across
	// the critical voltage.
	d := &Diode{Inst: "D", Is: 1e-9, NVt: 26e-3, Rs: 10}
	prevI := math.Inf(-1)
	for v := -1.0; v <= 2.0; v += 1e-3 {
		i, g := d.current(v)
		if i < prevI-1e-12 {
			t.Fatalf("current not monotone at v=%v", v)
		}
		if g < 0 {
			t.Fatalf("negative conductance at v=%v", v)
		}
		if g > 1/d.Rs+1e-9 {
			t.Fatalf("conductance above 1/Rs at v=%v: %v", v, g)
		}
		prevI = i
	}
	// Continuity at vCrit: evaluate both sides.
	vCrit := d.NVt * math.Log(d.NVt/(d.Is*d.Rs))
	iLo, _ := d.current(vCrit - 1e-9)
	iHi, _ := d.current(vCrit + 1e-9)
	if math.Abs(iLo-iHi) > 1e-6*(1+math.Abs(iHi)) {
		t.Fatalf("current discontinuous at vCrit: %v vs %v", iLo, iHi)
	}
}

func TestDiodeVoltageLimiter(t *testing.T) {
	d := &Diode{Inst: "D", Is: 1e-9, NVt: 26e-3, Rs: 10}
	d.vLast = 0.2
	if v := d.limitV(5.0); v > 0.5+1e-12 {
		t.Fatalf("limiter allowed a %v jump", v)
	}
	d.vLast = 0.2
	if v := d.limitV(-10); v < 0.2-2-1e-12 {
		t.Fatalf("limiter allowed reverse jump to %v", v)
	}
}

func TestCapacitorInitialVoltage(t *testing.T) {
	// A charged capacitor discharging into a resistor: V(t) = V0*exp(-t/RC).
	net := NewNetlist()
	n1 := net.Node("n1")
	net.Add(&Capacitor{Inst: "C1", A: n1, B: -1, C: 1e-6, V0: 5})
	net.Add(&Resistor{Inst: "R1", A: n1, B: -1, R: 1e3})
	tr := NewTransient(net)
	tr.HMax = 2e-5
	var v trace.Series
	tr.Observer = func(tm float64, x []float64) { v.Append(tm, x[n1]) }
	if err := tr.Run(0, 3e-3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, tm := range []float64{1e-3, 2e-3, 3e-3} {
		want := 5 * math.Exp(-tm/1e-3)
		if got := v.At(tm); math.Abs(got-want) > 0.05 {
			t.Fatalf("V(%v) = %v, want %v", tm, got, want)
		}
	}
}

func TestEquivalentCircuitModeSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalent-circuit transient")
	}
	// Switching Req mid-run (the MCU's Eq. 16 behaviour) must discharge
	// the precharged storage visibly.
	p := DefaultEquivParams()
	p.V0 = 3.0
	h := BuildHarvester(p)
	tr := NewTransient(h.Net)
	tr.HMax = 2e-4
	var out trace.Series
	tr.Observer = func(tm float64, x []float64) { out.Append(tm, x[h.OutNode]) }
	fired := false
	tr.Events = func(now float64) float64 {
		if fired {
			return math.Inf(1)
		}
		return 1.0
	}
	tr.Fire = func(now float64) {
		h.Req.Set(16.7)
		fired = true
	}
	if err := tr.Run(0, 3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	vAt1 := out.At(0.99)
	_, vEnd := out.Last()
	if !fired {
		t.Fatalf("event did not fire")
	}
	if vEnd > vAt1-0.2 {
		t.Fatalf("tuning load should sag the storage: %v -> %v", vAt1, vEnd)
	}
}
