// Package circuit is a compact SPICE-class circuit simulator: netlist,
// modified nodal analysis (MNA), nonlinear transient analysis with
// trapezoidal companion models and a Newton-Raphson solve at every time
// step. It serves as the stand-in for the OrCAD/PSPICE column of the
// paper's Table I — the "equivalent circuit model" simulation route the
// paper critiques (Section I): the complete harvester including the
// mechanical resonator is expressed as an electrical network (mass ->
// inductance, damping -> resistance, compliance -> capacitance, the
// electromagnetic coupling as a pair of current-controlled voltage
// sources), and the whole MNA system is re-solved by Newton iteration at
// every sub-millisecond step over multi-hour storage transients.
package circuit

// Netlist is a circuit under construction: named nodes and devices.
type Netlist struct {
	nodeIdx  map[string]int // name -> index; ground "0" -> -1
	nodes    []string
	devices  []Device
	branches int // extra unknowns requested by devices (V-sources, CCVS, L)
}

// NewNetlist returns an empty netlist with ground node "0".
func NewNetlist() *Netlist {
	return &Netlist{nodeIdx: map[string]int{"0": -1, "gnd": -1}}
}

// Node interns a node name and returns its index (-1 for ground).
func (n *Netlist) Node(name string) int {
	if idx, ok := n.nodeIdx[name]; ok {
		return idx
	}
	idx := len(n.nodes)
	n.nodeIdx[name] = idx
	n.nodes = append(n.nodes, name)
	return idx
}

// NumNodes returns the number of non-ground nodes.
func (n *Netlist) NumNodes() int { return len(n.nodes) }

// NodeNames returns the non-ground node names in index order.
func (n *Netlist) NodeNames() []string { return n.nodes }

// Add appends a device, allocating any branch unknowns it requires.
// Branch slots are numbered 0.. in insertion order; their absolute MNA
// indices are nodeCount+slot, resolved at stamp time through the
// MNAStamp's Nodes field (so nodes may keep being interned after Add).
func (n *Netlist) Add(d Device) {
	if b, ok := d.(branchDevice); ok {
		n.branches += b.assignBranch(n.branches)
	}
	n.devices = append(n.devices, d)
}

// Devices returns the device list.
func (n *Netlist) Devices() []Device { return n.devices }

// Size returns the MNA system dimension (nodes + branch currents).
func (n *Netlist) Size() int { return len(n.nodes) + n.branches }

// Device is a circuit element that stamps the MNA matrix and RHS.
type Device interface {
	// Name identifies the instance.
	Name() string
	// Stamp adds the device's contribution for the current Newton iterate
	// x (node voltages then branch currents) at time t with step h and
	// the previous accepted solution xPrev (for companion models). The
	// stamps go into st.
	Stamp(st *MNAStamp, t, h float64, x, xPrev []float64)
	// Linear reports whether the device's stamps are independent of x
	// (pure linear elements let the engine skip Newton re-stamps).
	Linear() bool
}

// branchDevice is implemented by devices that need branch-current
// unknowns (voltage sources, inductors, CCVS).
type branchDevice interface {
	// assignBranch gives the device its first branch slot and returns the
	// number of slots it consumes.
	assignBranch(firstSlot int) int
}

// MNAStamp accumulates the linear system G*x = b for one Newton iterate.
type MNAStamp struct {
	N     int
	Nodes int // number of non-ground nodes; branch slot s sits at Nodes+s
	G     [][]float64
	B     []float64
	gmin  float64
}

// NewMNAStamp returns a stamp workspace of dimension n with the given
// node count.
func NewMNAStamp(n, nodes int) *MNAStamp {
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	return &MNAStamp{N: n, Nodes: nodes, G: g, B: make([]float64, n), gmin: 1e-12}
}

// Branch returns the absolute MNA index of branch slot s.
func (s *MNAStamp) Branch(slot int) int { return s.Nodes + slot }

// Clear zeroes the system and applies the gmin conductance from every
// node to ground (standard SPICE convergence aid).
func (s *MNAStamp) Clear() {
	for i := range s.G {
		row := s.G[i]
		for j := range row {
			row[j] = 0
		}
		s.B[i] = 0
	}
	for i := 0; i < s.Nodes; i++ {
		s.G[i][i] += s.gmin
	}
}

// Conductance stamps a conductance g between nodes a and b (-1=ground).
func (s *MNAStamp) Conductance(a, b int, g float64) {
	if a >= 0 {
		s.G[a][a] += g
	}
	if b >= 0 {
		s.G[b][b] += g
	}
	if a >= 0 && b >= 0 {
		s.G[a][b] -= g
		s.G[b][a] -= g
	}
}

// Current stamps a current source i flowing from node a to node b.
func (s *MNAStamp) Current(a, b int, i float64) {
	if a >= 0 {
		s.B[a] -= i
	}
	if b >= 0 {
		s.B[b] += i
	}
}

// Entry adds v to G[r][c] directly (for branch equations).
func (s *MNAStamp) Entry(r, c int, v float64) { s.G[r][c] += v }

// RHS adds v to b[r].
func (s *MNAStamp) RHS(r int, v float64) { s.B[r] += v }

// VoltageAt reads a node voltage from an iterate (ground = 0).
func VoltageAt(x []float64, node int) float64 {
	if node < 0 {
		return 0
	}
	return x[node]
}
