package circuit

import "math"

// Resistor between nodes A and B.
type Resistor struct {
	Inst string
	A, B int
	R    float64
}

// Name implements Device.
func (r *Resistor) Name() string { return r.Inst }

// Linear implements Device.
func (r *Resistor) Linear() bool { return true }

// Stamp implements Device.
func (r *Resistor) Stamp(st *MNAStamp, t, h float64, x, xPrev []float64) {
	st.Conductance(r.A, r.B, 1/r.R)
}

// Capacitor between nodes A and B with a trapezoidal companion model:
// geq = 2C/h in parallel with a history current source.
type Capacitor struct {
	Inst string
	A, B int
	C    float64
	V0   float64 // initial voltage (A positive)

	// companion history: current through the capacitor at the previous
	// accepted point (A->B) — updated by the transient engine via Commit.
	iPrev float64
	init  bool
}

// Name implements Device.
func (c *Capacitor) Name() string { return c.Inst }

// Linear implements Device.
func (c *Capacitor) Linear() bool { return true }

// Stamp implements Device.
func (c *Capacitor) Stamp(st *MNAStamp, t, h float64, x, xPrev []float64) {
	geq := 2 * c.C / h
	vPrev := VoltageAt(xPrev, c.A) - VoltageAt(xPrev, c.B)
	if !c.init {
		vPrev = c.V0
	}
	ieq := geq*vPrev + c.iPrev
	st.Conductance(c.A, c.B, geq)
	st.Current(c.B, c.A, ieq) // history source pushes current A<-B
}

// Commit updates the companion history after an accepted step.
func (c *Capacitor) Commit(h float64, x, xPrev []float64) {
	geq := 2 * c.C / h
	vPrev := VoltageAt(xPrev, c.A) - VoltageAt(xPrev, c.B)
	if !c.init {
		vPrev = c.V0
		c.init = true
	}
	vNew := VoltageAt(x, c.A) - VoltageAt(x, c.B)
	c.iPrev = geq*(vNew-vPrev) - c.iPrev
}

// Inductor between nodes A and B with a branch-current unknown and a
// trapezoidal companion model.
type Inductor struct {
	Inst string
	A, B int
	L    float64

	slot  int
	vPrev float64
	iPrev float64
	init  bool
}

// Name implements Device.
func (l *Inductor) Name() string { return l.Inst }

// Linear implements Device.
func (l *Inductor) Linear() bool { return true }

func (l *Inductor) assignBranch(firstSlot int) int {
	l.slot = firstSlot
	return 1
}

// BranchSlot returns the inductor's branch slot (its current unknown).
func (l *Inductor) BranchSlot() int { return l.slot }

// Stamp implements Device: branch equation
// v(A)-v(B) - (2L/h)*i = -(2L/h)*iPrev - vPrev (trapezoidal).
func (l *Inductor) Stamp(st *MNAStamp, t, h float64, x, xPrev []float64) {
	br := st.Branch(l.slot)
	req := 2 * l.L / h
	if l.A >= 0 {
		st.Entry(l.A, br, 1)
		st.Entry(br, l.A, 1)
	}
	if l.B >= 0 {
		st.Entry(l.B, br, -1)
		st.Entry(br, l.B, -1)
	}
	st.Entry(br, br, -req)
	st.RHS(br, -req*l.iPrev-l.vPrev)
}

// Commit updates the inductor history after an accepted step.
func (l *Inductor) Commit(st *MNAStamp, x []float64) {
	br := st.Branch(l.slot)
	l.iPrev = x[br]
	l.vPrev = VoltageAt(x, l.A) - VoltageAt(x, l.B)
	l.init = true
}

// VSource is an independent voltage source v(t) from node A (+) to B (-)
// with a branch-current unknown.
type VSource struct {
	Inst string
	A, B int
	V    func(t float64) float64

	slot int
}

// Name implements Device.
func (v *VSource) Name() string { return v.Inst }

// Linear implements Device.
func (v *VSource) Linear() bool { return true }

func (v *VSource) assignBranch(firstSlot int) int {
	v.slot = firstSlot
	return 1
}

// BranchSlot returns the source's branch slot.
func (v *VSource) BranchSlot() int { return v.slot }

// Stamp implements Device.
func (v *VSource) Stamp(st *MNAStamp, t, h float64, x, xPrev []float64) {
	br := st.Branch(v.slot)
	if v.A >= 0 {
		st.Entry(v.A, br, 1)
		st.Entry(br, v.A, 1)
	}
	if v.B >= 0 {
		st.Entry(v.B, br, -1)
		st.Entry(br, v.B, -1)
	}
	st.RHS(br, v.V(t))
}

// CCVS is a current-controlled voltage source (SPICE H element):
// v(A)-v(B) = Gain * i(ctrl branch). Used in pairs to build the ideal
// electromechanical coupling of the equivalent-circuit harvester model.
type CCVS struct {
	Inst     string
	A, B     int
	Gain     float64
	CtrlSlot int // branch slot of the controlling current

	slot int
}

// Name implements Device.
func (c *CCVS) Name() string { return c.Inst }

// Linear implements Device.
func (c *CCVS) Linear() bool { return true }

func (c *CCVS) assignBranch(firstSlot int) int {
	c.slot = firstSlot
	return 1
}

// BranchSlot returns the output branch slot.
func (c *CCVS) BranchSlot() int { return c.slot }

// Stamp implements Device.
func (c *CCVS) Stamp(st *MNAStamp, t, h float64, x, xPrev []float64) {
	br := st.Branch(c.slot)
	ctrl := st.Branch(c.CtrlSlot)
	if c.A >= 0 {
		st.Entry(c.A, br, 1)
		st.Entry(br, c.A, 1)
	}
	if c.B >= 0 {
		st.Entry(c.B, br, -1)
		st.Entry(br, c.B, -1)
	}
	st.Entry(br, ctrl, -c.Gain)
}

// Diode is a Shockley junction with series resistance folded in as a
// conductance limit, stamped with the standard Newton companion (geq,
// ieq) and a pn-junction voltage limiter for convergence.
type Diode struct {
	Inst string
	A, B int // anode, cathode
	Is   float64
	NVt  float64
	Rs   float64 // bounds the on-conductance at 1/Rs

	vLast float64
}

// Name implements Device.
func (d *Diode) Name() string { return d.Inst }

// Linear implements Device.
func (d *Diode) Linear() bool { return false }

// current returns (i, g) at junction voltage v with the Rs-limited
// exponential.
func (d *Diode) current(v float64) (i, g float64) {
	// Critical voltage where the exponential's slope reaches 1/Rs.
	vCrit := d.NVt * math.Log(d.NVt/(d.Is*d.Rs))
	if v < vCrit {
		e := math.Exp(v / d.NVt)
		return d.Is * (e - 1), d.Is * e / d.NVt
	}
	// Linear continuation with slope 1/Rs above vCrit.
	iCrit := d.Is * (math.Exp(vCrit/d.NVt) - 1)
	g = 1 / d.Rs
	return iCrit + g*(v-vCrit), g
}

// limitV applies SPICE-style junction voltage limiting between Newton
// iterations.
func (d *Diode) limitV(v float64) float64 {
	const maxStep = 0.3
	if v > d.vLast+maxStep {
		v = d.vLast + maxStep
	} else if v < d.vLast-2 {
		v = d.vLast - 2
	}
	d.vLast = v
	return v
}

// Stamp implements Device.
func (d *Diode) Stamp(st *MNAStamp, t, h float64, x, xPrev []float64) {
	v := VoltageAt(x, d.A) - VoltageAt(x, d.B)
	v = d.limitV(v)
	i, g := d.current(v)
	ieq := i - g*v
	st.Conductance(d.A, d.B, g)
	st.Current(d.A, d.B, ieq)
}

// ModeResistor is a resistor whose value is switched externally (the
// equivalent-load Req of paper Eq. 16).
type ModeResistor struct {
	Inst string
	A, B int
	R    float64
}

// Name implements Device.
func (m *ModeResistor) Name() string { return m.Inst }

// Linear implements Device.
func (m *ModeResistor) Linear() bool { return true }

// Set switches the resistance.
func (m *ModeResistor) Set(r float64) { m.R = r }

// Stamp implements Device.
func (m *ModeResistor) Stamp(st *MNAStamp, t, h float64, x, xPrev []float64) {
	st.Conductance(m.A, m.B, 1/m.R)
}
