package circuit

import (
	"fmt"
	"math"
)

// EquivParams describes the complete harvester for the equivalent-
// circuit-model route (the PSPICE approach of the paper's Section I):
// the mechanical resonator becomes a series RLC loop in the
// force-voltage analogy (mass -> inductance, damping -> resistance,
// compliance -> capacitance) and the electromagnetic transduction is an
// ideal coupling built from two current-controlled voltage sources.
type EquivParams struct {
	// Mechanical side.
	M, Cp, Ks float64
	AccelAmp  float64
	FreqHz    float64
	// Transduction and coil.
	Phi, Rc float64
	// Multiplier: a 5-diode Cockcroft-Walton/Dickson cascade. CPump is
	// the AC-coupling (pump) capacitance, sized so its reactance is
	// comparable to the coil impedance at the excitation frequency.
	Stages              int
	CPump, CStage, COut float64
	DiodeIs             float64
	DiodeNVt            float64
	DiodeRs             float64
	// Storage (three-branch supercapacitor, constant immediate C).
	Ri, Ci, Rd, Cd, Rl, Cl float64
	ReqOhms                float64
	V0                     float64
}

// DefaultEquivParams mirrors the calibrated physical harvester with the
// generator tuned to the 70 Hz excitation (effective stiffness set per
// paper Eq. 12, as the autonomous controller would leave it).
func DefaultEquivParams() EquivParams {
	const fTuned = 70.0
	m := 5.0e-3
	return EquivParams{
		M: m, Cp: 7.2e-3, Ks: m * (2 * math.Pi * fTuned) * (2 * math.Pi * fTuned),
		AccelAmp: 0.59, FreqHz: 70,
		Phi: 5.3, Rc: 500,
		Stages: 5, CPump: 4.7e-6, CStage: 22e-6, COut: 220e-6,
		DiodeIs: 5e-6, DiodeNVt: 38.7e-3, DiodeRs: 100,
		Ri: 2.5, Ci: 0.46, Rd: 900, Cd: 0.10, Rl: 5200, Cl: 0.22,
		ReqOhms: 1e9, V0: 0,
	}
}

// Harvester holds the assembled equivalent-circuit netlist and the
// handles needed by observers.
type Harvester struct {
	Net     *Netlist
	OutNode int // multiplier output / supercap terminal node
	AcNode  int // rectifier input node
	VelSlot int // mechanical loop current (velocity) branch slot
	Req     *ModeResistor
}

// BuildHarvester constructs the equivalent circuit of the complete
// harvester (Fig. 1 rendered as a PSPICE-style netlist).
func BuildHarvester(p EquivParams) *Harvester {
	net := NewNetlist()
	h := &Harvester{Net: net}

	// Mechanical loop (force-voltage analogy). Loop: force source ->
	// mass inductor -> damping resistor -> compliance capacitor ->
	// coupling CCVS -> ground. The loop current is the proof-mass
	// velocity.
	mA := net.Node("mA")
	mB := net.Node("mB")
	mC := net.Node("mC")
	mD := net.Node("mD")
	force := &VSource{Inst: "Vforce", A: mA, B: -1, V: func(t float64) float64 {
		return -p.M * p.AccelAmp * math.Sin(2*math.Pi*p.FreqHz*t)
	}}
	net.Add(force)
	mass := &Inductor{Inst: "Lmass", A: mA, B: mB, L: p.M}
	net.Add(mass)
	net.Add(&Resistor{Inst: "Rdamp", A: mB, B: mC, R: p.Cp})
	net.Add(&Capacitor{Inst: "Ccompl", A: mC, B: mD, C: 1 / p.Ks})
	h.VelSlot = mass.BranchSlot()

	// Electromagnetic coupling: Fem = Phi*i_elec in the mechanical loop;
	// Vem = Phi*velocity on the electrical side. The electrical-side
	// CCVS's own branch current is the coil current, which controls the
	// mechanical-side source.
	// Sign note: with the MNA convention used here the CCVS branch
	// current is the current the external circuit pushes into its +
	// terminal, i.e. the negative of the coil current flowing out of the
	// Vem source. The reaction force must oppose the velocity (Lenz), so
	// the force-side gain is -Phi.
	e1 := net.Node("e1")
	vem := &CCVS{Inst: "Hvem", A: e1, B: -1, Gain: p.Phi, CtrlSlot: mass.BranchSlot()}
	net.Add(vem)
	fem := &CCVS{Inst: "Hfem", A: mD, B: -1, Gain: -p.Phi, CtrlSlot: vem.BranchSlot()}
	net.Add(fem)

	// Coil resistance into the rectifier input.
	ac := net.Node("ac")
	h.AcNode = ac
	net.Add(&Resistor{Inst: "Rcoil", A: e1, B: ac, R: p.Rc})

	// Cockcroft-Walton / Dickson cascade: odd nodes couple to the AC rail
	// through pump capacitors, even nodes hold DC on storage capacitors,
	// diodes zig-zag up the ladder.
	prev := -1 // diode chain starts at ground
	for i := 1; i <= p.Stages; i++ {
		ni := net.Node(fmt.Sprintf("n%d", i))
		net.Add(&Diode{
			Inst: fmt.Sprintf("D%d", i), A: prev, B: ni,
			Is: p.DiodeIs, NVt: p.DiodeNVt, Rs: p.DiodeRs,
		})
		c := p.CStage
		other := -1 // storage stages hold DC to ground
		if i == p.Stages {
			c = p.COut // output smoothing stage
		} else if i%2 == 1 {
			c = p.CPump
			other = ac // odd interior stages pump from the AC rail
		}
		v0 := 0.0
		if other == -1 {
			v0 = p.V0 * float64(i) / float64(p.Stages)
		}
		net.Add(&Capacitor{Inst: fmt.Sprintf("C%d", i), A: ni, B: other, C: c, V0: v0})
		prev = ni
	}
	out := prev
	h.OutNode = out

	// Supercapacitor three-branch network plus the equivalent load.
	si := net.Node("si")
	sd := net.Node("sd")
	sl := net.Node("sl")
	net.Add(&Resistor{Inst: "Rim", A: out, B: si, R: p.Ri})
	net.Add(&Capacitor{Inst: "Cim", A: si, B: -1, C: p.Ci, V0: p.V0})
	net.Add(&Resistor{Inst: "Rdel", A: out, B: sd, R: p.Rd})
	net.Add(&Capacitor{Inst: "Cdel", A: sd, B: -1, C: p.Cd, V0: p.V0})
	net.Add(&Resistor{Inst: "Rlong", A: out, B: sl, R: p.Rl})
	net.Add(&Capacitor{Inst: "Clong", A: sl, B: -1, C: p.Cl, V0: p.V0})
	h.Req = &ModeResistor{Inst: "Req", A: out, B: -1, R: p.ReqOhms}
	net.Add(h.Req)

	return h
}
