package core

import (
	"math"

	"harvsim/internal/la"
)

// EnsembleShared is the work store of a lockstep ensemble: K engines
// marching K seeds of one design point share elimination factorisations
// and reduced-matrix stability analyses through it, so a computation
// any member already performed for the exact same inputs is served, not
// repeated. Entries are content-addressed (FNV-1a over the raw float
// bits) and every lookup verifies the full contents against the stored
// copy, so a hit is bit-identical to the private computation it elides
// — collisions cost a miss, never a wrong answer. That makes sharing a
// pure optimisation: members whose Jacobians drift apart (a Duffing
// retangent, a diode segment change) simply stop matching and fall back
// to per-member work, exactly as the solo engine would.
//
// The store is confined to one goroutine (the lockstep unit); it is not
// locked.
type EnsembleShared struct {
	factors map[uint64][]*factorEntry
	stabs   map[uint64][]*stabEntry
	entries int

	// Counters for diagnostics and tests.
	FactorHits, FactorMisses int
	StabHits, StabMisses     int
}

// ensembleStoreCap bounds the store; past it both maps are cleared
// (deterministically — eviction only ever costs recomputation).
const ensembleStoreCap = 4096

// NewEnsembleShared returns an empty store.
func NewEnsembleShared() *EnsembleShared {
	return &EnsembleShared{
		factors: make(map[uint64][]*factorEntry),
		stabs:   make(map[uint64][]*stabEntry),
	}
}

type factorEntry struct {
	jyy []float64 // exact matrix contents the factorisation is of
	lu  *la.LU
}

type stabEntry struct {
	// Inputs: the four Jacobian contents, whether the balancing scales
	// were recomputed, and (when they were not) the scales that were
	// applied.
	jac       [4][]float64
	recompute bool
	dScaleIn  []float64

	// Outputs of computeStability for those inputs.
	red       []float64
	dScaleOut []float64
	hRealFE   float64
	rhoOsc    float64
}

func hashFloats(h *uint64, v []float64) {
	const prime64 = 1099511628211
	x := *h
	for _, f := range v {
		b := math.Float64bits(f)
		for s := 0; s < 64; s += 8 {
			x ^= (b >> s) & 0xff
			x *= prime64
		}
	}
	*h = x
}

// newHash returns the FNV-1a 64-bit offset basis.
func newHash() uint64 { return 14695981039346656037 }

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func (s *EnsembleShared) maybeEvict() {
	if s.entries < ensembleStoreCap {
		return
	}
	s.factors = make(map[uint64][]*factorEntry)
	s.stabs = make(map[uint64][]*stabEntry)
	s.entries = 0
}

// factorOf returns an LU factorisation of jyy, served from the store
// when any member already factored the exact same contents. The
// returned factorisation's factor data is immutable; Solve uses only
// internal scratch, so one entry safely serves every member in turn.
func (s *EnsembleShared) factorOf(jyy *la.Matrix) (*la.LU, error) {
	key := newHash()
	hashFloats(&key, jyy.Data)
	for _, ent := range s.factors[key] {
		if floatsEqual(ent.jyy, jyy.Data) {
			s.FactorHits++
			return ent.lu, nil
		}
	}
	s.FactorMisses++
	lu := la.NewLU(jyy.Rows)
	if err := lu.Factor(jyy); err != nil {
		return nil, err
	}
	s.maybeEvict()
	s.factors[key] = append(s.factors[key], &factorEntry{
		jyy: append([]float64(nil), jyy.Data...),
		lu:  lu,
	})
	s.entries++
	return lu, nil
}

// stabilityFor serves (or computes and stores) the reduced-matrix
// stability analysis for engine e's current Jacobians. The analysis is
// a pure function of the four Jacobian contents, the recompute-scales
// decision (scaleAge >= 16, part of the key) and — when the cached
// scales are re-applied — the scales themselves; a hit restores every
// output computeStability would have produced, bit for bit, including
// the scaleAge progression.
func (s *EnsembleShared) stabilityFor(e *Engine) error {
	sys := e.Sys
	jac := [4]*la.Matrix{sys.Jxx, sys.Jxy, sys.Jyx, sys.Jyy}
	recompute := e.scaleAge >= 16
	key := newHash()
	for _, m := range jac {
		hashFloats(&key, m.Data)
	}
	if recompute {
		key ^= 1
	} else {
		hashFloats(&key, e.dScale)
	}
	for _, ent := range s.stabs[key] {
		if ent.recompute != recompute {
			continue
		}
		match := true
		for m := range jac {
			if !floatsEqual(ent.jac[m], jac[m].Data) {
				match = false
				break
			}
		}
		if match && !recompute && !floatsEqual(ent.dScaleIn, e.dScale) {
			match = false
		}
		if !match {
			continue
		}
		s.StabHits++
		copy(e.red.Data, ent.red)
		copy(e.dScale, ent.dScaleOut)
		e.hRealFE = ent.hRealFE
		e.rhoOsc = ent.rhoOsc
		if recompute {
			e.scaleAge = 1
		} else {
			e.scaleAge++
		}
		return nil
	}
	s.StabMisses++
	var dScaleIn []float64
	if !recompute {
		dScaleIn = append([]float64(nil), e.dScale...)
	}
	if err := e.computeStability(); err != nil {
		return err
	}
	ent := &stabEntry{
		recompute: recompute,
		dScaleIn:  dScaleIn,
		red:       append([]float64(nil), e.red.Data...),
		dScaleOut: append([]float64(nil), e.dScale...),
		hRealFE:   e.hRealFE,
		rhoOsc:    e.rhoOsc,
	}
	for m := range jac {
		ent.jac[m] = append([]float64(nil), jac[m].Data...)
	}
	s.maybeEvict()
	s.stabs[key] = append(s.stabs[key], ent)
	s.entries++
	return nil
}

// EnsembleEngine marches K member engines — K seeds of one design point
// — in lockstep: every member advances by one accepted step per round,
// and the members share elimination factorisations and stability
// analyses through a common content-addressed store, so one
// factorisation serves all K seeds for as long as their Jacobians agree
// (always, for a linear device). Each member still runs its exact solo
// march — its own adaptive grid, its own noise realisation, its own
// retangenting — so lockstep output is bit-identical to K solo runs by
// construction; the sharing only removes redundant arithmetic.
type EnsembleEngine struct {
	Members []*Engine
	Share   *EnsembleShared

	// begin-batch scratch
	xs, bs [][]float64
	idxs   []int
}

// NewEnsembleEngine binds the members to a fresh shared store and
// returns the lockstep engine. The members must march on distinct
// systems (one harvester per seed) within a single goroutine.
func NewEnsembleEngine(members []*Engine) *EnsembleEngine {
	share := NewEnsembleShared()
	for _, m := range members {
		m.share = share
	}
	return &EnsembleEngine{Members: members, Share: share}
}

// Run marches every member over [t0, tEnd] and returns one error slot
// per member (nil on success). A failing member stops marching; the
// rest continue to the horizon.
func (ee *EnsembleEngine) Run(t0, tEnd float64) []error {
	k := len(ee.Members)
	errs := make([]error, k)
	done := make([]bool, k)

	// Phase 1: prepare every member (workspace, initial linearisation,
	// first factorisation — served from the shared store after the first
	// member computes it).
	for i, m := range ee.Members {
		if err := m.beginPrepared(t0, tEnd); err != nil {
			errs[i], done[i] = err, true
		}
	}

	// Phase 2: the initial terminal eliminations, batched per shared
	// factorisation — one la.SolveColumns call eliminates every member
	// that resolved to the same factor (all K, for a linear device).
	var lus []*la.LU
	groups := make(map[*la.LU][]int, 1)
	for i, m := range ee.Members {
		if done[i] {
			continue
		}
		m.yElimRHS()
		if _, ok := groups[m.luRef]; !ok {
			lus = append(lus, m.luRef)
		}
		groups[m.luRef] = append(groups[m.luRef], i)
	}
	for _, lu := range lus {
		idxs := groups[lu]
		ee.xs, ee.bs = ee.xs[:0], ee.bs[:0]
		for _, i := range idxs {
			ee.xs = append(ee.xs, ee.Members[i].y)
			ee.bs = append(ee.bs, ee.Members[i].yRHS)
		}
		if err := lu.SolveColumns(ee.xs, ee.bs); err != nil {
			for _, i := range idxs {
				errs[i], done[i] = err, true
			}
		}
	}

	// Phase 3: finish Begin per member (segment-resolution pass, first
	// step choice).
	for i, m := range ee.Members {
		if done[i] {
			continue
		}
		if err := m.beginFinish(); err != nil {
			errs[i], done[i] = err, true
		}
	}

	// Phase 4: lockstep rounds. Round-robin keeps the members' Jacobian
	// evaluations temporally close, so the shared store's working set
	// stays small and hot.
	active := 0
	for i := range done {
		if !done[i] {
			active++
		}
	}
	for active > 0 {
		for i, m := range ee.Members {
			if done[i] {
				continue
			}
			stepDone, err := m.Step()
			if err != nil {
				errs[i], done[i] = err, true
				active--
				continue
			}
			if stepDone {
				errs[i] = m.Finish()
				done[i] = true
				active--
			}
		}
	}
	return errs
}
