package core

import (
	"fmt"

	"harvsim/internal/la"
)

// System composes component blocks into the global linearised state-space
// model of paper Eq. (2). Building the system computes the global state
// and terminal-variable indexing; blocks connected to the same terminal
// name share the variable, which is how the composite model of Section
// III-E eliminates the inter-block terminals.
type System struct {
	blocks []Block

	termNames []string
	termIdx   map[string]int

	xOff    []int   // per block: offset of its states in the global x
	eqOff   []int   // per block: offset of its algebraic rows
	termMap [][]int // per block: local terminal -> global terminal index

	nx, ny int
	built  bool

	// Global linearisation storage (paper Eq. 2), stamped by blocks.
	Jxx *la.Matrix // N x N
	Jxy *la.Matrix // N x M
	Jyx *la.Matrix // M x N
	Jyy *la.Matrix // M x M
	Ex  []float64  // N
	Ey  []float64  // M

	dirty bool // a parameter change invalidated the linearisation

	// scratch for per-block local views
	yLocal [][]float64

	// Optional workspace recycling: when pool is set before Build, the
	// Jacobian/excitation storage (and the engine scratch of any Engine
	// attached to this system) comes from a pooled Workspace instead of
	// fresh allocations.
	pool *WorkspacePool
	ws   *Workspace
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{termIdx: make(map[string]int)}
}

// AddBlock appends a component block. Must be called before Build.
func (s *System) AddBlock(b Block) {
	if s.built {
		panic("core: AddBlock after Build")
	}
	s.blocks = append(s.blocks, b)
}

// Build finalises the composition: assigns offsets, verifies that the
// algebraic system is square (equations == terminal variables), and
// allocates the global Jacobian storage.
func (s *System) Build() error {
	if s.built {
		return nil
	}
	if len(s.blocks) == 0 {
		return fmt.Errorf("core: system has no blocks")
	}
	names := make(map[string]bool)
	s.xOff = make([]int, len(s.blocks))
	s.eqOff = make([]int, len(s.blocks))
	s.termMap = make([][]int, len(s.blocks))
	s.yLocal = make([][]float64, len(s.blocks))
	nx, neq := 0, 0
	for i, b := range s.blocks {
		if names[b.Name()] {
			return fmt.Errorf("core: duplicate block name %q", b.Name())
		}
		names[b.Name()] = true
		s.xOff[i] = nx
		s.eqOff[i] = neq
		nx += b.NumStates()
		neq += b.NumEquations()
		terms := b.Terminals()
		s.termMap[i] = make([]int, len(terms))
		s.yLocal[i] = make([]float64, len(terms))
		for k, name := range terms {
			idx, ok := s.termIdx[name]
			if !ok {
				idx = len(s.termNames)
				s.termIdx[name] = idx
				s.termNames = append(s.termNames, name)
			}
			s.termMap[i][k] = idx
		}
	}
	s.nx = nx
	s.ny = len(s.termNames)
	if neq != s.ny {
		return fmt.Errorf("core: algebraic system not square: %d equations for %d terminal variables",
			neq, s.ny)
	}
	if s.pool != nil {
		// Recycled storage: zero it — blocks stamp only their own
		// entries and rely on untouched entries being zero.
		s.ws = s.pool.Get(nx, s.ny)
		s.Jxx, s.Jxy, s.Jyx, s.Jyy = s.ws.jxx, s.ws.jxy, s.ws.jyx, s.ws.jyy
		s.Ex, s.Ey = s.ws.ex, s.ws.ey
		s.Jxx.Zero()
		s.Jxy.Zero()
		s.Jyx.Zero()
		s.Jyy.Zero()
		la.ZeroVec(s.Ex)
		la.ZeroVec(s.Ey)
	} else {
		s.Jxx = la.NewMatrix(nx, nx)
		s.Jxy = la.NewMatrix(nx, s.ny)
		s.Jyx = la.NewMatrix(s.ny, nx)
		s.Jyy = la.NewMatrix(s.ny, s.ny)
		s.Ex = make([]float64, nx)
		s.Ey = make([]float64, s.ny)
	}
	s.built = true
	s.dirty = true
	return nil
}

// UsePool directs Build to draw the linearisation storage (and the march
// scratch of any Engine running on this system) from the pool's recycled
// workspaces. Must be called before Build; a nil pool is a no-op.
func (s *System) UsePool(p *WorkspacePool) {
	if s.built {
		panic("core: UsePool after Build")
	}
	s.pool = p
}

// Workspace returns the pooled workspace backing this system, or nil
// when the system owns its storage.
func (s *System) Workspace() *Workspace { return s.ws }

// Release returns the system's workspace to the pool it came from. The
// system and every engine bound to it must not be used afterwards: their
// storage now belongs to the pool and will be handed to the next Get.
// Release on a system without a pooled workspace is a no-op.
func (s *System) Release() {
	if s.ws == nil {
		return
	}
	if s.pool != nil {
		s.pool.Put(s.ws)
	}
	s.ws = nil
	s.Jxx, s.Jxy, s.Jyx, s.Jyy = nil, nil, nil, nil
	s.Ex, s.Ey = nil, nil
}

// MustBuild is Build that panics on error.
func (s *System) MustBuild() {
	if err := s.Build(); err != nil {
		panic(err)
	}
}

// NX returns the global state count N.
func (s *System) NX() int { return s.nx }

// NY returns the global terminal-variable count M.
func (s *System) NY() int { return s.ny }

// Blocks returns the composed blocks.
func (s *System) Blocks() []Block { return s.blocks }

// Terminal returns the global index of a terminal variable name,
// building the system first if necessary.
func (s *System) Terminal(name string) (int, bool) {
	s.MustBuild()
	i, ok := s.termIdx[name]
	return i, ok
}

// MustTerminal is Terminal that panics when the name is unknown.
func (s *System) MustTerminal(name string) int {
	i, ok := s.Terminal(name)
	if !ok {
		panic(fmt.Sprintf("core: unknown terminal %q", name))
	}
	return i
}

// TerminalNames returns the terminal variable names in global order.
func (s *System) TerminalNames() []string { return s.termNames }

// StateOffset returns the offset of the named block's states in the
// global state vector, building the system first if necessary.
func (s *System) StateOffset(blockName string) (int, bool) {
	s.MustBuild()
	for i, b := range s.blocks {
		if b.Name() == blockName {
			return s.xOff[i], true
		}
	}
	return 0, false
}

// MustStateOffset is StateOffset that panics when the block is unknown.
func (s *System) MustStateOffset(blockName string) int {
	off, ok := s.StateOffset(blockName)
	if !ok {
		panic(fmt.Sprintf("core: unknown block %q", blockName))
	}
	return off
}

// InitState writes the blocks' initial conditions into x (length NX).
func (s *System) InitState(x []float64) {
	if len(x) != s.nx {
		panic("core: InitState length mismatch")
	}
	for i, b := range s.blocks {
		b.InitState(x[s.xOff[i] : s.xOff[i]+b.NumStates()])
	}
}

// Invalidate marks the current linearisation stale, e.g. after a digital
// event changed a block parameter (load mode, tuning force). The next
// Linearise call will report a change regardless of block deltas.
func (s *System) Invalidate() { s.dirty = true }

// LineariseResetter is implemented by blocks whose Linearise caches
// stamp state (last PWL segment, last tangent) to skip redundant
// restamping. ResetLinearisation discards those caches so the next
// Linearise stamps everything afresh, exactly as a newly constructed
// block would.
type LineariseResetter interface {
	ResetLinearisation()
}

// ResetLinearisation invalidates the system AND every block's cached
// stamp state. Reusing a system for a new run requires this rather than
// plain Invalidate: blocks whose change-detection thresholds would
// tolerate the previous run's final tangent must restamp from the fresh
// initial operating point, or the reused run would differ in the last
// bits from a freshly assembled one.
func (s *System) ResetLinearisation() {
	s.dirty = true
	for _, b := range s.blocks {
		if r, ok := b.(LineariseResetter); ok {
			r.ResetLinearisation()
		}
	}
}

// gatherLocalY fills the per-block terminal value views from the global y.
func (s *System) gatherLocalY(i int, y []float64) []float64 {
	loc := s.yLocal[i]
	for k, g := range s.termMap[i] {
		loc[k] = y[g]
	}
	return loc
}

// Linearise refreshes the global linearised model at operating point
// (t, x, y) by delegating to every block, and reports whether any
// Jacobian entry changed (always true after Invalidate).
func (s *System) Linearise(t float64, x, y []float64) (changed bool) {
	if !s.built {
		panic("core: Linearise before Build")
	}
	changed = s.dirty
	for i, b := range s.blocks {
		xl := x[s.xOff[i] : s.xOff[i]+b.NumStates()]
		yl := s.gatherLocalY(i, y)
		if b.Linearise(t, xl, yl, Stamp{sys: s, blk: i}) {
			changed = true
		}
	}
	s.dirty = false
	return changed
}

// EvalNonlinear assembles the exact global residual functions
// fx (length NX) and fy (length NY) at (t, x, y) from the blocks' device
// equations. Used by the implicit baseline engines.
func (s *System) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	if len(fx) != s.nx || len(fy) != s.ny || len(x) != s.nx || len(y) != s.ny {
		panic("core: EvalNonlinear length mismatch")
	}
	for i, b := range s.blocks {
		xl := x[s.xOff[i] : s.xOff[i]+b.NumStates()]
		yl := s.gatherLocalY(i, y)
		fxl := fx[s.xOff[i] : s.xOff[i]+b.NumStates()]
		fyl := fy[s.eqOff[i] : s.eqOff[i]+b.NumEquations()]
		b.EvalNonlinear(t, xl, yl, fxl, fyl)
	}
}

// JacNonlinear stamps the exact global Jacobians at (t, x, y) into the
// system's matrices (overwriting the PWL linearisation stamps — implicit
// engines own the storage while they run).
func (s *System) JacNonlinear(t float64, x, y []float64) {
	for i, b := range s.blocks {
		xl := x[s.xOff[i] : s.xOff[i]+b.NumStates()]
		yl := s.gatherLocalY(i, y)
		b.JacNonlinear(t, xl, yl, Stamp{sys: s, blk: i})
	}
	s.dirty = true // PWL engines must re-stamp afterwards
}
