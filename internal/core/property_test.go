package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ladderBlock is a randomly generated passive RC ladder driven from its
// terminal pair: states are the node voltages of an N-node chain with
// per-node capacitance and series/shunt conductances. It is used for
// property-based testing of the engine: any such network is passive, so
// the simulated voltages must remain inside the source's range.
type ladderBlock struct {
	name    string
	gSer    []float64 // len n: series conductance from previous node
	gSh     []float64 // len n: shunt conductance to ground
	c       []float64 // len n: node capacitance
	stamped bool
}

func newLadder(name string, r *rand.Rand, n int) *ladderBlock {
	b := &ladderBlock{name: name}
	for i := 0; i < n; i++ {
		b.gSer = append(b.gSer, 1e-4+r.Float64()*1e-2)
		b.gSh = append(b.gSh, r.Float64()*1e-3)
		b.c = append(b.c, 1e-6+r.Float64()*1e-4)
	}
	return b
}

func (b *ladderBlock) Name() string        { return b.name }
func (b *ladderBlock) NumStates() int      { return len(b.c) }
func (b *ladderBlock) NumEquations() int   { return 1 }
func (b *ladderBlock) Terminals() []string { return []string{"Vp", "Ip"} }
func (b *ladderBlock) InitState(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

func (b *ladderBlock) Linearise(t float64, x, y []float64, st Stamp) bool {
	if b.stamped {
		return false
	}
	n := len(b.c)
	for i := 0; i < n; i++ {
		// Node i: series from node i-1 (or the terminal), series to node
		// i+1, shunt to ground.
		var diag float64
		if i == 0 {
			st.B(0, 0, b.gSer[0]/b.c[0])
			diag += b.gSer[0]
		} else {
			st.A(i, i-1, b.gSer[i]/b.c[i])
			diag += b.gSer[i]
		}
		if i+1 < n {
			st.A(i, i+1, b.gSer[i+1]/b.c[i])
			diag += b.gSer[i+1]
		}
		diag += b.gSh[i]
		st.A(i, i, -diag/b.c[i])
	}
	// Terminal relation: 0 = Ip - gSer[0]*(Vp - V0).
	st.D(0, 0, -b.gSer[0])
	st.D(0, 1, 1)
	st.C(0, 0, b.gSer[0])
	b.stamped = true
	return true
}

func (b *ladderBlock) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	n := len(b.c)
	for i := 0; i < n; i++ {
		var sum float64
		if i == 0 {
			sum += b.gSer[0] * (y[0] - x[0])
		} else {
			sum += b.gSer[i] * (x[i-1] - x[i])
		}
		if i+1 < n {
			sum += b.gSer[i+1] * (x[i+1] - x[i])
		}
		sum -= b.gSh[i] * x[i]
		fx[i] = sum / b.c[i]
	}
	fy[0] = y[1] - b.gSer[0]*(y[0]-x[0])
}

func (b *ladderBlock) JacNonlinear(t float64, x, y []float64, st Stamp) {
	b.stamped = false
	b.Linearise(t, x, y, st)
	b.stamped = false
}

// TestPropertyPassiveLadderBounded: for random passive RC ladders driven
// by a bounded source, every node voltage stays within the source range
// for the whole run — the physical passivity invariant the paper's
// stability argument rests on.
func TestPropertyPassiveLadderBounded(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%6)
		amp := 0.5 + 4*r.Float64()
		freq := 20 + 200*r.Float64()
		sys := NewSystem()
		sys.AddBlock(&srcBlock{name: "src", v: func(tm float64) float64 {
			return amp * math.Sin(2*math.Pi*freq*tm)
		}})
		sys.AddBlock(newLadder("lad", r, n))
		eng := NewEngine(sys)
		eng.Ctl.HMax = 2e-4
		worst := 0.0
		eng.Observe(func(tm float64, x, y []float64) {
			for _, v := range x {
				if a := math.Abs(v); a > worst {
					worst = a
				}
			}
		})
		if err := eng.Run(0, 0.05); err != nil {
			return false
		}
		return worst <= amp*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

// TestPropertyTerminalRelationHolds: at every observed point the
// eliminated terminal variables satisfy the block's algebraic relation
// to solver precision, for random ladders.
func TestPropertyTerminalRelationHolds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%5)
		lad := newLadder("lad", r, n)
		sys := NewSystem()
		sys.AddBlock(&srcBlock{name: "src", v: func(tm float64) float64 {
			return math.Sin(2 * math.Pi * 60 * tm)
		}})
		sys.AddBlock(lad)
		eng := NewEngine(sys)
		eng.Ctl.HMax = 2e-4
		worst := 0.0
		eng.Observe(func(tm float64, x, y []float64) {
			res := y[1] - lad.gSer[0]*(y[0]-x[0])
			if a := math.Abs(res); a > worst {
				worst = a
			}
		})
		if err := eng.Run(0, 0.03); err != nil {
			return false
		}
		return worst < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

// TestPropertyOrderConsistency: for random ladders, running the engine
// at AB order 1 and order 4 must agree on the final state within the
// accuracy tolerance scale — the order changes efficiency, not the
// solution.
func TestPropertyOrderConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(r.Intn(4))
		mk := func() *System {
			rr := rand.New(rand.NewSource(seed)) // same network both times
			_ = rr.Int63()
			sys := NewSystem()
			sys.AddBlock(&srcBlock{name: "src", v: func(tm float64) float64 {
				return math.Sin(2 * math.Pi * 50 * tm)
			}})
			sys.AddBlock(newLadder("lad", rand.New(rand.NewSource(seed+1)), n))
			return sys
		}
		run := func(order int) ([]float64, error) {
			eng := NewEngine(mk())
			eng.Order = order
			eng.Ctl.HMax = 1e-4
			if err := eng.Run(0, 0.02); err != nil {
				return nil, err
			}
			out := make([]float64, len(eng.State()))
			copy(out, eng.State())
			return out, nil
		}
		x1, err1 := run(1)
		x4, err4 := run(4)
		if err1 != nil || err4 != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x4[i]) > 1e-2*(1+math.Abs(x4[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

// TestPropertyEngineMatchesAnalyticRC: single-pole RC driven by a step
// has a closed form; random time constants must match it.
func TestPropertyEngineMatchesAnalyticRC(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		res := 100 + 10000*r.Float64()
		c := 1e-7 + 1e-5*r.Float64()
		v0 := 0.5 + 5*r.Float64()
		sys := NewSystem()
		sys.AddBlock(&srcBlock{name: "src", v: func(float64) float64 { return v0 }})
		sys.AddBlock(&rcBlock{name: "rc", r: res, c: c})
		eng := NewEngine(sys)
		tau := res * c
		eng.Ctl.HMax = tau / 20
		dur := 3 * tau
		if err := eng.Run(0, dur); err != nil {
			return false
		}
		want := v0 * (1 - math.Exp(-dur/tau))
		return math.Abs(eng.State()[0]-want) < 5e-3*v0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

var _ = fmt.Sprintf // keep fmt available for debugging edits
