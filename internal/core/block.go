// Package core implements the paper's primary contribution: the
// linearised state-space formulation and its explicit march-in-time
// solution for complete mixed-technology energy harvesting systems.
//
// The analogue part of the system is modelled as (paper Eq. 1)
//
//	[ xdot(t) ]   [ fx(x(t), y(t)) ]   [ ex(t) ]
//	[   0     ] = [ fy(x(t), y(t)) ] + [   0   ]
//
// where x are N state variables (displacement, velocity, flux, capacitor
// voltages, inductor currents) and y are M non-state variables — the
// terminal voltages and currents that connect individual component
// blocks (paper Fig. 3). At each time point the model is linearised
// (Eq. 2) into the Jacobian blocks Jxx, Jxy, Jyx, Jyy; the non-state
// variables are eliminated by the small linear solve Jyy*y = -(Jyx*x+ey)
// (Eq. 4); and the state variables are advanced by an explicit
// variable-step Adams-Bashforth formula (Eq. 5) whose step size is kept
// inside the diagonal-dominance stability bound (Eqs. 6-7).
package core

// Block is one component block of the analogue part of the system: it
// contributes local state equations and local algebraic (terminal
// relation) equations, expressed against the global terminal variables
// it declares (paper Fig. 3).
//
// A block provides two views of the same device equations:
//
//   - Linearise: the piecewise/locally linearised Jacobian stamps used by
//     the proposed explicit engine. For nonlinear devices these come from
//     lookup tables (see internal/pwl), so a refresh is O(1).
//   - EvalNonlinear/JacNonlinear: the exact nonlinear residuals and exact
//     derivatives, used by the Newton-Raphson implicit baseline engines
//     (the "existing technique" of the paper's Tables I-II).
type Block interface {
	// Name identifies the block instance (unique within a System).
	Name() string

	// NumStates returns the number of local state variables.
	NumStates() int

	// NumEquations returns the number of local algebraic equations the
	// block contributes. Across the whole system the equation count must
	// equal the number of distinct terminal variables so that Jyy is
	// square.
	NumEquations() int

	// Terminals returns the names of the global terminal variables this
	// block references, in local order. Blocks sharing a name share the
	// variable — that is what connects them.
	Terminals() []string

	// InitState writes the block's initial local state into x
	// (len == NumStates()).
	InitState(x []float64)

	// Linearise refreshes the block's stamps of the global linearised
	// model at operating point (t, x, y) where x is the local state view
	// and y holds the values of the block's terminals (local order).
	// It must write state rows
	//
	//	xdot_i = sum_j A_ij x_j + sum_k B_ik y_k + E_i
	//
	// and algebraic rows
	//
	//	0 = sum_j C_ej x_j + sum_k D_ek y_k + G_e
	//
	// through st. The returned flag reports whether any Jacobian entry
	// (A..D) changed relative to the previous call; excitation entries
	// (E, G) may change freely without reporting. The engine uses the
	// flag for Jyy refactorisation and local-linearisation-error
	// monitoring (paper Eq. 3).
	Linearise(t float64, x, y []float64, st Stamp) (changed bool)

	// EvalNonlinear writes the exact state derivatives fx and algebraic
	// residuals fy at (t, x, y), local views as in Linearise.
	EvalNonlinear(t float64, x, y []float64, fx, fy []float64)

	// JacNonlinear stamps the exact Jacobians of EvalNonlinear at
	// (t, x, y) through st (same row/column conventions as Linearise,
	// including the E/G excitation entries, which Newton engines ignore).
	JacNonlinear(t float64, x, y []float64, st Stamp)
}

// Stamp gives a block offset-translated write access to the global
// linearisation storage. Row/column indices are local to the block;
// terminal column indices follow the order of Terminals().
type Stamp struct {
	sys *System
	blk int
}

// A sets the local state-to-state Jacobian entry (row i, column j).
func (s Stamp) A(i, j int, v float64) {
	off := s.sys.xOff[s.blk]
	s.sys.Jxx.Set(off+i, off+j, v)
}

// B sets the local state-to-terminal Jacobian entry (row i, terminal k).
func (s Stamp) B(i, k int, v float64) {
	s.sys.Jxy.Set(s.sys.xOff[s.blk]+i, s.sys.termMap[s.blk][k], v)
}

// C sets the local equation-to-state Jacobian entry (equation e, column j).
func (s Stamp) C(e, j int, v float64) {
	s.sys.Jyx.Set(s.sys.eqOff[s.blk]+e, s.sys.xOff[s.blk]+j, v)
}

// D sets the local equation-to-terminal Jacobian entry (equation e,
// terminal k).
func (s Stamp) D(e, k int, v float64) {
	s.sys.Jyy.Set(s.sys.eqOff[s.blk]+e, s.sys.termMap[s.blk][k], v)
}

// E sets the local state excitation entry (row i).
func (s Stamp) E(i int, v float64) {
	s.sys.Ex[s.sys.xOff[s.blk]+i] = v
}

// G sets the local algebraic excitation entry (equation e).
func (s Stamp) G(e int, v float64) {
	s.sys.Ey[s.sys.eqOff[s.blk]+e] = v
}
