package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"harvsim/internal/la"
	"harvsim/internal/ode"
)

// Observer is called after every accepted time point with the current
// state and terminal-variable vectors. The slices are views and must not
// be retained.
type Observer func(t float64, x, y []float64)

// Events lets a digital kernel co-simulate with the analogue engine: the
// engine never steps across the next pending event time, and calls Fire
// when it lands on one. Fire processes every event due at or before now
// and returns true when the digital activity changed an analogue
// parameter (a discontinuity), which invalidates the linearisation and
// restarts the multistep history — possible precisely because the
// explicit solution is a single march-in-time sweep with no backtracking
// (paper Section II).
type Events interface {
	// Next returns the earliest pending event time, or +Inf when none.
	Next() float64
	// Fire executes all events due at or before now.
	Fire(now float64) (analogueChanged bool)
}

// Stats reports the work an engine run performed.
type Stats struct {
	Steps               int     // accepted steps
	Rejected            int     // rejected step attempts
	Refreshes           int     // linearisation refreshes (Jyy refactorisations)
	YSolves             int     // terminal-variable elimination solves
	EventsFired         int     // digital event batches fired
	Restarts            int     // multistep history restarts (discontinuities)
	StabilityRecomputes int     // reduced-matrix stability analyses
	MaxJacChange        float64 // largest relative Jacobian change seen (LLE monitor)
	HStabMin            float64 // tightest stability cap encountered
	HMean               float64 // mean accepted step
	SimTime             float64 // simulated span

	// Allocs/AllocBytes are the process-wide heap allocation count and
	// bytes attributed to the run, populated only when Engine.MeasureAllocs
	// is set. They are exact for a run with no concurrent allocation (the
	// serial benchtab path) and an upper bound otherwise.
	Allocs     uint64
	AllocBytes uint64
}

// PhaseTimes accumulates wall time per engine refresh phase when a run
// is traced (Engine.Phases). Refactor covers the Jyy factorisation of
// every linearisation refresh; Stability covers the reduced-matrix
// stability analyses. The accumulators are observer-grade: attaching
// them changes no numerical behaviour, and a nil pointer (the default)
// costs nothing on the warm step.
type PhaseTimes struct {
	Refactor  time.Duration
	Stability time.Duration
}

// Engine is the proposed linearised state-space simulator: explicit
// integration (variable-step Adams-Bashforth by default) of the
// linearised model with terminal-variable elimination at every step.
type Engine struct {
	Sys   *System
	Ctl   ode.Controller
	Order int // Adams-Bashforth order (1..ode.MaxABOrder), default 4

	Events    Events     // optional digital kernel
	Observers []Observer // waveform probes

	// LLETol bounds the per-refresh relative Jacobian change (the local
	// linearisation error monitor of paper Eq. 3); when exceeded the next
	// step is halved. Default 0.5.
	LLETol float64

	// ResolveSegments enables one extra linearise/solve pass per step
	// when the freshly solved terminal variables land on a different PWL
	// segment than the one used for the linearisation. Default true.
	ResolveSegments bool

	// StabilityFactor scales the stability step cap (default 1.0).
	// Values above 1 deliberately violate the diagonal-dominance bound —
	// used by the stability ablation to demonstrate the divergence the
	// paper's Eq. 7 predicts.
	StabilityFactor float64

	// MeasureAllocs makes Run record the heap allocations attributed to
	// the run in Stats.Allocs/AllocBytes (two runtime.ReadMemStats calls
	// per Run — cheap for single runs, but process-wide, so leave it off
	// inside concurrent batch workers).
	MeasureAllocs bool

	// Phases, when set, accumulates wall time spent in the engine's two
	// expensive refresh phases — Jyy refactorisation and the reduced-
	// matrix stability analysis — the engine-level tail of the sweep
	// fabric's tracing (internal/tracing). nil (the default) records
	// nothing: the march pays two nil checks per refresh and none per
	// step, so the warm step's zero-allocation contract is untouched
	// (pinned by TestTraceOffZeroOverhead and the trace-overhead
	// benchmark gate).
	Phases *PhaseTimes

	Stats Stats

	// ws owns all run storage. It is bound on first use — from the
	// system's pooled workspace when one exists, freshly allocated
	// otherwise — and reused by every subsequent Run of the same shape.
	ws *Workspace

	// share, when set (by EnsembleEngine), lets this member serve its
	// elimination factorisations and stability analyses from a content-
	// addressed store common to the whole lockstep ensemble. Every hit is
	// verified against the exact matrix contents, so a shared result is
	// bit-identical to the private computation it replaces — members that
	// drift apart (a Duffing retangent) simply stop matching and fall
	// back to private work.
	share *EnsembleShared

	// luRef is the factorisation solveY and refreshStability use: luYY
	// when the engine owns its factors, an immutable shared entry when
	// the ensemble store served one.
	luRef *la.LU

	// Views into ws, bound by ensureWorkspace.
	x, y, yRHS, f []float64
	xNext, xLow   []float64
	errv          []float64
	luYY          *la.LU
	red           *la.Matrix // reduced state matrix Jxx - Jxy*inv(Jyy)*Jyx
	bal           *la.Matrix // balanced copy of red for stability analysis
	kMat          *la.Matrix // inv(Jyy)*Jyx
	jPrev         [4]*la.Matrix
	hist          *ode.History
	times         []float64
	coefP, coefL  []float64
	dScale        []float64 // cached balancing scales

	hStab      float64 // forward-Euler real-mode cap (diagnostic)
	hRealFE    float64 // real-mode FE cap from the balanced analysis
	rhoOsc     float64 // Gershgorin bound on oscillatory-mode |lambda|
	driftAccum float64 // accumulated Jacobian drift since last analysis
	sinceStab  int     // refreshes since the last stability analysis
	scaleAge   int

	// March state, valid between Begin and Finish.
	running     bool
	t0, t, tEnd float64
	h, hSum     float64
	shrinkNext  float64
	allocsBase  uint64
	allocBytes0 uint64
}

// NewEngine returns an engine for the (built or unbuilt) system with
// default controller settings.
func NewEngine(sys *System) *Engine {
	return &Engine{
		Sys:             sys,
		Ctl:             ode.DefaultController(),
		Order:           4,
		LLETol:          0.5,
		ResolveSegments: true,
	}
}

// Observe registers a waveform probe.
func (e *Engine) Observe(o Observer) { e.Observers = append(e.Observers, o) }

// State returns the engine's current state vector (live view).
func (e *Engine) State() []float64 { return e.x }

// Terminals returns the engine's current terminal-variable vector (live
// view).
func (e *Engine) Terminals() []float64 { return e.y }

// ensureWorkspace binds the engine to run storage: the system's pooled
// workspace when one exists, the engine's previous workspace when the
// shape still matches, or a freshly allocated one. After the first call
// nothing here allocates, which is what makes Run re-runnable and Reset
// cheap.
func (e *Engine) ensureWorkspace() error {
	if err := e.Sys.Build(); err != nil {
		return err
	}
	if e.Order < 1 || e.Order > ode.MaxABOrder {
		return fmt.Errorf("core: AB order %d out of range [1,%d]", e.Order, ode.MaxABOrder)
	}
	nx, ny := e.Sys.NX(), e.Sys.NY()
	ws := e.Sys.Workspace()
	if ws != nil && ws.owner != nil && ws.owner != e {
		// Another engine already marches on the system's workspace; this
		// one gets private storage rather than aliasing its state.
		ws = nil
	}
	if ws == nil {
		ws = e.ws
	}
	if ws == nil || !ws.Fits(nx, ny) {
		ws = NewWorkspace(nx, ny)
	}
	ws.owner = e
	if e.ws == ws && e.x != nil {
		return nil
	}
	e.ws = ws
	e.x, e.y, e.yRHS, e.f = ws.x, ws.y, ws.yRHS, ws.f
	e.xNext, e.xLow, e.errv = ws.xNext, ws.xLow, ws.errv
	e.luYY = ws.luYY
	e.luRef = ws.luYY
	e.red, e.bal, e.kMat = ws.red, ws.bal, ws.kM
	e.jPrev = ws.jPrev
	e.hist = ws.hist
	e.times, e.coefP, e.coefL = ws.times, ws.coefP, ws.coefL
	e.dScale = ws.dScale
	return nil
}

// Workspace returns the workspace backing the engine (nil before the
// first Begin/Run when the system has no pooled workspace either).
func (e *Engine) Workspace() *Workspace { return e.ws }

// refresh refactors Jyy (needed for the next elimination solve) and, when
// the Jacobian moved materially since the last stability analysis,
// recomputes the reduced state matrix and its stability cap. Returns the
// relative Jacobian change for the LLE monitor.
//
// Splitting the cheap refactorisation (every PWL segment change) from
// the stability analysis (only on material drift, with a safety margin
// absorbing the rest) keeps the per-step cost of the explicit march at a
// few hundred flops, which is where the technique's speedup lives.
func (e *Engine) refresh(first bool) (relChange float64, err error) {
	s := e.Sys
	var phaseStart time.Time
	if e.Phases != nil {
		phaseStart = time.Now()
	}
	if e.share != nil {
		lu, err := e.share.factorOf(s.Jyy)
		if err != nil {
			return 0, fmt.Errorf("core: terminal elimination matrix singular: %w", err)
		}
		e.luRef = lu
	} else {
		if err := e.luYY.Factor(s.Jyy); err != nil {
			return 0, fmt.Errorf("core: terminal elimination matrix singular: %w", err)
		}
		e.luRef = e.luYY
	}
	if e.Phases != nil {
		e.Phases.Refactor += time.Since(phaseStart)
	}
	if !first {
		relChange = e.jacChange()
	}
	e.jPrev[0].CopyFrom(s.Jxx)
	e.jPrev[1].CopyFrom(s.Jxy)
	e.jPrev[2].CopyFrom(s.Jyx)
	e.jPrev[3].CopyFrom(s.Jyy)
	e.Stats.Refreshes++
	if relChange > e.Stats.MaxJacChange {
		e.Stats.MaxJacChange = relChange
	}
	e.driftAccum += relChange
	e.sinceStab++
	if first || e.driftAccum > 0.10 || e.sinceStab >= 64 {
		if err := e.refreshStability(); err != nil {
			return relChange, err
		}
	}
	return relChange, nil
}

// refreshStability recomputes the reduced state matrix
// Jxx - Jxy*inv(Jyy)*Jyx and its explicit-integration step caps. In a
// lockstep ensemble the analysis itself is served from the shared store
// when another member already did it for identical Jacobians; the
// bookkeeping tail (cap tracking, drift reset, stats) is always
// per-member, so a served member's counters match its solo run exactly.
func (e *Engine) refreshStability() error {
	var phaseStart time.Time
	if e.Phases != nil {
		phaseStart = time.Now()
	}
	if e.share != nil {
		if err := e.share.stabilityFor(e); err != nil {
			return err
		}
	} else if err := e.computeStability(); err != nil {
		return err
	}
	if e.Phases != nil {
		e.Phases.Stability += time.Since(phaseStart)
	}
	hs := e.stabCapFor(1)
	e.hStab = e.hRealFE
	if hs < e.Stats.HStabMin {
		e.Stats.HStabMin = hs
	}
	e.driftAccum = 0
	e.sinceStab = 0
	e.Stats.StabilityRecomputes++
	return nil
}

// computeStability performs the reduced-matrix stability analysis,
// setting red, dScale/scaleAge, hRealFE and rhoOsc.
func (e *Engine) computeStability() error {
	s := e.Sys
	// K = inv(Jyy) * Jyx, column by column.
	if err := e.luRef.SolveMatrix(e.kMat, s.Jyx); err != nil {
		return err
	}
	// red = Jxx - Jxy*K.
	e.red.CopyFrom(s.Jxx)
	nx, ny := s.NX(), s.NY()
	for i := 0; i < nx; i++ {
		row := e.red.Row(i)
		bRow := s.Jxy.Row(i)
		for k := 0; k < ny; k++ {
			bv := bRow[k]
			if bv == 0 {
				continue
			}
			kRow := e.kMat.Row(k)
			for j := 0; j < nx; j++ {
				row[j] -= bv * kRow[j]
			}
		}
	}
	// Stability analysis of the reduced matrix: balance (an eigenvalue-
	// preserving similarity that removes physical-unit scaling artefacts
	// such as 1/L vs 1/C off-diagonals), then split the rows into fast
	// real modes — handled by the paper's diagonal-dominance criterion —
	// and oscillatory modes, bounded through the Gershgorin disc reach
	// and the imaginary-axis extent of the Adams-Bashforth stability
	// region.
	// The balancing scales drift slowly; recompute them occasionally and
	// re-apply the cached similarity in a single cheap pass otherwise.
	if e.scaleAge >= 16 {
		la.BalanceScales(e.red, 6, e.dScale)
		e.scaleAge = 0
	}
	e.scaleAge++
	la.ApplyBalance(e.bal, e.red, e.dScale)
	hReal, rhoOsc, unstable := la.StepLimitProfile(e.bal)
	if unstable {
		// A locally non-passive dominant row: fall back to the spectral
		// radius of the full reduced matrix (paper Eq. 7).
		rho := la.SpectralRadiusEstimateInto(e.bal, 100, e.ws.powX, e.ws.powY)
		if rho > rhoOsc {
			rhoOsc = rho
		}
		hReal = math.Min(hReal, 0.5/math.Max(rho, 1e-300))
	}
	e.hRealFE = hReal
	e.rhoOsc = rhoOsc
	return nil
}

// jacChange returns the largest relative change of any Jacobian entry
// since the previous refresh — the paper's monitor for the local
// linearisation error (Eq. 3).
func (e *Engine) jacChange() float64 {
	var worst float64
	cur := [4]*la.Matrix{e.Sys.Jxx, e.Sys.Jxy, e.Sys.Jyx, e.Sys.Jyy}
	for m := range cur {
		c, p := cur[m].Data, e.jPrev[m].Data
		for i := range c {
			d := math.Abs(c[i] - p[i])
			if d == 0 {
				continue
			}
			r := d / (1 + math.Abs(p[i]))
			if r > worst {
				worst = r
			}
		}
	}
	return worst
}

// yElimRHS forms the elimination right-hand side -(Jyx*x + Ey) into
// yRHS. Split from solveY so EnsembleEngine can batch K members' RHS
// vectors into one la.SolveColumns call per shared factorisation.
func (e *Engine) yElimRHS() {
	s := e.Sys
	s.Jyx.MulVec(e.yRHS, e.x)
	for i := range e.yRHS {
		e.yRHS[i] = -(e.yRHS[i] + s.Ey[i])
	}
	e.Stats.YSolves++
}

// solveY eliminates the non-state variables at the current point:
// Jyy*y = -(Jyx*x + Ey) (paper Eq. 4).
func (e *Engine) solveY() error {
	e.yElimRHS()
	return e.luRef.Solve(e.y, e.yRHS)
}

// deriv computes xdot = Jxx*x + Jxy*y + Ex into e.f.
func (e *Engine) deriv() {
	s := e.Sys
	s.Jxx.MulVec(e.f, e.x)
	s.Jxy.MulVecAdd(e.f, 1, e.y)
	for i := range e.f {
		e.f[i] += s.Ex[i]
	}
}

// Begin prepares a march over [t0, tEnd]: binds the workspace, resets
// the run state, takes the blocks' initial conditions and establishes
// the first consistent linearisation. After Begin the engine is stepped
// with Step until done, then closed with Finish; Run does all three.
func (e *Engine) Begin(t0, tEnd float64) error {
	if err := e.beginPrepared(t0, tEnd); err != nil {
		return err
	}
	if err := e.solveY(); err != nil {
		return err
	}
	return e.beginFinish()
}

// beginPrepared runs Begin up to (but not including) the initial
// terminal-variable elimination: workspace binding, state reset, first
// linearisation and factorisation refresh. It is the seam the ensemble
// lockstep engine uses to batch the K members' initial eliminations
// through one shared factorisation; Begin is exactly beginPrepared +
// solveY + beginFinish.
func (e *Engine) beginPrepared(t0, tEnd float64) error {
	if tEnd <= t0 {
		return fmt.Errorf("core: empty time span [%g, %g]", t0, tEnd)
	}
	if err := e.ensureWorkspace(); err != nil {
		return err
	}
	e.Stats = Stats{HStabMin: math.Inf(1)}
	if e.MeasureAllocs {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		e.allocsBase, e.allocBytes0 = m.Mallocs, m.TotalAlloc
	}
	// Reused storage carries the previous run's values; clear everything
	// the first linearisation reads so a reused run is bit-identical to a
	// fresh one.
	la.ZeroVec(e.x)
	la.ZeroVec(e.y)
	e.hist.Reset()
	e.driftAccum, e.sinceStab = 0, 0
	e.scaleAge = 1 << 30 // force a balancing-scale recompute
	e.Sys.InitState(e.x)
	e.t0, e.t, e.tEnd = t0, t0, tEnd

	e.Sys.Linearise(e.t, e.x, e.y)
	if _, err := e.refresh(true); err != nil {
		return err
	}
	return nil
}

// beginFinish completes Begin after the initial elimination: the
// optional segment-resolution pass and the first step-size choice.
func (e *Engine) beginFinish() error {
	if e.ResolveSegments {
		if e.Sys.Linearise(e.t, e.x, e.y) {
			if _, err := e.refresh(true); err != nil {
				return err
			}
			if err := e.solveY(); err != nil {
				return err
			}
		}
	}

	e.h = e.Ctl.Clamp(math.Min(e.Ctl.HMax, (e.tEnd-e.t0)/10), e.stabCap())
	e.hSum = 0
	e.shrinkNext = 1.0
	e.running = true
	return nil
}

// Step advances the march by one accepted step (including any digital
// events landed on) and reports whether the horizon has been reached.
// After warm-up — once the traces and stability caches are sized — a
// step performs zero heap allocations; testing.AllocsPerRun pins this.
func (e *Engine) Step() (done bool, err error) {
	if !e.running {
		return false, fmt.Errorf("core: Step without Begin")
	}
	if e.t >= e.tEnd {
		return true, nil
	}
	// 1. Linearise at the current point (values known from the march)
	// and refresh the elimination factorisation if anything changed.
	if e.Sys.Linearise(e.t, e.x, e.y) {
		rel, err := e.refresh(false)
		if err != nil {
			return false, err
		}
		if rel > e.LLETol {
			e.shrinkNext = 0.5
		}
	}
	// 2. Eliminate the non-state variables (Eq. 4).
	if err := e.solveY(); err != nil {
		return false, err
	}
	if e.ResolveSegments && e.Sys.Linearise(e.t, e.x, e.y) {
		if _, err := e.refresh(false); err != nil {
			return false, err
		}
		if err := e.solveY(); err != nil {
			return false, err
		}
	}
	// 3. Observe the consistent point (t, x, y).
	for _, o := range e.Observers {
		o(e.t, e.x, e.y)
	}
	// 4. Derivative and history for the Adams-Bashforth formula.
	e.deriv()
	if !la.AllFinite(e.f) {
		return false, fmt.Errorf("core: non-finite derivative at t=%g (diverged)", e.t)
	}
	e.hist.Push(e.t, e.f)

	// 5. Choose the step: accuracy-suggested h, stability cap,
	// event horizon, end of span.
	e.h *= e.shrinkNext
	e.shrinkNext = 1.0
	e.h = e.Ctl.Clamp(e.h, e.stabCap())
	horizon := e.tEnd
	if e.Events != nil {
		if te := e.Events.Next(); te > e.t && te < horizon {
			horizon = te
		}
	}
	hCapped := e.h
	if e.t+hCapped > horizon {
		hCapped = horizon - e.t
	}
	if hCapped <= 0 {
		hCapped = math.Min(e.Ctl.HMin, horizon-e.t)
	}

	// 6. Explicit update (Eq. 5) with embedded lower-order error
	// estimate; retry with a smaller step on tolerance failure.
	for attempt := 0; ; attempt++ {
		e.abUpdate(hCapped)
		errNorm := e.Ctl.ErrNorm(e.errv, e.x)
		accept, hNext := e.Ctl.Decide(hCapped, errNorm, e.abOrderUsed(), e.stabCap())
		if accept || attempt >= 25 {
			copy(e.x, e.xNext)
			e.t += hCapped
			e.Stats.Steps++
			e.hSum += hCapped
			e.h = hNext // horizon caps are transient; resume from the suggestion
			break
		}
		e.Stats.Rejected++
		hCapped = hNext
		if e.t+hCapped > horizon {
			hCapped = horizon - e.t
		}
	}

	// 7. Fire digital events when we land on the horizon.
	if e.Events != nil && e.Events.Next() <= e.t+1e-12 {
		e.Stats.EventsFired++
		if e.Events.Fire(e.t) {
			// Analogue discontinuity: restart the multistep history
			// and force a refresh.
			e.Sys.Invalidate()
			e.hist.Reset()
			e.Stats.Restarts++
			e.h = e.Ctl.Clamp(math.Min(e.h, 0.25*e.hStab), e.stabCap())
		}
	}
	return e.t >= e.tEnd, nil
}

// Finish establishes the final consistent point at the horizon, fires
// the observers on it and closes the run's statistics.
func (e *Engine) Finish() error {
	if !e.running {
		return fmt.Errorf("core: Finish without Begin")
	}
	e.running = false
	if e.Sys.Linearise(e.t, e.x, e.y) {
		if _, err := e.refresh(false); err != nil {
			return err
		}
	}
	if err := e.solveY(); err != nil {
		return err
	}
	for _, o := range e.Observers {
		o(e.t, e.x, e.y)
	}
	if e.Stats.Steps > 0 {
		e.Stats.HMean = e.hSum / float64(e.Stats.Steps)
	}
	e.Stats.SimTime = e.tEnd - e.t0
	if e.MeasureAllocs {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		e.Stats.Allocs = m.Mallocs - e.allocsBase
		e.Stats.AllocBytes = m.TotalAlloc - e.allocBytes0
	}
	return nil
}

// Run marches the system from t0 to tEnd. Initial conditions come from
// the blocks' InitState. Run may be called repeatedly: each call reuses
// the workspace bound on the first and restarts from the blocks' initial
// conditions (see Reset for the full reuse protocol).
func (e *Engine) Run(t0, tEnd float64) error {
	if err := e.Begin(t0, tEnd); err != nil {
		return err
	}
	for {
		done, err := e.Step()
		if err != nil {
			return err
		}
		if done {
			break
		}
	}
	return e.Finish()
}

// Reset returns the engine to its pre-run state while keeping every
// allocation: the workspace, history ring and stability caches stay
// bound, ready for the next Run of the same system. It also discards the
// blocks' cached linearisation stamps (System.ResetLinearisation) so the
// rerun restamps from the fresh initial operating point and reproduces a
// freshly assembled engine bit for bit. A Reset engine relinquishes its
// claim on a system-owned workspace, so a successor engine built on the
// same system (the Harvester.Reset + NewEngine flow) inherits the
// storage instead of allocating its own.
func (e *Engine) Reset() {
	e.running = false
	e.Stats = Stats{}
	if e.hist != nil {
		e.hist.Reset()
	}
	if e.ws != nil && e.ws.owner == e {
		e.ws.owner = nil
	}
	e.Sys.ResetLinearisation()
}

// abUpdate computes the Adams-Bashforth update of the highest available
// order into xNext and a one-order-lower companion into xLow; errv
// receives their difference (the local truncation error estimate).
func (e *Engine) abUpdate(h float64) {
	p := e.hist.Depth()
	if p > e.Order {
		p = e.Order
	}
	// The workspace ring holds up to MaxABOrder entries regardless of
	// e.Order; take the newest p abscissae only.
	for i := 0; i < p; i++ {
		ti, _ := e.hist.Entry(i)
		e.times[i] = ti
	}
	times := e.times[:p]
	ode.ABCoeffs(e.coefP[:p], times, h)
	copy(e.xNext, e.x)
	for i := 0; i < p; i++ {
		_, fi := e.hist.Entry(i)
		c := e.coefP[i]
		la.Axpy(c, fi, e.xNext)
	}
	if p == 1 {
		// No lower order available: error estimate from the Euler update
		// magnitude (conservative).
		for i := range e.errv {
			e.errv[i] = 0.5 * (e.xNext[i] - e.x[i])
		}
		return
	}
	ode.ABCoeffs(e.coefL[:p-1], times[:p-1], h)
	copy(e.xLow, e.x)
	for i := 0; i < p-1; i++ {
		_, fi := e.hist.Entry(i)
		la.Axpy(e.coefL[i], fi, e.xLow)
	}
	la.SubTo(e.errv, e.xNext, e.xLow)
}

// abOrderUsed reports the order of the last abUpdate.
func (e *Engine) abOrderUsed() int {
	p := e.hist.Depth()
	if p > e.Order {
		p = e.Order
	}
	if p < 1 {
		p = 1
	}
	return p
}

// stabCapFor returns the stability step cap for an update of order p:
// the minimum of the real-mode cap (forward-Euler diagonal-dominance
// limit scaled by the AB real-axis fraction) and the oscillatory-mode
// cap (AB imaginary-axis extent over the Gershgorin reach).
func (e *Engine) stabCapFor(p int) float64 {
	cap := e.hRealFE * ode.ABStabilityFraction(p)
	if e.rhoOsc > 0 {
		if osc := ode.ABImagExtent(p) / e.rhoOsc; osc < cap {
			cap = osc
		}
	}
	if e.StabilityFactor > 0 {
		cap *= e.StabilityFactor
	}
	return cap
}

// stabCap returns the stability step cap for the order the next update
// will use.
func (e *Engine) stabCap() float64 {
	p := e.hist.Depth()
	if p > e.Order {
		p = e.Order
	}
	if p < 1 {
		p = 1
	}
	return e.stabCapFor(p)
}

// HStab returns the current raw (forward-Euler) stability step cap
// before order scaling (diagnostic).
func (e *Engine) HStab() float64 { return e.hStab }

// Reduced returns the current reduced state matrix (diagnostic; live
// view, valid until the next refresh).
func (e *Engine) Reduced() *la.Matrix { return e.red }
