package core

import (
	"fmt"

	"harvsim/internal/la"
	"harvsim/internal/ode"
)

// Workspace owns every piece of per-shape storage a linearised
// state-space simulation needs: the system's global Jacobian/excitation
// storage (paper Eq. 2) and the engine's march scratch (state vectors,
// elimination LU, reduced/balanced matrices, Adams-Bashforth history
// ring, stability-iteration vectors). A workspace is bound to an exact
// shape (NX states, NY terminal variables); the Adams-Bashforth storage
// is sized for ode.MaxABOrder so one workspace serves any engine order.
//
// Workspaces exist so that repeated simulations of same-shape systems —
// a batch sweep over a design grid, a re-run after Engine.Reset — rebuild
// *state*, never *storage*: acquiring a pooled workspace replaces a dozen
// make/NewMatrix calls per job with a map lookup, and after the engine's
// warm-up a simulation step performs zero heap allocations.
type Workspace struct {
	nx, ny int

	// System linearisation storage (bound by System.Build when the
	// system was given a pool).
	jxx, jxy, jyx, jyy *la.Matrix
	ex, ey             []float64

	// owner is the engine whose march scratch this workspace backs.
	// Only one engine may bind a workspace: a second engine on the same
	// pooled system gets private storage instead of silently aliasing
	// (and clobbering) the first engine's state views. Cleared on Put.
	owner *Engine

	// Engine march scratch (bound by Engine on first use).
	x, y, yRHS, f []float64
	xNext, xLow   []float64
	errv          []float64
	luYY          *la.LU
	red, bal, kM  *la.Matrix
	jPrev         [4]*la.Matrix
	hist          *ode.History
	times         []float64
	coefP, coefL  []float64
	dScale        []float64
	powX, powY    []float64 // spectral-radius power-iteration scratch
}

// NewWorkspace allocates a workspace for an nx-state, ny-terminal system.
func NewWorkspace(nx, ny int) *Workspace {
	if nx < 0 || ny < 0 {
		panic(fmt.Sprintf("core: invalid workspace shape %dx%d", nx, ny))
	}
	return &Workspace{
		nx:  nx,
		ny:  ny,
		jxx: la.NewMatrix(nx, nx),
		jxy: la.NewMatrix(nx, ny),
		jyx: la.NewMatrix(ny, nx),
		jyy: la.NewMatrix(ny, ny),
		ex:  make([]float64, nx),
		ey:  make([]float64, ny),

		x:     make([]float64, nx),
		y:     make([]float64, ny),
		yRHS:  make([]float64, ny),
		f:     make([]float64, nx),
		xNext: make([]float64, nx),
		xLow:  make([]float64, nx),
		errv:  make([]float64, nx),
		luYY:  la.NewLU(ny),
		red:   la.NewMatrix(nx, nx),
		bal:   la.NewMatrix(nx, nx),
		kM:    la.NewMatrix(ny, nx),
		jPrev: [4]*la.Matrix{
			la.NewMatrix(nx, nx), la.NewMatrix(nx, ny),
			la.NewMatrix(ny, nx), la.NewMatrix(ny, ny),
		},
		hist:   ode.NewHistory(nx, ode.MaxABOrder),
		times:  make([]float64, ode.MaxABOrder),
		coefP:  make([]float64, ode.MaxABOrder),
		coefL:  make([]float64, ode.MaxABOrder),
		dScale: make([]float64, nx),
		powX:   make([]float64, nx),
		powY:   make([]float64, nx),
	}
}

// NX returns the workspace's state dimension.
func (w *Workspace) NX() int { return w.nx }

// NY returns the workspace's terminal-variable dimension.
func (w *Workspace) NY() int { return w.ny }

// Fits reports whether the workspace serves exactly the given shape.
// Exact matching (rather than >=) keeps reused runs bit-identical to
// fresh ones: every slice has the same length, so no loop bound or norm
// divisor changes.
func (w *Workspace) Fits(nx, ny int) bool { return w.nx == nx && w.ny == ny }

// WorkspacePool recycles workspaces by shape. It is NOT safe for
// concurrent use: the batch layer gives each worker goroutine its own
// pool, which also keeps the free lists core-local. The zero value is
// not ready; use NewWorkspacePool.
type WorkspacePool struct {
	free map[[2]int][]*Workspace

	gets, hits int
}

// NewWorkspacePool returns an empty pool.
func NewWorkspacePool() *WorkspacePool {
	return &WorkspacePool{free: make(map[[2]int][]*Workspace)}
}

// Get returns a workspace for the shape, reusing a previously Put one
// when available. The caller owns the workspace until Put.
func (p *WorkspacePool) Get(nx, ny int) *Workspace {
	p.gets++
	key := [2]int{nx, ny}
	if l := p.free[key]; len(l) > 0 {
		w := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[key] = l[:len(l)-1]
		p.hits++
		return w
	}
	return NewWorkspace(nx, ny)
}

// Put returns a workspace to the pool. The caller must not use it (or
// any System/Engine bound to it) afterwards.
func (p *WorkspacePool) Put(w *Workspace) {
	if w == nil {
		return
	}
	w.owner = nil
	key := [2]int{w.nx, w.ny}
	p.free[key] = append(p.free[key], w)
}

// Stats reports how many Gets the pool served and how many were satisfied
// by reuse rather than fresh allocation.
func (p *WorkspacePool) Stats() (gets, hits int) { return p.gets, p.hits }
