package core

import (
	"fmt"

	"harvsim/internal/la"
	"harvsim/internal/ode"
)

// Workspace owns every piece of per-shape storage a linearised
// state-space simulation needs: the system's global Jacobian/excitation
// storage (paper Eq. 2) and the engine's march scratch (state vectors,
// elimination LU, reduced/balanced matrices, Adams-Bashforth history
// ring, stability-iteration vectors). A workspace is bound to an exact
// shape (NX states, NY terminal variables); the Adams-Bashforth storage
// is sized for ode.MaxABOrder so one workspace serves any engine order.
//
// Workspaces exist so that repeated simulations of same-shape systems —
// a batch sweep over a design grid, a re-run after Engine.Reset — rebuild
// *state*, never *storage*: acquiring a pooled workspace replaces a dozen
// make/NewMatrix calls per job with a map lookup, and after the engine's
// warm-up a simulation step performs zero heap allocations.
type Workspace struct {
	nx, ny int

	// System linearisation storage (bound by System.Build when the
	// system was given a pool).
	jxx, jxy, jyx, jyy *la.Matrix
	ex, ey             []float64

	// owner is the engine whose march scratch this workspace backs.
	// Only one engine may bind a workspace: a second engine on the same
	// pooled system gets private storage instead of silently aliasing
	// (and clobbering) the first engine's state views. Cleared on Put.
	owner *Engine

	// Engine march scratch (bound by Engine on first use).
	x, y, yRHS, f []float64
	xNext, xLow   []float64
	errv          []float64
	luYY          *la.LU
	red, bal, kM  *la.Matrix
	jPrev         [4]*la.Matrix
	hist          *ode.History
	times         []float64
	coefP, coefL  []float64
	dScale        []float64
	powX, powY    []float64 // spectral-radius power-iteration scratch
}

// NewWorkspace allocates a workspace for an nx-state, ny-terminal system.
func NewWorkspace(nx, ny int) *Workspace {
	if nx < 0 || ny < 0 {
		panic(fmt.Sprintf("core: invalid workspace shape %dx%d", nx, ny))
	}
	return &Workspace{
		nx:  nx,
		ny:  ny,
		jxx: la.NewMatrix(nx, nx),
		jxy: la.NewMatrix(nx, ny),
		jyx: la.NewMatrix(ny, nx),
		jyy: la.NewMatrix(ny, ny),
		ex:  make([]float64, nx),
		ey:  make([]float64, ny),

		x:     make([]float64, nx),
		y:     make([]float64, ny),
		yRHS:  make([]float64, ny),
		f:     make([]float64, nx),
		xNext: make([]float64, nx),
		xLow:  make([]float64, nx),
		errv:  make([]float64, nx),
		luYY:  la.NewLU(ny),
		red:   la.NewMatrix(nx, nx),
		bal:   la.NewMatrix(nx, nx),
		kM:    la.NewMatrix(ny, nx),
		jPrev: [4]*la.Matrix{
			la.NewMatrix(nx, nx), la.NewMatrix(nx, ny),
			la.NewMatrix(ny, nx), la.NewMatrix(ny, ny),
		},
		hist:   ode.NewHistory(nx, ode.MaxABOrder),
		times:  make([]float64, ode.MaxABOrder),
		coefP:  make([]float64, ode.MaxABOrder),
		coefL:  make([]float64, ode.MaxABOrder),
		dScale: make([]float64, nx),
		powX:   make([]float64, nx),
		powY:   make([]float64, nx),
	}
}

// NX returns the workspace's state dimension.
func (w *Workspace) NX() int { return w.nx }

// NY returns the workspace's terminal-variable dimension.
func (w *Workspace) NY() int { return w.ny }

// Fits reports whether the workspace serves exactly the given shape.
// Exact matching (rather than >=) keeps reused runs bit-identical to
// fresh ones: every slice has the same length, so no loop bound or norm
// divisor changes.
func (w *Workspace) Fits(nx, ny int) bool { return w.nx == nx && w.ny == ny }

// WorkspacePool recycles workspaces by shape. It is NOT safe for
// concurrent use: the batch layer gives each worker goroutine its own
// pool, which also keeps the free lists core-local. The zero value is
// not ready; use NewWorkspacePool.
type WorkspacePool struct {
	free map[[2]int][]*Workspace

	gets, hits int
}

// NewWorkspacePool returns an empty pool.
func NewWorkspacePool() *WorkspacePool {
	return &WorkspacePool{free: make(map[[2]int][]*Workspace)}
}

// Get returns a workspace for the shape, reusing a previously Put one
// when available. The caller owns the workspace until Put.
func (p *WorkspacePool) Get(nx, ny int) *Workspace {
	p.gets++
	key := [2]int{nx, ny}
	if l := p.free[key]; len(l) > 0 {
		w := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[key] = l[:len(l)-1]
		p.hits++
		return w
	}
	return NewWorkspace(nx, ny)
}

// Put returns a workspace to the pool. The caller must not use it (or
// any System/Engine bound to it) afterwards.
func (p *WorkspacePool) Put(w *Workspace) {
	if w == nil {
		return
	}
	w.owner = nil
	key := [2]int{w.nx, w.ny}
	p.free[key] = append(p.free[key], w)
}

// Stats reports how many Gets the pool served and how many were satisfied
// by reuse rather than fresh allocation.
func (p *WorkspacePool) Stats() (gets, hits int) { return p.gets, p.hits }

// EnsembleWorkspace extends the per-engine Workspace to a K-member
// lockstep ensemble: the members' march-critical vectors (state,
// terminals, derivative, predictor scratch, error estimate) live in
// K*n contiguous structure-of-arrays blocks laid out member-major, so a
// lockstep round over the members walks adjacent memory instead of K
// scattered heaps. Each member still owns a complete Workspace whose
// hot-vector views cover exactly its own rows of the blocks — the SoA
// layout is shared storage, never shared state — and those member
// workspaces flow to the engines through the ordinary pool mechanism
// (Pool), so neither System.Build nor Engine.ensureWorkspace knows
// lockstep exists.
type EnsembleWorkspace struct {
	k, nx, ny int

	// Member-major SoA blocks: member m's slice of X is X[m*nx:(m+1)*nx].
	X, F, XNext, XLow, Errv []float64 // K*nx
	Y, YRHS                 []float64 // K*ny

	members []*Workspace
}

// NewEnsembleWorkspace allocates SoA-backed storage for a k-member
// ensemble of nx-state, ny-terminal systems.
func NewEnsembleWorkspace(k, nx, ny int) *EnsembleWorkspace {
	if k < 1 {
		panic(fmt.Sprintf("core: invalid ensemble size %d", k))
	}
	ew := &EnsembleWorkspace{
		k: k, nx: nx, ny: ny,
		X:     make([]float64, k*nx),
		F:     make([]float64, k*nx),
		XNext: make([]float64, k*nx),
		XLow:  make([]float64, k*nx),
		Errv:  make([]float64, k*nx),
		Y:     make([]float64, k*ny),
		YRHS:  make([]float64, k*ny),
	}
	ew.members = make([]*Workspace, k)
	for m := 0; m < k; m++ {
		w := NewWorkspace(nx, ny)
		xa, xb := m*nx, (m+1)*nx
		ya, yb := m*ny, (m+1)*ny
		// Re-point the hot vectors into the SoA blocks. Full slice
		// expressions cap each view at its own rows.
		w.x = ew.X[xa:xb:xb]
		w.f = ew.F[xa:xb:xb]
		w.xNext = ew.XNext[xa:xb:xb]
		w.xLow = ew.XLow[xa:xb:xb]
		w.errv = ew.Errv[xa:xb:xb]
		w.y = ew.Y[ya:yb:yb]
		w.yRHS = ew.YRHS[ya:yb:yb]
		ew.members[m] = w
	}
	return ew
}

// K returns the ensemble size.
func (ew *EnsembleWorkspace) K() int { return ew.k }

// Member returns member m's workspace view.
func (ew *EnsembleWorkspace) Member(m int) *Workspace { return ew.members[m] }

// Pool returns a fresh WorkspacePool preloaded with the member
// workspaces in order (the first Get returns member 0's), so assembling
// the K member systems against it binds them to the SoA storage through
// the exact same path as any pooled assembly.
func (ew *EnsembleWorkspace) Pool() *WorkspacePool {
	p := NewWorkspacePool()
	for m := ew.k - 1; m >= 0; m-- {
		p.Put(ew.members[m])
	}
	return p
}
