package core

import (
	"math"
	"testing"

	"harvsim/internal/trace"
)

// srcBlock is an ideal voltage source: no states, one algebraic equation
// 0 = Vp - V(t) on terminals [Vp, Ip].
type srcBlock struct {
	name    string
	v       func(t float64) float64
	stamped bool
}

func (b *srcBlock) Name() string        { return b.name }
func (b *srcBlock) NumStates() int      { return 0 }
func (b *srcBlock) NumEquations() int   { return 1 }
func (b *srcBlock) Terminals() []string { return []string{"Vp", "Ip"} }
func (b *srcBlock) InitState([]float64) {}

func (b *srcBlock) Linearise(t float64, x, y []float64, st Stamp) bool {
	st.G(0, -b.v(t))
	if b.stamped {
		return false
	}
	st.D(0, 0, 1)
	st.D(0, 1, 0)
	b.stamped = true
	return true
}

func (b *srcBlock) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	fy[0] = y[0] - b.v(t)
}

func (b *srcBlock) JacNonlinear(t float64, x, y []float64, st Stamp) {
	st.D(0, 0, 1)
	st.D(0, 1, 0)
	b.stamped = false
}

// rcBlock is a series-R shunt-C load on terminals [Vp, Ip]: state Vc with
// dVc/dt = (Vp-Vc)/(R*C) and terminal relation 0 = Ip - (Vp-Vc)/R.
type rcBlock struct {
	name    string
	r, c    float64
	v0      float64
	stamped bool
}

func (b *rcBlock) Name() string        { return b.name }
func (b *rcBlock) NumStates() int      { return 1 }
func (b *rcBlock) NumEquations() int   { return 1 }
func (b *rcBlock) Terminals() []string { return []string{"Vp", "Ip"} }
func (b *rcBlock) InitState(x []float64) {
	x[0] = b.v0
}

func (b *rcBlock) Linearise(t float64, x, y []float64, st Stamp) bool {
	if b.stamped {
		return false
	}
	rc := b.r * b.c
	st.A(0, 0, -1/rc)
	st.B(0, 0, 1/rc)
	st.B(0, 1, 0)
	st.E(0, 0)
	st.C(0, 0, 1/b.r)
	st.D(0, 0, -1/b.r)
	st.D(0, 1, 1)
	st.G(0, 0)
	b.stamped = true
	return true
}

func (b *rcBlock) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	fx[0] = (y[0] - x[0]) / (b.r * b.c)
	fy[0] = y[1] - (y[0]-x[0])/b.r
}

func (b *rcBlock) JacNonlinear(t float64, x, y []float64, st Stamp) {
	rc := b.r * b.c
	st.A(0, 0, -1/rc)
	st.B(0, 0, 1/rc)
	st.B(0, 1, 0)
	st.C(0, 0, 1/b.r)
	st.D(0, 0, -1/b.r)
	st.D(0, 1, 1)
	b.stamped = false
}

// dragBlock is a nonlinear block with quadratic drag: dv/dt = -k*v*|v|,
// with exact solution v(t) = v0/(1 + k*v0*t) for v0 > 0. Its Jacobian
// changes every step, exercising the refresh/LLE path. It uses one
// private terminal pair to stay square within its own equations.
type dragBlock struct {
	k, v0 float64
	lastA float64
}

func (b *dragBlock) Name() string          { return "drag" }
func (b *dragBlock) NumStates() int        { return 1 }
func (b *dragBlock) NumEquations() int     { return 1 }
func (b *dragBlock) Terminals() []string   { return []string{"drag.aux"} }
func (b *dragBlock) InitState(x []float64) { x[0] = b.v0 }

func (b *dragBlock) Linearise(t float64, x, y []float64, st Stamp) bool {
	// Linearise f = -k v|v| about v: f =~ (-2k|v|)*v + k*v|v| (tangent).
	a := -2 * b.k * math.Abs(x[0])
	e := b.k * x[0] * math.Abs(x[0])
	st.A(0, 0, a)
	st.E(0, e)
	st.B(0, 0, 0)
	st.C(0, 0, 0)
	st.D(0, 0, 1) // aux terminal pinned to zero
	st.G(0, 0)
	changed := a != b.lastA
	b.lastA = a
	return changed
}

func (b *dragBlock) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	fx[0] = -b.k * x[0] * math.Abs(x[0])
	fy[0] = y[0]
}

func (b *dragBlock) JacNonlinear(t float64, x, y []float64, st Stamp) {
	st.A(0, 0, -2*b.k*math.Abs(x[0]))
	st.D(0, 0, 1)
}

func buildRC(v func(t float64) float64, r, c float64) (*System, *rcBlock) {
	sys := NewSystem()
	rc := &rcBlock{name: "rc", r: r, c: c}
	sys.AddBlock(&srcBlock{name: "src", v: v})
	sys.AddBlock(rc)
	return sys, rc
}

func TestSystemBuildIndexing(t *testing.T) {
	sys, _ := buildRC(func(float64) float64 { return 1 }, 1e3, 1e-6)
	if err := sys.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sys.NX() != 1 || sys.NY() != 2 {
		t.Fatalf("NX=%d NY=%d, want 1, 2", sys.NX(), sys.NY())
	}
	if i := sys.MustTerminal("Vp"); i != 0 {
		t.Fatalf("Vp index = %d", i)
	}
	if i := sys.MustTerminal("Ip"); i != 1 {
		t.Fatalf("Ip index = %d", i)
	}
	if _, ok := sys.Terminal("nope"); ok {
		t.Fatalf("unknown terminal should report !ok")
	}
	if off := sys.MustStateOffset("rc"); off != 0 {
		t.Fatalf("rc state offset = %d", off)
	}
	if _, ok := sys.StateOffset("nope"); ok {
		t.Fatalf("unknown block should report !ok")
	}
	names := sys.TerminalNames()
	if len(names) != 2 || names[0] != "Vp" {
		t.Fatalf("TerminalNames = %v", names)
	}
}

func TestSystemBuildErrors(t *testing.T) {
	if err := NewSystem().Build(); err == nil {
		t.Fatalf("empty system should fail to build")
	}
	// Duplicate block names.
	sys := NewSystem()
	sys.AddBlock(&srcBlock{name: "s", v: func(float64) float64 { return 0 }})
	sys.AddBlock(&srcBlock{name: "s", v: func(float64) float64 { return 0 }})
	if err := sys.Build(); err == nil {
		t.Fatalf("duplicate names should fail")
	}
	// Non-square: source alone references two terminals with one equation.
	sys2 := NewSystem()
	sys2.AddBlock(&srcBlock{name: "s", v: func(float64) float64 { return 0 }})
	if err := sys2.Build(); err == nil {
		t.Fatalf("non-square algebraic system should fail")
	}
}

func TestEngineRCStepResponse(t *testing.T) {
	r, c := 1e3, 1e-6 // tau = 1 ms
	v0 := 5.0
	sys, _ := buildRC(func(float64) float64 { return v0 }, r, c)
	eng := NewEngine(sys)
	eng.Ctl.HMax = 5e-5
	var rec trace.Series
	eng.Observe(func(tm float64, x, y []float64) {
		rec.Append(tm, x[0])
	})
	if err := eng.Run(0, 5e-3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Compare against the exact charging curve at several points.
	for _, tm := range []float64{5e-4, 1e-3, 2e-3, 5e-3} {
		want := v0 * (1 - math.Exp(-tm/(r*c)))
		got := rec.At(tm)
		if math.Abs(got-want) > 2e-3*v0 {
			t.Fatalf("Vc(%v) = %v, want %v", tm, got, want)
		}
	}
	if eng.Stats.Steps == 0 || eng.Stats.YSolves == 0 {
		t.Fatalf("stats not recorded: %+v", eng.Stats)
	}
}

func TestEngineTerminalVariablesConsistent(t *testing.T) {
	// At every observed point, Ip must equal (Vp - Vc)/R: the eliminated
	// non-state variables satisfy the algebraic constraints (paper Eq. 4).
	r, c := 2e3, 5e-7
	sys, _ := buildRC(func(tm float64) float64 { return 3 }, r, c)
	eng := NewEngine(sys)
	eng.Ctl.HMax = 5e-5
	worst := 0.0
	eng.Observe(func(tm float64, x, y []float64) {
		ip := y[1]
		want := (y[0] - x[0]) / r
		if d := math.Abs(ip - want); d > worst {
			worst = d
		}
	})
	if err := eng.Run(0, 3e-3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if worst > 1e-9 {
		t.Fatalf("terminal relation violated by %v", worst)
	}
}

func TestEngineSinusoidalSteadyState(t *testing.T) {
	// RC low-pass driven at f << 1/(2*pi*RC) passes the signal through.
	r, c := 100.0, 1e-6 // tau = 0.1 ms
	f := 50.0
	sys, _ := buildRC(func(tm float64) float64 { return math.Sin(2 * math.Pi * f * tm) }, r, c)
	eng := NewEngine(sys)
	eng.Ctl.HMax = 1e-4
	var rec trace.Series
	eng.Observe(func(tm float64, x, y []float64) { rec.Append(tm, x[0]) })
	if err := eng.Run(0, 0.1); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// After transients, amplitude should be ~1/sqrt(1+(2*pi*f*tau)^2) ~ 0.9995.
	ss := rec.Slice(0.06, 0.1)
	_, hi := ss.MinMax()
	if hi < 0.98 || hi > 1.01 {
		t.Fatalf("steady-state peak = %v, want ~1", hi)
	}
}

func TestEngineNonlinearDrag(t *testing.T) {
	b := &dragBlock{k: 2, v0: 3}
	sys := NewSystem()
	sys.AddBlock(b)
	eng := NewEngine(sys)
	eng.Ctl.HMax = 1e-3
	var rec trace.Series
	eng.Observe(func(tm float64, x, y []float64) { rec.Append(tm, x[0]) })
	if err := eng.Run(0, 1); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, tm := range []float64{0.1, 0.5, 1.0} {
		want := b.v0 / (1 + b.k*b.v0*tm)
		got := rec.At(tm)
		if math.Abs(got-want) > 5e-3*want {
			t.Fatalf("v(%v) = %v, want %v", tm, got, want)
		}
	}
	if eng.Stats.Refreshes < 10 {
		t.Fatalf("nonlinear run should refresh the linearisation often: %+v", eng.Stats)
	}
}

// stepEvents switches the source voltage at fixed times.
type stepEvents struct {
	times []float64
	src   *srcBlock
	level *float64
	fired int
}

func (ev *stepEvents) Next() float64 {
	if ev.fired >= len(ev.times) {
		return math.Inf(1)
	}
	return ev.times[ev.fired]
}

func (ev *stepEvents) Fire(now float64) bool {
	changed := false
	for ev.fired < len(ev.times) && ev.times[ev.fired] <= now+1e-12 {
		*ev.level += 1
		ev.fired++
		changed = true
	}
	return changed
}

func TestEngineEventsDiscontinuity(t *testing.T) {
	level := 1.0
	src := &srcBlock{name: "src", v: func(float64) float64 { return level }}
	rc := &rcBlock{name: "rc", r: 1e3, c: 1e-6}
	sys := NewSystem()
	sys.AddBlock(src)
	sys.AddBlock(rc)
	ev := &stepEvents{times: []float64{2e-3, 4e-3}, src: src, level: &level}
	eng := NewEngine(sys)
	eng.Events = ev
	eng.Ctl.HMax = 1e-4
	var rec trace.Series
	eng.Observe(func(tm float64, x, y []float64) { rec.Append(tm, x[0]) })
	if err := eng.Run(0, 8e-3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ev.fired != 2 {
		t.Fatalf("events fired = %d, want 2", ev.fired)
	}
	if eng.Stats.Restarts < 2 {
		t.Fatalf("discontinuities should restart the history: %+v", eng.Stats)
	}
	// Final value should approach the final level 3 after several taus.
	if _, v := rec.Last(); math.Abs(v-3) > 0.1 {
		t.Fatalf("final Vc = %v, want ~3", v)
	}
	// Before the first event the target was 1.
	if got := rec.At(1.9e-3); got > 1.0 {
		t.Fatalf("pre-event Vc = %v, should be < 1", got)
	}
}

func TestEngineRunValidation(t *testing.T) {
	sys, _ := buildRC(func(float64) float64 { return 1 }, 1e3, 1e-6)
	eng := NewEngine(sys)
	if err := eng.Run(1, 1); err == nil {
		t.Fatalf("empty span should error")
	}
	eng2 := NewEngine(sys)
	eng2.Order = 9
	if err := eng2.Run(0, 1e-3); err == nil {
		t.Fatalf("bad order should error")
	}
}

func TestEngineStabilityCapRespected(t *testing.T) {
	// A fast RC (tau = 1 us) with a generous HMax: steps must still stay
	// inside the stability bound, not the accuracy bound.
	r, c := 10.0, 1e-7 // tau = 1 us
	sys, _ := buildRC(func(float64) float64 { return 1 }, r, c)
	eng := NewEngine(sys)
	eng.Ctl.HMax = 1e-2 // far beyond stability
	eng.Ctl.Rtol = 1    // effectively disable accuracy control
	eng.Ctl.Atol = 1
	if err := eng.Run(0, 2e-4); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// tau = 1 us: explicit stability needs h <= 2 us; mean step must obey.
	if eng.Stats.HMean > 2.1e-6 {
		t.Fatalf("mean step %v exceeds stability bound", eng.Stats.HMean)
	}
	// And the result must be sane (no blow-up): Vc in [0, 1].
	x := eng.State()
	if x[0] < 0 || x[0] > 1.0001 {
		t.Fatalf("state blew past physical range: %v", x[0])
	}
}

func TestEngineInvalidateForcesRefresh(t *testing.T) {
	sys, _ := buildRC(func(float64) float64 { return 1 }, 1e3, 1e-6)
	sys.MustBuild()
	if !sys.Linearise(0, []float64{0}, []float64{0, 0}) {
		t.Fatalf("first linearise should report change")
	}
	if sys.Linearise(0, []float64{0}, []float64{0, 0}) {
		t.Fatalf("second linearise of a linear system should be unchanged")
	}
	sys.Invalidate()
	if !sys.Linearise(0, []float64{0}, []float64{0, 0}) {
		t.Fatalf("Invalidate should force a change report")
	}
}

func TestEvalNonlinearMatchesLinearisationForLinearBlocks(t *testing.T) {
	sys, _ := buildRC(func(float64) float64 { return 2 }, 1e3, 1e-6)
	sys.MustBuild()
	x := []float64{0.5}
	y := []float64{2.0, 0.0015}
	sys.Linearise(0, x, y)
	fx := make([]float64, 1)
	fy := make([]float64, 2)
	sys.EvalNonlinear(0, x, y, fx, fy)
	// Compare with Jxx*x + Jxy*y + Ex.
	wantFx := sys.Jxx.At(0, 0)*x[0] + sys.Jxy.At(0, 0)*y[0] + sys.Jxy.At(0, 1)*y[1] + sys.Ex[0]
	if math.Abs(fx[0]-wantFx) > 1e-12 {
		t.Fatalf("fx = %v, want %v", fx[0], wantFx)
	}
	// fy rows: source eq then rc eq.
	wantFy0 := y[0] - 2
	if math.Abs(fy[0]-wantFy0) > 1e-12 {
		t.Fatalf("fy[0] = %v, want %v", fy[0], wantFy0)
	}
	wantFy1 := y[1] - (y[0]-x[0])/1e3
	if math.Abs(fy[1]-wantFy1) > 1e-12 {
		t.Fatalf("fy[1] = %v, want %v", fy[1], wantFy1)
	}
}
