package core

import "testing"

func TestWorkspacePoolRecycles(t *testing.T) {
	p := NewWorkspacePool()
	w1 := p.Get(8, 4)
	if !w1.Fits(8, 4) || w1.NX() != 8 || w1.NY() != 4 {
		t.Fatalf("workspace shape: %dx%d", w1.NX(), w1.NY())
	}
	p.Put(w1)
	w2 := p.Get(8, 4)
	if w2 != w1 {
		t.Fatal("pool did not recycle the same-shape workspace")
	}
	// A different shape must not receive the recycled one.
	p.Put(w2)
	w3 := p.Get(9, 4)
	if w3 == w1 {
		t.Fatal("pool recycled a workspace across shapes")
	}
	if gets, hits := p.Stats(); gets != 3 || hits != 1 {
		t.Fatalf("pool stats: gets=%d hits=%d, want 3/1", gets, hits)
	}
}

// TestWorkspacePoolGetPutZeroAllocs pins the steady-state batch reuse
// path: once a shape's workspace exists, the acquire/release cycle
// between jobs performs zero heap allocations.
func TestWorkspacePoolGetPutZeroAllocs(t *testing.T) {
	p := NewWorkspacePool()
	p.Put(p.Get(11, 4))
	avg := testing.AllocsPerRun(200, func() {
		p.Put(p.Get(11, 4))
	})
	if avg != 0 {
		t.Fatalf("pool Get/Put allocates %.3f objects/cycle, want 0", avg)
	}
}
