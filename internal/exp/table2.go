package exp

import (
	"fmt"
	"time"

	"harvsim/internal/harvester"
	"harvsim/internal/trace"
)

// Table2Row is one scenario's existing-vs-proposed comparison (paper
// Table II).
type Table2Row struct {
	Scenario      string
	Existing      EngineRun
	Proposed      EngineRun
	Speedup       float64
	PaperExisting time.Duration
	PaperProposed time.Duration
	// Waveform agreement between the two engines on this run (the
	// paper's "similar accuracy" claim).
	VcRMSE float64
}

// Table2Result is the reproduced Table II.
type Table2Result struct {
	Fidelity harvester.Fidelity
	Rows     []Table2Row
}

// Table2 reproduces the paper's Table II: CPU times of the existing
// technique (implicit trapezoidal integration with a Newton-Raphson
// solve per step, the SystemVision configuration) against the proposed
// linearised state-space technique, for the 1 Hz and 14 Hz tuning
// scenarios.
func Table2(f harvester.Fidelity) (Table2Result, error) {
	res := Table2Result{Fidelity: f}
	cases := []struct {
		sc            harvester.Scenario
		paperExisting time.Duration
		paperProposed time.Duration
	}{
		{harvester.Scenario1(f), 2185 * time.Second, time.Duration(20.3 * float64(time.Second))},
		{harvester.Scenario2(f), 7 * time.Hour, 228 * time.Second},
	}
	for _, c := range cases {
		exRun, exH, err := runTimed(c.sc.Name+"/existing", c.sc, harvester.ExistingTrap, 256)
		if err != nil {
			return res, err
		}
		prRun, prH, err := runTimed(c.sc.Name+"/proposed", c.sc, harvester.Proposed, 256)
		if err != nil {
			return res, err
		}
		cmp := trace.Compare(prH.VcTrace, exH.VcTrace, 400)
		res.Rows = append(res.Rows, Table2Row{
			Scenario:      c.sc.Name,
			Existing:      exRun,
			Proposed:      prRun,
			Speedup:       prRun.Speedup(exRun),
			PaperExisting: c.paperExisting,
			PaperProposed: c.paperProposed,
			VcRMSE:        cmp.RMSE,
		})
	}
	return res, nil
}

// String renders the table with the paper's values alongside, plus the
// extrapolation of both engines to the paper-scale scenario horizons
// (S1: 7200 s, S2: 14400 s simulated) for a like-for-like comparison of
// wall-clock magnitudes.
func (r Table2Result) String() string {
	var w tableWriter
	w.add("Scenario", "Existing (trap+NR)", "Proposed (AB)", "Speedup", "Paper", "Vc RMSE [V]")
	for _, row := range r.Rows {
		paper := fmt.Sprintf("%s vs %s (%.0fx)",
			FormatDuration(row.PaperExisting), FormatDuration(row.PaperProposed),
			row.PaperExisting.Seconds()/row.PaperProposed.Seconds())
		w.add(row.Scenario,
			FormatDuration(row.Existing.CPUTime),
			FormatDuration(row.Proposed.CPUTime),
			fmt.Sprintf("%.0fx", row.Speedup),
			paper,
			fmt.Sprintf("%.2g", row.VcRMSE),
		)
	}
	out := fmt.Sprintf("Table II — existing vs proposed technique (%s scenarios)\n%s",
		r.Fidelity, w.String())
	if r.Fidelity == harvester.Quick {
		horizons := []float64{7200, 14400}
		out += "extrapolated to paper-scale horizons (7200 s / 14400 s simulated):\n"
		for i, row := range r.Rows {
			if i >= len(horizons) {
				break
			}
			out += fmt.Sprintf("  %-16s existing %s, proposed %s (paper: %s vs %s)\n",
				row.Scenario,
				FormatDuration(row.Existing.ExtrapolateTo(horizons[i])),
				FormatDuration(row.Proposed.ExtrapolateTo(horizons[i])),
				FormatDuration(row.PaperExisting), FormatDuration(row.PaperProposed))
		}
	}
	return out
}
