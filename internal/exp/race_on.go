//go:build race

package exp

// raceEnabled reports whether the binary was built with the race
// detector. Wall-clock assertions (the Table II speedup gate) skip under
// it: race instrumentation serialises memory accesses and scales poorly
// across cores, so a timing ratio measured under it says nothing about
// the production pool.
const raceEnabled = true
