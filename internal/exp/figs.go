package exp

import (
	"fmt"
	"math"

	"harvsim/internal/harvester"
	"harvsim/internal/trace"
)

// Fig8aResult reproduces Fig. 8(a): the microgenerator output power
// envelope across the 1 Hz tuning event, with the RMS power levels the
// paper quotes (118 uW tuned at 70 Hz, 117 uW tuned at 71 Hz, against a
// practical test value of 116 uW).
type Fig8aResult struct {
	Power      *trace.Series // windowed RMS of the instantaneous power
	RMSBefore  float64       // tuned at 70 Hz, before the shift [W]
	RMSDetuned float64       // after the shift, before retuning [W]
	RMSAfter   float64       // retuned at 71 Hz [W]
	ShiftT     float64
	RetunedT   float64
}

// Fig8a runs Scenario 1 under the proposed engine and extracts the
// power envelope.
func Fig8a(f harvester.Fidelity) (Fig8aResult, error) {
	sc := harvester.Scenario1(f)
	_, h, err := runTimed("fig8a", sc, harvester.Proposed, 4)
	if err != nil {
		return Fig8aResult{}, err
	}
	res := Fig8aResult{ShiftT: sc.Shifts[0].T}
	// Windowed mean of p(t) = Vm*Im over ~3.5 excitation periods; the
	// paper's "RMS power" is Vrms*Irms, which equals the mean of p(t)
	// for in-phase waveforms.
	res.Power = h.PMultIn.WindowedMean(0.05, sc.Duration/400)
	// Locate the retune completion from the resonance trace.
	target := sc.Shifts[0].Hz
	res.RetunedT = sc.Duration
	for i, v := range h.FresTrace.Vals {
		if math.Abs(v-target) < 0.2 {
			res.RetunedT = h.FresTrace.Times[i]
			break
		}
	}
	res.RMSBefore = h.PMultIn.Slice(res.ShiftT*0.3, res.ShiftT*0.95).Mean()
	res.RMSDetuned = h.PMultIn.Slice(res.ShiftT+1, math.Min(res.RetunedT-0.5, res.ShiftT+6)).Mean()
	tail := sc.Duration - (sc.Duration-res.RetunedT)*0.5
	res.RMSAfter = h.PMultIn.Slice(tail, sc.Duration).Mean()
	return res, nil
}

// String renders the figure summary.
func (r Fig8aResult) String() string {
	return fmt.Sprintf(
		"Fig 8(a) — microgenerator output power through the 1 Hz tuning event\n"+
			"  RMS tuned @70 Hz:   %.1f uW   (paper: 118 uW simulated, 116 uW measured)\n"+
			"  RMS detuned:        %.1f uW   (paper: visible dip)\n"+
			"  RMS retuned @71 Hz: %.1f uW   (paper: 117 uW)\n"+
			"  shift at t=%.3gs, retuned by t=%.3gs\n%s",
		r.RMSBefore*1e6, r.RMSDetuned*1e6, r.RMSAfter*1e6, r.ShiftT, r.RetunedT,
		trace.ASCIIPlot(r.Power, 72, 12))
}

// FigVcResult reproduces Figs. 8(b) and 9: the supercapacitor voltage,
// simulated versus the measurement twin.
type FigVcResult struct {
	Name       string
	Simulated  *trace.Series
	Measured   *trace.Series
	Comparison trace.Comparison
}

// Fig8b runs Scenario 1 and compares the simulated supercapacitor
// voltage with the measurement substitute.
func Fig8b(f harvester.Fidelity) (FigVcResult, error) {
	return figVc("fig8b", harvester.Scenario1(f))
}

// Fig9 does the same for the 14 Hz Scenario 2.
func Fig9(f harvester.Fidelity) (FigVcResult, error) {
	return figVc("fig9", harvester.Scenario2(f))
}

func figVc(name string, sc harvester.Scenario) (FigVcResult, error) {
	_, h, err := runTimed(name, sc, harvester.Proposed, 64)
	if err != nil {
		return FigVcResult{}, err
	}
	meas, err := MeasurementTwin(sc, 64)
	if err != nil {
		return FigVcResult{}, err
	}
	res := FigVcResult{
		Name:      name,
		Simulated: h.VcTrace,
		Measured:  meas,
	}
	res.Comparison = trace.Compare(h.VcTrace, meas, 500)
	return res, nil
}

// String renders the comparison.
func (r FigVcResult) String() string {
	return fmt.Sprintf(
		"%s — supercapacitor voltage, simulation vs measurement twin\n"+
			"  RMSE %.2g V, max deviation %.2g V at t=%.3gs (paper: close correlation\n"+
			"  with differences attributed to leakage and parasitic loss)\n%s%s",
		r.Name, r.Comparison.RMSE, r.Comparison.MaxAbs, r.Comparison.AtMax,
		trace.ASCIIPlot(r.Simulated, 72, 10),
		trace.ASCIIPlot(r.Measured, 72, 10))
}
