package exp

import (
	"context"
	"fmt"
	"math"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/harvester"
)

// ConformanceRow is one engine's result on the shared workload, with its
// deviation from the proposed engine's reference values.
type ConformanceRow struct {
	Engine   harvester.EngineKind
	HMax     float64 // step cap the engine ran under
	FinalVc  float64
	RMSPower float64
	Steps    int
	CPUTime  time.Duration
	DVc      float64 // |FinalVc - reference|
	DPowRel  float64 // |RMSPower - reference| / reference
	Err      error
}

// ConformanceResult is the cross-engine agreement table for one
// scenario. It is the guard against the four engines silently drifting
// apart: the CPU-time benchmarks only measure speed, so a physics
// regression in any one engine would otherwise go unnoticed.
type ConformanceResult struct {
	Title string
	Rows  []ConformanceRow
}

// String renders the agreement table.
func (r ConformanceResult) String() string {
	var w tableWriter
	w.add("Engine", "hmax [s]", "final Vc [V]", "RMS Pin [uW]", "dVc [V]", "dP rel", "Steps", "CPU")
	for _, row := range r.Rows {
		if row.Err != nil {
			w.add(row.Engine.String(), fmt.Sprintf("%.3g", row.HMax), "ERROR: "+row.Err.Error())
			continue
		}
		w.add(row.Engine.String(),
			fmt.Sprintf("%.3g", row.HMax),
			fmt.Sprintf("%.6f", row.FinalVc),
			fmt.Sprintf("%.3f", row.RMSPower*1e6),
			fmt.Sprintf("%.2g", row.DVc),
			fmt.Sprintf("%.3f", row.DPowRel),
			fmt.Sprintf("%d", row.Steps),
			FormatDuration(row.CPUTime))
	}
	return r.Title + "\n" + w.String()
}

// enginePlan pairs an engine with the step cap it runs under. The
// implicit baselines are dissipative on the harvester's high-Q
// resonator: BDF2 mildly, so it gets a cap tighter than the 2.5e-4 the
// CPU-time tables use and then agrees within a few percent; backward
// Euler severely, at any practical step, so it keeps the default cap
// and the conformance checks hold it to voltage agreement plus the
// directional dissipation property only.
type enginePlan struct {
	kind harvester.EngineKind
	hmax float64
}

func conformancePlans() []enginePlan {
	return []enginePlan{
		{harvester.Proposed, 2.5e-4},
		{harvester.ExistingTrap, 2.5e-4},
		{harvester.ExistingBDF2, 1e-4},
		{harvester.ExistingBE, 2.5e-4},
	}
}

// CrossEngine runs one scenario under all four engines through the
// concurrent batch runner and tabulates the agreement of the final
// supercapacitor voltage and the settled-window RMS input power.
func CrossEngine(title string, sc harvester.Scenario, workers int) (ConformanceResult, error) {
	res := ConformanceResult{Title: title}
	plans := conformancePlans()
	jobs := make([]batch.Job, len(plans))
	for i, p := range plans {
		job := batch.Job{Scenario: sc.Clone(), Engine: p.kind, Decimate: 1}
		job.Scenario.Cfg.Solver.HMax = p.hmax
		jobs[i] = job
	}
	results := batch.Run(context.Background(), jobs, batch.Options{Workers: workers})
	ref := results[0]
	if ref.Err != nil {
		return res, fmt.Errorf("exp: conformance reference run failed: %w", ref.Err)
	}
	for i, r := range results {
		row := ConformanceRow{
			Engine:   plans[i].kind,
			HMax:     plans[i].hmax,
			FinalVc:  r.FinalVc,
			RMSPower: r.RMSPower,
			Steps:    r.Stats.Steps,
			CPUTime:  r.Elapsed,
			Err:      r.Err,
		}
		if r.Err == nil {
			row.DVc = math.Abs(r.FinalVc - ref.FinalVc)
			if ref.RMSPower > 0 {
				row.DPowRel = math.Abs(r.RMSPower-ref.RMSPower) / ref.RMSPower
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ConformanceCharge is the non-autonomous agreement workload: a charge
// run from a partially charged working point (the multiplier operating
// region, where all the diode nonlinearity is exercised).
func ConformanceCharge(duration float64, workers int) (ConformanceResult, error) {
	sc := harvester.ChargeScenario(duration)
	sc.Cfg.InitialVc = 2.5
	return CrossEngine(
		fmt.Sprintf("Cross-engine conformance — supercap charge (%.3g s from 2.5 V)", duration),
		sc, workers)
}

// ConformanceScenario1 is the autonomous agreement workload: a shortened
// Scenario 1 retune (shift at 2/5 of the horizon) exercising the digital
// kernel, the actuator and the mode-switched load under every engine.
func ConformanceScenario1(duration float64, workers int) (ConformanceResult, error) {
	sc := harvester.Scenario1(harvester.Quick)
	sc.Duration = duration
	sc.Shifts = []harvester.FreqShift{{T: duration * 0.4, Hz: 71}}
	return CrossEngine(
		fmt.Sprintf("Cross-engine conformance — scenario 1 retune (%.3g s)", duration),
		sc, workers)
}
