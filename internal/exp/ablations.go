package exp

import (
	"fmt"
	"math"
	"time"

	"harvsim/internal/blocks"
	"harvsim/internal/core"
	"harvsim/internal/harvester"
	"harvsim/internal/trace"
)

// AblationRow is a generic (setting, cpu, error) record.
type AblationRow struct {
	Setting string
	CPUTime time.Duration
	Steps   int
	Err     float64 // deviation vs the reference waveform (RMSE, volts)
	Failed  bool    // run diverged (stability ablation)
}

// AblationResult is a titled list of rows.
type AblationResult struct {
	Title string
	Note  string
	Rows  []AblationRow
}

// String renders the ablation table.
func (r AblationResult) String() string {
	var w tableWriter
	w.add("Setting", "CPU", "Steps", "Vc RMSE [V]", "Status")
	for _, row := range r.Rows {
		status := "ok"
		if row.Failed {
			status = "DIVERGED"
		}
		w.add(row.Setting, FormatDuration(row.CPUTime),
			fmt.Sprintf("%d", row.Steps), fmt.Sprintf("%.3g", row.Err), status)
	}
	return fmt.Sprintf("%s\n%s%s", r.Title, w.String(), r.Note)
}

// ablationScenario is the shared workload: a partially charged system so
// the multiplier operates at its working point.
func ablationScenario(duration float64) harvester.Scenario {
	sc := harvester.ChargeScenario(duration)
	sc.Cfg.InitialVc = 2.5
	return sc
}

// runReference produces the tight-tolerance reference waveform.
func runReference(sc harvester.Scenario) (*trace.Series, error) {
	h := harvester.New(sc.Cfg)
	eng := core.NewEngine(h.Sys)
	eng.Ctl.HMax = 2.5e-5
	eng.Ctl.Rtol = 1e-5
	eng.Events = h.Kernel
	rec := trace.NewSeries("ref")
	idx := h.Sys.MustTerminal("Vc")
	eng.Observe(func(t float64, x, y []float64) { rec.Append(t, y[idx]) })
	if err := eng.Run(0, sc.Duration); err != nil {
		return nil, err
	}
	return rec, nil
}

// AblationABOrder sweeps the Adams-Bashforth order 1..4 (paper Section
// II chooses AB for "simplicity and accuracy"; this quantifies the
// accuracy side).
func AblationABOrder(duration float64) (AblationResult, error) {
	res := AblationResult{
		Title: "Ablation A1 — Adams-Bashforth order (accuracy at matched cost)",
		Note:  "higher order buys accuracy at nearly constant CPU: the per-step\ncost is dominated by the linearisation refresh, not the AB update.\n",
	}
	sc := ablationScenario(duration)
	ref, err := runReference(sc)
	if err != nil {
		return res, err
	}
	for order := 1; order <= 4; order++ {
		h := harvester.New(sc.Cfg)
		eng := core.NewEngine(h.Sys)
		eng.Order = order
		eng.Events = h.Kernel
		eng.Ctl.HMax = 2.5e-4
		rec := trace.NewSeries("vc")
		idx := h.Sys.MustTerminal("Vc")
		eng.Observe(func(t float64, x, y []float64) { rec.Append(t, y[idx]) })
		start := time.Now()
		if err := eng.Run(0, sc.Duration); err != nil {
			return res, err
		}
		cmp := trace.Compare(rec, ref, 400)
		res.Rows = append(res.Rows, AblationRow{
			Setting: fmt.Sprintf("AB order %d", order),
			CPUTime: time.Since(start),
			Steps:   eng.Stats.Steps,
			Err:     cmp.RMSE,
		})
	}
	return res, nil
}

// AblationPWL sweeps the lookup-table granularity, verifying the paper's
// claim that "the size of the look-up tables does not affect the
// simulation speed" while the modelling accuracy can be made arbitrarily
// fine.
func AblationPWL(duration float64) (AblationResult, error) {
	res := AblationResult{
		Title: "Ablation A2 — PWL table granularity (paper Section III-B)",
		Note:  "lookup stays O(1): CPU is flat while the companion-model error\nshrinks quadratically with the segment count.\n",
	}
	sc := ablationScenario(duration)
	ref, err := runReference(sc)
	if err != nil {
		return res, err
	}
	for _, segs := range []int{16, 64, 256, 1024, 4096, 16384} {
		cfg := sc.Cfg
		cfg.Dickson = cloneDicksonWithSegments(cfg.Dickson, segs)
		h := harvester.New(cfg)
		eng := core.NewEngine(h.Sys)
		eng.Events = h.Kernel
		eng.Ctl.HMax = 2.5e-4
		rec := trace.NewSeries("vc")
		idx := h.Sys.MustTerminal("Vc")
		eng.Observe(func(t float64, x, y []float64) { rec.Append(t, y[idx]) })
		start := time.Now()
		if err := eng.Run(0, sc.Duration); err != nil {
			return res, err
		}
		cmp := trace.Compare(rec, ref, 400)
		res.Rows = append(res.Rows, AblationRow{
			Setting: fmt.Sprintf("%d segments", segs),
			CPUTime: time.Since(start),
			Steps:   eng.Stats.Steps,
			Err:     cmp.RMSE,
		})
	}
	return res, nil
}

func cloneDicksonWithSegments(p blocks.DicksonParams, segs int) blocks.DicksonParams {
	d := *p.Diode
	d.BuildTable(segs)
	p.Diode = &d
	return p
}

// AblationStability sweeps a factor on the stability step cap: inside
// the bound the march is stable; pushing the step past the bound makes
// the explicit update diverge, demonstrating the necessity of paper
// Eq. 7.
func AblationStability(duration float64) (AblationResult, error) {
	res := AblationResult{
		Title: "Ablation A3 — stability bound (paper Eqs. 6-7)",
		Note:  "factors <= 1 respect the diagonal-dominance cap; factors beyond\nit destabilise the explicit march exactly as the theory predicts.\n",
	}
	sc := ablationScenario(duration)
	for _, factor := range []float64{0.5, 0.9, 1.0, 2.0, 4.0} {
		h := harvester.New(sc.Cfg)
		eng := core.NewEngine(h.Sys)
		eng.Events = h.Kernel
		eng.StabilityFactor = factor
		eng.Ctl.HMax = 1e-3
		// Disable accuracy control and the LLE monitor so only the
		// stability cap governs (the monitor would otherwise rescue the
		// run by halving the step as the divergence churns the Jacobian).
		eng.Ctl.Rtol = 1e9
		eng.Ctl.Atol = 1e9
		eng.LLETol = 1e18
		start := time.Now()
		err := eng.Run(0, sc.Duration)
		row := AblationRow{
			Setting: fmt.Sprintf("%.2gx stability cap", factor),
			CPUTime: time.Since(start),
			Steps:   eng.Stats.Steps,
		}
		if err != nil {
			row.Failed = true
		} else {
			// Stability means the state stayed physical, not merely
			// finite: a weakly unstable march can saturate against the
			// step ceiling while the proof-mass "displacement" grows to
			// centimetres. Bound |z| at 5 cm (real travel is sub-mm) and
			// every state magnitude at 1e3.
			x := eng.State()
			genOff := h.Sys.MustStateOffset("gen")
			if math.Abs(x[genOff]) > 0.05 {
				row.Failed = true
			}
			for _, v := range x {
				if v != v || v > 1e3 || v < -1e3 {
					row.Failed = true
					break
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationAccuracy compares the proposed explicit engine against the
// classical implicit solver at matched step ceilings — the paper's
// "similar accuracy to that of a classical analogue solver".
func AblationAccuracy(duration float64) (AblationResult, error) {
	res := AblationResult{
		Title: "Ablation A4 — accuracy parity with the classical solver",
		Note:  "both engines sit within instrument noise of the tight reference.\n",
	}
	sc := ablationScenario(duration)
	ref, err := runReference(sc)
	if err != nil {
		return res, err
	}
	for _, kind := range []harvester.EngineKind{harvester.Proposed, harvester.ExistingTrap} {
		run, h, err := runTimed(kind.String(), sc, kind, 1)
		if err != nil {
			return res, err
		}
		cmp := trace.Compare(h.VcTrace, ref, 400)
		res.Rows = append(res.Rows, AblationRow{
			Setting: kind.String(),
			CPUTime: run.CPUTime,
			Steps:   run.Steps,
			Err:     cmp.RMSE,
		})
	}
	return res, nil
}
