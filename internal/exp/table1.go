package exp

import (
	"fmt"
	"time"

	"harvsim/internal/circuit"
	"harvsim/internal/harvester"
)

// Table1Row is one simulator environment's cost for the supercapacitor
// charging simulation (paper Table I).
type Table1Row struct {
	Simulator string // the environment this run stands in for
	Technique string
	Run       EngineRun
	// PaperCPU is the CPU time the paper reports for this environment on
	// its own (unscaled) workload — for shape comparison only.
	PaperCPU time.Duration
}

// Table1Result is the reproduced Table I.
type Table1Result struct {
	SimDuration float64 // simulated charging span [s]
	Rows        []Table1Row
}

// Table1 reproduces the paper's Table I: CPU times of the
// Newton-Raphson-based simulation environments on the supercapacitor
// charging problem, plus the proposed engine as reference. simDuration
// scales the charging horizon (the paper's full charge takes hours of
// simulated time; CPU-time ratios are per-step properties and transfer).
func Table1(simDuration float64) (Table1Result, error) {
	res := Table1Result{SimDuration: simDuration}
	sc := harvester.ChargeScenario(simDuration)

	// SystemVision stand-in: trapezoidal + Newton-Raphson over the block
	// model (the VHDL-AMS route).
	run, _, err := runTimed("SystemVision (VHDL-AMS)", sc, harvester.ExistingTrap, 1<<20)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Simulator: "SystemVision (VHDL-AMS)",
		Technique: "trapezoidal + Newton-Raphson",
		Run:       run,
		PaperCPU:  4*time.Hour + 24*time.Minute,
	})

	// PSPICE stand-in: full MNA equivalent-circuit simulation.
	mnaRun, err := runTable1MNA(simDuration)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Simulator: "OrCAD (PSPICE)",
		Technique: "MNA equivalent circuit + Newton-Raphson",
		Run:       mnaRun,
		PaperCPU:  9*time.Hour + 48*time.Minute,
	})

	// SystemC-A stand-in: BDF2/Gear + Newton-Raphson over the block model.
	run, _, err = runTimed("SystemC-A (Visual C++)", sc, harvester.ExistingBDF2, 1<<20)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Simulator: "SystemC-A (Visual C++)",
		Technique: "BDF2/Gear + Newton-Raphson",
		Run:       run,
		PaperCPU:  6*time.Hour + 40*time.Minute,
	})

	// The proposed technique, for reference (not a Table I column in the
	// paper, but the point of the comparison).
	run, _, err = runTimed("proposed (linearised state-space)", sc, harvester.Proposed, 1<<20)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Simulator: "proposed (this work)",
		Technique: "linearised state-space + Adams-Bashforth",
		Run:       run,
	})
	return res, nil
}

// runTable1MNA runs the equivalent-circuit netlist under the MNA
// transient engine.
func runTable1MNA(simDuration float64) (EngineRun, error) {
	p := circuit.DefaultEquivParams()
	h := circuit.BuildHarvester(p)
	tr := circuit.NewTransient(h.Net)
	tr.HMax = 2.5e-4
	start := time.Now()
	if err := tr.Run(0, simDuration); err != nil {
		return EngineRun{}, fmt.Errorf("exp: MNA run failed: %w", err)
	}
	return EngineRun{
		Label:    "OrCAD (PSPICE)",
		CPUTime:  time.Since(start),
		Steps:    tr.Stats.Steps,
		SimTime:  simDuration,
		HMeanSec: tr.Stats.HMean,
	}, nil
}

// String renders the table.
func (r Table1Result) String() string {
	var w tableWriter
	w.add("Simulator", "Technique", "CPU (this repro)", "Steps", "Paper CPU (full workload)")
	base := r.Rows[len(r.Rows)-1].Run // proposed
	for _, row := range r.Rows {
		paper := "-"
		if row.PaperCPU > 0 {
			paper = FormatDuration(row.PaperCPU)
		}
		cpu := FormatDuration(row.Run.CPUTime)
		if row.Run.Label != base.Label {
			cpu += fmt.Sprintf(" (%.0fx vs proposed)", base.Speedup(row.Run))
		}
		w.add(row.Simulator, row.Technique, cpu, fmt.Sprintf("%d", row.Run.Steps), paper)
	}
	return fmt.Sprintf("Table I — supercapacitor charging, %.3g s simulated\n%s",
		r.SimDuration, w.String())
}
