// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Table I, Table II, Fig. 8(a),
// Fig. 8(b), Fig. 9) plus the ablations called out in DESIGN.md, on
// scaled or paper-scale horizons. Each experiment returns a structured
// result that the benchmarks assert on and cmd/benchtab renders.
package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/core"
	"harvsim/internal/harvester"
	"harvsim/internal/trace"
)

// EngineRun summarises one engine execution.
type EngineRun struct {
	Label    string
	CPUTime  time.Duration
	Steps    int
	SimTime  float64
	HMeanSec float64
	// Stats carries the full unified per-run counters (refactorisations,
	// solves, allocations when measured) for the JSON report.
	Stats batch.EngineStats
}

// Speedup returns how much faster this run is than other (by CPU time,
// normalised to equal simulated spans).
func (r EngineRun) Speedup(other EngineRun) float64 {
	if r.CPUTime <= 0 || other.SimTime <= 0 || r.SimTime <= 0 {
		return math.NaN()
	}
	a := float64(other.CPUTime) / other.SimTime
	b := float64(r.CPUTime) / r.SimTime
	return a / b
}

// ExtrapolateTo estimates the CPU time for a longer simulated span
// (per-step cost is duration-invariant, so CPU time scales linearly).
func (r EngineRun) ExtrapolateTo(simTime float64) time.Duration {
	if r.SimTime <= 0 {
		return 0
	}
	return time.Duration(float64(r.CPUTime) * simTime / r.SimTime)
}

// runTimed executes a scenario under one engine and captures timing plus
// the unified per-run counters (steps, refactorisations, solves, and —
// for the proposed engine, which runs serially here — heap allocations).
func runTimed(label string, sc harvester.Scenario, kind harvester.EngineKind, decimate int) (EngineRun, *harvester.Harvester, error) {
	h := harvester.New(sc.Cfg)
	if err := h.Schedule(sc); err != nil {
		return EngineRun{}, nil, fmt.Errorf("exp: %s: %w", label, err)
	}
	eng := h.NewEngine(kind, decimate)
	if ce, ok := eng.(*core.Engine); ok {
		ce.MeasureAllocs = true
	}
	start := time.Now()
	err := h.RunEngine(eng, sc.Duration)
	elapsed := time.Since(start)
	if err != nil {
		return EngineRun{}, nil, fmt.Errorf("exp: %s failed: %w", label, err)
	}
	stats := batch.StatsOf(eng)
	return EngineRun{
		Label:    label,
		CPUTime:  elapsed,
		Steps:    stats.Steps,
		SimTime:  sc.Duration,
		HMeanSec: stats.HMean,
		Stats:    stats,
	}, h, nil
}

// MeasurementTwin produces the "experimental measurement" substitute for
// the validation waveforms of Figs. 8(b) and 9: the same scenario with
// the parasitics the paper says its HDL model omits (supercapacitor
// self-discharge, extra diode leakage, coil and damping tolerances),
// solved at a tight step, plus a small deterministic sensor noise. The
// paper attributes the simulation-vs-measurement gap to exactly these
// losses, so adding them reproduces the "close but not identical"
// correlation.
func MeasurementTwin(sc harvester.Scenario, decimate int) (*trace.Series, error) {
	cfg := sc.Cfg
	cfg.Supercap.RLeak = 1.2e6
	cfg.Microgen.Cp *= 1.07
	cfg.Microgen.Rc *= 1.05
	d := *cfg.Dickson.Diode
	d.Is *= 1.6
	d.BuildTable(4096)
	cfg.Dickson.Diode = &d
	twin := sc
	twin.Cfg = cfg
	h, err := harvester.Assemble(twin)
	if err != nil {
		return nil, err
	}
	if _, err := h.Run(harvester.Proposed, twin.Duration, decimate); err != nil {
		return nil, err
	}
	meas := trace.NewSeries("Vc.measured")
	// Deterministic pseudo-noise (instrument quantisation scale).
	seed := uint64(0x9e3779b97f4a7c15)
	for i, t := range h.VcTrace.Times {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		noise := (float64(seed%2048)/1024 - 1) * 2e-3
		meas.Append(t, h.VcTrace.Vals[i]+noise)
	}
	return meas, nil
}

// FormatDuration renders a duration the way the paper's tables do.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	default:
		return fmt.Sprintf("%.3gs", d.Seconds())
	}
}

// tableWriter accumulates aligned rows for terminal output.
type tableWriter struct {
	rows [][]string
}

func (w *tableWriter) add(cells ...string) { w.rows = append(w.rows, cells) }

func (w *tableWriter) String() string {
	if len(w.rows) == 0 {
		return ""
	}
	widths := make([]int, len(w.rows[0]))
	for _, row := range w.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, row := range w.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
