package exp

import (
	"math"
	"strings"
	"testing"
	"time"

	"harvsim/internal/harvester"
)

func TestTable1ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine run")
	}
	res, err := Table1(3)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(res.Rows))
	}
	proposed := res.Rows[3].Run
	for _, row := range res.Rows[:3] {
		if sp := proposed.Speedup(row.Run); sp < 1.2 {
			t.Errorf("%s should be slower than proposed: speedup %.2f", row.Simulator, sp)
		}
	}
	out := res.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "PSPICE") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine scenario runs")
	}
	res, err := Table2(harvester.Quick)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 scenarios, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The speedup is a wall-clock ratio: meaningless under the race
		// detector, whose instrumentation reshapes the per-step cost
		// profile of the two engine families differently (observed ~1.6x
		// under -race vs ~4x without on the same machine).
		if !raceEnabled && row.Speedup < 2 {
			t.Errorf("%s: proposed should clearly beat existing, speedup %.2f", row.Scenario, row.Speedup)
		}
		if row.VcRMSE > 0.05 {
			t.Errorf("%s: engines disagree: RMSE %.3g V", row.Scenario, row.VcRMSE)
		}
	}
	if !strings.Contains(res.String(), "Table II") {
		t.Fatalf("render incomplete")
	}
}

func TestFig8aPowerLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	res, err := Fig8a(harvester.Quick)
	if err != nil {
		t.Fatalf("Fig8a: %v", err)
	}
	// Calibration band around the paper's 116-118 uW.
	if res.RMSBefore < 70e-6 || res.RMSBefore > 190e-6 {
		t.Errorf("tuned-at-70 RMS = %v W, want ~118 uW", res.RMSBefore)
	}
	if res.RMSAfter < 70e-6 || res.RMSAfter > 190e-6 {
		t.Errorf("retuned-at-71 RMS = %v W, want ~117 uW", res.RMSAfter)
	}
	// The dip while detuned is the figure's visual signature.
	if res.RMSDetuned > 0.8*res.RMSBefore {
		t.Errorf("no visible dip: detuned %v vs tuned %v", res.RMSDetuned, res.RMSBefore)
	}
	// Before/after parity (paper: 118 vs 117 uW).
	ratio := res.RMSAfter / res.RMSBefore
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("before/after asymmetry too large: %v", ratio)
	}
	if !strings.Contains(res.String(), "Fig 8(a)") {
		t.Fatalf("render incomplete")
	}
}

func TestFig8bCloseCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario + twin runs")
	}
	res, err := Fig8b(harvester.Quick)
	if err != nil {
		t.Fatalf("Fig8b: %v", err)
	}
	// Close correlation, but not identical (the twin carries parasitics).
	if res.Comparison.RMSE > 0.08 {
		t.Errorf("correlation too loose: RMSE %v V", res.Comparison.RMSE)
	}
	if res.Comparison.RMSE == 0 {
		t.Errorf("twin identical to simulation; parasitics missing")
	}
}

func TestMeasurementTwinDiffersPhysically(t *testing.T) {
	if testing.Short() {
		t.Skip("twin run")
	}
	sc := harvester.ChargeScenario(5)
	sc.Cfg.InitialVc = 2.5
	_, h, err := runTimed("base", sc, harvester.Proposed, 16)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	twin, err := MeasurementTwin(sc, 16)
	if err != nil {
		t.Fatalf("twin: %v", err)
	}
	// The twin must sit slightly below the ideal simulation (leakage and
	// higher losses) — at least by the end of the horizon.
	_, vSim := h.VcTrace.Last()
	_, vTwin := twin.Last()
	if vTwin >= vSim {
		t.Errorf("twin should lose energy to parasitics: twin %v vs sim %v", vTwin, vSim)
	}
}

func TestEngineRunHelpers(t *testing.T) {
	a := EngineRun{Label: "a", CPUTime: 10 * time.Second, SimTime: 100}
	b := EngineRun{Label: "b", CPUTime: 1 * time.Second, SimTime: 10}
	// Same per-sim-second cost: speedup 1.
	if sp := a.Speedup(b); math.Abs(sp-1) > 1e-9 {
		t.Fatalf("Speedup = %v, want 1", sp)
	}
	c := EngineRun{Label: "c", CPUTime: 1 * time.Second, SimTime: 100}
	if sp := c.Speedup(a); math.Abs(sp-10) > 1e-9 {
		t.Fatalf("Speedup = %v, want 10", sp)
	}
	if got := a.ExtrapolateTo(1000); got != 100*time.Second {
		t.Fatalf("ExtrapolateTo = %v", got)
	}
	if FormatDuration(90*time.Minute) != "1.5h" {
		t.Fatalf("FormatDuration hour form wrong")
	}
	if FormatDuration(90*time.Second) != "1.5min" {
		t.Fatalf("FormatDuration minute form wrong")
	}
	if FormatDuration(1500*time.Millisecond) != "1.5s" {
		t.Fatalf("FormatDuration second form wrong: %s", FormatDuration(1500*time.Millisecond))
	}
}

func TestAblationStabilityDemonstratesBound(t *testing.T) {
	if testing.Short() {
		t.Skip("stability sweep")
	}
	res, err := AblationStability(2)
	if err != nil {
		t.Fatalf("AblationStability: %v", err)
	}
	byFactor := map[string]bool{}
	for _, row := range res.Rows {
		byFactor[row.Setting] = row.Failed
	}
	if byFactor["0.9x stability cap"] {
		t.Errorf("run inside the bound should be stable")
	}
	if !byFactor["4x stability cap"] {
		t.Errorf("run far past the bound should diverge")
	}
}

func TestAblationPWLSpeedFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("granularity sweep")
	}
	res, err := AblationPWL(2)
	if err != nil {
		t.Fatalf("AblationPWL: %v", err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("too few rows")
	}
	// Paper claim: table size does not affect simulation speed. The
	// lookup is O(1); the residual coupling in this implementation is the
	// refresh frequency (finer tables change segment more often), which
	// stays within a small constant band across a 1000x granularity
	// range — far from the linear growth a non-tabular model would show.
	minCPU, maxCPU := math.Inf(1), 0.0
	for _, row := range res.Rows {
		s := row.CPUTime.Seconds()
		minCPU = math.Min(minCPU, s)
		maxCPU = math.Max(maxCPU, s)
	}
	if maxCPU > 6*minCPU {
		t.Errorf("CPU not flat across granularity: %v .. %v s", minCPU, maxCPU)
	}
}
