package implicit

import (
	"math"
	"testing"

	"harvsim/internal/core"
	"harvsim/internal/trace"
)

// Test blocks: an ideal source and a series-R shunt-C load, plus a
// nonlinear diode-clamped capacitor to exercise the Newton path.

type srcBlock struct {
	name    string
	v       func(t float64) float64
	stamped bool
}

func (b *srcBlock) Name() string        { return b.name }
func (b *srcBlock) NumStates() int      { return 0 }
func (b *srcBlock) NumEquations() int   { return 1 }
func (b *srcBlock) Terminals() []string { return []string{"Vp", "Ip"} }
func (b *srcBlock) InitState([]float64) {}

func (b *srcBlock) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	st.G(0, -b.v(t))
	if b.stamped {
		return false
	}
	st.D(0, 0, 1)
	st.D(0, 1, 0)
	b.stamped = true
	return true
}

func (b *srcBlock) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	fy[0] = y[0] - b.v(t)
}

func (b *srcBlock) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	st.D(0, 0, 1)
	st.D(0, 1, 0)
	b.stamped = false
}

type rcBlock struct {
	name    string
	r, c    float64
	stamped bool
}

func (b *rcBlock) Name() string          { return b.name }
func (b *rcBlock) NumStates() int        { return 1 }
func (b *rcBlock) NumEquations() int     { return 1 }
func (b *rcBlock) Terminals() []string   { return []string{"Vp", "Ip"} }
func (b *rcBlock) InitState(x []float64) { x[0] = 0 }

func (b *rcBlock) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	if b.stamped {
		return false
	}
	rc := b.r * b.c
	st.A(0, 0, -1/rc)
	st.B(0, 0, 1/rc)
	st.C(0, 0, 1/b.r)
	st.D(0, 0, -1/b.r)
	st.D(0, 1, 1)
	b.stamped = true
	return true
}

func (b *rcBlock) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	fx[0] = (y[0] - x[0]) / (b.r * b.c)
	fy[0] = y[1] - (y[0]-x[0])/b.r
}

func (b *rcBlock) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	rc := b.r * b.c
	st.A(0, 0, -1/rc)
	st.B(0, 0, 1/rc)
	st.C(0, 0, 1/b.r)
	st.D(0, 0, -1/b.r)
	st.D(0, 1, 1)
	b.stamped = false
}

// diodeRC: capacitor charged from the source through an exponential
// diode: dVc/dt = Id/C, Id = Is*(exp((Vp-Vc)/Vt)-1); terminal relation
// 0 = Ip - Id. A genuinely nonlinear block requiring Newton.
type diodeRC struct {
	name       string
	c, is, vt  float64
	lastExpArg float64
}

func (b *diodeRC) Name() string          { return b.name }
func (b *diodeRC) NumStates() int        { return 1 }
func (b *diodeRC) NumEquations() int     { return 1 }
func (b *diodeRC) Terminals() []string   { return []string{"Vp", "Ip"} }
func (b *diodeRC) InitState(x []float64) { x[0] = 0 }

func (b *diodeRC) current(vd float64) float64 {
	// Clip the exponent for robustness far from the solution.
	arg := vd / b.vt
	if arg > 60 {
		arg = 60
	}
	return b.is * (math.Exp(arg) - 1)
}

func (b *diodeRC) conductance(vd float64) float64 {
	arg := vd / b.vt
	if arg > 60 {
		arg = 60
	}
	return b.is * math.Exp(arg) / b.vt
}

func (b *diodeRC) Linearise(t float64, x, y []float64, st core.Stamp) bool {
	vd := y[0] - x[0]
	g := b.conductance(vd)
	id := b.current(vd)
	j := id - g*vd
	st.A(0, 0, -g/b.c)
	st.B(0, 0, g/b.c)
	st.E(0, j/b.c)
	st.C(0, 0, g)
	st.D(0, 0, -g)
	st.D(0, 1, 1)
	st.G(0, -j)
	changed := math.Abs(vd-b.lastExpArg) > 1e-3
	if changed {
		b.lastExpArg = vd
	}
	return changed
}

func (b *diodeRC) EvalNonlinear(t float64, x, y, fx, fy []float64) {
	id := b.current(y[0] - x[0])
	fx[0] = id / b.c
	fy[0] = y[1] - id
}

func (b *diodeRC) JacNonlinear(t float64, x, y []float64, st core.Stamp) {
	g := b.conductance(y[0] - x[0])
	st.A(0, 0, -g/b.c)
	st.B(0, 0, g/b.c)
	st.C(0, 0, g)
	st.D(0, 0, -g)
	st.D(0, 1, 1)
}

func buildRCSys(v func(t float64) float64, r, c float64) *core.System {
	sys := core.NewSystem()
	sys.AddBlock(&srcBlock{name: "src", v: v})
	sys.AddBlock(&rcBlock{name: "rc", r: r, c: c})
	return sys
}

func TestMethodString(t *testing.T) {
	if BackwardEuler.String() != "backward-euler" ||
		Trapezoidal.String() != "trapezoidal" ||
		BDF2.String() != "bdf2-gear" {
		t.Fatalf("method names wrong")
	}
	if Method(99).String() == "" {
		t.Fatalf("unknown method should still render")
	}
}

func TestImplicitRCAllMethods(t *testing.T) {
	r, c := 1e3, 1e-6
	v0 := 5.0
	for _, m := range []Method{BackwardEuler, Trapezoidal, BDF2} {
		sys := buildRCSys(func(float64) float64 { return v0 }, r, c)
		eng := NewEngine(sys, m)
		eng.Ctl.HMax = 1e-4
		var rec trace.Series
		eng.Observe(func(tm float64, x, y []float64) { rec.Append(tm, x[0]) })
		if err := eng.Run(0, 5e-3); err != nil {
			t.Fatalf("%v Run: %v", m, err)
		}
		for _, tm := range []float64{1e-3, 3e-3, 5e-3} {
			want := v0 * (1 - math.Exp(-tm/(r*c)))
			got := rec.At(tm)
			tol := 0.02 * v0
			if m != BackwardEuler {
				tol = 5e-3 * v0
			}
			if math.Abs(got-want) > tol {
				t.Fatalf("%v: Vc(%v) = %v, want %v", m, tm, got, want)
			}
		}
		if eng.Stats.Steps == 0 || eng.Stats.NewtonIters == 0 {
			t.Fatalf("%v stats not recorded: %+v", m, eng.Stats)
		}
	}
}

func TestImplicitDiodeCharging(t *testing.T) {
	// Diode-RC charging from a sine source: a peak rectifier. The
	// capacitor voltage must approach the source peak minus a diode drop
	// and never exceed the peak.
	amp := 3.0
	sys := core.NewSystem()
	sys.AddBlock(&srcBlock{name: "src", v: func(tm float64) float64 {
		return amp * math.Sin(2*math.Pi*50*tm)
	}})
	sys.AddBlock(&diodeRC{name: "d", c: 1e-5, is: 1e-9, vt: 26e-3})
	eng := NewEngine(sys, Trapezoidal)
	eng.Ctl.HMax = 2e-4
	var rec trace.Series
	eng.Observe(func(tm float64, x, y []float64) { rec.Append(tm, x[0]) })
	if err := eng.Run(0, 0.2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, vEnd := rec.Last()
	if vEnd < amp-0.8 || vEnd > amp {
		t.Fatalf("rectified voltage = %v, want within a diode drop of %v", vEnd, amp)
	}
	// Monotone non-decreasing (no discharge path).
	for i := 1; i < rec.Len(); i++ {
		if rec.Vals[i] < rec.Vals[i-1]-1e-6 {
			t.Fatalf("capacitor discharged at %v", rec.Times[i])
		}
	}
}

func TestImplicitMatchesExplicitOnNonlinearSystem(t *testing.T) {
	// The proposed explicit engine and the trapezoidal Newton baseline
	// must agree on the diode rectifier within tolerance — the paper's
	// "similar accuracy to a classical analogue solver".
	amp := 2.0
	mk := func() *core.System {
		sys := core.NewSystem()
		sys.AddBlock(&srcBlock{name: "src", v: func(tm float64) float64 {
			return amp * math.Sin(2*math.Pi*50*tm)
		}})
		sys.AddBlock(&diodeRC{name: "d", c: 2e-5, is: 1e-9, vt: 26e-3})
		return sys
	}
	var expl, impl trace.Series
	e1 := core.NewEngine(mk())
	e1.Ctl.HMax = 5e-5
	e1.Observe(func(tm float64, x, y []float64) { expl.Append(tm, x[0]) })
	if err := e1.Run(0, 0.1); err != nil {
		t.Fatalf("explicit Run: %v", err)
	}
	e2 := NewEngine(mk(), Trapezoidal)
	e2.Ctl.HMax = 5e-5
	e2.Observe(func(tm float64, x, y []float64) { impl.Append(tm, x[0]) })
	if err := e2.Run(0, 0.1); err != nil {
		t.Fatalf("implicit Run: %v", err)
	}
	cmp := trace.Compare(&expl, &impl, 400)
	if cmp.NRMSE > 0.02 {
		t.Fatalf("explicit vs implicit NRMSE = %v, want < 2%%: %+v", cmp.NRMSE, cmp)
	}
}

func TestImplicitEventsHandled(t *testing.T) {
	level := 1.0
	sys := core.NewSystem()
	sys.AddBlock(&srcBlock{name: "src", v: func(float64) float64 { return level }})
	sys.AddBlock(&rcBlock{name: "rc", r: 1e3, c: 1e-6})
	ev := &oneEvent{at: 2e-3, action: func() { level = 2 }}
	eng := NewEngine(sys, Trapezoidal)
	eng.Events = ev
	eng.Ctl.HMax = 1e-4
	var rec trace.Series
	eng.Observe(func(tm float64, x, y []float64) { rec.Append(tm, x[0]) })
	if err := eng.Run(0, 8e-3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ev.fired {
		t.Fatalf("event did not fire")
	}
	if _, v := rec.Last(); math.Abs(v-2) > 0.05 {
		t.Fatalf("final Vc = %v, want ~2", v)
	}
}

type oneEvent struct {
	at     float64
	action func()
	fired  bool
}

func (e *oneEvent) Next() float64 {
	if e.fired {
		return math.Inf(1)
	}
	return e.at
}

func (e *oneEvent) Fire(now float64) bool {
	if !e.fired && e.at <= now+1e-12 {
		e.fired = true
		e.action()
		return true
	}
	return false
}

func TestImplicitRunValidation(t *testing.T) {
	sys := buildRCSys(func(float64) float64 { return 1 }, 1e3, 1e-6)
	eng := NewEngine(sys, Trapezoidal)
	if err := eng.Run(1, 0); err == nil {
		t.Fatalf("reversed span should error")
	}
}

func TestImplicitBDF2MoreAccurateThanBE(t *testing.T) {
	r, c := 1e3, 1e-6
	run := func(m Method) float64 {
		sys := buildRCSys(func(float64) float64 { return 1 }, r, c)
		eng := NewEngine(sys, m)
		eng.Ctl.HMax = 2e-4
		eng.Ctl.Rtol = 1e9 // force fixed large steps: isolate formula error
		eng.Ctl.Atol = 1e9
		if err := eng.Run(0, 3e-3); err != nil {
			t.Fatalf("Run: %v", err)
		}
		want := 1 - math.Exp(-3e-3/(r*c))
		return math.Abs(eng.State()[0] - want)
	}
	if be, bdf := run(BackwardEuler), run(BDF2); bdf >= be {
		t.Fatalf("BDF2 error %v should beat BE error %v at equal steps", bdf, be)
	}
}
