// Package implicit implements the "existing technique" baselines of the
// paper's Tables I and II: implicit integration (Backward Euler,
// Trapezoidal, variable-step BDF2/Gear) with a full Newton-Raphson solve
// of the nonlinear analogue equations at every time step, as performed by
// the commercial HDL and circuit simulators the paper compares against
// (SystemVision/VHDL-AMS, OrCAD PSPICE, SystemC-A).
//
// The engines run on the same core.System block models as the proposed
// explicit engine, but use the blocks' exact nonlinear equations
// (EvalNonlinear/JacNonlinear) rather than the PWL linearisation — each
// accepted step costs several Newton iterations, each with a dense LU
// factorisation of the full (N+M) Jacobian and exponential device
// evaluations. That per-step cost, multiplied by the sub-millisecond
// steps the 50-100 Hz excitation demands over multi-hour storage
// transients, is precisely the CPU-time bottleneck the paper identifies.
package implicit

import (
	"fmt"
	"math"

	"harvsim/internal/core"
	"harvsim/internal/la"
	"harvsim/internal/newton"
	"harvsim/internal/ode"
)

// Method selects the implicit integration formula.
type Method int

const (
	// BackwardEuler is first-order implicit Euler.
	BackwardEuler Method = iota
	// Trapezoidal is the second-order trapezoidal rule (SPICE default).
	Trapezoidal
	// BDF2 is the second-order backward differentiation (Gear) formula
	// with variable-step coefficients.
	BDF2
)

// String names the method.
func (m Method) String() string {
	switch m {
	case BackwardEuler:
		return "backward-euler"
	case Trapezoidal:
		return "trapezoidal"
	case BDF2:
		return "bdf2-gear"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Stats reports the work an implicit run performed.
type Stats struct {
	Steps       int
	Rejected    int
	NewtonIters int
	NewtonFails int
	FuncEvals   int
	LUFactors   int
	EventsFired int
	HMean       float64
	SimTime     float64
}

// Engine is a Newton-Raphson implicit transient simulator over a
// core.System.
type Engine struct {
	Sys    *core.System
	Method Method
	Ctl    ode.Controller
	Newton newton.Options

	Events    core.Events
	Observers []core.Observer

	Stats Stats

	// workspace
	nx, ny, n int
	x, y      []float64
	xPrev     []float64 // state one accepted step back (for BDF2)
	tPrev     float64
	havePrev  bool
	fxN, fyN  []float64 // f at the start of the step (for trapezoidal)
	u         []float64 // Newton unknown [x; y]
	pred      []float64 // predictor for the LTE estimate
	errv      []float64
	solver    *newton.Solver
	h         float64
	gamma     float64
	c0, c1    float64 // BDF2 history weights
}

// NewEngine returns an implicit engine with SPICE-like defaults.
func NewEngine(sys *core.System, m Method) *Engine {
	ctl := ode.DefaultController()
	return &Engine{Sys: sys, Method: m, Ctl: ctl, Newton: newton.DefaultOptions()}
}

// Observe registers a waveform probe.
func (e *Engine) Observe(o core.Observer) { e.Observers = append(e.Observers, o) }

// State returns the current state vector (live view).
func (e *Engine) State() []float64 { return e.x }

// Terminals returns the current terminal-variable vector (live view).
func (e *Engine) Terminals() []float64 { return e.y }

func (e *Engine) alloc() error {
	if err := e.Sys.Build(); err != nil {
		return err
	}
	e.nx, e.ny = e.Sys.NX(), e.Sys.NY()
	e.n = e.nx + e.ny
	e.x = make([]float64, e.nx)
	e.y = make([]float64, e.ny)
	e.xPrev = make([]float64, e.nx)
	e.fxN = make([]float64, e.nx)
	e.fyN = make([]float64, e.ny)
	e.u = make([]float64, e.n)
	e.pred = make([]float64, e.nx)
	e.errv = make([]float64, e.nx)
	e.solver = newton.NewSolver(e.n, e.Newton)
	return nil
}

// residual evaluates the implicit-step residual at the Newton iterate u.
func (e *Engine) residual(t float64, u, dst []float64) {
	xNew := u[:e.nx]
	yNew := u[e.nx:]
	fx := dst[:e.nx]
	fy := dst[e.nx:]
	e.Sys.EvalNonlinear(t, xNew, yNew, fx, fy)
	e.Stats.FuncEvals++
	gh := e.gamma * e.h
	switch e.Method {
	case Trapezoidal:
		for i := 0; i < e.nx; i++ {
			fx[i] = xNew[i] - e.x[i] - gh*fx[i] - gh*e.fxN[i]
		}
	case BDF2:
		if e.havePrev {
			for i := 0; i < e.nx; i++ {
				fx[i] = xNew[i] - e.c0*e.x[i] - e.c1*e.xPrev[i] - gh*fx[i]
			}
		} else {
			for i := 0; i < e.nx; i++ {
				fx[i] = xNew[i] - e.x[i] - gh*fx[i]
			}
		}
	default: // BackwardEuler
		for i := 0; i < e.nx; i++ {
			fx[i] = xNew[i] - e.x[i] - gh*fx[i]
		}
	}
}

// jacobian assembles the residual Jacobian at the iterate u:
//
//	[ I - gamma*h*Jxx   -gamma*h*Jxy ]
//	[      Jyx               Jyy     ]
func (e *Engine) jacobian(t float64, u []float64, dst *la.Matrix) {
	xNew := u[:e.nx]
	yNew := u[e.nx:]
	e.Sys.JacNonlinear(t, xNew, yNew)
	e.Stats.LUFactors++ // one LU per Jacobian in newton.Solver
	gh := e.gamma * e.h
	for i := 0; i < e.nx; i++ {
		for j := 0; j < e.nx; j++ {
			v := -gh * e.Sys.Jxx.At(i, j)
			if i == j {
				v += 1
			}
			dst.Set(i, j, v)
		}
		for k := 0; k < e.ny; k++ {
			dst.Set(i, e.nx+k, -gh*e.Sys.Jxy.At(i, k))
		}
	}
	for r := 0; r < e.ny; r++ {
		for j := 0; j < e.nx; j++ {
			dst.Set(e.nx+r, j, e.Sys.Jyx.At(r, j))
		}
		for k := 0; k < e.ny; k++ {
			dst.Set(e.nx+r, e.nx+k, e.Sys.Jyy.At(r, k))
		}
	}
}

// initialY solves the algebraic subsystem fy(t0, x0, y) = 0 for a
// consistent starting point.
func (e *Engine) initialY(t float64) error {
	s := newton.NewSolver(e.ny, e.Newton)
	f := func(y, dst []float64) {
		e.Sys.EvalNonlinear(t, e.x, y, e.fxN, dst)
	}
	jac := func(y []float64, dst *la.Matrix) {
		e.Sys.JacNonlinear(t, e.x, y)
		dst.CopyFrom(e.Sys.Jyy)
	}
	if err := s.Solve(f, jac, e.y); err != nil {
		return fmt.Errorf("implicit: no consistent initial terminal variables: %w", err)
	}
	return nil
}

// methodOrder returns the LTE order of the active formula.
func (e *Engine) methodOrder() int {
	if e.Method == BackwardEuler {
		return 1
	}
	return 2
}

// Run marches the system from t0 to tEnd with adaptive steps.
func (e *Engine) Run(t0, tEnd float64) error {
	if tEnd <= t0 {
		return fmt.Errorf("implicit: empty time span [%g, %g]", t0, tEnd)
	}
	if err := e.alloc(); err != nil {
		return err
	}
	e.Stats = Stats{}
	e.Sys.InitState(e.x)
	t := t0
	if err := e.initialY(t); err != nil {
		return err
	}
	for _, o := range e.Observers {
		o(t, e.x, e.y)
	}
	h := math.Min(e.Ctl.HMax, (tEnd-t0)/10)
	if h < e.Ctl.HMin {
		h = e.Ctl.HMin
	}
	var hSum float64
	for t < tEnd {
		horizon := tEnd
		if e.Events != nil {
			if te := e.Events.Next(); te > t && te < horizon {
				horizon = te
			}
		}
		hTry := h
		if t+hTry > horizon {
			hTry = horizon - t
		}
		if hTry <= 0 {
			hTry = math.Min(e.Ctl.HMin, horizon-t)
		}

		accepted := false
		for attempt := 0; attempt < 40 && !accepted; attempt++ {
			e.h = hTry
			tNew := t + hTry
			// Formula-dependent coefficients.
			switch e.Method {
			case Trapezoidal:
				e.gamma = 0.5
			case BDF2:
				if e.havePrev {
					rho := hTry / (t - e.tPrev)
					e.gamma = (1 + rho) / (1 + 2*rho)
					on := (1 + rho) * (1 + rho) / (1 + 2*rho)
					e.c0 = on
					e.c1 = 1 - on
				} else {
					e.gamma = 1
				}
			default:
				e.gamma = 1
			}
			// Derivative at the step start (used by the trapezoidal
			// residual) and explicit-Euler predictor, which serves both
			// as the LTE reference and the Newton starting point.
			e.Sys.EvalNonlinear(t, e.x, e.y, e.fxN, e.fyN)
			e.Stats.FuncEvals++
			for i := 0; i < e.nx; i++ {
				e.pred[i] = e.x[i] + hTry*e.fxN[i]
				e.u[i] = e.pred[i]
			}
			copy(e.u[e.nx:], e.y)

			tt := tNew
			err := e.solver.Solve(
				func(u, dst []float64) { e.residual(tt, u, dst) },
				func(u []float64, dst *la.Matrix) { e.jacobian(tt, u, dst) },
				e.u,
			)
			e.Stats.NewtonIters += e.solver.Stats.Iterations
			if err != nil {
				e.Stats.NewtonFails++
				hTry = math.Max(hTry/4, e.Ctl.HMin)
				if t+hTry > horizon {
					hTry = horizon - t
				}
				e.Stats.Rejected++
				continue
			}
			// LTE estimate from corrector-predictor difference.
			for i := 0; i < e.nx; i++ {
				e.errv[i] = (e.u[i] - e.pred[i]) / 3
			}
			errNorm := e.Ctl.ErrNorm(e.errv, e.x)
			accept, hNext := e.Ctl.Decide(hTry, errNorm, e.methodOrder(), math.Inf(1))
			if !accept {
				e.Stats.Rejected++
				hTry = hNext
				if t+hTry > horizon {
					hTry = horizon - t
				}
				continue
			}
			// Commit.
			copy(e.xPrev, e.x)
			e.tPrev = t
			e.havePrev = true
			copy(e.x, e.u[:e.nx])
			copy(e.y, e.u[e.nx:])
			t = tNew
			hSum += hTry
			e.Stats.Steps++
			h = hNext
			accepted = true
		}
		if !accepted {
			return fmt.Errorf("implicit: step control stalled at t=%g (h=%g)", t, hTry)
		}
		for _, o := range e.Observers {
			o(t, e.x, e.y)
		}
		if e.Events != nil && e.Events.Next() <= t+1e-12 {
			e.Stats.EventsFired++
			if e.Events.Fire(t) {
				e.havePrev = false // formula history crosses a discontinuity
				// Re-derive consistent terminal values under new params.
				if err := e.initialY(t); err != nil {
					return err
				}
			}
		}
	}
	if e.Stats.Steps > 0 {
		e.Stats.HMean = hSum / float64(e.Stats.Steps)
	}
	e.Stats.SimTime = tEnd - t0
	return nil
}
