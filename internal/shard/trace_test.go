package shard

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"harvsim/internal/tracing"
	"harvsim/internal/wire"
)

// TestCoordinatedTraceIsConnected pins the tentpole acceptance
// criterion: a 3-worker coordinated sweep submitted with a trace id
// yields ONE connected trace — every span emitted by the coordinator
// and by each worker is reachable from the single sweep root via
// parent links, after the coordinator imports each shard's spans.
func TestCoordinatedTraceIsConnected(t *testing.T) {
	_, urls := startFleet(t, 3)
	coord := New(Options{Workers: urls})
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	trace := tracing.NewTraceID()
	acc := post(t, ts.URL, wire.SweepRequest{Spec: grid64(0.02), Trace: trace})
	results, _ := stream(t, ts.URL, acc, nil)
	if len(results) != 64 {
		t.Fatalf("got %d results, want 64", len(results))
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + acc.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %s", resp.Status)
	}
	var spans []wire.SpanLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ln wire.SpanLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		spans = append(spans, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(spans) < 64 {
		t.Fatalf("%d spans for 64 jobs", len(spans))
	}
	byID := make(map[string]wire.SpanLine, len(spans))
	var roots []wire.SpanLine
	jobSpans, shardWorkers := 0, map[string]bool{}
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %s carries trace %q, want %q", s.ID, s.Trace, trace)
		}
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span id %s", s.ID)
		}
		byID[s.ID] = s
		if s.Parent == "" {
			roots = append(roots, s)
		}
		if s.Name == "job" {
			jobSpans++
		}
		if s.Name == "shard" {
			shardWorkers[s.Worker] = true
		}
	}
	if len(roots) != 1 || roots[0].Name != "sweep" {
		t.Fatalf("want exactly one root 'sweep' span, got %+v", roots)
	}
	if jobSpans != 64 {
		t.Fatalf("%d job spans for 64 jobs", jobSpans)
	}
	// Rendezvous over a 64-point grid spreads across all three workers;
	// each placement produced a coordinator-side shard span tagged with
	// the worker URL.
	if len(shardWorkers) != 3 {
		t.Fatalf("shard spans cover workers %v, want all 3", shardWorkers)
	}
	for _, s := range spans {
		hops := 0
		for cur := s; cur.Parent != ""; hops++ {
			p, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %s (%s, worker %q) has dangling parent %s",
					s.ID, s.Name, s.Worker, cur.Parent)
			}
			if hops > len(spans) {
				t.Fatalf("parent cycle at span %s", s.ID)
			}
			cur = p
		}
	}
}

// TestCoordVersionStampOnAllJSONRoutes mirrors the server-side check:
// every JSON body the coordinator emits carries the wire-version stamp.
func TestCoordVersionStampOnAllJSONRoutes(t *testing.T) {
	_, urls := startFleet(t, 2)
	coord := New(Options{Workers: urls})
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	acc := post(t, ts.URL, wire.SweepRequest{Spec: grid64(0.01)})
	stream(t, ts.URL, acc, nil)

	checkStamp := func(name string, body []byte) {
		t.Helper()
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v, ok := m["v"].(float64)
		if !ok || int(v) != wire.Version {
			t.Fatalf("%s: response carries no v=%d stamp: %s", name, wire.Version, body)
		}
	}

	accBody, err := json.Marshal(acc)
	if err != nil {
		t.Fatal(err)
	}
	checkStamp("POST /v1/sweep", accBody)

	for _, route := range []string{
		"/v1/jobs/" + acc.ID,
		"/v1/workers",
		"/healthz",
	} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", route, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		checkStamp("GET "+route, body)
	}
}
