package shard

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvsim/internal/wire"
)

// scrape fetches a /metrics exposition from any base URL (coordinator
// or worker).
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// sample extracts one un-labelled metric value from an exposition body.
func sample(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %q not in exposition:\n%s", name, body)
	return 0
}

// drainWorker POSTs the drain request and checks the acknowledgement.
func drainWorker(t *testing.T, coordURL, workerURL string) {
	t.Helper()
	resp, err := http.Post(coordURL+"/v1/workers/drain?worker="+workerURL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("drain %s: %s: %s", workerURL, resp.Status, msg)
	}
	var ds wire.DrainStatus
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	if ds.State != wire.WorkerDraining || ds.Worker != strings.TrimRight(workerURL, "/") {
		t.Fatalf("drain acknowledgement %+v", ds)
	}
}

// fleetStates fetches GET /v1/workers and maps worker URL -> state.
func fleetStates(t *testing.T, coordURL string) map[string]string {
	t.Helper()
	resp, err := http.Get(coordURL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs wire.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(fs.Workers))
	for _, ws := range fs.Workers {
		out[ws.URL] = ws.State
	}
	return out
}

// TestClientReusesConnections pins the tuned-transport fix: the
// coordinator's default client must keep enough idle connections per
// worker that a second wave of concurrent calls re-uses the first
// wave's sockets. The bare &http.Client{} it used to fall back to keeps
// only 2 idle conns per host, so the second wave would re-dial.
func TestClientReusesConnections(t *testing.T) {
	var newConns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	ts.Config.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateNew {
			newConns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	c := New(Options{Workers: []string{ts.URL}})

	const wave = 8
	fire := func() {
		var wg sync.WaitGroup
		for i := 0; i < wave; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := c.client.Get(ts.URL + "/healthz")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}()
		}
		wg.Wait()
	}
	fire()
	afterFirst := newConns.Load()
	if afterFirst > wave {
		t.Fatalf("first wave of %d concurrent calls opened %d connections", wave, afterFirst)
	}
	// Give the transport a beat to park the connections idle.
	time.Sleep(50 * time.Millisecond)
	fire()
	if total := newConns.Load(); total > afterFirst {
		t.Errorf("second wave dialled %d new connections (total %d after %d) — idle pool too small",
			total-afterFirst, total, afterFirst)
	}
}

// TestDrainExcludesWorkerFromNewSweeps: a drained worker takes no new
// sweeps (proved by its own /metrics staying at zero), the fleet view
// reports it draining, and draining the whole fleet yields the same
// no_workers rejection as a dead fleet.
func TestDrainExcludesWorkerFromNewSweeps(t *testing.T) {
	_, urls := startFleet(t, 2)
	coord := httptest.NewServer(New(Options{Workers: urls}).Handler())
	defer coord.Close()

	drainWorker(t, coord.URL, urls[0])

	states := fleetStates(t, coord.URL)
	if states[urls[0]] != wire.WorkerDraining || states[urls[1]] != wire.WorkerLive {
		t.Fatalf("fleet states after drain: %v", states)
	}

	results, summary := stream(t, coord.URL, post(t, coord.URL, wire.SweepRequest{Spec: grid64(0.25)}), nil)
	if len(results) != 64 || summary.Failed != 0 {
		t.Fatalf("sweep on drained fleet: %d results, summary %+v", len(results), summary)
	}
	if summary.Workers != 1 {
		t.Errorf("summary says %d workers served the sweep, want 1 (one of two drained)", summary.Workers)
	}
	if got := sample(t, scrape(t, urls[0]), "harvsim_server_sweeps_finished_total"); got != 0 {
		t.Errorf("drained worker ran %g sweeps, want 0", got)
	}
	if got := sample(t, scrape(t, urls[1]), "harvsim_server_sweeps_finished_total"); got == 0 {
		t.Error("surviving worker ran no sweeps")
	}

	// Unknown worker: 404 with the canonical envelope.
	resp, err := http.Post(coord.URL+"/v1/workers/drain?worker=http://nope.invalid:1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var e wire.Error
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || e.Error.Code != wire.CodeNotFound {
		t.Errorf("drain of unknown worker: %d %+v", resp.StatusCode, e)
	}

	// Drain the survivor too: the fleet has nowhere to run.
	drainWorker(t, coord.URL, urls[1])
	body := `{"spec":{"scenario":{"kind":"charge","duration_s":0.1}}}`
	resp, err = http.Post(coord.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || e.Error.Code != wire.CodeNoWorkers {
		t.Errorf("all-drained fleet accepted a sweep: %d %+v", resp.StatusCode, e)
	}
}

// TestDrainMidSweepCompletesInFlight is the acceptance criterion:
// draining a worker while its shard streams leaves the in-flight sweep
// untouched — it completes bit-identically with lost_workers == 0 — and
// only the next sweep routes around the drained worker.
func TestDrainMidSweepCompletesInFlight(t *testing.T) {
	spec := grid64(2)
	baseline, _ := singleHostBaseline(t, spec)

	_, urls := startFleet(t, 3)
	coord := httptest.NewServer(New(Options{Workers: urls}).Handler())
	defer coord.Close()

	acc := post(t, coord.URL, wire.SweepRequest{Spec: spec})
	drained := false
	results, summary := stream(t, coord.URL, acc, func(n int) {
		if n == 3 && !drained {
			drained = true
			drainWorker(t, coord.URL, urls[0])
		}
	})
	if !drained {
		t.Fatal("drain hook never fired")
	}
	if len(results) != 64 || summary.Jobs != 64 || summary.Failed != 0 {
		t.Fatalf("drained mid-sweep: %d results, summary %+v", len(results), summary)
	}
	if summary.LostWorkers != 0 || summary.Resharded != 0 || summary.Retries != 0 {
		t.Errorf("drain mid-sweep triggered loss handling: %+v", summary)
	}
	seen := map[int]int{}
	for _, r := range results {
		seen[r.Index]++
		if r.Error != "" {
			t.Errorf("index %d failed during drain: %s", r.Index, r.Error)
		}
	}
	for ix := 0; ix < 64; ix++ {
		if seen[ix] != 1 {
			t.Fatalf("index %d delivered %d times, want exactly once", ix, seen[ix])
		}
	}
	base, got := identityFields(baseline), identityFields(results)
	for ix, want := range base {
		if got[ix] != want {
			t.Errorf("index %d: drained-sweep metrics %v != single-host %v", ix, got[ix], want)
		}
	}

	// The drained worker served exactly its one in-flight shard; a fresh
	// sweep afterwards must not touch it.
	served := sample(t, scrape(t, urls[0]), "harvsim_server_sweeps_finished_total")
	if served != 1 {
		t.Fatalf("drained worker finished %g sweeps, want its 1 in-flight shard", served)
	}
	next := grid64(0.25) // different horizon -> different content keys, cold everywhere
	_, nextSummary := stream(t, coord.URL, post(t, coord.URL, wire.SweepRequest{Spec: next}), nil)
	if nextSummary.Failed != 0 || nextSummary.Workers != 2 {
		t.Fatalf("post-drain sweep: %+v", nextSummary)
	}
	if got := sample(t, scrape(t, urls[0]), "harvsim_server_sweeps_finished_total"); got != served {
		t.Errorf("drained worker took new work after drain: %g -> %g sweeps", served, got)
	}

	// Coordinator /metrics agrees with the two summaries.
	body := scrape(t, coord.URL)
	if got := sample(t, body, "harvsim_coord_sweeps_finished_total"); got != 2 {
		t.Errorf("coord sweeps_finished_total = %g, want 2", got)
	}
	if got := sample(t, body, "harvsim_coord_results_total"); got != 128 {
		t.Errorf("coord results_total = %g, want 128", got)
	}
	if got := sample(t, body, "harvsim_coord_lost_workers_total"); got != 0 {
		t.Errorf("coord lost_workers_total = %g, want 0", got)
	}
	if got := sample(t, body, "harvsim_coord_workers_draining"); got != 1 {
		t.Errorf("coord workers_draining = %g, want 1", got)
	}
}

// TestCoordinatorCancelReportsDone mirrors the server-side fix: DELETE
// on a finished coordinated sweep replies "done", not "cancelling".
func TestCoordinatorCancelReportsDone(t *testing.T) {
	_, urls := startFleet(t, 1)
	coord := httptest.NewServer(New(Options{Workers: urls}).Handler())
	defer coord.Close()

	spec := wire.Spec{
		Scenario: wire.Scenario{Kind: "charge", DurationS: 0.1},
		Axes:     []wire.Axis{{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4}}},
	}
	acc := post(t, coord.URL, wire.SweepRequest{Spec: spec})
	stream(t, coord.URL, acc, nil) // wait for completion

	req, _ := http.NewRequest(http.MethodDelete, coord.URL+"/v1/jobs/"+acc.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "done" {
		t.Errorf("DELETE on finished coordinated sweep -> %v, want status done", out)
	}
}
