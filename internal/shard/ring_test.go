package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

func fleet(n int) []string {
	ws := make([]string, n)
	for i := range ws {
		ws[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return ws
}

func randomKeys(rng *rand.Rand, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
	}
	return keys
}

// TestRingRemoveMovesOnlyOrphans is the rendezvous minimal-movement
// property the re-shard path relies on: over random fleets and key
// sets, removing a worker relocates exactly the keys it owned — every
// other key keeps its owner bit for bit.
func TestRingRemoveMovesOnlyOrphans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(9) // 2..10 workers
		workers := fleet(n)
		keys := randomKeys(rng, 500)
		ring := NewRing(workers)
		before := make([]string, len(keys))
		for i, k := range keys {
			before[i] = ring.Owner(k)
		}
		victim := workers[rng.Intn(n)]
		ring.Remove(victim)
		moved := 0
		for i, k := range keys {
			after := ring.Owner(k)
			if before[i] == victim {
				moved++
				if after == victim {
					t.Fatalf("trial %d: key %s still owned by removed worker", trial, k)
				}
			} else if after != before[i] {
				t.Fatalf("trial %d: key %s moved %s -> %s though its owner survived",
					trial, k, before[i], after)
			}
		}
		if moved == 0 {
			t.Fatalf("trial %d: removed worker owned no keys (500 keys, %d workers) — suspicious hash", trial, n)
		}
	}
}

// TestRingAddMovesOnlyToNewcomer: adding a worker steals keys for the
// newcomer only; no key shuffles between existing workers. The stolen
// share is ~1/(n+1) of the keys.
func TestRingAddMovesOnlyToNewcomer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(9)
		workers := fleet(n)
		keys := randomKeys(rng, 1000)
		ring := NewRing(workers)
		before := make([]string, len(keys))
		for i, k := range keys {
			before[i] = ring.Owner(k)
		}
		newcomer := "http://worker-new:8080"
		ring.Add(newcomer)
		moved := 0
		for i, k := range keys {
			after := ring.Owner(k)
			if after != before[i] {
				moved++
				if after != newcomer {
					t.Fatalf("trial %d: key %s moved %s -> %s, not to the newcomer",
						trial, k, before[i], after)
				}
			}
		}
		// Expect ~1000/(n+1) moves; allow a wide band (binomial spread).
		want := 1000 / (n + 1)
		if moved < want/2 || moved > want*2 {
			t.Errorf("trial %d (%d workers): %d keys moved to newcomer, want ~%d",
				trial, n, moved, want)
		}
	}
}

// TestRingBalance: uniform keys spread roughly evenly (no worker gets
// more than ~2x its fair share over a large key set).
func TestRingBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	workers := fleet(5)
	keys := randomKeys(rng, 5000)
	ring := NewRing(workers)
	counts := map[string]int{}
	for _, k := range keys {
		counts[ring.Owner(k)]++
	}
	fair := len(keys) / len(workers)
	for w, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("worker %s owns %d keys, fair share %d", w, n, fair)
		}
	}
	if len(counts) != len(workers) {
		t.Errorf("only %d/%d workers own any keys", len(counts), len(workers))
	}
}

// TestRingDeterminism: placement depends only on the member set, not
// construction order or process state.
func TestRingDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	keys := randomKeys(rng, 100)
	a := NewRing([]string{"http://w1", "http://w2", "http://w3"})
	b := NewRing([]string{"http://w3", "http://w1", "http://w2"})
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s differs by construction order", k)
		}
	}
}

// TestAssignPartition: Assign covers every index exactly once, each
// list strictly increasing (the wire.SweepRequest.Indices contract),
// and uncacheable jobs (empty keys) still place via the index fallback.
func TestAssignPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	keys := randomKeys(rng, 200)
	keys[3], keys[77] = "", "" // uncacheable jobs
	ring := NewRing(fleet(4))
	assign := ring.Assign(keys)
	seen := make([]int, len(keys))
	for w, ixs := range assign {
		for i, ix := range ixs {
			if ix < 0 || ix >= len(keys) {
				t.Fatalf("worker %s assigned out-of-range index %d", w, ix)
			}
			seen[ix]++
			if i > 0 && ixs[i-1] >= ix {
				t.Fatalf("worker %s indices not strictly increasing: %v", w, ixs)
			}
		}
	}
	for ix, n := range seen {
		if n != 1 {
			t.Fatalf("index %d assigned %d times, want exactly once", ix, n)
		}
	}
	if NewRing(nil).Assign(keys) != nil {
		t.Fatal("empty ring must return nil assignment")
	}
}
