// Package shard is the fleet layer: a coordinator that partitions one
// sweep across N single-host sweep servers (internal/server) by
// consistent hash on the jobs' content-address keys, fans the shards out
// over the existing POST /v1/sweep + NDJSON stream protocol, merges the
// per-worker streams into one globally indexed stream, and survives
// worker loss mid-sweep by re-sharding the undelivered jobs onto the
// survivors.
//
// Placement uses rendezvous (highest-random-weight) hashing rather than
// a virtual-node ring: every key independently ranks the workers by
// hash(worker, key) and lands on the max. That gives the two exact
// invariants the failure model needs — removing a worker moves exactly
// the keys it owned (each to its second-ranked worker) and nothing
// else, and adding a worker steals only the keys that now rank it
// first — with no tuning knob (virtual-node count) to get wrong.
// Hashing the CONTENT key (not the grid index) means a design point
// lands on the same worker across sweeps of any shape, so that
// worker's disk cache accumulates exactly the points it will be asked
// for again.
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring places string keys on a set of workers by rendezvous hashing.
// The zero Ring is empty; it is not safe for concurrent mutation.
type Ring struct {
	workers []string
}

// NewRing builds a ring over the given worker identities (base URLs).
// Order does not matter: placement depends only on the set.
func NewRing(workers []string) *Ring {
	r := &Ring{workers: append([]string(nil), workers...)}
	sort.Strings(r.workers)
	return r
}

// Workers returns the current member set (sorted, shared slice —
// callers must not mutate).
func (r *Ring) Workers() []string { return r.workers }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.workers) }

// Remove drops a worker from the ring. Keys it owned re-rank onto their
// second choice; every other key keeps its owner (the rendezvous
// minimal-movement property the re-shard path relies on).
func (r *Ring) Remove(worker string) {
	for i, w := range r.workers {
		if w == worker {
			r.workers = append(r.workers[:i], r.workers[i+1:]...)
			return
		}
	}
}

// Add inserts a worker (no-op if present). Only keys that rank the
// newcomer first move; nothing shuffles between existing workers.
func (r *Ring) Add(worker string) {
	for _, w := range r.workers {
		if w == worker {
			return
		}
	}
	r.workers = append(r.workers, worker)
	sort.Strings(r.workers)
}

// score is the rendezvous weight of key on worker: a 64-bit FNV-1a over
// worker NUL key. FNV is not cryptographic, but placement only needs
// uniformity against non-adversarial keys — and the keys here are
// SHA-256 hex strings already.
func score(worker, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(worker))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// Owner returns the worker the key lands on: the member with the
// highest rendezvous score (ties broken by worker identity, which the
// sorted member list makes deterministic). Empty ring returns "".
func (r *Ring) Owner(key string) string {
	best, bestScore := "", uint64(0)
	for _, w := range r.workers {
		if s := score(w, key); best == "" || s > bestScore {
			best, bestScore = w, s
		}
	}
	return best
}

// JobKey is the placement key of job index i given its content-address
// key (possibly "" for uncacheable jobs, which fall back to the index —
// stable within a sweep, meaningless across sweeps, exactly the cache
// utility such a job has).
func JobKey(index int, contentKey string) string {
	if contentKey != "" {
		return contentKey
	}
	return "idx:" + strconv.Itoa(index)
}

// Assign partitions job indices 0..len(keys)-1 (keys[i] the content key
// of job i, "" allowed) over the ring's workers. The returned index
// lists are ascending — the strictly-increasing form wire.SweepRequest
// requires. Empty ring returns nil.
func (r *Ring) Assign(keys []string) map[string][]int {
	if r.Len() == 0 {
		return nil
	}
	out := make(map[string][]int, r.Len())
	for i, k := range keys {
		w := r.Owner(JobKey(i, k))
		out[w] = append(out[w], i)
	}
	return out
}
