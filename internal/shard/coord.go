package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"harvsim/internal/batch"
	"harvsim/internal/metrics"
	"harvsim/internal/server"
	"harvsim/internal/tracing"
	"harvsim/internal/wire"
)

// Options configures a Coordinator.
type Options struct {
	// Workers is the fleet: base URLs of running sweep servers
	// (e.g. "http://10.0.0.1:8080"). At least one is required.
	Workers []string
	// MaxJobs rejects sweeps expanding beyond this many jobs (413).
	// 0 = 4096. The coordinator expands the full grid to place jobs, so
	// this is its own memory bound, independent of the workers'.
	MaxJobs int
	// MaxRequestTime is the wall-clock ceiling per sweep. 0 = 120s.
	MaxRequestTime time.Duration
	// KeepFinished bounds how many finished sweeps stay queryable. 0 = 128.
	KeepFinished int
	// HealthTimeout bounds one worker health probe. 0 = 2s.
	HealthTimeout time.Duration
	// MaxRetries bounds per-shard stream resumes (?from cursor) against
	// a worker that still answers its health probe, before the worker is
	// declared lost. 0 = 2.
	MaxRetries int
	// Client performs all worker HTTP calls; nil uses a dedicated
	// keep-alive client. Streams are long-lived, so the client must not
	// carry an overall timeout (per-call deadlines come from contexts).
	Client *http.Client
}

func (o Options) maxJobs() int {
	if o.MaxJobs > 0 {
		return o.MaxJobs
	}
	return 4096
}

func (o Options) maxRequestTime() time.Duration {
	if o.MaxRequestTime > 0 {
		return o.MaxRequestTime
	}
	return 120 * time.Second
}

func (o Options) healthTimeout() time.Duration {
	if o.HealthTimeout > 0 {
		return o.HealthTimeout
	}
	return 2 * time.Second
}

func (o Options) maxRetries() int {
	if o.MaxRetries > 0 {
		return o.MaxRetries
	}
	return 2
}

// maxIdleConnsPerWorker sizes the keep-alive pool per worker host. A
// coordinator multiplexes every shard submit, stream and health probe
// over one client, so it must hold at least as many idle connections
// per worker as it has concurrent shard streams — Go's default of 2
// would close and re-dial on every retry/resume wave.
const maxIdleConnsPerWorker = 64

// Coordinator fronts a worker fleet behind the same wire API a single
// sweep server speaks: POST /v1/sweep accepts the identical
// wire.SweepRequest, GET /v1/jobs/{id}/stream delivers one globally
// indexed NDJSON stream with a single summary line. A client cannot
// tell a coordinator from a worker except by the fleet fields its
// summaries carry. Create with New, mount via Handler.
type Coordinator struct {
	opt      Options
	client   *http.Client
	runs     *server.Runs
	handler  http.Handler
	registry *metrics.Registry
	metrics  *coordMetrics
	alerts   *tracing.Alerts

	// mu guards the drain set. Draining is coordinator-local lifecycle
	// state, not a probe outcome: a draining worker is excluded from new
	// shard placement (re-shards included) while its in-flight streams
	// run to completion.
	mu       sync.Mutex
	draining map[string]bool
}

// New builds a coordinator over the configured fleet.
func New(opt Options) *Coordinator {
	c := &Coordinator{
		opt:      opt,
		client:   opt.Client,
		runs:     server.NewRuns("co-", opt.KeepFinished),
		draining: make(map[string]bool),
	}
	if c.client == nil {
		// The promised dedicated keep-alive client: without the tuned
		// transport, net/http keeps only 2 idle connections per host, so
		// a many-shard fleet against few workers would churn TCP
		// connections on every retry/resume and health-probe wave.
		c.client = &http.Client{Transport: &http.Transport{
			Proxy:               http.ProxyFromEnvironment,
			MaxIdleConnsPerHost: maxIdleConnsPerWorker,
			MaxIdleConns:        0, // no global cap; the per-host bound governs
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	c.registry = metrics.NewRegistry()
	c.metrics = newCoordMetrics(c.registry, c)
	c.alerts = tracing.NewAlerts()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", c.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", c.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	mux.HandleFunc("POST /v1/workers/drain", c.handleDrain)
	mux.Handle("GET /metrics", c.registry.Handler())
	mux.HandleFunc("GET /healthz", c.handleHealth)
	c.handler = server.CanonicalErrors(mux)
	return c
}

// Metrics exposes the coordinator's metric registry — the same one GET
// /metrics collects.
func (c *Coordinator) Metrics() *metrics.Registry { return c.registry }

// Alerts exposes the coordinator's threshold watcher. Arm rules with
// the Watch* helpers (or Alerts().Watch directly), register sinks with
// Alerts().Notify, and start Alerts().Run once at boot.
func (c *Coordinator) Alerts() *tracing.Alerts { return c.alerts }

// WatchLostWorkers arms an alert on the cumulative lost-worker counter
// (harvsim_coord_lost_workers_total) reaching bound.
func (c *Coordinator) WatchLostWorkers(bound float64) {
	c.alerts.Watch("lost_workers", bound, func() float64 { return float64(c.metrics.lostWorkers.Value()) })
}

// WatchShardP99 arms one alert per configured worker on the p99 of its
// shard submit-to-summary wall time reaching bound seconds.
func (c *Coordinator) WatchShardP99(bound float64) {
	for _, w := range c.opt.Workers {
		h := c.metrics.shardSeconds.With(w)
		c.alerts.Watch("shard_p99_seconds:"+w, bound, func() float64 { return h.Quantile(0.99) })
	}
}

// isDraining reports whether a worker is marked draining. URLs are
// compared with trailing slashes trimmed, matching handleDrain's
// normalisation.
func (c *Coordinator) isDraining(worker string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining[strings.TrimRight(worker, "/")]
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.handler }

// ServeHTTP lets the Coordinator be mounted directly.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.handler.ServeHTTP(w, r)
}

// healthy probes one worker's liveness endpoint.
func (c *Coordinator) healthy(ctx context.Context, worker string) error {
	ctx, cancel := context.WithTimeout(ctx, c.opt.healthTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// probeFleet health-checks every configured worker concurrently.
func (c *Coordinator) probeFleet(ctx context.Context) []wire.WorkerStatus {
	out := make([]wire.WorkerStatus, len(c.opt.Workers))
	var wg sync.WaitGroup
	for i, w := range c.opt.Workers {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = wire.WorkerStatus{URL: w, Healthy: true}
			if err := c.healthy(ctx, w); err != nil {
				out[i] = wire.WorkerStatus{URL: w, Error: err.Error()}
			}
		}()
	}
	wg.Wait()
	return out
}

// handleSweep validates the sweep, places its jobs on the healthy
// fleet, and replies 202 before any dispatch work happens. Validation
// mirrors the single-host server exactly — same envelope, same codes —
// so clients need no coordinator-specific error handling.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req wire.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		server.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false, "bad request body: %v", err)
		return
	}
	if err := req.Spec.CheckVersion(); err != nil {
		server.WriteError(w, http.StatusBadRequest, wire.CodeUnsupportedVersion, false, "%v", err)
		return
	}
	// Scalar-field validation before any expansion work — mirrors the
	// single-host server's order so both reject a bad settle_frac for
	// the cost of a comparison.
	if req.SettleFrac < 0 || req.SettleFrac >= 1 {
		server.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false,
			"settle_frac must be in [0, 1), got %g", req.SettleFrac)
		return
	}
	if len(req.Indices) > 0 {
		server.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false,
			"indices are a worker-protocol field; submit whole sweeps to a coordinator")
		return
	}
	if n := req.Spec.Size(); n > c.opt.maxJobs() {
		server.WriteError(w, http.StatusRequestEntityTooLarge, wire.CodeTooManyJobs, false,
			"sweep would expand to %d jobs, coordinator budget is %d", n, c.opt.maxJobs())
		return
	}
	expandStart := time.Now()
	bspec, err := req.Spec.Compile()
	if err != nil {
		code := wire.CodeBadRequest
		if errors.Is(err, wire.ErrUnsupportedVersion) {
			code = wire.CodeUnsupportedVersion
		}
		server.WriteError(w, http.StatusBadRequest, code, false, "%v", err)
		return
	}
	jobs, err := bspec.Jobs()
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false, "%v", err)
		return
	}
	expandDur := time.Since(expandStart)

	// Health-check the fleet before accepting: a sweep with nowhere to
	// run is a 503 now, not a stream of failures later. Draining workers
	// are excluded up front — they may be healthy, but they take no new
	// shards.
	var alive []string
	for _, ws := range c.probeFleet(r.Context()) {
		if ws.Healthy && !c.isDraining(ws.URL) {
			alive = append(alive, ws.URL)
		}
	}
	if len(alive) == 0 {
		server.WriteError(w, http.StatusServiceUnavailable, wire.CodeNoWorkers, true,
			"none of the %d configured workers is live (healthy and not draining)", len(c.opt.Workers))
		return
	}

	// Placement keys: content-address where the job has one (so a design
	// point lands where its disk cache lives), index fallback otherwise.
	keys := batch.Keys(jobs, batch.Options{SettleFrac: req.SettleFrac})
	names := make([]string, len(jobs))
	for i, j := range jobs {
		names[i] = j.Name
	}

	ctx, cancel := context.WithTimeout(context.Background(), c.opt.maxRequestTime())
	run := c.runs.New(len(jobs), cancel)

	// Tracing is opt-in per request, exactly as on a worker: the
	// coordinator's recorder is the sweep's merge point — every shard's
	// worker-side spans are imported into it, so one connected trace
	// spans the whole fleet.
	var root *tracing.Active
	if req.Trace != "" {
		rec := tracing.New(req.Trace, 0)
		root = rec.Start("sweep", req.Span)
		rec.Add("expand", root.ID(), -1, expandStart, expandDur)
		run.Trace = rec
	}
	go c.dispatch(ctx, run, req, keys, names, alive, root)

	server.WriteJSON(w, http.StatusAccepted, wire.SweepAccepted{
		V:         wire.Version,
		ID:        run.ID,
		Jobs:      len(jobs),
		StatusURL: "/v1/jobs/" + run.ID,
		StreamURL: "/v1/jobs/" + run.ID + "/stream",
	})
}

// sweepState is the shared bookkeeping of one coordinated sweep's
// dispatch: which global indices have been delivered (the exactly-once
// guard), the recorded lines for the merged summary, the live ring, and
// the fleet counters the summary reports.
type sweepState struct {
	run   *server.Run
	req   wire.SweepRequest
	keys  []string
	names []string
	m     *coordMetrics
	// rootID is the sweep root span's id — the parent every shard span
	// links to ("" when the sweep is untraced).
	rootID string

	wg sync.WaitGroup

	mu        sync.Mutex
	ring      *Ring
	delivered map[int]bool
	recorded  []wire.Result
	lost      map[string]bool
	resharded int
	retries   int
}

// record delivers one global-index line exactly once; duplicates (a
// resumed stream replaying a line that raced the cursor) are dropped.
func (st *sweepState) record(r wire.Result) {
	st.mu.Lock()
	if st.delivered[r.Index] {
		st.mu.Unlock()
		return
	}
	st.delivered[r.Index] = true
	st.recorded = append(st.recorded, r)
	st.mu.Unlock()
	st.m.results.Inc()
	st.run.Record(r)
}

// undelivered filters a shard's indices down to those not yet recorded.
func (st *sweepState) undelivered(indices []int) []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []int
	for _, ix := range indices {
		if !st.delivered[ix] {
			out = append(out, ix)
		}
	}
	return out
}

// fail records a synthetic failed result for every given index — the
// terminal accounting when no worker can run them (so the merged stream
// still resolves with every job accounted for, like a cancelled local
// sweep does).
func (st *sweepState) fail(indices []int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	for _, ix := range indices {
		st.record(wire.Result{Type: wire.LineResult, Index: ix, Name: st.names[ix], Error: msg})
	}
}

// dispatch fans the sweep out over the fleet and finishes the run with
// the merged summary. It returns only when every global index has been
// recorded (delivered by a worker, or failed terminally).
func (c *Coordinator) dispatch(ctx context.Context, run *server.Run, req wire.SweepRequest, keys, names []string, alive []string, root *tracing.Active) {
	defer run.Cancel()
	st := &sweepState{
		run:       run,
		req:       req,
		keys:      keys,
		names:     names,
		m:         c.metrics,
		rootID:    root.ID(),
		ring:      NewRing(alive),
		delivered: make(map[int]bool, len(keys)),
		lost:      make(map[string]bool),
	}
	for worker, indices := range st.ring.Assign(keys) {
		st.wg.Add(1)
		go c.runShard(ctx, st, worker, indices)
	}
	st.wg.Wait()

	// Anything still undelivered (cancellation, total fleet loss) gets
	// terminal accounting before the summary.
	all := make([]int, len(keys))
	for i := range all {
		all[i] = i
	}
	if missing := st.undelivered(all); len(missing) != 0 {
		reason := "sweep aborted before the job ran"
		if err := ctx.Err(); err != nil {
			reason = err.Error()
		}
		st.fail(missing, "%s", reason)
	}

	// Merged summary: reconstruct the batch view of every line, order by
	// global index, and reduce through the same SummaryOf a single host
	// uses. Floats round-tripped bit-exactly, so max_metric/argmax agree
	// bit for bit with a single-host run of the same grid.
	st.mu.Lock()
	lines := append([]wire.Result(nil), st.recorded...)
	resharded, retries, lost := st.resharded, st.retries, len(st.lost)
	st.mu.Unlock()
	sort.Slice(lines, func(i, j int) bool { return lines[i].Index < lines[j].Index })
	results := make([]batch.Result, len(lines))
	for i, ln := range lines {
		results[i] = wire.BatchResultOf(ln)
	}
	summary := wire.SummaryOf(results, time.Since(run.Started))
	summary.Workers = len(alive)
	summary.Resharded = resharded
	summary.Retries = retries
	summary.LostWorkers = lost
	run.Finish(summary)
	root.End()
	run.Trace.Finish()
	c.metrics.finished.Inc()
	c.runs.Retire(run.ID)
}

// postShard submits one shard sub-sweep to a worker. A connection-level
// failure returns err; an HTTP rejection returns the worker's envelope.
func (c *Coordinator) postShard(ctx context.Context, worker string, req wire.SweepRequest) (wire.SweepAccepted, *wire.ErrorDetail, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return wire.SweepAccepted{}, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return wire.SweepAccepted{}, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return wire.SweepAccepted{}, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e wire.Error
		if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error.Code == "" {
			e = wire.Errorf(wire.CodeInternal, true, "worker replied %s", resp.Status)
		}
		d := e.Error
		return wire.SweepAccepted{}, &d, nil
	}
	var acc wire.SweepAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		return wire.SweepAccepted{}, nil, err
	}
	return acc, nil, nil
}

// errTruncated marks a shard stream that ended without its summary line
// — the worker died or the connection dropped mid-stream.
var errTruncated = errors.New("shard stream truncated before its summary")

// streamShard consumes one worker job's NDJSON stream from *received
// onward, recording result lines (exactly-once via sweepState). It
// bumps *received per result line so a retry resumes with ?from exactly
// past what this coordinator has already read. nil return means the
// summary line arrived — the shard is complete.
func (c *Coordinator) streamShard(ctx context.Context, st *sweepState, worker string, acc wire.SweepAccepted, received *int) error {
	url := fmt.Sprintf("%s%s?from=%d", worker, acc.StreamURL, *received)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("stream: worker replied %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return fmt.Errorf("bad stream line: %w", err)
		}
		switch probe.Type {
		case wire.LineResult:
			var r wire.Result
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				return fmt.Errorf("bad result line: %w", err)
			}
			*received++
			st.record(r)
		case wire.LineSummary:
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return errTruncated
}

// runShard drives one worker's shard to completion: submit, stream,
// resume on transient drops, and on worker loss re-shard the
// undelivered indices onto the survivors. wg accounting: the goroutine
// holds its own count while spawning replacements, so Wait cannot fire
// between hand-offs.
func (c *Coordinator) runShard(ctx context.Context, st *sweepState, worker string, indices []int) {
	defer st.wg.Done()
	start := time.Now()
	// The shard span propagates the trace to the worker: the worker's
	// own root span links back to it via the request's span field, so
	// importing the worker's trace below yields one connected tree. A
	// re-shard (loseWorker) opens its own shard span on the survivor.
	rec := st.run.Trace
	shardSpan := rec.Start("shard", st.rootID)
	shardSpan.SetWorker(worker)
	defer shardSpan.End()
	req := wire.SweepRequest{
		Spec:       st.req.Spec,
		Indices:    indices,
		Workers:    st.req.Workers,
		SettleFrac: st.req.SettleFrac,
		BudgetMS:   st.req.BudgetMS,
		NoLockstep: st.req.NoLockstep,
		Trace:      rec.Trace(),
		Span:       shardSpan.ID(),
	}
	acc, envErr, err := c.postShard(ctx, worker, req)
	if err != nil {
		c.loseWorker(ctx, st, worker, indices, err)
		return
	}
	if envErr != nil {
		if envErr.Retryable {
			c.loseWorker(ctx, st, worker, indices, fmt.Errorf("%s: %s", envErr.Code, envErr.Message))
			return
		}
		// The request itself was refused (bad spec, over budget): every
		// worker would refuse it the same way, so re-sharding only loops.
		st.fail(indices, "worker %s refused shard: %s: %s", worker, envErr.Code, envErr.Message)
		return
	}
	received := 0
	for attempt := 0; ; attempt++ {
		err := c.streamShard(ctx, st, worker, acc, &received)
		if err == nil {
			c.metrics.shardSeconds.With(worker).Observe(time.Since(start).Seconds())
			if rec != nil {
				c.importShardTrace(ctx, rec, worker, acc.ID)
			}
			return
		}
		if ctx.Err() != nil {
			return // cancelled/expired; dispatch accounts the remainder
		}
		// Transient drop vs dead worker: if the worker still answers its
		// health probe, resume the same job's stream past what we have.
		if attempt < c.opt.maxRetries() && c.healthy(ctx, worker) == nil {
			st.mu.Lock()
			st.retries++
			st.mu.Unlock()
			c.metrics.retries.Inc()
			continue
		}
		c.loseWorker(ctx, st, worker, indices, err)
		return
	}
}

// importShardTrace replays a completed shard's span stream off the
// worker and merges it into the sweep's recorder. The worker seals its
// recorder right after its summary line, so this replay terminates
// promptly; failures are silently dropped — a lost trace fetch must
// never fail the shard it observed.
func (c *Coordinator) importShardTrace(ctx context.Context, rec *tracing.Recorder, worker, id string) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(hreq)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ln wire.SpanLine
		if json.Unmarshal(sc.Bytes(), &ln) != nil || ln.Type != wire.LineSpan {
			continue
		}
		rec.Import(wire.SpanOf(ln))
	}
}

// loseWorker declares a worker dead: removes it from the ring and
// re-shards its undelivered indices over the survivors (each key moving
// to its rendezvous second choice). Survivors marked draining since the
// sweep started are excluded — a re-shard is new placement, and drain
// means no new shards. With no eligible survivors the remainder fails
// terminally.
func (c *Coordinator) loseWorker(ctx context.Context, st *sweepState, worker string, indices []int, cause error) {
	st.mu.Lock()
	if !st.lost[worker] {
		st.lost[worker] = true
		st.ring.Remove(worker)
		c.metrics.lostWorkers.Inc()
	}
	var survivors []string
	for _, w := range st.ring.Workers() {
		if !c.isDraining(w) {
			survivors = append(survivors, w)
		}
	}
	ring := NewRing(survivors)
	st.mu.Unlock()

	missing := st.undelivered(indices)
	if len(missing) == 0 {
		return
	}
	if ring.Len() == 0 {
		st.fail(missing, "worker %s lost (%v) and no live survivors remain", worker, cause)
		return
	}
	st.mu.Lock()
	st.resharded += len(missing)
	st.mu.Unlock()
	c.metrics.resharded.Add(int64(len(missing)))

	assign := make(map[string][]int, ring.Len())
	for _, ix := range missing {
		w := ring.Owner(JobKey(ix, st.keys[ix]))
		assign[w] = append(assign[w], ix)
	}
	for w, ixs := range assign {
		st.wg.Add(1)
		go c.runShard(ctx, st, w, ixs)
	}
}

// handleJob reports a sweep's status; ?results=1 includes the full list
// once done.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	run := c.lookup(w, r)
	if run == nil {
		return
	}
	server.WriteJSON(w, http.StatusOK, run.Status(r.URL.Query().Get("results") == "1"))
}

// handleStream streams the merged run as NDJSON (same semantics as a
// worker's stream, ?from cursor included).
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	run := c.lookup(w, r)
	if run == nil {
		return
	}
	server.ServeStream(w, r, run)
}

// handleTrace replays the merged flight recorder as NDJSON span lines —
// the same contract as a worker's trace endpoint, but spanning the
// whole fleet (worker spans are imported as each shard completes).
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	run := c.lookup(w, r)
	if run == nil {
		return
	}
	if run.Trace == nil {
		server.WriteError(w, http.StatusNotFound, wire.CodeNotFound, false,
			"job %q was not traced (submit with a \"trace\" id)", run.ID)
		return
	}
	server.ServeTrace(w, r, run.Trace)
}

// handleCancel cancels a running coordinated sweep. Shard streams abort
// via context; the workers' sub-sweeps run to their own budgets. A
// finished run reports "done" — same contract as the single-host server.
func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	run := c.lookup(w, r)
	if run == nil {
		return
	}
	status := "cancelling"
	if run.Done() {
		status = "done"
	} else {
		run.Cancel()
	}
	server.WriteJSON(w, http.StatusOK, map[string]any{"v": wire.Version, "id": run.ID, "status": status})
}

// handleWorkers reports a live health probe of the configured fleet,
// annotated with each worker's placement state: live, draining or lost.
func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	workers := c.probeFleet(r.Context())
	for i := range workers {
		switch {
		case c.isDraining(workers[i].URL):
			workers[i].State = wire.WorkerDraining
		case workers[i].Healthy:
			workers[i].State = wire.WorkerLive
		default:
			workers[i].State = wire.WorkerLost
		}
	}
	server.WriteJSON(w, http.StatusOK, wire.FleetStatus{V: wire.Version, Workers: workers})
}

// handleDrain marks a configured worker draining for planned
// maintenance: it takes no new shards (fresh sweeps and mid-sweep
// re-shards alike) while its in-flight shard streams run to completion —
// so draining mid-sweep never loses or recomputes work, unlike killing
// the worker. The flag is coordinator-local and sticky until restart.
func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	worker := strings.TrimRight(r.URL.Query().Get("worker"), "/")
	if worker == "" {
		server.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, false,
			"drain requires a ?worker=<url> parameter")
		return
	}
	known := false
	for _, u := range c.opt.Workers {
		if strings.TrimRight(u, "/") == worker {
			known = true
			break
		}
	}
	if !known {
		server.WriteError(w, http.StatusNotFound, wire.CodeNotFound, false,
			"worker %q is not in the configured fleet", worker)
		return
	}
	c.mu.Lock()
	c.draining[worker] = true
	c.mu.Unlock()
	server.WriteJSON(w, http.StatusOK, wire.DrainStatus{V: wire.Version, Worker: worker, State: wire.WorkerDraining})
}

// handleHealth is the liveness probe.
func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, wire.Health{
		V:            wire.Version,
		Status:       "ok",
		ActiveSweeps: c.runs.Active(),
		Workers:      len(c.opt.Workers),
	})
}

func (c *Coordinator) lookup(w http.ResponseWriter, r *http.Request) *server.Run {
	id := r.PathValue("id")
	run := c.runs.Lookup(id)
	if run == nil {
		server.WriteError(w, http.StatusNotFound, wire.CodeNotFound, false, "unknown job %q", id)
	}
	return run
}
