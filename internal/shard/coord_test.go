package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"harvsim/internal/server"
	"harvsim/internal/wire"
)

// grid64 is the repo's 64-point benchmark grid in wire form.
func grid64(duration float64) wire.Spec {
	return wire.Spec{
		Name:     "grid",
		V:        wire.Version,
		Scenario: wire.Scenario{Kind: "charge", DurationS: duration, Set: map[string]float64{"initial_vc": 2.5}},
		Axes: []wire.Axis{
			{Kind: wire.AxisFloat, Param: "microgen.rc", Values: []float64{100, 180, 320, 560, 1000, 1800, 3200, 5600}},
			{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4, 5, 6, 7, 8, 9, 10}},
		},
	}
}

// startFleet launches n real single-host sweep servers.
func startFleet(t *testing.T, n int) ([]*httptest.Server, []string) {
	t.Helper()
	var servers []*httptest.Server
	var urls []string
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(server.New(server.Options{Workers: 1}).Handler())
		t.Cleanup(ts.Close)
		servers = append(servers, ts)
		urls = append(urls, ts.URL)
	}
	return servers, urls
}

func post(t *testing.T, base string, req wire.SweepRequest) wire.SweepAccepted {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/sweep: %s: %s", resp.Status, msg)
	}
	var acc wire.SweepAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc
}

// stream reads an NDJSON stream to completion; onLine (optional) fires
// after every result line with the running count.
func stream(t *testing.T, base string, acc wire.SweepAccepted, onLine func(n int)) ([]wire.Result, wire.Summary) {
	t.Helper()
	resp, err := http.Get(base + acc.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", acc.StreamURL, resp.Status)
	}
	var results []wire.Result
	var summary wire.Summary
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch probe.Type {
		case wire.LineResult:
			var r wire.Result
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
			if onLine != nil {
				onLine(len(results))
			}
		case wire.LineSummary:
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return results, summary
}

// identityFields projects the bit-identity fields per global index.
func identityFields(results []wire.Result) map[int][5]string {
	out := make(map[int][5]string, len(results))
	for _, r := range results {
		m := func(f wire.Float) string {
			b, _ := json.Marshal(f)
			return string(b)
		}
		out[r.Index] = [5]string{m(r.Metric), m(r.RMSPower), m(r.MeanPower), m(r.FinalVc), r.Key}
	}
	return out
}

// singleHostBaseline runs the spec on one fresh worker directly.
func singleHostBaseline(t *testing.T, spec wire.Spec) ([]wire.Result, wire.Summary) {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Options{Workers: 1}).Handler())
	defer ts.Close()
	return stream(t, ts.URL, post(t, ts.URL, wire.SweepRequest{Spec: spec}), nil)
}

// TestCoordinatorMatchesSingleHost: a 3-worker coordinated sweep
// delivers every global index exactly once with metrics bit-identical
// to a single-host run, and a repeat sweep through the coordinator is
// all cache hits (placement by content key gives each worker a warm
// cache for exactly its shard).
func TestCoordinatorMatchesSingleHost(t *testing.T) {
	spec := grid64(0.25)
	baseline, baseSummary := singleHostBaseline(t, spec)

	_, urls := startFleet(t, 3)
	coord := httptest.NewServer(New(Options{Workers: urls}).Handler())
	defer coord.Close()

	results, summary := stream(t, coord.URL, post(t, coord.URL, wire.SweepRequest{Spec: spec}), nil)
	if len(results) != 64 || summary.Jobs != 64 || summary.Failed != 0 {
		t.Fatalf("coordinated sweep: %d results, summary %+v", len(results), summary)
	}
	if summary.Workers != 3 || summary.Resharded != 0 || summary.LostWorkers != 0 {
		t.Errorf("healthy fleet summary has loss counters: %+v", summary)
	}
	if summary.V != wire.Version {
		t.Errorf("summary v = %d, want %d", summary.V, wire.Version)
	}
	seen := map[int]int{}
	for _, r := range results {
		seen[r.Index]++
	}
	for ix := 0; ix < 64; ix++ {
		if seen[ix] != 1 {
			t.Fatalf("index %d delivered %d times, want exactly once", ix, seen[ix])
		}
	}
	base, got := identityFields(baseline), identityFields(results)
	for ix, want := range base {
		if got[ix] != want {
			t.Errorf("index %d: coordinated metrics %v != single-host %v", ix, got[ix], want)
		}
	}
	mm := func(f wire.Float) string { b, _ := json.Marshal(f); return string(b) }
	if mm(summary.MaxMetric) != mm(baseSummary.MaxMetric) || summary.ArgMax != baseSummary.ArgMax {
		t.Errorf("merged summary (%s, %q) != single-host (%s, %q)",
			mm(summary.MaxMetric), summary.ArgMax, mm(baseSummary.MaxMetric), baseSummary.ArgMax)
	}

	// Warm repeat: every design point lands on the worker that cached it.
	_, warm := stream(t, coord.URL, post(t, coord.URL, wire.SweepRequest{Spec: spec}), nil)
	if warm.CacheHits != 64 {
		t.Errorf("warm coordinated repeat hit caches %d/64 times", warm.CacheHits)
	}
}

// bistableGrid is a 12-job bistable ensemble sweep (2 well depths via
// the microgen.k1 registry knob x 6 seeds) in wire form — small enough
// for CI, stochastic enough that the basin accounting is non-trivial
// on both stiffness levels.
func bistableGrid(duration float64) wire.Spec {
	return wire.Spec{
		Name: "bistable-grid",
		V:    wire.Version,
		Scenario: wire.Scenario{
			Kind: "bistable", DurationS: duration,
			WellM: 5e-4, BarrierJ: 2e-6, Xi1: 120, Xi2: -3.4e4,
			NoiseFLoHz: 8, NoiseFHiHz: 40, NoiseSeed: 13,
		},
		Axes: []wire.Axis{
			{Kind: wire.AxisFloat, Param: "microgen.k1", Values: []float64{-850, -900}},
			{Kind: wire.AxisSeed, BaseSeed: 13, Count: 6},
		},
	}
}

// basinFields projects each result's basin accounting per global index.
func basinFields(results []wire.Result) map[int][3]int {
	out := make(map[int][3]int, len(results))
	for _, r := range results {
		out[r.Index] = [3]int{r.Transits, r.SettledTransits, r.FinalBasin}
	}
	return out
}

// TestCoordinatorBistableBasinsMatchSingleHost is the acceptance
// criterion's distributed leg: a 3-worker coordinated bistable
// ensemble sweep reproduces the single-host run bit for bit — the
// standard identity fields AND the per-job basin accounting AND the
// merged summary's basin reductions. Sharding must not perturb the
// settle boundary or the transit counters, or the fleet's high-orbit
// fraction would depend on worker count.
func TestCoordinatorBistableBasinsMatchSingleHost(t *testing.T) {
	spec := bistableGrid(0.5)
	baseline, baseSummary := singleHostBaseline(t, spec)
	if baseSummary.Transits == 0 {
		t.Fatal("test premise broken: single-host bistable sweep counted no transits")
	}

	_, urls := startFleet(t, 3)
	coord := httptest.NewServer(New(Options{Workers: urls}).Handler())
	defer coord.Close()

	results, summary := stream(t, coord.URL, post(t, coord.URL, wire.SweepRequest{Spec: spec}), nil)
	if len(results) != 12 || summary.Jobs != 12 || summary.Failed != 0 {
		t.Fatalf("coordinated bistable sweep: %d results, summary %+v", len(results), summary)
	}
	base, got := identityFields(baseline), identityFields(results)
	for ix, want := range base {
		if got[ix] != want {
			t.Errorf("index %d: coordinated metrics %v != single-host %v", ix, got[ix], want)
		}
	}
	baseBasins, gotBasins := basinFields(baseline), basinFields(results)
	for ix, want := range baseBasins {
		if gotBasins[ix] != want {
			t.Errorf("index %d: coordinated basins %v != single-host %v", ix, gotBasins[ix], want)
		}
	}
	if summary.Transits != baseSummary.Transits || summary.HighOrbit != baseSummary.HighOrbit {
		t.Errorf("merged basin reductions (transits %d, high-orbit %d) != single-host (%d, %d)",
			summary.Transits, summary.HighOrbit, baseSummary.Transits, baseSummary.HighOrbit)
	}

	// Warm repeat through the coordinator: basin accounting comes out of
	// the snapshot cache unchanged.
	warmResults, warm := stream(t, coord.URL, post(t, coord.URL, wire.SweepRequest{Spec: spec}), nil)
	if warm.CacheHits != 12 {
		t.Errorf("warm coordinated repeat hit caches %d/12 times", warm.CacheHits)
	}
	warmBasins := basinFields(warmResults)
	for ix, want := range baseBasins {
		if warmBasins[ix] != want {
			t.Errorf("index %d: cached basins %v != fresh %v", ix, warmBasins[ix], want)
		}
	}
	if warm.Transits != baseSummary.Transits || warm.HighOrbit != baseSummary.HighOrbit {
		t.Errorf("cached basin reductions (transits %d, high-orbit %d) != fresh (%d, %d)",
			warm.Transits, warm.HighOrbit, baseSummary.Transits, baseSummary.HighOrbit)
	}
}

// TestCoordinatorSurvivesWorkerLoss is the tentpole acceptance path in
// miniature: kill one of three workers mid-stream and the sweep still
// completes — every index exactly once, bit-identical to a single-host
// run, with the loss visible in the summary counters.
func TestCoordinatorSurvivesWorkerLoss(t *testing.T) {
	// Long enough per job that the kill below lands while the victim's
	// shard is mostly undone (the whole 0.25s grid finishes in ~150ms).
	spec := grid64(2)
	baseline, _ := singleHostBaseline(t, spec)

	servers, urls := startFleet(t, 3)
	coord := httptest.NewServer(New(Options{Workers: urls, HealthTimeout: 500 * time.Millisecond}).Handler())
	defer coord.Close()

	acc := post(t, coord.URL, wire.SweepRequest{Spec: spec})
	killed := false
	results, summary := stream(t, coord.URL, acc, func(n int) {
		if n == 3 && !killed {
			killed = true
			// kill -9 equivalent: sever live connections, stop accepting.
			servers[0].CloseClientConnections()
			servers[0].Close()
		}
	})
	if !killed {
		t.Fatal("kill hook never fired")
	}
	if len(results) != 64 || summary.Jobs != 64 {
		t.Fatalf("after worker loss: %d results, summary %+v", len(results), summary)
	}
	seen := map[int]int{}
	for _, r := range results {
		seen[r.Index]++
		if r.Error != "" {
			t.Errorf("index %d failed after re-shard: %s", r.Index, r.Error)
		}
	}
	for ix := 0; ix < 64; ix++ {
		if seen[ix] != 1 {
			t.Fatalf("index %d delivered %d times, want exactly once", ix, seen[ix])
		}
	}
	if summary.LostWorkers == 0 || summary.Resharded == 0 {
		t.Errorf("loss not reported: %+v", summary)
	}
	base, got := identityFields(baseline), identityFields(results)
	for ix, want := range base {
		if got[ix] != want {
			t.Errorf("index %d: post-loss metrics %v != single-host %v", ix, got[ix], want)
		}
	}
}

// TestCoordinatorTotalFleetLoss: when every worker dies mid-sweep the
// merged stream still resolves, with the undeliverable jobs accounted
// as failed results.
func TestCoordinatorTotalFleetLoss(t *testing.T) {
	servers, urls := startFleet(t, 1)
	coord := httptest.NewServer(New(Options{Workers: urls, HealthTimeout: 300 * time.Millisecond}).Handler())
	defer coord.Close()

	// Long-horizon jobs so the worker dies with most work undone.
	spec := wire.Spec{
		Scenario: wire.Scenario{Kind: "charge", DurationS: 5},
		Axes:     []wire.Axis{{Kind: wire.AxisInt, Param: "dickson.stages", Ints: []int{3, 4, 5, 6}}},
	}
	acc := post(t, coord.URL, wire.SweepRequest{Spec: spec})
	servers[0].CloseClientConnections()
	servers[0].Close()
	results, summary := stream(t, coord.URL, acc, nil)
	if len(results) != 4 || summary.Jobs != 4 {
		t.Fatalf("fleet-loss stream: %d results, summary %+v", len(results), summary)
	}
	if summary.Failed == 0 || summary.LostWorkers != 1 {
		t.Errorf("fleet loss not reflected: %+v", summary)
	}
}

// TestCoordinatorErrorEnvelopes: the coordinator's non-2xx surface
// speaks the same canonical envelope with the same stable codes as a
// worker, including its mux-generated responses and the fleet-specific
// no_workers case.
func TestCoordinatorErrorEnvelopes(t *testing.T) {
	_, urls := startFleet(t, 1)
	coord := httptest.NewServer(New(Options{Workers: urls}).Handler())
	defer coord.Close()

	dead := New(Options{Workers: []string{"http://127.0.0.1:1"}, HealthTimeout: 300 * time.Millisecond})
	deadTS := httptest.NewServer(dead.Handler())
	defer deadTS.Close()

	futureSpec := grid64(0.25)
	futureSpec.V = wire.Version + 1
	future, _ := json.Marshal(wire.SweepRequest{Spec: futureSpec})
	okSpec, _ := json.Marshal(wire.SweepRequest{Spec: grid64(0.25)})
	withIndices, _ := json.Marshal(wire.SweepRequest{Spec: grid64(0.25), Indices: []int{1, 2}})

	cases := []struct {
		name       string
		base       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed body", coord.URL, "POST", "/v1/sweep", "{", http.StatusBadRequest, wire.CodeBadRequest},
		{"future version", coord.URL, "POST", "/v1/sweep", string(future), http.StatusBadRequest, wire.CodeUnsupportedVersion},
		{"indices rejected", coord.URL, "POST", "/v1/sweep", string(withIndices), http.StatusBadRequest, wire.CodeBadRequest},
		{"no healthy workers", deadTS.URL, "POST", "/v1/sweep", string(okSpec), http.StatusServiceUnavailable, wire.CodeNoWorkers},
		{"unknown job", coord.URL, "GET", "/v1/jobs/nope", "", http.StatusNotFound, wire.CodeNotFound},
		{"unknown route", coord.URL, "GET", "/v1/frobnicate", "", http.StatusNotFound, wire.CodeNotFound},
		{"mux wrong method", coord.URL, "PUT", "/v1/sweep", "", http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		var body io.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		}
		req, err := http.NewRequest(tc.method, tc.base+tc.path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %s, want %d (body %q)", tc.name, resp.Status, tc.wantStatus, raw)
			continue
		}
		var e wire.Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code != tc.wantCode || e.Error.Message == "" {
			t.Errorf("%s: envelope %q (err %v), want code %q", tc.name, raw, err, tc.wantCode)
		}
	}

	// The retryable bit: no_workers is transient, bad requests are not.
	resp, err := http.Post(deadTS.URL+"/v1/sweep", "application/json", bytes.NewReader(okSpec))
	if err != nil {
		t.Fatal(err)
	}
	var e wire.Error
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if !e.Error.Retryable {
		t.Errorf("no_workers must be retryable: %+v", e)
	}
}

// TestCoordinatorWorkersEndpoint: the fleet probe reports per-worker
// health with the wire version stamped.
func TestCoordinatorWorkersEndpoint(t *testing.T) {
	_, urls := startFleet(t, 2)
	urls = append(urls, "http://127.0.0.1:1") // one dead member
	coord := httptest.NewServer(New(Options{Workers: urls, HealthTimeout: 300 * time.Millisecond}).Handler())
	defer coord.Close()

	resp, err := http.Get(coord.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs wire.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	if fs.V != wire.Version || len(fs.Workers) != 3 {
		t.Fatalf("fleet status %+v", fs)
	}
	healthy := 0
	for _, ws := range fs.Workers {
		if ws.Healthy {
			healthy++
		} else if ws.Error == "" {
			t.Errorf("unhealthy worker %s carries no error", ws.URL)
		}
	}
	if healthy != 2 {
		t.Errorf("%d healthy workers, want 2", healthy)
	}
}
