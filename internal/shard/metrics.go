package shard

import (
	"harvsim/internal/metrics"
)

// coordMetrics is the coordinator's instrument bundle, served by GET
// /metrics. Fleet-health counters (resharded, retries, lost workers)
// accumulate the same numbers each sweep's summary line reports, so a
// scrape and the NDJSON stream can be cross-checked; per-worker shard
// latency localises a slow or overloaded worker without log digging.
type coordMetrics struct {
	finished    *metrics.Counter
	results     *metrics.Counter
	resharded   *metrics.Counter
	retries     *metrics.Counter
	lostWorkers *metrics.Counter
	// shardSeconds observes submit-to-summary wall time of each
	// successfully streamed shard, labelled by the worker that served it.
	shardSeconds *metrics.HistogramVec
}

// newCoordMetrics registers the coordinator instruments plus
// collect-time bridges into the run registry and the drain set.
func newCoordMetrics(r *metrics.Registry, c *Coordinator) *coordMetrics {
	m := &coordMetrics{
		finished:    r.Counter("harvsim_coord_sweeps_finished_total", "Coordinated sweeps that ran to completion."),
		results:     r.Counter("harvsim_coord_results_total", "Result lines merged into coordinated streams (exactly-once, post-dedup)."),
		resharded:   r.Counter("harvsim_coord_resharded_total", "Jobs re-assigned to surviving workers after a worker was lost mid-sweep."),
		retries:     r.Counter("harvsim_coord_retries_total", "Shard stream resumes (?from cursor) that recovered a shard without re-sharding."),
		lostWorkers: r.Counter("harvsim_coord_lost_workers_total", "Workers declared dead during a sweep."),
		shardSeconds: r.HistogramVec("harvsim_coord_shard_seconds",
			"Submit-to-summary wall time per successfully streamed shard.", "worker", nil),
	}
	r.GaugeFunc("harvsim_coord_sweeps_active", "Coordinated sweeps submitted but not yet finished.",
		func() float64 { return float64(c.runs.Active()) })
	r.GaugeFunc("harvsim_coord_workers_draining", "Workers currently marked draining.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.draining))
		})
	return m
}
